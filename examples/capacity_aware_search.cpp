// Capacity-aware search: GES on a heterogeneous (Gnutella-profile)
// network. The topology adaptation gives high-capacity nodes high degree,
// and the capacity-aware biased walks route queries through supernodes —
// improving recall and concentrating load where it can be absorbed
// (paper §4.3, §4.5, §6.3).
//
// Usage: capacity_aware_search [seed]

#include <cstdlib>
#include <iostream>
#include <map>

#include "corpus/synthetic_corpus.hpp"
#include "eval/experiment.hpp"
#include "ges/system.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ges;

  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  auto corpus_params =
      corpus::SyntheticCorpusParams::for_scale(util::env_scale(util::Scale::kSmall));
  corpus_params.seed = seed;
  const auto corpus = corpus::generate_synthetic_corpus(corpus_params);

  core::GesBuildConfig config;
  config.seed = seed;
  config.net.node_vector_size = 1000;
  config.capacities = p2p::CapacityProfile::gnutella();
  config.params.max_links = 128;        // paper's heterogeneous setting
  config.params.capacity_constrained = true;
  core::GesSystem system(corpus, config);
  system.build();
  const auto& net = system.network();

  // 1. Degree follows capacity (paper §4.3's goal (2)).
  std::map<double, std::pair<size_t, size_t>> by_capacity;  // cap -> (nodes, degree)
  for (const auto n : net.alive_nodes()) {
    auto& [count, degree] = by_capacity[net.capacity(n)];
    ++count;
    degree += net.degree(n);
  }
  util::Table degree_table({"capacity", "nodes", "mean degree"});
  for (const auto& [cap, stats] : by_capacity) {
    degree_table.add_row(
        {util::cell(cap, 0), util::cell(stats.first),
         util::cell(static_cast<double>(stats.second) / stats.first, 1)});
  }
  std::cout << "Degree by capacity class (adaptation is capacity-aware):\n"
            << degree_table.render() << '\n';

  // 2. Capacity-aware vs capacity-blind biased walks.
  auto run = [&](bool aware) {
    auto options = system.default_search_options();
    options.capacity_aware = aware;
    const eval::Searcher searcher = [&, options](const corpus::Query& q,
                                                 p2p::NodeId initiator,
                                                 util::Rng& rng) {
      return system.search(q.vector, initiator, options, rng);
    };
    return eval::recall_cost_curve(corpus, net, searcher, {0.1, 0.2, 0.3}, seed);
  };
  const auto aware = run(true);
  const auto blind = run(false);
  util::Table recall_table({"cost", "capacity-aware recall", "capacity-blind recall"});
  for (size_t i = 0; i < aware.cost.size(); ++i) {
    recall_table.add_row({util::pct_cell(aware.cost[i], 0),
                          util::pct_cell(aware.recall[i]),
                          util::pct_cell(blind.recall[i])});
  }
  std::cout << "Capacity-aware vs capacity-blind search:\n"
            << recall_table.render() << '\n';

  // 3. Where does the load go? Probes by capacity class at a 30% budget.
  std::map<double, size_t> probes_by_capacity;
  auto options = system.default_search_options();
  options.probe_budget = std::max<size_t>(1, net.alive_count() * 3 / 10);
  util::Rng rng(seed);
  for (const auto& query : corpus.queries) {
    const auto initiator = net.alive_nodes()[rng.index(net.alive_count())];
    const auto trace = system.search(query.vector, initiator, options, rng);
    for (const auto n : trace.probe_order) ++probes_by_capacity[net.capacity(n)];
  }
  util::Table load_table({"capacity", "probes handled", "probes/node"});
  for (const auto& [cap, probes] : probes_by_capacity) {
    load_table.add_row(
        {util::cell(cap, 0), util::cell(probes),
         util::cell(static_cast<double>(probes) / by_capacity[cap].first, 1)});
  }
  std::cout << "Query load by capacity class (30% probe budget):\n"
            << load_table.render();
  std::cout << "\nSupernodes (capacity >= 1000) absorb disproportionate load — "
               "by design\n(paper: 'high capacity nodes can typically provide "
               "useful information').\n";
  return 0;
}
