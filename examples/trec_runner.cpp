// TREC runner: run GES over a real TREC-format corpus — the exact file
// formats the paper uses (TREC-1,2-AP documents, TREC-3 ad-hoc topics,
// qrels). Without arguments it writes a small self-contained demo corpus
// to /tmp and runs on that, so the binary exercises the full text
// pipeline (SGML parsing, stop words, Porter stemming, df filtering,
// author grouping) out of the box.
//
// Usage: trec_runner [docs.sgml topics.sgml qrels.txt]

#include <fstream>
#include <iostream>

#include "corpus/corpus_stats.hpp"
#include "corpus/trec_loader.hpp"
#include "eval/metrics.hpp"
#include "ges/system.hpp"
#include "util/table.hpp"

namespace {

// A miniature AP-style corpus: three "authors" on two beats.
constexpr const char* kDemoDocs = R"(
<DOC><DOCNO>AP0001</DOCNO><BYLINE>By ALICE ECON</BYLINE><TEXT>
The economy expanded briskly as consumer spending and factory output rose.
Economists said the expansion reflected strong retail demand.
</TEXT></DOC>
<DOC><DOCNO>AP0002</DOCNO><BYLINE>By ALICE ECON</BYLINE><TEXT>
Inflation pressures eased while the economy added jobs; spending on
durable goods and retail sales climbed again, economists reported.
</TEXT></DOC>
<DOC><DOCNO>AP0003</DOCNO><BYLINE>By BOB SPACE</BYLINE><TEXT>
The shuttle crew restarted a faulty gyroscope before the orbital
rendezvous; engineers applauded the restart procedure.
</TEXT></DOC>
<DOC><DOCNO>AP0004</DOCNO><BYLINE>By BOB SPACE</BYLINE><TEXT>
Astronauts completed a spacewalk to repair the station's solar array,
and mission control confirmed the orbital laboratory was stable.
</TEXT></DOC>
<DOC><DOCNO>AP0005</DOCNO><BYLINE>By CAROL MIX</BYLINE><TEXT>
Lawmakers debated the economy and the space program budget in the same
session, weighing factory jobs against shuttle missions.
</TEXT></DOC>
)";

constexpr const char* kDemoTopics = R"(
<top><num> Number: 151 </num><title> Topic: economy spending jobs </title></top>
<top><num> Number: 152 </num><title> Topic: shuttle orbital spacewalk </title></top>
)";

constexpr const char* kDemoQrels = R"(151 0 AP0001 1
151 0 AP0002 1
151 0 AP0005 1
152 0 AP0003 1
152 0 AP0004 1
152 0 AP0005 1
)";

void write_file(const std::string& path, const char* content) {
  std::ofstream out(path);
  out << content;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ges;

  std::string docs_path;
  std::string topics_path;
  std::string qrels_path;
  if (argc == 4) {
    docs_path = argv[1];
    topics_path = argv[2];
    qrels_path = argv[3];
  } else {
    std::cout << "No TREC files given; using the built-in demo corpus.\n"
              << "(Pass docs.sgml topics.sgml qrels.txt to run on real "
                 "TREC-1,2-AP data.)\n\n";
    docs_path = "/tmp/ges_demo_docs.sgml";
    topics_path = "/tmp/ges_demo_topics.sgml";
    qrels_path = "/tmp/ges_demo_qrels.txt";
    write_file(docs_path, kDemoDocs);
    write_file(topics_path, kDemoTopics);
    write_file(qrels_path, kDemoQrels);
  }

  const auto corpus = corpus::load_trec_corpus(docs_path, topics_path, qrels_path);
  std::cout << corpus::format_stats(corpus::compute_stats(corpus)) << '\n';
  if (corpus.num_nodes() < 2) {
    std::cerr << "corpus has fewer than two author nodes; nothing to search\n";
    return 1;
  }

  core::GesBuildConfig config;
  config.net.node_vector_size = 1000;
  config.bootstrap_avg_degree =
      std::min<double>(4.0, static_cast<double>(corpus.num_nodes()) - 1.0);
  core::GesSystem system(corpus, config);
  system.build();

  util::Table table({"topic", "probes", "retrieved", "recall", "prec@15"});
  util::Rng rng(1);
  const auto alive = system.network().alive_nodes();
  for (const auto& query : corpus.queries) {
    if (query.relevant.empty()) continue;
    const auto initiator = alive[rng.index(alive.size())];
    const auto trace = system.search(query.vector, initiator, rng);
    const eval::Judgment judgment(query.relevant);
    table.add_row({std::to_string(query.id), util::cell(trace.probes()),
                   util::cell(trace.retrieved.size()),
                   util::pct_cell(eval::recall(trace, judgment)),
                   util::pct_cell(eval::precision_at(trace, judgment, 15))});
  }
  std::cout << "Exhaustive GES search per topic:\n" << table.render();
  return 0;
}
