// Semantic communities: watch GES's distributed topology adaptation turn
// a random Gnutella-style graph into semantic groups, round by round, and
// see search quality rise as the groups form.
//
// Usage: semantic_communities [seed]   (GES_SCALE scales the corpus)

#include <cstdlib>
#include <iostream>

#include "corpus/synthetic_corpus.hpp"
#include "eval/experiment.hpp"
#include "ges/system.hpp"
#include "p2p/graph_stats.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ges;

  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  auto corpus_params =
      corpus::SyntheticCorpusParams::for_scale(util::env_scale(util::Scale::kSmall));
  corpus_params.seed = seed;
  const auto corpus = corpus::generate_synthetic_corpus(corpus_params);

  // Build the network and bootstrap the random topology by hand so we can
  // observe every adaptation round (GesSystem::build would run them all).
  core::GesParams params;
  p2p::NetworkConfig net_config;
  net_config.node_vector_size = 1000;
  p2p::Network network(corpus,
                       std::vector<p2p::Capacity>(corpus.num_nodes(), 1.0),
                       net_config);
  util::Rng boot_rng(seed);
  p2p::bootstrap_random_graph(network, 6.0, boot_rng);
  core::TopologyAdaptation adaptation(network, params, seed + 1);

  const eval::Searcher searcher = [&](const corpus::Query& q, p2p::NodeId initiator,
                                      util::Rng& rng) {
    return core::GesSearch(network, core::SearchOptions{})
        .search(q.vector, initiator, rng);
  };

  util::Table table({"round", "semantic links", "groups(>=2)", "mean link REL",
                     "recall@30%"});
  auto snapshot = [&](size_t round) {
    size_t semantic_links = 0;
    for (const auto n : network.alive_nodes()) {
      semantic_links += network.degree(n, p2p::LinkType::kSemantic);
    }
    const auto curve =
        eval::recall_cost_curve(corpus, network, searcher, {0.30}, seed);
    table.add_row({util::cell(round), util::cell(semantic_links / 2),
                   util::cell(core::count_semantic_groups(network)),
                   util::cell(core::mean_semantic_link_relevance(network), 3),
                   util::pct_cell(curve.recall.back())});
  };

  std::cout << "Adapting a random overlay of " << corpus.num_nodes()
            << " nodes into semantic groups...\n\n";
  snapshot(0);
  for (size_t round = 1; round <= 16; ++round) {
    adaptation.run_round();
    if (round == 1 || round == 2 || round == 4 || round == 8 || round == 16) {
      snapshot(round);
    }
  }
  std::cout << table.render();

  const auto overall = p2p::compute_graph_stats(network);
  const auto semantic = p2p::compute_graph_stats(network, p2p::LinkType::kSemantic);
  std::cout << "\nFinal overlay: " << overall.links << " links (mean degree "
            << util::cell(overall.mean_degree, 1) << ", largest component "
            << overall.largest_component << "/" << overall.nodes
            << ", mean path " << util::cell(overall.mean_path_length, 2)
            << ")\nSemantic sub-graph: " << semantic.links
            << " links, clustering coefficient "
            << util::cell(semantic.clustering_coefficient, 3)
            << " (groups are its connected components)\n";
  std::cout << "Every semantic link connects nodes with REL >= "
            << params.node_rel_threshold << " (paper 4.3).\n";
  network.check_invariants();
  return 0;
}
