// Churn resilience: the motivation of the paper's §1 — unstructured
// overlays shrug off node churn that cripples DHTs. We run a churning
// network through the discrete-event simulator with periodic adaptation
// and replica heartbeats, and measure search quality as nodes come and go.
//
// Usage: churn_resilience [seed]

#include <cstdlib>
#include <iostream>

#include "corpus/synthetic_corpus.hpp"
#include "eval/experiment.hpp"
#include "ges/system.hpp"
#include "p2p/churn.hpp"
#include "p2p/replication.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ges;

  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  auto corpus_params =
      corpus::SyntheticCorpusParams::for_scale(util::env_scale(util::Scale::kSmall));
  corpus_params.seed = seed;
  const auto corpus = corpus::generate_synthetic_corpus(corpus_params);

  p2p::NetworkConfig net_config;
  net_config.node_vector_size = 1000;
  p2p::Network network(corpus,
                       std::vector<p2p::Capacity>(corpus.num_nodes(), 1.0),
                       net_config);
  util::Rng boot_rng(seed);
  p2p::bootstrap_random_graph(network, 6.0, boot_rng);

  core::TopologyAdaptation adaptation(network, core::GesParams{}, seed + 1);
  adaptation.run_rounds(12);  // converge before churn starts

  // Wire the time-based processes: churn, adaptation, heartbeats.
  p2p::EventQueue queue;
  p2p::ChurnParams churn_params;
  churn_params.mean_session = 120.0;  // aggressive: mean two minutes online
  churn_params.mean_downtime = 60.0;
  churn_params.seed = seed + 2;
  p2p::ChurnProcess churn(network, queue, churn_params);
  churn.start();
  core::AdaptationRoundStats adapt_total;
  p2p::TimerHandle adapt_timer =
      adaptation.schedule_rounds(queue, 30.0, &adapt_total);
  p2p::schedule_replica_heartbeats(queue, network, 15.0);

  const eval::Searcher searcher = [&](const corpus::Query& q, p2p::NodeId initiator,
                                      util::Rng& rng) {
    return core::GesSearch(network, core::SearchOptions{})
        .search(q.vector, initiator, rng);
  };
  // Recall against *reachable* relevant docs would hide damage; we keep
  // the full judgment set, so recall dips when owners are offline.
  auto measure = [&] {
    return eval::recall_cost_curve(corpus, network, searcher, {0.5}, seed)
        .recall.back();
  };

  util::Table table({"sim time(s)", "alive nodes", "departures", "arrivals",
                     "groups", "recall@50%"});
  auto snapshot = [&](double t) {
    table.add_row({util::cell(t, 0), util::cell(network.alive_count()),
                   util::cell(churn.departures()), util::cell(churn.arrivals()),
                   util::cell(core::count_semantic_groups(network)),
                   util::pct_cell(measure())});
  };

  std::cout << "Churning " << corpus.num_nodes()
            << "-node network (mean session " << churn_params.mean_session
            << "s, mean downtime " << churn_params.mean_downtime << "s)\n\n";
  snapshot(0.0);
  for (const double t : {60.0, 120.0, 240.0, 480.0}) {
    queue.run_until(t);
    snapshot(t);
  }
  // Tear the periodic processes down cleanly: cancel the adaptation
  // timer and every pending churn session, then confirm the queue holds
  // no live work owned by them beyond the global heartbeat tick.
  adapt_timer.cancel();
  churn.stop();

  std::cout << table.render();
  std::cout << "\nAdaptation ran " << adapt_total.walk_messages
            << " discovery-walk messages across the run; "
            << queue.cancelled() << " timers were cancelled at teardown.\n";
  std::cout << "\nRecall against the full judgment set dips only by roughly the "
               "offline fraction:\nthe periodic adaptation re-links rejoining "
               "nodes into their semantic groups\n(paper 1: node churn 'causes "
               "little problem for Gnutella-like P2P systems').\n";
  network.check_invariants();
  return 0;
}
