// ges_workbench — a small CLI over the library for corpus management and
// ad-hoc experiments, the tool a downstream user reaches for first.
//
//   ges_workbench generate <out.gesc> [--scale S] [--seed N]
//   ges_workbench stats <corpus.gesc>
//   ges_workbench adapt <corpus.gesc> <out.gesn> [--vector-size S]
//   ges_workbench search <corpus.gesc> [--budget PCT] [--vector-size S]
//                        [--snapshot net.gesn]
//   ges_workbench curve <corpus.gesc> [--vector-size S]   (CSV to stdout)
//
// `adapt` runs the topology adaptation once and checkpoints the overlay;
// `search --snapshot` reloads it instead of re-adapting (full-scale
// adaptation takes minutes, reloading takes seconds).
//
// Run without arguments for a self-contained demo (generate + adapt +
// search through a snapshot in temp files).

#include <cstring>
#include <iostream>
#include <string>

#include "corpus/corpus_stats.hpp"
#include "corpus/serialization.hpp"
#include "corpus/synthetic_corpus.hpp"
#include "eval/experiment.hpp"
#include "ges/system.hpp"
#include "p2p/network_snapshot.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace {

using namespace ges;

struct Args {
  std::vector<std::string> positional;
  uint64_t seed = 42;
  util::Scale scale = util::Scale::kSmall;
  double budget = 0.30;
  size_t vector_size = 1000;
  std::string snapshot;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value after " + a);
      return argv[++i];
    };
    if (a == "--seed") {
      args.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (a == "--scale") {
      const std::string s = next();
      if (s == "tiny") args.scale = util::Scale::kTiny;
      else if (s == "small") args.scale = util::Scale::kSmall;
      else if (s == "medium") args.scale = util::Scale::kMedium;
      else if (s == "full") args.scale = util::Scale::kFull;
      else throw std::runtime_error("unknown scale " + s);
    } else if (a == "--budget") {
      args.budget = std::strtod(next().c_str(), nullptr);
    } else if (a == "--vector-size") {
      args.vector_size = std::strtoull(next().c_str(), nullptr, 10);
    } else if (a == "--snapshot") {
      args.snapshot = next();
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

int cmd_generate(const Args& args) {
  auto params = corpus::SyntheticCorpusParams::for_scale(args.scale);
  params.seed = args.seed;
  const auto corpus = corpus::generate_synthetic_corpus(params);
  corpus::save_corpus_file(corpus, args.positional[1]);
  std::cout << "wrote " << args.positional[1] << " ("
            << util::scale_name(args.scale) << " scale, seed " << args.seed
            << ")\n"
            << corpus::format_stats(corpus::compute_stats(corpus));
  return 0;
}

int cmd_stats(const Args& args) {
  const auto corpus = corpus::load_corpus_file(args.positional[1]);
  std::cout << corpus::format_stats(corpus::compute_stats(corpus));
  return 0;
}

core::GesSystem build_system(const corpus::Corpus& corpus, const Args& args) {
  core::GesBuildConfig config;
  config.seed = args.seed;
  config.net.node_vector_size = args.vector_size;
  core::GesSystem system(corpus, config);
  system.build();
  return system;
}

int cmd_adapt(const Args& args) {
  if (args.positional.size() < 3) {
    std::cerr << "usage: ges_workbench adapt <corpus.gesc> <out.gesn>\n";
    return 2;
  }
  const auto corpus = corpus::load_corpus_file(args.positional[1]);
  const auto system = build_system(corpus, args);
  p2p::save_network_snapshot_file(system.network(), args.positional[2]);
  std::cout << "adapted overlay (" << core::count_semantic_groups(system.network())
            << " semantic groups, mean link REL "
            << util::cell(core::mean_semantic_link_relevance(system.network()), 3)
            << ") -> " << args.positional[2] << "\n";
  return 0;
}

int cmd_search(const Args& args) {
  const auto corpus = corpus::load_corpus_file(args.positional[1]);

  // Either reload a checkpointed overlay or adapt from scratch.
  std::unique_ptr<p2p::Network> snapshot_net;
  std::unique_ptr<core::GesSystem> system;
  if (!args.snapshot.empty()) {
    p2p::NetworkConfig net_config;
    net_config.node_vector_size = args.vector_size;
    snapshot_net = std::make_unique<p2p::Network>(p2p::load_network_snapshot_file(
        corpus, args.snapshot, net_config));
  } else {
    system = std::make_unique<core::GesSystem>(corpus, [&] {
      core::GesBuildConfig config;
      config.seed = args.seed;
      config.net.node_vector_size = args.vector_size;
      return config;
    }());
    system->build();
  }
  const p2p::Network& net = snapshot_net ? *snapshot_net : system->network();

  core::SearchOptions options;
  options.probe_budget = std::max<size_t>(
      1, static_cast<size_t>(args.budget * static_cast<double>(net.alive_count())));

  util::Table table({"query", "probes", "recall", "prec@15"});
  util::Rng rng(args.seed);
  for (const auto& query : corpus.queries) {
    if (query.relevant.empty()) continue;
    const auto initiator = net.alive_nodes()[rng.index(net.alive_count())];
    const auto trace =
        core::GesSearch(net, options).search(query.vector, initiator, rng);
    const eval::Judgment judgment(query.relevant);
    table.add_row({std::to_string(query.id), util::cell(trace.probes()),
                   util::pct_cell(eval::recall(trace, judgment)),
                   util::pct_cell(eval::precision_at(trace, judgment, 15))});
  }
  std::cout << "GES search, budget " << util::pct_cell(args.budget, 0)
            << " of " << net.alive_count() << " nodes, s=" << args.vector_size
            << ":\n"
            << table.render();
  return 0;
}

int cmd_curve(const Args& args) {
  const auto corpus = corpus::load_corpus_file(args.positional[1]);
  auto system = build_system(corpus, args);
  const eval::Searcher searcher = [&](const corpus::Query& q, p2p::NodeId initiator,
                                      util::Rng& rng) {
    return system.search(q.vector, initiator, rng);
  };
  const auto curve =
      eval::recall_cost_curve(corpus, system.network(), searcher,
                              eval::standard_cost_grid(), args.seed);
  const auto table = eval::curves_table({"GES"}, {curve});
  std::cout << table.render_csv();
  return 0;
}

int run_demo(const Args& args) {
  std::cout << "No command given — running the demo "
               "(generate + adapt + search via snapshot).\n\n";
  Args demo = args;
  demo.positional = {"generate", "/tmp/ges_workbench_demo.gesc"};
  cmd_generate(demo);
  std::cout << '\n';
  demo.positional = {"adapt", "/tmp/ges_workbench_demo.gesc",
                     "/tmp/ges_workbench_demo.gesn"};
  cmd_adapt(demo);
  std::cout << '\n';
  demo.positional = {"search", "/tmp/ges_workbench_demo.gesc"};
  demo.snapshot = "/tmp/ges_workbench_demo.gesn";
  return cmd_search(demo);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (args.positional.empty()) return run_demo(args);
    const auto& cmd = args.positional[0];
    if (args.positional.size() < 2) {
      std::cerr << "usage: ges_workbench " << cmd << " <corpus.gesc> [options]\n";
      return 2;
    }
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "adapt") return cmd_adapt(args);
    if (cmd == "search") return cmd_search(args);
    if (cmd == "curve") return cmd_curve(args);
    std::cerr << "unknown command: " << cmd
              << " (expected generate|stats|adapt|search|curve)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
