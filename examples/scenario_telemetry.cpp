// Telemetry quick-start (docs/TELEMETRY.md): run a small fault+churn
// scenario with the deterministic telemetry layer enabled — including
// the query flight recorder, the sim-time series sampler and the node
// health watchdog — and dump the artifacts next to the binary:
//
//   telemetry_scenario.metrics.json     machine-readable counters (ges.metrics.v1)
//   telemetry_scenario.metrics.prom     Prometheus text exposition
//   telemetry_scenario.trace.json       Chrome trace_event JSON — load it in
//                                       https://ui.perfetto.dev or chrome://tracing
//   telemetry_scenario.autopsy.json     per-query causal autopsies (ges.autopsy.v1)
//   telemetry_scenario.timeseries.json  sim-time metric samples (ges.timeseries.v1)
//
// The trace timeline is *simulated* seconds, so the same seed reproduces
// the same files byte for byte. CI runs this binary and validates the
// artifacts with scripts/check_telemetry_json.py.
//
// Usage: scenario_telemetry [seed]

#include <cstdlib>
#include <iostream>

#include "corpus/synthetic_corpus.hpp"
#include "ges/scenario.hpp"
#include "obs/telemetry.hpp"
#include "util/env.hpp"

int main(int argc, char** argv) {
  using namespace ges;

  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  auto corpus_params = corpus::SyntheticCorpusParams::for_scale(util::Scale::kTiny);
  corpus_params.seed = seed;
  const auto corpus = corpus::generate_synthetic_corpus(corpus_params);

  core::ScenarioParams sp;
  sp.params.max_links = 6;
  sp.params.min_links = 2;
  sp.params.walk_ttl = 20;
  sp.faults = p2p::FaultPlan::uniform(0.1, util::derive_seed(seed, 77));
  sp.faults.delay_rate = 0.05;
  sp.faults.duplicate_rate = 0.02;
  sp.faults.partition_rate = 0.05;
  sp.churn_enabled = true;
  sp.churn.mean_session = 60.0;
  sp.churn.mean_downtime = 25.0;
  sp.churn.bootstrap_links = 2;
  sp.churn.seed = util::derive_seed(seed, 78);
  sp.rounds = 12;
  sp.seed = seed;
  sp.telemetry_out = "telemetry_scenario";  // enables telemetry + dumps files
  sp.flight_recorder = true;                // per-query causal autopsies
  sp.flight.sample_every = 1;               // retain every query (only 10 run)
  sp.timeseries_interval = 5.0;             // one sample per heartbeat interval
  sp.health_monitor = true;                 // round-boundary watchdog sweeps

  core::ScenarioRunner runner(corpus, sp);
  runner.run();

  // A few queries on the adapted overlay so the trace has query spans.
  // Each runs twice with the result cache in strict mode: the repeat is
  // served from the initiator's cache, so the export carries a live
  // ges.cache.* family (CI floor-checks its presence with
  // check_telemetry_json.py --expect-family ges.cache.).
  util::Rng rng(util::derive_seed(seed, 79));
  core::SearchOptions sopt;
  sopt.ttl = 30;
  sopt.use_result_cache = true;
  sopt.strict_result_cache = true;
  for (size_t q = 0; q < 5; ++q) {
    const auto alive = runner.network().alive_nodes();
    const auto initiator = alive[rng.index(alive.size())];
    const auto& query = corpus.queries[q % corpus.queries.size()].vector;
    runner.search(query, initiator, sopt, rng);
    runner.search(query, initiator, sopt, rng);
  }
  runner.write_telemetry(sp.telemetry_out);  // refresh with the query spans

  const auto snapshot = obs::global().metrics().snapshot();
  std::cout << "scenario finished: " << corpus.num_nodes() << " nodes, "
            << sp.rounds << " rounds, sim time " << runner.queue().now()
            << "s\n\ncounter summary:\n";
  for (const char* name :
       {"ges.adapt.rounds", "ges.adapt.handshake_messages",
        "ges.adapt.handshake_aborts", "p2p.heartbeat.sent", "p2p.heartbeat.lost",
        "p2p.churn.departures", "p2p.churn.arrivals", "p2p.walk.hops",
        "ges.search.queries", "ges.search.probes", "p2p.fault.blocked",
        "ges.cache.hits", "ges.cache.misses", "ges.cache.stores",
        "ges.cache.invalidations"}) {
    std::cout << "  " << name << " = " << snapshot.counter(name) << "\n";
  }
  if (const auto* health = runner.health()) {
    const auto& last = health->last();
    std::cout << "\nhealth (last sweep, t=" << last.t << "s): " << last.alive
              << "/" << last.nodes << " alive, " << last.anomalies
              << " anomalies this sweep (" << health->anomalies_seen()
              << " total), max heartbeat staleness " << last.max_staleness
              << "s, max cache occupancy " << last.max_cache_occupancy << ", "
              << last.nodes_in_backoff << " in backoff\n";
  }
  std::cout << "\nflight recorder: " << obs::flight().queries_seen()
            << " queries seen, " << obs::flight().retained_count()
            << " autopsies retained (" << obs::flight().queries_dropped()
            << " dropped)\ntimeseries: " << runner.timeseries()->samples_taken()
            << " samples taken, " << runner.timeseries()->samples_dropped()
            << " dropped\n";
  std::cout << "\ntrace events recorded: " << obs::global().trace().size()
            << " (dropped " << obs::global().trace().dropped() << ")\n"
            << "wrote " << sp.telemetry_out
            << ".{metrics.json,metrics.prom,trace.json,autopsy.json,"
               "timeseries.json}\nopen the trace in https://ui.perfetto.dev\n";
  return 0;
}
