// Diverse authors and virtual nodes: the paper's §7 observation is that
// "documents on a node could be diverse, and we need to distinguish
// diverse topics in a node's documents for better semantic group
// formation". This example builds a corpus of deliberately two-faced
// authors, shows how their blurred node vectors weaken the semantic
// overlay, then splits them into topic-pure virtual nodes and measures
// the improvement.
//
// Usage: diverse_authors [seed]

#include <cstdlib>
#include <iostream>

#include "corpus/synthetic_corpus.hpp"
#include "eval/experiment.hpp"
#include "ges/system.hpp"
#include "ges/virtual_nodes.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ges;

  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  auto corpus_params =
      corpus::SyntheticCorpusParams::for_scale(util::env_scale(util::Scale::kSmall));
  corpus_params.seed = seed;
  // Make authors maximally two-faced: several equally strong interests.
  corpus_params.interests_mean = 3.0;
  corpus_params.interest_decay = 0.9;
  const auto corpus = corpus::generate_synthetic_corpus(corpus_params);

  // Plain GES over the physical corpus.
  core::GesBuildConfig config;
  config.seed = seed;
  config.net.node_vector_size = 1000;
  core::GesSystem plain(corpus, config);
  plain.build();

  // Virtual-node GES: cluster each author's documents locally.
  core::VirtualNodeParams vparams;
  vparams.seed = seed;
  const auto mapping = core::build_virtual_corpus(corpus, vparams);
  core::GesSystem split(mapping.virtual_corpus, config);
  split.build();

  std::cout << "Physical nodes: " << mapping.physical_count()
            << ", virtual nodes: " << mapping.virtual_count() << "\n"
            << "Semantic groups (plain):   "
            << core::count_semantic_groups(plain.network()) << ", mean link REL "
            << core::mean_semantic_link_relevance(plain.network()) << "\n"
            << "Semantic groups (virtual): "
            << core::count_semantic_groups(split.network()) << ", mean link REL "
            << core::mean_semantic_link_relevance(split.network()) << "\n\n";

  const eval::Searcher plain_searcher = [&](const corpus::Query& q,
                                            p2p::NodeId initiator, util::Rng& rng) {
    return plain.search(q.vector, initiator, rng);
  };
  const eval::Searcher split_searcher = [&](const corpus::Query& q,
                                            p2p::NodeId initiator, util::Rng& rng) {
    const auto& hosted = mapping.virtuals_of[initiator % mapping.physical_count()];
    const auto trace =
        split.search(q.vector, hosted[rng.index(hosted.size())], rng);
    return core::project_to_physical(trace, mapping);
  };

  const auto grid = std::vector<double>{0.1, 0.2, 0.3, 0.5};
  const auto plain_curve = eval::recall_cost_curve(corpus, plain.network(),
                                                   plain_searcher, grid, seed);
  // Physical cost base: the plain network has one entry per author.
  const auto split_curve = eval::recall_cost_curve(corpus, plain.network(),
                                                   split_searcher, grid, seed);

  std::cout << eval::curves_table({"plain GES", "virtual-node GES"},
                                  {plain_curve, split_curve})
                   .render();
  std::cout << "\nVirtual nodes give each topic of a diverse author its own "
               "node vector,\nso semantic links connect the right material "
               "(paper §7).\n";
  return 0;
}
