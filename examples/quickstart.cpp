// Quickstart: build a small synthetic corpus, stand up GES, adapt the
// topology, and run a few queries — the minimal end-to-end use of the
// public API.
//
// Usage: quickstart [seed]   (GES_SCALE=tiny|small|medium|full scales it)

#include <cstdlib>
#include <iostream>

#include "corpus/corpus_stats.hpp"
#include "corpus/synthetic_corpus.hpp"
#include "eval/metrics.hpp"
#include "ges/system.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ges;

  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const auto scale = util::env_scale(util::Scale::kSmall);

  // 1. A corpus: authors become nodes, their documents the nodes' content.
  auto corpus_params = corpus::SyntheticCorpusParams::for_scale(scale);
  corpus_params.seed = seed;
  const auto corpus = corpus::generate_synthetic_corpus(corpus_params);
  std::cout << "Corpus (" << util::scale_name(scale) << " scale)\n"
            << corpus::format_stats(corpus::compute_stats(corpus)) << '\n';

  // 2. A GES deployment: bootstrap a random overlay, then let the
  //    distributed topology adaptation organize nodes into semantic groups.
  core::GesBuildConfig config;
  config.seed = seed;
  config.net.node_vector_size = 1000;  // the paper's sweet spot (§6.2)
  core::GesSystem system(corpus, config);
  system.build();

  std::cout << "Overlay after adaptation:\n"
            << "  semantic groups (>=2 nodes): "
            << core::count_semantic_groups(system.network()) << '\n'
            << "  mean semantic-link relevance: "
            << core::mean_semantic_link_relevance(system.network()) << "\n\n";

  // 3. Queries: biased walks + semantic-group flooding, bounded by a
  //    probe budget of 30 % of the network.
  util::Table table({"query", "probes", "cost", "recall", "prec@15"});
  util::Rng rng(seed);
  const auto alive = system.network().alive_nodes();
  auto options = system.default_search_options();
  options.probe_budget = std::max<size_t>(1, alive.size() * 3 / 10);

  for (const auto& query : corpus.queries) {
    if (query.relevant.empty()) continue;
    const auto initiator = alive[rng.index(alive.size())];
    const auto trace = system.search(query.vector, initiator, options, rng);
    const eval::Judgment judgment(query.relevant);
    table.add_row({std::to_string(query.id), std::to_string(trace.probes()),
                   util::pct_cell(eval::processing_cost(trace, alive.size())),
                   util::pct_cell(eval::recall(trace, judgment)),
                   util::pct_cell(eval::precision_at(trace, judgment, 15))});
  }
  std::cout << "Search with a 30% probe budget:\n" << table.render();
  return 0;
}
