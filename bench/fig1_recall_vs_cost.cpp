// Figure 1 (paper §6.1): recall vs. query processing cost for GES, SETS
// and Random, with uniform node capacities and full-size node vectors.
//
// Expected shape (paper): GES and SETS far above Random everywhere; SETS
// ahead of GES below ~30 % probing; GES ahead beyond it; all three meet
// at the short-query recall ceiling (98.5 % on TREC) at 100 % probing.

#include "obs/telemetry.hpp"
#include "support/bench_common.hpp"
#include "support/bench_json.hpp"

int main() {
  using namespace ges;
  const auto ctx = bench::make_context();
  bench::print_banner("Figure 1: recall vs processing cost (GES / SETS / Random)",
                      ctx);
  bench::BenchJsonWriter json("fig1_recall_vs_cost");
  // Telemetry is observation-only, so turning it on here only adds the
  // ges.search.* counters to the emitted JSON (embedded below).
  obs::global().set_enabled(true);

  // GES_REPEATS > 1 re-runs the whole experiment with shifted seeds and
  // averages the curves (reported with ± stddev at key points).
  const auto repeats = static_cast<size_t>(util::env_int("GES_REPEATS", 1));
  const auto grid = eval::standard_cost_grid();

  std::vector<eval::RecallCostCurve> ges_runs;
  std::vector<eval::RecallCostCurve> sets_runs;
  std::vector<eval::RecallCostCurve> random_runs;
  eval::SearchCostStats ges_stats;
  for (size_t rep = 0; rep < repeats; ++rep) {
    bench::BenchContext run_ctx = ctx;
    run_ctx.seed = ctx.seed + rep;
    core::GesBuildConfig config;  // uniform capacities, full node vectors
    const auto ges_system = bench::build_ges(run_ctx, config);
    const auto sets = bench::build_sets(run_ctx);
    const auto random_net = bench::build_random_network(run_ctx);
    ges_runs.push_back(eval::recall_cost_curve(
        ctx.corpus, ges_system->network(), bench::ges_searcher(*ges_system), grid,
        run_ctx.seed, &ges_stats));
    sets_runs.push_back(eval::recall_cost_curve(ctx.corpus, sets->network(),
                                                bench::sets_searcher(*sets), grid,
                                                run_ctx.seed));
    random_runs.push_back(
        eval::recall_cost_curve(ctx.corpus, *random_net,
                                bench::random_searcher(*random_net), grid,
                                run_ctx.seed));
  }
  const auto ges_avg = eval::average_curves(ges_runs);
  const auto sets_avg = eval::average_curves(sets_runs);
  const auto random_avg = eval::average_curves(random_runs);
  const auto ges_curve = ges_avg.mean_curve();
  const auto sets_curve = sets_avg.mean_curve();
  const auto random_curve = random_avg.mean_curve();

  std::cout << eval::curves_table({"GES", "SETS", "Random"},
                                  {ges_curve, sets_curve, random_curve})
                   .render();
  if (repeats > 1) {
    std::cout << "\n(" << repeats << " runs; GES stddev at 30%: "
              << util::pct_cell(ges_avg.stddev[6]) << ")\n";
  }

  std::cout << "\nkey paper points:\n"
            << "  GES recall at 30% nodes: " << util::pct_cell(ges_curve.recall_at(0.3))
            << "  (paper: ~71.6%)\n"
            << "  GES recall at 40% nodes: " << util::pct_cell(ges_curve.recall_at(0.4))
            << "  (paper: 89.3%; SETS: 80%)\n"
            << "  SETS recall at 40% nodes: " << util::pct_cell(sets_curve.recall_at(0.4))
            << "\n"
            << "  recall ceiling at 100%:  " << util::pct_cell(ges_curve.recall_at(1.0))
            << "  (paper: 98.5% for all three systems)\n"
            << "\nGES per-query cost: " << util::cell(ges_stats.mean_walk_steps, 1)
            << " walk steps, " << util::cell(ges_stats.mean_flood_messages, 1)
            << " flood messages, " << util::cell(ges_stats.mean_targets, 1)
            << " target nodes\n";

  for (size_t i = 0; i < grid.size(); ++i) {
    json.add("recall_at_cost/" + util::cell(grid[i] * 100.0, 0) + "pct", 0.0, 0.0,
             {{"cost_fraction", grid[i]},
              {"ges_recall", ges_curve.recall[i]},
              {"sets_recall", sets_curve.recall[i]},
              {"random_recall", random_curve.recall[i]}});
  }
  json.add("ges_per_query_cost", 0.0, 0.0,
           {{"walk_steps", ges_stats.mean_walk_steps},
            {"flood_messages", ges_stats.mean_flood_messages},
            {"targets", ges_stats.mean_targets},
            {"repeats", static_cast<double>(repeats)}});
  json.set_metrics(obs::global().metrics().snapshot());
  json.write();
  std::cout << "\nwrote " << json.path() << "\n";
  return 0;
}
