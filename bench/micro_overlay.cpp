// Micro-benchmarks of the overlay substrate and the GES protocols
// (google-benchmark): adaptation rounds, searches, SETS clustering.

#include <benchmark/benchmark.h>

#include "support/bench_json_main.hpp"

#include "baselines/random_walk_search.hpp"
#include "baselines/sets.hpp"
#include "corpus/synthetic_corpus.hpp"
#include "ges/system.hpp"
#include "util/env.hpp"

namespace {

using namespace ges;

const corpus::Corpus& bench_corpus() {
  static const corpus::Corpus corpus = [] {
    auto params = corpus::SyntheticCorpusParams::for_scale(util::Scale::kSmall);
    params.seed = 42;
    return corpus::generate_synthetic_corpus(params);
  }();
  return corpus;
}

void BM_AdaptationRound(benchmark::State& state) {
  const auto& corpus = bench_corpus();
  p2p::Network net(corpus, std::vector<p2p::Capacity>(corpus.num_nodes(), 1.0),
                   p2p::NetworkConfig{});
  util::Rng rng(1);
  p2p::bootstrap_random_graph(net, 6.0, rng);
  core::TopologyAdaptation adapt(net, core::GesParams{}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adapt.run_round());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(net.alive_count()));
}
BENCHMARK(BM_AdaptationRound)->Unit(benchmark::kMillisecond);

// The same round with the parallel plan phase disabled — isolates the
// thread-pool contribution from the rel-cache contribution.
void BM_AdaptationRoundSerial(benchmark::State& state) {
  const auto& corpus = bench_corpus();
  p2p::Network net(corpus, std::vector<p2p::Capacity>(corpus.num_nodes(), 1.0),
                   p2p::NetworkConfig{});
  util::Rng rng(1);
  p2p::bootstrap_random_graph(net, 6.0, rng);
  core::GesParams params;
  params.parallel_rounds = false;
  core::TopologyAdaptation adapt(net, params, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adapt.run_round());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(net.alive_count()));
}
BENCHMARK(BM_AdaptationRoundSerial)->Unit(benchmark::kMillisecond);

const core::GesSystem& adapted_system() {
  static const auto system = [] {
    core::GesBuildConfig config;
    config.net.node_vector_size = 1000;
    config.seed = 42;
    auto s = std::make_unique<core::GesSystem>(bench_corpus(), config);
    s->build();
    return s;
  }();
  return *system;
}

void BM_GesSearchBudget30(benchmark::State& state) {
  const auto& system = adapted_system();
  auto options = system.default_search_options();
  options.probe_budget = system.network().alive_count() * 3 / 10;
  util::Rng rng(3);
  size_t qi = 0;
  const auto& queries = bench_corpus().queries;
  for (auto _ : state) {
    const auto& q = queries[qi++ % queries.size()];
    benchmark::DoNotOptimize(system.search(q.vector, 0, options, rng));
  }
}
BENCHMARK(BM_GesSearchBudget30)->Unit(benchmark::kMicrosecond);

void BM_GesSearchExhaustive(benchmark::State& state) {
  const auto& system = adapted_system();
  util::Rng rng(4);
  size_t qi = 0;
  const auto& queries = bench_corpus().queries;
  for (auto _ : state) {
    const auto& q = queries[qi++ % queries.size()];
    benchmark::DoNotOptimize(system.search(q.vector, 0, rng));
  }
}
BENCHMARK(BM_GesSearchExhaustive)->Unit(benchmark::kMicrosecond);

void BM_RandomWalkSearchExhaustive(benchmark::State& state) {
  const auto& corpus = bench_corpus();
  p2p::Network net(corpus, std::vector<p2p::Capacity>(corpus.num_nodes(), 1.0),
                   p2p::NetworkConfig{});
  util::Rng boot(5);
  p2p::bootstrap_random_graph(net, 8.0, boot);
  util::Rng rng(6);
  size_t qi = 0;
  for (auto _ : state) {
    const auto& q = corpus.queries[qi++ % corpus.queries.size()];
    benchmark::DoNotOptimize(
        baselines::random_walk_search(net, q.vector, 0, {}, rng));
  }
}
BENCHMARK(BM_RandomWalkSearchExhaustive)->Unit(benchmark::kMicrosecond);

void BM_SetsBuild(benchmark::State& state) {
  const auto& corpus = bench_corpus();
  for (auto _ : state) {
    baselines::SetsParams params;
    params.seed = 7;
    baselines::SetsSystem sets(corpus,
                               std::vector<p2p::Capacity>(corpus.num_nodes(), 1.0),
                               p2p::NetworkConfig{}, params);
    sets.build();
    benchmark::DoNotOptimize(sets.segment_count());
  }
}
BENCHMARK(BM_SetsBuild)->Unit(benchmark::kMillisecond);

void BM_BootstrapRandomGraph(benchmark::State& state) {
  const auto& corpus = bench_corpus();
  for (auto _ : state) {
    p2p::Network net(corpus, std::vector<p2p::Capacity>(corpus.num_nodes(), 1.0),
                     p2p::NetworkConfig{});
    util::Rng rng(8);
    p2p::bootstrap_random_graph(net, 8.0, rng);
    benchmark::DoNotOptimize(net.alive_count());
  }
}
BENCHMARK(BM_BootstrapRandomGraph)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return ges::bench::run_benchmarks_with_json(argc, argv, "micro_overlay");
}
