// Response-time extension (not in the paper, which reports only probe
// counts): the message-level asynchronous engine assigns every hop a
// latency, so we can measure what semantic-group flooding does to the
// *time* a user waits for results. Walk hops are sequential — one
// message in flight — while a flood fans out in parallel; GES's switch
// from walking to flooding is therefore also a latency optimization.

#include "ges/async_search.hpp"
#include "support/bench_common.hpp"
#include "support/bench_json.hpp"
#include "util/stats.hpp"

namespace {

using namespace ges;

struct LatencyRow {
  double first_hit_p50 = 0.0;
  double first_hit_p90 = 0.0;
  double complete_p50 = 0.0;
  double complete_p90 = 0.0;
  double probes_mean = 0.0;
};

LatencyRow measure(const bench::BenchContext& ctx, const p2p::Network& net,
                   const core::SearchOptions& options) {
  p2p::EventQueue queue;
  core::LatencyModel latency;  // 50 ms/hop ± 20
  core::AsyncSearchEngine engine(net, queue, options, latency);
  std::vector<core::AsyncQueryResult> results;
  for (size_t qi = 0; qi < ctx.corpus.queries.size(); ++qi) {
    const auto& query = ctx.corpus.queries[qi];
    if (query.relevant.empty()) continue;
    util::Rng rng(util::derive_seed(ctx.seed, 0xAB000 + qi));
    const auto initiator = net.alive_nodes()[rng.index(net.alive_count())];
    engine.submit(query.vector, initiator, util::derive_seed(ctx.seed, qi),
                  [&results](const core::AsyncQueryResult& r) {
                    results.push_back(r);
                  });
  }
  queue.run();

  std::vector<double> first_hit;
  std::vector<double> complete;
  util::Accumulator probes;
  for (const auto& r : results) {
    if (r.time_to_first_hit() >= 0.0) first_hit.push_back(r.time_to_first_hit());
    complete.push_back(r.completion_time());
    probes.add(static_cast<double>(r.trace.probes()));
  }
  LatencyRow row;
  row.first_hit_p50 = util::percentile(first_hit, 50.0);
  row.first_hit_p90 = util::percentile(first_hit, 90.0);
  row.complete_p50 = util::percentile(complete, 50.0);
  row.complete_p90 = util::percentile(complete, 90.0);
  row.probes_mean = probes.mean();
  return row;
}

}  // namespace

int main() {
  const auto ctx = bench::make_context(util::Scale::kSmall);
  bench::print_banner("Response time (async engine, 50ms/hop): flooding as a "
                      "latency optimization",
                      ctx);
  bench::BenchJsonWriter json("latency_response_time");

  core::GesBuildConfig config;
  config.net.node_vector_size = 1000;
  const auto system = bench::build_ges(ctx, config);
  const auto& net = system->network();

  util::Table table({"protocol variant", "first-hit p50(s)", "first-hit p90(s)",
                     "complete p50(s)", "complete p90(s)", "probes"});
  const size_t budget = std::max<size_t>(1, net.alive_count() * 3 / 10);

  auto base = system->default_search_options();
  base.probe_budget = budget;

  auto walk_only = base;
  walk_only.target_rel_threshold = 1e9;  // flooding never triggers

  auto narrow = base;
  narrow.flood_radius = 1;

  struct Variant {
    const char* name;
    const core::SearchOptions* options;
  };
  for (const auto& [name, options] :
       {Variant{"GES (walk + group flooding)", &base},
        Variant{"controlled flooding, radius 1", &narrow},
        Variant{"walk only (no flooding)", &walk_only}}) {
    const auto row = measure(ctx, net, *options);
    table.add_row({name, util::cell(row.first_hit_p50, 2),
                   util::cell(row.first_hit_p90, 2),
                   util::cell(row.complete_p50, 2),
                   util::cell(row.complete_p90, 2),
                   util::cell(row.probes_mean, 0)});
    // Latencies are simulated seconds, not wall time, so the timing slots
    // stay 0 and the percentiles ride in the extras.
    json.add(name, 0.0, 0.0,
             {{"first_hit_p50_s", row.first_hit_p50},
              {"first_hit_p90_s", row.first_hit_p90},
              {"complete_p50_s", row.complete_p50},
              {"complete_p90_s", row.complete_p90},
              {"probes_mean", row.probes_mean}});
  }
  json.write();
  std::cout << table.render();
  std::cout << "\nWalk hops are sequential; floods fan out in parallel. The "
               "same 30% probe\nbudget completes far sooner once semantic "
               "groups absorb the exploration.\n"
               "wrote " << json.path() << "\n";
  return 0;
}
