// Figure 2(d) (paper §6.2): ranked term weight for node vectors,
// normalized to the biggest term weight in each node vector.
//
// Expected shape (paper): the top ~100 terms drop faster than a Zipf
// distribution; the top ~1000 terms still drop very fast — a relatively
// small number of terms characterizes a node's contents, which is why an
// appropriate node-vector size (s ~ 1000) works so well.

#include <algorithm>

#include "p2p/network.hpp"
#include "support/bench_common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace ges;
  const auto ctx = bench::make_context();
  bench::print_banner("Figure 2d: ranked normalized term weight per node vector",
                      ctx);

  // Full-size node vectors, as in the paper's figure (top 8000 terms).
  const p2p::Network net(ctx.corpus,
                         std::vector<p2p::Capacity>(ctx.corpus.num_nodes(), 1.0),
                         p2p::NetworkConfig{});

  constexpr size_t kMaxRank = 8000;
  std::vector<util::Accumulator> at_rank(kMaxRank);
  util::Accumulator vector_sizes;
  for (p2p::NodeId n = 0; n < net.size(); ++n) {
    const auto& nv = net.full_node_vector(n);
    vector_sizes.add(static_cast<double>(nv.size()));
    std::vector<float> weights;
    weights.reserve(nv.size());
    for (const auto& e : nv.entries()) weights.push_back(e.weight);
    std::sort(weights.begin(), weights.end(), std::greater<>());
    if (weights.empty()) continue;
    const double top = weights.front();
    for (size_t r = 0; r < std::min(kMaxRank, weights.size()); ++r) {
      at_rank[r].add(weights[r] / top);
    }
  }

  util::Table table({"term rank", "normalized weight (mean)", "zipf 1/r",
                     "nodes at rank"});
  for (const size_t rank : {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000,
                            4000, 8000}) {
    if (rank > kMaxRank || at_rank[rank - 1].count() == 0) continue;
    table.add_row({util::cell(rank), util::cell(at_rank[rank - 1].mean(), 4),
                   util::cell(1.0 / static_cast<double>(rank), 4),
                   util::cell(at_rank[rank - 1].count())});
  }
  std::cout << table.render();

  std::cout << "\nnode vector size: mean " << util::cell(vector_sizes.mean(), 0)
            << ", min " << util::cell(vector_sizes.min(), 0) << ", max "
            << util::cell(vector_sizes.max(), 0)
            << "  (paper: mean 1776, p1 88, p99 7474)\n"
            << "paper reference: top-100 weights drop faster than Zipf; top-1000 "
               "still drop very fast\n";
  return 0;
}
