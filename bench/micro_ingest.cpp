// Micro-benchmarks of the ingest & bring-up pipeline (google-benchmark):
// end-to-end synthetic corpus build, TREC analysis + sharded interning,
// dictionary interning, per-node index/vector bring-up, and corpus
// (de)serialization. Thread-count arguments: 0 = strictly serial
// reference path, N = dedicated N-thread pool. Items processed are
// documents, so google-benchmark's items/s column reads as docs/sec.

#include <benchmark/benchmark.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "support/bench_json_main.hpp"

#include "corpus/serialization.hpp"
#include "corpus/synthetic_corpus.hpp"
#include "corpus/trec_loader.hpp"
#include "ir/sharded_term_dictionary.hpp"
#include "p2p/network.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ges;

corpus::SyntheticCorpusParams bench_params() {
  auto params = corpus::SyntheticCorpusParams::for_scale(
      util::env_scale(util::Scale::kTiny));
  params.seed = static_cast<uint64_t>(util::env_int("GES_SEED", 42));
  return params;
}

std::unique_ptr<util::ThreadPool> pool_for(int64_t threads) {
  return threads == 0 ? nullptr
                      : std::make_unique<util::ThreadPool>(static_cast<size_t>(threads));
}

/// End-to-end synthetic corpus build (analysis, vectors, judgments, df
/// filter). Arg = thread count, 0 = serial reference.
void BM_SyntheticCorpusBuild(benchmark::State& state) {
  const auto params = bench_params();
  const auto pool = pool_for(state.range(0));
  size_t docs = 0;
  for (auto _ : state) {
    const auto corpus = corpus::generate_synthetic_corpus(params, pool.get());
    docs = corpus.num_docs();
    benchmark::DoNotOptimize(corpus.num_docs());
  }
  state.SetItemsProcessed(static_cast<int64_t>(docs * state.iterations()));
}
BENCHMARK(BM_SyntheticCorpusBuild)->Arg(0)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Deterministic in-memory TREC-shaped raw docs for analysis benches.
std::vector<corpus::TrecRawDoc> make_raw_docs(size_t count) {
  static const char* kWords[] = {
      "economy",   "markets",    "rallied",   "accelerator", "particle",
      "scientist", "restarted",  "quarterly", "growth",      "policy",
      "election",  "senate",     "drought",   "harvest",     "pipeline",
      "satellite", "orbit",      "launch",    "computing",   "networks",
      "estimates", "regulation", "tariffs",   "exports",     "inflation"};
  util::Rng rng(7);
  std::vector<corpus::TrecRawDoc> docs(count);
  for (size_t i = 0; i < count; ++i) {
    docs[i].docno = "AP-" + std::to_string(i);
    docs[i].author = "Author " + std::to_string(rng.index(count / 8 + 1));
    const size_t words = 120 + rng.index(120);
    docs[i].text.reserve(words * 10);
    for (size_t w = 0; w < words; ++w) {
      if (!docs[i].text.empty()) docs[i].text += ' ';
      docs[i].text += kWords[rng.index(std::size(kWords))];
      docs[i].text += std::to_string(rng.index(400));  // widen the vocabulary
    }
  }
  return docs;
}

/// TREC ingest: tokenize -> stop -> stem -> sharded intern -> remap ->
/// vectors. Arg = thread count, 0 = serial reference.
void BM_TrecIngest(benchmark::State& state) {
  const auto raw = make_raw_docs(800);
  const auto pool = pool_for(state.range(0));
  for (auto _ : state) {
    const auto corpus = corpus::build_corpus_from_trec(raw, {}, {}, 0.5, pool.get());
    benchmark::DoNotOptimize(corpus.num_docs());
  }
  state.SetItemsProcessed(static_cast<int64_t>(raw.size() * state.iterations()));
}
BENCHMARK(BM_TrecIngest)->Arg(0)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Serial dictionary interning over a zipf-ish repeating term stream.
void BM_DictionaryIntern(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<std::string> stream;
  stream.reserve(100'000);
  for (size_t i = 0; i < 100'000; ++i) {
    stream.push_back("term" + std::to_string(rng.index(20'000)));
  }
  for (auto _ : state) {
    ir::TermDictionary dict;
    for (const auto& term : stream) benchmark::DoNotOptimize(dict.intern(term));
  }
  state.SetItemsProcessed(static_cast<int64_t>(stream.size() * state.iterations()));
}
BENCHMARK(BM_DictionaryIntern);

/// Concurrent sharded interning + deterministic freeze of the same stream.
void BM_ShardedIntern(benchmark::State& state) {
  util::Rng rng(3);
  const size_t docs = 1'000;
  std::vector<std::vector<std::string>> doc_terms(docs);
  for (size_t d = 0; d < docs; ++d) {
    for (size_t t = 0; t < 100; ++t) {
      doc_terms[d].push_back("term" + std::to_string(rng.index(20'000)));
    }
  }
  const auto pool = pool_for(state.range(0));
  for (auto _ : state) {
    ir::ShardedTermDictionary sharded;
    util::for_each_index(pool.get(), docs, [&](size_t d) {
      for (uint32_t t = 0; t < doc_terms[d].size(); ++t) {
        benchmark::DoNotOptimize(sharded.intern(doc_terms[d][t], d, t));
      }
    });
    ir::TermDictionary dict;
    benchmark::DoNotOptimize(sharded.freeze_into(dict));
  }
  state.SetItemsProcessed(static_cast<int64_t>(docs * state.iterations()));
}
BENCHMARK(BM_ShardedIntern)->Arg(0)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

/// System bring-up: per-node LocalIndex build + node-vector construction
/// (Network constructor). Arg 0 = serial, 1 = parallel on the global pool.
void BM_NetworkBringUp(benchmark::State& state) {
  const auto params = bench_params();
  const auto corpus = corpus::generate_synthetic_corpus(params);
  p2p::NetworkConfig config;
  config.parallel_build = state.range(0) != 0;
  const std::vector<p2p::Capacity> capacities(corpus.num_nodes(), 1.0);
  for (auto _ : state) {
    p2p::Network network(corpus, capacities, config);
    benchmark::DoNotOptimize(network.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(corpus.num_docs() * state.iterations()));
}
BENCHMARK(BM_NetworkBringUp)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SerializeCorpus(benchmark::State& state) {
  const auto corpus = corpus::generate_synthetic_corpus(bench_params());
  for (auto _ : state) {
    std::ostringstream out;
    corpus::save_corpus(corpus, out);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(corpus.num_docs() * state.iterations()));
}
BENCHMARK(BM_SerializeCorpus)->Unit(benchmark::kMillisecond);

void BM_DeserializeCorpus(benchmark::State& state) {
  const auto corpus = corpus::generate_synthetic_corpus(bench_params());
  std::ostringstream out;
  corpus::save_corpus(corpus, out);
  const std::string bytes = out.str();
  for (auto _ : state) {
    std::istringstream in(bytes);
    const auto loaded = corpus::load_corpus(in);
    benchmark::DoNotOptimize(loaded.num_docs());
  }
  state.SetItemsProcessed(static_cast<int64_t>(corpus.num_docs() * state.iterations()));
}
BENCHMARK(BM_DeserializeCorpus)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return ges::bench::run_benchmarks_with_json(argc, argv, "micro_ingest");
}
