#pragma once

// google-benchmark glue for BENCH_<name>.json emission (bench_json.hpp).
// Including <benchmark/benchmark.h> pulls in a static initializer that
// needs libbenchmark at link time, so this lives apart from the
// benchmark-library-free BenchJsonWriter.

#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "support/bench_json.hpp"

namespace ges::bench {

/// Console reporter that additionally records every per-iteration run and
/// writes BENCH_<name>.json when the benchmark binary finishes.
class JsonConsoleReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonConsoleReporter(std::string bench_name)
      : writer_(std::move(bench_name)) {}

  ~JsonConsoleReporter() override {
    if (!writer_.empty()) writer_.write();
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const auto iterations = static_cast<double>(run.iterations);
      if (iterations <= 0.0 || run.real_accumulated_time <= 0.0) continue;
      const double secs_per_op = run.real_accumulated_time / iterations;
      writer_.add(run.benchmark_name(), 1.0 / secs_per_op, secs_per_op * 1e9);
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchJsonWriter writer_;
};

/// main() body for a google-benchmark binary that emits BENCH_<name>.json.
inline int run_benchmarks_with_json(int argc, char** argv, const char* bench_name) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  {
    JsonConsoleReporter reporter(bench_name);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }  // reporter destructor writes the JSON
  benchmark::Shutdown();
  return 0;
}

}  // namespace ges::bench
