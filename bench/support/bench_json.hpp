#pragma once

// JSON emission for the bench binaries: every bench writes a
// machine-readable BENCH_<name>.json next to its human-readable output,
// seeding the perf trajectory across PRs (compare ops/sec between
// commits). This header is benchmark-library-free so the plain
// figure/table benches can use BenchJsonWriter; google-benchmark
// binaries use bench_json_main.hpp on top.

#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace ges::bench {

class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name) : name_(std::move(bench_name)) {}

  /// Record one benchmark result; `extra` holds free-form numeric
  /// counters (items/sec, recall, message rates, ...).
  void add(const std::string& entry_name, double ops_per_sec, double ns_per_op,
           const std::vector<std::pair<std::string, double>>& extra = {}) {
    std::ostringstream os;
    os << "    {\"name\": " << quoted(entry_name)
       << ", \"ops_per_sec\": " << number(ops_per_sec)
       << ", \"ns_per_op\": " << number(ns_per_op);
    for (const auto& [key, value] : extra) {
      os << ", " << quoted(key) << ": " << number(value);
    }
    os << "}";
    entries_.push_back(os.str());
  }

  std::string path() const { return "BENCH_" + name_ + ".json"; }

  /// Write BENCH_<name>.json into the working directory.
  void write() const {
    std::ofstream out(path());
    out << "{\n  \"bench\": " << quoted(name_) << ",\n  \"entries\": [\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      out << entries_[i] << (i + 1 < entries_.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
  }

  bool empty() const { return entries_.empty(); }

 private:
  static std::string quoted(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out + "\"";
  }

  static std::string number(double v) {
    std::ostringstream os;
    os << std::setprecision(12) << v;
    const std::string s = os.str();
    // JSON has no inf/nan literals.
    return (s.find("inf") != std::string::npos || s.find("nan") != std::string::npos)
               ? "null"
               : s;
  }

  std::string name_;
  std::vector<std::string> entries_;
};

}  // namespace ges::bench
