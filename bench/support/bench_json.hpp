#pragma once

// Compatibility shim: the BENCH_<name>.json emitter moved into the
// observability library (obs/bench_emitter.hpp, schema "ges.bench.v1")
// so benches, examples and CI share one schema. Bench binaries keep
// including this header and using ges::bench::BenchJsonWriter.

#include "obs/bench_emitter.hpp"

namespace ges::bench {

using obs::BenchJsonWriter;

}  // namespace ges::bench
