#pragma once

// Shared plumbing for the figure/table reproduction benches. Every bench
// binary runs stand-alone with no arguments; GES_SCALE=tiny|small|medium|full
// selects corpus size (medium by default; "full" is the paper's 1,880
// nodes / ~80k documents) and GES_SEED overrides the root seed.

#include <cstdint>
#include <iostream>

#include "baselines/random_walk_search.hpp"
#include "baselines/sets.hpp"
#include "corpus/corpus_stats.hpp"
#include "corpus/synthetic_corpus.hpp"
#include "eval/experiment.hpp"
#include "ges/system.hpp"
#include "util/env.hpp"

namespace ges::bench {

struct BenchContext {
  util::Scale scale = util::Scale::kMedium;
  uint64_t seed = 42;
  corpus::Corpus corpus;
};

inline BenchContext make_context(util::Scale default_scale = util::Scale::kMedium) {
  BenchContext ctx;
  ctx.scale = util::env_scale(default_scale);
  ctx.seed = static_cast<uint64_t>(util::env_int("GES_SEED", 42));
  auto params = corpus::SyntheticCorpusParams::for_scale(ctx.scale);
  params.seed = ctx.seed;
  ctx.corpus = corpus::generate_synthetic_corpus(params);
  return ctx;
}

inline void print_banner(const char* title, const BenchContext& ctx) {
  std::cout << "=== " << title << " ===\n"
            << "scale: " << util::scale_name(ctx.scale) << " ("
            << ctx.corpus.num_nodes() << " nodes, " << ctx.corpus.num_docs()
            << " docs, " << ctx.corpus.queries.size() << " queries), seed: "
            << ctx.seed << "\n\n";
}

/// GES at a given node-vector size; capacity profile and search options
/// are taken from `config`.
inline std::unique_ptr<core::GesSystem> build_ges(const BenchContext& ctx,
                                                  core::GesBuildConfig config) {
  config.seed = ctx.seed;
  auto system = std::make_unique<core::GesSystem>(ctx.corpus, config);
  system->build();
  return system;
}

inline eval::Searcher ges_searcher(const core::GesSystem& system) {
  return [&system](const corpus::Query& q, p2p::NodeId initiator, util::Rng& rng) {
    return system.search(q.vector, initiator, rng);
  };
}

/// The Random baseline network: uniformly random graph, average degree 8
/// (paper §5.4).
inline std::unique_ptr<p2p::Network> build_random_network(const BenchContext& ctx) {
  auto net = std::make_unique<p2p::Network>(
      ctx.corpus, std::vector<p2p::Capacity>(ctx.corpus.num_nodes(), 1.0),
      p2p::NetworkConfig{});
  util::Rng rng(util::derive_seed(ctx.seed, 77));
  p2p::bootstrap_random_graph(*net, 8.0, rng);
  return net;
}

inline eval::Searcher random_searcher(const p2p::Network& net) {
  return [&net](const corpus::Query& q, p2p::NodeId initiator, util::Rng& rng) {
    return baselines::random_walk_search(net, q.vector, initiator, {}, rng);
  };
}

inline std::unique_ptr<baselines::SetsSystem> build_sets(const BenchContext& ctx) {
  baselines::SetsParams params;
  params.seed = util::derive_seed(ctx.seed, 88);
  auto sets = std::make_unique<baselines::SetsSystem>(
      ctx.corpus, std::vector<p2p::Capacity>(ctx.corpus.num_nodes(), 1.0),
      p2p::NetworkConfig{}, params);
  sets->build();
  return sets;
}

inline eval::Searcher sets_searcher(const baselines::SetsSystem& sets) {
  // The designated node ranks the R most relevant segments; the rest of
  // the network is searched without topic guidance (paper §5.1).
  baselines::SetsSearchOptions options;
  options.route_segments = std::max<size_t>(4, sets.segment_count() / 8);
  return [&sets, options](const corpus::Query& q, p2p::NodeId initiator,
                          util::Rng& rng) {
    return sets.search(q.vector, initiator, options, rng);
  };
}

}  // namespace ges::bench
