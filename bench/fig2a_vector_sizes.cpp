// Figure 2(a) (paper §6.2): recall vs. processing cost for node-vector
// sizes s in {20, 50, 100, 500, 1000, 2000, full}.
//
// Expected shape (paper): s = 1000/500 best (81 % recall at 30 % nodes);
// s = 100 close behind (~68 % at 30 %); s = 20/50 surprisingly usable
// (44-55 % / 63-67 % at 20 % / 30 %); full-size vectors *worse* than 1000
// because unimportant terms pollute Eq. 2.

#include "support/bench_common.hpp"

int main() {
  using namespace ges;
  const auto ctx = bench::make_context();
  bench::print_banner("Figure 2a: effect of node vector size", ctx);

  const size_t sizes[] = {20, 50, 100, 500, 1000, 2000, 0};  // 0 = full
  const auto grid = eval::standard_cost_grid();

  std::vector<std::string> names;
  std::vector<eval::RecallCostCurve> curves;
  for (const size_t s : sizes) {
    core::GesBuildConfig config;
    config.net.node_vector_size = s;
    const auto system = bench::build_ges(ctx, config);
    curves.push_back(eval::recall_cost_curve(ctx.corpus, system->network(),
                                             bench::ges_searcher(*system), grid,
                                             ctx.seed));
    names.push_back(s == 0 ? "full" : "s=" + std::to_string(s));
    std::cout << "  built and evaluated " << names.back() << ": recall@30% = "
              << util::pct_cell(curves.back().recall_at(0.3)) << "\n";
  }

  std::cout << '\n' << eval::curves_table(names, curves).render();
  std::cout << "\npaper reference: s=1000/500 best (81% @30%), s=100 ~68% @30%, "
               "s=20/50 44-67% @20-30%, full below s=1000\n";
  return 0;
}
