// Ablations of GES's design choices (DESIGN.md experiment index):
//   A. biased walks vs blind walks        (selective one-hop replication)
//   B. capacity-aware vs capacity-blind   (heterogeneous profile)
//   C. alpha sweep                        (semantic/random link budget split)
//   D. node_rel_threshold sweep           (semantic group tightness)
//   E. controlled-flooding radius sweep
// Reported metric: mean recall at 30 % probing (the paper's headline
// operating point).

#include "baselines/random_walk_search.hpp"
#include "support/bench_common.hpp"

namespace {

using namespace ges;

double recall_at_30(const bench::BenchContext& ctx, const core::GesSystem& system,
                    const core::SearchOptions& options) {
  const eval::Searcher searcher = [&](const corpus::Query& q, p2p::NodeId initiator,
                                      util::Rng& rng) {
    return core::GesSearch(system.network(), options).search(q.vector, initiator, rng);
  };
  return eval::recall_cost_curve(ctx.corpus, system.network(), searcher, {0.30},
                                 ctx.seed)
      .recall.back();
}

}  // namespace

int main() {
  const auto ctx = bench::make_context();
  bench::print_banner("Ablations: GES design choices (recall at 30% probing)", ctx);

  // --- A. Biased vs blind walks on the adapted overlay -----------------
  {
    core::GesBuildConfig config;
    config.net.node_vector_size = 1000;
    const auto system = bench::build_ges(ctx, config);
    const double biased = recall_at_30(ctx, *system, system->default_search_options());
    // Blind: random walk over the *same* adapted overlay.
    const eval::Searcher blind = [&](const corpus::Query& q, p2p::NodeId initiator,
                                     util::Rng& rng) {
      return baselines::random_walk_search(system->network(), q.vector, initiator, {},
                                           rng);
    };
    const double blind_recall =
        eval::recall_cost_curve(ctx.corpus, system->network(), blind, {0.30}, ctx.seed)
            .recall.back();
    util::Table t({"walk policy", "recall@30%"});
    t.add_row({"biased (replicated vectors) + flooding", util::pct_cell(biased)});
    t.add_row({"blind random walk, same overlay", util::pct_cell(blind_recall)});
    std::cout << "A. biased walks vs blind walks\n" << t.render() << '\n';
  }

  // --- B. Capacity-aware vs capacity-blind search (heterogeneous) ------
  {
    core::GesBuildConfig config;
    config.net.node_vector_size = 1000;
    config.capacities = p2p::CapacityProfile::gnutella();
    config.params.max_links = 128;
    config.params.capacity_constrained = true;
    const auto system = bench::build_ges(ctx, config);
    auto aware = system->default_search_options();
    aware.capacity_aware = true;
    auto blind = aware;
    blind.capacity_aware = false;
    util::Table t({"search policy", "recall@30%"});
    t.add_row({"capacity-aware biased walks", util::pct_cell(recall_at_30(ctx, *system, aware))});
    t.add_row({"capacity-blind biased walks", util::pct_cell(recall_at_30(ctx, *system, blind))});
    std::cout << "B. capacity awareness (gnutella profile)\n" << t.render() << '\n';
  }

  // --- C. alpha sweep ---------------------------------------------------
  {
    util::Table t({"alpha", "recall@30%", "semantic groups"});
    for (const double alpha : {0.25, 0.5, 0.75}) {
      core::GesBuildConfig config;
      config.net.node_vector_size = 1000;
      config.params.alpha = alpha;
      const auto system = bench::build_ges(ctx, config);
      t.add_row({util::cell(alpha, 2),
                 util::pct_cell(recall_at_30(ctx, *system,
                                             system->default_search_options())),
                 util::cell(core::count_semantic_groups(system->network()))});
    }
    std::cout << "C. alpha (fraction of links devoted to semantic links; paper: "
                 "0.5)\n"
              << t.render() << '\n';
  }

  // --- D. node_rel_threshold sweep --------------------------------------
  {
    util::Table t({"node_rel_threshold", "recall@30%", "mean semantic-link REL"});
    for (const double threshold : {0.25, 0.45, 0.65}) {
      core::GesBuildConfig config;
      config.net.node_vector_size = 1000;
      config.params.node_rel_threshold = threshold;
      const auto system = bench::build_ges(ctx, config);
      t.add_row({util::cell(threshold, 2),
                 util::pct_cell(recall_at_30(ctx, *system,
                                             system->default_search_options())),
                 util::cell(core::mean_semantic_link_relevance(system->network()), 3)});
    }
    std::cout << "D. node relevance threshold (paper: 0.45)\n" << t.render() << '\n';
  }

  // --- E. controlled-flooding radius ------------------------------------
  {
    core::GesBuildConfig config;
    config.net.node_vector_size = 1000;
    const auto system = bench::build_ges(ctx, config);
    util::Table t({"flood radius", "recall@30%"});
    for (const size_t radius : {size_t{1}, size_t{2}, size_t{4}, size_t{0}}) {
      auto options = system->default_search_options();
      options.flood_radius = radius;
      t.add_row({radius == 0 ? "unbounded" : util::cell(radius),
                 util::pct_cell(recall_at_30(ctx, *system, options))});
    }
    std::cout << "E. controlled flooding radius (paper §4.5)\n" << t.render() << '\n';
  }

  // --- F. §4.3 discovery optimizations + §7 satisfaction throttling ----
  {
    util::Table t({"adaptation variant", "recall@30%", "walk msgs/round",
                   "extra msgs/round"});
    struct Variant {
      const char* name;
      bool assist;
      bool gossip;
      bool satisfaction;
    };
    const Variant variants[] = {
        {"paper GES (plain discovery)", false, false, false},
        {"+ cache-assisted discovery", true, false, false},
        {"+ host-cache gossip", false, true, false},
        {"+ satisfaction throttling", false, false, true},
    };
    for (const auto& v : variants) {
      core::GesBuildConfig config;
      config.net.node_vector_size = 1000;
      config.params.cache_assisted_discovery = v.assist;
      config.params.gossip_host_caches = v.gossip;
      config.params.satisfaction_adaptive = v.satisfaction;
      config.seed = ctx.seed;
      core::GesSystem system(ctx.corpus, config);
      system.build();
      // Steady-state maintenance traffic after convergence.
      const auto steady = system.adaptation().run_rounds(3);
      const double rounds = 3.0;
      t.add_row({v.name,
                 util::pct_cell(recall_at_30(ctx, system,
                                             system.default_search_options())),
                 util::cell(static_cast<double>(steady.walk_messages) / rounds, 0),
                 util::cell(static_cast<double>(steady.gossip_messages +
                                                steady.cache_assists) /
                                rounds,
                            0)});
    }
    std::cout << "F. discovery optimizations (paper §4.3, not adopted by GES) "
                 "and satisfaction throttling (§7)\n"
              << t.render();
  }
  return 0;
}
