// Query-result cache under a repeat-heavy workload: the same GES overlay
// serves a Zipf(1.0)-distributed request stream (popular queries repeat
// often, as Gnutella query logs do) with the result cache off and on.
// Each query rank is a FIXED (query vector, initiator, rng seed) triple,
// so the cache-off run re-executes byte-identical searches and the
// cache-on run must return the exact same (doc, score) sequences — a
// per-rank FNV checksum enforces that recall is unchanged, while the
// probe counters show the work saved. Cache-on searches run in strict
// mode, so every hit is additionally re-verified against the owners'
// live indexes inside the engine.
//
// A second phase replays each rank from several different initiators:
// only the first origin's walk stores (initiator + walk-path fanout), so
// later origins measure the response-path payoff — their walks terminate
// at the first cached node they touch.
//
// BENCH_micro_result_cache.json carries the headline `probe_reduction`
// on the `result_cache` entry so CI can floor-check the ratio across
// PRs (scripts/check_bench_json.py --require-extra
// result_cache:probe_reduction:1.5).

#include <bit>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "ges/result_cache.hpp"
#include "ges/search.hpp"
#include "p2p/network.hpp"
#include "support/bench_json.hpp"
#include "util/check.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using ges::core::GesSearch;
using ges::core::ResultCacheBank;
using ges::core::SearchOptions;
using ges::corpus::Corpus;
using ges::ir::SparseVector;
using ges::p2p::LinkType;
using ges::p2p::Network;
using ges::p2p::NodeId;
using ges::p2p::SearchTrace;

constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t fold(uint64_t h, uint64_t v) { return (h ^ v) * kFnvPrime; }

/// Checksum of the retrieved (doc, score) sequence only: a cache hit
/// legitimately re-attributes documents to the answering node, so
/// probe_index is excluded — the recall-relevant content must match.
uint64_t result_checksum(uint64_t h, const SearchTrace& trace) {
  for (const auto& d : trace.retrieved) {
    h = fold(h, d.doc);
    h = fold(h, std::bit_cast<uint64_t>(d.score));
  }
  return h;
}

/// Topic-clustered corpus: one 3-term query per topic over ~60-term
/// documents, so every same-topic node scores and fresh searches do real
/// per-probe evaluation work.
Corpus build_corpus(size_t nodes, size_t topics, uint64_t seed) {
  constexpr size_t kTermsPerTopic = 150;
  constexpr size_t kTermsPerDoc = 60;
  constexpr size_t kDocsPerNode = 2;
  Corpus c;
  ges::util::Rng rng(seed);
  for (size_t t = 0; t < topics * kTermsPerTopic; ++t) {
    std::string name = "t";
    name += std::to_string(t);
    c.dict.intern(name);
  }
  c.node_docs.resize(nodes);
  for (size_t n = 0; n < nodes; ++n) {
    const auto topic = static_cast<ges::corpus::TopicId>(n % topics);
    const auto base = static_cast<ges::ir::TermId>(topic * kTermsPerTopic);
    for (size_t k = 0; k < kDocsPerNode; ++k) {
      const auto picks = rng.sample_without_replacement(kTermsPerTopic - 3,
                                                        kTermsPerDoc - 3);
      std::vector<ges::ir::TermWeight> counts;
      counts.reserve(kTermsPerDoc);
      for (size_t j = 0; j < 3; ++j) {
        counts.push_back({static_cast<ges::ir::TermId>(base + j),
                          static_cast<float>(1 + rng.below(4))});
      }
      for (const size_t pick : picks) {
        counts.push_back({static_cast<ges::ir::TermId>(base + 3 + pick),
                          static_cast<float>(1 + rng.below(4))});
      }
      ges::corpus::Document d;
      d.id = static_cast<ges::ir::DocId>(c.docs.size());
      d.node = static_cast<ges::corpus::NodeIndex>(n);
      d.topic = topic;
      d.counts = SparseVector::from_pairs(std::move(counts));
      d.vector = d.counts;
      d.vector.dampen();
      d.vector.normalize();
      c.node_docs[n].push_back(d.id);
      c.docs.push_back(std::move(d));
    }
  }
  for (size_t t = 0; t < topics; ++t) {
    ges::corpus::Query q;
    q.id = static_cast<uint32_t>(t);
    q.topic = static_cast<ges::corpus::TopicId>(t);
    const auto base = static_cast<ges::ir::TermId>(t * kTermsPerTopic);
    q.vector = SparseVector::from_pairs(
        {{base, 1.0f},
         {static_cast<ges::ir::TermId>(base + 1), 1.0f},
         {static_cast<ges::ir::TermId>(base + 2), 1.0f}});
    q.vector.normalize();
    c.queries.push_back(std::move(q));
  }
  return c;
}

struct MeasuredRun {
  uint64_t checksum = 0;  // folded per-request result checksums
  size_t probes = 0;
  size_t cache_hits = 0;
  double seconds = 0.0;
};

/// Run the request stream: requests[i] is a query rank; rank r always
/// executes as (query vector of rank r, initiator f(r), Rng(seed, r)).
MeasuredRun run_stream(const GesSearch& engine, const Corpus& corpus,
                       const std::vector<size_t>& requests, size_t nodes,
                       uint64_t seed) {
  using Clock = std::chrono::steady_clock;
  MeasuredRun out;
  const auto start = Clock::now();
  for (const size_t rank : requests) {
    ges::util::Rng rng(ges::util::derive_seed(seed, rank));
    const auto& query = corpus.queries[rank % corpus.queries.size()].vector;
    const auto initiator = static_cast<NodeId>((rank * 7919) % nodes);
    const SearchTrace trace = engine.search(query, initiator, rng);
    out.checksum = fold(out.checksum, result_checksum(0, trace));
    out.probes += trace.probes();
    out.cache_hits += trace.cache_hits;
  }
  out.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return out;
}

/// Multi-origin replay: every rank issued once from each of `origins`
/// distinct initiators (fixed per (rank, origin) pair).
MeasuredRun run_origins(const GesSearch& engine, const Corpus& corpus,
                        size_t ranks, size_t origins, size_t nodes,
                        uint64_t seed) {
  using Clock = std::chrono::steady_clock;
  MeasuredRun out;
  const auto start = Clock::now();
  for (size_t o = 0; o < origins; ++o) {
    for (size_t rank = 0; rank < ranks; ++rank) {
      ges::util::Rng rng(ges::util::derive_seed(seed, rank * origins + o));
      const auto& query = corpus.queries[rank % corpus.queries.size()].vector;
      const auto initiator =
          static_cast<NodeId>((rank * 7919 + o * 104729) % nodes);
      const SearchTrace trace = engine.search(query, initiator, rng);
      out.probes += trace.probes();
      out.cache_hits += trace.cache_hits;
    }
  }
  out.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return out;
}

}  // namespace

int main() {
  using namespace ges;
  bench::BenchJsonWriter json("micro_result_cache");

  size_t nodes = 2400;
  size_t ranks = 24;     // distinct (query, initiator, seed) triples
  size_t requests = 400;  // Zipf-sampled stream length
  switch (util::env_scale(util::Scale::kMedium)) {
    case util::Scale::kTiny:
      nodes = 600;
      ranks = 12;
      requests = 120;
      break;
    case util::Scale::kSmall:
      nodes = 1200;
      ranks = 16;
      requests = 240;
      break;
    case util::Scale::kMedium:
      break;
    case util::Scale::kFull:
      nodes = 6000;
      ranks = 32;
      requests = 800;
      break;
  }
  const auto seed = static_cast<uint64_t>(util::env_int("GES_SEED", 42));
  const size_t topics = ranks;

  const Corpus corpus = build_corpus(nodes, topics, seed);
  p2p::NetworkConfig config;
  Network net(corpus, std::vector<p2p::Capacity>(nodes, 1.0), config);

  // Random side: bootstrap graph (walks). Semantic side: a ring through
  // each topic group (floods), as in micro_query_path — adaptation at
  // this scale would dominate bring-up without changing the probe work.
  util::Rng boot(util::derive_seed(seed, 1));
  p2p::bootstrap_random_graph(net, 6.0, boot);
  for (size_t n = 0; n < nodes; ++n) {
    for (size_t k = 1; k <= 2; ++k) {
      const size_t next = n + k * topics;
      if (next < nodes) {
        net.connect(static_cast<NodeId>(n), static_cast<NodeId>(next),
                    LinkType::kSemantic);
      }
    }
  }

  SearchOptions options;
  options.ttl = 4 * nodes;
  options.probe_budget = nodes / 8;
  options.use_workspace = true;

  // Zipf(1.0) request stream over the rank universe, drawn once and
  // replayed identically against both engines.
  std::vector<size_t> stream;
  stream.reserve(requests);
  {
    util::Rng zipf_rng(util::derive_seed(seed, 2));
    util::ZipfSampler zipf(ranks, 1.0);
    for (size_t i = 0; i < requests; ++i) {
      stream.push_back(zipf.sample(zipf_rng) - 1);  // ranks are 1-based
    }
  }

  const GesSearch uncached(net, options);
  SearchOptions cached_options = options;
  cached_options.use_result_cache = true;
  cached_options.strict_result_cache = true;

  ResultCacheBank bank(net);
  const GesSearch cached(net, cached_options, nullptr, &bank);

  const MeasuredRun off = run_stream(uncached, corpus, stream, nodes, seed);
  const MeasuredRun on = run_stream(cached, corpus, stream, nodes, seed);

  // Recall gate: identical (doc, score) sequences request for request.
  GES_CHECK_MSG(on.checksum == off.checksum,
                "cached results diverged from fresh evaluation");
  GES_CHECK_MSG(on.cache_hits > 0, "repeat-heavy stream produced no hits");
  GES_CHECK_MSG(off.cache_hits == 0, "cache-off run reported cache hits");

  const double reduction =
      static_cast<double>(off.probes) / static_cast<double>(on.probes);

  ResultCacheBank origin_bank(net);
  const GesSearch origin_cached(net, cached_options, nullptr, &origin_bank);
  const size_t origins = 4;
  const MeasuredRun mo_off =
      run_origins(uncached, corpus, ranks, origins, nodes, seed);
  const MeasuredRun mo_on =
      run_origins(origin_cached, corpus, ranks, origins, nodes, seed);
  const double mo_reduction =
      static_cast<double>(mo_off.probes) / static_cast<double>(mo_on.probes);

  const double off_rate = static_cast<double>(stream.size()) / off.seconds;
  const double on_rate = static_cast<double>(stream.size()) / on.seconds;

  util::Table table({"engine", "requests", "probes", "probes/query", "hits"});
  table.add_row({"uncached", util::cell(stream.size()), util::cell(off.probes),
                 util::cell(static_cast<double>(off.probes) / stream.size(), 1),
                 util::cell(off.cache_hits)});
  table.add_row({"result cache (strict)", util::cell(stream.size()),
                 util::cell(on.probes),
                 util::cell(static_cast<double>(on.probes) / stream.size(), 1),
                 util::cell(on.cache_hits)});
  std::cout << "Result cache on a Zipf(1.0) repeat stream: " << nodes
            << " nodes, " << ranks << " query ranks, " << stream.size()
            << " requests, " << options.probe_budget << "-probe budget\n\n"
            << table.render() << "\nprobe reduction: " << reduction
            << "x (recall checksums identical)\nmulti-origin replay: "
            << mo_off.probes << " -> " << mo_on.probes << " probes ("
            << mo_reduction << "x, " << mo_on.cache_hits << " path hits)\n";

  json.add("uncached_path", off_rate, 1e9 / off_rate,
           {{"probes", static_cast<double>(off.probes)}});
  json.add("result_cache", on_rate, 1e9 / on_rate,
           {{"probes", static_cast<double>(on.probes)},
            {"probe_reduction", reduction},
            {"hits", static_cast<double>(on.cache_hits)},
            {"recall_match", 1.0}});
  json.add("multi_origin",
           static_cast<double>(ranks * origins) / mo_on.seconds,
           1e9 * mo_on.seconds / static_cast<double>(ranks * origins),
           {{"probes", static_cast<double>(mo_on.probes)},
            {"probe_reduction", mo_reduction},
            {"hits", static_cast<double>(mo_on.cache_hits)}});
  json.write();
  return 0;
}
