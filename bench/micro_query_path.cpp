// Query-path data plane: the epoch-stamped QueryWorkspace engine vs the
// pre-rewrite execution it replaced. The workload is the search
// protocol's real hot path at deployment scale — a 20,000+-node overlay
// (GES_SCALE-dependent) with topic-clustered content, running mixed
// biased-walk + semantic-flood queries to a probe budget. The baseline
// below is the pre-change query loop kept verbatim: a fresh
// unordered_set visited set, unordered_map-of-unordered_set walk
// bookkeeping, fresh candidate vectors and a fresh std::deque flood
// frontier per query, and unmemoized sparse REL(replica, Q) dots. An FNV
// checksum over every trace (probe order, retrieved docs, scores,
// message counts) proves the workspace engine makes byte-identical
// decisions; the timings show the per-probe win.
//
// BENCH_micro_query_path.json carries the headline `speedup` on the
// `query_path` entry so CI can floor-check the ratio across PRs.

#include <bit>
#include <chrono>
#include <cstdint>
#include <deque>
#include <iostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "corpus/corpus.hpp"
#include "ges/search.hpp"
#include "ir/relevance.hpp"
#include "p2p/network.hpp"
#include "support/bench_json.hpp"
#include "util/check.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using ges::corpus::Corpus;
using ges::core::GesSearch;
using ges::core::SearchOptions;
using ges::ir::SparseVector;
using ges::p2p::LinkType;
using ges::p2p::Network;
using ges::p2p::NodeId;
using ges::p2p::SearchTrace;

// --- Verbatim pre-change query execution ---------------------------------

/// The query loop as it stood before the workspace rewrite, preserved as
/// the measured baseline: every per-query structure allocated fresh,
/// every REL(replica, Q) a sparse-sparse dot.
class LegacySearch {
 public:
  LegacySearch(const Network& net, SearchOptions options)
      : net_(&net), options_(options) {}

  SearchTrace search(const SparseVector& query, NodeId initiator,
                     ges::util::Rng& rng) const {
    Run run{*net_, options_, query, rng};
    NodeId current = initiator;
    if (run.probe(current)) run.flood(current);

    size_t ttl_left = options_.ttl == 0 ? ~size_t{0} : options_.ttl;
    const size_t max_steps = 20 * net_->alive_count() + 1000;
    while (!run.done() && ttl_left > 0 && run.trace.walk_steps < max_steps) {
      const NodeId next = run.pick_next(current);
      if (next == ges::p2p::kInvalidNode) break;
      ++run.trace.walk_steps;
      --ttl_left;
      current = next;
      if (run.seen.count(current) == 0) {
        const bool is_target = run.probe(current);
        if (run.done()) break;
        if (is_target) run.flood(current);
      }
    }
    return run.trace;
  }

 private:
  struct Run {
    const Network& net;
    const SearchOptions& opt;
    const SparseVector& query;
    ges::util::Rng& rng;

    SearchTrace trace;
    std::unordered_set<NodeId> seen;
    std::unordered_map<NodeId, std::unordered_set<NodeId>> forwarded;
    size_t budget;
    size_t responses = 0;

    Run(const Network& n, const SearchOptions& o, const SparseVector& q,
        ges::util::Rng& r)
        : net(n), opt(o), query(q), rng(r) {
      budget = o.probe_budget == 0 ? n.alive_count() : o.probe_budget;
    }

    bool done() const {
      return trace.probes() >= budget ||
             (opt.max_responses != 0 && responses >= opt.max_responses);
    }

    bool probe(NodeId node) {
      seen.insert(node);
      const auto probe_index = static_cast<uint32_t>(trace.probe_order.size());
      trace.probe_order.push_back(node);
      const auto docs =
          net.index(node).evaluate(query, opt.doc_rel_threshold);
      bool is_target = false;
      for (const auto& d : docs) {
        trace.retrieved.push_back({d.doc, d.score, probe_index});
        ++responses;
        if (d.score >= opt.target_rel_threshold) is_target = true;
      }
      return is_target;
    }

    void flood(NodeId target) {
      ++trace.target_count;
      struct Item {
        NodeId node, from;
        size_t depth;
      };
      std::deque<Item> frontier;  // fresh per flood, as before
      frontier.push_back({target, ges::p2p::kInvalidNode, 0});
      while (!frontier.empty() && !done()) {
        const Item item = frontier.front();
        frontier.pop_front();
        const bool children_expand =
            opt.flood_radius == 0 || item.depth + 1 < opt.flood_radius;
        for (const NodeId next : net.neighbors(item.node, LinkType::kSemantic)) {
          if (next == item.from) continue;
          ++trace.flood_messages;
          if (seen.count(next) > 0) continue;
          if (done()) break;
          probe(next);
          if (children_expand) frontier.push_back({next, item.node, item.depth + 1});
        }
      }
    }

    NodeId pick_next(NodeId node) {
      const auto& neighbors = net.neighbors(node, LinkType::kRandom);
      std::vector<NodeId> alive;
      alive.reserve(neighbors.size());
      for (const NodeId n : neighbors) {
        if (net.alive(n)) alive.push_back(n);
      }
      if (alive.empty()) return ges::p2p::kInvalidNode;

      auto& tried = forwarded[node];
      std::vector<NodeId> available;
      available.reserve(alive.size());
      for (const NodeId n : alive) {
        if (tried.count(n) == 0) available.push_back(n);
      }
      if (available.empty()) {
        tried.clear();
        available = alive;
      }
      rng.shuffle(available);  // unconditionally, as before

      NodeId choice = ges::p2p::kInvalidNode;
      if (opt.capacity_aware && net.capacity(node) < opt.supernode_threshold) {
        NodeId best_cap = available.front();
        for (size_t i = 1; i < available.size(); ++i) {
          if (net.capacity(available[i]) > net.capacity(best_cap)) {
            best_cap = available[i];
          }
        }
        if (net.capacity(best_cap) >= opt.supernode_threshold) choice = best_cap;
      }
      if (choice == ges::p2p::kInvalidNode) {
        double best_rel = -1.0;
        for (const NodeId n : available) {
          const SparseVector* vec = net.replica(node, n);
          const double rel =
              vec != nullptr ? ges::ir::rel_node_query(*vec, query) : 0.0;
          if (rel > best_rel) {
            best_rel = rel;
            choice = n;
          }
        }
      }
      tried.insert(choice);
      return choice;
    }
  };

  const Network* net_;
  SearchOptions options_;
};

// --- Workload -------------------------------------------------------------

constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t fold(uint64_t h, uint64_t v) { return (h ^ v) * kFnvPrime; }

uint64_t trace_checksum(uint64_t h, const SearchTrace& trace) {
  for (const NodeId n : trace.probe_order) h = fold(h, n);
  for (const auto& d : trace.retrieved) {
    h = fold(h, d.doc);
    h = fold(h, std::bit_cast<uint64_t>(d.score));
    h = fold(h, d.probe_index);
  }
  h = fold(h, trace.walk_steps);
  h = fold(h, trace.flood_messages);
  h = fold(h, trace.target_count);
  return h;
}

/// Topic-clustered corpus at overlay scale, matching the paper's hot
/// shape: ~180-term documents (paper §5.3) whose union gives node
/// vectors of several hundred terms, probed by 3-term queries — so each
/// walk-step relevance evaluation is a real sparse dot, not a toy one.
Corpus build_corpus(size_t nodes, size_t topics, uint64_t seed) {
  constexpr size_t kTermsPerTopic = 400;
  constexpr size_t kTermsPerDoc = 180;
  constexpr size_t kDocsPerNode = 3;
  Corpus c;
  ges::util::Rng rng(seed);
  for (size_t t = 0; t < topics * kTermsPerTopic; ++t) {
    std::string name = "t";
    name += std::to_string(t);
    c.dict.intern(name);
  }
  c.node_docs.resize(nodes);
  for (size_t n = 0; n < nodes; ++n) {
    const auto topic = static_cast<ges::corpus::TopicId>(n % topics);
    const auto base = static_cast<ges::ir::TermId>(topic * kTermsPerTopic);
    for (size_t k = 0; k < kDocsPerNode; ++k) {
      // 180 distinct topic terms per document; the query's first terms
      // are always present so every same-topic document scores.
      const auto picks = rng.sample_without_replacement(kTermsPerTopic - 3,
                                                        kTermsPerDoc - 3);
      std::vector<ges::ir::TermWeight> counts;
      counts.reserve(kTermsPerDoc);
      for (size_t j = 0; j < 3; ++j) {
        counts.push_back({static_cast<ges::ir::TermId>(base + j),
                          static_cast<float>(1 + rng.below(4))});
      }
      for (const size_t pick : picks) {
        counts.push_back({static_cast<ges::ir::TermId>(base + 3 + pick),
                          static_cast<float>(1 + rng.below(4))});
      }
      ges::corpus::Document d;
      d.id = static_cast<ges::ir::DocId>(c.docs.size());
      d.node = static_cast<ges::corpus::NodeIndex>(n);
      d.topic = topic;
      d.counts = SparseVector::from_pairs(std::move(counts));
      d.vector = d.counts;
      d.vector.dampen();
      d.vector.normalize();
      c.node_docs[n].push_back(d.id);
      c.docs.push_back(std::move(d));
    }
  }
  for (size_t t = 0; t < topics; ++t) {
    ges::corpus::Query q;
    q.id = static_cast<uint32_t>(t);
    q.topic = static_cast<ges::corpus::TopicId>(t);
    const auto base = static_cast<ges::ir::TermId>(t * kTermsPerTopic);
    q.vector = SparseVector::from_pairs(
        {{base, 1.0f},
         {static_cast<ges::ir::TermId>(base + 1), 1.0f},
         {static_cast<ges::ir::TermId>(base + 2), 1.0f}});
    q.vector.normalize();
    c.queries.push_back(std::move(q));
  }
  return c;
}

struct MeasuredRun {
  uint64_t checksum = 0;
  size_t probes = 0;
  double seconds = 0.0;
};

template <class Engine>
MeasuredRun run_queries(const Engine& engine, const Corpus& corpus,
                        size_t queries, size_t nodes, uint64_t seed) {
  using Clock = std::chrono::steady_clock;
  MeasuredRun out;
  const auto start = Clock::now();
  for (size_t q = 0; q < queries; ++q) {
    ges::util::Rng rng(ges::util::derive_seed(seed, q));
    const auto& query = corpus.queries[q % corpus.queries.size()].vector;
    const auto initiator = static_cast<NodeId>((q * 7919) % nodes);
    const SearchTrace trace = engine.search(query, initiator, rng);
    out.checksum = trace_checksum(out.checksum, trace);
    out.probes += trace.probes();
  }
  out.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return out;
}

}  // namespace

int main() {
  using namespace ges;
  bench::BenchJsonWriter json("micro_query_path");

  size_t nodes = 20000;
  size_t queries = 8;
  switch (util::env_scale(util::Scale::kMedium)) {
    case util::Scale::kTiny:
      nodes = 2000;
      queries = 4;
      break;
    case util::Scale::kSmall:
      nodes = 8000;
      queries = 6;
      break;
    case util::Scale::kMedium:
      break;
    case util::Scale::kFull:
      nodes = 32000;
      break;
  }
  const auto seed = static_cast<uint64_t>(util::env_int("GES_SEED", 42));
  const size_t topics = std::max<size_t>(8, nodes / 200);

  const Corpus corpus = build_corpus(nodes, topics, seed);
  p2p::NetworkConfig config;
  Network net(corpus, std::vector<p2p::Capacity>(nodes, 1.0), config);

  // Random side: bootstrap graph (walks). Semantic side: a ring through
  // each topic group (floods) — adaptation at this scale would dominate
  // bring-up without changing what the query loop does per probe.
  util::Rng boot(util::derive_seed(seed, 1));
  p2p::bootstrap_random_graph(net, 6.0, boot);
  for (size_t n = 0; n < nodes; ++n) {
    for (size_t k = 1; k <= 2; ++k) {
      const size_t next = n + k * topics;  // k-th next node of n's topic
      if (next < nodes) {
        net.connect(static_cast<NodeId>(n), static_cast<NodeId>(next),
                    LinkType::kSemantic);
      }
    }
  }

  SearchOptions options;
  options.ttl = 4 * nodes;          // bounded walk, heavy revisit traffic
  options.probe_budget = nodes / 4;  // mixed walk+flood to a real budget

  const LegacySearch legacy(net, options);
  SearchOptions ws_options = options;
  ws_options.use_workspace = true;
  const GesSearch workspace(net, ws_options);

  // Interleave two timed runs of each engine and keep the faster one, so
  // a scheduling hiccup cannot flip the comparison; the first legacy run
  // also warms the page cache for both.
  MeasuredRun lg = run_queries(legacy, corpus, queries, nodes, seed);
  MeasuredRun ws = run_queries(workspace, corpus, queries, nodes, seed);
  const MeasuredRun lg2 = run_queries(legacy, corpus, queries, nodes, seed);
  const MeasuredRun ws2 = run_queries(workspace, corpus, queries, nodes, seed);
  if (lg2.seconds < lg.seconds) lg = lg2;
  if (ws2.seconds < ws.seconds) ws = ws2;

  // The workspace engine must be a drop-in: same probes, same traces.
  GES_CHECK_MSG(ws.probes == lg.probes,
                "probe count diverged: workspace " << ws.probes << " vs legacy "
                                                   << lg.probes);
  GES_CHECK_MSG(ws.checksum == lg.checksum,
                "trace checksum diverged from the pre-change query path");

  const double lg_rate = static_cast<double>(lg.probes) / lg.seconds;
  const double ws_rate = static_cast<double>(ws.probes) / ws.seconds;
  const double speedup = ws_rate / lg_rate;

  util::Table table({"engine", "probes", "wall s", "Kprobes/s", "ns/probe"});
  table.add_row({"pre-change loop (baseline)", util::cell(lg.probes),
                 util::cell(lg.seconds, 3), util::cell(lg_rate / 1e3, 2),
                 util::cell(1e9 / lg_rate, 1)});
  table.add_row({"query workspace", util::cell(ws.probes),
                 util::cell(ws.seconds, 3), util::cell(ws_rate / 1e3, 2),
                 util::cell(1e9 / ws_rate, 1)});
  std::cout << "Query-path data plane: " << nodes << " nodes, " << topics
            << " topic groups, " << queries << " queries to a "
            << options.probe_budget << "-probe budget\n\n"
            << table.render() << "\nspeedup: " << speedup
            << "x (trace checksums verified identical)\n";

  json.add("legacy_path", lg_rate, 1e9 / lg_rate,
           {{"probes", static_cast<double>(lg.probes)}});
  json.add("query_path", ws_rate, 1e9 / ws_rate,
           {{"probes", static_cast<double>(ws.probes)}, {"speedup", speedup}});
  json.write();
  return 0;
}
