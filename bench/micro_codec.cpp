// Wire format v1 codec microbench: ns/frame for encode and decode on the
// two frames the engines charge most — a small walk-query frame (short
// Gnutella queries, a few terms) and a large node-vector gossip frame —
// plus the bytes-per-message table at node-vector sizes {50, 400, full}
// that PROTOCOL.md's cost discussion quotes.
//
// BENCH_micro_codec.json carries `roundtrip_ok` on the `codec` entry:
// 1.0 only when every timed frame decoded back to the exact message it
// was encoded from (checksummed inside the timing loops, so the work is
// also not optimized away). CI floor-checks it via
// scripts/check_bench_json.py --require-extra codec:roundtrip_ok:1.0.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "ir/sparse_vector.hpp"
#include "p2p/wire.hpp"
#include "support/bench_json.hpp"
#include "util/check.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace {

namespace wire = ges::p2p::wire;
using ges::ir::SparseVector;
using ges::ir::TermId;
using ges::ir::TermWeight;

SparseVector make_vector(size_t terms, uint64_t seed) {
  std::vector<TermWeight> pairs;
  pairs.reserve(terms);
  uint64_t state = seed | 1;
  TermId term = 0;
  for (size_t i = 0; i < terms; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    term += 1 + static_cast<TermId>(state % 17);
    pairs.push_back({term, 0.0625f * static_cast<float>(1 + state % 31)});
  }
  return SparseVector::from_pairs(std::move(pairs));
}

struct Timing {
  double encode_ns = 0.0;
  double decode_ns = 0.0;
  bool roundtrip_ok = true;
};

/// Time `iters` encode and decode passes of one message; every decoded
/// frame is compared against the source message.
Timing time_codec(const wire::Message& message, size_t iters) {
  using Clock = std::chrono::steady_clock;
  Timing t;
  std::vector<uint8_t> buffer;
  buffer.reserve(wire::encoded_size(message));

  size_t bytes_folded = 0;
  const auto encode_start = Clock::now();
  for (size_t i = 0; i < iters; ++i) {
    buffer.clear();
    wire::encode(message, buffer);
    bytes_folded += buffer.size();
  }
  t.encode_ns = std::chrono::duration<double, std::nano>(Clock::now() -
                                                         encode_start)
                    .count() /
                static_cast<double>(iters);
  GES_CHECK(bytes_folded == iters * wire::encoded_size(message));

  const auto decode_start = Clock::now();
  for (size_t i = 0; i < iters; ++i) {
    const wire::DecodeResult result = wire::decode(buffer);
    t.roundtrip_ok = t.roundtrip_ok && result.ok() &&
                     result.consumed == buffer.size() &&
                     result.message == message;
  }
  t.decode_ns = std::chrono::duration<double, std::nano>(Clock::now() -
                                                         decode_start)
                    .count() /
                static_cast<double>(iters);
  return t;
}

}  // namespace

int main() {
  using namespace ges;
  bench::BenchJsonWriter json("micro_codec");

  size_t iters = 200000;
  switch (util::env_scale(util::Scale::kMedium)) {
    case util::Scale::kTiny:
      iters = 20000;
      break;
    case util::Scale::kSmall:
      iters = 80000;
      break;
    case util::Scale::kMedium:
      break;
    case util::Scale::kFull:
      iters = 1000000;
      break;
  }
  const auto seed = static_cast<uint64_t>(util::env_int("GES_SEED", 42));

  // A short query (paper §6.1: Gnutella queries average a few terms) and
  // a large node vector. "Full" below = an untruncated supernode vector.
  constexpr size_t kFullVectorTerms = 2000;
  const wire::Message small_query = wire::WalkQuery{
      0x1234567890ABCDEFull, 7, 60, 1, make_vector(4, seed)};
  const wire::Message node_vector = wire::NodeVectorUpdate{
      3, 17, make_vector(400, seed + 1)};

  const Timing small = time_codec(small_query, iters);
  const Timing large = time_codec(node_vector, iters / 10);
  const bool roundtrip_ok = small.roundtrip_ok && large.roundtrip_ok;
  GES_CHECK_MSG(roundtrip_ok, "codec round trip diverged");

  // Bytes-per-message at the node-vector sizes the replication layer
  // actually ships (truncation knobs) plus the fixed-size frames.
  const size_t nv_sizes[] = {50, 400, kFullVectorTerms};
  util::Table table({"message", "vector terms", "bytes"});
  for (const size_t n : nv_sizes) {
    table.add_row({"node_vector_update", util::cell(n),
                   util::cell(wire::node_vector_update_frame_size(n))});
  }
  table.add_row({"walk_query", util::cell(size_t{4}),
                 util::cell(wire::walk_query_frame_size(4))});
  table.add_row({"flood_forward", util::cell(size_t{4}),
                 util::cell(wire::flood_forward_frame_size(4))});
  table.add_row({"discovery_probe", "-",
                 util::cell(wire::discovery_probe_frame_size())});
  table.add_row({"handshake (3 legs)", "-",
                 util::cell(wire::handshake_legs_frame_size())});
  table.add_row({"replica_heartbeat", "-",
                 util::cell(wire::replica_heartbeat_frame_size())});
  table.add_row({"cache_probe", "-",
                 util::cell(wire::cache_probe_frame_size())});

  std::cout << "Wire format v1 codec: " << iters << " frames per timing loop\n\n"
            << "encode small query   " << small.encode_ns << " ns/frame ("
            << wire::encoded_size(small_query) << " bytes)\n"
            << "decode small query   " << small.decode_ns << " ns/frame\n"
            << "encode node vector   " << large.encode_ns << " ns/frame ("
            << wire::encoded_size(node_vector) << " bytes)\n"
            << "decode node vector   " << large.decode_ns << " ns/frame\n\n"
            << table.render();

  json.add("codec", 1e9 / (small.encode_ns + small.decode_ns),
           small.encode_ns + small.decode_ns,
           {{"roundtrip_ok", roundtrip_ok ? 1.0 : 0.0},
            {"bytes_small_query",
             static_cast<double>(wire::encoded_size(small_query))},
            {"bytes_node_vector_50",
             static_cast<double>(wire::node_vector_update_frame_size(50))},
            {"bytes_node_vector_400",
             static_cast<double>(wire::node_vector_update_frame_size(400))},
            {"bytes_node_vector_full",
             static_cast<double>(
                 wire::node_vector_update_frame_size(kFullVectorTerms))}});
  json.add("encode_small_query", 1e9 / small.encode_ns, small.encode_ns, {});
  json.add("decode_small_query", 1e9 / small.decode_ns, small.decode_ns, {});
  json.add("encode_node_vector", 1e9 / large.encode_ns, large.encode_ns, {});
  json.add("decode_node_vector", 1e9 / large.decode_ns, large.decode_ns, {});
  json.write();
  return 0;
}
