// Virtual nodes (paper §7 future work): authors with diverse documents
// are split into topic-pure virtual nodes via local clustering; each
// virtual node participates in adaptation and search independently.
// This bench compares plain GES with virtual-node GES on the same
// corpus, with costs measured in *physical* nodes probed.
//
// Expected shape: diverse nodes blur node vectors and semantic groups;
// splitting them sharpens both, so the virtual-node curve should sit at
// or above the plain curve, most visibly in the mid range.

#include "ges/virtual_nodes.hpp"
#include "support/bench_common.hpp"

int main() {
  using namespace ges;
  const auto ctx = bench::make_context();
  bench::print_banner("Ablation: virtual nodes (paper §7)", ctx);

  const auto grid = std::vector<double>{0.05, 0.10, 0.20, 0.30, 0.40, 0.50};

  // Plain GES.
  core::GesBuildConfig config;
  config.net.node_vector_size = 1000;
  const auto plain = bench::build_ges(ctx, config);
  const auto plain_curve = eval::recall_cost_curve(
      ctx.corpus, plain->network(), bench::ges_searcher(*plain), grid, ctx.seed);

  // Virtual-node GES: rebuild over the virtual corpus; traces projected
  // back so cost is fraction of *physical* nodes probed.
  core::VirtualNodeParams vparams;
  vparams.seed = ctx.seed;
  const auto mapping = core::build_virtual_corpus(ctx.corpus, vparams);
  std::cout << "virtual nodes: " << mapping.virtual_count() << " over "
            << mapping.physical_count() << " physical nodes\n\n";

  core::GesBuildConfig vconfig;
  vconfig.net.node_vector_size = 1000;
  vconfig.seed = ctx.seed;
  core::GesSystem virtual_system(mapping.virtual_corpus, vconfig);
  virtual_system.build();

  // Physical-cost probe counts need a custom searcher + curve: run on
  // the virtual overlay, project, and evaluate against physical N.
  const eval::Searcher projected_searcher =
      [&](const corpus::Query& q, p2p::NodeId initiator, util::Rng& rng) {
        // The initiator index is a physical node; enter through one of
        // its virtual nodes.
        const auto& hosted = mapping.virtuals_of[initiator % mapping.physical_count()];
        const p2p::NodeId entry = hosted[rng.index(hosted.size())];
        const auto trace = virtual_system.search(q.vector, entry, rng);
        return core::project_to_physical(trace, mapping);
      };
  // recall_cost_curve derives probe counts from the network's alive
  // count; the virtual network has more nodes, so evaluate against a
  // dedicated physical-size network handle (the plain system's).
  const auto virtual_curve =
      eval::recall_cost_curve(ctx.corpus, plain->network(), projected_searcher,
                              grid, ctx.seed);

  std::cout << eval::curves_table({"GES(plain)", "GES(virtual nodes)"},
                                  {plain_curve, virtual_curve})
                   .render();
  std::cout << "\npaper reference (§7): splitting diverse nodes should give "
               "'better semantic group formation and thus better search "
               "performance'\n";
  return 0;
}
