// §6.3 "Automatic Query Expansion" (paper): pseudo-relevance feedback
// improves precision modestly and recall substantially.
//
// Expected shape (paper): with 30 added terms, precision@15 improves by
// ~10 % and recall by ~26 %.
//
// Protocol: run the initial query through GES with a 30 % probe budget,
// take the top feedback documents from the results, expand the query
// (Rocchio-style), and re-run the expanded query.

#include <algorithm>

#include "ir/query_expansion.hpp"
#include "support/bench_common.hpp"

int main() {
  using namespace ges;
  const auto ctx = bench::make_context();
  bench::print_banner("Query expansion: precision@15 and recall improvements", ctx);

  core::GesBuildConfig config;
  config.net.node_vector_size = 1000;
  const auto system = bench::build_ges(ctx, config);
  const auto& net = system->network();

  auto options = system->default_search_options();
  options.probe_budget = std::max<size_t>(1, net.alive_count() * 3 / 10);
  // Query expansion widens the *match* set, so measure with a meaningful
  // retrieval threshold: a document below it on the original query can
  // clear it once the expanded query shares more of its vocabulary.
  options.doc_rel_threshold = 0.05;

  util::Table table({"added terms", "recall", "recall gain", "prec@15",
                     "prec@15 gain"});
  for (const size_t added : {size_t{0}, size_t{10}, size_t{30}}) {
    double recall_sum = 0.0;
    double prec_sum = 0.0;
    double base_recall_sum = 0.0;
    double base_prec_sum = 0.0;
    size_t evaluated = 0;
    for (size_t qi = 0; qi < ctx.corpus.queries.size(); ++qi) {
      const auto& query = ctx.corpus.queries[qi];
      if (query.relevant.empty()) continue;
      util::Rng rng(util::derive_seed(ctx.seed, 0xE0000 + qi));
      const auto initiator =
          net.alive_nodes()[rng.index(net.alive_count())];

      const auto base_trace = system->search(query.vector, initiator, options, rng);
      const eval::Judgment judgment(query.relevant);
      base_recall_sum += eval::recall(base_trace, judgment);
      base_prec_sum += eval::precision_at(base_trace, judgment, 15);

      if (added == 0) {
        recall_sum = base_recall_sum;
        prec_sum = base_prec_sum;
        ++evaluated;
        continue;
      }

      // Feedback: the 10 highest-scoring documents of the initial run.
      auto ranked = base_trace.retrieved;
      std::sort(ranked.begin(), ranked.end(),
                [](const p2p::RetrievedDoc& a, const p2p::RetrievedDoc& b) {
                  if (a.score != b.score) return a.score > b.score;
                  return a.doc < b.doc;
                });
      std::vector<ir::SparseVector> feedback;
      for (size_t i = 0; i < std::min<size_t>(10, ranked.size()); ++i) {
        feedback.push_back(net.document_vector(ranked[i].doc));
      }
      ir::QueryExpansionParams qe;
      qe.added_terms = added;
      const auto expanded = ir::expand_query(query.vector, feedback, qe);

      util::Rng rng2(util::derive_seed(ctx.seed, 0xE0000 + qi));
      const auto trace = system->search(expanded, initiator, options, rng2);
      recall_sum += eval::recall(trace, judgment);
      prec_sum += eval::precision_at(trace, judgment, 15);
      ++evaluated;
    }
    const auto n = static_cast<double>(evaluated);
    const double recall_gain =
        base_recall_sum > 0 ? (recall_sum - base_recall_sum) / base_recall_sum : 0.0;
    const double prec_gain =
        base_prec_sum > 0 ? (prec_sum - base_prec_sum) / base_prec_sum : 0.0;
    table.add_row({util::cell(added), util::pct_cell(recall_sum / n),
                   util::pct_cell(recall_gain), util::pct_cell(prec_sum / n),
                   util::pct_cell(prec_gain)});
  }
  std::cout << table.render();
  std::cout << "\npaper reference: 30 added terms -> ~+26% recall, ~+10% "
               "precision@15\n";
  return 0;
}
