// Table 1 (paper §6.3): recall improvement of GES(1000+heter) over SETS
// at processing costs 2/5/10/20/30/40/50 % — GES with node-vector size
// 1000, heterogeneous (Gnutella-profile) capacities, capacity-constrained
// topology adaptation (max_links = 128, min_unit = 4) and capacity-aware
// biased walks, vs. SETS (which ignores capacity heterogeneity).
//
// Expected shape (paper): GES(1000+heter) ahead of SETS at every listed
// cost — +63.8% at 2%, +8-19% in the 5-40% range, +7.4% at 50%.

#include "support/bench_common.hpp"
#include "support/bench_json.hpp"

int main() {
  using namespace ges;
  const auto ctx = bench::make_context();
  bench::print_banner("Table 1: GES(1000+heter) improvement over SETS", ctx);
  bench::BenchJsonWriter json("table1_heterogeneity");

  core::GesBuildConfig config;
  config.net.node_vector_size = 1000;
  config.capacities = p2p::CapacityProfile::gnutella();
  config.params.max_links = 128;
  config.params.capacity_constrained = true;
  config.params.capacity_aware_search = true;
  const auto ges_system = bench::build_ges(ctx, config);
  const auto sets = bench::build_sets(ctx);

  // GES with uniform capacities at the same node-vector size isolates
  // the gain heterogeneity provides.
  core::GesBuildConfig uniform_config;
  uniform_config.net.node_vector_size = 1000;
  const auto uniform_system = bench::build_ges(ctx, uniform_config);

  const std::vector<double> grid{0.02, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50};
  const auto ges_curve =
      eval::recall_cost_curve(ctx.corpus, ges_system->network(),
                              bench::ges_searcher(*ges_system), grid, ctx.seed);
  const auto uniform_curve =
      eval::recall_cost_curve(ctx.corpus, uniform_system->network(),
                              bench::ges_searcher(*uniform_system), grid, ctx.seed);
  const auto sets_curve = eval::recall_cost_curve(
      ctx.corpus, sets->network(), bench::sets_searcher(*sets), grid, ctx.seed);

  util::Table table({"cost(%nodes)", "GES(1000+heter)", "GES(1000+unif)",
                     "SETS", "improv. vs SETS", "paper improv.",
                     "improv. vs unif"});
  const char* paper[] = {"63.8%", "8.3%", "16.1%", "17.9%", "13.3%", "18.5%", "7.4%"};
  for (size_t i = 0; i < grid.size(); ++i) {
    const double g = ges_curve.recall[i];
    const double u = uniform_curve.recall[i];
    const double s = sets_curve.recall[i];
    table.add_row({util::cell(grid[i] * 100.0, 0), util::pct_cell(g),
                   util::pct_cell(u), util::pct_cell(s),
                   util::pct_cell(s > 0.0 ? (g - s) / s : 0.0), paper[i],
                   util::pct_cell(u > 0.0 ? (g - u) / u : 0.0)});
    json.add("cost/" + util::cell(grid[i] * 100.0, 0) + "pct", 0.0, 0.0,
             {{"cost_fraction", grid[i]},
              {"ges_heter_recall", g},
              {"ges_uniform_recall", u},
              {"sets_recall", s},
              {"improvement_vs_sets", s > 0.0 ? (g - s) / s : 0.0},
              {"improvement_vs_uniform", u > 0.0 ? (g - u) / u : 0.0}});
  }
  json.write();
  std::cout << table.render();
  std::cout << "\npaper reference row (GES(1000+heter):SETS): 63.8 / 8.3 / 16.1 / "
               "17.9 / 13.3 / 18.5 / 7.4 %\n"
               "the last column shows what exploiting capacity heterogeneity "
               "buys GES itself\n";
  return 0;
}
