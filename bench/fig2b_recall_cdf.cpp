// Figure 2(b) (paper §6.2): cumulative distribution of per-query recall
// when probing 30 % of the nodes, for node-vector sizes 100, 1000, full.
//
// Expected shape (paper): the s=1000 CDF sits to the right of (dominates)
// both s=100 and full-size vectors.

#include "support/bench_common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace ges;
  const auto ctx = bench::make_context();
  bench::print_banner("Figure 2b: CDF of per-query recall at 30% probing", ctx);

  const size_t sizes[] = {100, 1000, 0};
  std::vector<std::string> names;
  std::vector<std::vector<double>> recalls;
  for (const size_t s : sizes) {
    core::GesBuildConfig config;
    config.net.node_vector_size = s;
    const auto system = bench::build_ges(ctx, config);
    recalls.push_back(eval::per_query_recall_at_cost(
        ctx.corpus, system->network(), bench::ges_searcher(*system), 0.30, ctx.seed));
    names.push_back(s == 0 ? "full" : "s=" + std::to_string(s));
  }

  // Render the CDFs on a common recall grid.
  util::Table table({"recall(%) <=", "CDF " + names[0] + "(%)",
                     "CDF " + names[1] + "(%)", "CDF " + names[2] + "(%)"});
  for (int pct = 0; pct <= 100; pct += 10) {
    std::vector<std::string> row{util::cell(pct)};
    for (const auto& series : recalls) {
      size_t at_or_below = 0;
      for (const double r : series) {
        if (r * 100.0 <= static_cast<double>(pct) + 1e-9) ++at_or_below;
      }
      row.push_back(util::cell(100.0 * static_cast<double>(at_or_below) /
                                   static_cast<double>(series.size()),
                               1));
    }
    table.add_row(std::move(row));
  }
  std::cout << table.render();

  std::cout << "\nmean per-query recall at 30% probing:\n";
  for (size_t i = 0; i < names.size(); ++i) {
    util::Accumulator acc;
    for (const double r : recalls[i]) acc.add(r);
    std::cout << "  " << names[i] << ": " << util::pct_cell(acc.mean()) << "\n";
  }
  std::cout << "paper reference: s=1000 dominates s=100 and full-size vectors\n";
  return 0;
}
