// Maintenance cost under churn — the paper's §1 motivation: a deployed
// Gnutella network of 100,000 nodes sees over 1,600 arrivals/departures
// per minute, which cripples structured overlays but "causes little
// problem for Gnutella-like P2P systems". This bench runs the
// event-driven simulation at increasing churn intensities and reports
// GES's maintenance traffic (discovery walks, replica heartbeats,
// re-bootstraps) per node per simulated minute, alongside the search
// quality that the maintenance sustains.

#include <chrono>

#include "p2p/churn.hpp"
#include "p2p/replication.hpp"
#include "support/bench_common.hpp"
#include "support/bench_json.hpp"

int main() {
  using namespace ges;
  using Clock = std::chrono::steady_clock;
  bench::BenchJsonWriter json("cost_model_maintenance");
  const auto ctx = bench::make_context(util::Scale::kSmall);
  bench::print_banner("Maintenance cost vs churn (paper §1 motivation)", ctx);

  struct Level {
    const char* name;
    double mean_session;  // 0 = no churn
  };
  const Level levels[] = {
      {"no churn", 0.0},
      {"mild (mean session 10 min)", 600.0},
      {"paper-like (mean session 3 min)", 180.0},
      {"extreme (mean session 1 min)", 60.0},
  };

  constexpr double kSimMinutes = 10.0;
  constexpr double kAdaptEvery = 30.0;
  constexpr double kHeartbeatEvery = 15.0;

  util::Table table({"churn level", "join+leave/min", "walk msgs/node/min",
                     "heartbeats/node/min", "alive at end", "groups",
                     "recall@30%"});
  for (const auto& level : levels) {
    p2p::NetworkConfig net_config;
    net_config.node_vector_size = 1000;
    p2p::Network network(ctx.corpus,
                         std::vector<p2p::Capacity>(ctx.corpus.num_nodes(), 1.0),
                         net_config);
    util::Rng boot(ctx.seed);
    p2p::bootstrap_random_graph(network, 6.0, boot);
    core::TopologyAdaptation adaptation(network, core::GesParams{}, ctx.seed + 1);
    adaptation.run_rounds(12);  // converge before measuring

    p2p::EventQueue queue;
    core::AdaptationRoundStats adapt_total;
    size_t heartbeat_messages = 0;
    size_t adaptation_rounds = 0;
    double adaptation_seconds = 0.0;
    queue.schedule_every(kAdaptEvery, [&] {
      const auto start = Clock::now();
      adapt_total += adaptation.run_round();
      adaptation_seconds += std::chrono::duration<double>(Clock::now() - start).count();
      ++adaptation_rounds;
    });
    queue.schedule_every(kHeartbeatEvery, [&] {
      for (const auto n : network.alive_nodes()) {
        heartbeat_messages += network.degree(n, p2p::LinkType::kRandom);
        network.refresh_replicas(n);
      }
    });

    p2p::ChurnParams churn_params;
    churn_params.seed = ctx.seed + 2;
    std::unique_ptr<p2p::ChurnProcess> churn;
    if (level.mean_session > 0.0) {
      churn_params.mean_session = level.mean_session;
      churn_params.mean_downtime = level.mean_session / 2.0;
      churn = std::make_unique<p2p::ChurnProcess>(network, queue, churn_params);
      churn->start();
    }

    queue.run_until(kSimMinutes * 60.0);

    const eval::Searcher searcher = [&](const corpus::Query& q,
                                        p2p::NodeId initiator, util::Rng& rng) {
      return core::GesSearch(network, core::SearchOptions{})
          .search(q.vector, initiator, rng);
    };
    const auto curve =
        eval::recall_cost_curve(ctx.corpus, network, searcher, {0.30}, ctx.seed);

    const double node_minutes =
        static_cast<double>(network.size()) * kSimMinutes;
    const double churn_rate =
        churn ? static_cast<double>(churn->departures() + churn->arrivals()) /
                    kSimMinutes
              : 0.0;
    table.add_row({level.name, util::cell(churn_rate, 1),
                   util::cell(static_cast<double>(adapt_total.walk_messages) / node_minutes, 1),
                   util::cell(static_cast<double>(heartbeat_messages) / node_minutes, 1),
                   util::cell(network.alive_count()),
                   util::cell(core::count_semantic_groups(network)),
                   util::pct_cell(curve.recall.back())});
    if (adaptation_rounds > 0 && adaptation_seconds > 0.0) {
      const double secs_per_round = adaptation_seconds / static_cast<double>(adaptation_rounds);
      json.add(std::string("adaptation_round/") + level.name,
               1.0 / secs_per_round, secs_per_round * 1e9,
               {{"walk_msgs_per_node_min",
                 static_cast<double>(adapt_total.walk_messages) / node_minutes},
                {"recall_at_30pct", curve.recall.back()}});
    }
  }
  json.write();
  std::cout << table.render();
  std::cout << "\nMaintenance stays flat per node while churn rises; recall "
               "degrades only\nwith the offline fraction — the unstructured "
               "overlay needs no O(log N)\nrepair per failure (paper §1).\n";
  return 0;
}
