// Figure 2(c) (paper §6.2): ranked term weight for documents, normalized
// to the biggest term weight in each document.
//
// Expected shape (paper): the weight of the top ~50 terms drops very
// fast — a small number of terms characterizes a document.

#include <algorithm>

#include "support/bench_common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace ges;
  const auto ctx = bench::make_context();
  bench::print_banner("Figure 2c: ranked normalized term weight per document", ctx);

  // Average the normalized weight at each rank across all documents.
  constexpr size_t kMaxRank = 200;
  std::vector<util::Accumulator> at_rank(kMaxRank);
  for (const auto& doc : ctx.corpus.docs) {
    std::vector<float> weights;
    weights.reserve(doc.vector.size());
    for (const auto& e : doc.vector.entries()) weights.push_back(e.weight);
    std::sort(weights.begin(), weights.end(), std::greater<>());
    if (weights.empty()) continue;
    const double top = weights.front();
    for (size_t r = 0; r < std::min(kMaxRank, weights.size()); ++r) {
      at_rank[r].add(weights[r] / top);
    }
  }

  util::Table table({"term rank", "normalized weight (mean)", "docs at rank"});
  for (const size_t rank : {1,  2,  3,  5,  8,  12, 20, 30,  50,
                            75, 100, 130, 160, 200}) {
    if (rank > kMaxRank || at_rank[rank - 1].count() == 0) continue;
    table.add_row({util::cell(rank), util::cell(at_rank[rank - 1].mean(), 4),
                   util::cell(at_rank[rank - 1].count())});
  }
  std::cout << table.render();

  const double w1 = at_rank[0].mean();
  const double w50 = at_rank[49].count() > 0 ? at_rank[49].mean() : 0.0;
  std::cout << "\nweight drop from rank 1 to rank 50: " << util::cell(w1, 3)
            << " -> " << util::cell(w50, 3)
            << "\npaper reference: the top ~50 terms' weight drops very fast — "
               "a few terms characterize a document\n";
  return 0;
}
