// Event-core throughput: the tiered timer-wheel scheduler vs the binary
// heap it replaced. The workload is the simulator's real hot path — a
// churn+heartbeat-dense schedule (phase-aligned periodic heartbeat
// storms, per-node exponential churn session chains, a sprinkle of
// long-horizon maintenance events that park in the overflow tier) — run
// identically through both schedulers. A dispatch-order checksum proves
// the wheel fires events in exactly the heap's (at, seq) order; the
// timings show why the wheel is worth having.
//
// BENCH_micro_event_sim.json carries the headline `speedup` next to the
// per-scheduler rates so CI can track the ratio across PRs.

#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <queue>
#include <vector>

#include "p2p/event_sim.hpp"
#include "support/bench_json.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using ges::p2p::SimTime;

/// The pre-wheel scheduler, verbatim: one std::priority_queue of
/// std::function events (copied out on dispatch), repeating tasks as
/// self-rescheduling closures. Kept here as the measured baseline and as
/// the reference order for the checksum.
class HeapEventQueue {
 public:
  void schedule(SimTime at, std::function<void()> handler) {
    GES_CHECK(at >= now_);
    queue_.push(Event{at, next_seq_++, std::move(handler)});
  }

  void schedule_after(SimTime delay, std::function<void()> handler) {
    schedule(now_ + delay, std::move(handler));
  }

  void schedule_every(SimTime interval, std::function<void()> handler) {
    repeating_.push_back(std::make_unique<RepeatingTask>(
        RepeatingTask{interval, std::move(handler)}));
    RepeatingTask* task = repeating_.back().get();
    schedule_after(interval, [this, task] { run_repeating(*task); });
  }

  SimTime now() const { return now_; }
  size_t processed() const { return processed_; }

  void run_until(SimTime until) {
    while (!queue_.empty() && queue_.top().at <= until) {
      Event event = queue_.top();
      queue_.pop();
      now_ = event.at;
      ++processed_;
      event.handler();
    }
    now_ = std::max(now_, until);
  }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    std::function<void()> handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  struct RepeatingTask {
    SimTime interval;
    std::function<void()> handler;
  };

  void run_repeating(RepeatingTask& task) {
    task.handler();
    schedule_after(task.interval, [this, &task] { run_repeating(task); });
  }

  std::vector<std::unique_ptr<RepeatingTask>> repeating_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  size_t processed_ = 0;
};

constexpr uint64_t kFnvPrime = 1099511628211ULL;

/// Per-node churn session chain: each firing hashes the node into the
/// checksum and reschedules itself after the next exponential delay from
/// a shared pre-drawn ring — which delay a chain consumes depends on
/// when its step dispatches, so the whole chain (and the checksum)
/// depends on the scheduler firing in exactly the reference order. The
/// ring is drawn before the clock starts: the timed region exercises
/// schedulers, not libm.
template <class Queue>
struct ChurnChain {
  Queue* queue;
  const std::vector<double>* delays;
  uint64_t* checksum;
  size_t next_delay = 0;

  void step(size_t node) {
    *checksum = *checksum * kFnvPrime + (node * 2 + 1);
    const double delay = (*delays)[next_delay++ % delays->size()];
    queue->schedule_after(delay, [this, node] { step(node); });
  }
};

struct WorkloadResult {
  uint64_t checksum = 0;
  size_t events = 0;
  double seconds = 0.0;
};

template <class Queue>
WorkloadResult run_workload(size_t nodes, double horizon,
                            const std::vector<double>& delays) {
  using Clock = std::chrono::steady_clock;
  Queue queue;
  uint64_t checksum = 0;
  ges::util::Rng rng(20250808);
  ChurnChain<Queue> churn{&queue, &delays, &checksum};

  const auto start = Clock::now();
  // Phase-aligned heartbeat storm: every node beats on the same 10 s
  // grid, so each tick lands ~`nodes` equal-time events in one bucket.
  for (size_t n = 0; n < nodes; ++n) {
    queue.schedule_every(10.0, [&checksum, n] {
      checksum = checksum * kFnvPrime + n * 2;
    });
  }
  // Churn chains: mean 7 s sessions, one chain per node.
  for (size_t n = 0; n < nodes; ++n) {
    const double delay = delays[churn.next_delay++ % delays.size()];
    queue.schedule_after(delay, [&churn, n] { churn.step(n); });
  }
  // Long-horizon maintenance: lands in the wheel's overflow tier.
  for (size_t i = 0; i < 256; ++i) {
    const double at = rng.uniform(0.0, horizon);
    queue.schedule(at, [&checksum, i] { checksum = checksum * 31 + i; });
  }
  queue.run_until(horizon);
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return {checksum, queue.processed(), seconds};
}

}  // namespace

int main() {
  using namespace ges;
  bench::BenchJsonWriter json("micro_event_sim");

  constexpr size_t kNodes = 50000;
  constexpr double kHorizon = 200.0;  // sim seconds; ~2.4M events total

  // Mean-7s churn sessions, pre-drawn so the timed region is scheduler
  // work only. Both schedulers consume the identical ring.
  std::vector<double> delays(1 << 20);
  {
    util::Rng delay_rng(775207);
    for (double& d : delays) d = delay_rng.exponential(1.0 / 7.0);
  }

  // Interleave two timed runs of each scheduler and keep the faster one,
  // so a one-off scheduling hiccup cannot flip the comparison.
  WorkloadResult heap = run_workload<HeapEventQueue>(kNodes, kHorizon, delays);
  WorkloadResult wheel = run_workload<p2p::EventQueue>(kNodes, kHorizon, delays);
  const WorkloadResult heap2 = run_workload<HeapEventQueue>(kNodes, kHorizon, delays);
  const WorkloadResult wheel2 = run_workload<p2p::EventQueue>(kNodes, kHorizon, delays);
  if (heap2.seconds < heap.seconds) heap = heap2;
  if (wheel2.seconds < wheel.seconds) wheel = wheel2;

  // The wheel must be a drop-in: same events, same dispatch order.
  GES_CHECK_MSG(wheel.events == heap.events,
                "event count diverged: wheel " << wheel.events << " vs heap "
                                               << heap.events);
  GES_CHECK_MSG(wheel.checksum == heap.checksum,
                "dispatch order diverged from the reference heap scheduler");

  const double heap_rate = static_cast<double>(heap.events) / heap.seconds;
  const double wheel_rate = static_cast<double>(wheel.events) / wheel.seconds;
  const double speedup = wheel_rate / heap_rate;

  util::Table table({"scheduler", "events", "wall s", "Mevents/s", "ns/event"});
  table.add_row({"binary heap (baseline)", util::cell(heap.events),
                 util::cell(heap.seconds, 3), util::cell(heap_rate / 1e6, 2),
                 util::cell(1e9 / heap_rate, 1)});
  table.add_row({"timer wheel", util::cell(wheel.events),
                 util::cell(wheel.seconds, 3), util::cell(wheel_rate / 1e6, 2),
                 util::cell(1e9 / wheel_rate, 1)});
  std::cout << "Event-core throughput: churn + heartbeat schedule, "
            << kNodes << " nodes, " << kHorizon << " sim s\n\n"
            << table.render() << "\nspeedup: " << speedup
            << "x (dispatch order verified identical)\n";

  json.add("binary_heap", heap_rate, 1e9 / heap_rate,
           {{"events", static_cast<double>(heap.events)}});
  json.add("timer_wheel", wheel_rate, 1e9 / wheel_rate,
           {{"events", static_cast<double>(wheel.events)},
            {"speedup", speedup}});
  json.write();
  return 0;
}
