// Micro-benchmarks of the IR substrate (google-benchmark): stemming,
// analysis, sparse dot products, node-vector construction, local-index
// evaluation and query expansion.

#include <benchmark/benchmark.h>

#include "support/bench_json_main.hpp"

#include "ir/analyzer.hpp"
#include "ir/local_index.hpp"
#include "ir/node_vector.hpp"
#include "ir/porter_stemmer.hpp"
#include "ir/query_expansion.hpp"
#include "util/rng.hpp"

namespace {

using namespace ges;

ir::SparseVector random_vector(util::Rng& rng, size_t terms, ir::TermId vocab) {
  std::vector<ir::TermWeight> entries;
  entries.reserve(terms);
  for (size_t i = 0; i < terms; ++i) {
    entries.push_back({static_cast<ir::TermId>(rng.index(vocab)),
                       static_cast<float>(rng.uniform(0.1, 3.0))});
  }
  auto v = ir::SparseVector::from_pairs(std::move(entries));
  v.normalize();
  return v;
}

void BM_PorterStem(benchmark::State& state) {
  const char* words[] = {"restarting", "generalizations", "conditional",
                         "happiness",  "probabilistic",   "networking"};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ir::porter_stem(words[i++ % std::size(words)]));
  }
}
BENCHMARK(BM_PorterStem);

void BM_AnalyzeDocument(benchmark::State& state) {
  ir::TermDictionary dict;
  const ir::Analyzer analyzer(dict);
  const std::string text =
      "Leveraging the state of the art information retrieval algorithms like "
      "the vector space model and relevance ranking, the system organizes "
      "nodes into semantic groups so that semantically associated nodes tend "
      "to be relevant to the same queries, achieving high recall while "
      "probing only a small fraction of the participating nodes.";
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.document_vector(text));
  }
}
BENCHMARK(BM_AnalyzeDocument);

void BM_SparseDot(benchmark::State& state) {
  util::Rng rng(1);
  const auto a = random_vector(rng, static_cast<size_t>(state.range(0)), 60000);
  const auto b = random_vector(rng, static_cast<size_t>(state.range(0)), 60000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.dot(b));
  }
}
BENCHMARK(BM_SparseDot)->Arg(50)->Arg(200)->Arg(1000)->Arg(2000);

void BM_NodeVectorBuild(benchmark::State& state) {
  util::Rng rng(2);
  std::vector<ir::SparseVector> docs;
  for (int i = 0; i < 40; ++i) {
    std::vector<ir::TermWeight> entries;
    for (size_t t = 0; t < 180; ++t) {
      entries.push_back({static_cast<ir::TermId>(rng.index(60000)),
                         static_cast<float>(1 + rng.index(5))});
    }
    docs.push_back(ir::SparseVector::from_pairs(std::move(entries)));
  }
  const auto size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ir::build_node_vector(docs, size));
  }
}
BENCHMARK(BM_NodeVectorBuild)->Arg(0)->Arg(1000)->Arg(50);

void BM_LocalIndexEvaluate(benchmark::State& state) {
  util::Rng rng(3);
  ir::LocalIndex index;
  for (ir::DocId d = 0; d < 40; ++d) {
    index.add_document(d, random_vector(rng, 180, 20000));
  }
  const auto query = random_vector(rng, 4, 20000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.evaluate(query, 0.0));
  }
}
BENCHMARK(BM_LocalIndexEvaluate);

// Supernode-sized collection with a dense vocabulary: every query term
// hits long posting lists, stressing the scoring accumulator itself.
void BM_LocalIndexEvaluateLarge(benchmark::State& state) {
  util::Rng rng(3);
  ir::LocalIndex index;
  const auto docs = static_cast<ir::DocId>(state.range(0));
  for (ir::DocId d = 0; d < docs; ++d) {
    index.add_document(d, random_vector(rng, 180, 2000));
  }
  const auto query = random_vector(rng, 8, 2000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.evaluate(query, 0.0));
  }
}
BENCHMARK(BM_LocalIndexEvaluateLarge)->Arg(400)->Arg(4000);

void BM_LocalIndexRemoveReadd(benchmark::State& state) {
  util::Rng rng(3);
  ir::LocalIndex index;
  std::vector<ir::SparseVector> vectors;
  for (ir::DocId d = 0; d < 400; ++d) {
    vectors.push_back(random_vector(rng, 180, 20000));
    index.add_document(d, vectors.back());
  }
  ir::DocId victim = 0;
  for (auto _ : state) {
    index.remove_document(victim);
    index.add_document(victim, vectors[victim]);
    victim = (victim + 1) % 400;
  }
}
BENCHMARK(BM_LocalIndexRemoveReadd);

void BM_QueryExpansion(benchmark::State& state) {
  util::Rng rng(4);
  const auto query = random_vector(rng, 4, 20000);
  std::vector<ir::SparseVector> feedback;
  for (int i = 0; i < 10; ++i) feedback.push_back(random_vector(rng, 180, 20000));
  ir::QueryExpansionParams params;
  params.added_terms = 30;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ir::expand_query(query, feedback, params));
  }
}
BENCHMARK(BM_QueryExpansion);

void BM_TruncateTop(benchmark::State& state) {
  util::Rng rng(5);
  const auto big = random_vector(rng, 5000, 60000);
  for (auto _ : state) {
    auto copy = big;
    copy.truncate_top(1000);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_TruncateTop);

}  // namespace

int main(int argc, char** argv) {
  return ges::bench::run_benchmarks_with_json(argc, argv, "micro_ir");
}
