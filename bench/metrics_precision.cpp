// High-end precision (paper §5.2: "we are particularly interested in
// high-end precision (e.g., prec@15) because a recent study has shown
// that users only view top 10 search results"). The paper reports
// precision only for the query-expansion study; this bench fills in the
// picture: precision@r for GES, SETS and Random at the 30 % operating
// point, across r in {5, 10, 15}.

#include "support/bench_common.hpp"

int main() {
  using namespace ges;
  const auto ctx = bench::make_context();
  bench::print_banner("Precision@r at a 30% probe budget (GES / SETS / Random)",
                      ctx);

  core::GesBuildConfig config;
  config.net.node_vector_size = 1000;
  const auto ges_system = bench::build_ges(ctx, config);
  const auto sets = bench::build_sets(ctx);
  const auto random_net = bench::build_random_network(ctx);

  const size_t budget = std::max<size_t>(
      1, ges_system->network().alive_count() * 3 / 10);

  struct System {
    const char* name;
    eval::Searcher searcher;
  };
  auto ges_options = ges_system->default_search_options();
  ges_options.probe_budget = budget;
  baselines::SetsSearchOptions sets_options;
  sets_options.probe_budget = budget;
  sets_options.route_segments = std::max<size_t>(4, sets->segment_count() / 8);
  baselines::RandomWalkSearchOptions random_options;
  random_options.probe_budget = budget;

  const System systems[] = {
      {"GES",
       [&](const corpus::Query& q, p2p::NodeId initiator, util::Rng& rng) {
         return ges_system->search(q.vector, initiator, ges_options, rng);
       }},
      {"SETS",
       [&](const corpus::Query& q, p2p::NodeId initiator, util::Rng& rng) {
         return sets->search(q.vector, initiator, sets_options, rng);
       }},
      {"Random",
       [&](const corpus::Query& q, p2p::NodeId initiator, util::Rng& rng) {
         return baselines::random_walk_search(*random_net, q.vector, initiator,
                                              random_options, rng);
       }},
  };

  util::Table table({"system", "prec@5", "prec@10", "prec@15", "recall"});
  for (const auto& system : systems) {
    double p5 = 0.0;
    double p10 = 0.0;
    double p15 = 0.0;
    double rec = 0.0;
    size_t evaluated = 0;
    for (size_t qi = 0; qi < ctx.corpus.queries.size(); ++qi) {
      const auto& query = ctx.corpus.queries[qi];
      if (query.relevant.empty()) continue;
      util::Rng rng(util::derive_seed(ctx.seed, 0xF0000 + qi));
      const auto initiator = ges_system->network().alive_nodes()
          [rng.index(ges_system->network().alive_count())];
      const auto trace = system.searcher(query, initiator, rng);
      const eval::Judgment judgment(query.relevant);
      p5 += eval::precision_at(trace, judgment, 5);
      p10 += eval::precision_at(trace, judgment, 10);
      p15 += eval::precision_at(trace, judgment, 15);
      rec += eval::recall(trace, judgment);
      ++evaluated;
    }
    const auto n = static_cast<double>(evaluated);
    table.add_row({system.name, util::pct_cell(p5 / n), util::pct_cell(p10 / n),
                   util::pct_cell(p15 / n), util::pct_cell(rec / n)});
  }
  std::cout << table.render();
  std::cout << "\nRelevance ranking (Eq. 1) keeps high-end precision high even "
               "when recall\ndiffers — the ranked list is what the user sees "
               "(paper §5.2).\n";
  return 0;
}
