// Randomized stress tests: long interleavings of topology operations,
// churn, document edits and searches must preserve every structural
// invariant. Parameterized over seeds so each run exercises a different
// trajectory.

#include <gtest/gtest.h>

#include <unordered_set>

#include "ges/search.hpp"
#include "ges/topology_adaptation.hpp"
#include "p2p/random_walk.hpp"
#include "support/test_corpus.hpp"

namespace ges {
namespace {

using p2p::LinkType;
using p2p::Network;
using p2p::NodeId;

class StressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StressTest, RandomOperationSoupPreservesInvariants) {
  const auto corpus = test::clustered_corpus(20, 4);
  Network net(corpus, test::uniform_capacities(corpus), p2p::NetworkConfig{});
  util::Rng rng(GetParam());
  p2p::bootstrap_random_graph(net, 4.0, rng);

  for (int op = 0; op < 400; ++op) {
    const auto a = static_cast<NodeId>(rng.index(net.size()));
    const auto b = static_cast<NodeId>(rng.index(net.size()));
    switch (rng.index(6)) {
      case 0:
        net.connect(a, b, rng.chance(0.5) ? LinkType::kRandom : LinkType::kSemantic);
        break;
      case 1:
        net.disconnect(a, b);
        break;
      case 2:
        if (net.has_link(a, b)) {
          net.reclassify(a, b, rng.chance(0.5) ? LinkType::kRandom
                                               : LinkType::kSemantic);
        }
        break;
      case 3:
        if (net.alive(a) && net.alive_count() > 2) net.deactivate(a);
        break;
      case 4:
        if (!net.alive(a)) {
          net.activate(a);
          p2p::bootstrap_join(net, a, 2, rng);
        }
        break;
      case 5:
        if (net.alive(a)) {
          net.add_document(a, ir::SparseVector::from_pairs(
                                  {{static_cast<ir::TermId>(rng.index(64)),
                                    static_cast<float>(1 + rng.index(5))}}));
        }
        break;
    }
    if (op % 50 == 49) net.check_invariants();
  }
  net.check_invariants();
}

TEST_P(StressTest, AdaptationUnderChurnInterleaving) {
  const auto corpus = test::clustered_corpus(24, 3);
  Network net(corpus, test::uniform_capacities(corpus), p2p::NetworkConfig{});
  util::Rng rng(GetParam() + 1000);
  p2p::bootstrap_random_graph(net, 4.0, rng);
  core::TopologyAdaptation adapt(net, core::GesParams{}, GetParam());

  core::AdaptationRoundStats stats;
  for (int round = 0; round < 12; ++round) {
    // Kill and revive a couple of nodes between node steps.
    for (int c = 0; c < 2; ++c) {
      const auto victim = static_cast<NodeId>(rng.index(net.size()));
      if (net.alive(victim) && net.alive_count() > 3) {
        net.deactivate(victim);
      } else if (!net.alive(victim)) {
        net.activate(victim);
        p2p::bootstrap_join(net, victim, 2, rng);
      }
    }
    for (const NodeId n : net.alive_nodes()) adapt.node_step(n, stats);
    net.check_invariants();
  }
  // Semantic links that exist still satisfy the threshold.
  for (const NodeId n : net.alive_nodes()) {
    for (const NodeId peer : net.neighbors(n, LinkType::kSemantic)) {
      EXPECT_GE(net.rel_nodes(n, peer), 0.45 - 1e-9);
    }
  }
}

TEST_P(StressTest, SearchInvariantsOnRandomTopology) {
  const auto corpus = test::clustered_corpus(30, 3);
  Network net(corpus, test::uniform_capacities(corpus), p2p::NetworkConfig{});
  util::Rng rng(GetParam() + 2000);
  p2p::bootstrap_random_graph(net, 5.0, rng);
  // Sprinkle semantic links between same-topic nodes.
  for (int i = 0; i < 30; ++i) {
    const auto a = static_cast<NodeId>(rng.index(net.size()));
    const auto b = static_cast<NodeId>((a + 3 * (1 + rng.index(5))) % net.size());
    if (a % 3 == b % 3) net.connect(a, b, LinkType::kSemantic);
  }

  core::SearchOptions options;
  options.probe_budget = 1 + rng.index(net.size());
  options.ttl = 1 + rng.index(200);
  const auto& query = corpus.queries[rng.index(corpus.queries.size())];
  const auto initiator = static_cast<NodeId>(rng.index(net.size()));
  const auto trace =
      core::GesSearch(net, options).search(query.vector, initiator, rng);

  // Probes: distinct, alive, within budget; the initiator leads.
  std::unordered_set<NodeId> seen;
  for (const NodeId n : trace.probe_order) {
    EXPECT_TRUE(seen.insert(n).second);
    EXPECT_TRUE(net.alive(n));
  }
  EXPECT_LE(trace.probes(), options.probe_budget);
  EXPECT_LE(trace.walk_steps, options.ttl);
  ASSERT_FALSE(trace.probe_order.empty());
  EXPECT_EQ(trace.probe_order.front(), initiator);
  // Retrieved docs belong to the probing node and beat the threshold.
  for (const auto& r : trace.retrieved) {
    ASSERT_LT(r.probe_index, trace.probes());
    EXPECT_EQ(net.document_owner(r.doc), trace.probe_order[r.probe_index]);
    EXPECT_GT(r.score, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest, ::testing::Range<uint64_t>(0, 6));

}  // namespace
}  // namespace ges
