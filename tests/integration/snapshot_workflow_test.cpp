// Workflow test: corpus -> adapt -> snapshot -> reload -> search must be
// equivalent to searching the original overlay, across the serialization
// boundary for both the corpus and the network. Equivalence is
// order-insensitive: a snapshot restores the same links but not each
// node's adjacency-list ordering, so tie-breaking during floods may
// reorder probes — coverage and retrieved results must be identical.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>

#include "corpus/serialization.hpp"
#include "corpus/synthetic_corpus.hpp"
#include "ges/system.hpp"
#include "p2p/network_snapshot.hpp"

namespace ges {
namespace {

TEST(SnapshotWorkflow, ReloadedOverlayGivesIdenticalTraces) {
  auto params = corpus::SyntheticCorpusParams::for_scale(util::Scale::kTiny);
  params.seed = 21;
  const auto corpus = corpus::generate_synthetic_corpus(params);

  core::GesBuildConfig config;
  config.seed = 21;
  config.net.node_vector_size = 200;
  core::GesSystem system(corpus, config);
  system.build();

  // Round-trip corpus and overlay through their binary formats.
  std::stringstream corpus_bytes;
  corpus::save_corpus(corpus, corpus_bytes);
  const auto corpus2 = corpus::load_corpus(corpus_bytes);

  std::stringstream net_bytes;
  p2p::save_network_snapshot(system.network(), net_bytes);
  const auto restored =
      p2p::load_network_snapshot(corpus2, net_bytes, config.net);

  for (size_t qi = 0; qi < corpus.queries.size(); ++qi) {
    util::Rng rng_a(qi);
    util::Rng rng_b(qi);
    const core::SearchOptions options;
    const auto a = core::GesSearch(system.network(), options)
                       .search(corpus.queries[qi].vector, 0, rng_a);
    const auto b = core::GesSearch(restored, options)
                       .search(corpus2.queries[qi].vector, 0, rng_b);

    auto sorted_probes = [](const p2p::SearchTrace& t) {
      auto p = t.probe_order;
      std::sort(p.begin(), p.end());
      return p;
    };
    EXPECT_EQ(sorted_probes(a), sorted_probes(b)) << "query " << qi;

    auto doc_scores = [](const p2p::SearchTrace& t) {
      std::map<ir::DocId, double> m;
      for (const auto& r : t.retrieved) m[r.doc] = r.score;
      return m;
    };
    EXPECT_EQ(doc_scores(a), doc_scores(b)) << "query " << qi;
  }
}

}  // namespace
}  // namespace ges
