// Integration tests: the paper's qualitative claims must hold on a
// small synthetic corpus — GES beats Random at a fixed probe budget,
// semantic groups improve over the bootstrap topology, the recall
// ceiling appears with short queries, and query expansion helps.

#include <gtest/gtest.h>

#include "baselines/random_walk_search.hpp"
#include "baselines/sets.hpp"
#include "corpus/synthetic_corpus.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "ges/system.hpp"
#include "ir/query_expansion.hpp"
#include "util/env.hpp"

namespace ges {
namespace {

/// Shared fixture: one small synthetic corpus, one adapted GES system,
/// one random-graph network for the Random baseline, one SETS system.
class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto params = corpus::SyntheticCorpusParams::for_scale(util::Scale::kSmall);
    params.seed = 7;
    corpus_ = new corpus::Corpus(corpus::generate_synthetic_corpus(params));

    core::GesBuildConfig config;
    config.seed = 7;
    config.net.node_vector_size = 0;  // full vectors, as in Fig. 1
    ges_ = new core::GesSystem(*corpus_, config);
    ges_->build();

    random_net_ = new p2p::Network(
        *corpus_, std::vector<p2p::Capacity>(corpus_->num_nodes(), 1.0),
        p2p::NetworkConfig{});
    util::Rng rng(7);
    p2p::bootstrap_random_graph(*random_net_, 8.0, rng);

    baselines::SetsParams sets_params;
    sets_ = new baselines::SetsSystem(
        *corpus_, std::vector<p2p::Capacity>(corpus_->num_nodes(), 1.0),
        p2p::NetworkConfig{}, sets_params);
    sets_->build();
  }

  static void TearDownTestSuite() {
    delete sets_;
    delete random_net_;
    delete ges_;
    delete corpus_;
    sets_ = nullptr;
    random_net_ = nullptr;
    ges_ = nullptr;
    corpus_ = nullptr;
  }

  static eval::Searcher ges_searcher() {
    return [](const corpus::Query& q, p2p::NodeId initiator, util::Rng& rng) {
      return ges_->search(q.vector, initiator, rng);
    };
  }

  static eval::Searcher random_searcher() {
    return [](const corpus::Query& q, p2p::NodeId initiator, util::Rng& rng) {
      return baselines::random_walk_search(*random_net_, q.vector, initiator, {},
                                           rng);
    };
  }

  static eval::Searcher sets_searcher() {
    return [](const corpus::Query& q, p2p::NodeId initiator, util::Rng& rng) {
      return sets_->search(q.vector, initiator, {}, rng);
    };
  }

  static corpus::Corpus* corpus_;
  static core::GesSystem* ges_;
  static p2p::Network* random_net_;
  static baselines::SetsSystem* sets_;
};

corpus::Corpus* EndToEndTest::corpus_ = nullptr;
core::GesSystem* EndToEndTest::ges_ = nullptr;
p2p::Network* EndToEndTest::random_net_ = nullptr;
baselines::SetsSystem* EndToEndTest::sets_ = nullptr;

TEST_F(EndToEndTest, GesOutperformsRandomAtModerateCost) {
  const auto grid = std::vector<double>{0.2, 0.3, 0.4};
  const auto ges_curve =
      eval::recall_cost_curve(*corpus_, ges_->network(), ges_searcher(), grid, 1);
  const auto random_curve =
      eval::recall_cost_curve(*corpus_, *random_net_, random_searcher(), grid, 1);
  // Paper Fig. 1: GES and SETS "outperform Random substantially".
  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_GT(ges_curve.recall[i], random_curve.recall[i] + 0.1)
        << "at cost " << grid[i];
  }
}

TEST_F(EndToEndTest, SetsAlsoBeatsRandom) {
  const auto grid = std::vector<double>{0.2, 0.3};
  const auto sets_curve =
      eval::recall_cost_curve(*corpus_, sets_->network(), sets_searcher(), grid, 1);
  const auto random_curve =
      eval::recall_cost_curve(*corpus_, *random_net_, random_searcher(), grid, 1);
  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_GT(sets_curve.recall[i], random_curve.recall[i]) << "at cost " << grid[i];
  }
}

TEST_F(EndToEndTest, RecallCeilingBelowHundredWithShortQueries) {
  // Paper §6.1(4): even probing the whole network, short queries cap
  // recall below 100% (98.5% on TREC). Our synthetic corpus reproduces a
  // ceiling in (90%, 100%).
  const auto curve = eval::recall_cost_curve(*corpus_, ges_->network(),
                                             ges_searcher(), {1.0}, 1);
  EXPECT_GT(curve.recall.back(), 0.90);
  EXPECT_LT(curve.recall.back(), 1.0);
}

TEST_F(EndToEndTest, AllSystemsConvergeAtFullCost) {
  // At 100% probing every system evaluates every node, so recall is the
  // same ceiling for all three (paper: "the recall achieved by all three
  // systems is 98.5%").
  const auto g = eval::recall_cost_curve(*corpus_, ges_->network(), ges_searcher(),
                                         {1.0}, 1);
  const auto r = eval::recall_cost_curve(*corpus_, *random_net_, random_searcher(),
                                         {1.0}, 1);
  const auto s = eval::recall_cost_curve(*corpus_, sets_->network(), sets_searcher(),
                                         {1.0}, 1);
  EXPECT_NEAR(g.recall.back(), r.recall.back(), 0.02);
  EXPECT_NEAR(g.recall.back(), s.recall.back(), 0.02);
}

TEST_F(EndToEndTest, TruncatedNodeVectorsStillWork) {
  // Paper §6.2: drastic truncation (s=20) degrades but does not destroy
  // recall. Build a second GES system with s=20 on the same corpus.
  core::GesBuildConfig config;
  config.seed = 8;
  config.net.node_vector_size = 20;
  core::GesSystem truncated(*corpus_, config);
  truncated.build();
  const eval::Searcher searcher = [&](const corpus::Query& q, p2p::NodeId initiator,
                                      util::Rng& rng) {
    return truncated.search(q.vector, initiator, rng);
  };
  const auto curve = eval::recall_cost_curve(*corpus_, truncated.network(), searcher,
                                             {0.3}, 1);
  EXPECT_GT(curve.recall.back(), 0.25);
}

TEST_F(EndToEndTest, QueryExpansionImprovesRecallOfExpandedRun) {
  // Paper §6.3: pseudo-relevance feedback improves recall. Compare
  // centralized evaluation with and without expansion, averaged over
  // queries (this isolates the IR effect from overlay effects).
  double base_sum = 0.0;
  double expanded_sum = 0.0;
  size_t evaluated = 0;
  for (const auto& query : corpus_->queries) {
    if (query.relevant.empty()) continue;
    // Centralized top-k retrieval over all documents.
    auto score_all = [&](const ir::SparseVector& q) {
      std::vector<std::pair<double, ir::DocId>> scored;
      for (const auto& doc : corpus_->docs) {
        const double s = doc.vector.dot(q);
        if (s > 0.0) scored.emplace_back(s, doc.id);
      }
      std::sort(scored.begin(), scored.end(), std::greater<>());
      return scored;
    };
    const auto base = score_all(query.vector);
    std::vector<ir::SparseVector> feedback;
    for (size_t i = 0; i < std::min<size_t>(10, base.size()); ++i) {
      feedback.push_back(corpus_->docs[base[i].second].vector);
    }
    ir::QueryExpansionParams qe;
    qe.added_terms = 30;
    const auto expanded = ir::expand_query(query.vector, feedback, qe);
    const auto expanded_scored = score_all(expanded);

    const eval::Judgment judgment(query.relevant);
    auto recall_of = [&](const std::vector<std::pair<double, ir::DocId>>& scored) {
      size_t hits = 0;
      for (const auto& [s, d] : scored) hits += judgment.is_relevant(d) ? 1 : 0;
      return static_cast<double>(hits) / judgment.total_relevant();
    };
    base_sum += recall_of(base);
    expanded_sum += recall_of(expanded_scored);
    ++evaluated;
  }
  ASSERT_GT(evaluated, 0u);
  EXPECT_GT(expanded_sum / evaluated, base_sum / evaluated);
}

}  // namespace
}  // namespace ges
