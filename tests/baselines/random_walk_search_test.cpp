#include "baselines/random_walk_search.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "support/test_corpus.hpp"
#include "util/check.hpp"

namespace ges::baselines {
namespace {

using p2p::LinkType;
using p2p::Network;
using p2p::NodeId;

class RandomSearchTest : public ::testing::Test {
 protected:
  RandomSearchTest()
      : corpus_(test::clustered_corpus(30, 3)),
        net_(corpus_, test::uniform_capacities(corpus_), p2p::NetworkConfig{}) {
    util::Rng rng(1);
    p2p::bootstrap_random_graph(net_, 8.0, rng);  // paper: avg degree 8
  }

  corpus::Corpus corpus_;
  Network net_;
};

TEST_F(RandomSearchTest, ProbesDistinctNodes) {
  util::Rng rng(2);
  const auto trace =
      random_walk_search(net_, corpus_.queries[0].vector, 0, {}, rng);
  std::unordered_set<NodeId> unique(trace.probe_order.begin(), trace.probe_order.end());
  EXPECT_EQ(unique.size(), trace.probes());
}

TEST_F(RandomSearchTest, ExhaustiveCoversConnectedNetwork) {
  util::Rng rng(3);
  const auto trace =
      random_walk_search(net_, corpus_.queries[0].vector, 0, {}, rng);
  EXPECT_GE(trace.probes(), net_.alive_count() * 9 / 10);
}

TEST_F(RandomSearchTest, ProbeBudgetRespected) {
  RandomWalkSearchOptions opt;
  opt.probe_budget = 7;
  util::Rng rng(4);
  const auto trace =
      random_walk_search(net_, corpus_.queries[0].vector, 0, opt, rng);
  EXPECT_LE(trace.probes(), 7u);
}

TEST_F(RandomSearchTest, TtlBoundsTotalHops) {
  RandomWalkSearchOptions opt;
  opt.ttl = 10;
  util::Rng rng(5);
  const auto trace =
      random_walk_search(net_, corpus_.queries[0].vector, 0, opt, rng);
  EXPECT_LE(trace.walk_steps, 10u);
}

TEST_F(RandomSearchTest, MaxResponsesStops) {
  RandomWalkSearchOptions opt;
  opt.max_responses = 2;
  util::Rng rng(6);
  const auto trace =
      random_walk_search(net_, corpus_.queries[0].vector, 0, opt, rng);
  EXPECT_GE(trace.retrieved.size(), 2u);
  EXPECT_LT(trace.probes(), net_.alive_count());
}

TEST_F(RandomSearchTest, WalkerCountMustBePositive) {
  RandomWalkSearchOptions opt;
  opt.walkers = 0;
  util::Rng rng(7);
  EXPECT_THROW(random_walk_search(net_, corpus_.queries[0].vector, 0, opt, rng),
               util::CheckFailure);
}

TEST_F(RandomSearchTest, DeterministicInRngSeed) {
  auto run = [&](uint64_t seed) {
    util::Rng rng(seed);
    return random_walk_search(net_, corpus_.queries[0].vector, 0, {}, rng)
        .probe_order;
  };
  EXPECT_EQ(run(8), run(8));
}

TEST(RandomSearchIsolated, StuckWalkersTerminate) {
  const auto corpus = test::clustered_corpus(4, 1);
  p2p::Network net(corpus, test::uniform_capacities(corpus), p2p::NetworkConfig{});
  util::Rng rng(9);
  const auto trace = random_walk_search(net, corpus.queries[0].vector, 0, {}, rng);
  EXPECT_EQ(trace.probes(), 1u);  // only the initiator
}

TEST(FloodingSearch, CoversNetworkInBfsOrder) {
  const auto corpus = test::clustered_corpus(10, 2);
  p2p::Network net(corpus, test::uniform_capacities(corpus), p2p::NetworkConfig{});
  // Line 0-1-2-...-9.
  for (NodeId n = 0; n + 1 < 10; ++n) net.connect(n, n + 1, LinkType::kRandom);
  const auto trace = flooding_search(net, corpus.queries[0].vector, 0, {});
  ASSERT_EQ(trace.probes(), 10u);
  for (NodeId n = 0; n < 10; ++n) EXPECT_EQ(trace.probe_order[n], n);
}

TEST(FloodingSearch, TtlLimitsDepth) {
  const auto corpus = test::clustered_corpus(10, 2);
  p2p::Network net(corpus, test::uniform_capacities(corpus), p2p::NetworkConfig{});
  for (NodeId n = 0; n + 1 < 10; ++n) net.connect(n, n + 1, LinkType::kRandom);
  FloodingSearchOptions opt;
  opt.ttl = 3;
  const auto trace = flooding_search(net, corpus.queries[0].vector, 0, opt);
  EXPECT_EQ(trace.probes(), 4u);  // initiator + depth 1..3
}

TEST(FloodingSearch, CountsDuplicateSuppressedMessages) {
  // Triangle 0-1-2 plus an isolated node 3 (so the probe budget of
  // "all alive nodes" is never exhausted and the flood runs to quiescence).
  const auto corpus = test::clustered_corpus(4, 1);
  p2p::Network net(corpus, test::uniform_capacities(corpus), p2p::NetworkConfig{});
  net.connect(0, 1, LinkType::kRandom);
  net.connect(1, 2, LinkType::kRandom);
  net.connect(2, 0, LinkType::kRandom);
  const auto trace = flooding_search(net, corpus.queries[0].vector, 0, {});
  EXPECT_EQ(trace.probes(), 3u);
  // 0 sends to 1 and 2; then 1 and 2 each send one duplicate-suppressed
  // message to the other: 4 messages, 3 probes.
  EXPECT_EQ(trace.flood_messages, 4u);
}

}  // namespace
}  // namespace ges::baselines
