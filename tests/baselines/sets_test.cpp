#include "baselines/sets.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "eval/metrics.hpp"
#include "support/test_corpus.hpp"
#include "util/check.hpp"

namespace ges::baselines {
namespace {

using p2p::LinkType;
using p2p::NodeId;

class SetsTest : public ::testing::Test {
 protected:
  SetsTest() : corpus_(test::clustered_corpus(30, 3)) {}

  SetsSystem make(size_t segments = 3, size_t routing_hops = 0) {
    SetsParams params;
    params.segments = segments;
    params.seed = 11;
    params.routing_hops = routing_hops;  // most tests disable routing cost
    return SetsSystem(corpus_, test::uniform_capacities(corpus_),
                      p2p::NetworkConfig{}, params);
  }

  corpus::Corpus corpus_;
};

TEST_F(SetsTest, ClusteringAssignsEveryNode) {
  auto sets = make();
  sets.build();
  EXPECT_EQ(sets.segment_count(), 3u);
  const auto& assignment = sets.segment_assignment();
  ASSERT_EQ(assignment.size(), corpus_.num_nodes());
  size_t members_total = 0;
  for (size_t s = 0; s < sets.segment_count(); ++s) {
    for (const NodeId m : sets.segment_members(s)) {
      EXPECT_EQ(assignment[m], s);
      ++members_total;
    }
  }
  EXPECT_EQ(members_total, corpus_.num_nodes());
}

TEST_F(SetsTest, OrthogonalTopicsClusterPerfectly) {
  // 3 orthogonal topics and C = 3: k-means must recover them — every
  // segment is topic-pure.
  auto sets = make();
  sets.build();
  for (size_t s = 0; s < sets.segment_count(); ++s) {
    const auto& members = sets.segment_members(s);
    ASSERT_FALSE(members.empty());
    const auto topic = members.front() % 3;
    for (const NodeId m : members) EXPECT_EQ(m % 3, topic);
  }
}

TEST_F(SetsTest, CentroidsAreNormalized) {
  auto sets = make();
  sets.build();
  for (size_t s = 0; s < sets.segment_count(); ++s) {
    EXPECT_NEAR(sets.centroid(s).norm(), 1.0, 1e-5);
  }
}

TEST_F(SetsTest, OverlayHasLocalAndLongLinks) {
  auto sets = make();
  sets.build();
  auto& net = sets.network();
  net.check_invariants();
  size_t local = 0;
  size_t lng = 0;
  for (NodeId n = 0; n < net.size(); ++n) {
    for (const NodeId peer : net.neighbors(n, LinkType::kSemantic)) {
      EXPECT_EQ(sets.segment_assignment()[n], sets.segment_assignment()[peer]);
      ++local;
    }
    for (const NodeId peer : net.neighbors(n, LinkType::kRandom)) {
      EXPECT_NE(sets.segment_assignment()[n], sets.segment_assignment()[peer]);
      ++lng;
    }
  }
  EXPECT_GT(local, 0u);
  EXPECT_GT(lng, 0u);
}

TEST_F(SetsTest, SearchBeforeBuildThrows) {
  auto sets = make();
  util::Rng rng(1);
  EXPECT_THROW(sets.search(corpus_.queries[0].vector, 0, {}, rng),
               util::CheckFailure);
}

TEST_F(SetsTest, SearchVisitsRelevantSegmentFirst) {
  auto sets = make();
  sets.build();
  util::Rng rng(2);
  SetsSearchOptions opt;
  opt.route_segments = 1;
  const auto trace = sets.search(corpus_.queries[0].vector, 0, opt, rng);
  // The most relevant segment is probed first; it is topic-pure, so the
  // first |segment| probed nodes all belong to the query's topic (the
  // remaining budget then sweeps the other segments in id order).
  const size_t segment_size = corpus_.num_nodes() / 3;
  ASSERT_GE(trace.probes(), segment_size);
  for (size_t i = 0; i < segment_size; ++i) {
    EXPECT_EQ(trace.probe_order[i] % 3, 0u) << "probe " << i;
  }
  // Full recall for the query's topic after just that first segment.
  const eval::Judgment judgment(corpus_.queries[0].relevant);
  EXPECT_GT(eval::recall_at_probes(trace, judgment, segment_size), 0.9);
}

TEST_F(SetsTest, UnrankedTailVisitedInSegmentIdOrder) {
  auto sets = make();
  sets.build();
  util::Rng rng(5);
  SetsSearchOptions opt;
  opt.route_segments = 1;
  const auto trace = sets.search(corpus_.queries[0].vector, 0, opt, rng);
  // Everything is still covered eventually.
  EXPECT_EQ(trace.probes(), corpus_.num_nodes());
}

TEST_F(SetsTest, ExhaustiveSearchCoversAllNodes) {
  auto sets = make();
  sets.build();
  util::Rng rng(3);
  const auto trace = sets.search(corpus_.queries[1].vector, 0, {}, rng);
  EXPECT_EQ(trace.probes(), corpus_.num_nodes());
  std::unordered_set<NodeId> unique(trace.probe_order.begin(), trace.probe_order.end());
  EXPECT_EQ(unique.size(), trace.probes());
}

TEST_F(SetsTest, ProbeBudgetRespected) {
  auto sets = make();
  sets.build();
  util::Rng rng(4);
  SetsSearchOptions opt;
  opt.probe_budget = 6;
  const auto trace = sets.search(corpus_.queries[0].vector, 0, opt, rng);
  EXPECT_LE(trace.probes(), 6u);
}

TEST_F(SetsTest, RoutingHopsProbeForwardingNodes) {
  auto sets = make(3, /*routing_hops=*/2);
  sets.build();
  util::Rng rng(6);
  SetsSearchOptions opt;
  opt.probe_budget = 4;
  const auto trace = sets.search(corpus_.queries[0].vector, 0, opt, rng);
  // Two routing probes precede the segment entry; they count as
  // walk steps and as probed nodes ("involved in query processing").
  EXPECT_GE(trace.walk_steps, 2u);
  EXPECT_EQ(trace.probes(), 4u);
}

TEST_F(SetsTest, AutoRoutingHopsIsLogOfSegments) {
  SetsParams params;
  params.segments = 8;
  SetsSystem sets(corpus_, test::uniform_capacities(corpus_), p2p::NetworkConfig{},
                  params);
  sets.build();
  util::Rng rng(7);
  SetsSearchOptions opt;
  opt.route_segments = 1;
  opt.probe_budget = 3;
  const auto trace = sets.search(corpus_.queries[0].vector, 0, opt, rng);
  EXPECT_GE(trace.walk_steps, 3u);  // ceil(log2(8)) = 3 routing hops
}

TEST_F(SetsTest, AutoSegmentCount) {
  SetsParams params;  // segments = 0 -> auto
  SetsSystem sets(corpus_, test::uniform_capacities(corpus_), p2p::NetworkConfig{},
                  params);
  sets.build();
  EXPECT_EQ(sets.segment_count(), std::max<size_t>(2, corpus_.num_nodes() / 7));
}

TEST_F(SetsTest, TooManySegmentsRejected) {
  SetsParams params;
  params.segments = corpus_.num_nodes() + 1;
  EXPECT_THROW(SetsSystem(corpus_, test::uniform_capacities(corpus_),
                          p2p::NetworkConfig{}, params),
               util::CheckFailure);
}

TEST_F(SetsTest, UsesFullNodeVectorsRegardlessOfConfig) {
  p2p::NetworkConfig net_config;
  net_config.node_vector_size = 2;  // must be overridden to full
  SetsParams params;
  params.segments = 3;
  SetsSystem sets(corpus_, test::uniform_capacities(corpus_), net_config, params);
  EXPECT_GT(sets.network().node_vector(0).size(), 2u);
}

TEST_F(SetsTest, DeterministicInSeed) {
  auto run = [&] {
    auto sets = make(3);
    sets.build();
    return sets.segment_assignment();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace ges::baselines
