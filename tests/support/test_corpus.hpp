#pragma once

// Hand-constructed corpora with perfectly controllable structure, used by
// the p2p / ges / baselines / integration tests. Topics use disjoint term
// blocks, so same-topic node vectors are highly relevant (REL ~ 1) and
// different-topic ones are orthogonal (REL = 0) — ideal for asserting on
// adaptation and search behaviour.

#include <cstdint>
#include <vector>

#include "corpus/corpus.hpp"
#include "p2p/types.hpp"

namespace ges::test {

/// Corpus with `nodes` nodes; node i writes `docs_per_node` documents
/// about topic (i % topics). Topic t owns terms
/// [t*terms_per_topic, (t+1)*terms_per_topic). Each document covers the
/// whole topic block with mild weight variation; one query per topic uses
/// the block's first two terms, judged relevant = all docs of that topic.
inline corpus::Corpus clustered_corpus(size_t nodes, size_t topics,
                                       size_t docs_per_node = 3,
                                       size_t terms_per_topic = 8) {
  corpus::Corpus c;
  for (size_t t = 0; t < topics * terms_per_topic; ++t) {
    c.dict.intern("w" + std::to_string(t));
  }
  c.node_docs.resize(nodes);
  for (size_t n = 0; n < nodes; ++n) {
    const auto topic = static_cast<corpus::TopicId>(n % topics);
    const auto base = static_cast<ir::TermId>(topic * terms_per_topic);
    for (size_t k = 0; k < docs_per_node; ++k) {
      std::vector<ir::TermWeight> counts;
      for (size_t j = 0; j < terms_per_topic; ++j) {
        // Vary frequencies slightly so documents are not identical.
        const auto f = static_cast<float>(1 + (n + k + j) % 3);
        counts.push_back({static_cast<ir::TermId>(base + j), f});
      }
      corpus::Document d;
      d.id = static_cast<ir::DocId>(c.docs.size());
      d.node = static_cast<corpus::NodeIndex>(n);
      d.topic = topic;
      d.counts = ir::SparseVector::from_pairs(std::move(counts));
      d.vector = d.counts;
      d.vector.dampen();
      d.vector.normalize();
      c.node_docs[n].push_back(d.id);
      c.docs.push_back(std::move(d));
    }
  }
  for (size_t t = 0; t < topics; ++t) {
    corpus::Query q;
    q.id = static_cast<uint32_t>(t);
    q.topic = static_cast<corpus::TopicId>(t);
    const auto base = static_cast<ir::TermId>(t * terms_per_topic);
    q.vector = ir::SparseVector::from_pairs(
        {{base, 1.0f}, {static_cast<ir::TermId>(base + 1), 1.0f}});
    q.vector.normalize();
    for (const auto& d : c.docs) {
      if (d.topic == q.topic) q.relevant.push_back(d.id);
    }
    c.queries.push_back(std::move(q));
  }
  return c;
}

/// Uniform capacities for a corpus.
inline std::vector<p2p::Capacity> uniform_capacities(const corpus::Corpus& c,
                                                     p2p::Capacity value = 1.0) {
  return std::vector<p2p::Capacity>(c.num_nodes(), value);
}

}  // namespace ges::test
