#include "eval/metrics.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace ges::eval {
namespace {

/// Trace: probes n0..n3; relevant docs {1, 3, 5}; retrievals:
/// probe 0 -> doc 1 (rel), probe 1 -> doc 2 (not rel),
/// probe 2 -> doc 3 (rel), probe 3 -> nothing.
p2p::SearchTrace sample_trace() {
  p2p::SearchTrace t;
  t.probe_order = {10, 11, 12, 13};
  t.retrieved = {{1, 0.9, 0}, {2, 0.8, 1}, {3, 0.4, 2}};
  return t;
}

Judgment sample_judgment() { return Judgment({1, 3, 5}); }

TEST(Judgment, MembershipAndCount) {
  const auto j = sample_judgment();
  EXPECT_TRUE(j.is_relevant(1));
  EXPECT_TRUE(j.is_relevant(5));
  EXPECT_FALSE(j.is_relevant(2));
  EXPECT_EQ(j.total_relevant(), 3u);
}

TEST(Recall, FullTrace) {
  // 2 of 3 relevant docs retrieved.
  EXPECT_NEAR(recall(sample_trace(), sample_judgment()), 2.0 / 3.0, 1e-12);
}

TEST(Recall, AtProbePrefixes) {
  const auto t = sample_trace();
  const auto j = sample_judgment();
  EXPECT_DOUBLE_EQ(recall_at_probes(t, j, 0), 0.0);
  EXPECT_NEAR(recall_at_probes(t, j, 1), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(recall_at_probes(t, j, 2), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(recall_at_probes(t, j, 3), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(recall_at_probes(t, j, 100), 2.0 / 3.0, 1e-12);
}

TEST(Recall, NoRelevantDocsIsZero) {
  EXPECT_DOUBLE_EQ(recall(sample_trace(), Judgment({})), 0.0);
}

TEST(Recall, VectorizedMatchesScalar) {
  const auto t = sample_trace();
  const auto j = sample_judgment();
  const auto v = recall_at_probe_counts(t, j, {0, 1, 2, 3, 4, 100});
  ASSERT_EQ(v.size(), 6u);
  for (size_t i = 0; i < v.size(); ++i) {
    const size_t probes = std::vector<size_t>{0, 1, 2, 3, 4, 100}[i];
    EXPECT_DOUBLE_EQ(v[i], recall_at_probes(t, j, probes)) << probes;
  }
}

TEST(Precision, RanksByScore) {
  const auto t = sample_trace();
  const auto j = sample_judgment();
  // Ranked: doc1(0.9, rel), doc2(0.8, not), doc3(0.4, rel).
  EXPECT_DOUBLE_EQ(precision_at(t, j, 1), 1.0);
  EXPECT_DOUBLE_EQ(precision_at(t, j, 2), 0.5);
  EXPECT_NEAR(precision_at(t, j, 3), 2.0 / 3.0, 1e-12);
}

TEST(Precision, DenominatorIsREvenWhenFewerRetrieved) {
  const auto t = sample_trace();
  const auto j = sample_judgment();
  // Only 3 docs retrieved; prec@15 = 2/15 (paper's high-end precision).
  EXPECT_NEAR(precision_at(t, j, 15), 2.0 / 15.0, 1e-12);
}

TEST(Precision, ZeroRThrows) {
  EXPECT_THROW(precision_at(sample_trace(), sample_judgment(), 0),
               util::CheckFailure);
}

TEST(TopKResults, RanksByScoreThenDoc) {
  const auto t = sample_trace();
  const auto top2 = top_k_results(t, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].doc, 1u);
  EXPECT_EQ(top2[1].doc, 2u);
  // Asking for more than retrieved returns all of them.
  EXPECT_EQ(top_k_results(t, 99).size(), 3u);
  EXPECT_TRUE(top_k_results(p2p::SearchTrace{}, 5).empty());
}

TEST(ProcessingCost, FractionOfNodes) {
  EXPECT_DOUBLE_EQ(processing_cost(sample_trace(), 40), 0.1);
  EXPECT_THROW(processing_cost(sample_trace(), 0), util::CheckFailure);
}

TEST(Recall, EmptyTrace) {
  const p2p::SearchTrace empty;
  EXPECT_DOUBLE_EQ(recall(empty, sample_judgment()), 0.0);
  const auto v = recall_at_probe_counts(empty, sample_judgment(), {0, 5});
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
}

}  // namespace
}  // namespace ges::eval
