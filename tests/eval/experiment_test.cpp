#include "eval/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/random_walk_search.hpp"
#include "ges/system.hpp"
#include "support/test_corpus.hpp"
#include "util/check.hpp"

namespace ges::eval {
namespace {

TEST(CostGrid, StandardIsSortedFractionalAndEndsAtOne) {
  const auto grid = standard_cost_grid();
  ASSERT_FALSE(grid.empty());
  for (size_t i = 1; i < grid.size(); ++i) EXPECT_LT(grid[i - 1], grid[i]);
  EXPECT_GT(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 1.0);
}

TEST(RecallCostCurve, InterpolatesLinearly) {
  RecallCostCurve c;
  c.cost = {0.1, 0.3};
  c.recall = {0.2, 0.6};
  EXPECT_DOUBLE_EQ(c.recall_at(0.05), 0.2);   // clamp below
  EXPECT_DOUBLE_EQ(c.recall_at(0.1), 0.2);
  EXPECT_NEAR(c.recall_at(0.2), 0.4, 1e-12);  // midpoint
  EXPECT_DOUBLE_EQ(c.recall_at(0.5), 0.6);    // clamp above
}

class ExperimentTest : public ::testing::Test {
 protected:
  ExperimentTest() : corpus_(test::clustered_corpus(30, 3)) {
    core::GesBuildConfig config;
    config.seed = 3;
    system_ = std::make_unique<core::GesSystem>(corpus_, config);
    system_->build();
  }

  Searcher ges_searcher() {
    return [this](const corpus::Query& q, p2p::NodeId initiator, util::Rng& rng) {
      return system_->search(q.vector, initiator, rng);
    };
  }

  corpus::Corpus corpus_;
  std::unique_ptr<core::GesSystem> system_;
};

TEST_F(ExperimentTest, CurveIsMonotoneNonDecreasing) {
  const auto curve = recall_cost_curve(corpus_, system_->network(), ges_searcher(),
                                       standard_cost_grid(), 1);
  ASSERT_EQ(curve.cost.size(), curve.recall.size());
  for (size_t i = 1; i < curve.recall.size(); ++i) {
    EXPECT_GE(curve.recall[i], curve.recall[i - 1] - 1e-12);
  }
  EXPECT_GE(curve.recall.back(), 0.9);  // orthogonal corpus: near-full recall
}

TEST_F(ExperimentTest, DeterministicInSeed) {
  const auto a = recall_cost_curve(corpus_, system_->network(), ges_searcher(),
                                   standard_cost_grid(), 5);
  const auto b = recall_cost_curve(corpus_, system_->network(), ges_searcher(),
                                   standard_cost_grid(), 5);
  EXPECT_EQ(a.recall, b.recall);
}

TEST_F(ExperimentTest, CostStatsPopulated) {
  SearchCostStats stats;
  recall_cost_curve(corpus_, system_->network(), ges_searcher(),
                    standard_cost_grid(), 1, &stats);
  EXPECT_GT(stats.mean_walk_steps + stats.mean_flood_messages, 0.0);
}

TEST_F(ExperimentTest, PerQueryRecallHasOneEntryPerJudgedQuery) {
  const auto recalls = per_query_recall_at_cost(corpus_, system_->network(),
                                                ges_searcher(), 0.3, 1);
  EXPECT_EQ(recalls.size(), corpus_.queries.size());
  for (const double r : recalls) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST_F(ExperimentTest, CurvesTableRendersAllSeries) {
  const auto curve = recall_cost_curve(corpus_, system_->network(), ges_searcher(),
                                       {0.1, 0.5, 1.0}, 1);
  const auto table = curves_table({"GES", "GES2"}, {curve, curve});
  EXPECT_EQ(table.rows(), 3u);
  EXPECT_EQ(table.columns(), 3u);
}

TEST_F(ExperimentTest, CurvesTableRejectsMismatch) {
  const auto curve = recall_cost_curve(corpus_, system_->network(), ges_searcher(),
                                       {0.1, 1.0}, 1);
  EXPECT_THROW(curves_table({"only-one-name"}, {curve, curve}), util::CheckFailure);
}

TEST(AverageCurves, MeanAndStddev) {
  RecallCostCurve a;
  a.cost = {0.1, 0.5};
  a.recall = {0.2, 0.6};
  RecallCostCurve b;
  b.cost = {0.1, 0.5};
  b.recall = {0.4, 0.8};
  const auto avg = average_curves({a, b});
  EXPECT_EQ(avg.runs, 2u);
  EXPECT_DOUBLE_EQ(avg.mean[0], 0.3);
  EXPECT_DOUBLE_EQ(avg.mean[1], 0.7);
  // Sample stddev of {0.2, 0.4} is sqrt(0.02).
  EXPECT_NEAR(avg.stddev[0], std::sqrt(0.02), 1e-12);
  const auto mean_curve = avg.mean_curve();
  EXPECT_DOUBLE_EQ(mean_curve.recall_at(0.3), 0.5);
}

TEST(AverageCurves, SingleRunHasZeroStddev) {
  RecallCostCurve a;
  a.cost = {0.1};
  a.recall = {0.2};
  const auto avg = average_curves({a});
  EXPECT_DOUBLE_EQ(avg.stddev[0], 0.0);
}

TEST(AverageCurves, MismatchedGridsRejected) {
  RecallCostCurve a;
  a.cost = {0.1};
  a.recall = {0.2};
  RecallCostCurve b;
  b.cost = {0.2};
  b.recall = {0.2};
  EXPECT_THROW(average_curves({a, b}), util::CheckFailure);
  EXPECT_THROW(average_curves({}), util::CheckFailure);
}

TEST(ExperimentNoJudgments, Throws) {
  auto corpus = test::clustered_corpus(6, 2);
  for (auto& q : corpus.queries) q.relevant.clear();
  core::GesSystem system(corpus, core::GesBuildConfig{});
  system.build();
  const Searcher searcher = [&](const corpus::Query& q, p2p::NodeId initiator,
                                util::Rng& rng) {
    return system.search(q.vector, initiator, rng);
  };
  EXPECT_THROW(
      recall_cost_curve(corpus, system.network(), searcher, {0.5, 1.0}, 1),
      util::CheckFailure);
}

}  // namespace
}  // namespace ges::eval
