// Seeded scenario fuzzer (tentpole of the fault-injection harness):
// sweeps (seed x churn x fault-rate x result-cache) grids of full GES
// deployments — bootstrap, adaptation rounds, replica heartbeats,
// optional churn, all under an injected FaultPlan — and asserts every
// overlay invariant after every adaptation round (including
// result-cache liveness: dead nodes cache nothing, no cache holds
// dead-owner results). Cache-on probe searches run in strict mode, so
// every hit is re-verified against the owners' live indexes. A second
// suite pins down the determinism contract: identical FaultPlan seeds
// reproduce byte-identical search traces and network snapshots, serial
// or parallel, all-zero fault rates match a run with no injector wired
// in at all, and a burst of cache-on searches does not perturb
// subsequent cache-off golden traces.
//
// Everything here is labeled `fuzz` in CTest (see tests/CMakeLists.txt);
// CI runs it under ASan via `ctest -L fuzz` so tier-1 stays fast.

#include <gtest/gtest.h>

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ges/scenario.hpp"
#include "ges/system.hpp"
#include "p2p/network_snapshot.hpp"
#include "p2p/wire.hpp"
#include "support/test_corpus.hpp"

namespace ges::core {
namespace {

using p2p::FaultPlan;
using p2p::NodeId;

constexpr size_t kNodes = 24;
constexpr size_t kTopics = 3;

ScenarioParams base_params(uint64_t seed, double fault_rate, bool churn) {
  ScenarioParams sp;
  sp.params.max_links = 6;
  sp.params.min_links = 2;
  sp.params.walk_ttl = 20;
  sp.faults = FaultPlan::uniform(fault_rate, util::derive_seed(seed, 77));
  if (fault_rate > 0.0) {
    sp.faults.delay_rate = fault_rate / 2;
    sp.faults.duplicate_rate = fault_rate / 4;
    sp.faults.partition_rate = fault_rate / 2;
  }
  sp.churn_enabled = churn;
  sp.churn.mean_session = 60.0;
  sp.churn.mean_downtime = 25.0;
  sp.churn.bootstrap_links = 2;
  sp.churn.seed = util::derive_seed(seed, 78);
  sp.rounds = 12;
  sp.seed = seed;
  // Health watchdog on across the whole grid: sweeps are observation-only
  // (the golden-trace suites below run with it enabled and still match),
  // and the per-sweep aggregates feed the [fuzz-summary] lines.
  sp.health_monitor = true;
  return sp;
}

/// The scenario's degree policy allows bootstrap-join links past the cap:
/// each rejoin adds up to bootstrap_links to arbitrary nodes. The grid is
/// fully deterministic, so this slack is exact for these seeds and stays
/// valid forever.
constexpr size_t kChurnDegreeSlack = 6;

class FuzzGrid
    : public ::testing::TestWithParam<std::tuple<uint64_t, double, bool, bool>> {};

TEST_P(FuzzGrid, InvariantsHoldAfterEveryRound) {
  const auto [seed, fault_rate, churn, cache] = GetParam();
  const auto corpus = test::clustered_corpus(kNodes, kTopics);
  ScenarioRunner runner(corpus, base_params(seed, fault_rate, churn));
  const auto options = runner.invariant_options(churn ? kChurnDegreeSlack : 0);

  size_t rounds_checked = 0;
  runner.run([&](size_t round) {
    ++rounds_checked;
    SCOPED_TRACE("seed " + std::to_string(seed) + " rate " +
                 std::to_string(fault_rate) + " churn " + std::to_string(churn) +
                 " cache " + std::to_string(cache) + " round " +
                 std::to_string(round));
    ASSERT_NO_THROW(p2p::expect_overlay_invariants(runner.network(), options));
  });
  EXPECT_EQ(rounds_checked, runner.params().rounds);

  // Fault accounting sanity: faults fire iff the plan enables them.
  const auto& c = runner.faults().counters();
  const uint64_t fired = c.messages_dropped.load() + c.messages_blocked.load() +
                         c.heartbeats_lost.load() + c.handshake_deaths.load();
  if (fault_rate == 0.0) {
    EXPECT_EQ(fired, 0u);
    EXPECT_EQ(runner.total_stats().handshake_aborts, 0u);
    EXPECT_EQ(runner.total_stats().backoff_skips, 0u);
  } else {
    EXPECT_GT(fired, 0u);
  }

  // Searching the faulted overlay still works from any alive node. With
  // the cache dimension on, the same query runs twice in strict mode: the
  // repeat exercises the hit path (re-verified against the owners' live
  // indexes inside the engine), and every retrieved document — fresh or
  // cached — must have been answered by a node that is alive right now.
  util::Rng rng(util::derive_seed(seed, 79));
  const auto alive = runner.network().alive_nodes();
  ASSERT_FALSE(alive.empty());
  SearchOptions sopt;
  sopt.ttl = 30;
  sopt.use_result_cache = cache;
  sopt.strict_result_cache = cache;
  const NodeId initiator = alive[rng.index(alive.size())];
  const auto& query = corpus.queries[seed % corpus.queries.size()].vector;
  const auto trace = runner.search(query, initiator, sopt, rng);
  EXPECT_GE(trace.probes(), 1u);
  // Byte accounting reconciles across the whole grid: message units times
  // the Wire-format-v1 frame sizes, exactly (bytes are charged at send
  // time, so faults and churn never skew the relation).
  EXPECT_EQ(trace.bytes_sent,
            trace.walk_steps * p2p::wire::walk_query_frame_size(query.size()) +
                trace.flood_messages *
                    p2p::wire::flood_forward_frame_size(query.size()));
  p2p::SearchTrace repeat;
  if (cache) {
    util::Rng repeat_rng(util::derive_seed(seed, 81));
    repeat = runner.search(query, initiator, sopt, repeat_rng);
    const auto expect_alive_answers = [&](const p2p::SearchTrace& t) {
      for (const auto& r : t.retrieved) {
        ASSERT_LT(r.probe_index, t.probe_order.size());
        EXPECT_TRUE(runner.network().alive(t.probe_order[r.probe_index]))
            << "result served by a dead node";
      }
    };
    expect_alive_answers(trace);
    expect_alive_answers(repeat);
    if (trace.cache_hits == 0 && !trace.retrieved.empty()) {
      // Fresh completion stored at the initiator; no sim time passed, so
      // the repeat must be a hit.
      EXPECT_GE(repeat.cache_hits, 1u);
    }
  }

  // Per-seed event-core and query-data-plane accounting, greppable from
  // CI logs: processed handlers, timers still live at teardown, timers
  // cancelled (e.g. heartbeats suspended by churn departures), and the
  // probe search's relevance-evaluation counters (memo hits > 0 shows the
  // per-query memo is exercised under faults and churn, not just in
  // clean-room tests).
  const auto& queue = runner.queue();
  const auto& cstats = runner.result_cache().stats();
  ASSERT_NE(runner.health(), nullptr);
  const auto& health = *runner.health();
  EXPECT_EQ(health.sweeps(), runner.params().rounds);
  std::cout << "[fuzz-summary] seed=" << seed << " fault_rate=" << fault_rate
            << " churn=" << churn << " cache=" << cache
            << " events_processed=" << queue.processed()
            << " events_live=" << queue.live()
            << " events_cancelled=" << queue.cancelled()
            << " rel_evals=" << trace.rel_evals
            << " rel_memo_hits=" << trace.rel_memo_hits
            << " bytes_sent=" << trace.bytes_sent
            << " cache_hits=" << cstats.hits << " cache_misses=" << cstats.misses
            << " cache_stores=" << cstats.stores
            << " cache_invalidations=" << cstats.invalidations
            << " health_anomalies=" << health.anomalies_seen()
            << " health_alive=" << health.last().alive << "/"
            << health.last().nodes
            << " health_max_staleness=" << health.last().max_staleness
            << " health_in_backoff=" << health.last().nodes_in_backoff << "\n";
}

// >= 10 seeds x 3 fault rates (including 0) x churn on/off x result
// cache on/off = 120 scenarios.
INSTANTIATE_TEST_SUITE_P(
    Grid, FuzzGrid,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u),
                       ::testing::Values(0.0, 0.05, 0.2),
                       ::testing::Bool(), ::testing::Bool()));

// --- Golden-trace determinism -------------------------------------------

struct RunArtifacts {
  std::string snapshot;
  std::vector<p2p::SearchTrace> traces;
  size_t departures = 0;
  size_t arrivals = 0;
};

RunArtifacts run_scenario(const corpus::Corpus& corpus, const ScenarioParams& sp) {
  ScenarioRunner runner(corpus, sp);
  runner.run();
  RunArtifacts out;
  util::Rng rng(util::derive_seed(sp.seed, 80));
  SearchOptions sopt;
  sopt.ttl = 25;
  for (size_t q = 0; q < 5; ++q) {
    const auto alive = runner.network().alive_nodes();
    const NodeId initiator = alive[rng.index(alive.size())];
    const auto& query = corpus.queries[q % corpus.queries.size()].vector;
    out.traces.push_back(runner.search(query, initiator, sopt, rng));
  }
  std::ostringstream snap;
  p2p::save_network_snapshot(runner.network(), snap);
  out.snapshot = snap.str();
  if (runner.churn() != nullptr) {
    out.departures = runner.churn()->departures();
    out.arrivals = runner.churn()->arrivals();
  }
  return out;
}

TEST(GoldenTrace, IdenticalFaultSeedsAreByteIdentical) {
  const auto corpus = test::clustered_corpus(kNodes, kTopics);
  const ScenarioParams sp = base_params(42, 0.1, /*churn=*/true);
  const RunArtifacts a = run_scenario(corpus, sp);
  const RunArtifacts b = run_scenario(corpus, sp);
  EXPECT_EQ(a.snapshot, b.snapshot);
  EXPECT_EQ(a.departures, b.departures);
  EXPECT_EQ(a.arrivals, b.arrivals);
  ASSERT_EQ(a.traces.size(), b.traces.size());
  for (size_t i = 0; i < a.traces.size(); ++i) {
    EXPECT_TRUE(a.traces[i] == b.traces[i]) << "trace " << i;
  }
}

TEST(GoldenTrace, SerialAndParallelRoundsAgreeUnderFaults) {
  const auto corpus = test::clustered_corpus(kNodes, kTopics);
  ScenarioParams serial = base_params(7, 0.15, /*churn=*/false);
  serial.params.parallel_rounds = false;
  ScenarioParams parallel = base_params(7, 0.15, /*churn=*/false);
  parallel.params.parallel_rounds = true;
  const RunArtifacts a = run_scenario(corpus, serial);
  const RunArtifacts b = run_scenario(corpus, parallel);
  EXPECT_EQ(a.snapshot, b.snapshot);
  for (size_t i = 0; i < a.traces.size(); ++i) {
    EXPECT_TRUE(a.traces[i] == b.traces[i]) << "trace " << i;
  }
}

TEST(GoldenTrace, CacheOnSearchesDoNotPerturbCacheOffTraces) {
  // Golden-trace compatibility of the cache layer: queries that run with
  // use_result_cache off must be byte-identical whether or not other
  // queries on the same deployment populated the result caches first.
  // The cache sits strictly on the read side of the query plane — no
  // topology, replica, or index state may leak out of it.
  const auto corpus = test::clustered_corpus(kNodes, kTopics);
  const ScenarioParams sp = base_params(42, 0.1, /*churn=*/true);
  const RunArtifacts reference = run_scenario(corpus, sp);

  ScenarioRunner runner(corpus, sp);
  runner.run();
  SearchOptions cached;
  cached.ttl = 25;
  cached.use_result_cache = true;
  cached.strict_result_cache = true;
  util::Rng cache_rng(util::derive_seed(sp.seed, 90));
  for (size_t q = 0; q < 6; ++q) {
    const auto alive = runner.network().alive_nodes();
    ASSERT_FALSE(alive.empty());
    const auto& query = corpus.queries[q % corpus.queries.size()].vector;
    runner.search(query, alive[cache_rng.index(alive.size())], cached, cache_rng);
  }
  const auto& cstats = runner.result_cache().stats();
  EXPECT_GT(cstats.stores + cstats.hits, 0u);  // the burst did populate

  // Replay run_scenario's exact cache-off search sequence on the warmed
  // deployment; traces and the final snapshot must match the reference.
  util::Rng rng(util::derive_seed(sp.seed, 80));
  SearchOptions sopt;
  sopt.ttl = 25;
  ASSERT_EQ(reference.traces.size(), 5u);
  for (size_t q = 0; q < 5; ++q) {
    const auto alive = runner.network().alive_nodes();
    const NodeId initiator = alive[rng.index(alive.size())];
    const auto& query = corpus.queries[q % corpus.queries.size()].vector;
    const auto trace = runner.search(query, initiator, sopt, rng);
    EXPECT_TRUE(trace == reference.traces[q]) << "trace " << q;
    EXPECT_EQ(trace.cache_hits, 0u);
  }
  std::ostringstream snap;
  p2p::save_network_snapshot(runner.network(), snap);
  EXPECT_EQ(snap.str(), reference.snapshot);
}

TEST(GoldenTrace, ZeroRatePlanMatchesFaultFreeAdaptation) {
  // With all fault rates at 0, the injector draws no randomness, so the
  // adapted topology must be byte-identical to GesSystem's fault-free
  // build on the same seeds (same bootstrap/adaptation seed derivation).
  const auto corpus = test::clustered_corpus(kNodes, kTopics);

  ScenarioParams sp = base_params(9, 0.0, /*churn=*/false);
  ScenarioRunner runner(corpus, sp);
  runner.run();

  GesBuildConfig cfg;
  cfg.params = sp.params;
  cfg.net = sp.net;
  cfg.bootstrap_avg_degree = sp.bootstrap_avg_degree;
  cfg.adaptation_rounds = sp.rounds;
  cfg.seed = sp.seed;
  GesSystem system(corpus, cfg);
  system.build();

  std::ostringstream with_injector;
  std::ostringstream without_injector;
  p2p::save_network_snapshot(runner.network(), with_injector);
  p2p::save_network_snapshot(system.network(), without_injector);
  EXPECT_EQ(with_injector.str(), without_injector.str());
  EXPECT_EQ(runner.faults().counters().messages_dropped.load(), 0u);
}

}  // namespace
}  // namespace ges::core
