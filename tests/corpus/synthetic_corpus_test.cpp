#include "corpus/synthetic_corpus.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "corpus/corpus_stats.hpp"
#include "util/check.hpp"

namespace ges::corpus {
namespace {

SyntheticCorpusParams tiny_params(uint64_t seed = 1) {
  auto p = SyntheticCorpusParams::for_scale(util::Scale::kTiny);
  p.seed = seed;
  return p;
}

TEST(SyntheticCorpus, DeterministicInSeed) {
  const auto a = generate_synthetic_corpus(tiny_params(5));
  const auto b = generate_synthetic_corpus(tiny_params(5));
  ASSERT_EQ(a.num_docs(), b.num_docs());
  for (size_t i = 0; i < a.num_docs(); ++i) {
    EXPECT_EQ(a.docs[i].counts, b.docs[i].counts);
    EXPECT_EQ(a.docs[i].topic, b.docs[i].topic);
  }
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t q = 0; q < a.queries.size(); ++q) {
    EXPECT_EQ(a.queries[q].vector, b.queries[q].vector);
    EXPECT_EQ(a.queries[q].relevant, b.queries[q].relevant);
  }
}

TEST(SyntheticCorpus, DifferentSeedsDiffer) {
  const auto a = generate_synthetic_corpus(tiny_params(1));
  const auto b = generate_synthetic_corpus(tiny_params(2));
  bool any_diff = a.num_docs() != b.num_docs();
  for (size_t i = 0; !any_diff && i < a.num_docs(); ++i) {
    any_diff = !(a.docs[i].counts == b.docs[i].counts);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticCorpus, StructureIsConsistent) {
  const auto c = generate_synthetic_corpus(tiny_params());
  EXPECT_EQ(c.num_nodes(), tiny_params().nodes);
  size_t total = 0;
  for (size_t n = 0; n < c.num_nodes(); ++n) {
    EXPECT_GE(c.node_docs[n].size(), 1u);  // every author has >= 1 document
    for (const ir::DocId d : c.node_docs[n]) {
      EXPECT_EQ(c.docs[d].node, n);
      ++total;
    }
  }
  EXPECT_EQ(total, c.num_docs());
  for (size_t d = 0; d < c.num_docs(); ++d) {
    EXPECT_EQ(c.docs[d].id, d);
  }
}

TEST(SyntheticCorpus, DocumentVectorsNormalizedAndDampened) {
  const auto c = generate_synthetic_corpus(tiny_params());
  for (const auto& doc : c.docs) {
    EXPECT_FALSE(doc.counts.empty());
    EXPECT_NEAR(doc.vector.norm(), 1.0, 1e-5);
    EXPECT_EQ(doc.counts.size(), doc.vector.size());
    for (const auto& e : doc.counts.entries()) {
      EXPECT_GE(e.weight, 1.0f);  // raw term frequencies
    }
  }
}

TEST(SyntheticCorpus, QueriesHaveExpectedShape) {
  const auto p = tiny_params();
  const auto c = generate_synthetic_corpus(p);
  EXPECT_EQ(c.queries.size(), p.queries);
  std::unordered_set<TopicId> topics;
  for (const auto& q : c.queries) {
    EXPECT_GE(q.vector.size(), p.query_terms_min);
    EXPECT_LE(q.vector.size(), p.query_terms_max);
    EXPECT_NEAR(q.vector.norm(), 1.0, 1e-5);
    EXPECT_TRUE(topics.insert(q.topic).second) << "duplicate query topic";
  }
}

TEST(SyntheticCorpus, JudgmentsMatchGenerativeTopics) {
  const auto c = generate_synthetic_corpus(tiny_params());
  for (const auto& q : c.queries) {
    EXPECT_FALSE(q.relevant.empty());
    EXPECT_TRUE(std::is_sorted(q.relevant.begin(), q.relevant.end()));
    std::unordered_set<ir::DocId> relevant(q.relevant.begin(), q.relevant.end());
    for (const auto& doc : c.docs) {
      EXPECT_EQ(relevant.count(doc.id) > 0, doc.topic == q.topic);
    }
  }
}

TEST(SyntheticCorpus, AuthorsAreNotSingleTopic) {
  // Paper §5.3: documents on a node are not restricted to one topic.
  const auto c = generate_synthetic_corpus(tiny_params());
  size_t multi_topic_nodes = 0;
  size_t nodes_with_several_docs = 0;
  for (const auto& docs : c.node_docs) {
    if (docs.size() < 4) continue;
    ++nodes_with_several_docs;
    std::unordered_set<TopicId> topics;
    for (const ir::DocId d : docs) topics.insert(c.docs[d].topic);
    if (topics.size() >= 2) ++multi_topic_nodes;
  }
  if (nodes_with_several_docs > 0) {
    EXPECT_GT(multi_topic_nodes, 0u);
  }
}

TEST(SyntheticCorpus, VocabularyIsInterned) {
  const auto p = tiny_params();
  const auto c = generate_synthetic_corpus(p);
  EXPECT_EQ(c.dict.size(), p.vocabulary);
  EXPECT_EQ(c.dict.term(0), "term000000");
}

TEST(SyntheticCorpus, InvalidParamsRejected) {
  auto p = tiny_params();
  p.queries = p.topics + 1;
  EXPECT_THROW(generate_synthetic_corpus(p), util::CheckFailure);

  p = tiny_params();
  p.topic_core_size = p.vocabulary + 1;
  EXPECT_THROW(generate_synthetic_corpus(p), util::CheckFailure);

  p = tiny_params();
  p.query_term_pool = p.topic_core_size + 1;
  EXPECT_THROW(generate_synthetic_corpus(p), util::CheckFailure);
}

TEST(SyntheticCorpus, SmallScaleStatisticsInBand) {
  auto p = SyntheticCorpusParams::for_scale(util::Scale::kSmall);
  p.seed = 3;
  const auto c = generate_synthetic_corpus(p);
  const auto s = compute_stats(c);
  EXPECT_EQ(s.nodes, p.nodes);
  EXPECT_GT(s.mean_docs_per_node, 5.0);
  EXPECT_LT(s.mean_docs_per_node, 30.0);
  EXPECT_GT(s.mean_unique_terms_per_doc, 50.0);
  EXPECT_LT(s.mean_unique_terms_per_doc, 250.0);
  EXPECT_GE(s.mean_query_terms, 3.0);
  EXPECT_LE(s.mean_query_terms, 4.0);
  // Many nodes serve several queries (paper: > 50% at full scale; the
  // small preset has fewer queries, so use a weaker band).
  EXPECT_GT(s.frac_nodes_multi_query, 0.10);
}

TEST(SyntheticCorpus, SomeRelevantDocsShareNoQueryTerms) {
  // This is what caps recall below 100% with short queries (paper §6.1(4)).
  size_t relevant_total = 0;
  size_t no_overlap = 0;
  for (const uint64_t seed : {4, 5, 6}) {
    auto p = SyntheticCorpusParams::for_scale(util::Scale::kSmall);
    p.seed = seed;
    const auto c = generate_synthetic_corpus(p);
    for (const auto& q : c.queries) {
      for (const ir::DocId d : q.relevant) {
        ++relevant_total;
        if (c.docs[d].vector.overlap(q.vector) == 0) ++no_overlap;
      }
    }
  }
  ASSERT_GT(relevant_total, 0u);
  const double frac = static_cast<double>(no_overlap) / relevant_total;
  EXPECT_GT(frac, 0.0);   // a few unreachable docs...
  EXPECT_LT(frac, 0.25);  // ...but only a small fraction
}

}  // namespace
}  // namespace ges::corpus
