#include "corpus/df_filter.hpp"

#include <gtest/gtest.h>

#include "corpus/synthetic_corpus.hpp"
#include "util/check.hpp"

namespace ges::corpus {
namespace {

Corpus two_node_corpus() {
  Corpus c;
  c.node_docs.resize(2);
  auto add_doc = [&](NodeIndex node, std::vector<ir::TermWeight> counts) {
    Document d;
    d.id = static_cast<ir::DocId>(c.docs.size());
    d.node = node;
    d.counts = ir::SparseVector::from_pairs(std::move(counts));
    d.vector = d.counts;
    d.vector.dampen();
    d.vector.normalize();
    c.node_docs[node].push_back(d.id);
    c.docs.push_back(std::move(d));
  };
  // Term 0 appears in every document (df = 4/4); term 1 in half; the
  // rest are rare.
  add_doc(0, {{0, 3.0f}, {1, 1.0f}, {2, 1.0f}});
  add_doc(0, {{0, 1.0f}, {3, 2.0f}});
  add_doc(1, {{0, 2.0f}, {1, 1.0f}, {4, 1.0f}});
  add_doc(1, {{0, 1.0f}, {5, 1.0f}});

  Query q;
  q.id = 0;
  q.vector = ir::SparseVector::from_pairs({{0, 1.0f}, {2, 1.0f}});
  q.vector.normalize();
  q.relevant = {0};
  c.queries.push_back(std::move(q));
  return c;
}

TEST(DfFilter, RemovesTermsAboveThreshold) {
  auto c = two_node_corpus();
  const auto removed = remove_frequent_terms(c, 0.75, 0);  // df > 3 of 4
  EXPECT_EQ(removed, (std::unordered_set<ir::TermId>{0}));
  for (const auto& doc : c.docs) {
    EXPECT_EQ(doc.counts.weight(0), 0.0f);
    EXPECT_NEAR(doc.vector.norm(), 1.0, 1e-5);
  }
}

TEST(DfFilter, KeepsTermsAtOrBelowThreshold) {
  auto c = two_node_corpus();
  const auto removed = remove_frequent_terms(c, 0.40, 0);  // term 1: df=2/4=0.5 > 0.4
  EXPECT_TRUE(removed.count(0));
  EXPECT_TRUE(removed.count(1));
  EXPECT_FALSE(removed.count(2));
  EXPECT_EQ(removed.size(), 2u);
}

TEST(DfFilter, FiltersQueriesAndRenormalizes) {
  auto c = two_node_corpus();
  remove_frequent_terms(c, 0.75, 0);
  // Query loses term 0, keeps term 2, stays normalized.
  EXPECT_EQ(c.queries[0].vector.weight(0), 0.0f);
  EXPECT_GT(c.queries[0].vector.weight(2), 0.0f);
  EXPECT_NEAR(c.queries[0].vector.norm(), 1.0, 1e-5);
}

TEST(DfFilter, KeepsOtherwiseEmptyQueryUnfiltered) {
  auto c = two_node_corpus();
  c.queries[0].vector = ir::SparseVector::from_pairs({{0, 1.0f}});
  remove_frequent_terms(c, 0.75, 0);
  EXPECT_GT(c.queries[0].vector.weight(0), 0.0f);  // left untouched
}

TEST(DfFilter, NeverEmptiesADocument) {
  Corpus c;
  c.node_docs.resize(1);
  Document d;
  d.id = 0;
  d.node = 0;
  d.counts = ir::SparseVector::from_pairs({{0, 1.0f}});
  d.vector = d.counts;
  d.vector.normalize();
  c.node_docs[0].push_back(0);
  c.docs.push_back(std::move(d));
  remove_frequent_terms(c, 0.5, 0);  // term 0 has df 1.0 > 0.5
  EXPECT_EQ(c.docs[0].counts.size(), 1u);  // fallback keeps the lowest-df term
}

TEST(DfFilter, NoopWhenNothingFrequent) {
  auto c = two_node_corpus();
  const auto before = c.docs[0].counts;
  const auto removed = remove_frequent_terms(c, 1.0);
  EXPECT_TRUE(removed.empty());
  EXPECT_EQ(c.docs[0].counts, before);
}

TEST(DfFilter, InvalidFractionRejected) {
  auto c = two_node_corpus();
  EXPECT_THROW(remove_frequent_terms(c, 0.0, 0), util::CheckFailure);
  EXPECT_THROW(remove_frequent_terms(c, 1.5, 0), util::CheckFailure);
}

TEST(DfFilter, AbsoluteFloorProtectsTinyCorpora) {
  auto c = two_node_corpus();
  // With the default floor (10 documents) nothing is frequent enough.
  EXPECT_TRUE(remove_frequent_terms(c, 0.75).empty());
}

TEST(DfFilter, SyntheticGeneratorAppliesFilter) {
  auto params = SyntheticCorpusParams::for_scale(util::Scale::kSmall);
  params.seed = 9;
  params.max_df_fraction = 1.0;  // off
  const auto unfiltered = generate_synthetic_corpus(params);
  params.max_df_fraction = 0.08;
  const auto filtered = generate_synthetic_corpus(params);
  // The filter strictly reduces total vocabulary usage.
  size_t terms_unfiltered = 0;
  size_t terms_filtered = 0;
  for (const auto& d : unfiltered.docs) terms_unfiltered += d.counts.size();
  for (const auto& d : filtered.docs) terms_filtered += d.counts.size();
  EXPECT_LT(terms_filtered, terms_unfiltered);
}

}  // namespace
}  // namespace ges::corpus
