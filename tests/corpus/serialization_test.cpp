#include "corpus/serialization.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "corpus/corpus_stats.hpp"
#include "corpus/synthetic_corpus.hpp"
#include "util/check.hpp"

namespace ges::corpus {
namespace {

Corpus sample_corpus() {
  auto params = SyntheticCorpusParams::for_scale(util::Scale::kTiny);
  params.seed = 17;
  return generate_synthetic_corpus(params);
}

TEST(Serialization, RoundTripPreservesEverything) {
  const auto original = sample_corpus();
  std::stringstream buffer;
  save_corpus(original, buffer);
  const auto loaded = load_corpus(buffer);

  ASSERT_EQ(loaded.num_docs(), original.num_docs());
  ASSERT_EQ(loaded.num_nodes(), original.num_nodes());
  ASSERT_EQ(loaded.dict.size(), original.dict.size());
  for (size_t t = 0; t < original.dict.size(); ++t) {
    EXPECT_EQ(loaded.dict.term(static_cast<ir::TermId>(t)),
              original.dict.term(static_cast<ir::TermId>(t)));
  }
  for (size_t d = 0; d < original.num_docs(); ++d) {
    EXPECT_EQ(loaded.docs[d].counts, original.docs[d].counts);
    EXPECT_EQ(loaded.docs[d].vector, original.docs[d].vector);
    EXPECT_EQ(loaded.docs[d].node, original.docs[d].node);
    EXPECT_EQ(loaded.docs[d].topic, original.docs[d].topic);
  }
  EXPECT_EQ(loaded.node_docs, original.node_docs);
  ASSERT_EQ(loaded.queries.size(), original.queries.size());
  for (size_t q = 0; q < original.queries.size(); ++q) {
    EXPECT_EQ(loaded.queries[q].id, original.queries[q].id);
    EXPECT_EQ(loaded.queries[q].vector, original.queries[q].vector);
    EXPECT_EQ(loaded.queries[q].relevant, original.queries[q].relevant);
  }
}

TEST(Serialization, RoundTripPreservesStats) {
  const auto original = sample_corpus();
  std::stringstream buffer;
  save_corpus(original, buffer);
  const auto loaded = load_corpus(buffer);
  const auto a = compute_stats(original);
  const auto b = compute_stats(loaded);
  EXPECT_EQ(a.docs, b.docs);
  EXPECT_DOUBLE_EQ(a.mean_unique_terms_per_doc, b.mean_unique_terms_per_doc);
  EXPECT_DOUBLE_EQ(a.frac_nodes_multi_query, b.frac_nodes_multi_query);
}

TEST(Serialization, RejectsGarbage) {
  std::stringstream buffer("this is not a corpus");
  EXPECT_THROW(load_corpus(buffer), util::CheckFailure);
}

TEST(Serialization, RejectsTruncatedStream) {
  const auto original = sample_corpus();
  std::stringstream buffer;
  save_corpus(original, buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_corpus(truncated), util::CheckFailure);
}

TEST(Serialization, RejectsWrongVersion) {
  const auto original = sample_corpus();
  std::stringstream buffer;
  save_corpus(original, buffer);
  std::string bytes = buffer.str();
  bytes[4] = 99;  // clobber the version field
  std::stringstream bad(bytes);
  EXPECT_THROW(load_corpus(bad), util::CheckFailure);
}

TEST(Serialization, FileRoundTrip) {
  const auto original = sample_corpus();
  const std::string path = ::testing::TempDir() + "/ges_corpus_test.bin";
  save_corpus_file(original, path);
  const auto loaded = load_corpus_file(path);
  EXPECT_EQ(loaded.num_docs(), original.num_docs());
  std::remove(path.c_str());
}

TEST(Serialization, MissingFileThrows) {
  EXPECT_THROW(load_corpus_file("/nonexistent/ges.bin"), util::CheckFailure);
}

TEST(Serialization, MissingFileMessageNamesPath) {
  try {
    load_corpus_file("/nonexistent/ges.bin");
    FAIL() << "expected CheckFailure";
  } catch (const util::CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/ges.bin"), std::string::npos)
        << e.what();
  }
}

TEST(Serialization, TruncatedFileMessageNamesPath) {
  const auto original = sample_corpus();
  const std::string path = ::testing::TempDir() + "/ges_truncated_test.bin";
  {
    std::stringstream buffer;
    save_corpus(original, buffer);
    const std::string full = buffer.str();
    std::ofstream out(path, std::ios::binary);
    out.write(full.data(), static_cast<std::streamsize>(full.size() / 2));
  }
  try {
    load_corpus_file(path);
    FAIL() << "expected CheckFailure";
  } catch (const util::CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(Serialization, SaveToUnopenablePathNamesPath) {
  const auto original = sample_corpus();
  try {
    save_corpus_file(original, "/nonexistent/dir/ges.bin");
    FAIL() << "expected CheckFailure";
  } catch (const util::CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/dir/ges.bin"),
              std::string::npos)
        << e.what();
  }
}

TEST(Serialization, SaveLoadSaveIsByteStable) {
  // Guards the buffered block-wise rewrite: a reloaded corpus must
  // serialize to exactly the same bytes.
  const auto original = sample_corpus();
  std::stringstream first;
  save_corpus(original, first);
  std::stringstream copy(first.str());
  const auto loaded = load_corpus(copy);
  std::stringstream second;
  save_corpus(loaded, second);
  EXPECT_EQ(first.str(), second.str());
}

}  // namespace
}  // namespace ges::corpus
