#include "corpus/corpus_stats.hpp"

#include <gtest/gtest.h>

namespace ges::corpus {
namespace {

/// Hand-built two-node corpus with one query.
Corpus tiny_corpus() {
  Corpus c;
  c.dict.intern("alpha");
  c.dict.intern("beta");
  c.node_docs.resize(2);

  auto add_doc = [&](NodeIndex node, std::vector<ir::TermWeight> counts) {
    Document d;
    d.id = static_cast<ir::DocId>(c.docs.size());
    d.node = node;
    d.counts = ir::SparseVector::from_pairs(std::move(counts));
    d.vector = d.counts;
    d.vector.dampen();
    d.vector.normalize();
    c.node_docs[node].push_back(d.id);
    c.docs.push_back(std::move(d));
  };
  add_doc(0, {{0, 2.0f}});
  add_doc(0, {{0, 1.0f}, {1, 1.0f}});
  add_doc(0, {{1, 4.0f}});
  add_doc(1, {{1, 1.0f}});

  Query q;
  q.id = 0;
  q.vector = ir::SparseVector::from_pairs({{0, 1.0f}});
  q.relevant = {0, 1};
  c.queries.push_back(std::move(q));

  Query q2;
  q2.id = 1;
  q2.vector = ir::SparseVector::from_pairs({{1, 1.0f}});
  q2.relevant = {2, 3};
  c.queries.push_back(std::move(q2));
  return c;
}

TEST(CorpusStats, CountsBasics) {
  const auto s = compute_stats(tiny_corpus());
  EXPECT_EQ(s.nodes, 2u);
  EXPECT_EQ(s.docs, 4u);
  EXPECT_EQ(s.vocabulary, 2u);
  EXPECT_EQ(s.queries, 2u);
  EXPECT_DOUBLE_EQ(s.mean_docs_per_node, 2.0);
}

TEST(CorpusStats, TermAndQueryAverages) {
  const auto s = compute_stats(tiny_corpus());
  // Unique terms per doc: 1, 2, 1, 1 -> mean 1.25.
  EXPECT_DOUBLE_EQ(s.mean_unique_terms_per_doc, 1.25);
  EXPECT_DOUBLE_EQ(s.mean_query_terms, 1.0);
  EXPECT_DOUBLE_EQ(s.mean_relevant_per_query, 2.0);
}

TEST(CorpusStats, MultiQueryNodes) {
  const auto s = compute_stats(tiny_corpus());
  // Node 0 is relevant to both queries, node 1 only to query 1.
  EXPECT_DOUBLE_EQ(s.frac_nodes_multi_query, 0.5);
  EXPECT_EQ(s.max_queries_per_node, 2u);
}

TEST(CorpusStats, FormatMentionsKeyFields) {
  const auto text = format_stats(compute_stats(tiny_corpus()));
  EXPECT_NE(text.find("nodes: 2"), std::string::npos);
  EXPECT_NE(text.find("documents: 4"), std::string::npos);
  EXPECT_NE(text.find("docs/node mean: 2"), std::string::npos);
}

TEST(CorpusStats, EmptyCorpus) {
  const Corpus empty;
  const auto s = compute_stats(empty);
  EXPECT_EQ(s.nodes, 0u);
  EXPECT_EQ(s.docs, 0u);
  EXPECT_DOUBLE_EQ(s.frac_nodes_multi_query, 0.0);
}

}  // namespace
}  // namespace ges::corpus
