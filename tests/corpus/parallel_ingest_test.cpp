// Serial-vs-parallel ingest equivalence: the parallel pipelines must
// produce a Corpus that is BYTE-IDENTICAL (via serialization) to the
// strictly serial reference path, at every thread count, for both the
// synthetic generator and the TREC loader.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "corpus/serialization.hpp"
#include "corpus/synthetic_corpus.hpp"
#include "corpus/trec_loader.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ges::corpus {
namespace {

std::string corpus_bytes(const Corpus& corpus) {
  std::stringstream buffer;
  save_corpus(corpus, buffer);
  return buffer.str();
}

void expect_identical(const Corpus& a, const Corpus& b) {
  ASSERT_EQ(a.num_docs(), b.num_docs());
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.dict.size(), b.dict.size());
  for (size_t t = 0; t < a.dict.size(); ++t) {
    ASSERT_EQ(a.dict.term(static_cast<ir::TermId>(t)),
              b.dict.term(static_cast<ir::TermId>(t)))
        << "term id " << t << " diverged";
  }
  for (size_t d = 0; d < a.num_docs(); ++d) {
    ASSERT_TRUE(a.docs[d].counts == b.docs[d].counts) << "doc " << d;
    ASSERT_TRUE(a.docs[d].vector == b.docs[d].vector) << "doc " << d;
  }
  ASSERT_EQ(corpus_bytes(a), corpus_bytes(b));
}

TEST(ParallelIngest, SyntheticMatchesSerialAtEveryThreadCount) {
  auto params = SyntheticCorpusParams::for_scale(util::Scale::kTiny);
  params.seed = 20260806;
  params.style_mix = 0.1;  // exercise the style branch too
  const auto serial = generate_synthetic_corpus(params, nullptr);
  ASSERT_GT(serial.num_docs(), 0u);
  for (const size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    const auto parallel = generate_synthetic_corpus(params, &pool);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical(serial, parallel);
  }
}

TEST(ParallelIngest, SyntheticDefaultOverloadMatchesSerial) {
  auto params = SyntheticCorpusParams::for_scale(util::Scale::kTiny);
  params.seed = 7;
  const auto serial = generate_synthetic_corpus(params, nullptr);
  const auto pooled = generate_synthetic_corpus(params);  // global pool
  expect_identical(serial, pooled);
}

/// Deterministic in-memory TREC fixture: `authors` distinct bylines,
/// `docs` documents of random words (some shared across docs so stemming
/// and df-filtering have something to chew on).
struct TrecFixture {
  std::vector<TrecRawDoc> docs;
  std::vector<TrecRawTopic> topics;
  std::vector<TrecJudgment> qrels;
};

TrecFixture make_trec_fixture(size_t doc_count, size_t authors, uint64_t seed) {
  static const char* kWords[] = {
      "economy",    "markets",   "rallied",  "accelerator", "particle",
      "scientists", "restarted", "quarterly", "growth",      "policy",
      "election",   "senate",    "drought",   "harvest",     "pipeline",
      "satellite",  "orbit",     "launch",    "computing",   "networks"};
  util::Rng rng(seed);
  TrecFixture fx;
  for (size_t i = 0; i < doc_count; ++i) {
    TrecRawDoc doc;
    doc.docno = "AP0-" + std::to_string(i);
    // A few docs drop the byline: the loader must skip them identically.
    if (i % 7 != 3) doc.author = "Author " + std::to_string(rng.index(authors));
    const size_t words = 6 + rng.index(30);
    for (size_t w = 0; w < words; ++w) {
      if (!doc.text.empty()) doc.text += ' ';
      doc.text += kWords[rng.index(std::size(kWords))];
    }
    fx.docs.push_back(std::move(doc));
  }
  for (uint32_t t = 0; t < 3; ++t) {
    fx.topics.push_back({151 + t, std::string(kWords[t]) + " " + kWords[t + 5]});
    for (size_t i = 0; i < doc_count; i += 2 + t) {
      fx.qrels.push_back({151 + t, "AP0-" + std::to_string(i), 1});
    }
  }
  return fx;
}

TEST(ParallelIngest, TrecMatchesSerialAtEveryThreadCount) {
  const auto fx = make_trec_fixture(60, 9, 99);
  const auto serial =
      build_corpus_from_trec(fx.docs, fx.topics, fx.qrels, 0.5, nullptr);
  ASSERT_GT(serial.num_docs(), 0u);
  ASSERT_GT(serial.dict.size(), 0u);
  for (const size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    const auto parallel =
        build_corpus_from_trec(fx.docs, fx.topics, fx.qrels, 0.5, &pool);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical(serial, parallel);
  }
}

TEST(ParallelIngest, TrecDefaultOverloadMatchesSerial) {
  const auto fx = make_trec_fixture(24, 5, 3);
  const auto serial =
      build_corpus_from_trec(fx.docs, fx.topics, fx.qrels, 0.5, nullptr);
  const auto pooled = build_corpus_from_trec(fx.docs, fx.topics, fx.qrels, 0.5);
  expect_identical(serial, pooled);
}

TEST(ParallelIngest, TrecZeroDocuments) {
  util::ThreadPool pool(4);
  const auto corpus = build_corpus_from_trec({}, {}, {}, 0.5, &pool);
  EXPECT_EQ(corpus.num_docs(), 0u);
  EXPECT_EQ(corpus.num_nodes(), 0u);
  EXPECT_TRUE(corpus.dict.empty());
}

TEST(ParallelIngest, TrecFewerDocumentsThanWorkers) {
  const auto fx = make_trec_fixture(2, 2, 5);
  const auto serial =
      build_corpus_from_trec(fx.docs, fx.topics, fx.qrels, 1.0, nullptr);
  util::ThreadPool pool(8);
  const auto parallel =
      build_corpus_from_trec(fx.docs, fx.topics, fx.qrels, 1.0, &pool);
  expect_identical(serial, parallel);
}

TEST(ParallelIngest, TrecQueryTermsInternAfterDocumentTerms) {
  // A topic title containing a word absent from every document must get
  // the highest TermIds, exactly as in a serial build.
  TrecFixture fx = make_trec_fixture(10, 3, 11);
  fx.topics.push_back({200, "zymurgy festival"});
  util::ThreadPool pool(4);
  const auto corpus = build_corpus_from_trec(fx.docs, fx.topics, fx.qrels, 1.0, &pool);
  const auto id = corpus.dict.lookup("zymurgi");  // Porter stem of zymurgy
  ASSERT_NE(id, ir::kInvalidTerm);
  EXPECT_GE(id + 1, corpus.dict.size() - 1);  // among the last interned
}

}  // namespace
}  // namespace ges::corpus
