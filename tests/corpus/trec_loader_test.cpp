#include "corpus/trec_loader.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"

namespace ges::corpus {
namespace {

constexpr const char* kDocs = R"(
<DOC>
<DOCNO> AP890101-0001 </DOCNO>
<BYLINE>By JANE SMITH</BYLINE>
<TEXT>
The economy grew strongly last quarter, officials said.
</TEXT>
</DOC>
<DOC>
<DOCNO> AP890101-0002 </DOCNO>
<TEXT>
No byline on this one; the paper drops such documents.
</TEXT>
</DOC>
<DOC>
<DOCNO> AP890101-0003 </DOCNO>
<BYLINE>By JOHN DOE</BYLINE>
<TEXT>
Scientists restarted the particle accelerator.
</TEXT>
<TEXT>
The restarting went smoothly.
</TEXT>
</DOC>
<DOC>
<DOCNO> AP890101-0004 </DOCNO>
<BYLINE>By JANE SMITH</BYLINE>
<TEXT>
Markets rallied on the economic news.
</TEXT>
</DOC>
)";

constexpr const char* kTopics = R"(
<top>
<num> Number: 151 </num>
<title> Topic: economy growth </title>
</top>
<top>
<num> Number: 152 </num>
<title> particle accelerator restart </title>
</top>
)";

constexpr const char* kQrels = R"(151 0 AP890101-0001 1
151 0 AP890101-0004 1
151 0 AP890101-0002 1
152 0 AP890101-0003 1
152 0 AP890101-0001 0
junk line that should be skipped
)";

TEST(TrecLoader, ParsesDocuments) {
  std::istringstream in(kDocs);
  const auto docs = parse_trec_docs(in);
  ASSERT_EQ(docs.size(), 4u);
  EXPECT_EQ(docs[0].docno, "AP890101-0001");
  EXPECT_EQ(docs[0].author, "By JANE SMITH");
  EXPECT_NE(docs[0].text.find("economy grew"), std::string::npos);
  EXPECT_TRUE(docs[1].author.empty());
  // Multiple TEXT sections concatenate.
  EXPECT_NE(docs[2].text.find("restarted"), std::string::npos);
  EXPECT_NE(docs[2].text.find("restarting"), std::string::npos);
}

TEST(TrecLoader, ParsesTopics) {
  std::istringstream in(kTopics);
  const auto topics = parse_trec_topics(in);
  ASSERT_EQ(topics.size(), 2u);
  EXPECT_EQ(topics[0].number, 151u);
  EXPECT_EQ(topics[0].title, "economy growth");
  EXPECT_EQ(topics[1].number, 152u);
  EXPECT_EQ(topics[1].title, "particle accelerator restart");
}

TEST(TrecLoader, ParsesQrelsSkippingJunk) {
  std::istringstream in(kQrels);
  const auto qrels = parse_trec_qrels(in);
  ASSERT_EQ(qrels.size(), 5u);
  EXPECT_EQ(qrels[0].topic, 151u);
  EXPECT_EQ(qrels[0].docno, "AP890101-0001");
  EXPECT_EQ(qrels[0].relevance, 1);
  EXPECT_EQ(qrels[4].relevance, 0);
}

TEST(TrecLoader, BuildsCorpusGroupedByAuthor) {
  std::istringstream docs_in(kDocs);
  std::istringstream topics_in(kTopics);
  std::istringstream qrels_in(kQrels);
  const auto corpus = build_corpus_from_trec(
      parse_trec_docs(docs_in), parse_trec_topics(topics_in), parse_trec_qrels(qrels_in));

  // Doc 2 is dropped (no byline); Jane Smith has two docs, John Doe one.
  EXPECT_EQ(corpus.num_docs(), 3u);
  EXPECT_EQ(corpus.num_nodes(), 2u);
  EXPECT_EQ(corpus.node_docs[0].size(), 2u);  // Jane (first seen)
  EXPECT_EQ(corpus.node_docs[1].size(), 1u);  // John
}

TEST(TrecLoader, JudgmentsFilteredToSurvivingDocs) {
  std::istringstream docs_in(kDocs);
  std::istringstream topics_in(kTopics);
  std::istringstream qrels_in(kQrels);
  const auto corpus = build_corpus_from_trec(
      parse_trec_docs(docs_in), parse_trec_topics(topics_in), parse_trec_qrels(qrels_in));

  ASSERT_EQ(corpus.queries.size(), 2u);
  // Topic 151 judged {0001, 0004, 0002}; 0002 dropped -> 2 relevant.
  EXPECT_EQ(corpus.queries[0].relevant.size(), 2u);
  // Topic 152: 0003 relevant (relevance 1), 0001 judged non-relevant.
  EXPECT_EQ(corpus.queries[1].relevant.size(), 1u);
}

TEST(TrecLoader, QueryVectorsAreAnalyzed) {
  std::istringstream docs_in(kDocs);
  std::istringstream topics_in(kTopics);
  std::istringstream qrels_in(kQrels);
  const auto corpus = build_corpus_from_trec(
      parse_trec_docs(docs_in), parse_trec_topics(topics_in), parse_trec_qrels(qrels_in));

  // "economy growth" stems to {economi, growth} and matches the first doc.
  const auto& q = corpus.queries[0];
  EXPECT_EQ(q.vector.size(), 2u);
  EXPECT_GT(q.vector.dot(corpus.docs[0].vector), 0.0);
}

TEST(TrecLoader, StemmingUnifiesRestartFamily) {
  std::istringstream docs_in(kDocs);
  std::istringstream topics_in(kTopics);
  std::istringstream qrels_in(kQrels);
  const auto corpus = build_corpus_from_trec(
      parse_trec_docs(docs_in), parse_trec_topics(topics_in), parse_trec_qrels(qrels_in));

  // Doc 0003 contains "restarted" and "restarting"; both stem to
  // "restart", giving the term frequency 2 in the counts vector.
  const auto restart = corpus.dict.lookup("restart");
  ASSERT_NE(restart, ir::kInvalidTerm);
  const auto& doe_doc = corpus.docs[corpus.node_docs[1][0]];
  EXPECT_FLOAT_EQ(doe_doc.counts.weight(restart), 2.0f);
}

TEST(TrecLoader, MissingDocnoThrows) {
  std::istringstream in("<DOC><TEXT>orphan</TEXT></DOC>");
  EXPECT_THROW(parse_trec_docs(in), util::CheckFailure);
}

TEST(TrecLoader, LoadMissingFileThrows) {
  EXPECT_THROW(load_trec_corpus("/nonexistent/docs", "/nonexistent/topics",
                                "/nonexistent/qrels"),
               util::CheckFailure);
}

}  // namespace
}  // namespace ges::corpus
