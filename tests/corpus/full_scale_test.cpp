// Full-scale corpus validation against the paper's §5.3 numbers
// (1,880 nodes / ~80k documents; ~5s to generate).

#include <gtest/gtest.h>

#include "corpus/corpus_stats.hpp"
#include "corpus/synthetic_corpus.hpp"

namespace ges::corpus {
namespace {

TEST(FullScaleCorpus, StatisticsMatchPaper) {
  auto params = SyntheticCorpusParams::for_scale(util::Scale::kFull);
  params.seed = 42;
  const auto corpus = generate_synthetic_corpus(params);
  const auto s = compute_stats(corpus);

  EXPECT_EQ(s.nodes, 1880u);
  // Paper: 80,008 documents; lognormal sampling puts us within a few %.
  EXPECT_NEAR(static_cast<double>(s.docs), 80'008.0, 8'000.0);
  // Paper: mean 42.5 docs/node, 1st percentile 1, 99th percentile 417.
  EXPECT_NEAR(s.mean_docs_per_node, 42.5, 5.0);
  EXPECT_LE(s.p1_docs_per_node, 2.0);
  EXPECT_NEAR(s.p99_docs_per_node, 417.0, 120.0);
  // Paper: ~179 unique terms per document (after stop/df filtering).
  EXPECT_NEAR(s.mean_unique_terms_per_doc, 179.0, 50.0);
  // Paper: 50 queries, ~3.5 terms each.
  EXPECT_EQ(s.queries, 50u);
  EXPECT_NEAR(s.mean_query_terms, 3.5, 0.5);
  // Paper: > 50% of nodes hold relevant docs for >= 2 queries (max 12).
  EXPECT_GT(s.frac_nodes_multi_query, 0.5);
  EXPECT_GE(s.max_queries_per_node, 5u);
}

}  // namespace
}  // namespace ges::corpus
