// Robustness of the TREC SGML parsers against malformed input: the
// loaders must either parse leniently or fail with CheckFailure — never
// crash or hang.

#include <gtest/gtest.h>

#include <sstream>

#include "corpus/trec_loader.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ges::corpus {
namespace {

std::vector<TrecRawDoc> parse_docs(const std::string& text) {
  std::istringstream in(text);
  return parse_trec_docs(in);
}

TEST(TrecRobustness, EmptyInput) {
  EXPECT_TRUE(parse_docs("").empty());
  std::istringstream topics("");
  EXPECT_TRUE(parse_trec_topics(topics).empty());
  std::istringstream qrels("");
  EXPECT_TRUE(parse_trec_qrels(qrels).empty());
}

TEST(TrecRobustness, UnclosedDocIsIgnored) {
  EXPECT_TRUE(parse_docs("<DOC><DOCNO>X</DOCNO><TEXT>hello").empty());
}

TEST(TrecRobustness, UnclosedInnerTagIgnored) {
  const auto docs = parse_docs("<DOC><DOCNO>X</DOCNO><TEXT>no close</DOC>");
  ASSERT_EQ(docs.size(), 1u);
  EXPECT_TRUE(docs[0].text.empty());
}

TEST(TrecRobustness, InterleavedGarbageBetweenDocs) {
  const auto docs = parse_docs(
      "garbage <DOC><DOCNO>A</DOCNO><TEXT>one</TEXT></DOC> 0x00<binary>"
      "<DOC><DOCNO>B</DOCNO><TEXT>two</TEXT></DOC> trailing");
  ASSERT_EQ(docs.size(), 2u);
  EXPECT_EQ(docs[0].docno, "A");
  EXPECT_EQ(docs[1].docno, "B");
}

TEST(TrecRobustness, TopicsWithMissingFieldsSkipped) {
  std::istringstream in(
      "<top><num> Number: 7 </num></top>"                     // no title
      "<top><title> only title </title></top>"                // no num
      "<top><num> Number: 9 </num><title> ok </title></top>");
  const auto topics = parse_trec_topics(in);
  ASSERT_EQ(topics.size(), 1u);
  EXPECT_EQ(topics[0].number, 9u);
}

TEST(TrecRobustness, QrelsWithMixedJunk) {
  std::istringstream in(
      "151 0 DOC-1 1\n"
      "\n"
      "not a line\n"
      "152 0\n"           // too short
      "153 0 DOC-2 0\n");
  const auto qrels = parse_trec_qrels(in);
  ASSERT_EQ(qrels.size(), 2u);
}

TEST(TrecRobustness, RandomBytesNeverCrash) {
  util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::string noise;
    for (int i = 0; i < 2000; ++i) {
      noise.push_back(static_cast<char>(rng.uniform_int(1, 127)));
    }
    // Sprinkle tag fragments to exercise the scanner.
    noise += "<DOC><DOCNO></TEXT><top><num></DOC>";
    try {
      parse_docs(noise);
      std::istringstream t(noise);
      parse_trec_topics(t);
      std::istringstream q(noise);
      parse_trec_qrels(q);
    } catch (const util::CheckFailure&) {
      // Acceptable: structured rejection.
    }
  }
  SUCCEED();
}

TEST(TrecRobustness, BuildWithNoSurvivingDocsYieldsEmptyCorpus) {
  // Author present but text empty -> doc dropped; corpus still valid.
  const auto docs =
      parse_docs("<DOC><DOCNO>A</DOCNO><BYLINE>By X</BYLINE></DOC>");
  const auto corpus = build_corpus_from_trec(docs, {}, {});
  EXPECT_EQ(corpus.num_docs(), 0u);
  EXPECT_EQ(corpus.num_nodes(), 0u);
}

}  // namespace
}  // namespace ges::corpus
