#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/check.hpp"

namespace ges::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(DeriveSeed, DeterministicAndStreamSeparated) {
  EXPECT_EQ(derive_seed(42, 0), derive_seed(42, 0));
  EXPECT_NE(derive_seed(42, 0), derive_seed(42, 1));
  EXPECT_NE(derive_seed(42, 0), derive_seed(43, 0));
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(1);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowZeroBoundThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), CheckFailure);
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(2);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01HalfOpen) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceProbabilityApproximatelyRespected) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, NormalMoments) {
  Rng rng(6);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, ExponentialMean) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(10);
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng(11);
  std::vector<double> empty;
  EXPECT_THROW(rng.weighted_index(empty), CheckFailure);
  std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zeros), CheckFailure);
  std::vector<double> negative{1.0, -0.5};
  EXPECT_THROW(rng.weighted_index(negative), CheckFailure);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(12);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto shuffled = v;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(13);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // probability of identity ~ 1/100!
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(14);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const size_t s : sample) EXPECT_LT(s, 50u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(15);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementTooManyThrows) {
  Rng rng(16);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), CheckFailure);
}

TEST(ZipfSampler, PmfSumsToOneAndDecreases) {
  const ZipfSampler zipf(100, 1.2);
  double sum = 0.0;
  double prev = 1.0;
  for (size_t r = 1; r <= 100; ++r) {
    const double p = zipf.pmf(r);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSampler, SamplesMatchPmf) {
  const ZipfSampler zipf(10, 1.0);
  Rng rng(17);
  std::vector<int> counts(11, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (size_t r = 1; r <= 10; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, zipf.pmf(r), 0.01);
  }
}

TEST(ZipfSampler, AlphaZeroIsUniform) {
  const ZipfSampler zipf(4, 0.0);
  for (size_t r = 1; r <= 4; ++r) EXPECT_NEAR(zipf.pmf(r), 0.25, 1e-9);
}

TEST(ZipfSampler, RankBoundsChecked) {
  const ZipfSampler zipf(5, 1.0);
  EXPECT_THROW(zipf.pmf(0), CheckFailure);
  EXPECT_THROW(zipf.pmf(6), CheckFailure);
}

}  // namespace
}  // namespace ges::util
