#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace ges::util {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("GES_TEST_VAR");
    unsetenv("GES_SCALE");
  }
};

TEST_F(EnvTest, StringUnsetIsNullopt) {
  unsetenv("GES_TEST_VAR");
  EXPECT_FALSE(env_string("GES_TEST_VAR").has_value());
}

TEST_F(EnvTest, StringEmptyIsNullopt) {
  setenv("GES_TEST_VAR", "", 1);
  EXPECT_FALSE(env_string("GES_TEST_VAR").has_value());
}

TEST_F(EnvTest, StringSet) {
  setenv("GES_TEST_VAR", "hello", 1);
  EXPECT_EQ(env_string("GES_TEST_VAR").value(), "hello");
}

TEST_F(EnvTest, IntParsesAndFallsBack) {
  setenv("GES_TEST_VAR", "123", 1);
  EXPECT_EQ(env_int("GES_TEST_VAR", 7), 123);
  setenv("GES_TEST_VAR", "notanumber", 1);
  EXPECT_EQ(env_int("GES_TEST_VAR", 7), 7);
  setenv("GES_TEST_VAR", "12x", 1);
  EXPECT_EQ(env_int("GES_TEST_VAR", 7), 7);
  unsetenv("GES_TEST_VAR");
  EXPECT_EQ(env_int("GES_TEST_VAR", 7), 7);
}

TEST_F(EnvTest, DoubleParsesAndFallsBack) {
  setenv("GES_TEST_VAR", "1.5", 1);
  EXPECT_DOUBLE_EQ(env_double("GES_TEST_VAR", 0.1), 1.5);
  setenv("GES_TEST_VAR", "oops", 1);
  EXPECT_DOUBLE_EQ(env_double("GES_TEST_VAR", 0.1), 0.1);
}

TEST_F(EnvTest, ScaleParsing) {
  setenv("GES_SCALE", "tiny", 1);
  EXPECT_EQ(env_scale(Scale::kMedium), Scale::kTiny);
  setenv("GES_SCALE", "full", 1);
  EXPECT_EQ(env_scale(Scale::kMedium), Scale::kFull);
  setenv("GES_SCALE", "bogus", 1);
  EXPECT_EQ(env_scale(Scale::kMedium), Scale::kMedium);
  unsetenv("GES_SCALE");
  EXPECT_EQ(env_scale(Scale::kSmall), Scale::kSmall);
}

TEST_F(EnvTest, ScaleNames) {
  EXPECT_STREQ(scale_name(Scale::kTiny), "tiny");
  EXPECT_STREQ(scale_name(Scale::kSmall), "small");
  EXPECT_STREQ(scale_name(Scale::kMedium), "medium");
  EXPECT_STREQ(scale_name(Scale::kFull), "full");
}

}  // namespace
}  // namespace ges::util
