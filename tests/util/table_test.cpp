#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace ges::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render("");
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("x       1"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
}

TEST(Table, RowSizeMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), CheckFailure);
}

TEST(Table, EmptyHeaderThrows) { EXPECT_THROW(Table({}), CheckFailure); }

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.render_csv(), "a,b\n1,2\n");
}

TEST(Table, CountsRowsAndColumns) {
  Table t({"a", "b", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"4", "5", "6"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 3u);
}

TEST(Cell, FormatsDoubles) {
  EXPECT_EQ(cell(3.14159, 2), "3.14");
  EXPECT_EQ(cell(3.14159, 0), "3");
  EXPECT_EQ(cell(-1.5, 1), "-1.5");
}

TEST(Cell, FormatsIntegers) {
  EXPECT_EQ(cell(size_t{42}), "42");
  EXPECT_EQ(cell(-7), "-7");
}

TEST(PctCell, FormatsFractions) {
  EXPECT_EQ(pct_cell(0.716, 1), "71.6%");
  EXPECT_EQ(pct_cell(1.0, 0), "100%");
}

}  // namespace
}  // namespace ges::util
