#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ges::util {
namespace {

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, PropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](size_t i) {
                                   if (i == 37) throw std::runtime_error("fail");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futs;
  for (int i = 1; i <= 200; ++i) {
    futs.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 200 * 201 / 2);
}

TEST(ThreadPool, SizeReflectsWorkerCount) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
  EXPECT_GE(global_pool().size(), 1u);
}

TEST(ThreadPool, ParallelForFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ForEachIndex, NullPoolRunsSeriallyInAscendingOrder) {
  std::vector<size_t> order;
  for_each_index(nullptr, 5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ForEachIndex, PoolCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);  // not a multiple of the chunking
  for_each_index(&pool, hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ForEachIndex, ZeroItemsIsNoopOnBothPaths) {
  bool called = false;
  for_each_index(nullptr, 0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
  ThreadPool pool(2);
  for_each_index(&pool, 0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace ges::util
