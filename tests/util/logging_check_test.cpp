#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/logging.hpp"

namespace ges::util {
namespace {

TEST(Check, PassingExpressionIsSilent) {
  EXPECT_NO_THROW(GES_CHECK(1 + 1 == 2));
}

TEST(Check, FailingExpressionThrowsWithLocation) {
  try {
    GES_CHECK(false);
    FAIL() << "GES_CHECK(false) did not throw";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("GES_CHECK failed"), std::string::npos);
    EXPECT_NE(what.find("logging_check_test.cpp"), std::string::npos);
  }
}

TEST(Check, MessageIsStreamedIntoWhat) {
  try {
    const int value = 41;
    GES_CHECK_MSG(value == 42, "value was " << value);
    FAIL() << "GES_CHECK_MSG did not throw";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("value was 41"), std::string::npos);
  }
}

TEST(Check, SideEffectsEvaluatedOnce) {
  int calls = 0;
  auto bump = [&calls] {
    ++calls;
    return true;
  };
  GES_CHECK(bump());
  EXPECT_EQ(calls, 1);
}

class LogLevelTest : public ::testing::Test {
 protected:
  LogLevelTest() : saved_(log_level()) {}
  ~LogLevelTest() override { set_log_level(saved_); }
  LogLevel saved_;
};

TEST_F(LogLevelTest, SetAndGetRoundTrip) {
  for (const LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                               LogLevel::kError, LogLevel::kOff}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST_F(LogLevelTest, SuppressedMacroDoesNotEvaluateStreamArgs) {
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "payload";
  };
  GES_DEBUG << expensive();
  GES_ERROR << expensive();  // below kOff too
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LogLevelTest, EnabledMacroEvaluatesStreamArgs) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto payload = [&evaluations] {
    ++evaluations;
    return "payload";
  };
  GES_ERROR << payload();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogLevelTest, LogMessageRespectsThreshold) {
  // Behavioural smoke test: must not crash at any level.
  set_log_level(LogLevel::kWarn);
  log_message(LogLevel::kDebug, "dropped");
  log_message(LogLevel::kError, "emitted");
  SUCCEED();
}

}  // namespace
}  // namespace ges::util
