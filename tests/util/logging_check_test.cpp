#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/logging.hpp"

namespace ges::util {
namespace {

TEST(Check, PassingExpressionIsSilent) {
  EXPECT_NO_THROW(GES_CHECK(1 + 1 == 2));
}

TEST(Check, FailingExpressionThrowsWithLocation) {
  try {
    GES_CHECK(false);
    FAIL() << "GES_CHECK(false) did not throw";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("GES_CHECK failed"), std::string::npos);
    EXPECT_NE(what.find("logging_check_test.cpp"), std::string::npos);
  }
}

TEST(Check, MessageIsStreamedIntoWhat) {
  try {
    const int value = 41;
    GES_CHECK_MSG(value == 42, "value was " << value);
    FAIL() << "GES_CHECK_MSG did not throw";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("value was 41"), std::string::npos);
  }
}

TEST(Check, SideEffectsEvaluatedOnce) {
  int calls = 0;
  auto bump = [&calls] {
    ++calls;
    return true;
  };
  GES_CHECK(bump());
  EXPECT_EQ(calls, 1);
}

class LogLevelTest : public ::testing::Test {
 protected:
  LogLevelTest() : saved_(log_level()) {}
  ~LogLevelTest() override { set_log_level(saved_); }
  LogLevel saved_;
};

TEST_F(LogLevelTest, SetAndGetRoundTrip) {
  for (const LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                               LogLevel::kError, LogLevel::kOff}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST_F(LogLevelTest, SuppressedMacroDoesNotEvaluateStreamArgs) {
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "payload";
  };
  GES_DEBUG << expensive();
  GES_ERROR << expensive();  // below kOff too
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LogLevelTest, EnabledMacroEvaluatesStreamArgs) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto payload = [&evaluations] {
    ++evaluations;
    return "payload";
  };
  GES_ERROR << payload();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogLevelTest, LogMessageRespectsThreshold) {
  // Behavioural smoke test: must not crash at any level.
  set_log_level(LogLevel::kWarn);
  log_message(LogLevel::kDebug, "dropped");
  log_message(LogLevel::kError, "emitted");
  SUCCEED();
}

TEST(ParseLogLevel, AcceptsAllNamesAndRejectsJunk) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level("WARN"), LogLevel::kWarn);  // case-insensitive
}

TEST(LogLevelName, RoundTripsThroughParse) {
  for (const LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                               LogLevel::kError, LogLevel::kOff}) {
    EXPECT_EQ(parse_log_level(log_level_name(level)), level);
  }
}

class LogSinkTest : public ::testing::Test {
 protected:
  LogSinkTest() : saved_(log_level()) {
    set_log_sink([this](LogLevel level, const std::string& message) {
      captured_.emplace_back(level, message);
    });
  }
  ~LogSinkTest() override {
    set_log_sink({});  // restore the default stderr sink
    set_log_level(saved_);
  }
  LogLevel saved_;
  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LogSinkTest, CapturesFilteredLines) {
  set_log_level(LogLevel::kInfo);
  GES_DEBUG << "below threshold " << 1;
  GES_INFO << "hello " << 42;
  GES_ERROR << "boom";
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].second, "hello 42");
  EXPECT_EQ(captured_[1].first, LogLevel::kError);
  EXPECT_EQ(captured_[1].second, "boom");
}

TEST_F(LogSinkTest, ResettingSinkRestoresDefault) {
  set_log_level(LogLevel::kError);
  set_log_sink({});
  log_message(LogLevel::kError, "to stderr, not the captured vector");
  EXPECT_TRUE(captured_.empty());
}

}  // namespace
}  // namespace ges::util
