#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/check.hpp"

namespace ges::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
}

TEST(Accumulator, KnownMeanAndVariance) {
  Accumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance of the set is 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, SingleSample) {
  EXPECT_DOUBLE_EQ(percentile({3.0}, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile({3.0}, 100.0), 3.0);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

TEST(Percentile, OutOfRangePClampsToExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 101.0), 5.0);
}

TEST(Percentile, NanSamplesAreDiscarded) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> v{nan, 2.0, nan, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  // All-NaN collapses to the empty case.
  EXPECT_EQ(percentile({nan, nan}, 50.0), 0.0);
}

TEST(Percentile, NanPMapsToMinimum) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, nan), 1.0);
}

TEST(Percentile, ExactRanksSkipInterpolation) {
  // 5 samples put p=25/50/75 on exact ranks; the result must be the
  // sample itself, bit for bit, with no FP round-off from interpolation.
  std::vector<double> v{0.1, 0.2, 0.3, 0.4, 0.5};
  EXPECT_EQ(percentile(v, 25.0), 0.2);
  EXPECT_EQ(percentile(v, 50.0), 0.3);
  EXPECT_EQ(percentile(v, 75.0), 0.4);
}

TEST(EmpiricalCdf, Empty) { EXPECT_TRUE(empirical_cdf({}).empty()); }

TEST(EmpiricalCdf, DropsNans) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const auto cdf = empirical_cdf({nan, 1.0, nan, 2.0});
  ASSERT_EQ(cdf.size(), 2u);
  EXPECT_DOUBLE_EQ(cdf[0].first, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].second, 0.5);
  EXPECT_DOUBLE_EQ(cdf[1].second, 1.0);
  EXPECT_TRUE(empirical_cdf({nan, nan}).empty());
}

TEST(EmpiricalCdf, DistinctValues) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0, 4.0});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf[0].first, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].second, 0.25);
  EXPECT_DOUBLE_EQ(cdf[3].first, 4.0);
  EXPECT_DOUBLE_EQ(cdf[3].second, 1.0);
}

TEST(EmpiricalCdf, MergesEqualValues) {
  const auto cdf = empirical_cdf({1.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 2u);
  EXPECT_DOUBLE_EQ(cdf[0].second, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cdf[1].second, 1.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-1.0);   // clamped to bin 0
  h.add(100.0);  // clamped to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(2), 6.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), CheckFailure);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckFailure);
}

TEST(Histogram, OutOfRangeBinThrows) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.bin_count(2), CheckFailure);
}

TEST(Histogram, NanAndInfinityHandling) {
  Histogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::quiet_NaN());  // no bin, not in total()
  h.add(std::numeric_limits<double>::infinity());   // clamps to the last bin
  h.add(-std::numeric_limits<double>::infinity());  // clamps to bin 0
  h.add(1e308);                                     // clamps to the last bin
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.nan_count(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
}

TEST(Histogram, MergeSumsBinsTotalsAndNans) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  a.add(1.0);
  a.add(5.0);
  a.add(std::numeric_limits<double>::quiet_NaN());
  b.add(5.0);
  b.add(9.0);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.nan_count(), 1u);
  EXPECT_EQ(a.bin_count(0), 1u);
  EXPECT_EQ(a.bin_count(2), 2u);
  EXPECT_EQ(a.bin_count(4), 1u);
  // b is untouched.
  EXPECT_EQ(b.total(), 2u);
}

TEST(Histogram, MergeRejectsMismatchedShapes) {
  Histogram a(0.0, 10.0, 5);
  EXPECT_THROW(a.merge(Histogram(0.0, 10.0, 4)), CheckFailure);
  EXPECT_THROW(a.merge(Histogram(0.0, 20.0, 5)), CheckFailure);
}

}  // namespace
}  // namespace ges::util
