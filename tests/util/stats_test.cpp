#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace ges::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
}

TEST(Accumulator, KnownMeanAndVariance) {
  Accumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance of the set is 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, SingleSample) {
  EXPECT_DOUBLE_EQ(percentile({3.0}, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile({3.0}, 100.0), 3.0);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

TEST(Percentile, OutOfRangePThrows) {
  EXPECT_THROW(percentile({1.0}, -1.0), CheckFailure);
  EXPECT_THROW(percentile({1.0}, 101.0), CheckFailure);
}

TEST(EmpiricalCdf, Empty) { EXPECT_TRUE(empirical_cdf({}).empty()); }

TEST(EmpiricalCdf, DistinctValues) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0, 4.0});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf[0].first, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].second, 0.25);
  EXPECT_DOUBLE_EQ(cdf[3].first, 4.0);
  EXPECT_DOUBLE_EQ(cdf[3].second, 1.0);
}

TEST(EmpiricalCdf, MergesEqualValues) {
  const auto cdf = empirical_cdf({1.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 2u);
  EXPECT_DOUBLE_EQ(cdf[0].second, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cdf[1].second, 1.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-1.0);   // clamped to bin 0
  h.add(100.0);  // clamped to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(2), 6.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), CheckFailure);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckFailure);
}

TEST(Histogram, OutOfRangeBinThrows) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.bin_count(2), CheckFailure);
}

}  // namespace
}  // namespace ges::util
