// Direct unit tests of the shared biased-walk forwarding policy
// (ges/walk_policy.hpp) — the most decision-dense piece of §4.5.

#include "ges/walk_policy.hpp"

#include <gtest/gtest.h>

#include "support/test_corpus.hpp"

namespace ges::core::detail {
namespace {

using p2p::LinkType;
using p2p::Network;
using p2p::NodeId;

class WalkPolicyTest : public ::testing::Test {
 protected:
  // Topics: node i % 3. Node 0 (topic 0) gets random links to 1 (topic
  // 1), 2 (topic 2) and 3 (topic 0, maximally relevant to query 0).
  WalkPolicyTest()
      : corpus_(test::clustered_corpus(12, 3)),
        net_(corpus_, test::uniform_capacities(corpus_), p2p::NetworkConfig{}) {
    net_.connect(0, 1, LinkType::kRandom);
    net_.connect(0, 2, LinkType::kRandom);
    net_.connect(0, 3, LinkType::kRandom);
  }

  NodeId pick(SearchOptions options = {}, uint64_t seed = 1) {
    util::Rng rng(seed);
    return pick_walk_target(net_, options, corpus_.queries[0].vector, 0,
                            bookkeeping_, rng);
  }

  corpus::Corpus corpus_;
  Network net_;
  WalkBookkeeping bookkeeping_;
};

TEST_F(WalkPolicyTest, PrefersMostRelevantReplica) {
  EXPECT_EQ(pick(), 3u);  // same-topic neighbor wins via its replica
}

TEST_F(WalkPolicyTest, BookkeepingAvoidsRepeats) {
  const NodeId first = pick();
  EXPECT_EQ(first, 3u);
  const NodeId second = pick();
  EXPECT_NE(second, 3u);  // already forwarded there
  const NodeId third = pick();
  EXPECT_NE(third, second);
  EXPECT_NE(third, 3u);
}

TEST_F(WalkPolicyTest, FlushesWhenExhaustedAndReuses) {
  pick();
  pick();
  pick();  // all three neighbors tried
  const NodeId fourth = pick();
  // Flush-and-reuse: the best neighbor is chosen again.
  EXPECT_EQ(fourth, 3u);
}

TEST_F(WalkPolicyTest, SkipsDeadNeighbors) {
  net_.deactivate(3);
  const NodeId choice = pick();
  EXPECT_NE(choice, 3u);
  EXPECT_TRUE(choice == 1u || choice == 2u);
}

TEST_F(WalkPolicyTest, NoRandomNeighborsReturnsInvalid) {
  net_.disconnect(0, 1);
  net_.disconnect(0, 2);
  net_.disconnect(0, 3);
  EXPECT_EQ(pick(), p2p::kInvalidNode);
}

TEST_F(WalkPolicyTest, SemanticLinksAreNotWalked) {
  net_.disconnect(0, 1);
  net_.disconnect(0, 2);
  net_.disconnect(0, 3);
  net_.connect(0, 6, LinkType::kSemantic);  // only a semantic link remains
  EXPECT_EQ(pick(), p2p::kInvalidNode);
}

TEST(WalkPolicyCapacity, SupernodePreferenceAndSelfException) {
  const auto corpus = test::clustered_corpus(8, 2);
  std::vector<p2p::Capacity> caps(corpus.num_nodes(), 1.0);
  caps[1] = 1000.0;  // supernode, wrong topic
  caps[0] = 1000.0;  // the picking node itself is also a supernode
  Network net(corpus, caps, p2p::NetworkConfig{});
  net.connect(0, 1, LinkType::kRandom);
  net.connect(0, 2, LinkType::kRandom);  // topic 0: relevant

  SearchOptions options;
  options.capacity_aware = true;
  options.supernode_threshold = 1000.0;

  // A supernode ignores the capacity rule and follows relevance.
  WalkBookkeeping bk0;
  util::Rng rng(1);
  EXPECT_EQ(pick_walk_target(net, options, corpus.queries[0].vector, 0, bk0, rng),
            2u);

  // A weak node prefers its supernode neighbor despite irrelevance.
  net.connect(3, 1, LinkType::kRandom);  // 3 is weak; 1 is the supernode
  net.connect(3, 6, LinkType::kRandom);  // 6 topic 0: relevant but weak
  WalkBookkeeping bk3;
  EXPECT_EQ(pick_walk_target(net, options, corpus.queries[0].vector, 3, bk3, rng),
            1u);
}

TEST(WalkPolicyReplica, UsesReplicaNotLiveVector) {
  // The replica is installed at connect time; if the neighbor's content
  // drifts afterwards, the (stale) replica still guides the choice —
  // the realism the heartbeats exist to bound (paper §4.4).
  const auto corpus = test::clustered_corpus(6, 2);
  Network net(corpus, test::uniform_capacities(corpus), p2p::NetworkConfig{});
  net.connect(0, 2, LinkType::kRandom);  // topic 0, relevant at link time

  // Node 2's collection is replaced by off-vocabulary junk; the stale
  // replica still scores it relevant to a topic-0 query.
  for (const auto doc :
       std::vector<ir::DocId>(net.documents(2).begin(), net.documents(2).end())) {
    net.remove_document(2, doc);
  }
  net.add_document(2, ir::SparseVector::from_pairs({{5000, 3.0f}}));
  const auto& query = corpus.queries[0].vector;
  ASSERT_GT(net.replica(0, 2)->dot(query), 0.0);      // stale: still relevant
  EXPECT_DOUBLE_EQ(net.node_vector(2).dot(query), 0.0);  // live: junk

  SearchOptions options;
  WalkBookkeeping bk;
  util::Rng rng(2);
  EXPECT_EQ(pick_walk_target(net, options, query, 0, bk, rng), 2u);

  // After a heartbeat the fresh replica demotes node 2 below a truly
  // relevant neighbor.
  net.connect(0, 4, LinkType::kRandom);  // topic 0, genuinely relevant
  net.refresh_replicas(0);
  WalkBookkeeping bk2;
  EXPECT_EQ(pick_walk_target(net, options, query, 0, bk2, rng), 4u);
}

TEST(WalkPolicyRngRegression, SingleCandidateConsumesNoDraws) {
  // The single-candidate shuffle skip must consume exactly what the old
  // always-shuffle code consumed: nothing (a one-element Fisher–Yates
  // loop body never runs). The stream must stay untouched.
  const auto corpus = test::clustered_corpus(6, 2);
  Network net(corpus, test::uniform_capacities(corpus), p2p::NetworkConfig{});
  net.connect(0, 2, LinkType::kRandom);  // exactly one random neighbor

  util::Rng rng(1234);
  util::Rng untouched(1234);
  WalkBookkeeping bk;
  EXPECT_EQ(pick_walk_target(net, SearchOptions{}, corpus.queries[0].vector, 0,
                             bk, rng),
            2u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(rng.next(), untouched.next());
}

TEST(WalkPolicyRngRegression, MultiCandidateConsumesExactlyOneShuffle) {
  // With k > 1 candidates the pick consumes exactly the draws of one
  // k-element shuffle — no more (no stray capacity/relevance draws), no
  // fewer. Reproduce the consumption on a twin stream and compare.
  const auto corpus = test::clustered_corpus(12, 3);
  Network net(corpus, test::uniform_capacities(corpus), p2p::NetworkConfig{});
  net.connect(0, 1, LinkType::kRandom);
  net.connect(0, 2, LinkType::kRandom);
  net.connect(0, 3, LinkType::kRandom);

  util::Rng rng(99);
  util::Rng twin(99);
  WalkBookkeeping bk;
  pick_walk_target(net, SearchOptions{}, corpus.queries[0].vector, 0, bk, rng);

  std::vector<p2p::NodeId> dummy = {1, 2, 3};  // draw count depends on size only
  twin.shuffle(dummy);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(rng.next(), twin.next());
}

TEST(WalkPolicyRngRegression, CapacityAwarePathDrawsMatchPlainPath) {
  // Hoisting the capacity lookups must not change rng consumption: the
  // capacity scan never draws, so capacity-aware and plain picks consume
  // identical streams on the same candidates.
  const auto corpus = test::clustered_corpus(12, 3);
  std::vector<p2p::Capacity> caps(corpus.num_nodes(), 1.0);
  caps[1] = 1000.0;
  Network net(corpus, caps, p2p::NetworkConfig{});
  net.connect(0, 1, LinkType::kRandom);
  net.connect(0, 2, LinkType::kRandom);
  net.connect(0, 3, LinkType::kRandom);

  SearchOptions cap_aware;
  cap_aware.capacity_aware = true;
  cap_aware.supernode_threshold = 1000.0;

  util::Rng rng_cap(7);
  util::Rng rng_plain(7);
  WalkBookkeeping bk_cap;
  WalkBookkeeping bk_plain;
  pick_walk_target(net, cap_aware, corpus.queries[0].vector, 0, bk_cap, rng_cap);
  pick_walk_target(net, SearchOptions{}, corpus.queries[0].vector, 0, bk_plain,
                   rng_plain);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(rng_cap.next(), rng_plain.next());
}

}  // namespace
}  // namespace ges::core::detail
