// Byte accounting is strictly additive (ISSUE: "bytes are strictly
// additive"): with SearchOptions/GesParams/process-level account_bytes
// toggled off, every engine must produce bit-identical traces, topology
// and message-unit stats — only the byte fields go to zero. And when on,
// the bytes must reconcile exactly against the Wire-format-v1 frame
// sizes: trace.bytes_sent == walk_steps * WalkQuery frame + flood
// messages * FloodForward frame, ges.net.bytes.* counter deltas match,
// and (under the flight recorder) the summed per-event frame sizes equal
// the cost block's bytes_sent. Double-entry bookkeeping for the data
// plane, adaptation, heartbeats and the result cache.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ges/result_cache.hpp"
#include "ges/scenario.hpp"
#include "ges/topology_adaptation.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "p2p/cache_protocol.hpp"
#include "p2p/replication.hpp"
#include "p2p/wire.hpp"
#include "support/test_corpus.hpp"
#include "util/rng.hpp"

namespace ges::core {
namespace {

namespace wire = p2p::wire;
using p2p::CachedResultDoc;
using p2p::NodeId;

// --- Search data plane ---------------------------------------------------

/// Run the same scenario + query batch with byte accounting on or off and
/// return the traces.
std::vector<p2p::SearchTrace> run_search_batch(const corpus::Corpus& corpus,
                                               uint64_t seed,
                                               bool account_bytes) {
  ScenarioParams sp;
  sp.params.max_links = 6;
  sp.params.min_links = 2;
  sp.params.walk_ttl = 20;
  sp.params.account_bytes = account_bytes;
  sp.rounds = 6;
  sp.seed = seed;
  ScenarioRunner runner(corpus, sp);
  runner.run();

  util::Rng rng(util::derive_seed(seed, 80));
  SearchOptions sopt;
  sopt.ttl = 25;
  sopt.account_bytes = account_bytes;
  std::vector<p2p::SearchTrace> traces;
  for (size_t q = 0; q < 8; ++q) {
    const auto alive = runner.network().alive_nodes();
    const NodeId initiator = alive[rng.index(alive.size())];
    const auto& query = corpus.queries[q % corpus.queries.size()].vector;
    traces.push_back(runner.search(query, initiator, sopt, rng));
  }
  return traces;
}

TEST(ByteAccounting, SearchTracesIdenticalOnOrOff) {
  const auto corpus = test::clustered_corpus(24, 3);
  for (const uint64_t seed : {3u, 7u}) {
    const auto on = run_search_batch(corpus, seed, true);
    const auto off = run_search_batch(corpus, seed, false);
    ASSERT_EQ(on.size(), off.size());
    for (size_t q = 0; q < on.size(); ++q) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " query=" + std::to_string(q));
      // operator== covers the behavioral fields (probe order, retrieved
      // docs, message units, reason) and excludes the diagnostics.
      EXPECT_EQ(on[q], off[q]);
      EXPECT_EQ(on[q].walk_steps, off[q].walk_steps);
      EXPECT_EQ(on[q].flood_messages, off[q].flood_messages);
      EXPECT_EQ(off[q].bytes_sent, 0u);
    }
  }
}

TEST(ByteAccounting, SearchBytesReconcileWithFrameSizes) {
  const auto corpus = test::clustered_corpus(24, 3);
  ScenarioParams sp;
  sp.params.max_links = 6;
  sp.params.min_links = 2;
  sp.rounds = 6;
  sp.seed = 5;
  ScenarioRunner runner(corpus, sp);
  runner.run();

  util::Rng rng(99);
  SearchOptions sopt;
  sopt.ttl = 25;
  size_t nonzero = 0;
  for (size_t q = 0; q < 8; ++q) {
    const auto& query = corpus.queries[q % corpus.queries.size()].vector;
    const auto alive = runner.network().alive_nodes();
    const NodeId initiator = alive[rng.index(alive.size())];
    const p2p::SearchTrace trace = runner.search(query, initiator, sopt, rng);
    // One WalkQuery frame per walk step, one FloodForward frame per flood
    // edge; the query vector rides unchanged, so per-query frame sizes
    // are constants.
    const uint64_t expected =
        trace.walk_steps * wire::walk_query_frame_size(query.size()) +
        trace.flood_messages * wire::flood_forward_frame_size(query.size());
    EXPECT_EQ(trace.bytes_sent, expected) << "query " << q;
    if (trace.bytes_sent > 0) ++nonzero;
  }
  EXPECT_GT(nonzero, 0u) << "batch never exercised the accounting";
}

#if GES_OBS

TEST(ByteAccounting, CountersAndFlightEventsReconcileExactly) {
  const auto corpus = test::clustered_corpus(24, 3);
  ScenarioParams sp;
  sp.params.max_links = 6;
  sp.params.min_links = 2;
  sp.rounds = 6;
  sp.seed = 13;
  ScenarioRunner runner(corpus, sp);
  runner.run();

  obs::flight().reset();
  obs::FlightRecorderConfig config;
  config.worst_k = 0;
  config.sample_capacity = 64;
  config.sample_every = 1;
  config.max_events_per_query = 65536;
  obs::flight().set_config(config);
  obs::flight().set_enabled(true);
  obs::global().set_enabled(true);

  util::Rng rng(4242);
  SearchOptions sopt;
  sopt.ttl = 25;
  std::vector<p2p::SearchTrace> traces;
  std::vector<const ir::SparseVector*> queries;
  const auto before = obs::global().metrics().snapshot();
  for (size_t q = 0; q < 6; ++q) {
    const auto& query = corpus.queries[q % corpus.queries.size()].vector;
    const auto alive = runner.network().alive_nodes();
    const NodeId initiator = alive[rng.index(alive.size())];
    traces.push_back(runner.search(query, initiator, sopt, rng));
    queries.push_back(&query);
  }
  const auto after = obs::global().metrics().snapshot();

  // ges.net.bytes.{walk,flood} counter deltas == summed per-trace bytes.
  uint64_t walk_bytes = 0, flood_bytes = 0, total_bytes = 0;
  for (size_t q = 0; q < traces.size(); ++q) {
    walk_bytes += traces[q].walk_steps *
                  wire::walk_query_frame_size(queries[q]->size());
    flood_bytes += traces[q].flood_messages *
                   wire::flood_forward_frame_size(queries[q]->size());
    total_bytes += traces[q].bytes_sent;
  }
  EXPECT_EQ(after.counter("ges.net.bytes.walk") -
                before.counter("ges.net.bytes.walk"),
            walk_bytes);
  EXPECT_EQ(after.counter("ges.net.bytes.flood") -
                before.counter("ges.net.bytes.flood"),
            flood_bytes);
  EXPECT_EQ(total_bytes, walk_bytes + flood_bytes);

  // Per-event frame sizes sum to the cost block, which equals the trace.
  const auto kept = obs::flight().retained();
  ASSERT_EQ(kept.size(), traces.size());
  for (size_t q = 0; q < kept.size(); ++q) {
    const obs::QueryAutopsy& a = kept[q].autopsy;
    ASSERT_EQ(a.events_dropped, 0u);
    uint64_t event_bytes = 0;
    for (const obs::FlightEvent& ev : a.events) {
      if (ev.kind == obs::FlightEventKind::kWalkHop ||
          ev.kind == obs::FlightEventKind::kFloodSend) {
        EXPECT_GT(ev.bytes, 0u);
        event_bytes += ev.bytes;
      } else {
        EXPECT_EQ(ev.bytes, 0u);
      }
    }
    EXPECT_EQ(event_bytes, a.cost.bytes_sent) << "query " << q;
    EXPECT_EQ(a.cost.bytes_sent, traces[q].bytes_sent) << "query " << q;
  }

  obs::flight().set_enabled(false);
  obs::flight().reset();
  obs::global().set_enabled(false);
  obs::global().reset();
}

#endif  // GES_OBS

// --- Topology adaptation -------------------------------------------------

p2p::Network adapted_network(const corpus::Corpus& corpus, bool account_bytes,
                             AdaptationRoundStats* total) {
  p2p::Network net(corpus, test::uniform_capacities(corpus),
                   p2p::NetworkConfig{});
  util::Rng boot(17);
  p2p::bootstrap_random_graph(net, 4.0, boot);
  GesParams params;
  params.max_links = 6;
  params.min_links = 2;
  params.gossip_host_caches = true;
  params.account_bytes = account_bytes;
  TopologyAdaptation adapt(net, params, 23);
  *total = adapt.run_rounds(8);
  return net;
}

TEST(ByteAccounting, AdaptationOutcomeIdenticalOnOrOff) {
  const auto corpus = test::clustered_corpus(24, 3);
  AdaptationRoundStats on_stats, off_stats;
  const p2p::Network on = adapted_network(corpus, true, &on_stats);
  const p2p::Network off = adapted_network(corpus, false, &off_stats);

  // Message-unit tallies are bit-identical; only the byte fields differ.
  EXPECT_EQ(on_stats.semantic_links_added, off_stats.semantic_links_added);
  EXPECT_EQ(on_stats.random_links_added, off_stats.random_links_added);
  EXPECT_EQ(on_stats.links_reclassified, off_stats.links_reclassified);
  EXPECT_EQ(on_stats.walk_messages, off_stats.walk_messages);
  EXPECT_EQ(on_stats.handshake_messages, off_stats.handshake_messages);
  EXPECT_EQ(on_stats.gossip_messages, off_stats.gossip_messages);
  EXPECT_EQ(off_stats.walk_bytes, 0u);
  EXPECT_EQ(off_stats.handshake_bytes, 0u);
  EXPECT_EQ(off_stats.gossip_bytes, 0u);

  // The resulting topologies are identical link for link.
  ASSERT_EQ(on.size(), off.size());
  for (NodeId n = 0; n < on.size(); ++n) {
    EXPECT_EQ(on.neighbors(n, p2p::LinkType::kSemantic),
              off.neighbors(n, p2p::LinkType::kSemantic))
        << "node " << n;
    EXPECT_EQ(on.neighbors(n, p2p::LinkType::kRandom),
              off.neighbors(n, p2p::LinkType::kRandom))
        << "node " << n;
  }
}

TEST(ByteAccounting, AdaptationBytesReconcileWithFrameSizes) {
  const auto corpus = test::clustered_corpus(24, 3);
  AdaptationRoundStats stats;
  adapted_network(corpus, true, &stats);

  // Every discovery-walk message unit is one DiscoveryProbe frame.
  EXPECT_EQ(stats.walk_bytes,
            stats.walk_messages * wire::discovery_probe_frame_size());
  // Without faults no handshake loses a leg: handshake_messages is 3 per
  // attempt and the bytes are whole three-leg exchanges.
  ASSERT_EQ(stats.handshake_messages % 3, 0u);
  EXPECT_EQ(stats.handshake_bytes,
            (stats.handshake_messages / 3) * wire::handshake_legs_frame_size());
  // Gossip frames are sized by the entries actually shipped, so the
  // relation is a bound: every exchange costs at least the empty frame.
  if (stats.gossip_messages > 0) {
    EXPECT_GE(stats.gossip_bytes,
              stats.gossip_messages * wire::host_cache_exchange_frame_size(0, 0));
  } else {
    EXPECT_EQ(stats.gossip_bytes, 0u);
  }
}

// --- Replica heartbeats --------------------------------------------------

TEST(ByteAccounting, HeartbeatBytesReconcileWithFrameSizes) {
  const auto corpus = test::clustered_corpus(16, 3);
  p2p::Network net(corpus, test::uniform_capacities(corpus),
                   p2p::NetworkConfig{});
  util::Rng boot(5);
  p2p::bootstrap_random_graph(net, 4.0, boot);

  for (const bool account : {true, false}) {
    SCOPED_TRACE(account ? "accounting on" : "accounting off");
    p2p::EventQueue queue;
    p2p::ReplicaHeartbeatProcess beats(net, queue, 10.0);
    beats.set_account_bytes(account);
    beats.start();
    queue.run_until(10.5);  // every node beats exactly once

    // Double-entry: one ReplicaHeartbeat request per (node, random
    // neighbor) pair plus — nothing is lost without faults — one
    // NodeVectorUpdate response sized by the neighbor's vector.
    uint64_t expected = 0;
    size_t sent = 0;
    for (const NodeId node : net.alive_nodes()) {
      for (const NodeId neighbor : net.neighbors(node, p2p::LinkType::kRandom)) {
        ++sent;
        expected += wire::replica_heartbeat_frame_size() +
                    wire::node_vector_update_frame_size(
                        net.node_vector(neighbor).size());
      }
    }
    EXPECT_EQ(beats.heartbeats_sent(), sent);
    EXPECT_EQ(beats.heartbeats_lost(), 0u);
    EXPECT_EQ(beats.heartbeat_bytes(), account ? expected : 0u);
  }
}

// --- Result cache --------------------------------------------------------

/// Package results the way a search stores them, scanning owners until at
/// least `min_docs` documents match (which owners score is corpus-shaped,
/// so a fixed owner can come up empty).
std::vector<CachedResultDoc> fresh_docs(const p2p::Network& net,
                                        const ir::SparseVector& query,
                                        size_t min_docs) {
  std::vector<CachedResultDoc> out;
  for (NodeId owner = 0; owner < net.size() && out.size() < min_docs; ++owner) {
    for (const auto& d : net.index(owner).evaluate(query, 0.0)) {
      out.push_back({d.doc, d.score, owner, net.node_vector_version(owner)});
    }
  }
  return out;
}

TEST(ByteAccounting, ResultCacheBytesReconcileWithFrameSizes) {
  const auto corpus = test::clustered_corpus(12, 3);
  p2p::Network net(corpus, test::uniform_capacities(corpus),
                   p2p::NetworkConfig{});
  const auto& query = corpus.queries[0].vector;
  const p2p::QuerySignature sig = p2p::query_signature(query);
  const auto docs = fresh_docs(net, query, 1);
  ASSERT_FALSE(docs.empty());

  for (const bool account : {true, false}) {
    SCOPED_TRACE(account ? "accounting on" : "accounting off");
    ResultCacheConfig config;
    config.account_bytes = account;
    ResultCacheBank bank(net, config);

    EXPECT_EQ(bank.probe(0, sig), nullptr);  // miss
    bank.store(0, sig, docs);
    const auto* hit = bank.probe(0, sig);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(bank.probe(5, sig), nullptr);  // miss at another holder

    const ResultCacheStats& stats = bank.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.stores, 1u);
    if (account) {
      EXPECT_EQ(stats.probe_bytes, 3 * wire::cache_probe_frame_size());
      EXPECT_EQ(stats.result_bytes, wire::cache_result_frame_size(hit->size()));
      EXPECT_EQ(stats.store_bytes, wire::cache_store_frame_size(docs.size()));
    } else {
      EXPECT_EQ(stats.probe_bytes, 0u);
      EXPECT_EQ(stats.result_bytes, 0u);
      EXPECT_EQ(stats.store_bytes, 0u);
    }
  }
}

TEST(ByteAccounting, ResultCacheStoreBytesUseTruncatedSize) {
  // With top-k truncation the CacheStore frame carries the kept docs,
  // not the full retrieved set.
  const auto corpus = test::clustered_corpus(12, 3);
  p2p::Network net(corpus, test::uniform_capacities(corpus),
                   p2p::NetworkConfig{});
  const auto& query = corpus.queries[0].vector;
  const auto docs = fresh_docs(net, query, 2);
  ASSERT_GT(docs.size(), 1u);

  ResultCacheConfig config;
  config.top_k = 1;
  ResultCacheBank bank(net, config);
  bank.store(0, p2p::query_signature(query), docs);
  EXPECT_EQ(bank.stats().store_bytes, wire::cache_store_frame_size(1));
}

}  // namespace
}  // namespace ges::core
