#include "ges/params.hpp"

#include <gtest/gtest.h>

namespace ges::core {
namespace {

TEST(GesParams, UnconstrainedUsesMaxLinks) {
  GesParams p;
  p.max_links = 8;
  p.capacity_constrained = false;
  EXPECT_EQ(p.effective_max_links(1.0), 8u);
  EXPECT_EQ(p.effective_max_links(10000.0), 8u);
}

TEST(GesParams, CapacityConstraintFormula) {
  // Paper §5.4: max_links = min(max_links, C / min_unit), min_unit = 4,
  // heterogeneous max_links = 128.
  GesParams p;
  p.max_links = 128;
  p.min_unit = 4;
  p.min_links = 3;
  p.capacity_constrained = true;
  EXPECT_EQ(p.effective_max_links(1.0), 3u);      // 0 -> clamped to min_links
  EXPECT_EQ(p.effective_max_links(10.0), 3u);     // 2 -> clamped
  EXPECT_EQ(p.effective_max_links(100.0), 25u);   // 100/4
  EXPECT_EQ(p.effective_max_links(1000.0), 128u); // 250 -> capped at 128
  EXPECT_EQ(p.effective_max_links(10000.0), 128u);
}

TEST(GesParams, AlphaSplitsSemanticAndRandom) {
  GesParams p;
  p.max_links = 8;
  p.alpha = 0.5;
  EXPECT_EQ(p.max_sem_links(1.0), 4u);
  EXPECT_EQ(p.max_rnd_links(1.0), 4u);
  p.alpha = 0.25;
  EXPECT_EQ(p.max_sem_links(1.0), 2u);
  EXPECT_EQ(p.max_rnd_links(1.0), 6u);
}

TEST(GesParams, SemPlusRndEqualsEffective) {
  GesParams p;
  p.max_links = 128;
  p.capacity_constrained = true;
  for (const double c : {1.0, 10.0, 100.0, 1000.0, 10000.0}) {
    EXPECT_EQ(p.max_sem_links(c) + p.max_rnd_links(c), p.effective_max_links(c));
  }
}

TEST(GesParams, AlphaExtremes) {
  GesParams p;
  p.max_links = 10;
  p.alpha = 0.0;
  EXPECT_EQ(p.max_sem_links(1.0), 0u);
  EXPECT_EQ(p.max_rnd_links(1.0), 10u);
  p.alpha = 1.0;
  EXPECT_EQ(p.max_sem_links(1.0), 10u);
  EXPECT_EQ(p.max_rnd_links(1.0), 0u);
}

TEST(GesParams, PaperDefaults) {
  const GesParams p;
  EXPECT_EQ(p.min_links, 3u);
  EXPECT_EQ(p.max_links, 8u);
  EXPECT_EQ(p.min_unit, 4u);
  EXPECT_DOUBLE_EQ(p.alpha, 0.5);
  EXPECT_DOUBLE_EQ(p.node_rel_threshold, 0.45);
}

}  // namespace
}  // namespace ges::core
