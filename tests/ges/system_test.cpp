#include "ges/system.hpp"

#include <gtest/gtest.h>

#include "eval/metrics.hpp"
#include "support/test_corpus.hpp"
#include "util/check.hpp"

namespace ges::core {
namespace {

TEST(GesSystem, BuildProducesConnectedAdaptedOverlay) {
  const auto corpus = test::clustered_corpus(30, 3);
  GesBuildConfig config;
  config.seed = 5;
  GesSystem system(corpus, config);
  system.build();
  system.network().check_invariants();
  EXPECT_GT(count_semantic_groups(system.network()), 0u);
  size_t connected = 0;
  for (const auto n : system.network().alive_nodes()) {
    connected += system.network().degree(n) > 0 ? 1 : 0;
  }
  EXPECT_EQ(connected, system.network().alive_count());
}

TEST(GesSystem, DoubleBuildThrows) {
  const auto corpus = test::clustered_corpus(10, 2);
  GesSystem system(corpus, GesBuildConfig{});
  system.build();
  EXPECT_THROW(system.build(), util::CheckFailure);
}

TEST(GesSystem, SearchFindsRelevantDocuments) {
  const auto corpus = test::clustered_corpus(30, 3);
  GesBuildConfig config;
  config.seed = 6;
  GesSystem system(corpus, config);
  system.build();

  util::Rng rng(1);
  const auto& query = corpus.queries[0];
  const auto trace = system.search(query.vector, 0, rng);
  const eval::Judgment judgment(query.relevant);
  EXPECT_GT(eval::recall(trace, judgment), 0.9);
}

TEST(GesSystem, DefaultOptionsReflectConfig) {
  const auto corpus = test::clustered_corpus(10, 2);
  GesBuildConfig config;
  config.params.doc_rel_threshold = 0.1;
  config.params.flood_radius = 2;
  config.params.capacity_aware_search = true;
  config.capacities = p2p::CapacityProfile::gnutella();
  const GesSystem system(corpus, config);
  const auto opt = system.default_search_options();
  EXPECT_DOUBLE_EQ(opt.doc_rel_threshold, 0.1);
  EXPECT_EQ(opt.flood_radius, 2u);
  EXPECT_TRUE(opt.capacity_aware);
  EXPECT_DOUBLE_EQ(opt.supernode_threshold, 1000.0);
}

TEST(GesSystem, DeterministicAcrossInstances) {
  const auto corpus = test::clustered_corpus(20, 2);
  auto fingerprint = [&] {
    GesBuildConfig config;
    config.seed = 9;
    GesSystem system(corpus, config);
    system.build();
    size_t fp = 0;
    for (const auto n : system.network().alive_nodes()) {
      fp = fp * 31 + system.network().degree(n);
    }
    return fp;
  };
  EXPECT_EQ(fingerprint(), fingerprint());
}

TEST(GesSystem, NodeVectorSizeFlowsThrough) {
  const auto corpus = test::clustered_corpus(10, 2, 3, 32);
  GesBuildConfig config;
  config.net.node_vector_size = 5;
  GesSystem system(corpus, config);
  for (p2p::NodeId n = 0; n < 10; ++n) {
    EXPECT_LE(system.network().node_vector(n).size(), 5u);
  }
}

}  // namespace
}  // namespace ges::core
