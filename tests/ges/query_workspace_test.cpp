// Unit tests of the epoch-stamped QueryWorkspace: visited-set and
// bookkeeping reuse across queries, pooled tried-list slots, and the
// (owner, replica stamp) keyed relevance memo — including invalidation
// when a heartbeat refreshes a replica mid-query.

#include "ges/query_workspace.hpp"

#include <gtest/gtest.h>

#include "ges/walk_policy.hpp"
#include "ir/relevance.hpp"
#include "support/test_corpus.hpp"

namespace ges::core {
namespace {

using p2p::LinkType;
using p2p::Network;
using p2p::NodeId;

class QueryWorkspaceTest : public ::testing::Test {
 protected:
  QueryWorkspaceTest()
      : corpus_(test::clustered_corpus(12, 3)),
        net_(corpus_, test::uniform_capacities(corpus_), p2p::NetworkConfig{}) {
    net_.connect(0, 1, LinkType::kRandom);
    net_.connect(0, 2, LinkType::kRandom);
    net_.connect(0, 3, LinkType::kRandom);
  }

  const ir::SparseVector& query() const { return corpus_.queries[0].vector; }

  corpus::Corpus corpus_;
  Network net_;
  QueryWorkspace ws_;
};

TEST_F(QueryWorkspaceTest, SeenResetsLogicallyAcrossQueries) {
  ws_.begin_query(net_, query());
  EXPECT_FALSE(ws_.seen(4));
  ws_.mark_seen(4);
  ws_.mark_seen(7);
  EXPECT_TRUE(ws_.seen(4));
  EXPECT_TRUE(ws_.seen(7));

  ws_.begin_query(net_, query());  // epoch bump, no physical clear
  EXPECT_FALSE(ws_.seen(4));
  EXPECT_FALSE(ws_.seen(7));
  ws_.mark_seen(7);
  EXPECT_TRUE(ws_.seen(7));
  EXPECT_FALSE(ws_.seen(4));
}

TEST_F(QueryWorkspaceTest, TriedListsArePooledAndEpochScoped) {
  ws_.begin_query(net_, query());
  auto& tried0 = ws_.tried(0);
  EXPECT_TRUE(tried0.empty());
  tried0.push_back(1);
  tried0.push_back(3);
  EXPECT_EQ(ws_.tried(0).size(), 2u);  // same slot on revisit
  ws_.tried(5).push_back(2);           // second node, second slot
  EXPECT_EQ(ws_.tried(0).size(), 2u);  // undisturbed

  ws_.begin_query(net_, query());
  EXPECT_TRUE(ws_.tried(0).empty());  // fresh per query
  EXPECT_TRUE(ws_.tried(5).empty());
}

TEST_F(QueryWorkspaceTest, RelMatchesUnmemoizedEvaluationExactly) {
  ws_.begin_query(net_, query());
  for (const NodeId n : {1u, 2u, 3u}) {
    const ir::SparseVector* replica = net_.replica(0, n);
    ASSERT_NE(replica, nullptr);
    EXPECT_EQ(ws_.rel(net_, 0, n), ir::rel_node_query(*replica, query()));
  }
}

TEST_F(QueryWorkspaceTest, MemoHitsOnRevisitAndResetsPerQuery) {
  ws_.begin_query(net_, query());
  const double first = ws_.rel(net_, 0, 3);
  EXPECT_EQ(ws_.rel_evals(), 1u);
  EXPECT_EQ(ws_.rel_memo_hits(), 0u);
  EXPECT_EQ(ws_.rel(net_, 0, 3), first);
  EXPECT_EQ(ws_.rel_evals(), 1u);
  EXPECT_EQ(ws_.rel_memo_hits(), 1u);

  ws_.begin_query(net_, query());  // new query: memo logically empty
  EXPECT_EQ(ws_.rel(net_, 0, 3), first);
  EXPECT_EQ(ws_.rel_evals(), 1u);
  EXPECT_EQ(ws_.rel_memo_hits(), 0u);
}

TEST_F(QueryWorkspaceTest, MemoInvalidatedByReplicaRefresh) {
  // Make node 3's live vector drift away from its replica held by 0.
  ws_.begin_query(net_, query());
  const double stale = ws_.rel(net_, 0, 3);
  EXPECT_GT(stale, 0.0);  // same topic as query 0

  for (const auto doc :
       std::vector<ir::DocId>(net_.documents(3).begin(), net_.documents(3).end())) {
    net_.remove_document(3, doc);
  }
  net_.add_document(3, ir::SparseVector::from_pairs({{5000, 3.0f}}));

  // Replica not refreshed yet: memo stays valid (stamp unchanged).
  EXPECT_EQ(ws_.rel(net_, 0, 3), stale);
  EXPECT_EQ(ws_.rel_memo_hits(), 1u);

  // A mid-query heartbeat bumps the copy stamp: memo must recompute.
  ASSERT_TRUE(net_.refresh_replica(0, 3));
  const uint64_t evals_before = ws_.rel_evals();
  EXPECT_DOUBLE_EQ(ws_.rel(net_, 0, 3), 0.0);  // fresh replica: off-topic junk
  EXPECT_EQ(ws_.rel_evals(), evals_before + 1);
}

TEST_F(QueryWorkspaceTest, MemoDistinguishesOwners) {
  // Two owners hold replicas of node 3 with different copy stamps: the
  // memo may not serve owner 2 a value cached for owner 0 once their
  // copies diverge.
  net_.connect(2, 3, LinkType::kRandom);
  for (const auto doc :
       std::vector<ir::DocId>(net_.documents(3).begin(), net_.documents(3).end())) {
    net_.remove_document(3, doc);
  }
  net_.add_document(3, ir::SparseVector::from_pairs({{5000, 3.0f}}));
  ASSERT_TRUE(net_.refresh_replica(2, 3));  // only owner 2 refreshes

  ws_.begin_query(net_, query());
  const double via0 = ws_.rel(net_, 0, 3);  // stale copy, still on-topic
  const double via2 = ws_.rel(net_, 2, 3);  // fresh copy, junk
  EXPECT_GT(via0, 0.0);
  EXPECT_DOUBLE_EQ(via2, 0.0);
  EXPECT_EQ(ws_.rel_evals(), 2u);
  EXPECT_EQ(ws_.rel_memo_hits(), 0u);
}

TEST_F(QueryWorkspaceTest, WorkspacePickAgreesWithLegacyPick) {
  // Drive the two pick_walk_target overloads side by side through a full
  // try/flush cycle: identical choices and identical rng consumption.
  SearchOptions options;
  detail::WalkBookkeeping legacy;
  util::Rng rng_legacy(9);
  util::Rng rng_ws(9);
  ws_.begin_query(net_, query());
  for (int step = 0; step < 8; ++step) {
    const NodeId a =
        detail::pick_walk_target(net_, options, query(), 0, legacy, rng_legacy);
    const NodeId b = detail::pick_walk_target(net_, options, 0, ws_, rng_ws);
    EXPECT_EQ(a, b) << "step " << step;
    EXPECT_EQ(rng_legacy.next(), rng_ws.next()) << "rng drift at step " << step;
  }
}

}  // namespace
}  // namespace ges::core
