// Strict-mode equivalence of the query-result cache: a cache hit must be
// byte-identical to freshly evaluating the query — same documents, same
// scores — and a cold cache must leave traces byte-identical to a
// cache-off run. Covered: the synchronous GesSearch (populate / repeat
// pairs against an uncached reference), the asynchronous message-level
// engine across a fault-schedule grid (two batches: batch 1 populates and
// must match the cache-off run, batch 2 is served from the initiator's
// cache instantly), and repeat searches on a faulted + churned
// ScenarioRunner deployment. Every cached run enables
// SearchOptions::strict_result_cache, so each hit is additionally
// re-evaluated against the owners' live indexes inside the engine.

#include <gtest/gtest.h>

#include <vector>

#include "ges/async_search.hpp"
#include "ges/result_cache.hpp"
#include "ges/scenario.hpp"
#include "ges/topology_adaptation.hpp"
#include "support/test_corpus.hpp"

namespace ges::core {
namespace {

using p2p::NodeId;

SearchOptions with_cache(SearchOptions options, bool on) {
  options.use_result_cache = on;
  options.strict_result_cache = on;
  return options;
}

// (doc, score) sequences must agree exactly; probe_index legitimately
// differs (a hit attributes every document to the answering cache node).
void expect_same_results(const p2p::SearchTrace& hit,
                         const p2p::SearchTrace& fresh) {
  ASSERT_EQ(hit.retrieved.size(), fresh.retrieved.size());
  for (size_t i = 0; i < fresh.retrieved.size(); ++i) {
    EXPECT_EQ(hit.retrieved[i].doc, fresh.retrieved[i].doc) << "doc " << i;
    EXPECT_EQ(hit.retrieved[i].score, fresh.retrieved[i].score) << "doc " << i;
  }
}

class ResultCacheEquivalenceTest : public ::testing::Test {
 protected:
  ResultCacheEquivalenceTest()
      : corpus_(test::clustered_corpus(36, 3)),
        net_(corpus_, test::uniform_capacities(corpus_), p2p::NetworkConfig{}) {
    util::Rng rng(11);
    p2p::bootstrap_random_graph(net_, 5.0, rng);
    TopologyAdaptation adapt(net_, GesParams{}, 13);
    adapt.run_rounds(8);
  }

  corpus::Corpus corpus_;
  p2p::Network net_;
};

TEST_F(ResultCacheEquivalenceTest, SyncStrictHitsMatchFreshEvaluation) {
  SearchOptions options;
  options.ttl = 40;
  const GesSearch fresh(net_, with_cache(options, false));
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    // Fresh bank per seed: the populate run below must be provably cold
    // (earlier seeds walk other initiators and would seed their caches).
    ResultCacheBank bank(net_);
    const GesSearch cached(net_, with_cache(options, true), nullptr, &bank);
    for (size_t q = 0; q < corpus_.queries.size(); ++q) {
      const auto initiator = static_cast<NodeId>((seed * 11 + q) % 36);
      const auto& query = corpus_.queries[q].vector;
      util::Rng rng_fresh(seed);
      util::Rng rng_populate(seed);
      util::Rng rng_hit(seed);
      const auto f = fresh.search(query, initiator, rng_fresh);
      const auto populate = cached.search(query, initiator, rng_populate);
      // Cold cache: the cached engine makes exactly the fresh decisions.
      EXPECT_TRUE(populate == f) << "seed " << seed << " query " << q;
      EXPECT_EQ(populate.cache_hits, 0u);
      if (f.retrieved.empty()) continue;  // nothing was stored
      const auto hit = cached.search(query, initiator, rng_hit);
      EXPECT_EQ(hit.cache_hits, 1u) << "seed " << seed << " query " << q;
      ASSERT_EQ(hit.probes(), 1u);
      EXPECT_EQ(hit.probe_order[0], initiator);
      EXPECT_EQ(hit.walk_steps, 0u);
      EXPECT_EQ(hit.flood_messages, 0u);
      expect_same_results(hit, f);
      for (const auto& r : hit.retrieved) EXPECT_EQ(r.probe_index, 0u);
    }
    EXPECT_GT(bank.stats().hits, 0u);
  }
}

TEST_F(ResultCacheEquivalenceTest, AsyncStrictHitsAcrossFaultGrid) {
  SearchOptions base;
  base.ttl = 35;
  LatencyModel latency;

  for (const double fault_rate : {0.0, 0.08, 0.15}) {
    p2p::FaultPlan plan = p2p::FaultPlan::uniform(fault_rate, 991);
    if (fault_rate > 0.0) {
      plan.delay_rate = 0.05;
      plan.duplicate_rate = 0.03;
    }
    p2p::FaultInjector faults(plan);
    ResultCacheBank bank(net_);

    // One submission per distinct query: duplicate signatures in flight
    // would let a late submission hit an early completion's entry and
    // (legitimately) diverge from the cache-off reference.
    auto run_batch = [&](AsyncSearchEngine& engine, p2p::EventQueue& queue) {
      std::vector<AsyncQueryResult> results(corpus_.queries.size());
      for (size_t q = 0; q < results.size(); ++q) {
        engine.submit(corpus_.queries[q].vector, static_cast<NodeId>(q * 5 % 36),
                      util::derive_seed(17, q),
                      [&results, q](const AsyncQueryResult& r) { results[q] = r; });
      }
      queue.run();
      EXPECT_EQ(engine.pending(), 0u);
      return results;
    };

    p2p::EventQueue queue_off;
    AsyncSearchEngine engine_off(net_, queue_off, with_cache(base, false),
                                 latency, &faults);
    const auto off = run_batch(engine_off, queue_off);

    p2p::EventQueue queue_on;
    AsyncSearchEngine engine_on(net_, queue_on, with_cache(base, true), latency,
                                &faults, &bank);
    const auto populate = run_batch(engine_on, queue_on);

    ASSERT_EQ(populate.size(), off.size());
    for (size_t q = 0; q < off.size(); ++q) {
      EXPECT_TRUE(populate[q].trace == off[q].trace)
          << "fault rate " << fault_rate << " query " << q;
      EXPECT_EQ(populate[q].trace.cache_hits, 0u);
      EXPECT_EQ(populate[q].completed_at, off[q].completed_at) << "query " << q;
      EXPECT_EQ(populate[q].first_hit_at, off[q].first_hit_at) << "query " << q;
    }

    const auto repeat = run_batch(engine_on, queue_on);
    for (size_t q = 0; q < repeat.size(); ++q) {
      if (populate[q].trace.retrieved.empty()) continue;  // not stored
      // Served straight from the initiator's cache: one probe, no
      // messages, instant completion — faults never get to touch it.
      EXPECT_EQ(repeat[q].trace.cache_hits, 1u)
          << "fault rate " << fault_rate << " query " << q;
      EXPECT_EQ(repeat[q].trace.probes(), 1u);
      EXPECT_EQ(repeat[q].trace.messages(), 0u);
      EXPECT_EQ(repeat[q].completed_at, repeat[q].submitted_at);
      EXPECT_EQ(repeat[q].first_hit_at, repeat[q].submitted_at);
      expect_same_results(repeat[q].trace, populate[q].trace);
    }
    EXPECT_GT(bank.stats().hits, 0u) << "fault rate " << fault_rate;
  }
}

TEST(ResultCacheEquivalenceScenario, FaultedChurnedDeploymentRepeatsHit) {
  const auto corpus = test::clustered_corpus(24, 3);
  ScenarioParams sp;
  sp.params.max_links = 6;
  sp.params.min_links = 2;
  sp.params.walk_ttl = 20;
  sp.faults = p2p::FaultPlan::uniform(0.1, util::derive_seed(6, 77));
  sp.churn_enabled = true;
  sp.churn.mean_session = 60.0;
  sp.churn.mean_downtime = 25.0;
  sp.churn.bootstrap_links = 2;
  sp.churn.seed = util::derive_seed(6, 78);
  sp.rounds = 8;
  sp.seed = 6;

  ScenarioRunner runner(corpus, sp);
  runner.run();

  SearchOptions options;
  options.ttl = 30;
  const auto alive = runner.network().alive_nodes();
  ASSERT_FALSE(alive.empty());
  size_t repeat_hits = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng pick(util::derive_seed(seed, 80));
    const NodeId initiator = alive[pick.index(alive.size())];
    const auto& query = corpus.queries[seed % corpus.queries.size()].vector;
    util::Rng rng_first(seed);
    util::Rng rng_second(seed);
    const auto first =
        runner.search(query, initiator, with_cache(options, true), rng_first);
    const auto second =
        runner.search(query, initiator, with_cache(options, true), rng_second);
    if (first.cache_hits == 0 && !first.retrieved.empty()) {
      // The first run completed fresh, so its results were stored at the
      // initiator; no sim time passed in between, so the repeat must be
      // served from there with the exact same documents and scores.
      EXPECT_EQ(second.cache_hits, 1u) << "seed " << seed;
      ASSERT_EQ(second.probes(), 1u);
      EXPECT_EQ(second.probe_order[0], initiator);
      expect_same_results(second, first);
      ++repeat_hits;
    }
  }
  EXPECT_GT(repeat_hits, 0u);
  EXPECT_GE(runner.result_cache().stats().hits, repeat_hits);
  // Strict mode re-verified every hit above; the sweep closes the loop on
  // the liveness side (dead nodes cache nothing, no dead-owner results).
  const auto report = p2p::check_overlay_invariants(
      runner.network(), runner.invariant_options(sp.churn.bootstrap_links));
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.result_cache_nodes_checked, 0u);
}

}  // namespace
}  // namespace ges::core
