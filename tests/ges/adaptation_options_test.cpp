// Tests of the optional adaptation mechanisms: the §4.3 discovery
// optimizations (cache-assisted discovery, host-cache gossip) and the §7
// satisfaction-degree throttling.

#include <gtest/gtest.h>

#include "ges/topology_adaptation.hpp"
#include "support/test_corpus.hpp"

namespace ges::core {
namespace {

using p2p::LinkType;
using p2p::Network;
using p2p::NodeId;

class AdaptationOptionsTest : public ::testing::Test {
 protected:
  AdaptationOptionsTest()
      : corpus_(test::clustered_corpus(24, 3)),
        net_(corpus_, test::uniform_capacities(corpus_), p2p::NetworkConfig{}) {
    util::Rng rng(1);
    p2p::bootstrap_random_graph(net_, 5.0, rng);
  }

  corpus::Corpus corpus_;
  Network net_;
};

TEST_F(AdaptationOptionsTest, CacheAssistedDiscoveryProducesAssists) {
  GesParams params;
  params.cache_assisted_discovery = true;
  TopologyAdaptation adapt(net_, params, 7);
  const auto stats = adapt.run_rounds(6);
  EXPECT_GT(stats.cache_assists, 0u);
  net_.check_invariants();
}

TEST_F(AdaptationOptionsTest, CacheAssistEntriesQualify) {
  GesParams params;
  params.cache_assisted_discovery = true;
  TopologyAdaptation adapt(net_, params, 7);
  adapt.run_rounds(6);
  for (const NodeId n : net_.alive_nodes()) {
    for (const auto* e : net_.semantic_cache(n).entries()) {
      EXPECT_GE(net_.rel_nodes(n, e->node), params.node_rel_threshold);
    }
  }
}

TEST_F(AdaptationOptionsTest, GossipSpreadsSemanticCandidates) {
  GesParams params;
  params.gossip_host_caches = true;
  TopologyAdaptation adapt(net_, params, 7);
  const auto stats = adapt.run_rounds(8);
  EXPECT_GT(stats.gossip_messages, 0u);
  net_.check_invariants();
}

TEST_F(AdaptationOptionsTest, SatisfactionGrowsWithAdaptation) {
  GesParams params;
  TopologyAdaptation adapt(net_, params, 7);
  double before = 0.0;
  for (const NodeId n : net_.alive_nodes()) before += adapt.node_satisfaction(n);
  adapt.run_rounds(10);
  double after = 0.0;
  for (const NodeId n : net_.alive_nodes()) after += adapt.node_satisfaction(n);
  EXPECT_GT(after, before);
}

TEST_F(AdaptationOptionsTest, SatisfactionBoundedZeroOne) {
  TopologyAdaptation adapt(net_, GesParams{}, 7);
  adapt.run_rounds(5);
  for (const NodeId n : net_.alive_nodes()) {
    const double s = adapt.node_satisfaction(n);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_F(AdaptationOptionsTest, SatisfactionThrottlingReducesWalkTraffic) {
  // Two identical networks; one throttles with satisfaction. After the
  // topology converges, the throttled one sends fewer discovery walks.
  Network net_a(corpus_, test::uniform_capacities(corpus_), p2p::NetworkConfig{});
  Network net_b(corpus_, test::uniform_capacities(corpus_), p2p::NetworkConfig{});
  util::Rng ra(1);
  util::Rng rb(1);
  p2p::bootstrap_random_graph(net_a, 5.0, ra);
  p2p::bootstrap_random_graph(net_b, 5.0, rb);

  GesParams plain;
  GesParams throttled = plain;
  throttled.satisfaction_adaptive = true;
  TopologyAdaptation adapt_plain(net_a, plain, 7);
  TopologyAdaptation adapt_throttled(net_b, throttled, 7);

  // Converge both, then compare steady-state rounds.
  adapt_plain.run_rounds(10);
  adapt_throttled.run_rounds(10);
  const auto steady_plain = adapt_plain.run_rounds(5);
  const auto steady_throttled = adapt_throttled.run_rounds(5);
  EXPECT_GT(steady_throttled.discovery_skipped, 0u);
  EXPECT_LT(steady_throttled.walk_messages, steady_plain.walk_messages);
  net_b.check_invariants();
}

TEST_F(AdaptationOptionsTest, OptionsOffProducesNoExtraTraffic) {
  TopologyAdaptation adapt(net_, GesParams{}, 7);
  const auto stats = adapt.run_rounds(4);
  EXPECT_EQ(stats.cache_assists, 0u);
  EXPECT_EQ(stats.gossip_messages, 0u);
  EXPECT_EQ(stats.discovery_skipped, 0u);
}

}  // namespace
}  // namespace ges::core
