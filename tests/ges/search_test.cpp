#include "ges/search.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "ges/topology_adaptation.hpp"
#include "support/test_corpus.hpp"
#include "util/check.hpp"

namespace ges::core {
namespace {

using p2p::LinkType;
using p2p::Network;
using p2p::NodeId;

/// Adapted network over the clustered corpus: topics form semantic groups.
class SearchTest : public ::testing::Test {
 protected:
  SearchTest()
      : corpus_(test::clustered_corpus(24, 3)),
        net_(corpus_, test::uniform_capacities(corpus_), p2p::NetworkConfig{}) {
    util::Rng rng(1);
    p2p::bootstrap_random_graph(net_, 5.0, rng);
    TopologyAdaptation adapt(net_, GesParams{}, 7);
    adapt.run_rounds(10);
  }

  p2p::SearchTrace run(NodeId initiator, uint32_t query, SearchOptions opt = {}) {
    util::Rng rng(42);
    return GesSearch(net_, opt).search(corpus_.queries[query].vector, initiator, rng);
  }

  corpus::Corpus corpus_;
  Network net_;
};

TEST_F(SearchTest, ProbesAreDistinctAliveNodes) {
  const auto trace = run(0, 0);
  std::unordered_set<NodeId> unique(trace.probe_order.begin(), trace.probe_order.end());
  EXPECT_EQ(unique.size(), trace.probes());
  for (const NodeId n : trace.probe_order) EXPECT_TRUE(net_.alive(n));
}

TEST_F(SearchTest, InitiatorIsFirstProbe) {
  const auto trace = run(5, 0);
  ASSERT_FALSE(trace.probe_order.empty());
  EXPECT_EQ(trace.probe_order.front(), 5u);
}

TEST_F(SearchTest, RetrievedDocsHaveValidProbeIndices) {
  const auto trace = run(0, 1);
  for (const auto& r : trace.retrieved) {
    ASSERT_LT(r.probe_index, trace.probes());
    // The document really lives on the probed node.
    const NodeId owner = net_.document_owner(r.doc);
    EXPECT_EQ(owner, trace.probe_order[r.probe_index]);
    EXPECT_GT(r.score, 0.0);
  }
}

TEST_F(SearchTest, RetrievedDocsAreUnique) {
  const auto trace = run(0, 2);
  std::unordered_set<ir::DocId> docs;
  for (const auto& r : trace.retrieved) {
    EXPECT_TRUE(docs.insert(r.doc).second) << "doc retrieved twice";
  }
}

TEST_F(SearchTest, ProbeBudgetRespected) {
  SearchOptions opt;
  opt.probe_budget = 5;
  const auto trace = run(0, 0, opt);
  EXPECT_LE(trace.probes(), 5u);
}

TEST_F(SearchTest, MaxResponsesStopsSearch) {
  SearchOptions opt;
  opt.max_responses = 3;
  const auto trace = run(0, 0, opt);
  // The search may slightly overshoot within one probe but must stop then.
  EXPECT_GE(trace.retrieved.size(), 3u);
  const uint32_t last_probe = trace.retrieved.back().probe_index;
  EXPECT_GE(last_probe + 1, trace.probes() - 1);
}

TEST_F(SearchTest, TtlBoundsWalkSteps) {
  SearchOptions opt;
  opt.ttl = 4;
  const auto trace = run(0, 0, opt);
  EXPECT_LE(trace.walk_steps, 4u);
}

TEST_F(SearchTest, ExhaustiveRunCoversMostOfNetwork) {
  const auto trace = run(0, 0);
  // Connected adapted overlay: the unbounded search probes nearly all.
  EXPECT_GE(trace.probes(), net_.alive_count() * 8 / 10);
}

TEST_F(SearchTest, FindsTargetsAndFloods) {
  const auto trace = run(0, 0);
  EXPECT_GT(trace.target_count, 0u);
  EXPECT_GT(trace.flood_messages, 0u);
}

TEST_F(SearchTest, FloodRadiusLimitsGroupCoverage) {
  SearchOptions narrow;
  narrow.flood_radius = 1;
  SearchOptions wide;
  const auto t_narrow = run(0, 0, narrow);
  const auto t_wide = run(0, 0, wide);
  // With the same seed, the narrow flood sends no more flood messages.
  EXPECT_LE(t_narrow.flood_messages, t_wide.flood_messages);
}

TEST_F(SearchTest, DeterministicGivenSeed) {
  const auto a = run(0, 0);
  const auto b = run(0, 0);
  EXPECT_EQ(a.probe_order, b.probe_order);
  EXPECT_EQ(a.walk_steps, b.walk_steps);
}

TEST_F(SearchTest, HighTargetThresholdDisablesFlooding) {
  SearchOptions opt;
  opt.target_rel_threshold = 10.0;  // unattainable for normalized vectors
  const auto trace = run(0, 0, opt);
  EXPECT_EQ(trace.target_count, 0u);
  EXPECT_EQ(trace.flood_messages, 0u);
}

TEST_F(SearchTest, DocRelThresholdFiltersRetrieved) {
  SearchOptions relaxed;
  SearchOptions strict;
  strict.doc_rel_threshold = 0.9;
  const auto t_relaxed = run(0, 0, relaxed);
  const auto t_strict = run(0, 0, strict);
  EXPECT_LE(t_strict.retrieved.size(), t_relaxed.retrieved.size());
  for (const auto& r : t_strict.retrieved) EXPECT_GE(r.score, 0.9);
}

TEST_F(SearchTest, DeadInitiatorThrows) {
  net_.deactivate(0);
  util::Rng rng(1);
  EXPECT_THROW(GesSearch(net_, {}).search(corpus_.queries[0].vector, 0, rng),
               util::CheckFailure);
}

TEST(SearchIsolated, InitiatorWithoutRandomLinksStillProbesItself) {
  const auto corpus = test::clustered_corpus(4, 1);
  Network net(corpus, test::uniform_capacities(corpus), p2p::NetworkConfig{});
  util::Rng rng(1);
  const auto trace = GesSearch(net, {}).search(corpus.queries[0].vector, 0, rng);
  EXPECT_EQ(trace.probes(), 1u);
  EXPECT_FALSE(trace.retrieved.empty());
}

TEST(SearchCapacityAware, NonSupernodePrefersSupernodeNeighbor) {
  // Star-ish topology: node 0 links to a supernode (1) and a weak node (2).
  // Node 1 holds nothing relevant, node 2 is maximally relevant to the
  // query — yet the capacity-aware walk must go to the supernode first.
  const auto corpus = test::clustered_corpus(6, 2);
  std::vector<p2p::Capacity> caps(corpus.num_nodes(), 1.0);
  caps[1] = 1000.0;
  Network net(corpus, caps, p2p::NetworkConfig{});
  net.connect(0, 1, LinkType::kRandom);  // node 1: topic 1 (irrelevant)
  net.connect(0, 2, LinkType::kRandom);  // node 2: topic 0 (relevant)

  SearchOptions opt;
  opt.capacity_aware = true;
  opt.supernode_threshold = 1000.0;
  opt.probe_budget = 2;
  opt.target_rel_threshold = 10.0;  // keep it a pure walk
  util::Rng rng(5);
  const auto trace = GesSearch(net, opt).search(corpus.queries[0].vector, 0, rng);
  ASSERT_EQ(trace.probes(), 2u);
  EXPECT_EQ(trace.probe_order[1], 1u);  // the supernode, despite irrelevance

  // Without capacity awareness the relevant neighbor wins.
  opt.capacity_aware = false;
  util::Rng rng2(5);
  const auto trace2 = GesSearch(net, opt).search(corpus.queries[0].vector, 0, rng2);
  ASSERT_EQ(trace2.probes(), 2u);
  EXPECT_EQ(trace2.probe_order[1], 2u);
}

TEST(SearchBookkeeping, WalkEventuallyLeavesLocalLoop) {
  // Line topology 0-1-2-3 over random links; the walk must traverse it
  // fully despite having only one forward choice at each end.
  const auto corpus = test::clustered_corpus(4, 1);
  Network net(corpus, test::uniform_capacities(corpus), p2p::NetworkConfig{});
  net.connect(0, 1, LinkType::kRandom);
  net.connect(1, 2, LinkType::kRandom);
  net.connect(2, 3, LinkType::kRandom);
  SearchOptions opt;
  opt.target_rel_threshold = 10.0;  // pure walk
  util::Rng rng(1);
  const auto trace = GesSearch(net, opt).search(corpus.queries[0].vector, 0, rng);
  EXPECT_EQ(trace.probes(), 4u);
}

TEST(SearchFlood, WalkResumesFromTargetAfterFlood) {
  // Topology: initiator 0 --random-- 3 (target, topic 0) --semantic-- 6;
  // 3 --random-- 9 (topic 0). After flooding {3, 6}, the walk must
  // continue from the *target* (3), reaching 9 over 3's random link —
  // unreachable from 0 directly.
  const auto corpus = test::clustered_corpus(12, 3);
  Network net(corpus, test::uniform_capacities(corpus), p2p::NetworkConfig{});
  net.connect(0, 3, LinkType::kRandom);
  net.connect(3, 6, LinkType::kSemantic);
  net.connect(3, 9, LinkType::kRandom);
  SearchOptions opt;  // query 0 targets topic-0 nodes (0, 3, 6, 9)
  util::Rng rng(2);
  const auto trace = GesSearch(net, opt).search(corpus.queries[0].vector, 0, rng);
  std::unordered_set<NodeId> probed(trace.probe_order.begin(), trace.probe_order.end());
  EXPECT_TRUE(probed.count(3));
  EXPECT_TRUE(probed.count(6));
  EXPECT_TRUE(probed.count(9)) << "walk did not resume from the target";
}

TEST(SearchFlood, FloodCoversSemanticGroupOnly) {
  // Two semantic components: {0,2,4} and {1,3,5} (clustered_corpus topics).
  const auto corpus = test::clustered_corpus(6, 2);
  Network net(corpus, test::uniform_capacities(corpus), p2p::NetworkConfig{});
  net.connect(0, 2, LinkType::kSemantic);
  net.connect(2, 4, LinkType::kSemantic);
  net.connect(1, 3, LinkType::kSemantic);
  SearchOptions opt;  // default thresholds: node 0 is a target for query 0
  util::Rng rng(1);
  const auto trace = GesSearch(net, opt).search(corpus.queries[0].vector, 0, rng);
  std::unordered_set<NodeId> probed(trace.probe_order.begin(), trace.probe_order.end());
  EXPECT_TRUE(probed.count(0));
  EXPECT_TRUE(probed.count(2));
  EXPECT_TRUE(probed.count(4));
  // No random links exist, so the other component is unreachable.
  EXPECT_FALSE(probed.count(1));
  EXPECT_FALSE(probed.count(3));
}

TEST(SearchFlood, MessageCountsMatchHandComputedBfs) {
  // Regression guard for the flood frontier bookkeeping: on a hand-built
  // semantic component the exact message count is derivable from the
  // paper's protocol (one message per semantic neighbor except the link
  // the flood arrived on; duplicates count as messages but are discarded).
  //
  //        0 --- 2 --- 6 --- 8
  //         \    |
  //          \   |
  //            4          (plus the 2--4 chord closing a cycle)
  const auto corpus = test::clustered_corpus(10, 2);
  Network net(corpus, test::uniform_capacities(corpus), p2p::NetworkConfig{});
  net.connect(0, 2, LinkType::kSemantic);
  net.connect(0, 4, LinkType::kSemantic);
  net.connect(2, 6, LinkType::kSemantic);
  net.connect(6, 8, LinkType::kSemantic);
  net.connect(2, 4, LinkType::kSemantic);  // cycle => duplicate messages

  const auto run_flood = [&](uint32_t radius) {
    SearchOptions opt;
    opt.flood_radius = radius;
    util::Rng rng(1);
    return GesSearch(net, opt).search(corpus.queries[0].vector, 0, rng);
  };

  // Unlimited radius: 0->{2,4}=2, 2->{6,4(dup)}=2, 4->{2(dup)}=1,
  // 6->{8}=1, 8->{}=0. Total 6 messages, all five evens probed.
  const auto unlimited = run_flood(0);
  EXPECT_EQ(unlimited.flood_messages, 6u);
  EXPECT_EQ(unlimited.probes(), 5u);

  // Radius 1: only the target expands; its neighbors are probed but
  // never forward. 0->{2,4} = 2 messages, probes {0,2,4}.
  const auto r1 = run_flood(1);
  EXPECT_EQ(r1.flood_messages, 2u);
  EXPECT_EQ(r1.probes(), 3u);

  // Radius 2: 0->{2,4}=2, then depth-1 nodes send but their children
  // stop: 2->{6,4(dup)}=2, 4->{2(dup)}=1. Total 5, probes {0,2,4,6}.
  const auto r2 = run_flood(2);
  EXPECT_EQ(r2.flood_messages, 5u);
  EXPECT_EQ(r2.probes(), 4u);

  EXPECT_EQ(unlimited.target_count, 1u);
}

}  // namespace
}  // namespace ges::core
