#include "ges/async_search.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "eval/metrics.hpp"
#include "ges/topology_adaptation.hpp"
#include "support/test_corpus.hpp"
#include "util/check.hpp"

namespace ges::core {
namespace {

using p2p::NodeId;

class AsyncSearchTest : public ::testing::Test {
 protected:
  AsyncSearchTest()
      : corpus_(test::clustered_corpus(24, 3)),
        net_(corpus_, test::uniform_capacities(corpus_), p2p::NetworkConfig{}) {
    util::Rng rng(1);
    p2p::bootstrap_random_graph(net_, 5.0, rng);
    TopologyAdaptation adapt(net_, GesParams{}, 7);
    adapt.run_rounds(10);
  }

  AsyncQueryResult run_one(SearchOptions options = {}, uint32_t query = 0,
                           NodeId initiator = 0, uint64_t seed = 42) {
    p2p::EventQueue queue;
    AsyncSearchEngine engine(net_, queue, options);
    AsyncQueryResult result;
    bool fired = false;
    engine.submit(corpus_.queries[query].vector, initiator, seed,
                  [&](const AsyncQueryResult& r) {
                    result = r;
                    fired = true;
                  });
    queue.run();
    EXPECT_TRUE(fired) << "query never completed";
    EXPECT_EQ(engine.pending(), 0u);
    return result;
  }

  corpus::Corpus corpus_;
  p2p::Network net_;
};

TEST_F(AsyncSearchTest, CompletesAndProbesDistinctNodes) {
  const auto result = run_one();
  std::unordered_set<NodeId> unique(result.trace.probe_order.begin(),
                                    result.trace.probe_order.end());
  EXPECT_EQ(unique.size(), result.trace.probes());
  EXPECT_GT(result.trace.probes(), 1u);
}

TEST_F(AsyncSearchTest, FindsRelevantDocuments) {
  const auto result = run_one();
  const eval::Judgment judgment(corpus_.queries[0].relevant);
  EXPECT_GT(eval::recall(result.trace, judgment), 0.9);
}

TEST_F(AsyncSearchTest, TimesAreOrdered) {
  const auto result = run_one();
  EXPECT_GE(result.first_hit_at, result.submitted_at);
  EXPECT_GE(result.completed_at, result.first_hit_at);
  EXPECT_GT(result.completion_time(), 0.0);
  EXPECT_GE(result.time_to_first_hit(), 0.0);
}

TEST_F(AsyncSearchTest, FirstHitBeatsCompletion) {
  // The initiator's own hit (or an early walk hit) should arrive long
  // before the exhaustive search quiesces.
  const auto result = run_one();
  EXPECT_LT(result.time_to_first_hit(), result.completion_time());
}

TEST_F(AsyncSearchTest, ProbeBudgetRespected) {
  SearchOptions options;
  options.probe_budget = 5;
  const auto result = run_one(options);
  EXPECT_LE(result.trace.probes(), 5u);
}

TEST_F(AsyncSearchTest, TtlBoundsWalkSteps) {
  SearchOptions options;
  options.ttl = 4;
  const auto result = run_one(options);
  EXPECT_LE(result.trace.walk_steps, 4u);
}

TEST_F(AsyncSearchTest, DeterministicInSeed) {
  const auto a = run_one({}, 0, 0, 9);
  const auto b = run_one({}, 0, 0, 9);
  EXPECT_EQ(a.trace.probe_order, b.trace.probe_order);
  EXPECT_DOUBLE_EQ(a.completed_at, b.completed_at);
}

TEST_F(AsyncSearchTest, HigherLatencySlowsCompletion) {
  p2p::EventQueue queue;
  LatencyModel slow;
  slow.hop_mean = 0.5;
  slow.hop_jitter = 0.0;
  LatencyModel fast;
  fast.hop_mean = 0.05;
  fast.hop_jitter = 0.0;
  AsyncSearchEngine slow_engine(net_, queue, {}, slow);
  AsyncSearchEngine fast_engine(net_, queue, {}, fast);
  AsyncQueryResult slow_result;
  AsyncQueryResult fast_result;
  slow_engine.submit(corpus_.queries[0].vector, 0, 3,
                     [&](const AsyncQueryResult& r) { slow_result = r; });
  fast_engine.submit(corpus_.queries[0].vector, 0, 3,
                     [&](const AsyncQueryResult& r) { fast_result = r; });
  queue.run();
  EXPECT_GT(slow_result.completion_time(), fast_result.completion_time());
}

TEST_F(AsyncSearchTest, ManyConcurrentQueriesAllComplete) {
  p2p::EventQueue queue;
  AsyncSearchEngine engine(net_, queue, {});
  size_t completed = 0;
  for (uint32_t q = 0; q < corpus_.queries.size(); ++q) {
    engine.submit(corpus_.queries[q].vector, static_cast<NodeId>(q % net_.size()),
                  100 + q, [&](const AsyncQueryResult&) { ++completed; });
  }
  EXPECT_EQ(engine.pending(), corpus_.queries.size());
  queue.run();
  EXPECT_EQ(completed, corpus_.queries.size());
  EXPECT_EQ(engine.pending(), 0u);
}

TEST_F(AsyncSearchTest, MatchesSyncEngineCoverage) {
  // Same options, same topology: the async engine's exhaustive coverage
  // should match the synchronous GesSearch's within a small margin (the
  // traversal order differs, the reachable set does not).
  const auto async_result = run_one();
  util::Rng rng(42);
  const auto sync_trace =
      GesSearch(net_, {}).search(corpus_.queries[0].vector, 0, rng);
  const double ratio = static_cast<double>(async_result.trace.probes()) /
                       static_cast<double>(sync_trace.probes());
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.15);
}

TEST_F(AsyncSearchTest, IsolatedInitiatorCompletesImmediately) {
  const auto corpus = test::clustered_corpus(4, 1);
  p2p::Network net(corpus, test::uniform_capacities(corpus), p2p::NetworkConfig{});
  p2p::EventQueue queue;
  AsyncSearchEngine engine(net, queue, {});
  bool fired = false;
  engine.submit(corpus.queries[0].vector, 0, 1, [&](const AsyncQueryResult& r) {
    fired = true;
    EXPECT_EQ(r.trace.probes(), 1u);
  });
  queue.run();
  EXPECT_TRUE(fired);
}

TEST_F(AsyncSearchTest, DeadInitiatorThrows) {
  net_.deactivate(0);
  p2p::EventQueue queue;
  AsyncSearchEngine engine(net_, queue, {});
  EXPECT_THROW(engine.submit(corpus_.queries[0].vector, 0, 1, nullptr),
               util::CheckFailure);
}

}  // namespace
}  // namespace ges::core
