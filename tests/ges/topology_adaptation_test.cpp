#include "ges/topology_adaptation.hpp"

#include <gtest/gtest.h>

#include "support/test_corpus.hpp"

namespace ges::core {
namespace {

using p2p::LinkType;
using p2p::Network;
using p2p::NodeId;

class AdaptationTest : public ::testing::Test {
 protected:
  AdaptationTest()
      : corpus_(test::clustered_corpus(24, 3)),
        net_(corpus_, test::uniform_capacities(corpus_), p2p::NetworkConfig{}) {
    util::Rng rng(1);
    p2p::bootstrap_random_graph(net_, 5.0, rng);
  }

  corpus::Corpus corpus_;
  Network net_;
};

TEST_F(AdaptationTest, PreservesStructuralInvariants) {
  TopologyAdaptation adapt(net_, GesParams{}, 7);
  adapt.run_rounds(8);
  net_.check_invariants();
}

TEST_F(AdaptationTest, SemanticLinksConnectRelevantNodes) {
  GesParams params;
  TopologyAdaptation adapt(net_, params, 7);
  adapt.run_rounds(10);
  size_t semantic_links = 0;
  for (const NodeId n : net_.alive_nodes()) {
    for (const NodeId peer : net_.neighbors(n, LinkType::kSemantic)) {
      ++semantic_links;
      EXPECT_GE(net_.rel_nodes(n, peer), params.node_rel_threshold)
          << n << " <-> " << peer;
    }
  }
  EXPECT_GT(semantic_links, 0u);
}

TEST_F(AdaptationTest, SemanticGroupsMatchTopics) {
  // 3 orthogonal topics -> adaptation should organize nodes into
  // same-topic groups; cross-topic semantic links are impossible since
  // cross-topic REL = 0 < threshold.
  TopologyAdaptation adapt(net_, GesParams{}, 7);
  adapt.run_rounds(12);
  for (const NodeId n : net_.alive_nodes()) {
    for (const NodeId peer : net_.neighbors(n, LinkType::kSemantic)) {
      EXPECT_EQ(n % 3, peer % 3) << "cross-topic semantic link";
    }
  }
  EXPECT_GE(count_semantic_groups(net_), 3u);
  EXPECT_GT(mean_semantic_link_relevance(net_), 0.9);
}

TEST_F(AdaptationTest, RespectsMaxLinkBudgets) {
  GesParams params;
  params.max_links = 6;
  TopologyAdaptation adapt(net_, params, 7);
  adapt.run_rounds(10);
  for (const NodeId n : net_.alive_nodes()) {
    EXPECT_LE(net_.degree(n, LinkType::kSemantic), params.max_sem_links(1.0));
    // Random-link count can exceed max_rnd_links only via the bootstrap
    // graph (adaptation never *adds* beyond the budget).
  }
}

TEST_F(AdaptationTest, FillsHostCaches) {
  TopologyAdaptation adapt(net_, GesParams{}, 7);
  AdaptationRoundStats stats;
  adapt.node_step(0, stats);
  EXPECT_GT(stats.walk_messages, 0u);
  EXPECT_GT(net_.semantic_cache(0).size() + net_.random_cache(0).size(), 0u);
}

TEST_F(AdaptationTest, SemanticCacheEntriesCarryNoVectors) {
  TopologyAdaptation adapt(net_, GesParams{}, 7);
  adapt.run_rounds(3);
  for (const NodeId n : net_.alive_nodes()) {
    for (const auto* e : net_.semantic_cache(n).entries()) {
      EXPECT_TRUE(e->vector.empty());
    }
    for (const auto* e : net_.random_cache(n).entries()) {
      EXPECT_FALSE(e->vector.empty());
    }
  }
}

TEST_F(AdaptationTest, DeterministicInSeed) {
  auto run = [&](uint64_t seed) {
    Network net(corpus_, test::uniform_capacities(corpus_), p2p::NetworkConfig{});
    util::Rng rng(1);
    p2p::bootstrap_random_graph(net, 5.0, rng);
    TopologyAdaptation adapt(net, GesParams{}, seed);
    adapt.run_rounds(5);
    size_t fingerprint = 0;
    for (const NodeId n : net.alive_nodes()) {
      fingerprint = fingerprint * 31 + net.degree(n, LinkType::kSemantic);
    }
    return fingerprint;
  };
  EXPECT_EQ(run(3), run(3));
}

// The determinism contract of the two-phase round (see
// topology_adaptation.hpp): running the plan phase on the thread pool
// must yield a bit-identical overlay to running it serially, for the
// same seed. Compares full adjacency (both link types) and host-cache
// contents, not just a degree fingerprint.
TEST_F(AdaptationTest, ParallelRoundsMatchSerialBitExactly) {
  auto run = [&](bool parallel) {
    Network net(corpus_, test::uniform_capacities(corpus_), p2p::NetworkConfig{});
    util::Rng rng(1);
    p2p::bootstrap_random_graph(net, 5.0, rng);
    GesParams params;
    params.parallel_rounds = parallel;
    TopologyAdaptation adapt(net, params, 17);
    adapt.run_rounds(6);

    std::vector<std::vector<NodeId>> snapshot;
    for (const NodeId n : net.alive_nodes()) {
      snapshot.push_back(net.neighbors(n, LinkType::kSemantic));
      snapshot.push_back(net.neighbors(n, LinkType::kRandom));
      std::vector<NodeId> sem_cache;
      for (const auto* e : net.semantic_cache(n).entries()) {
        sem_cache.push_back(e->node);
      }
      snapshot.push_back(std::move(sem_cache));
      std::vector<NodeId> rnd_cache;
      for (const auto* e : net.random_cache(n).entries()) {
        rnd_cache.push_back(e->node);
      }
      snapshot.push_back(std::move(rnd_cache));
    }
    return snapshot;
  };
  EXPECT_EQ(run(true), run(false));
}

// Round statistics must also be reproducible across parallel/serial.
TEST_F(AdaptationTest, ParallelRoundStatsMatchSerial) {
  auto run = [&](bool parallel) {
    Network net(corpus_, test::uniform_capacities(corpus_), p2p::NetworkConfig{});
    util::Rng rng(1);
    p2p::bootstrap_random_graph(net, 5.0, rng);
    GesParams params;
    params.parallel_rounds = parallel;
    TopologyAdaptation adapt(net, params, 23);
    std::vector<size_t> counters;
    for (int i = 0; i < 4; ++i) {
      const auto stats = adapt.run_round();
      counters.insert(counters.end(),
                      {stats.walk_messages, stats.gossip_messages,
                       stats.semantic_links_added, stats.random_links_added,
                       stats.semantic_links_dropped, stats.random_links_dropped,
                       stats.handshake_messages, stats.links_reclassified,
                       stats.cache_assists, stats.discovery_skipped});
    }
    return counters;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST_F(AdaptationTest, ReclassifiesDriftedSemanticLinks) {
  GesParams params;
  TopologyAdaptation adapt(net_, params, 7);
  adapt.run_rounds(6);

  // Find a semantic link and make one endpoint drift away by replacing
  // its documents with off-topic ones.
  NodeId a = p2p::kInvalidNode;
  NodeId b = p2p::kInvalidNode;
  for (const NodeId n : net_.alive_nodes()) {
    const auto& sem = net_.neighbors(n, LinkType::kSemantic);
    if (!sem.empty()) {
      a = n;
      b = sem.front();
      break;
    }
  }
  ASSERT_NE(a, p2p::kInvalidNode);
  for (const auto doc : std::vector<ir::DocId>(net_.documents(a).begin(),
                                               net_.documents(a).end())) {
    net_.remove_document(a, doc);
  }
  net_.add_document(a, ir::SparseVector::from_pairs({{9999, 5.0f}}));
  ASSERT_LT(net_.rel_nodes(a, b), params.node_rel_threshold);

  AdaptationRoundStats stats;
  adapt.node_step(a, stats);
  EXPECT_GT(stats.links_reclassified, 0u);
  EXPECT_NE(net_.link_type(a, b), LinkType::kSemantic);
  // The dropped peer is remembered in the random host cache.
  EXPECT_TRUE(net_.random_cache(a).contains(b));
}

TEST_F(AdaptationTest, PromotesRandomLinkWhenRelevanceRises) {
  GesParams params;
  // Create a random link between two same-topic (highly relevant) nodes;
  // the adaptation should drop it and remember the peer as a semantic
  // candidate.
  Network net(corpus_, test::uniform_capacities(corpus_), p2p::NetworkConfig{});
  ASSERT_TRUE(net.connect(0, 3, LinkType::kRandom));  // same topic (0 and 3)
  ASSERT_GE(net.rel_nodes(0, 3), params.node_rel_threshold);
  TopologyAdaptation adapt(net, params, 7);
  AdaptationRoundStats stats;
  adapt.node_step(0, stats);
  EXPECT_GT(stats.links_reclassified, 0u);
  EXPECT_FALSE(net.has_link(0, 3));
  EXPECT_TRUE(net.semantic_cache(0).contains(3));
}

TEST_F(AdaptationTest, DeadNodesAreSkipped) {
  net_.deactivate(0);
  TopologyAdaptation adapt(net_, GesParams{}, 7);
  AdaptationRoundStats stats;
  adapt.node_step(0, stats);  // must be a no-op, not a crash
  EXPECT_EQ(net_.degree(0), 0u);
  adapt.run_rounds(2);
  net_.check_invariants();
}

TEST(AdaptationHeterogeneous, HighCapacityNodesGetHigherDegree) {
  const auto corpus = test::clustered_corpus(60, 3);
  std::vector<p2p::Capacity> caps(corpus.num_nodes(), 1.0);
  for (size_t i = 0; i < caps.size(); i += 10) caps[i] = 1000.0;  // supernodes
  p2p::Network net(corpus, caps, p2p::NetworkConfig{});
  util::Rng rng(2);
  p2p::bootstrap_random_graph(net, 4.0, rng);

  GesParams params;
  params.max_links = 128;
  params.capacity_constrained = true;
  TopologyAdaptation adapt(net, params, 11);
  adapt.run_rounds(15);

  double super_degree = 0.0;
  double weak_degree = 0.0;
  size_t supers = 0;
  size_t weaks = 0;
  for (const p2p::NodeId n : net.alive_nodes()) {
    if (net.capacity(n) >= 1000.0) {
      super_degree += net.degree(n);
      ++supers;
    } else {
      weak_degree += net.degree(n);
      ++weaks;
    }
  }
  ASSERT_GT(supers, 0u);
  ASSERT_GT(weaks, 0u);
  EXPECT_GT(super_degree / supers, weak_degree / weaks);
}

TEST(AdaptationGroups, CountSemanticGroupsOnKnownTopology) {
  const auto corpus = test::clustered_corpus(6, 2);
  p2p::Network net(corpus, test::uniform_capacities(corpus), p2p::NetworkConfig{});
  net.connect(0, 2, LinkType::kSemantic);
  net.connect(2, 4, LinkType::kSemantic);
  net.connect(1, 3, LinkType::kSemantic);
  EXPECT_EQ(count_semantic_groups(net), 2u);
  EXPECT_EQ(count_semantic_groups(net, 3), 1u);
  EXPECT_GT(mean_semantic_link_relevance(net), 0.9);
}

}  // namespace
}  // namespace ges::core
