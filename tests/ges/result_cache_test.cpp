// Query-result cache (ges/result_cache.hpp, p2p/cache_protocol.hpp):
// deterministic unit tests of the signature, sizing, eviction, TTL and
// invalidation rules, plus a model-based property suite (seeds 0-50)
// driving a ResultCacheBank and a naive unbounded reference map through
// randomized stores, probes, clock advances, document mutations and
// churn — every bank hit must be byte-identical to fresh evaluation, and
// a bank miss while the reference still holds a valid entry is only ever
// explained by a capacity eviction.

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ges/result_cache.hpp"
#include "p2p/cache_protocol.hpp"
#include "p2p/network.hpp"
#include "support/test_corpus.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ges::core {
namespace {

using p2p::CachedResultDoc;
using p2p::CacheEntryMeta;
using p2p::CacheValidity;
using p2p::Network;
using p2p::NodeId;
using p2p::QuerySignature;

constexpr size_t kNodes = 12;
constexpr size_t kTopics = 3;

std::vector<p2p::Capacity> spread_capacities(size_t nodes) {
  std::vector<p2p::Capacity> caps(nodes);
  const double classes[] = {1.0, 10.0, 100.0, 1000.0};
  for (size_t n = 0; n < nodes; ++n) caps[n] = classes[n % 4];
  return caps;
}

/// Evaluate `query` at `owner` and package the results exactly as a
/// search would store them.
std::vector<CachedResultDoc> fresh_docs(const Network& net, NodeId owner,
                                        const ir::SparseVector& query) {
  std::vector<CachedResultDoc> out;
  for (const auto& d : net.index(owner).evaluate(query, 0.0)) {
    out.push_back({d.doc, d.score, owner, net.node_vector_version(owner)});
  }
  return out;
}

class ResultCacheTest : public ::testing::Test {
 protected:
  ResultCacheTest()
      : corpus_(test::clustered_corpus(kNodes, kTopics)),
        net_(corpus_, spread_capacities(kNodes), {}) {}

  corpus::Corpus corpus_;
  Network net_;
};

// --- Signature ------------------------------------------------------

TEST_F(ResultCacheTest, SignatureIsCanonicalAndDiscriminating) {
  const auto& q0 = corpus_.queries[0].vector;
  const auto& q1 = corpus_.queries[1].vector;
  EXPECT_EQ(p2p::query_signature(q0), p2p::query_signature(q0));
  EXPECT_NE(p2p::query_signature(q0).value, p2p::query_signature(q1).value);

  // Same components assembled in a different order canonicalize to the
  // same SparseVector, hence the same signature.
  const auto terms = q0.terms();
  const auto weights = q0.weights();
  ASSERT_EQ(q0.size(), 2u);
  const auto reordered = ir::SparseVector::from_pairs(
      {{terms[1], weights[1]}, {terms[0], weights[0]}});
  EXPECT_EQ(p2p::query_signature(q0), p2p::query_signature(reordered));

  // A weight perturbation — evaluation would differ — changes the key.
  const auto tweaked = ir::SparseVector::from_pairs(
      {{terms[0], weights[0] * 1.0001f}, {terms[1], weights[1]}});
  EXPECT_NE(p2p::query_signature(q0).value, p2p::query_signature(tweaked).value);

  EXPECT_NE(p2p::query_signature(ir::SparseVector{}).value, 0u);
}

// --- Capacity sizing ------------------------------------------------

TEST(ResultCacheSizing, EntriesScaleWithCapacityDecades) {
  ResultCacheConfig cfg;
  cfg.base_entries = 16;
  cfg.entries_per_decade = 16;
  cfg.max_entries = 64;
  EXPECT_EQ(result_cache_entries_for(cfg, 1.0), 16u);
  EXPECT_EQ(result_cache_entries_for(cfg, 9.0), 16u);
  EXPECT_EQ(result_cache_entries_for(cfg, 10.0), 32u);
  EXPECT_EQ(result_cache_entries_for(cfg, 100.0), 48u);
  EXPECT_EQ(result_cache_entries_for(cfg, 1000.0), 64u);
  EXPECT_EQ(result_cache_entries_for(cfg, 100000.0), 64u);  // capped
}

// --- Eviction order -------------------------------------------------

TEST(ResultCacheEviction, EvictsLeastPopularThenLeastRecentlyUsed) {
  ResultCache cache(2);
  const QuerySignature a{1}, b{2}, c{3}, d{4};
  const CacheEntryMeta meta;
  uint64_t tick = 0;
  EXPECT_EQ(cache.store(a, {{0, 1.0, 0, 0}}, meta, ++tick), 0u);
  EXPECT_EQ(cache.store(b, {{1, 1.0, 0, 0}}, meta, ++tick), 0u);

  // A hit makes `a` more popular than `b`.
  ASSERT_NE(cache.find(a), nullptr);
  cache.find(a)->popularity = 1;
  cache.find(a)->last_used = ++tick;

  // Full cache: storing c must evict b (least popular).
  EXPECT_EQ(cache.store(c, {{2, 1.0, 0, 0}}, meta, ++tick), 1u);
  EXPECT_EQ(cache.find(b), nullptr);
  EXPECT_NE(cache.find(a), nullptr);
  EXPECT_NE(cache.find(c), nullptr);

  // a (pop 1) vs c (pop 0): storing d evicts c.
  EXPECT_EQ(cache.store(d, {{3, 1.0, 0, 0}}, meta, ++tick), 1u);
  EXPECT_EQ(cache.find(c), nullptr);
  EXPECT_NE(cache.find(a), nullptr);

  // Equal popularity: the least recently used goes first. a's last_used
  // predates d's store tick, so a is the victim now.
  cache.find(a)->popularity = 0;
  EXPECT_EQ(cache.store(b, {{1, 1.0, 0, 0}}, meta, ++tick), 1u);
  EXPECT_EQ(cache.find(a), nullptr);
  EXPECT_NE(cache.find(d), nullptr);
}

// --- Validity layers -------------------------------------------------

TEST_F(ResultCacheTest, TtlExpiresEntries) {
  ResultCacheConfig cfg;
  cfg.ttl = 10.0;
  ResultCacheBank bank(net_, cfg);
  double now = 0.0;
  bank.set_clock([&now] { return now; });

  const auto& query = corpus_.queries[0].vector;
  const auto sig = p2p::query_signature(query);
  bank.store(0, sig, fresh_docs(net_, 0, query));

  now = 5.0;
  EXPECT_NE(bank.probe(0, sig), nullptr);
  now = 10.0;  // expires_at reached
  EXPECT_EQ(bank.probe(0, sig), nullptr);
  EXPECT_EQ(bank.stats().invalidations, 1u);
  EXPECT_EQ(bank.entry_count(0), 0u);  // lazily erased
}

TEST_F(ResultCacheTest, StampMismatchFallsBackToPerOwnerChecks) {
  ResultCacheBank bank(net_);
  const auto& query = corpus_.queries[0].vector;
  const auto sig = p2p::query_signature(query);
  bank.store(0, sig, fresh_docs(net_, 0, query));

  // Fast path: nothing changed anywhere.
  EXPECT_NE(bank.probe(0, sig), nullptr);

  // Bump the network-wide stamp via an unrelated node: the slow path
  // still validates (owner 0 alive, index unchanged) — and stays exact.
  const auto added = net_.add_document(5, corpus_.docs[0].counts);
  ASSERT_NE(bank.probe(0, sig), nullptr);
  bank.verify_strict(query, 0.0, *bank.probe(0, sig));
  net_.remove_document(5, added);

  // Change the owner's own index: the cached scores are stale now.
  const auto own = net_.add_document(0, corpus_.docs[0].counts);
  EXPECT_EQ(bank.probe(0, sig), nullptr);
  EXPECT_GE(bank.stats().invalidations, 1u);
  net_.remove_document(0, own);
}

TEST_F(ResultCacheTest, DepartureInvalidatesOwnedEntriesEverywhere) {
  ResultCacheBank bank(net_);
  const auto& query = corpus_.queries[0].vector;
  const auto sig = p2p::query_signature(query);
  const auto docs = fresh_docs(net_, 3, query);
  ASSERT_FALSE(docs.empty());
  bank.store(0, sig, docs);   // node 0 caches results owned by node 3
  bank.store(3, sig, docs);   // so does the owner itself
  ASSERT_EQ(bank.entry_count(0), 1u);

  net_.deactivate(3);
  bank.on_node_departed(3);
  EXPECT_EQ(bank.entry_count(0), 0u);
  EXPECT_EQ(bank.entry_count(3), 0u);
  EXPECT_EQ(bank.stats().invalidations, 2u);
  for (NodeId n = 0; n < net_.size(); ++n) {
    EXPECT_EQ(bank.dead_owner_docs(n), 0u);
  }
  net_.activate(3);
}

TEST_F(ResultCacheTest, LazyProbeRejectsDeadOwnerWithoutEagerHook) {
  // Even if the eager departure hook were not wired, the probe-side
  // validity rule must refuse to serve dead-owner results.
  ResultCacheBank bank(net_);
  const auto& query = corpus_.queries[0].vector;
  const auto sig = p2p::query_signature(query);
  bank.store(0, sig, fresh_docs(net_, 3, query));

  net_.deactivate(3);  // bumps content_stamp -> slow path -> owner dead
  EXPECT_EQ(bank.probe(0, sig), nullptr);
  EXPECT_EQ(bank.stats().invalidations, 1u);
  net_.activate(3);
}

TEST_F(ResultCacheTest, StoreRefusesDeadNodesDeadOwnersAndEmptySets) {
  ResultCacheBank bank(net_);
  const auto& query = corpus_.queries[0].vector;
  const auto sig = p2p::query_signature(query);
  const auto docs = fresh_docs(net_, 3, query);

  bank.store(0, sig, {});
  EXPECT_EQ(bank.entry_count(0), 0u);

  net_.deactivate(3);
  bank.store(0, sig, docs);  // owner 3 is dead: refused
  EXPECT_EQ(bank.entry_count(0), 0u);
  bank.store(3, sig, fresh_docs(net_, 0, query));  // node 3 is dead: refused
  EXPECT_EQ(bank.entry_count(3), 0u);
  net_.activate(3);
}

TEST_F(ResultCacheTest, TopKTruncationKeepsBestScoresInProbeOrder) {
  ResultCacheConfig cfg;
  cfg.top_k = 2;
  ResultCacheBank bank(net_, cfg);
  const auto& query = corpus_.queries[0].vector;
  const auto sig = p2p::query_signature(query);
  const auto docs = fresh_docs(net_, 0, query);
  ASSERT_EQ(docs.size(), 3u);  // 3 docs per node in the clustered corpus

  bank.store(0, sig, docs);
  const auto* cached = bank.probe(0, sig);
  ASSERT_NE(cached, nullptr);
  ASSERT_EQ(cached->size(), 2u);
  // Survivors are the two best-scoring docs, in their original order.
  double worst_kept = std::min((*cached)[0].score, (*cached)[1].score);
  for (const auto& d : docs) {
    const bool kept = std::any_of(
        cached->begin(), cached->end(),
        [&d](const CachedResultDoc& c) { return c.doc == d.doc; });
    if (!kept) {
      EXPECT_LE(d.score, worst_kept);
    }
  }
  // Truncated entries still pass the (subset) strict check.
  bank.verify_strict(query, 0.0, *cached);
}

TEST_F(ResultCacheTest, VerifyStrictThrowsOnTamperedScores) {
  ResultCacheBank bank(net_);
  const auto& query = corpus_.queries[0].vector;
  auto docs = fresh_docs(net_, 0, query);
  ASSERT_FALSE(docs.empty());
  bank.verify_strict(query, 0.0, docs);  // exact copy passes

  auto tampered = docs;
  tampered[0].score += 1e-9;
  EXPECT_THROW(bank.verify_strict(query, 0.0, tampered), util::CheckFailure);

  auto truncated = docs;
  truncated.pop_back();  // top_k == 0 demands the full per-owner run
  EXPECT_THROW(bank.verify_strict(query, 0.0, truncated), util::CheckFailure);
}

// --- Model-based property suite (seeds 0-50) -------------------------

/// Naive reference: an unbounded map mirroring every store and eager
/// invalidation, judged by the same public validity rule. The bank may
/// lose entries the reference keeps (capacity evictions) but must never
/// serve anything the reference would reject.
struct ReferenceModel {
  std::map<std::pair<NodeId, uint64_t>, ResultCache::Entry> entries;

  void store(NodeId node, QuerySignature sig, std::vector<CachedResultDoc> docs,
             CacheEntryMeta meta) {
    entries[{node, sig.value}] = {sig, std::move(docs), meta, 0, 0};
  }

  void on_node_departed(NodeId node) {
    for (auto it = entries.begin(); it != entries.end();) {
      const bool own = it->first.first == node;
      const bool references = std::any_of(
          it->second.docs.begin(), it->second.docs.end(),
          [node](const CachedResultDoc& d) { return d.owner == node; });
      it = (own || references) ? entries.erase(it) : std::next(it);
    }
  }

  const ResultCache::Entry* find(NodeId node, QuerySignature sig) const {
    const auto it = entries.find({node, sig.value});
    return it == entries.end() ? nullptr : &it->second;
  }
};

TEST_F(ResultCacheTest, ModelBasedRandomOps) {
  uint64_t total_hits = 0;
  for (uint64_t seed = 0; seed <= 50; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    util::Rng rng(util::derive_seed(seed, 900));

    ResultCacheConfig cfg;
    cfg.base_entries = 2;
    cfg.entries_per_decade = 1;
    cfg.max_entries = 4;
    cfg.ttl = (seed % 3 == 0) ? 40.0 : 0.0;
    ResultCacheBank bank(net_, cfg);
    double now = 0.0;
    bank.set_clock([&now] { return now; });
    ReferenceModel ref;

    // Query pool: the topic queries by signature.
    std::unordered_map<uint64_t, const ir::SparseVector*> queries;
    for (const auto& q : corpus_.queries) {
      queries[p2p::query_signature(q.vector).value] = &q.vector;
    }
    std::vector<ir::DocId> added_docs;
    std::pair<NodeId, QuerySignature> last_store{0, {}};
    bool stored_any = false;
    size_t evict_explained_misses = 0;

    for (size_t op = 0; op < 400; ++op) {
      const auto roll = rng.below(100);
      if (roll < 30) {  // store fresh results somewhere
        const auto& q = corpus_.queries[rng.index(corpus_.queries.size())].vector;
        const auto sig = p2p::query_signature(q);
        const auto holder = static_cast<NodeId>(rng.index(kNodes));
        const auto owner = static_cast<NodeId>(rng.index(kNodes));
        if (!net_.alive(holder) || !net_.alive(owner)) continue;
        const auto docs = fresh_docs(net_, owner, q);
        if (docs.empty()) continue;
        CacheEntryMeta meta;
        meta.content_stamp = net_.content_stamp();
        meta.stored_at = now;
        meta.expires_at = cfg.ttl > 0.0 ? now + cfg.ttl : 0.0;
        bank.store(holder, sig, docs);
        ref.store(holder, sig, docs, meta);
        last_store = {holder, sig};
        stored_any = true;
      } else if (roll < 70) {  // probe (biased toward the last store)
        NodeId node;
        QuerySignature sig;
        if (stored_any && rng.below(2) == 0) {
          node = last_store.first;
          sig = last_store.second;
        } else {
          node = static_cast<NodeId>(rng.index(kNodes));
          sig = p2p::query_signature(
              corpus_.queries[rng.index(corpus_.queries.size())].vector);
        }
        const auto* ref_entry = ref.find(node, sig);
        const bool ref_valid =
            ref_entry != nullptr &&
            p2p::validate_cache_entry(net_, ref_entry->docs, ref_entry->meta,
                                      now) == CacheValidity::kValid;
        const auto* hit = bank.probe(node, sig);
        if (hit != nullptr) {
          ++total_hits;
          // Every hit matches the reference byte for byte and reproduces
          // fresh evaluation exactly.
          ASSERT_TRUE(ref_valid);
          ASSERT_EQ(*hit, ref_entry->docs);
          bank.verify_strict(*queries.at(sig.value), 0.0, *hit);
        } else if (ref_valid) {
          // Only a capacity eviction may explain losing a valid entry.
          ++evict_explained_misses;
        }
      } else if (roll < 80) {  // advance the clock
        now += rng.uniform(1.0, 15.0);
      } else if (roll < 90) {  // mutate content (bumps content_stamp)
        const auto node = static_cast<NodeId>(rng.index(kNodes));
        if (!added_docs.empty() && rng.below(2) == 0) {
          const auto doc = added_docs.back();
          added_docs.pop_back();
          net_.remove_document(net_.document_owner(doc), doc);
        } else {
          added_docs.push_back(net_.add_document(
              node, corpus_.docs[rng.index(corpus_.docs.size())].counts));
        }
      } else {  // churn: departure with eager invalidation, or rejoin
        const auto node = static_cast<NodeId>(rng.index(kNodes));
        if (net_.alive(node)) {
          if (net_.alive_count() <= 2) continue;
          net_.deactivate(node);
          bank.on_node_departed(node);
          ref.on_node_departed(node);
        } else {
          net_.activate(node);
        }
      }

      // Standing invariants after every op.
      for (NodeId n = 0; n < net_.size(); ++n) {
        ASSERT_LE(bank.entry_count(n), bank.entry_capacity(n));
        ASSERT_EQ(bank.dead_owner_docs(n), 0u);
        if (!net_.alive(n)) {
          ASSERT_EQ(bank.entry_count(n), 0u);
        }
      }
    }

    EXPECT_LE(evict_explained_misses,
              bank.stats().evictions + bank.stats().invalidations);

    // Restore the fixture network for the next seed.
    for (const auto doc : added_docs) {
      net_.remove_document(net_.document_owner(doc), doc);
    }
    for (NodeId n = 0; n < net_.size(); ++n) {
      if (!net_.alive(n)) net_.activate(n);
    }
  }
  // The suite is non-vacuous: the biased probes hit often.
  EXPECT_GT(total_hits, 500u);
}

}  // namespace
}  // namespace ges::core
