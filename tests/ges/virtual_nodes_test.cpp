#include "ges/virtual_nodes.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "eval/metrics.hpp"
#include "ges/system.hpp"
#include "support/test_corpus.hpp"

namespace ges::core {
namespace {

/// A corpus where every node holds documents of TWO orthogonal topics —
/// the diverse-node scenario the virtual-node extension targets.
corpus::Corpus diverse_corpus(size_t nodes, size_t docs_per_topic = 5) {
  // Build on clustered_corpus with 2 topics, then merge node pairs:
  // node i of the result owns the docs of old nodes 2i (topic 0) and
  // 2i+1 (topic 1).
  auto base = test::clustered_corpus(nodes * 2, 2, docs_per_topic);
  corpus::Corpus merged;
  // Preserve the dictionary.
  for (size_t t = 0; t < base.dict.size(); ++t) {
    merged.dict.intern(base.dict.term(static_cast<ir::TermId>(t)));
  }
  merged.docs = base.docs;
  merged.queries = base.queries;
  merged.node_docs.resize(nodes);
  for (size_t n = 0; n < nodes * 2; ++n) {
    const auto target = static_cast<corpus::NodeIndex>(n / 2);
    for (const auto d : base.node_docs[n]) {
      merged.node_docs[target].push_back(d);
      merged.docs[d].node = target;
    }
  }
  return merged;
}

TEST(VirtualNodes, SplitsDiverseNodesByTopic) {
  const auto corpus = diverse_corpus(6);
  VirtualNodeParams params;
  params.max_virtual_per_node = 2;
  params.min_docs_per_virtual = 3;
  const auto mapping = build_virtual_corpus(corpus, params);

  EXPECT_EQ(mapping.physical_count(), 6u);
  EXPECT_EQ(mapping.virtual_count(), 12u);  // every node splits in two
  for (size_t p = 0; p < 6; ++p) {
    EXPECT_EQ(mapping.virtuals_of[p].size(), 2u);
  }
  // Each virtual node is topic-pure.
  for (p2p::NodeId v = 0; v < mapping.virtual_count(); ++v) {
    std::unordered_set<corpus::TopicId> topics;
    for (const auto d : mapping.virtual_corpus.node_docs[v]) {
      topics.insert(mapping.virtual_corpus.docs[d].topic);
    }
    EXPECT_EQ(topics.size(), 1u) << "virtual node " << v << " mixes topics";
  }
}

TEST(VirtualNodes, MappingIsConsistent) {
  const auto corpus = diverse_corpus(5);
  const auto mapping = build_virtual_corpus(corpus, VirtualNodeParams{});
  size_t docs_total = 0;
  for (p2p::NodeId v = 0; v < mapping.virtual_count(); ++v) {
    const p2p::NodeId p = mapping.physical_of[v];
    const auto& hosted = mapping.virtuals_of[p];
    EXPECT_NE(std::find(hosted.begin(), hosted.end(), v), hosted.end());
    for (const auto d : mapping.virtual_corpus.node_docs[v]) {
      EXPECT_EQ(mapping.virtual_corpus.docs[d].node, v);
      EXPECT_EQ(corpus.docs[d].node, p);  // doc stays on its physical node
      ++docs_total;
    }
  }
  EXPECT_EQ(docs_total, corpus.num_docs());
  // Judgments still valid: same DocIds.
  EXPECT_EQ(mapping.virtual_corpus.queries[0].relevant, corpus.queries[0].relevant);
}

TEST(VirtualNodes, SmallCollectionsNotSplit) {
  const auto corpus = diverse_corpus(4, /*docs_per_topic=*/2);  // 4 docs per node
  VirtualNodeParams params;
  params.min_docs_per_virtual = 4;  // 2*4 > 4 docs -> never split
  const auto mapping = build_virtual_corpus(corpus, params);
  EXPECT_EQ(mapping.virtual_count(), mapping.physical_count());
}

TEST(VirtualNodes, DeterministicInSeed) {
  const auto corpus = diverse_corpus(6);
  const auto a = build_virtual_corpus(corpus, VirtualNodeParams{});
  const auto b = build_virtual_corpus(corpus, VirtualNodeParams{});
  EXPECT_EQ(a.physical_of, b.physical_of);
}

TEST(VirtualNodes, ProjectionCollapsesCoHostedProbes) {
  const auto corpus = diverse_corpus(4);
  const auto mapping = build_virtual_corpus(corpus, VirtualNodeParams{});
  ASSERT_GE(mapping.virtuals_of[0].size(), 2u);

  p2p::SearchTrace trace;
  const auto v0 = mapping.virtuals_of[0][0];
  const auto v1 = mapping.virtuals_of[0][1];
  const auto other = mapping.virtuals_of[1][0];
  trace.probe_order = {v0, other, v1};
  trace.retrieved = {{mapping.virtual_corpus.node_docs[v1][0], 0.5, 2}};
  trace.walk_steps = 3;

  const auto projected = project_to_physical(trace, mapping);
  EXPECT_EQ(projected.probe_order, (std::vector<p2p::NodeId>{0, 1}));
  ASSERT_EQ(projected.retrieved.size(), 1u);
  EXPECT_EQ(projected.retrieved[0].probe_index, 0u);  // v1 collapses into probe 0
  EXPECT_EQ(projected.walk_steps, 3u);
}

TEST(VirtualNodes, GesRunsOnVirtualCorpus) {
  const auto corpus = diverse_corpus(10);
  const auto mapping = build_virtual_corpus(corpus, VirtualNodeParams{});

  GesBuildConfig config;
  config.seed = 3;
  GesSystem system(mapping.virtual_corpus, config);
  system.build();
  system.network().check_invariants();

  util::Rng rng(1);
  const auto& query = corpus.queries[0];
  const auto trace = system.search(query.vector, 0, rng);
  const auto projected = project_to_physical(trace, mapping);
  const eval::Judgment judgment(query.relevant);
  EXPECT_GT(eval::recall(projected, judgment), 0.9);
  // Physical probes never exceed physical nodes.
  EXPECT_LE(projected.probes(), mapping.physical_count());
}

}  // namespace
}  // namespace ges::core
