// Golden-trace byte-identity of the query data plane: with
// SearchOptions::use_workspace on or off, every engine must make exactly
// the same decisions — same probe order, same retrieved documents, same
// message counts — on the same seeds. Covered: the synchronous GesSearch
// (serial and through the parallel eval harness), the asynchronous
// message-level engine (with latency jitter, faults, and interleaved
// in-flight queries sharing the engine's workspace pool), and searches on
// a faulted + churned ScenarioRunner deployment.

#include <gtest/gtest.h>

#include <vector>

#include "eval/experiment.hpp"
#include "ges/async_search.hpp"
#include "ges/scenario.hpp"
#include "ges/topology_adaptation.hpp"
#include "support/test_corpus.hpp"

namespace ges::core {
namespace {

using p2p::NodeId;

SearchOptions with_workspace(SearchOptions options, bool on) {
  options.use_workspace = on;
  return options;
}

class WorkspaceEquivalenceTest : public ::testing::Test {
 protected:
  WorkspaceEquivalenceTest()
      : corpus_(test::clustered_corpus(36, 3)),
        net_(corpus_, test::uniform_capacities(corpus_), p2p::NetworkConfig{}) {
    util::Rng rng(11);
    p2p::bootstrap_random_graph(net_, 5.0, rng);
    TopologyAdaptation adapt(net_, GesParams{}, 13);
    adapt.run_rounds(8);
  }

  corpus::Corpus corpus_;
  p2p::Network net_;
};

TEST_F(WorkspaceEquivalenceTest, GesSearchTracesAreByteIdentical) {
  SearchOptions base;
  base.ttl = 40;
  std::vector<SearchOptions> variants = {base};
  variants.push_back(base);
  variants.back().capacity_aware = true;
  variants.back().supernode_threshold = 0.5;  // everyone is a supernode
  variants.push_back(base);
  variants.back().probe_budget = 7;
  variants.push_back(base);
  variants.back().max_responses = 5;
  variants.push_back(base);
  variants.back().flood_radius = 1;

  for (size_t v = 0; v < variants.size(); ++v) {
    const GesSearch on(net_, with_workspace(variants[v], true));
    const GesSearch off(net_, with_workspace(variants[v], false));
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      for (size_t q = 0; q < corpus_.queries.size(); ++q) {
        util::Rng rng_on(seed);
        util::Rng rng_off(seed);
        const auto initiator = static_cast<NodeId>((seed * 7 + q) % 36);
        const auto a = on.search(corpus_.queries[q].vector, initiator, rng_on);
        const auto b = off.search(corpus_.queries[q].vector, initiator, rng_off);
        EXPECT_TRUE(a == b) << "variant " << v << " seed " << seed << " query " << q;
        EXPECT_EQ(rng_on.next(), rng_off.next())
            << "rng streams diverged: variant " << v << " seed " << seed;
      }
    }
  }
}

TEST_F(WorkspaceEquivalenceTest, WorkspaceReportsEvalCountersLegacyDoesNot) {
  SearchOptions base;
  base.ttl = 40;
  const GesSearch on(net_, with_workspace(base, true));
  const GesSearch off(net_, with_workspace(base, false));
  util::Rng rng_on(3);
  util::Rng rng_off(3);
  const auto a = on.search(corpus_.queries[0].vector, 0, rng_on);
  const auto b = off.search(corpus_.queries[0].vector, 0, rng_off);
  EXPECT_TRUE(a == b);  // counters are diagnostics, not trace content
  EXPECT_GT(a.rel_evals, 0u);
  EXPECT_EQ(b.rel_evals, 0u);
  // Walks revisit nodes (flush-and-reuse), so the memo must actually hit.
  EXPECT_GT(a.rel_memo_hits, 0u);
}

TEST_F(WorkspaceEquivalenceTest, AsyncEnginesAgreeUnderFaultsAndInterleaving) {
  p2p::FaultPlan plan = p2p::FaultPlan::uniform(0.08, 991);
  plan.delay_rate = 0.05;
  plan.duplicate_rate = 0.03;
  p2p::FaultInjector faults(plan);

  SearchOptions base;
  base.ttl = 35;
  LatencyModel latency;  // default mean + jitter exercises rng-timed hops

  auto run_all = [&](bool workspace) {
    p2p::EventQueue queue;
    AsyncSearchEngine engine(net_, queue, with_workspace(base, workspace),
                             latency, &faults);
    // Several queries in flight at once: per-run workspaces from the pool
    // must not bleed state across interleaved executions.
    std::vector<AsyncQueryResult> results(6);
    for (size_t q = 0; q < results.size(); ++q) {
      const auto& query = corpus_.queries[q % corpus_.queries.size()].vector;
      engine.submit(query, static_cast<NodeId>(q * 5 % 36),
                    util::derive_seed(17, q),
                    [&results, q](const AsyncQueryResult& r) { results[q] = r; });
    }
    queue.run();
    EXPECT_EQ(engine.pending(), 0u);
    return results;
  };

  const auto on = run_all(true);
  const auto off = run_all(false);
  ASSERT_EQ(on.size(), off.size());
  for (size_t q = 0; q < on.size(); ++q) {
    EXPECT_TRUE(on[q].trace == off[q].trace) << "query " << q;
    EXPECT_EQ(on[q].submitted_at, off[q].submitted_at) << "query " << q;
    EXPECT_EQ(on[q].first_hit_at, off[q].first_hit_at) << "query " << q;
    EXPECT_EQ(on[q].completed_at, off[q].completed_at) << "query " << q;
  }
}

TEST(WorkspaceEquivalenceScenario, FaultedChurnedDeploymentTracesAgree) {
  const auto corpus = test::clustered_corpus(24, 3);
  ScenarioParams sp;
  sp.params.max_links = 6;
  sp.params.min_links = 2;
  sp.params.walk_ttl = 20;
  sp.faults = p2p::FaultPlan::uniform(0.1, util::derive_seed(5, 77));
  sp.faults.partition_rate = 0.05;
  sp.churn_enabled = true;
  sp.churn.mean_session = 60.0;
  sp.churn.mean_downtime = 25.0;
  sp.churn.bootstrap_links = 2;
  sp.churn.seed = util::derive_seed(5, 78);
  sp.rounds = 8;
  sp.seed = 5;

  ScenarioRunner runner(corpus, sp);
  runner.run();

  SearchOptions options;
  options.ttl = 30;
  const auto alive = runner.network().alive_nodes();
  ASSERT_FALSE(alive.empty());
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    util::Rng pick(util::derive_seed(seed, 80));
    const NodeId initiator = alive[pick.index(alive.size())];
    const auto& query = corpus.queries[seed % corpus.queries.size()].vector;
    util::Rng rng_on(seed);
    util::Rng rng_off(seed);
    const auto a =
        runner.search(query, initiator, with_workspace(options, true), rng_on);
    const auto b =
        runner.search(query, initiator, with_workspace(options, false), rng_off);
    EXPECT_TRUE(a == b) << "seed " << seed;
  }
}

TEST_F(WorkspaceEquivalenceTest, ParallelEvalHarnessAgreesWithWorkspace) {
  // per_query_recall_at_cost fans queries across the thread pool: each
  // worker reuses its own thread-local workspace. The recall vector must
  // match the workspace-off run exactly — same traces, any thread.
  auto searcher = [&](bool workspace) {
    return eval::Searcher([this, workspace](const corpus::Query& query,
                                            NodeId initiator, util::Rng& rng) {
      const GesSearch engine(net_, with_workspace(SearchOptions{}, workspace));
      return engine.search(query.vector, initiator, rng);
    });
  };
  const auto on = eval::per_query_recall_at_cost(corpus_, net_, searcher(true),
                                                 /*cost=*/0.5, /*seed=*/21);
  const auto off = eval::per_query_recall_at_cost(corpus_, net_, searcher(false),
                                                  /*cost=*/0.5, /*seed=*/21);
  ASSERT_EQ(on.size(), off.size());
  for (size_t i = 0; i < on.size(); ++i) {
    EXPECT_EQ(on[i], off[i]) << "query " << i;
  }
}

}  // namespace
}  // namespace ges::core
