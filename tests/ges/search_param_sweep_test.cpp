// Parameterized property sweep: the GES search invariants must hold for
// every node-vector size, flood radius and capacity mode combination.

#include <gtest/gtest.h>

#include <unordered_set>

#include "ges/system.hpp"
#include "support/test_corpus.hpp"

namespace ges::core {
namespace {

using Params = std::tuple<size_t /*vector size*/, size_t /*flood radius*/,
                          bool /*capacity aware*/>;

class SearchSweepTest : public ::testing::TestWithParam<Params> {};

TEST_P(SearchSweepTest, InvariantsHoldAcrossConfigurations) {
  const auto [vector_size, flood_radius, capacity_aware] = GetParam();
  const auto corpus = test::clustered_corpus(24, 3);

  GesBuildConfig config;
  config.seed = 11;
  config.net.node_vector_size = vector_size;
  config.params.flood_radius = flood_radius;
  config.params.capacity_aware_search = capacity_aware;
  if (capacity_aware) {
    config.capacities = p2p::CapacityProfile::gnutella();
    config.params.max_links = 128;
    config.params.capacity_constrained = true;
  }
  GesSystem system(corpus, config);
  system.build();
  system.network().check_invariants();

  util::Rng rng(3);
  for (const auto& query : corpus.queries) {
    const auto trace = system.search(query.vector, 0, rng);
    // Probes distinct and alive.
    std::unordered_set<p2p::NodeId> seen;
    for (const auto n : trace.probe_order) {
      EXPECT_TRUE(seen.insert(n).second);
      EXPECT_TRUE(system.network().alive(n));
    }
    // Retrieved documents live on their probing node, scored positive.
    for (const auto& r : trace.retrieved) {
      ASSERT_LT(r.probe_index, trace.probes());
      EXPECT_EQ(system.network().document_owner(r.doc),
                trace.probe_order[r.probe_index]);
      EXPECT_GT(r.score, 0.0);
    }
    // Flood radius 0 or >= 1 always yields consistent counters.
    if (trace.target_count == 0) {
      EXPECT_EQ(trace.flood_messages, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, SearchSweepTest,
    ::testing::Combine(::testing::Values<size_t>(0, 4, 16, 1000),
                       ::testing::Values<size_t>(0, 1, 3),
                       ::testing::Bool()));

}  // namespace
}  // namespace ges::core
