#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <vector>

#include "obs/export.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace ges::obs {
namespace {

TEST(MetricsRegistry, CountersAccumulateAndSnapshotSorted) {
  MetricsRegistry reg;
  Counter b = reg.counter("b.count");
  Counter a = reg.counter("a.count");
  a.add(3);
  b.add();
  b.add(4);

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 2u);
  EXPECT_EQ(snap.metrics[0].name, "a.count");  // sorted by name
  EXPECT_EQ(snap.metrics[1].name, "b.count");
  EXPECT_EQ(snap.counter("a.count"), 3u);
  EXPECT_EQ(snap.counter("b.count"), 5u);
  EXPECT_EQ(snap.counter("missing"), 0u);
}

TEST(MetricsRegistry, SameNameReturnsSameFamily) {
  MetricsRegistry reg;
  Counter a = reg.counter("x");
  Counter b = reg.counter("x");
  a.add(1);
  b.add(2);
  EXPECT_EQ(reg.snapshot().counter("x"), 3u);
}

TEST(MetricsRegistry, DefaultConstructedHandlesAreInert) {
  Counter c;
  Gauge g;
  Histogram h;
  c.add(5);
  g.set(1.0);
  h.add(0.5);  // no crash, no effect
}

TEST(MetricsRegistry, KindCollisionThrows) {
  MetricsRegistry reg;
  reg.counter("name");
  EXPECT_THROW(reg.gauge("name"), util::CheckFailure);
  EXPECT_THROW(reg.histogram("name", 0, 1, 4), util::CheckFailure);
}

TEST(MetricsRegistry, HistogramRebucketMismatchThrows) {
  MetricsRegistry reg;
  reg.histogram("h", 0.0, 10.0, 5);
  EXPECT_NO_THROW(reg.histogram("h", 0.0, 10.0, 5));  // idempotent
  EXPECT_THROW(reg.histogram("h", 0.0, 10.0, 6), util::CheckFailure);
  EXPECT_THROW(reg.histogram("h", 0.0, 20.0, 5), util::CheckFailure);
}

TEST(MetricsRegistry, HistogramBucketsClampAndIgnoreNan) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("h", 0.0, 10.0, 5);
  h.add(-100.0);  // clamps into bucket 0
  h.add(0.0);
  h.add(5.0);
  h.add(1e308);  // clamps into the last bucket
  h.add(std::numeric_limits<double>::infinity());
  h.add(std::numeric_limits<double>::quiet_NaN());  // ignored entirely

  const auto snap = reg.snapshot();
  const auto* m = snap.find("h");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kHistogram);
  EXPECT_EQ(m->value, 5u);  // NaN not counted
  ASSERT_EQ(m->buckets.size(), 5u);
  EXPECT_EQ(m->buckets[0], 2u);
  EXPECT_EQ(m->buckets[2], 1u);
  EXPECT_EQ(m->buckets[4], 2u);
}

TEST(MetricsRegistry, GaugeHoldsLastValue) {
  MetricsRegistry reg;
  Gauge g = reg.gauge("g");
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauge("g"), -2.25);
}

TEST(MetricsRegistry, ResetZeroesButKeepsHandles) {
  MetricsRegistry reg;
  Counter c = reg.counter("c");
  Histogram h = reg.histogram("h", 0.0, 1.0, 2);
  c.add(7);
  h.add(0.1);
  reg.reset();
  EXPECT_EQ(reg.snapshot().counter("c"), 0u);
  EXPECT_EQ(reg.snapshot().find("h")->value, 0u);
  c.add(2);  // the old handle still works
  h.add(0.9);
  EXPECT_EQ(reg.snapshot().counter("c"), 2u);
  EXPECT_EQ(reg.snapshot().find("h")->value, 1u);
}

// The determinism contract: however increments are spread over threads,
// a snapshot taken at the barrier is exactly the serial total.
TEST(MetricsRegistry, ParallelAddsMatchSerialExactly) {
  constexpr size_t kItems = 10000;

  MetricsRegistry serial_reg;
  Counter serial_c = serial_reg.counter("c");
  Histogram serial_h = serial_reg.histogram("h", 0.0, 100.0, 10);
  for (size_t i = 0; i < kItems; ++i) {
    serial_c.add(i % 7);
    serial_h.add(static_cast<double>(i % 101));
  }

  MetricsRegistry parallel_reg;
  Counter parallel_c = parallel_reg.counter("c");
  Histogram parallel_h = parallel_reg.histogram("h", 0.0, 100.0, 10);
  util::global_pool().parallel_for(kItems, [&](size_t i) {
    parallel_c.add(i % 7);
    parallel_h.add(static_cast<double>(i % 101));
  });

  const auto a = serial_reg.snapshot();
  const auto b = parallel_reg.snapshot();
  EXPECT_EQ(a.counter("c"), b.counter("c"));
  EXPECT_EQ(a.find("h")->buckets, b.find("h")->buckets);
  EXPECT_EQ(a.find("h")->value, b.find("h")->value);

  // And the exported JSON documents are byte-identical.
  std::ostringstream ja;
  std::ostringstream jb;
  write_metrics_json(a, ja);
  write_metrics_json(b, jb);
  EXPECT_EQ(ja.str(), jb.str());
}

TEST(Export, MetricsJsonSchemaAndPrometheusNames) {
  MetricsRegistry reg;
  reg.counter("p2p.walk.hops").add(12);
  reg.gauge("ges.adapt.satisfaction").set(0.5);
  reg.histogram("ges.search.probes_per_query", 0.0, 8.0, 4).add(3.0);

  std::ostringstream json;
  write_metrics_json(reg.snapshot(), json);
  const std::string doc = json.str();
  EXPECT_NE(doc.find("\"schema\": \"ges.metrics.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"p2p.walk.hops\""), std::string::npos);
  EXPECT_NE(doc.find("\"kind\": \"histogram\""), std::string::npos);

  EXPECT_EQ(prometheus_name("p2p.walk.hops"), "ges_p2p_walk_hops");
  std::ostringstream prom;
  write_prometheus(reg.snapshot(), prom);
  const std::string text = prom.str();
  EXPECT_NE(text.find("ges_p2p_walk_hops 12"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ges_p2p_walk_hops counter"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("ges_ges_search_probes_per_query_count 1"), std::string::npos);
}

}  // namespace
}  // namespace ges::obs
