// The autopsy-vs-ground-truth suite: every retained causal event graph
// must be reconstructible into the SearchTrace the engine itself
// reported. Across a (seed x fault-rate x churn) grid of 60 sync
// queries plus an async batch, each autopsy's cost block equals the
// trace field for field, and — since nothing was capped — the event
// graph re-derives the trace exactly: the probe/cache-hit sequence is
// probe_order, walk-hop events count walk_steps, flood-send events
// count flood_messages, and fault events match the injector's own
// per-channel counter deltas. A hook drifting from its engine's counter
// placement (recording after a fault check it should precede, or vice
// versa) fails here, not in production autopsies.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ges/async_search.hpp"
#include "ges/scenario.hpp"
#include "ges/topology_adaptation.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "support/test_corpus.hpp"

namespace ges::core {
namespace {

#if !GES_OBS

TEST(AutopsyEquivalence, SkippedWithoutInstrumentation) {
  GTEST_SKIP() << "built with -DGES_OBS_INSTRUMENT=OFF";
}

#else

using obs::FlightEvent;
using obs::FlightEventKind;
using obs::QueryAutopsy;
using p2p::NodeId;

struct EventCounts {
  uint64_t probes = 0;
  uint64_t cache_hits = 0;
  uint64_t walk_hops = 0;
  uint64_t flood_sends = 0;
  uint64_t fault_drops_walk = 0;
  uint64_t fault_drops_flood = 0;
  uint64_t fault_blocks = 0;
  std::vector<NodeId> probe_sequence;  // probe + cache-hit nodes, in order
};

EventCounts count_events(const QueryAutopsy& a) {
  EventCounts c;
  for (const FlightEvent& ev : a.events) {
    switch (ev.kind) {
      case FlightEventKind::kProbe:
        ++c.probes;
        c.probe_sequence.push_back(ev.from);
        break;
      case FlightEventKind::kCacheProbe:
        if (ev.flag == 1) {  // hit: the node answered from its cache
          ++c.cache_hits;
          c.probe_sequence.push_back(ev.from);
        }
        break;
      case FlightEventKind::kWalkHop:
        ++c.walk_hops;
        break;
      case FlightEventKind::kFloodSend:
        ++c.flood_sends;
        break;
      case FlightEventKind::kFaultDrop:
        if (ev.channel == 1) ++c.fault_drops_walk;
        if (ev.channel == 2) ++c.fault_drops_flood;
        break;
      case FlightEventKind::kFaultBlock:
        ++c.fault_blocks;
        break;
      default:
        break;
    }
  }
  return c;
}

void expect_autopsy_matches_trace(const QueryAutopsy& a,
                                  const p2p::SearchTrace& trace,
                                  const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.events_dropped, 0u) << "raise max_events_per_query";

  // Cost block == SearchTrace, field for field.
  EXPECT_EQ(a.cost.probes, trace.probes());
  EXPECT_EQ(a.cost.walk_steps, trace.walk_steps);
  EXPECT_EQ(a.cost.flood_messages, trace.flood_messages);
  EXPECT_EQ(a.cost.cache_hits, trace.cache_hits);
  EXPECT_EQ(a.cost.targets, trace.target_count);
  EXPECT_EQ(a.cost.retrieved_docs, trace.retrieved.size());
  EXPECT_EQ(a.cost.rel_evals, trace.rel_evals);
  EXPECT_EQ(a.cost.rel_memo_hits, trace.rel_memo_hits);

  // Event graph re-derives the trace.
  const EventCounts c = count_events(a);
  EXPECT_EQ(c.probes + c.cache_hits, trace.probes());
  EXPECT_EQ(c.cache_hits, trace.cache_hits);
  EXPECT_EQ(c.walk_hops, trace.walk_steps);
  EXPECT_EQ(c.flood_sends, trace.flood_messages);
  EXPECT_EQ(c.probe_sequence, trace.probe_order);

  // Structural sanity the validator also enforces on the JSON side.
  ASSERT_FALSE(a.events.empty());
  EXPECT_EQ(a.events[0].kind, FlightEventKind::kIssued);
  EXPECT_EQ(a.events[0].parent, -1);
  for (size_t i = 1; i < a.events.size(); ++i) {
    EXPECT_GE(a.events[i].parent, 0);
    EXPECT_LT(a.events[i].parent, static_cast<int32_t>(i));
  }
  EXPECT_EQ(a.events_recorded, a.events.size());
}

/// Arm the global recorder to retain every query with no event cap.
void arm_recorder() {
  obs::flight().reset();
  obs::FlightRecorderConfig config;
  config.worst_k = 0;
  config.sample_capacity = 512;
  config.sample_every = 1;
  config.max_events_per_query = 65536;
  obs::flight().set_config(config);
  obs::flight().set_enabled(true);
  obs::global().set_enabled(true);
}

void disarm_recorder() {
  obs::flight().set_enabled(false);
  obs::flight().reset();
  obs::global().set_enabled(false);
  obs::global().reset();
}

TEST(AutopsyEquivalence, SyncQueriesAcrossFaultAndChurnGrid) {
  const auto corpus = test::clustered_corpus(24, 3);
  size_t queries_checked = 0;
  for (const uint64_t seed : {11u, 12u}) {
    for (const double fault_rate : {0.0, 0.05, 0.2}) {
      for (const bool churn : {false, true}) {
        ScenarioParams sp;
        sp.params.max_links = 6;
        sp.params.min_links = 2;
        sp.params.walk_ttl = 20;
        if (fault_rate > 0.0) {
          sp.faults =
              p2p::FaultPlan::uniform(fault_rate, util::derive_seed(seed, 77));
          sp.faults.partition_rate = fault_rate;
        }
        sp.churn_enabled = churn;
        sp.churn.mean_session = 60.0;
        sp.churn.mean_downtime = 25.0;
        sp.churn.bootstrap_links = 2;
        sp.churn.seed = util::derive_seed(seed, 78);
        sp.rounds = 6;
        sp.seed = seed;

        arm_recorder();
        ScenarioRunner runner(corpus, sp);
        runner.run();

        util::Rng rng(util::derive_seed(seed, 80));
        SearchOptions sopt;
        sopt.ttl = 25;
        sopt.use_result_cache = true;
        std::vector<p2p::SearchTrace> traces;
        std::vector<std::vector<uint64_t>> fault_deltas;
        for (size_t q = 0; q < 5; ++q) {
          const auto alive = runner.network().alive_nodes();
          const NodeId initiator = alive[rng.index(alive.size())];
          const auto& query = corpus.queries[q % corpus.queries.size()].vector;
          const auto before = obs::global().metrics().snapshot();
          traces.push_back(runner.search(query, initiator, sopt, rng));
          const auto after = obs::global().metrics().snapshot();
          fault_deltas.push_back(
              {after.counter("p2p.fault.dropped.walk") -
                   before.counter("p2p.fault.dropped.walk"),
               after.counter("p2p.fault.dropped.flood") -
                   before.counter("p2p.fault.dropped.flood"),
               after.counter("p2p.fault.blocked") -
                   before.counter("p2p.fault.blocked")});
        }

        const auto kept = obs::flight().retained();
        ASSERT_EQ(kept.size(), traces.size());
        for (size_t q = 0; q < traces.size(); ++q) {
          const QueryAutopsy& a = kept[q].autopsy;
          EXPECT_EQ(a.ordinal, q);
          EXPECT_FALSE(a.async);
          const std::string label = "seed=" + std::to_string(seed) +
                                    " faults=" + std::to_string(fault_rate) +
                                    " churn=" + std::to_string(churn) +
                                    " query=" + std::to_string(q);
          expect_autopsy_matches_trace(a, traces[q], label);
          // Fault events match the injector's own counters for this
          // query (queries run serially, so the deltas are exact).
          const EventCounts c = count_events(a);
          SCOPED_TRACE(label);
          EXPECT_EQ(c.fault_drops_walk, fault_deltas[q][0]);
          EXPECT_EQ(c.fault_drops_flood, fault_deltas[q][1]);
          EXPECT_EQ(c.fault_blocks, fault_deltas[q][2]);
          if (fault_rate == 0.0) {
            EXPECT_EQ(c.fault_drops_walk + c.fault_drops_flood + c.fault_blocks,
                      0u);
          }
        }
        queries_checked += traces.size();
        disarm_recorder();
      }
    }
  }
  EXPECT_GE(queries_checked, 50u);
}

TEST(AutopsyEquivalence, AsyncQueriesMatchTheirResultTraces) {
  const auto corpus = test::clustered_corpus(24, 3);
  p2p::Network net(corpus, test::uniform_capacities(corpus),
                   p2p::NetworkConfig{});
  util::Rng boot_rng(1);
  p2p::bootstrap_random_graph(net, 5.0, boot_rng);
  TopologyAdaptation adapt(net, GesParams{}, 7);
  adapt.run_rounds(8);

  p2p::FaultPlan plan = p2p::FaultPlan::uniform(0.1, 99);
  plan.delay_rate = 0.2;
  p2p::FaultInjector faults(plan);

  arm_recorder();
  p2p::EventQueue queue;
  SearchOptions sopt;
  sopt.ttl = 25;
  AsyncSearchEngine engine(net, queue, sopt, LatencyModel{}, &faults);
  std::vector<AsyncQueryResult> results;
  for (size_t q = 0; q < 5; ++q) {
    engine.submit(corpus.queries[q % corpus.queries.size()].vector,
                  static_cast<NodeId>(q % net.size()), 1000 + q,
                  [&](const AsyncQueryResult& r) { results.push_back(r); });
  }
  queue.run();
  ASSERT_EQ(results.size(), 5u);

  const auto kept = obs::flight().retained();
  ASSERT_EQ(kept.size(), 5u);
  for (size_t q = 0; q < kept.size(); ++q) {
    const QueryAutopsy& a = kept[q].autopsy;
    EXPECT_TRUE(a.async);
    EXPECT_NE(a.guid, 0u);
    // Completion order can differ from submission order under faults;
    // match by GUID.
    const AsyncQueryResult* result = nullptr;
    for (const auto& r : results) {
      if (r.guid == a.guid) result = &r;
    }
    ASSERT_NE(result, nullptr) << "autopsy guid " << a.guid;
    expect_autopsy_matches_trace(a, result->trace,
                                 "async query ordinal " + std::to_string(q));
  }
  disarm_recorder();
}

#endif  // GES_OBS

}  // namespace
}  // namespace ges::core
