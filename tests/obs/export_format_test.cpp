// Locks the Prometheus text exposition byte for byte. The format is an
// external contract (scraped, not parsed by us), so regressions here are
// invisible to the JSON validator: a "null" sample value or a drifting
// bucket edge makes a scrape silently unparsable or splits a histogram
// series between runs. The audit fixes pinned here:
//   * every metric carries a HELP line naming the registry metric,
//   * non-finite gauges are spelled NaN / +Inf / -Inf (never "null"),
//   * the last finite bucket edge is the histogram's upper bound exactly.

#include <cmath>
#include <limits>
#include <sstream>

#include "gtest/gtest.h"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace ges::obs {
namespace {

std::string prom_text(const MetricsRegistry& reg) {
  std::ostringstream os;
  write_prometheus(reg.snapshot(), os);
  return os.str();
}

TEST(ExportFormat, PrometheusExactText) {
  MetricsRegistry reg;
  reg.counter("p2p.walk.hops").add(12);
  reg.gauge("ges.adapt.satisfaction").set(0.5);
  reg.histogram("ges.search.probes_per_query", 0.0, 8.0, 4).add(3.0);

  // Snapshot order is sorted by name; every family is HELP + TYPE +
  // samples with no blank lines.
  EXPECT_EQ(prom_text(reg),
            "# HELP ges_ges_adapt_satisfaction GES registry metric "
            "ges.adapt.satisfaction\n"
            "# TYPE ges_ges_adapt_satisfaction gauge\n"
            "ges_ges_adapt_satisfaction 0.5\n"
            "# HELP ges_ges_search_probes_per_query GES registry metric "
            "ges.search.probes_per_query\n"
            "# TYPE ges_ges_search_probes_per_query histogram\n"
            "ges_ges_search_probes_per_query_bucket{le=\"2\"} 0\n"
            "ges_ges_search_probes_per_query_bucket{le=\"4\"} 1\n"
            "ges_ges_search_probes_per_query_bucket{le=\"6\"} 1\n"
            "ges_ges_search_probes_per_query_bucket{le=\"8\"} 1\n"
            "ges_ges_search_probes_per_query_bucket{le=\"+Inf\"} 1\n"
            "ges_ges_search_probes_per_query_count 1\n"
            "# HELP ges_p2p_walk_hops GES registry metric p2p.walk.hops\n"
            "# TYPE ges_p2p_walk_hops counter\n"
            "ges_p2p_walk_hops 12\n");
}

TEST(ExportFormat, NonFiniteGaugesUseExpositionLiterals) {
  MetricsRegistry reg;
  reg.gauge("a.nan").set(std::numeric_limits<double>::quiet_NaN());
  reg.gauge("b.pos_inf").set(std::numeric_limits<double>::infinity());
  reg.gauge("c.neg_inf").set(-std::numeric_limits<double>::infinity());

  const std::string text = prom_text(reg);
  EXPECT_NE(text.find("ges_a_nan NaN\n"), std::string::npos) << text;
  EXPECT_NE(text.find("ges_b_pos_inf +Inf\n"), std::string::npos) << text;
  EXPECT_NE(text.find("ges_c_neg_inf -Inf\n"), std::string::npos) << text;
  // "null" is JSON vocabulary; in the exposition format it poisons the
  // whole scrape.
  EXPECT_EQ(text.find("null"), std::string::npos) << text;
}

TEST(ExportFormat, JsonKeepsNullForNonFiniteGauges) {
  // The JSON exporter has the opposite constraint: NaN/Inf are not JSON.
  MetricsRegistry reg;
  reg.gauge("a.nan").set(std::numeric_limits<double>::quiet_NaN());
  std::ostringstream os;
  write_metrics_json(reg.snapshot(), os);
  EXPECT_NE(os.str().find("\"value\": null"), std::string::npos) << os.str();
}

TEST(ExportFormat, LastBucketEdgeIsExactlyHi) {
  // [0, 0.3) in 3 buckets: accumulating lo + width*(b+1) lands on
  // 0.30000000000000004; the edge must be the configured bound exactly.
  MetricsRegistry reg;
  reg.histogram("h", 0.0, 0.3, 3).add(0.25);
  const std::string text = prom_text(reg);
  EXPECT_NE(text.find("ges_h_bucket{le=\"0.3\"} 1\n"), std::string::npos)
      << text;
}

TEST(ExportFormat, HistogramBucketSeriesAreCumulative) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("h", 0.0, 4.0, 4);
  h.add(0.5);  // bucket 0
  h.add(1.5);  // bucket 1
  h.add(1.6);  // bucket 1
  h.add(9.0);  // clamped into the last bucket
  EXPECT_EQ(prom_text(reg),
            "# HELP ges_h GES registry metric h\n"
            "# TYPE ges_h histogram\n"
            "ges_h_bucket{le=\"1\"} 1\n"
            "ges_h_bucket{le=\"2\"} 3\n"
            "ges_h_bucket{le=\"3\"} 3\n"
            "ges_h_bucket{le=\"4\"} 4\n"
            "ges_h_bucket{le=\"+Inf\"} 4\n"
            "ges_h_count 4\n");
}

TEST(ExportFormat, NameSanitization) {
  EXPECT_EQ(prometheus_name("p2p.walk.hops"), "ges_p2p_walk_hops");
  EXPECT_EQ(prometheus_name("a-b c/d"), "ges_a_b_c_d");
}

}  // namespace
}  // namespace ges::obs
