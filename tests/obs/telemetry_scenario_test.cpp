// Scenario-level tests of the telemetry layer's two core guarantees:
//
//  1. Observation-only: enabling telemetry changes nothing about the
//     simulation — network snapshots and search traces are byte-identical
//     with telemetry on and off (golden-trace test).
//  2. Deterministic: two same-seed runs (including under parallel
//     adaptation rounds) export byte-identical metrics and trace JSON,
//     and the counters agree exactly with the simulation's own ground
//     truth (AdaptationRoundStats, heartbeat/churn tallies, SearchTrace).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ges/scenario.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "p2p/network_snapshot.hpp"
#include "support/test_corpus.hpp"

namespace ges::core {
namespace {

#if !GES_OBS

TEST(TelemetryScenario, SkippedWithoutInstrumentation) {
  GTEST_SKIP() << "built with -DGES_OBS_INSTRUMENT=OFF";
}

#else

using p2p::FaultPlan;
using p2p::NodeId;

constexpr size_t kNodes = 24;
constexpr size_t kTopics = 3;

ScenarioParams scenario_params(uint64_t seed, bool churn, bool parallel) {
  ScenarioParams sp;
  sp.params.max_links = 6;
  sp.params.min_links = 2;
  sp.params.walk_ttl = 20;
  sp.params.parallel_rounds = parallel;
  sp.faults = FaultPlan::uniform(0.1, util::derive_seed(seed, 77));
  sp.faults.delay_rate = 0.05;
  sp.faults.duplicate_rate = 0.02;
  sp.faults.partition_rate = 0.1;
  sp.churn_enabled = churn;
  sp.churn.mean_session = 60.0;
  sp.churn.mean_downtime = 25.0;
  sp.churn.bootstrap_links = 2;
  sp.churn.seed = util::derive_seed(seed, 78);
  sp.rounds = 10;
  sp.seed = seed;
  return sp;
}

struct RunResult {
  std::string snapshot;
  std::vector<p2p::SearchTrace> traces;
  std::string metrics_json;
  std::string trace_json;
  AdaptationRoundStats stats;
  size_t beats = 0;
  size_t heartbeats_sent = 0;
  size_t heartbeats_lost = 0;
  size_t departures = 0;
  size_t arrivals = 0;
  obs::MetricsSnapshot metrics;
  size_t trace_events = 0;
};

/// Run one full scenario + 5 queries; telemetry state is reset first so
/// the exported artifacts cover exactly this run.
RunResult run_scenario(const corpus::Corpus& corpus, const ScenarioParams& sp,
                       bool telemetry) {
  obs::global().reset();
  obs::global().set_enabled(telemetry);
  RunResult out;
  {
    ScenarioRunner runner(corpus, sp);
    runner.run();
    util::Rng rng(util::derive_seed(sp.seed, 80));
    SearchOptions sopt;
    sopt.ttl = 25;
    for (size_t q = 0; q < 5; ++q) {
      const auto alive = runner.network().alive_nodes();
      const NodeId initiator = alive[rng.index(alive.size())];
      const auto& query = corpus.queries[q % corpus.queries.size()].vector;
      out.traces.push_back(runner.search(query, initiator, sopt, rng));
    }
    std::ostringstream snap;
    p2p::save_network_snapshot(runner.network(), snap);
    out.snapshot = snap.str();
    out.stats = runner.total_stats();
    out.beats = runner.heartbeats().beats();
    out.heartbeats_sent = runner.heartbeats().heartbeats_sent();
    out.heartbeats_lost = runner.heartbeats().heartbeats_lost();
    if (runner.churn() != nullptr) {
      out.departures = runner.churn()->departures();
      out.arrivals = runner.churn()->arrivals();
    }
  }
  out.metrics = obs::global().metrics().snapshot();
  std::ostringstream mj;
  obs::write_metrics_json(out.metrics, mj);
  out.metrics_json = mj.str();
  std::ostringstream tj;
  obs::global().trace().export_chrome_trace(tj);
  out.trace_json = tj.str();
  out.trace_events = obs::global().trace().size();
  obs::global().set_enabled(false);
  return out;
}

TEST(TelemetryScenario, EnablingTelemetryChangesNoSimulationOutput) {
  const auto corpus = test::clustered_corpus(kNodes, kTopics);
  const ScenarioParams sp = scenario_params(42, /*churn=*/true, /*parallel=*/false);
  const RunResult off = run_scenario(corpus, sp, /*telemetry=*/false);
  const RunResult on = run_scenario(corpus, sp, /*telemetry=*/true);

  EXPECT_EQ(off.snapshot, on.snapshot);
  EXPECT_EQ(off.departures, on.departures);
  EXPECT_EQ(off.arrivals, on.arrivals);
  ASSERT_EQ(off.traces.size(), on.traces.size());
  for (size_t i = 0; i < off.traces.size(); ++i) {
    EXPECT_TRUE(off.traces[i] == on.traces[i]) << "trace " << i;
  }

  // The disabled run recorded nothing; the enabled run recorded plenty.
  EXPECT_EQ(off.trace_events, 0u);
  EXPECT_EQ(off.metrics.counter("ges.adapt.rounds"), 0u);
  EXPECT_GT(on.trace_events, 0u);
  EXPECT_EQ(on.metrics.counter("ges.adapt.rounds"), sp.rounds);
}

TEST(TelemetryScenario, SameSeedRunsExportByteIdenticalArtifacts) {
  const auto corpus = test::clustered_corpus(kNodes, kTopics);
  const ScenarioParams sp = scenario_params(7, /*churn=*/true, /*parallel=*/false);
  const RunResult a = run_scenario(corpus, sp, /*telemetry=*/true);
  const RunResult b = run_scenario(corpus, sp, /*telemetry=*/true);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
}

TEST(TelemetryScenario, ParallelRoundsExportMatchesSerial) {
  // Counters are integer-only and sharded; the trace records only from
  // serial contexts — so the parallel plan phase must not perturb a
  // single exported byte.
  const auto corpus = test::clustered_corpus(kNodes, kTopics);
  const ScenarioParams serial =
      scenario_params(9, /*churn=*/false, /*parallel=*/false);
  const ScenarioParams parallel =
      scenario_params(9, /*churn=*/false, /*parallel=*/true);
  const RunResult a = run_scenario(corpus, serial, /*telemetry=*/true);
  const RunResult b = run_scenario(corpus, parallel, /*telemetry=*/true);
  EXPECT_EQ(a.snapshot, b.snapshot);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
}

TEST(TelemetryScenario, CountersMatchSimulationGroundTruth) {
  const auto corpus = test::clustered_corpus(kNodes, kTopics);
  const ScenarioParams sp = scenario_params(3, /*churn=*/true, /*parallel=*/false);
  const RunResult r = run_scenario(corpus, sp, /*telemetry=*/true);

  // Adaptation: the exported counters are exactly the summed round stats.
  EXPECT_EQ(r.metrics.counter("ges.adapt.rounds"), sp.rounds);
  EXPECT_EQ(r.metrics.counter("ges.adapt.walk_messages"), r.stats.walk_messages);
  EXPECT_EQ(r.metrics.counter("ges.adapt.handshake_messages"),
            r.stats.handshake_messages);
  EXPECT_EQ(r.metrics.counter("ges.adapt.handshake_aborts"),
            r.stats.handshake_aborts);
  EXPECT_EQ(r.metrics.counter("ges.adapt.handshake_deaths"),
            r.stats.handshake_deaths);
  EXPECT_EQ(r.metrics.counter("ges.adapt.backoff_skips"), r.stats.backoff_skips);
  EXPECT_EQ(r.metrics.counter("ges.adapt.gossip_messages"),
            r.stats.gossip_messages);
  EXPECT_EQ(r.metrics.counter("ges.adapt.semantic_links_added"),
            r.stats.semantic_links_added);
  EXPECT_EQ(r.metrics.counter("ges.adapt.links_reclassified"),
            r.stats.links_reclassified);

  // Heartbeats and churn: counters equal the processes' own tallies.
  EXPECT_EQ(r.metrics.counter("p2p.heartbeat.beats"), r.beats);
  EXPECT_EQ(r.metrics.counter("p2p.heartbeat.sent"), r.heartbeats_sent);
  EXPECT_EQ(r.metrics.counter("p2p.heartbeat.lost"), r.heartbeats_lost);
  EXPECT_EQ(r.metrics.counter("p2p.churn.departures"), r.departures);
  EXPECT_EQ(r.metrics.counter("p2p.churn.arrivals"), r.arrivals);

  // Queries: counters equal the summed SearchTrace ground truth.
  size_t walk_steps = 0;
  size_t flood_messages = 0;
  size_t probes = 0;
  size_t retrieved = 0;
  for (const auto& t : r.traces) {
    walk_steps += t.walk_steps;
    flood_messages += t.flood_messages;
    probes += t.probes();
    retrieved += t.retrieved.size();
  }
  EXPECT_EQ(r.metrics.counter("ges.search.queries"), r.traces.size());
  EXPECT_EQ(r.metrics.counter("ges.search.walk_steps"), walk_steps);
  EXPECT_EQ(r.metrics.counter("ges.search.flood_messages"), flood_messages);
  EXPECT_EQ(r.metrics.counter("ges.search.probes"), probes);
  EXPECT_EQ(r.metrics.counter("ges.search.retrieved_docs"), retrieved);

  // The trace carries spans for every taxonomy bucket the run exercised.
  size_t heartbeat_spans = 0;
  size_t handshake_spans = 0;
  size_t round_spans = 0;
  size_t query_spans = 0;
  size_t churn_instants = 0;
  for (const auto& ev : obs::global().trace().events()) {
    if (ev.category == "replica" && ev.name == "heartbeat") ++heartbeat_spans;
    if (ev.category == "adapt" && ev.name == "handshake") ++handshake_spans;
    if (ev.category == "scenario" && ev.name == "round") ++round_spans;
    if (ev.category == "search" && ev.name == "query") ++query_spans;
    if (ev.category == "churn") ++churn_instants;
  }
  EXPECT_EQ(round_spans, sp.rounds);
  EXPECT_EQ(query_spans, r.traces.size());
  EXPECT_EQ(heartbeat_spans, r.beats);
  EXPECT_GT(handshake_spans, 0u);
  EXPECT_EQ(churn_instants, r.departures + r.arrivals);

  // Fault decisions show up per channel, consistent with the injector.
  uint64_t dropped = 0;
  for (const char* ch : {"walk", "flood", "handshake", "heartbeat", "gossip"}) {
    dropped += r.metrics.counter(std::string("p2p.fault.dropped.") + ch);
  }
  EXPECT_GT(dropped, 0u);
}

TEST(TelemetryScenario, TelemetryOutWritesAllThreeArtifacts) {
  const auto corpus = test::clustered_corpus(kNodes, kTopics);
  obs::global().reset();
  ScenarioParams sp = scenario_params(5, /*churn=*/false, /*parallel=*/false);
  sp.rounds = 4;
  const std::string prefix = ::testing::TempDir() + "/ges_telemetry_out";
  sp.telemetry_out = prefix;  // enables telemetry on construction
  {
    ScenarioRunner runner(corpus, sp);
    EXPECT_TRUE(obs::enabled());
    runner.run();
  }
  obs::global().set_enabled(false);

  for (const char* suffix : {".metrics.json", ".metrics.prom", ".trace.json"}) {
    const std::string path = prefix + suffix;
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_FALSE(content.str().empty()) << path;
    if (std::string(suffix) == ".metrics.json") {
      EXPECT_NE(content.str().find("ges.metrics.v1"), std::string::npos);
      EXPECT_NE(content.str().find("ges.adapt.rounds"), std::string::npos);
    }
    if (std::string(suffix) == ".trace.json") {
      EXPECT_NE(content.str().find("traceEvents"), std::string::npos);
    }
    std::remove(path.c_str());
  }
}

#endif  // GES_OBS

}  // namespace
}  // namespace ges::core
