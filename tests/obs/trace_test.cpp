#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace ges::obs {
namespace {

TEST(TraceRecorder, RecordsInOrder) {
  TraceRecorder rec(8);
  rec.record_complete("round", "scenario", 1.0, 0.5, 0);
  rec.record_instant("join", "churn", 2.0, 7);
  ASSERT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.dropped(), 0u);

  const auto events = rec.events();
  EXPECT_EQ(events[0].name, "round");
  EXPECT_EQ(events[0].type, TraceEvent::Type::kComplete);
  EXPECT_DOUBLE_EQ(events[0].ts, 1.0);
  EXPECT_DOUBLE_EQ(events[0].dur, 0.5);
  EXPECT_EQ(events[1].name, "join");
  EXPECT_EQ(events[1].type, TraceEvent::Type::kInstant);
  EXPECT_EQ(events[1].track, 7u);
}

TEST(TraceRecorder, RingOverwritesOldestAndCountsDrops) {
  TraceRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.record_instant("e" + std::to_string(i), "t", static_cast<double>(i), 0);
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  const auto events = rec.events();  // oldest retained first
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "e6");
  EXPECT_EQ(events[3].name, "e9");
}

TEST(TraceRecorder, ClearAndSetCapacity) {
  TraceRecorder rec(4);
  rec.record_instant("a", "t", 0.0, 0);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  rec.set_capacity(2);
  EXPECT_EQ(rec.capacity(), 2u);
  rec.record_instant("b", "t", 0.0, 0);
  rec.record_instant("c", "t", 0.0, 0);
  rec.record_instant("d", "t", 0.0, 0);
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.events()[0].name, "c");
}

TEST(TraceRecorder, ChromeExportShape) {
  TraceRecorder rec(8);
  rec.record_complete("heartbeat", "replica", 5.0, 0.0, 3, {{"sent", 2.0}});
  rec.record_instant("leave", "churn", 6.5, 11);

  std::ostringstream os;
  rec.export_chrome_trace(os);
  const std::string doc = os.str();

  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);   // complete
  EXPECT_NE(doc.find("\"ph\": \"i\""), std::string::npos);   // instant
  EXPECT_NE(doc.find("\"name\": \"heartbeat\""), std::string::npos);
  EXPECT_NE(doc.find("\"cat\": \"replica\""), std::string::npos);
  // Sim seconds -> microseconds.
  EXPECT_NE(doc.find("\"ts\": 5000000"), std::string::npos);
  EXPECT_NE(doc.find("\"ts\": 6500000"), std::string::npos);
  EXPECT_NE(doc.find("\"tid\": 11"), std::string::npos);
  EXPECT_NE(doc.find("\"sent\": 2"), std::string::npos);

  // Deterministic: exporting the same recorder twice is byte-identical.
  std::ostringstream again;
  rec.export_chrome_trace(again);
  EXPECT_EQ(doc, again.str());
}

}  // namespace
}  // namespace ges::obs
