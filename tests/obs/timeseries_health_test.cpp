// Unit tests for the sim-time series sampler (ring retention, same-
// instant overwrite, export disclosure) and the node health watchdog
// (threshold crossings, summary aggregates, bounded anomaly list).

#include <gtest/gtest.h>

#include <sstream>

#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace ges::obs {
namespace {

// --- TimeseriesSampler -------------------------------------------------

TEST(Timeseries, SamplesCountersAndGauges) {
  MetricsRegistry reg;
  reg.counter("c").add(1);
  reg.gauge("g").set(2.5);
  TimeseriesSampler ts;
  ts.configure(5.0, 8);
  ts.sample(reg, 5.0);
  reg.counter("c").add(2);
  ts.sample(reg, 10.0);

  EXPECT_EQ(ts.samples_taken(), 2u);
  EXPECT_EQ(ts.samples_dropped(), 0u);
  ASSERT_EQ(ts.samples().size(), 2u);
  ASSERT_EQ(ts.samples()[0].counters.size(), 1u);
  EXPECT_EQ(ts.samples()[0].counters[0].first, "c");
  EXPECT_EQ(ts.samples()[0].counters[0].second, 1u);
  EXPECT_EQ(ts.samples()[1].counters[0].second, 3u);
  ASSERT_EQ(ts.samples()[0].gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(ts.samples()[0].gauges[0].second, 2.5);
}

TEST(Timeseries, RingEvictsOldestAndCountsTheDrop) {
  MetricsRegistry reg;
  TimeseriesSampler ts;
  ts.configure(1.0, 2);
  ts.sample(reg, 1.0);
  ts.sample(reg, 2.0);
  ts.sample(reg, 3.0);
  EXPECT_EQ(ts.samples_taken(), 3u);
  EXPECT_EQ(ts.samples_dropped(), 1u);
  ASSERT_EQ(ts.samples().size(), 2u);
  EXPECT_DOUBLE_EQ(ts.samples()[0].t, 2.0);
  EXPECT_DOUBLE_EQ(ts.samples()[1].t, 3.0);
}

TEST(Timeseries, SameInstantResampleSupersedesInPlace) {
  // An end-of-run manual sample landing on the periodic tick must not
  // produce two samples at one t (exported times are strictly
  // increasing); the later snapshot wins.
  MetricsRegistry reg;
  reg.counter("c").add(1);
  TimeseriesSampler ts;
  ts.configure(1.0, 8);
  ts.sample(reg, 1.0);
  reg.counter("c").add(4);
  ts.sample(reg, 1.0);
  ASSERT_EQ(ts.samples().size(), 1u);
  EXPECT_EQ(ts.samples()[0].counters[0].second, 5u);
  EXPECT_EQ(ts.samples_taken(), 2u);
  EXPECT_EQ(ts.samples_dropped(), 1u);
}

TEST(Timeseries, ExportDisclosesRetention) {
  MetricsRegistry reg;
  reg.counter("ges.search.queries").add(3);
  TimeseriesSampler ts;
  ts.configure(5.0, 1);
  ts.sample(reg, 5.0);
  ts.sample(reg, 10.0);
  std::ostringstream os;
  ts.write_json(os);
  const std::string json = os.str();
  for (const char* needle :
       {"\"schema\": \"ges.timeseries.v1\"", "\"interval\": 5",
        "\"samples_taken\": 2", "\"samples_retained\": 1",
        "\"samples_dropped\": 1", "\"ges.search.queries\": 3"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

// --- HealthMonitor -----------------------------------------------------

NodeHealth healthy_node(uint32_t id) {
  NodeHealth h;
  h.node = id;
  h.alive = true;
  h.degree = 6;
  h.degree_target = 8;
  h.heartbeat_staleness = 2.0;
  h.cache_occupancy = 0.5;
  return h;
}

TEST(HealthMonitor, SweepWithoutProviderIsANoop) {
  HealthMonitor mon;
  mon.sweep(1.0);
  EXPECT_EQ(mon.sweeps(), 0u);
}

TEST(HealthMonitor, SweepAggregatesAndFlagsEachThreshold) {
  HealthMonitor mon;
  mon.set_provider([](std::vector<NodeHealth>& out) {
    out.push_back(healthy_node(0));
    NodeHealth dead = healthy_node(1);  // dead nodes are skipped entirely
    dead.alive = false;
    dead.heartbeat_staleness = 999.0;
    out.push_back(dead);
    NodeHealth stale = healthy_node(2);
    stale.heartbeat_staleness = 99.0;
    out.push_back(stale);
    NodeHealth overfull = healthy_node(3);
    overfull.degree = 20;
    overfull.degree_target = 10;  // 20 > 10 * 1.5
    out.push_back(overfull);
    NodeHealth leaky = healthy_node(4);
    leaky.cache_occupancy = 1.25;  // eviction should make this impossible
    out.push_back(leaky);
    NodeHealth stuck = healthy_node(5);
    stuck.in_backoff = true;
    stuck.backoff_strikes = 5;
    out.push_back(stuck);
  });
  mon.sweep(40.0);

  EXPECT_EQ(mon.sweeps(), 1u);
  const HealthSummary& last = mon.last();
  EXPECT_DOUBLE_EQ(last.t, 40.0);
  EXPECT_EQ(last.nodes, 6u);
  EXPECT_EQ(last.alive, 5u);
  EXPECT_EQ(last.anomalies, 4u);
  EXPECT_DOUBLE_EQ(last.max_staleness, 99.0);
  EXPECT_DOUBLE_EQ(last.max_cache_occupancy, 1.25);
  EXPECT_EQ(last.nodes_in_backoff, 1u);
  EXPECT_EQ(last.degree_overflows, 1u);

  ASSERT_EQ(mon.anomalies().size(), 4u);
  EXPECT_EQ(mon.anomalies()[0].kind, HealthAnomaly::kStaleHeartbeat);
  EXPECT_EQ(mon.anomalies()[0].node, 2u);
  EXPECT_EQ(mon.anomalies()[1].kind, HealthAnomaly::kDegreeOverflow);
  EXPECT_EQ(mon.anomalies()[2].kind, HealthAnomaly::kCacheOverflow);
  EXPECT_EQ(mon.anomalies()[3].kind, HealthAnomaly::kBackoffStuck);
  EXPECT_DOUBLE_EQ(mon.anomalies()[3].value, 5.0);
}

TEST(HealthMonitor, UnderfillDisabledByDefault) {
  HealthMonitor mon;
  mon.set_provider([](std::vector<NodeHealth>& out) {
    NodeHealth thin = healthy_node(0);
    thin.degree = 0;  // legitimately thin (freshly bootstrapped)
    out.push_back(thin);
  });
  mon.sweep(1.0);
  EXPECT_EQ(mon.anomalies_seen(), 0u);

  HealthThresholds strict;
  strict.degree_underfill = 0.5;
  mon.set_thresholds(strict);
  mon.sweep(2.0);
  ASSERT_EQ(mon.anomalies_seen(), 1u);
  EXPECT_EQ(mon.anomalies()[0].kind, HealthAnomaly::kDegreeUnderflow);
}

TEST(HealthMonitor, AnomalyListIsBoundedAndDropsAreCounted) {
  HealthMonitor mon;
  mon.set_max_anomalies(2);
  mon.set_provider([](std::vector<NodeHealth>& out) {
    for (uint32_t n = 0; n < 5; ++n) {
      NodeHealth stale = healthy_node(n);
      stale.heartbeat_staleness = 99.0;
      out.push_back(stale);
    }
  });
  mon.sweep(1.0);
  EXPECT_EQ(mon.anomalies_seen(), 5u);
  EXPECT_EQ(mon.anomalies().size(), 2u);
  EXPECT_EQ(mon.anomalies_dropped(), 3u);
}

TEST(HealthMonitor, ResetClearsEverything) {
  HealthMonitor mon;
  mon.set_provider([](std::vector<NodeHealth>& out) {
    NodeHealth stale = healthy_node(0);
    stale.heartbeat_staleness = 99.0;
    out.push_back(stale);
  });
  mon.sweep(1.0);
  ASSERT_EQ(mon.anomalies_seen(), 1u);
  mon.reset();
  EXPECT_EQ(mon.sweeps(), 0u);
  EXPECT_EQ(mon.anomalies_seen(), 0u);
  EXPECT_TRUE(mon.anomalies().empty());
  EXPECT_EQ(mon.last().nodes, 0u);
}

}  // namespace
}  // namespace ges::obs
