// Golden-trace guarantee for the whole observability tentpole: running a
// scenario with the flight recorder, the sim-time series sampler and the
// health watchdog all enabled produces a byte-identical simulation to
// running with all three off — under faults and churn, sync and async.
// The timeseries sampler is the sharpest edge: it schedules real events
// on the simulation's queue (consuming sequence numbers), so this suite
// is the regression lock on the claim that only the relative order of
// protocol events matters.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "ges/async_search.hpp"
#include "ges/scenario.hpp"
#include "ges/topology_adaptation.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "p2p/network_snapshot.hpp"
#include "support/test_corpus.hpp"

namespace ges::core {
namespace {

#if !GES_OBS

TEST(FlightGoldenTrace, SkippedWithoutInstrumentation) {
  GTEST_SKIP() << "built with -DGES_OBS_INSTRUMENT=OFF";
}

#else

using p2p::NodeId;

struct GoldenResult {
  std::string snapshot;
  std::vector<p2p::SearchTrace> traces;
  size_t departures = 0;
  size_t arrivals = 0;
  size_t autopsies_retained = 0;
  uint64_t timeseries_samples = 0;
  uint64_t health_sweeps = 0;
};

ScenarioParams golden_params(uint64_t seed, bool faults, bool churn) {
  ScenarioParams sp;
  sp.params.max_links = 6;
  sp.params.min_links = 2;
  sp.params.walk_ttl = 20;
  if (faults) {
    sp.faults = p2p::FaultPlan::uniform(0.1, util::derive_seed(seed, 77));
    sp.faults.delay_rate = 0.05;
    sp.faults.duplicate_rate = 0.02;
    sp.faults.partition_rate = 0.1;
  }
  sp.churn_enabled = churn;
  sp.churn.mean_session = 60.0;
  sp.churn.mean_downtime = 25.0;
  sp.churn.bootstrap_links = 2;
  sp.churn.seed = util::derive_seed(seed, 78);
  sp.rounds = 8;
  sp.seed = seed;
  return sp;
}

GoldenResult run_scenario(const corpus::Corpus& corpus, ScenarioParams sp,
                          bool observed) {
  obs::global().reset();
  obs::global().set_enabled(false);
  obs::flight().reset();
  obs::flight().set_enabled(false);
  if (observed) {
    sp.flight_recorder = true;
    sp.flight.worst_k = 8;
    sp.flight.sample_capacity = 64;
    sp.flight.sample_every = 1;
    sp.timeseries_interval = 5.0;
    sp.health_monitor = true;
  }
  GoldenResult out;
  {
    ScenarioRunner runner(corpus, sp);
    runner.run();
    util::Rng rng(util::derive_seed(sp.seed, 80));
    SearchOptions sopt;
    sopt.ttl = 25;
    sopt.use_result_cache = true;
    for (size_t q = 0; q < 5; ++q) {
      const auto alive = runner.network().alive_nodes();
      const NodeId initiator = alive[rng.index(alive.size())];
      const auto& query = corpus.queries[q % corpus.queries.size()].vector;
      out.traces.push_back(runner.search(query, initiator, sopt, rng));
    }
    std::ostringstream snap;
    p2p::save_network_snapshot(runner.network(), snap);
    out.snapshot = snap.str();
    if (runner.churn() != nullptr) {
      out.departures = runner.churn()->departures();
      out.arrivals = runner.churn()->arrivals();
    }
    if (runner.timeseries() != nullptr) {
      out.timeseries_samples = runner.timeseries()->samples_taken();
    }
    if (runner.health() != nullptr) {
      out.health_sweeps = runner.health()->sweeps();
    }
  }
  out.autopsies_retained = obs::flight().retained_count();
  obs::flight().set_enabled(false);
  obs::flight().reset();
  obs::global().set_enabled(false);
  return out;
}

void expect_identical_simulations(const GoldenResult& off,
                                  const GoldenResult& on) {
  EXPECT_EQ(off.snapshot, on.snapshot);
  EXPECT_EQ(off.departures, on.departures);
  EXPECT_EQ(off.arrivals, on.arrivals);
  ASSERT_EQ(off.traces.size(), on.traces.size());
  for (size_t i = 0; i < off.traces.size(); ++i) {
    EXPECT_TRUE(off.traces[i] == on.traces[i]) << "trace " << i;
  }
  // And the observed run actually observed: the instruments were live,
  // not silently disabled (which would make this test vacuous).
  EXPECT_EQ(off.autopsies_retained, 0u);
  EXPECT_EQ(off.timeseries_samples, 0u);
  EXPECT_GT(on.autopsies_retained, 0u);
  EXPECT_GT(on.timeseries_samples, 0u);
  EXPECT_GT(on.health_sweeps, 0u);
}

TEST(FlightGoldenTrace, FaultedChurnedScenarioIsByteIdentical) {
  const auto corpus = test::clustered_corpus(24, 3);
  const ScenarioParams sp = golden_params(42, /*faults=*/true, /*churn=*/true);
  const GoldenResult off = run_scenario(corpus, sp, /*observed=*/false);
  const GoldenResult on = run_scenario(corpus, sp, /*observed=*/true);
  expect_identical_simulations(off, on);
}

TEST(FlightGoldenTrace, FaultFreeScenarioIsByteIdentical) {
  const auto corpus = test::clustered_corpus(24, 3);
  const ScenarioParams sp = golden_params(7, /*faults=*/false, /*churn=*/false);
  const GoldenResult off = run_scenario(corpus, sp, /*observed=*/false);
  const GoldenResult on = run_scenario(corpus, sp, /*observed=*/true);
  expect_identical_simulations(off, on);
}

TEST(FlightGoldenTrace, AsyncEngineIsByteIdenticalWithRecorderOn) {
  const auto corpus = test::clustered_corpus(24, 3);
  p2p::Network net(corpus, test::uniform_capacities(corpus),
                   p2p::NetworkConfig{});
  util::Rng boot_rng(1);
  p2p::bootstrap_random_graph(net, 5.0, boot_rng);
  TopologyAdaptation adapt(net, GesParams{}, 7);
  adapt.run_rounds(8);

  p2p::FaultPlan plan = p2p::FaultPlan::uniform(0.1, 99);
  plan.delay_rate = 0.2;

  const auto run_async = [&](bool observed) {
    obs::global().reset();
    obs::flight().reset();
    obs::global().set_enabled(observed);
    obs::flight().set_enabled(observed);
    if (observed) {
      obs::FlightRecorderConfig config;
      config.sample_every = 1;
      config.sample_capacity = 64;
      obs::flight().set_config(config);
    }
    p2p::FaultInjector faults(plan);
    p2p::EventQueue queue;
    SearchOptions sopt;
    sopt.ttl = 25;
    AsyncSearchEngine engine(net, queue, sopt, LatencyModel{}, &faults);
    std::vector<AsyncQueryResult> results;
    for (size_t q = 0; q < 5; ++q) {
      engine.submit(corpus.queries[q % corpus.queries.size()].vector,
                    static_cast<NodeId>(q % net.size()), 1000 + q,
                    [&](const AsyncQueryResult& r) { results.push_back(r); });
    }
    queue.run();
    const size_t retained = obs::flight().retained_count();
    obs::flight().set_enabled(false);
    obs::flight().reset();
    obs::global().set_enabled(false);
    return std::make_pair(results, retained);
  };

  const auto [off, off_retained] = run_async(false);
  const auto [on, on_retained] = run_async(true);
  EXPECT_EQ(off_retained, 0u);
  EXPECT_EQ(on_retained, 5u);
  ASSERT_EQ(off.size(), on.size());
  for (size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].guid, on[i].guid);
    EXPECT_TRUE(off[i].trace == on[i].trace) << "trace " << i;
    EXPECT_DOUBLE_EQ(off[i].submitted_at, on[i].submitted_at);
    EXPECT_DOUBLE_EQ(off[i].first_hit_at, on[i].first_hit_at);
    EXPECT_DOUBLE_EQ(off[i].completed_at, on[i].completed_at);
  }
}

#endif  // GES_OBS

}  // namespace
}  // namespace ges::core
