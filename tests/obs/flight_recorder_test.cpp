// Unit tests for the flight recorder's two halves: the per-query builder
// (causal tree mechanics, per-query event cap) and the retention store
// (worst-k by message cost, stride-sample ring, drop accounting). A 10k
// query storm pins the bounded-memory contract: retention stays at
// worst_k + sample_capacity no matter how many queries run, the worst
// set is exactly the true top-k, and every drop is disclosed.

#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

namespace ges::obs {
namespace {

QueryAutopsy make_autopsy(uint64_t ordinal, uint64_t messages) {
  FlightBuilder b;
  b.begin(ordinal, 0, 1, /*async=*/false, 0.0, /*max_events=*/64);
  FlightCost cost;
  cost.probes = messages;
  return b.finish("responses", cost, 1.0);
}

TEST(FlightBuilder, BeginRootsTheTreeAtTheIssuedEvent) {
  FlightBuilder b;
  b.begin(7, 0, 21, /*async=*/false, 2.5, 64);
  ASSERT_TRUE(b.active());
  const FlightEvent* root = b.event(0);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->kind, FlightEventKind::kIssued);
  EXPECT_EQ(root->parent, -1);
  EXPECT_EQ(root->from, 21u);
  EXPECT_EQ(b.context(), 0);
  // Until the initiator's probe lands, the issued event explains why the
  // initiator holds the query; unknown nodes fall back to the root.
  EXPECT_EQ(b.probe_event_of(21), 0);
  EXPECT_EQ(b.probe_event_of(999), 0);
}

TEST(FlightBuilder, ParentsAlwaysPrecedeChildren) {
  FlightBuilder b;
  b.begin(0, 0, 1, false, 0.0, 64);
  const int32_t probe = b.add(FlightEventKind::kProbe, 0, 0.0);
  EXPECT_EQ(probe, 1);
  const int32_t hop = b.add(FlightEventKind::kWalkHop, probe, 0.5);
  EXPECT_EQ(hop, 2);
  EXPECT_EQ(b.event(hop)->parent, probe);
  // A dangling parent (>= id, or -1 on a non-root event) reattaches to
  // the root instead of corrupting the tree.
  const int32_t dangling = b.add(FlightEventKind::kProbe, 99, 1.0);
  EXPECT_EQ(b.event(dangling)->parent, 0);
  const int32_t orphan = b.add(FlightEventKind::kProbe, -1, 1.0);
  EXPECT_EQ(b.event(orphan)->parent, 0);
}

TEST(FlightBuilder, ContextAnchorsSubsequentEvents) {
  FlightBuilder b;
  b.begin(0, 0, 1, false, 0.0, 64);
  const int32_t hop = b.add(FlightEventKind::kWalkHop, 0, 0.0);
  b.set_context(hop);
  const int32_t drop = b.add(FlightEventKind::kFaultDrop, 0.0);
  EXPECT_EQ(b.event(drop)->parent, hop);
}

TEST(FlightBuilder, PerQueryCapTruncatesAndCounts) {
  FlightBuilder b;
  b.begin(0, 0, 1, false, 0.0, /*max_events=*/3);
  EXPECT_EQ(b.add(FlightEventKind::kProbe, 0, 0.0), 1);
  EXPECT_EQ(b.add(FlightEventKind::kWalkHop, 1, 0.0), 2);
  // Cap reached: adds are counted, not stored, and report id -1.
  EXPECT_EQ(b.add(FlightEventKind::kWalkHop, 2, 0.0), -1);
  EXPECT_EQ(b.add(FlightEventKind::kProbe, 0, 0.0), -1);
  EXPECT_EQ(b.event(-1), nullptr);
  const QueryAutopsy a = b.finish("ttl", FlightCost{}, 1.0);
  EXPECT_EQ(a.events.size(), 3u);
  EXPECT_EQ(a.events_recorded, 5u);
  EXPECT_EQ(a.events_dropped, 2u);
}

TEST(FlightBuilder, WalkChoiceIsConsumedExactlyOnce) {
  FlightBuilder b;
  b.begin(0, 0, 1, false, 0.0, 64);
  double rel = 0.0;
  bool supernode = false;
  EXPECT_FALSE(b.take_walk_choice(&rel, &supernode));
  b.note_walk_choice(0.75, true);
  ASSERT_TRUE(b.take_walk_choice(&rel, &supernode));
  EXPECT_DOUBLE_EQ(rel, 0.75);
  EXPECT_TRUE(supernode);
  EXPECT_FALSE(b.take_walk_choice(&rel, &supernode));
}

TEST(FlightRecorder, WorstKKeepsTheMostExpensiveQueries) {
  FlightRecorder rec;
  rec.set_config({/*worst_k=*/2, /*sample_capacity=*/0, /*sample_every=*/0,
                  /*max_events_per_query=*/64});
  for (const uint64_t cost : {5u, 1u, 9u, 3u}) {
    rec.submit(make_autopsy(rec.next_ordinal(), cost));
  }
  const auto kept = rec.retained();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].autopsy.ordinal, 0u);  // cost 5
  EXPECT_EQ(kept[1].autopsy.ordinal, 2u);  // cost 9
  EXPECT_EQ(kept[0].label, "worst");
  EXPECT_EQ(rec.queries_seen(), 4u);
  EXPECT_EQ(rec.queries_dropped(), 2u);
}

TEST(FlightRecorder, WorstKTiesKeepTheEarlierQuery) {
  FlightRecorder rec;
  rec.set_config({2, 0, 0, 64});
  for (int i = 0; i < 4; ++i) rec.submit(make_autopsy(rec.next_ordinal(), 5));
  const auto kept = rec.retained();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].autopsy.ordinal, 0u);
  EXPECT_EQ(kept[1].autopsy.ordinal, 1u);
}

TEST(FlightRecorder, StrideSampleRingIsFifo) {
  FlightRecorder rec;
  rec.set_config({/*worst_k=*/0, /*sample_capacity=*/2, /*sample_every=*/2, 64});
  for (int i = 0; i < 8; ++i) rec.submit(make_autopsy(rec.next_ordinal(), 0));
  // Ordinals 0, 2, 4, 6 were sampled; the ring keeps the newest two.
  const auto kept = rec.retained();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].autopsy.ordinal, 4u);
  EXPECT_EQ(kept[1].autopsy.ordinal, 6u);
  EXPECT_EQ(kept[0].label, "sampled");
}

TEST(FlightRecorder, QueryInBothSetsIsLabeledOnce) {
  FlightRecorder rec;
  rec.set_config({/*worst_k=*/1, /*sample_capacity=*/8, /*sample_every=*/1, 64});
  rec.submit(make_autopsy(rec.next_ordinal(), 0));
  rec.submit(make_autopsy(rec.next_ordinal(), 9));
  rec.submit(make_autopsy(rec.next_ordinal(), 0));
  const auto kept = rec.retained();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].label, "sampled");
  EXPECT_EQ(kept[1].label, "worst+sampled");
  EXPECT_EQ(kept[2].label, "sampled");
  EXPECT_EQ(rec.queries_dropped(), 0u);
}

TEST(FlightRecorder, TenThousandQueryStormStaysBounded) {
  FlightRecorder rec;
  const FlightRecorderConfig config{/*worst_k=*/8, /*sample_capacity=*/16,
                                    /*sample_every=*/100,
                                    /*max_events_per_query=*/64};
  rec.set_config(config);

  // Deterministic pseudo-costs; track the true top-8 (cost desc, ordinal
  // asc) alongside to compare against the recorder's worst set.
  std::vector<std::pair<uint64_t, uint64_t>> by_cost;  // (cost, ordinal)
  for (uint64_t i = 0; i < 10000; ++i) {
    const uint64_t cost = (i * 2654435761u) % 1000;
    const uint64_t ordinal = rec.next_ordinal();
    EXPECT_EQ(ordinal, i);
    rec.submit(make_autopsy(ordinal, cost));
    by_cost.emplace_back(cost, ordinal);
  }
  EXPECT_EQ(rec.queries_seen(), 10000u);
  const auto kept = rec.retained();
  EXPECT_LE(kept.size(), config.worst_k + config.sample_capacity);
  EXPECT_EQ(rec.queries_dropped(), 10000u - kept.size());

  std::sort(by_cost.begin(), by_cost.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  std::set<uint64_t> expected_worst;
  for (size_t i = 0; i < config.worst_k; ++i) {
    expected_worst.insert(by_cost[i].second);
  }
  std::set<uint64_t> actual_worst;
  std::set<uint64_t> actual_sampled;
  for (const auto& r : kept) {
    if (r.label == "worst" || r.label == "worst+sampled") {
      actual_worst.insert(r.autopsy.ordinal);
    }
    if (r.label == "sampled" || r.label == "worst+sampled") {
      actual_sampled.insert(r.autopsy.ordinal);
    }
  }
  EXPECT_EQ(actual_worst, expected_worst);
  // The sample ring holds the newest 16 stride ordinals: 8400..9900.
  ASSERT_EQ(actual_sampled.size(), config.sample_capacity);
  EXPECT_EQ(*actual_sampled.begin(), 8400u);
  EXPECT_EQ(*actual_sampled.rbegin(), 9900u);

  // The export header discloses the storm's retention losses.
  std::ostringstream os;
  write_autopsy_json(rec, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"ges.autopsy.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"queries_seen\": 10000"), std::string::npos);
  EXPECT_NE(json.find("\"queries_retained\": " + std::to_string(kept.size())),
            std::string::npos);
}

TEST(FlightRecorder, ResetDropsStateButKeepsConfig) {
  FlightRecorder rec;
  rec.set_config({4, 4, 1, 64});
  rec.submit(make_autopsy(rec.next_ordinal(), 3));
  ASSERT_EQ(rec.retained_count(), 1u);
  rec.reset();
  EXPECT_EQ(rec.queries_seen(), 0u);
  EXPECT_EQ(rec.retained_count(), 0u);
  EXPECT_EQ(rec.next_ordinal(), 0u);
  EXPECT_EQ(rec.config().worst_k, 4u);
}

TEST(FlightRecorder, ExportersRenderEveryEventKind) {
  FlightRecorder rec;
  rec.set_config({4, 0, 0, 64});
  FlightBuilder b;
  b.begin(rec.next_ordinal(), 17, 3, /*async=*/true, 1.0, 64);
  const int32_t probe = b.add(FlightEventKind::kProbe, 0, 1.0);
  b.event(probe)->from = 3;
  b.event(probe)->count = 2;
  const int32_t hop = b.add(FlightEventKind::kWalkHop, probe, 1.5);
  b.event(hop)->from = 3;
  b.event(hop)->to = 9;
  b.event(hop)->value = 0.5;
  const int32_t drop = b.add(FlightEventKind::kFaultDrop, hop, 1.5);
  b.event(drop)->channel = 1;  // walk
  FlightCost cost;
  cost.probes = 1;
  cost.walk_steps = 1;
  rec.submit(b.finish("walk_lost", cost, 2.0));

  std::ostringstream json;
  write_autopsy_json(rec, json);
  for (const char* needle :
       {"\"engine\": \"async\"", "\"guid\": 17", "\"reason\": \"walk_lost\"",
        "\"kind\": \"probe\"", "\"kind\": \"walk_hop\"", "\"rel\": 0.5",
        "\"kind\": \"fault_drop\"", "\"channel\": \"walk\""}) {
    EXPECT_NE(json.str().find(needle), std::string::npos) << needle;
  }

  std::ostringstream trace;
  write_autopsy_chrome_trace(rec, trace);
  EXPECT_NE(trace.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.str().find("\"name\": \"query\""), std::string::npos);
  EXPECT_NE(trace.str().find("\"name\": \"fault_drop\""), std::string::npos);
}

}  // namespace
}  // namespace ges::obs
