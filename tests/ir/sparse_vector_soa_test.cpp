// Randomized equivalence suite for the SoA SparseVector: every public
// operation is checked bit-for-bit against a straight array-of-structs
// reference implementation that mirrors the documented FP semantics
// (ascending-term merge, double(float) * float products). This is the
// safety net under the data-plane rewrite — any drift in canonicalization,
// dot dispatch (merge vs gallop), add_scaled or truncate_top shows up here
// before it can perturb a golden trace.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "ir/relevance.hpp"
#include "ir/sparse_vector.hpp"
#include "util/rng.hpp"

namespace ges::ir {
namespace {

// --- Reference AoS implementation ---------------------------------------

using Entries = std::vector<TermWeight>;

Entries ref_canonicalize(std::vector<TermWeight> pairs) {
  std::sort(pairs.begin(), pairs.end(),
            [](const TermWeight& a, const TermWeight& b) { return a.term < b.term; });
  Entries out;
  for (size_t i = 0; i < pairs.size();) {
    TermWeight merged = pairs[i];
    size_t j = i + 1;
    while (j < pairs.size() && pairs[j].term == merged.term) {
      merged.weight += pairs[j].weight;
      ++j;
    }
    if (merged.weight != 0.0f) out.push_back(merged);
    i = j;
  }
  return out;
}

double ref_dot(const Entries& a, const Entries& b) {
  double sum = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].term < b[j].term) {
      ++i;
    } else if (b[j].term < a[i].term) {
      ++j;
    } else {
      sum += static_cast<double>(a[i].weight) * b[j].weight;
      ++i;
      ++j;
    }
  }
  return sum;
}

Entries ref_add_scaled(const Entries& a, const Entries& b, double scale) {
  if (scale == 0.0 || b.empty()) return a;
  Entries out;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() || j < b.size()) {
    if (j >= b.size() || (i < a.size() && a[i].term < b[j].term)) {
      out.push_back(a[i++]);
    } else if (i >= a.size() || b[j].term < a[i].term) {
      out.push_back({b[j].term, static_cast<float>(b[j].weight * scale)});
      ++j;
    } else {
      const float w = a[i].weight + static_cast<float>(b[j].weight * scale);
      if (w != 0.0f) out.push_back({a[i].term, w});
      ++i;
      ++j;
    }
  }
  return out;
}

Entries ref_truncate_top(Entries a, size_t k) {
  if (k == 0 || a.size() <= k) return a;
  std::sort(a.begin(), a.end(), [](const TermWeight& x, const TermWeight& y) {
    if (x.weight != y.weight) return x.weight > y.weight;
    return x.term < y.term;
  });
  a.resize(k);
  std::sort(a.begin(), a.end(),
            [](const TermWeight& x, const TermWeight& y) { return x.term < y.term; });
  return a;
}

Entries entries_of(const SparseVector& v) {
  Entries out;
  for (const TermWeight tw : v.entries()) out.push_back(tw);
  return out;
}

void expect_same(const SparseVector& soa, const Entries& ref) {
  ASSERT_EQ(soa.size(), ref.size());
  const auto terms = soa.terms();
  const auto weights = soa.weights();
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(terms[i], ref[i].term) << "term " << i;
    EXPECT_EQ(weights[i], ref[i].weight) << "weight " << i;  // bit-exact
  }
}

// --- Randomized inputs ---------------------------------------------------

/// Raw (term, weight) pairs: duplicate terms, occasional exact zeros and
/// negative weights, all legal inputs of from_pairs.
std::vector<TermWeight> random_pairs(util::Rng& rng, size_t max_len,
                                     TermId universe) {
  const size_t len = rng.index(max_len + 1);
  std::vector<TermWeight> pairs;
  pairs.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    const auto term = static_cast<TermId>(rng.below(universe));
    float w = static_cast<float>(rng.uniform(-2.0, 2.0));
    if (rng.chance(0.05)) w = 0.0f;
    pairs.push_back({term, w});
  }
  return pairs;
}

TEST(SparseVectorSoa, CanonicalizationMatchesReference) {
  util::Rng rng(101);
  for (int iter = 0; iter < 400; ++iter) {
    auto pairs = random_pairs(rng, 40, 25);  // small universe: many dups
    const auto ref = ref_canonicalize(pairs);
    const auto soa = SparseVector::from_pairs(std::move(pairs));
    expect_same(soa, ref);
    EXPECT_EQ(entries_of(soa), ref);  // zip view agrees with the arrays
  }
}

TEST(SparseVectorSoa, DotMatchesReferenceAcrossShapes) {
  util::Rng rng(202);
  // (max_len_a, max_len_b, universe): comparable sizes (merge path),
  // lopsided sizes (gallop path both ways), tiny universe (dense
  // overlap), huge universe (mostly disjoint).
  const struct {
    size_t la, lb;
    TermId universe;
  } shapes[] = {
      {20, 20, 30},    {20, 20, 100000}, {3, 400, 600},
      {400, 3, 600},   {1, 1, 4},        {50, 50, 60},
  };
  for (const auto& s : shapes) {
    for (int iter = 0; iter < 200; ++iter) {
      const auto pa = random_pairs(rng, s.la, s.universe);
      const auto pb = random_pairs(rng, s.lb, s.universe);
      const auto ra = ref_canonicalize(pa);
      const auto rb = ref_canonicalize(pb);
      const auto va = SparseVector::from_pairs(pa);
      const auto vb = SparseVector::from_pairs(pb);
      const double expected = ref_dot(ra, rb);
      EXPECT_EQ(va.dot(vb), expected);  // bit-identical, not just close
      EXPECT_EQ(vb.dot(va), expected);  // gallop operand swap commutes
    }
  }
}

TEST(SparseVectorSoa, EmptyAndDisjointAndSupersetDots) {
  const SparseVector empty;
  const auto a = SparseVector::from_pairs({{1, 1.0f}, {5, 2.0f}, {9, 3.0f}});
  const auto disjoint = SparseVector::from_pairs({{2, 1.0f}, {6, 2.0f}});
  EXPECT_EQ(empty.dot(a), 0.0);
  EXPECT_EQ(a.dot(empty), 0.0);
  EXPECT_EQ(empty.dot(empty), 0.0);
  EXPECT_EQ(a.dot(disjoint), 0.0);

  // Superset containing all of a's terms: every component matches.
  std::vector<TermWeight> sup;
  for (TermId t = 0; t < 12; ++t) sup.push_back({t, 0.5f});
  const auto superset = SparseVector::from_pairs(sup);
  EXPECT_EQ(a.dot(superset), ref_dot(entries_of(a), entries_of(superset)));
}

TEST(SparseVectorSoa, AddScaledMatchesReference) {
  util::Rng rng(303);
  for (int iter = 0; iter < 300; ++iter) {
    const auto pa = random_pairs(rng, 30, 40);
    const auto pb = random_pairs(rng, 30, 40);
    const double scale = rng.chance(0.1) ? 0.0 : rng.uniform(-1.5, 1.5);
    const auto ref =
        ref_add_scaled(ref_canonicalize(pa), ref_canonicalize(pb), scale);
    auto v = SparseVector::from_pairs(pa);
    v.add_scaled(SparseVector::from_pairs(pb), scale);
    expect_same(v, ref);
  }
}

TEST(SparseVectorSoa, TruncateTopMatchesReference) {
  util::Rng rng(404);
  for (int iter = 0; iter < 300; ++iter) {
    const auto pairs = random_pairs(rng, 40, 200);
    const auto ref = ref_canonicalize(pairs);
    const size_t k = rng.index(ref.size() + 3);
    auto v = SparseVector::from_pairs(pairs);
    v.truncate_top(k);
    expect_same(v, ref_truncate_top(ref, k));
  }
}

TEST(SparseVectorSoa, WeightNormOverlapMatchReference) {
  util::Rng rng(505);
  for (int iter = 0; iter < 200; ++iter) {
    const auto pa = random_pairs(rng, 25, 50);
    const auto pb = random_pairs(rng, 25, 50);
    const auto ra = ref_canonicalize(pa);
    const auto va = SparseVector::from_pairs(pa);
    const auto vb = SparseVector::from_pairs(pb);

    double sq = 0.0;
    for (const auto& e : ra) sq += static_cast<double>(e.weight) * e.weight;
    EXPECT_EQ(va.norm(), std::sqrt(sq));  // same accumulation order: bit-exact
    for (const auto& e : ra) EXPECT_EQ(va.weight(e.term), e.weight);
    EXPECT_EQ(va.weight(static_cast<TermId>(10000)), 0.0f);

    size_t overlap = 0;
    for (const auto& e : ra) {
      if (std::binary_search(vb.terms().begin(), vb.terms().end(), e.term)) {
        ++overlap;
      }
    }
    EXPECT_EQ(va.overlap(vb), overlap);
  }
}

// --- DensifiedQuery ------------------------------------------------------

TEST(DensifiedQuery, DotIsBitIdenticalToSparseDot) {
  util::Rng rng(606);
  DensifiedQuery view;  // one instance reused across binds (epoch reuse)
  for (int iter = 0; iter < 300; ++iter) {
    const auto q = SparseVector::from_pairs(random_pairs(rng, 6, 400));
    const auto v = SparseVector::from_pairs(random_pairs(rng, 200, 400));
    view.bind(q);
    EXPECT_EQ(view.dot(v), q.dot(v));
    for (const TermId t : q.terms()) {
      EXPECT_TRUE(view.contains(t));
      EXPECT_EQ(view.weight(t), q.weight(t));
    }
  }
}

TEST(DensifiedQuery, EmptyBindAndRebindAreSafe) {
  DensifiedQuery view;
  const SparseVector empty;
  const auto v = SparseVector::from_pairs({{3, 1.0f}, {7, 2.0f}});
  view.bind(empty);
  EXPECT_EQ(view.dot(v), 0.0);
  EXPECT_FALSE(view.contains(3));

  // Rebinding to a smaller term universe must not leak the old epoch's
  // entries (term 900 was in range for the first bind, not the second).
  const auto wide = SparseVector::from_pairs({{900, 1.0f}});
  view.bind(wide);
  EXPECT_TRUE(view.contains(900));
  view.bind(v);
  EXPECT_FALSE(view.contains(900));
  EXPECT_EQ(view.dot(wide), 0.0);
  EXPECT_EQ(view.dot(v), v.dot(v));
}

}  // namespace
}  // namespace ges::ir
