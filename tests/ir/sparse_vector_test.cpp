#include "ir/sparse_vector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ges::ir {
namespace {

SparseVector vec(std::vector<TermWeight> entries) {
  return SparseVector::from_pairs(std::move(entries));
}

TEST(SparseVector, FromPairsSortsAndMergesDuplicates) {
  const auto v = vec({{5, 1.0f}, {2, 2.0f}, {5, 3.0f}});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v.entries()[0].term, 2u);
  EXPECT_FLOAT_EQ(v.entries()[0].weight, 2.0f);
  EXPECT_EQ(v.entries()[1].term, 5u);
  EXPECT_FLOAT_EQ(v.entries()[1].weight, 4.0f);
}

TEST(SparseVector, FromPairsDropsZeros) {
  const auto v = vec({{1, 1.0f}, {1, -1.0f}, {2, 0.0f}, {3, 2.0f}});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v.entries()[0].term, 3u);
}

TEST(SparseVector, FromCounts) {
  const auto v = SparseVector::from_counts({{7, 3}, {1, 1}});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v.entries()[0].term, 1u);
  EXPECT_FLOAT_EQ(v.entries()[1].weight, 3.0f);
}

TEST(SparseVector, WeightLookup) {
  const auto v = vec({{1, 1.5f}, {9, 2.5f}});
  EXPECT_FLOAT_EQ(v.weight(1), 1.5f);
  EXPECT_FLOAT_EQ(v.weight(9), 2.5f);
  EXPECT_FLOAT_EQ(v.weight(5), 0.0f);
}

TEST(SparseVector, NormAndNormalize) {
  auto v = vec({{0, 3.0f}, {1, 4.0f}});
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  v.normalize();
  EXPECT_NEAR(v.norm(), 1.0, 1e-6);
  EXPECT_NEAR(v.weight(0), 0.6f, 1e-6);
  EXPECT_NEAR(v.weight(1), 0.8f, 1e-6);
}

TEST(SparseVector, NormalizeEmptyIsNoop) {
  SparseVector v;
  v.normalize();
  EXPECT_TRUE(v.empty());
}

TEST(SparseVector, DampenAppliesOnePlusLog) {
  auto v = vec({{0, 1.0f}, {1, static_cast<float>(std::exp(1.0))}});
  v.dampen();
  EXPECT_NEAR(v.weight(0), 1.0f, 1e-6);
  EXPECT_NEAR(v.weight(1), 2.0f, 1e-6);
}

TEST(SparseVector, DampenRejectsSubUnitWeights) {
  auto v = vec({{0, 0.5f}});
  EXPECT_THROW(v.dampen(), util::CheckFailure);
}

TEST(SparseVector, TruncateKeepsHeaviest) {
  auto v = vec({{0, 1.0f}, {1, 5.0f}, {2, 3.0f}, {3, 4.0f}});
  v.truncate_top(2);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_FLOAT_EQ(v.weight(1), 5.0f);
  EXPECT_FLOAT_EQ(v.weight(3), 4.0f);
  // Entries remain sorted by term id.
  EXPECT_LT(v.entries()[0].term, v.entries()[1].term);
}

TEST(SparseVector, TruncateZeroKeepsAll) {
  auto v = vec({{0, 1.0f}, {1, 2.0f}});
  v.truncate_top(0);
  EXPECT_EQ(v.size(), 2u);
}

TEST(SparseVector, TruncateTiesBrokenByLowerTermId) {
  auto v = vec({{3, 1.0f}, {1, 1.0f}, {2, 1.0f}});
  v.truncate_top(2);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_FLOAT_EQ(v.weight(1), 1.0f);
  EXPECT_FLOAT_EQ(v.weight(2), 1.0f);
}

TEST(SparseVector, DotProduct) {
  const auto a = vec({{0, 1.0f}, {2, 2.0f}, {4, 3.0f}});
  const auto b = vec({{1, 5.0f}, {2, 4.0f}, {4, 1.0f}});
  EXPECT_DOUBLE_EQ(a.dot(b), 2.0 * 4.0 + 3.0 * 1.0);
}

TEST(SparseVector, DotDisjointIsZero) {
  const auto a = vec({{0, 1.0f}});
  const auto b = vec({{1, 1.0f}});
  EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
}

TEST(SparseVector, AddScaled) {
  auto a = vec({{0, 1.0f}, {2, 2.0f}});
  const auto b = vec({{1, 1.0f}, {2, 3.0f}});
  a.add_scaled(b, 2.0);
  EXPECT_FLOAT_EQ(a.weight(0), 1.0f);
  EXPECT_FLOAT_EQ(a.weight(1), 2.0f);
  EXPECT_FLOAT_EQ(a.weight(2), 8.0f);
}

TEST(SparseVector, AddScaledCancellationDropsEntry) {
  auto a = vec({{0, 2.0f}});
  const auto b = vec({{0, 1.0f}});
  a.add_scaled(b, -2.0);
  EXPECT_TRUE(a.empty());
}

TEST(SparseVector, CosineOfIdenticalDirectionIsOne) {
  const auto a = vec({{0, 2.0f}, {1, 4.0f}});
  const auto b = vec({{0, 1.0f}, {1, 2.0f}});
  EXPECT_NEAR(a.cosine(b), 1.0, 1e-6);
}

TEST(SparseVector, CosineWithEmptyIsZero) {
  const auto a = vec({{0, 1.0f}});
  EXPECT_DOUBLE_EQ(a.cosine(SparseVector{}), 0.0);
}

TEST(SparseVector, Overlap) {
  const auto a = vec({{0, 1.0f}, {1, 1.0f}, {2, 1.0f}});
  const auto b = vec({{1, 1.0f}, {2, 1.0f}, {3, 1.0f}});
  EXPECT_EQ(a.overlap(b), 2u);
}

// --- Property tests over random vectors --------------------------------

SparseVector random_vector(util::Rng& rng, size_t max_terms, TermId vocab) {
  std::vector<TermWeight> entries;
  const size_t n = rng.index(max_terms) + 1;
  for (size_t i = 0; i < n; ++i) {
    entries.push_back({static_cast<TermId>(rng.index(vocab)),
                       static_cast<float>(rng.uniform(0.1, 10.0))});
  }
  return SparseVector::from_pairs(std::move(entries));
}

class SparseVectorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SparseVectorPropertyTest, EntriesSortedUniquePositive) {
  util::Rng rng(GetParam());
  const auto v = random_vector(rng, 50, 100);
  for (size_t i = 1; i < v.size(); ++i) {
    EXPECT_LT(v.entries()[i - 1].term, v.entries()[i].term);
  }
  for (const auto& e : v.entries()) EXPECT_NE(e.weight, 0.0f);
}

TEST_P(SparseVectorPropertyTest, DotIsSymmetric) {
  util::Rng rng(GetParam());
  const auto a = random_vector(rng, 50, 100);
  const auto b = random_vector(rng, 50, 100);
  EXPECT_DOUBLE_EQ(a.dot(b), b.dot(a));
}

TEST_P(SparseVectorPropertyTest, CauchySchwarz) {
  util::Rng rng(GetParam());
  const auto a = random_vector(rng, 50, 100);
  const auto b = random_vector(rng, 50, 100);
  EXPECT_LE(std::abs(a.dot(b)), a.norm() * b.norm() + 1e-6);
  EXPECT_LE(std::abs(a.cosine(b)), 1.0 + 1e-9);
}

TEST_P(SparseVectorPropertyTest, NormalizeGivesUnitNorm) {
  util::Rng rng(GetParam());
  auto v = random_vector(rng, 50, 100);
  v.normalize();
  EXPECT_NEAR(v.norm(), 1.0, 1e-5);
}

TEST_P(SparseVectorPropertyTest, TruncationNeverIncreasesNorm) {
  util::Rng rng(GetParam());
  auto v = random_vector(rng, 50, 100);
  const double before = v.norm();
  v.truncate_top(5);
  EXPECT_LE(v.norm(), before + 1e-9);
  EXPECT_LE(v.size(), 5u);
}

TEST_P(SparseVectorPropertyTest, AddScaledMatchesComponentwise) {
  util::Rng rng(GetParam());
  const auto a = random_vector(rng, 30, 60);
  const auto b = random_vector(rng, 30, 60);
  auto sum = a;
  sum.add_scaled(b, 1.5);
  for (TermId t = 0; t < 60; ++t) {
    EXPECT_NEAR(sum.weight(t), a.weight(t) + 1.5f * b.weight(t), 1e-4) << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseVectorPropertyTest,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace ges::ir
