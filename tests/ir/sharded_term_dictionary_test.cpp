#include "ir/sharded_term_dictionary.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ges::ir {
namespace {

TEST(ShardedTermDictionary, FreezeAssignsIdsInFirstOccurrenceOrder) {
  ShardedTermDictionary sharded(4);
  // Occurrences reported out of order — freeze must sort by (doc, pos).
  const auto beta = sharded.intern("beta", 1, 0);
  const auto alpha = sharded.intern("alpha", 0, 1);
  const auto omega = sharded.intern("omega", 0, 0);
  // A later re-occurrence of omega must not displace its first sighting.
  sharded.intern("omega", 2, 5);
  EXPECT_EQ(sharded.size(), 3u);

  TermDictionary dict;
  const auto remap = sharded.freeze_into(dict);
  EXPECT_EQ(remap[omega.shard][omega.slot], 0u);
  EXPECT_EQ(remap[alpha.shard][alpha.slot], 1u);
  EXPECT_EQ(remap[beta.shard][beta.slot], 2u);
  EXPECT_EQ(dict.term(0), "omega");
  EXPECT_EQ(dict.term(1), "alpha");
  EXPECT_EQ(dict.term(2), "beta");
}

TEST(ShardedTermDictionary, EarlierOccurrenceWinsRegardlessOfInternOrder) {
  ShardedTermDictionary sharded(2);
  const auto first = sharded.intern("shared", 5, 0);
  const auto second = sharded.intern("shared", 1, 3);  // earlier doc, later call
  EXPECT_EQ(first.shard, second.shard);
  EXPECT_EQ(first.slot, second.slot);
  sharded.intern("solo", 2, 0);

  TermDictionary dict;
  const auto remap = sharded.freeze_into(dict);
  // "shared" first occurs in doc 1 < doc 2, so it gets the lower id.
  EXPECT_EQ(remap[first.shard][first.slot], 0u);
  EXPECT_EQ(dict.term(0), "shared");
  EXPECT_EQ(dict.term(1), "solo");
}

TEST(ShardedTermDictionary, TermsAlreadyInBaseDictionaryKeepTheirIds) {
  TermDictionary dict;
  const TermId known = dict.intern("known");

  ShardedTermDictionary sharded;
  const auto k = sharded.intern("known", 9, 9);
  const auto n = sharded.intern("novel", 0, 0);
  const auto remap = sharded.freeze_into(dict);

  EXPECT_EQ(remap[k.shard][k.slot], known);
  EXPECT_EQ(remap[n.shard][n.slot], 1u);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(ShardedTermDictionary, ConcurrentInterningMatchesSerialReference) {
  // Synthesize a document stream, intern it concurrently from a pool, and
  // check the frozen dictionary equals the serial first-occurrence order.
  const size_t docs = 300;
  std::vector<std::vector<std::string>> doc_terms(docs);
  util::Rng rng(42);
  for (size_t d = 0; d < docs; ++d) {
    const size_t terms = 1 + rng.index(20);
    for (size_t t = 0; t < terms; ++t) {
      doc_terms[d].push_back("w" + std::to_string(rng.index(500)));
    }
  }

  // Serial reference: plain interning in document / position order.
  TermDictionary reference;
  for (size_t d = 0; d < docs; ++d) {
    for (const auto& term : doc_terms[d]) reference.intern(term);
  }

  for (const size_t threads : {1u, 2u, 8u}) {
    ShardedTermDictionary sharded;
    util::ThreadPool pool(threads);
    pool.parallel_for(docs, [&](size_t d) {
      std::vector<std::string_view> uniques;
      for (const auto& term : doc_terms[d]) {
        bool is_new = true;
        for (const auto& u : uniques) is_new = is_new && (u != term);
        if (!is_new) continue;
        uniques.push_back(term);
        sharded.intern(term, d, static_cast<uint32_t>(uniques.size() - 1));
      }
    });
    TermDictionary dict;
    sharded.freeze_into(dict);
    ASSERT_EQ(dict.size(), reference.size()) << "threads=" << threads;
    for (size_t t = 0; t < reference.size(); ++t) {
      ASSERT_EQ(dict.term(static_cast<TermId>(t)),
                reference.term(static_cast<TermId>(t)))
          << "threads=" << threads << " id=" << t;
    }
  }
}

TEST(TermDictionaryCopy, CopiedDictionaryLooksUpAgainstItsOwnStorage) {
  TermDictionary a;
  a.intern("alpha");
  a.intern("beta");
  TermDictionary b = a;
  a.intern("gamma");
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.lookup("alpha"), 0u);
  EXPECT_EQ(b.lookup("beta"), 1u);
  EXPECT_EQ(b.lookup("gamma"), kInvalidTerm);
  TermDictionary c;
  c.intern("unrelated");
  c = b;
  EXPECT_EQ(c.lookup("beta"), 1u);
  EXPECT_EQ(c.lookup("unrelated"), kInvalidTerm);
}

}  // namespace
}  // namespace ges::ir
