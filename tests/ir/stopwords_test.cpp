#include "ir/stopwords.hpp"

#include <gtest/gtest.h>

namespace ges::ir {
namespace {

TEST(StopWords, SmartListHasExpectedSize) {
  // The SMART list has 571 entries including single letters and
  // contractions; our tokenizer-normal subset is somewhat smaller.
  EXPECT_GE(StopWords::smart().size(), 450u);
  EXPECT_LE(StopWords::smart().size(), 571u);
}

TEST(StopWords, ContainsClassicFunctionWords) {
  const auto& s = StopWords::smart();
  for (const char* w : {"of", "the", "and", "to", "in", "is", "it", "that",
                        "was", "for", "on", "are", "with", "as", "at", "by"}) {
    EXPECT_TRUE(s.contains(w)) << w;
  }
}

TEST(StopWords, DoesNotContainContentWords) {
  const auto& s = StopWords::smart();
  for (const char* w : {"computer", "peer", "search", "semantic", "network",
                        "gnutella", "restart", "president"}) {
    EXPECT_FALSE(s.contains(w)) << w;
  }
}

TEST(StopWords, ContainsContractionFragments) {
  const auto& s = StopWords::smart();
  EXPECT_TRUE(s.contains("don"));
  EXPECT_TRUE(s.contains("doesn"));
  EXPECT_TRUE(s.contains("ll"));
  EXPECT_TRUE(s.contains("ve"));
}

TEST(StopWords, EmptyFilterKeepsEverything) {
  const StopWords none;
  EXPECT_EQ(none.size(), 0u);
  EXPECT_FALSE(none.contains("the"));
}

TEST(StopWords, CaseSensitiveByDesign) {
  // Input reaches the filter already lower-cased by the tokenizer.
  EXPECT_FALSE(StopWords::smart().contains("The"));
}

}  // namespace
}  // namespace ges::ir
