#include "ir/local_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ges::ir {
namespace {

SparseVector vec(std::vector<TermWeight> entries) {
  auto v = SparseVector::from_pairs(std::move(entries));
  v.normalize();
  return v;
}

TEST(LocalIndex, EvaluateScoresMatchDotProducts) {
  LocalIndex index;
  const auto d0 = vec({{0, 1.0f}, {1, 1.0f}});
  const auto d1 = vec({{1, 1.0f}, {2, 1.0f}});
  index.add_document(10, d0);
  index.add_document(11, d1);
  const auto q = vec({{1, 1.0f}});
  const auto results = index.evaluate(q, 0.0);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    const auto& d = r.doc == 10 ? d0 : d1;
    EXPECT_NEAR(r.score, d.dot(q), 1e-9);
  }
}

TEST(LocalIndex, EvaluateSortsByScoreDesc) {
  LocalIndex index;
  index.add_document(1, vec({{0, 1.0f}}));                // exact match
  index.add_document(2, vec({{0, 1.0f}, {1, 3.0f}}));     // diluted
  const auto results = index.evaluate(vec({{0, 1.0f}}), 0.0);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].doc, 1u);
  EXPECT_GE(results[0].score, results[1].score);
}

TEST(LocalIndex, ThresholdFilters) {
  LocalIndex index;
  index.add_document(1, vec({{0, 1.0f}}));
  index.add_document(2, vec({{0, 1.0f}, {1, 10.0f}}));
  const auto results = index.evaluate(vec({{0, 1.0f}}), 0.5);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].doc, 1u);
}

TEST(LocalIndex, NoMatchYieldsEmpty) {
  LocalIndex index;
  index.add_document(1, vec({{0, 1.0f}}));
  EXPECT_TRUE(index.evaluate(vec({{5, 1.0f}}), 0.0).empty());
}

TEST(LocalIndex, TopKLimitsResults) {
  LocalIndex index;
  for (DocId d = 0; d < 10; ++d) {
    index.add_document(d, vec({{0, 1.0f}, {d + 1, static_cast<float>(d + 1)}}));
  }
  const auto top = index.top_k(vec({{0, 1.0f}}), 3);
  EXPECT_EQ(top.size(), 3u);
  EXPECT_GE(top[0].score, top[1].score);
  EXPECT_GE(top[1].score, top[2].score);
}

TEST(LocalIndex, RemoveDocument) {
  LocalIndex index;
  index.add_document(1, vec({{0, 1.0f}}));
  index.add_document(2, vec({{0, 1.0f}}));
  EXPECT_TRUE(index.remove_document(1));
  EXPECT_FALSE(index.remove_document(1));
  EXPECT_EQ(index.document_count(), 1u);
  const auto results = index.evaluate(vec({{0, 1.0f}}), 0.0);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].doc, 2u);
}

TEST(LocalIndex, DuplicateAddThrows) {
  LocalIndex index;
  index.add_document(1, vec({{0, 1.0f}}));
  EXPECT_THROW(index.add_document(1, vec({{1, 1.0f}})), util::CheckFailure);
}

TEST(LocalIndex, DocumentIds) {
  LocalIndex index;
  index.add_document(5, vec({{0, 1.0f}}));
  index.add_document(9, vec({{1, 1.0f}}));
  auto ids = index.document_ids();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<DocId>{5, 9}));
}

TEST(LocalIndex, TermCountTracksPostings) {
  LocalIndex index;
  index.add_document(1, vec({{0, 1.0f}, {1, 1.0f}}));
  EXPECT_EQ(index.term_count(), 2u);
  index.remove_document(1);
  EXPECT_EQ(index.term_count(), 0u);
}

// The slot-compaction path: removing from the middle swap-moves the
// last document's slot, which must not corrupt either doc's postings.
TEST(LocalIndex, InterleavedRemovalKeepsScoresCorrect) {
  util::Rng rng(31);
  LocalIndex index;
  std::vector<std::pair<DocId, SparseVector>> live;
  DocId next_id = 0;
  for (int step = 0; step < 200; ++step) {
    if (live.empty() || rng.chance(0.6)) {
      std::vector<TermWeight> entries;
      const size_t n = rng.index(10) + 1;
      for (size_t i = 0; i < n; ++i) {
        entries.push_back({static_cast<TermId>(rng.index(25)),
                           static_cast<float>(rng.uniform(0.1, 2.0))});
      }
      auto v = SparseVector::from_pairs(std::move(entries));
      v.normalize();
      index.add_document(next_id, v);
      live.emplace_back(next_id++, std::move(v));
    } else {
      const size_t pick = rng.index(live.size());
      EXPECT_TRUE(index.remove_document(live[pick].first));
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    }
  }
  ASSERT_EQ(index.document_count(), live.size());
  const auto q = vec({{3, 1.0f}, {7, 1.0f}, {12, 1.0f}});
  const auto results = index.evaluate(q, 0.0);
  size_t positive = 0;
  for (const auto& [id, v] : live) {
    const double score = v.dot(q);
    if (score > 0.0) {
      ++positive;
      const auto it = std::find_if(results.begin(), results.end(),
                                   [id = id](const ScoredDoc& s) { return s.doc == id; });
      ASSERT_NE(it, results.end()) << "doc " << id << " missing";
      EXPECT_NEAR(it->score, score, 1e-9);
    }
  }
  EXPECT_EQ(results.size(), positive);
}

// One caller-provided arena may be reused across differently-sized
// indexes; evaluate() must leave it all-zeros for the next call.
TEST(LocalIndex, CallerProvidedArenaIsReusable) {
  LocalIndex small;
  small.add_document(1, vec({{0, 1.0f}}));
  LocalIndex big;
  for (DocId d = 0; d < 50; ++d) {
    big.add_document(d, vec({{0, 1.0f}, {d + 1, static_cast<float>(d % 5 + 1)}}));
  }
  ScoreArena arena;
  const auto q = vec({{0, 1.0f}});
  const auto r_big = big.evaluate(q, 0.0, arena);
  EXPECT_EQ(r_big.size(), 50u);
  const auto r_small = small.evaluate(q, 0.0, arena);
  ASSERT_EQ(r_small.size(), 1u);
  EXPECT_NEAR(r_small[0].score, 1.0, 1e-9);
  const auto r_big2 = big.evaluate(q, 0.0, arena);
  ASSERT_EQ(r_big2.size(), 50u);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(r_big2[i].doc, r_big[i].doc);
    EXPECT_NEAR(r_big2[i].score, r_big[i].score, 1e-12);
  }
}

// Property: evaluate() agrees with brute-force dot products on random data.
class LocalIndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LocalIndexPropertyTest, MatchesBruteForce) {
  util::Rng rng(GetParam());
  LocalIndex index;
  std::vector<std::pair<DocId, SparseVector>> docs;
  for (DocId d = 0; d < 40; ++d) {
    std::vector<TermWeight> entries;
    const size_t n = rng.index(15) + 1;
    for (size_t i = 0; i < n; ++i) {
      entries.push_back({static_cast<TermId>(rng.index(30)),
                         static_cast<float>(rng.uniform(0.1, 2.0))});
    }
    auto v = SparseVector::from_pairs(std::move(entries));
    v.normalize();
    index.add_document(d, v);
    docs.emplace_back(d, std::move(v));
  }
  std::vector<TermWeight> qe;
  for (size_t i = 0; i < 4; ++i) {
    qe.push_back({static_cast<TermId>(rng.index(30)), 1.0f});
  }
  auto q = SparseVector::from_pairs(std::move(qe));
  q.normalize();

  const auto results = index.evaluate(q, 0.0);
  // Brute force.
  size_t positive = 0;
  for (const auto& [id, v] : docs) {
    const double score = v.dot(q);
    if (score > 0.0) {
      ++positive;
      const auto it = std::find_if(results.begin(), results.end(),
                                   [id = id](const ScoredDoc& s) { return s.doc == id; });
      ASSERT_NE(it, results.end()) << "doc " << id << " missing";
      EXPECT_NEAR(it->score, score, 1e-9);
    }
  }
  EXPECT_EQ(results.size(), positive);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalIndexPropertyTest,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace ges::ir
