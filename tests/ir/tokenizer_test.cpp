#include "ir/tokenizer.hpp"

#include <gtest/gtest.h>

namespace ges::ir {
namespace {

TEST(Tokenizer, LowercasesAndSplits) {
  Tokenizer t;
  EXPECT_EQ(t.tokenize("Hello World"), (std::vector<std::string>{"hello", "world"}));
}

TEST(Tokenizer, NonAlphaAreSeparators) {
  Tokenizer t;
  EXPECT_EQ(t.tokenize("peer-to-peer, systems! 42x"),
            (std::vector<std::string>{"peer", "to", "peer", "systems"}));
}

TEST(Tokenizer, ApostropheSplitsContractions) {
  Tokenizer t;
  // "don't" -> "don" + "t"; the single letter falls below min length.
  EXPECT_EQ(t.tokenize("don't"), (std::vector<std::string>{"don"}));
}

TEST(Tokenizer, MinLengthFiltersShortTokens) {
  Tokenizer t(3);
  EXPECT_EQ(t.tokenize("a an the cat"), (std::vector<std::string>{"the", "cat"}));
}

TEST(Tokenizer, MaxLengthFiltersLongTokens) {
  Tokenizer t(2, 5);
  EXPECT_EQ(t.tokenize("short verylongtoken ok"),
            (std::vector<std::string>{"short", "ok"}));
}

TEST(Tokenizer, EmptyInput) {
  Tokenizer t;
  EXPECT_TRUE(t.tokenize("").empty());
  EXPECT_TRUE(t.tokenize("!!! 123 ...").empty());
}

TEST(Tokenizer, TokenizeIntoAppends) {
  Tokenizer t;
  std::vector<std::string> out{"existing"};
  t.tokenize_into("new token", out);
  EXPECT_EQ(out, (std::vector<std::string>{"existing", "new", "token"}));
}

TEST(Tokenizer, TrailingTokenFlushed) {
  Tokenizer t;
  EXPECT_EQ(t.tokenize("ends with word"),
            (std::vector<std::string>{"ends", "with", "word"}));
}

TEST(Tokenizer, HighBytesAreSeparators) {
  Tokenizer t;
  // UTF-8 bytes outside ASCII letters act as separators (documents in the
  // AP corpus are ASCII; this just must not crash or misbehave).
  EXPECT_EQ(t.tokenize("caf\xc3\xa9 shop"), (std::vector<std::string>{"caf", "shop"}));
}

}  // namespace
}  // namespace ges::ir
