#include "ir/analyzer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ges::ir {
namespace {

TEST(Analyzer, CountsTermFrequencies) {
  TermDictionary dict;
  const Analyzer a(dict, StopWords(), /*stem=*/false);
  const auto v = a.count_vector("apple banana apple");
  EXPECT_EQ(v.size(), 2u);
  EXPECT_FLOAT_EQ(v.weight(dict.lookup("apple")), 2.0f);
  EXPECT_FLOAT_EQ(v.weight(dict.lookup("banana")), 1.0f);
}

TEST(Analyzer, RemovesStopWords) {
  TermDictionary dict;
  const Analyzer a(dict);
  const auto v = a.count_vector("the cat and the dog");
  EXPECT_EQ(dict.lookup("the"), kInvalidTerm);
  EXPECT_NE(dict.lookup("cat"), kInvalidTerm);
  EXPECT_NE(dict.lookup("dog"), kInvalidTerm);
  EXPECT_EQ(v.size(), 2u);
}

TEST(Analyzer, StemsTokens) {
  TermDictionary dict;
  const Analyzer a(dict);
  const auto v = a.count_vector("restarted restarting restarts");
  EXPECT_EQ(v.size(), 1u);
  EXPECT_FLOAT_EQ(v.weight(dict.lookup("restart")), 3.0f);
}

TEST(Analyzer, DocumentVectorIsDampenedAndNormalized) {
  TermDictionary dict;
  const Analyzer a(dict, StopWords(), /*stem=*/false);
  const auto v = a.document_vector("xx xx xx yy");
  EXPECT_NEAR(v.norm(), 1.0, 1e-6);
  // Raw weights 3 and 1 -> 1+ln3 and 1; the ratio must be preserved.
  const double ratio = v.weight(dict.lookup("xx")) / v.weight(dict.lookup("yy"));
  EXPECT_NEAR(ratio, 1.0 + std::log(3.0), 1e-5);
}

TEST(Analyzer, QueryVectorMatchesDocumentPipeline) {
  TermDictionary dict;
  const Analyzer a(dict);
  const auto q = a.query_vector("semantic search");
  EXPECT_EQ(q.size(), 2u);
  EXPECT_NEAR(q.norm(), 1.0, 1e-6);
}

TEST(Analyzer, AnalyzeTokenFiltersStops) {
  TermDictionary dict;
  const Analyzer a(dict);
  EXPECT_EQ(a.analyze_token("the"), kInvalidTerm);
  EXPECT_NE(a.analyze_token("networks"), kInvalidTerm);
}

TEST(Analyzer, SharedDictionaryAcrossAnalyzers) {
  TermDictionary dict;
  const Analyzer a(dict);
  const Analyzer b(dict);
  const auto va = a.count_vector("peers");
  const auto vb = b.count_vector("peers");
  EXPECT_EQ(va.entries()[0].term, vb.entries()[0].term);
}

TEST(Analyzer, EmptyTextYieldsEmptyVector) {
  TermDictionary dict;
  const Analyzer a(dict);
  EXPECT_TRUE(a.count_vector("").empty());
  EXPECT_TRUE(a.document_vector("the of and").empty());
}

TEST(TermDictionary, InternIsIdempotent) {
  TermDictionary dict;
  const TermId a = dict.intern("hello");
  const TermId b = dict.intern("hello");
  EXPECT_EQ(a, b);
  EXPECT_EQ(dict.size(), 1u);
  EXPECT_EQ(dict.term(a), "hello");
}

TEST(TermDictionary, LookupMissing) {
  TermDictionary dict;
  EXPECT_EQ(dict.lookup("nothing"), kInvalidTerm);
}

TEST(TermDictionary, DenseIdsInOrder) {
  TermDictionary dict;
  EXPECT_EQ(dict.intern("a"), 0u);
  EXPECT_EQ(dict.intern("b"), 1u);
  EXPECT_EQ(dict.intern("c"), 2u);
}

}  // namespace
}  // namespace ges::ir
