#include "ir/weighting.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"

namespace ges::ir {
namespace {

SparseVector counts(std::vector<TermWeight> entries) {
  return SparseVector::from_pairs(std::move(entries));
}

TEST(DocumentFrequencies, CountsAcrossDocs) {
  const std::vector<SparseVector> docs{counts({{0, 2.0f}, {1, 1.0f}}),
                                       counts({{0, 1.0f}}),
                                       counts({{1, 3.0f}, {2, 1.0f}})};
  const auto df = DocumentFrequencies::from_count_vectors(docs);
  EXPECT_EQ(df.num_docs(), 3u);
  EXPECT_EQ(df.df(0), 2u);
  EXPECT_EQ(df.df(1), 2u);
  EXPECT_EQ(df.df(2), 1u);
  EXPECT_EQ(df.df(9), 0u);
}

TEST(DocumentFrequencies, IdfValues) {
  const std::vector<SparseVector> docs{counts({{0, 1.0f}}), counts({{0, 1.0f}}),
                                       counts({{1, 1.0f}})};
  const auto df = DocumentFrequencies::from_count_vectors(docs);
  EXPECT_NEAR(df.idf(0), std::log(3.0 / 2.0), 1e-12);
  EXPECT_NEAR(df.idf(1), std::log(3.0), 1e-12);
  EXPECT_DOUBLE_EQ(df.idf(9), 0.0);  // unseen
}

TEST(Weighting, RawTfPreservesRatios) {
  const auto v = weight_counts(counts({{0, 4.0f}, {1, 2.0f}}), TermWeighting::kRawTf);
  EXPECT_NEAR(v.norm(), 1.0, 1e-6);
  EXPECT_NEAR(v.weight(0) / v.weight(1), 2.0, 1e-5);
}

TEST(Weighting, DampenedTfMatchesFormula) {
  const auto v = weight_counts(counts({{0, static_cast<float>(std::exp(1.0))}, {1, 1.0f}}),
                               TermWeighting::kDampenedTf);
  EXPECT_NEAR(v.weight(0) / v.weight(1), 2.0, 1e-4);  // (1+ln e) / (1+ln 1)
}

TEST(Weighting, TfIdfDownweightsCommonTerms) {
  const std::vector<SparseVector> docs{counts({{0, 1.0f}, {1, 1.0f}}),
                                       counts({{0, 1.0f}}), counts({{0, 1.0f}})};
  const auto df = DocumentFrequencies::from_count_vectors(docs);
  const auto v =
      weight_counts(counts({{0, 1.0f}, {1, 1.0f}}), TermWeighting::kTfIdf, &df);
  // Term 0 appears in every doc -> idf 0 -> dropped entirely.
  EXPECT_EQ(v.weight(0), 0.0f);
  EXPECT_GT(v.weight(1), 0.0f);
  EXPECT_NEAR(v.norm(), 1.0, 1e-6);
}

TEST(Weighting, TfIdfWithoutDfThrows) {
  EXPECT_THROW(weight_counts(counts({{0, 1.0f}}), TermWeighting::kTfIdf),
               util::CheckFailure);
}

TEST(Weighting, RejectsSubUnitFrequencies) {
  EXPECT_THROW(weight_counts(counts({{0, 0.5f}}), TermWeighting::kRawTf),
               util::CheckFailure);
}

TEST(Weighting, Names) {
  EXPECT_STREQ(weighting_name(TermWeighting::kRawTf), "raw-tf");
  EXPECT_STREQ(weighting_name(TermWeighting::kDampenedTf), "dampened-tf");
  EXPECT_STREQ(weighting_name(TermWeighting::kTfIdf), "tf-idf");
}

TEST(Weighting, DampenedEqualsSparseVectorDampen) {
  auto manual = counts({{0, 5.0f}, {1, 2.0f}});
  manual.dampen();
  manual.normalize();
  const auto via_scheme =
      weight_counts(counts({{0, 5.0f}, {1, 2.0f}}), TermWeighting::kDampenedTf);
  EXPECT_NEAR(manual.weight(0), via_scheme.weight(0), 1e-6);
  EXPECT_NEAR(manual.weight(1), via_scheme.weight(1), 1e-6);
}

}  // namespace
}  // namespace ges::ir
