// The adaptive dot product (merge vs galloping) must agree with a naive
// reference on every size combination, including the crossover region.

#include <gtest/gtest.h>

#include "ir/sparse_vector.hpp"
#include "util/rng.hpp"

namespace ges::ir {
namespace {

SparseVector random_vector(util::Rng& rng, size_t terms, TermId vocab) {
  std::vector<TermWeight> entries;
  for (size_t i = 0; i < terms; ++i) {
    entries.push_back({static_cast<TermId>(rng.index(vocab)),
                       static_cast<float>(rng.uniform(0.1, 2.0))});
  }
  return SparseVector::from_pairs(std::move(entries));
}

double naive_dot(const SparseVector& a, const SparseVector& b) {
  double sum = 0.0;
  for (const auto& e : a.entries()) {
    sum += static_cast<double>(e.weight) * b.weight(e.term);
  }
  return sum;
}

class DotShapeTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {};

TEST_P(DotShapeTest, MatchesNaive) {
  const auto [size_a, size_b, seed] = GetParam();
  util::Rng rng(seed);
  const auto a = random_vector(rng, size_a, 4000);
  const auto b = random_vector(rng, size_b, 4000);
  EXPECT_NEAR(a.dot(b), naive_dot(a, b), 1e-9);
  EXPECT_NEAR(b.dot(a), naive_dot(a, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DotShapeTest,
    ::testing::Combine(::testing::Values<size_t>(1, 3, 15, 16, 17, 300),
                       ::testing::Values<size_t>(1, 4, 64, 256, 2000),
                       ::testing::Values<uint64_t>(1, 2, 3)));

TEST(DotShape, TinyVsHugeSharedTail) {
  // Query terms at the very end of a big vector exercise the gallop's
  // final lower_bound.
  std::vector<TermWeight> big;
  for (TermId t = 0; t < 3000; ++t) big.push_back({t, 1.0f});
  const auto large = SparseVector::from_pairs(std::move(big));
  const auto small = SparseVector::from_pairs({{2998, 2.0f}, {2999, 3.0f}});
  EXPECT_DOUBLE_EQ(large.dot(small), 5.0);
}

TEST(DotShape, TinyVsHugeNoOverlap) {
  std::vector<TermWeight> big;
  for (TermId t = 0; t < 3000; t += 2) big.push_back({t, 1.0f});
  const auto large = SparseVector::from_pairs(std::move(big));
  const auto small = SparseVector::from_pairs({{1, 1.0f}, {2999, 1.0f}});
  EXPECT_DOUBLE_EQ(large.dot(small), 0.0);
}

TEST(DotShape, EmptySides) {
  const SparseVector empty;
  const auto v = SparseVector::from_pairs({{0, 1.0f}});
  EXPECT_DOUBLE_EQ(empty.dot(v), 0.0);
  EXPECT_DOUBLE_EQ(v.dot(empty), 0.0);
  EXPECT_DOUBLE_EQ(empty.dot(empty), 0.0);
}

}  // namespace
}  // namespace ges::ir
