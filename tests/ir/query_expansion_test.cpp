#include "ir/query_expansion.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ges::ir {
namespace {

SparseVector vec(std::vector<TermWeight> entries) {
  auto v = SparseVector::from_pairs(std::move(entries));
  v.normalize();
  return v;
}

TEST(QueryExpansion, NoFeedbackReturnsOriginal) {
  const auto q = vec({{0, 1.0f}});
  EXPECT_EQ(expand_query(q, {}), q);
}

TEST(QueryExpansion, ZeroAddedTermsReturnsOriginal) {
  const auto q = vec({{0, 1.0f}});
  const std::vector<SparseVector> fb{vec({{1, 1.0f}})};
  QueryExpansionParams p;
  p.added_terms = 0;
  EXPECT_EQ(expand_query(q, fb, p), q);
}

TEST(QueryExpansion, AddsTopCentroidTerms) {
  const auto q = vec({{0, 1.0f}});
  const std::vector<SparseVector> fb{vec({{0, 1.0f}, {1, 5.0f}, {2, 0.1f}})};
  QueryExpansionParams p;
  p.added_terms = 1;
  const auto expanded = expand_query(q, fb, p);
  EXPECT_NE(expanded.weight(1), 0.0f);   // heaviest new term added
  EXPECT_EQ(expanded.weight(2), 0.0f);   // beyond added_terms budget
  EXPECT_NE(expanded.weight(0), 0.0f);   // original query kept
}

TEST(QueryExpansion, DoesNotDuplicateQueryTerms) {
  const auto q = vec({{0, 1.0f}, {1, 1.0f}});
  const std::vector<SparseVector> fb{vec({{0, 9.0f}, {1, 9.0f}, {2, 1.0f}})};
  QueryExpansionParams p;
  p.added_terms = 2;
  const auto expanded = expand_query(q, fb, p);
  // Terms 0/1 were already in the query; only term 2 is new.
  EXPECT_EQ(expanded.size(), 3u);
}

TEST(QueryExpansion, ResultIsNormalized) {
  const auto q = vec({{0, 1.0f}});
  const std::vector<SparseVector> fb{vec({{1, 1.0f}, {2, 2.0f}})};
  const auto expanded = expand_query(q, fb);
  EXPECT_NEAR(expanded.norm(), 1.0, 1e-6);
}

TEST(QueryExpansion, ExpansionWeightControlsInfluence) {
  const auto q = vec({{0, 1.0f}});
  const std::vector<SparseVector> fb{vec({{1, 1.0f}})};
  QueryExpansionParams weak;
  weak.expansion_weight = 0.1;
  QueryExpansionParams strong;
  strong.expansion_weight = 2.0;
  const auto e_weak = expand_query(q, fb, weak);
  const auto e_strong = expand_query(q, fb, strong);
  EXPECT_LT(e_weak.weight(1), e_strong.weight(1));
  EXPECT_GT(e_weak.weight(0), e_strong.weight(0));
}

TEST(QueryExpansion, CentroidAveragesFeedbackDocs) {
  const auto q = vec({{9, 1.0f}});
  // Term 1 appears in both docs, term 2 in one: term 1 should dominate.
  const std::vector<SparseVector> fb{vec({{1, 1.0f}, {2, 1.0f}}), vec({{1, 1.0f}})};
  QueryExpansionParams p;
  p.added_terms = 1;
  const auto expanded = expand_query(q, fb, p);
  EXPECT_NE(expanded.weight(1), 0.0f);
  EXPECT_EQ(expanded.weight(2), 0.0f);
}

TEST(QueryExpansion, ExpandedQueryImprovesRecallOfRelatedDocs) {
  // A doc sharing no terms with the query becomes reachable after
  // expansion with feedback that bridges the vocabulary.
  const auto q = vec({{0, 1.0f}});
  const auto bridge = vec({{0, 1.0f}, {5, 1.0f}});
  const auto hidden = vec({{5, 1.0f}});
  EXPECT_EQ(q.dot(hidden), 0.0);
  const std::vector<SparseVector> fb{bridge};
  const auto expanded = expand_query(q, fb);
  EXPECT_GT(expanded.dot(hidden), 0.0);
}

}  // namespace
}  // namespace ges::ir
