#include "ir/node_vector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ges::ir {
namespace {

SparseVector counts(std::vector<TermWeight> entries) {
  return SparseVector::from_pairs(std::move(entries));
}

TEST(NodeVector, SumsDocumentCountsBeforeDampening) {
  // Two docs each with f=1 for term 0 -> summed f=2 -> weight 1+ln2;
  // term 1 appears once -> weight 1. (Paper §4.2: sum first, then dampen.)
  const std::vector<SparseVector> docs{counts({{0, 1.0f}}),
                                       counts({{0, 1.0f}, {1, 1.0f}})};
  const auto nv = build_node_vector(docs);
  EXPECT_NEAR(nv.norm(), 1.0, 1e-6);
  const double ratio = nv.weight(0) / nv.weight(1);
  EXPECT_NEAR(ratio, 1.0 + std::log(2.0), 1e-5);
}

TEST(NodeVector, EmptyDocsGiveEmptyVector) {
  EXPECT_TRUE(build_node_vector({}).empty());
}

TEST(NodeVector, TruncationKeepsHeaviestAndRenormalizes) {
  const std::vector<SparseVector> docs{
      counts({{0, 10.0f}, {1, 5.0f}, {2, 2.0f}, {3, 1.0f}})};
  const auto nv = build_node_vector(docs, 2);
  EXPECT_EQ(nv.size(), 2u);
  EXPECT_NE(nv.weight(0), 0.0f);
  EXPECT_NE(nv.weight(1), 0.0f);
  EXPECT_NEAR(nv.norm(), 1.0, 1e-6);
}

TEST(NodeVector, SizeZeroMeansFull) {
  const std::vector<SparseVector> docs{counts({{0, 1.0f}, {1, 2.0f}, {2, 3.0f}})};
  EXPECT_EQ(build_node_vector(docs, 0).size(), 3u);
}

TEST(NodeVector, TruncateExistingVector) {
  const std::vector<SparseVector> docs{
      counts({{0, 9.0f}, {1, 8.0f}, {2, 7.0f}, {3, 6.0f}})};
  const auto full = build_node_vector(docs);
  const auto t2 = truncate_node_vector(full, 2);
  EXPECT_EQ(t2.size(), 2u);
  EXPECT_NEAR(t2.norm(), 1.0, 1e-6);
  // Truncating to at least the current size is the identity.
  EXPECT_EQ(truncate_node_vector(full, 10), full);
  EXPECT_EQ(truncate_node_vector(full, 0), full);
}

TEST(NodeVector, TruncationPreservesTopTermOrder) {
  const std::vector<SparseVector> docs{
      counts({{0, 100.0f}, {1, 50.0f}, {2, 10.0f}, {3, 1.0f}})};
  const auto full = build_node_vector(docs);
  const auto t3 = truncate_node_vector(full, 3);
  // Weight order must be preserved: 0 > 1 > 2, term 3 dropped.
  EXPECT_GT(t3.weight(0), t3.weight(1));
  EXPECT_GT(t3.weight(1), t3.weight(2));
  EXPECT_EQ(t3.weight(3), 0.0f);
}

TEST(NodeVector, ManyDocsAggregate) {
  // 10 docs each mentioning term 7 once; node vector is a single term
  // with weight 1 after normalization.
  std::vector<SparseVector> docs(10, counts({{7, 1.0f}}));
  const auto nv = build_node_vector(docs);
  ASSERT_EQ(nv.size(), 1u);
  EXPECT_NEAR(nv.weight(7), 1.0f, 1e-6);
}

}  // namespace
}  // namespace ges::ir
