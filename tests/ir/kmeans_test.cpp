#include "ir/kmeans.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/check.hpp"

namespace ges::ir {
namespace {

SparseVector unit(std::vector<TermWeight> entries) {
  auto v = SparseVector::from_pairs(std::move(entries));
  v.normalize();
  return v;
}

/// Three well-separated groups on disjoint term blocks.
std::vector<SparseVector> three_blobs() {
  std::vector<SparseVector> vs;
  for (TermId base : {0u, 100u, 200u}) {
    for (uint32_t i = 0; i < 5; ++i) {
      vs.push_back(unit({{base, 3.0f}, {base + 1 + i % 3, 1.0f + static_cast<float>(i)}}));
    }
  }
  return vs;
}

TEST(KMeans, RecoversSeparatedClusters) {
  const auto vs = three_blobs();
  KMeansParams p;
  p.clusters = 3;
  p.seed = 7;
  const auto result = spherical_kmeans(vs, p);
  ASSERT_EQ(result.assignment.size(), vs.size());
  // All members of one blob share a cluster; blobs map to distinct ids.
  std::set<uint32_t> blob_clusters;
  for (size_t blob = 0; blob < 3; ++blob) {
    const uint32_t c = result.assignment[blob * 5];
    blob_clusters.insert(c);
    for (size_t i = 0; i < 5; ++i) EXPECT_EQ(result.assignment[blob * 5 + i], c);
  }
  EXPECT_EQ(blob_clusters.size(), 3u);
  EXPECT_GT(result.mean_similarity, 0.8);
}

TEST(KMeans, SingleClusterTrivial) {
  const auto vs = three_blobs();
  KMeansParams p;
  p.clusters = 1;
  const auto result = spherical_kmeans(vs, p);
  for (const auto c : result.assignment) EXPECT_EQ(c, 0u);
  EXPECT_EQ(result.centroids.size(), 1u);
}

TEST(KMeans, CentroidsNormalizedAndTruncated) {
  const auto vs = three_blobs();
  KMeansParams p;
  p.clusters = 2;
  p.centroid_terms = 2;
  const auto result = spherical_kmeans(vs, p);
  for (const auto& c : result.centroids) {
    EXPECT_LE(c.size(), 2u);
    EXPECT_NEAR(c.norm(), 1.0, 1e-5);
  }
}

TEST(KMeans, DeterministicInSeed) {
  const auto vs = three_blobs();
  KMeansParams p;
  p.clusters = 3;
  p.seed = 9;
  EXPECT_EQ(spherical_kmeans(vs, p).assignment, spherical_kmeans(vs, p).assignment);
}

TEST(KMeans, MoreClustersThanVectorsThrows) {
  const std::vector<SparseVector> vs{unit({{0, 1.0f}})};
  KMeansParams p;
  p.clusters = 2;
  EXPECT_THROW(spherical_kmeans(vs, p), util::CheckFailure);
}

TEST(KMeans, ZeroClustersThrows) {
  const auto vs = three_blobs();
  KMeansParams p;
  p.clusters = 0;
  EXPECT_THROW(spherical_kmeans(vs, p), util::CheckFailure);
}

TEST(KMeans, KEqualsNIsPerfect) {
  const auto vs = three_blobs();
  KMeansParams p;
  p.clusters = vs.size();
  const auto result = spherical_kmeans(vs, p);
  EXPECT_GT(result.mean_similarity, 0.99);
}

TEST(KMeans, HandlesEmptyVectors) {
  std::vector<SparseVector> vs = three_blobs();
  vs.emplace_back();  // an empty vector must not crash the clustering
  KMeansParams p;
  p.clusters = 3;
  const auto result = spherical_kmeans(vs, p);
  EXPECT_EQ(result.assignment.size(), vs.size());
}

TEST(KMeans, IterationsReported) {
  const auto vs = three_blobs();
  KMeansParams p;
  p.clusters = 3;
  p.max_iterations = 5;
  const auto result = spherical_kmeans(vs, p);
  EXPECT_GE(result.iterations, 1u);
  EXPECT_LE(result.iterations, 5u);
}

}  // namespace
}  // namespace ges::ir
