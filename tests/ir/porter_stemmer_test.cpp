#include "ir/porter_stemmer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>

namespace ges::ir {
namespace {

using Pair = std::pair<const char*, const char*>;

class PorterParamTest : public ::testing::TestWithParam<Pair> {};

TEST_P(PorterParamTest, StemsToExpected) {
  const auto& [input, expected] = GetParam();
  EXPECT_EQ(porter_stem(input), expected) << "input: " << input;
}

// Step 1a: plurals.
INSTANTIATE_TEST_SUITE_P(Step1a, PorterParamTest,
                         ::testing::Values(Pair{"caresses", "caress"},
                                           Pair{"ponies", "poni"},
                                           Pair{"ties", "ti"},
                                           Pair{"caress", "caress"},
                                           Pair{"cats", "cat"}));

// Step 1b: -eed / -ed / -ing with restorations.
INSTANTIATE_TEST_SUITE_P(Step1b, PorterParamTest,
                         ::testing::Values(Pair{"feed", "feed"},
                                           Pair{"agreed", "agre"},
                                           Pair{"plastered", "plaster"},
                                           Pair{"bled", "bled"},
                                           Pair{"motoring", "motor"},
                                           Pair{"sing", "sing"},
                                           Pair{"conflated", "conflat"},
                                           Pair{"troubled", "troubl"},
                                           Pair{"sized", "size"},
                                           Pair{"hopping", "hop"},
                                           Pair{"tanned", "tan"},
                                           Pair{"falling", "fall"},
                                           Pair{"hissing", "hiss"},
                                           Pair{"fizzed", "fizz"},
                                           Pair{"failing", "fail"},
                                           Pair{"filing", "file"}));

// Step 1c: y -> i.
INSTANTIATE_TEST_SUITE_P(Step1c, PorterParamTest,
                         ::testing::Values(Pair{"happy", "happi"}, Pair{"sky", "sky"}));

// Steps 2-4: derivational suffixes.
INSTANTIATE_TEST_SUITE_P(
    Steps2to4, PorterParamTest,
    ::testing::Values(Pair{"relational", "relat"}, Pair{"conditional", "condit"},
                      Pair{"rational", "ration"}, Pair{"digitizer", "digit"},
                      Pair{"operator", "oper"}, Pair{"feudalism", "feudal"},
                      Pair{"decisiveness", "decis"}, Pair{"hopefulness", "hope"},
                      Pair{"callousness", "callous"}, Pair{"formality", "formal"},
                      Pair{"sensitivity", "sensit"}, Pair{"sensibility", "sensibl"},
                      Pair{"triplicate", "triplic"}, Pair{"formative", "form"},
                      Pair{"formalize", "formal"}, Pair{"electricity", "electr"},
                      Pair{"electrical", "electr"}, Pair{"hopeful", "hope"},
                      Pair{"goodness", "good"}, Pair{"revival", "reviv"},
                      Pair{"allowance", "allow"}, Pair{"inference", "infer"},
                      Pair{"airliner", "airlin"}, Pair{"gyroscopic", "gyroscop"},
                      Pair{"adjustable", "adjust"}, Pair{"defensible", "defens"},
                      Pair{"irritant", "irrit"}, Pair{"replacement", "replac"},
                      Pair{"adjustment", "adjust"}, Pair{"dependent", "depend"},
                      Pair{"adoption", "adopt"}, Pair{"communism", "commun"},
                      Pair{"activate", "activ"}, Pair{"effective", "effect"},
                      Pair{"bowdlerize", "bowdler"}));

// Step 5: final -e and -ll.
INSTANTIATE_TEST_SUITE_P(Step5, PorterParamTest,
                         ::testing::Values(Pair{"probate", "probat"},
                                           Pair{"rate", "rate"},
                                           Pair{"cease", "ceas"},
                                           Pair{"controll", "control"},
                                           Pair{"roll", "roll"}));

// The paper's own example (§3 footnote 1).
INSTANTIATE_TEST_SUITE_P(PaperExample, PorterParamTest,
                         ::testing::Values(Pair{"restarted", "restart"},
                                           Pair{"restarts", "restart"},
                                           Pair{"restarting", "restart"}));

TEST(PorterStemmer, ShortWordsUnchanged) {
  EXPECT_EQ(porter_stem("a"), "a");
  EXPECT_EQ(porter_stem("is"), "is");
  EXPECT_EQ(porter_stem("be"), "be");
}

TEST(PorterStemmer, EmptyString) { EXPECT_EQ(porter_stem(""), ""); }

TEST(PorterStemmer, IdempotentOnStems) {
  for (const char* w : {"restart", "motor", "relat", "commun", "hope"}) {
    const std::string once = porter_stem(w);
    EXPECT_EQ(porter_stem(once), once) << w;
  }
}

TEST(PorterStemmer, MergesInflectionalFamily) {
  const std::string base = porter_stem("connect");
  EXPECT_EQ(porter_stem("connected"), base);
  EXPECT_EQ(porter_stem("connecting"), base);
  EXPECT_EQ(porter_stem("connection"), base);
  EXPECT_EQ(porter_stem("connections"), base);
}

}  // namespace
}  // namespace ges::ir
