#!/usr/bin/env python3
"""Regression tests for scripts/check_telemetry_json.py.

Runs the validator as a subprocess against synthetic documents and
asserts pass/fail behavior, with emphasis on the --expect-family
contract: a declared metric family must be present in at least one
validated ges.metrics.v1 document (top-level or embedded in a bench
document), and a declared-but-absent family must fail the run even when
every individual file is schema-valid — that is the regression this
suite pins down.

Registered as a ctest (`telemetry_validator_selftest`); stdlib-only.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "..", "scripts",
    "check_telemetry_json.py")


def metrics_doc(names):
    return {
        "schema": "ges.metrics.v1",
        "metrics": [
            {"name": n, "kind": "counter", "value": 3} for n in sorted(names)
        ],
    }


def bench_doc(metric_names=None):
    doc = {
        "schema": "ges.bench.v1",
        "bench": "selftest",
        "entries": [{"name": "entry", "ops_per_sec": 10.0, "ns_per_op": 1e8}],
    }
    if metric_names is not None:
        doc["metrics"] = metrics_doc(metric_names)
    return doc


def autopsy_doc():
    """A minimal well-formed ges.autopsy.v1 document: one retained query
    whose cost summary matches its event graph exactly."""
    cost = {"probes": 2, "walk_steps": 1, "flood_messages": 0,
            "cache_hits": 1, "targets": 1, "retrieved_docs": 3,
            "rel_evals": 4, "rel_memo_hits": 0, "bytes_sent": 57}
    events = [
        {"id": 0, "parent": -1, "kind": "issued", "t": 1.0, "node": 7},
        {"id": 1, "parent": 0, "kind": "cache_probe", "t": 1.0, "node": 7,
         "outcome": "miss", "docs": 0},
        {"id": 2, "parent": 0, "kind": "probe", "t": 1.0, "node": 7,
         "docs": 3, "target": True},
        # 57 = Wire-format-v1 WalkQuery frame for a 4-term query.
        {"id": 3, "parent": 2, "kind": "walk_hop", "t": 1.5, "from": 7,
         "to": 9, "rel": 0.25, "supernode": False, "bytes": 57},
        {"id": 4, "parent": 3, "kind": "cache_probe", "t": 2.0, "node": 9,
         "outcome": "hit", "docs": 3},
    ]
    return {
        "schema": "ges.autopsy.v1",
        "queries_seen": 4,
        "queries_retained": 1,
        "queries_dropped": 3,
        "events_dropped": 0,
        "config": {"worst_k": 1, "sample_capacity": 0, "sample_every": 0,
                   "max_events_per_query": 64},
        "autopsies": [{
            "query": {"ordinal": 2, "guid": 0, "initiator": 7,
                      "engine": "sync", "issued_at": 1.0, "completed_at": 2.0,
                      "reason": "cache_hit", "retained": "worst",
                      "cost": cost, "events_recorded": 5,
                      "events_dropped": 0},
            "events": events,
        }],
    }


def timeseries_doc():
    return {
        "schema": "ges.timeseries.v1",
        "interval": 5.0,
        "samples_taken": 3,
        "samples_retained": 2,
        "samples_dropped": 1,
        "max_samples": 2,
        "samples": [
            {"t": 5.0, "counters": {"ges.search.queries": 1},
             "gauges": {"p2p.health.alive_nodes": 24.0}},
            {"t": 10.0, "counters": {"ges.search.queries": 3},
             "gauges": {"p2p.health.alive_nodes": 22.0}},
        ],
    }


class ValidatorTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write(self, name, doc):
        path = os.path.join(self._dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def run_validator(self, *args):
        return subprocess.run(
            [sys.executable, SCRIPT, *args],
            capture_output=True, text=True, check=False)

    def test_valid_metrics_doc_passes(self):
        path = self.write("m.json", metrics_doc(["ges.cache.hits"]))
        result = self.run_validator(path)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("OK", result.stdout)

    def test_unsorted_metrics_fail(self):
        doc = metrics_doc(["a", "b"])
        doc["metrics"].reverse()
        path = self.write("m.json", doc)
        result = self.run_validator(path)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("sorted", result.stderr)

    def test_negative_counter_fails(self):
        doc = metrics_doc(["ges.cache.hits"])
        doc["metrics"][0]["value"] = -1
        path = self.write("m.json", doc)
        result = self.run_validator(path)
        self.assertNotEqual(result.returncode, 0)

    def test_expected_family_present_passes(self):
        path = self.write(
            "m.json", metrics_doc(["ges.cache.hits", "ges.cache.misses"]))
        result = self.run_validator(path, "--expect-family", "ges.cache.")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("2 metric(s)", result.stdout)

    def test_declared_but_absent_family_fails(self):
        # The file itself is schema-valid; only the family check may fail.
        path = self.write("m.json", metrics_doc(["ges.search.probes"]))
        result = self.run_validator(path, "--expect-family", "ges.cache.")
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("ges.cache.", result.stderr)
        self.assertIn("absent", result.stderr)

    def test_family_satisfied_across_files(self):
        a = self.write("a.json", metrics_doc(["ges.search.probes"]))
        b = self.write("b.json", metrics_doc(["ges.cache.evictions"]))
        result = self.run_validator(
            a, b, "--expect-family", "ges.cache.", "--expect-family",
            "ges.search.")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_family_found_in_embedded_bench_metrics(self):
        path = self.write("b.json", bench_doc(["ges.cache.stores"]))
        result = self.run_validator(path, "--expect-family", "ges.cache.")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_bench_without_embedded_metrics_cannot_satisfy_family(self):
        path = self.write("b.json", bench_doc())
        result = self.run_validator(path, "--expect-family", "ges.cache.")
        self.assertNotEqual(result.returncode, 0)

    def test_missing_prefix_argument_fails(self):
        path = self.write("m.json", metrics_doc(["x"]))
        result = self.run_validator(path, "--expect-family")
        self.assertNotEqual(result.returncode, 0)

    def test_invalid_json_fails(self):
        path = os.path.join(self._dir.name, "broken.json")
        with open(path, "w", encoding="utf-8") as f:
            f.write("{not json")
        result = self.run_validator(path)
        self.assertNotEqual(result.returncode, 0)

    # --- ges.autopsy.v1 ------------------------------------------------

    def test_valid_autopsy_passes(self):
        path = self.write("a.json", autopsy_doc())
        result = self.run_validator(path)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("1 autopsies", result.stdout)

    def test_committed_fixture_passes(self):
        fixture = os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "fixtures",
            "autopsy_sample.json")
        result = self.run_validator(fixture)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_autopsy_retention_imbalance_fails(self):
        doc = autopsy_doc()
        doc["queries_dropped"] = 99
        path = self.write("a.json", doc)
        result = self.run_validator(path)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("queries_seen", result.stderr)

    def test_autopsy_forward_parent_fails(self):
        # Parent must strictly precede its child in the event order.
        doc = autopsy_doc()
        doc["autopsies"][0]["events"][3]["parent"] = 4
        path = self.write("a.json", doc)
        result = self.run_validator(path)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("does not precede", result.stderr)

    def test_autopsy_time_travel_fails(self):
        doc = autopsy_doc()
        doc["autopsies"][0]["events"][4]["t"] = 0.5  # before parent's 1.5
        path = self.write("a.json", doc)
        result = self.run_validator(path)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("precedes its parent", result.stderr)

    def test_autopsy_cost_event_mismatch_fails(self):
        # With no capped events the cost summary must be reconstructible
        # from the event graph — a drifting hook is a recorder bug.
        doc = autopsy_doc()
        doc["autopsies"][0]["query"]["cost"]["walk_steps"] = 5
        path = self.write("a.json", doc)
        result = self.run_validator(path)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("reconstructed from events", result.stderr)

    def test_autopsy_capped_query_skips_cost_reconstruction(self):
        # Once events were dropped by the per-query cap, the counts can
        # no longer be reconstructed; accounting must still balance.
        doc = autopsy_doc()
        q = doc["autopsies"][0]["query"]
        q["cost"]["walk_steps"] = 5
        q["events_dropped"] = 4
        q["events_recorded"] = 9
        path = self.write("a.json", doc)
        result = self.run_validator(path)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_autopsy_missing_event_bytes_fails(self):
        # Every message-bearing event must report its wire-frame size.
        doc = autopsy_doc()
        del doc["autopsies"][0]["events"][3]["bytes"]
        path = self.write("a.json", doc)
        result = self.run_validator(path)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("bytes", result.stderr)

    def test_autopsy_byte_reconciliation_mismatch_fails(self):
        # cost.bytes_sent must equal the summed per-event frame sizes.
        doc = autopsy_doc()
        doc["autopsies"][0]["query"]["cost"]["bytes_sent"] = 9999
        path = self.write("a.json", doc)
        result = self.run_validator(path)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("bytes_sent", result.stderr)

    def test_autopsy_unknown_event_kind_fails(self):
        doc = autopsy_doc()
        doc["autopsies"][0]["events"][2]["kind"] = "teleport"
        path = self.write("a.json", doc)
        result = self.run_validator(path)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("unknown kind", result.stderr)

    # --- ges.timeseries.v1 ---------------------------------------------

    def test_valid_timeseries_passes(self):
        path = self.write("t.json", timeseries_doc())
        result = self.run_validator(path)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("2 samples", result.stdout)

    def test_timeseries_nonincreasing_time_fails(self):
        doc = timeseries_doc()
        doc["samples"][1]["t"] = 5.0
        path = self.write("t.json", doc)
        result = self.run_validator(path)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("strictly increasing", result.stderr)

    def test_timeseries_decreasing_counter_fails(self):
        doc = timeseries_doc()
        doc["samples"][1]["counters"]["ges.search.queries"] = 0
        path = self.write("t.json", doc)
        result = self.run_validator(path)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("decreased", result.stderr)

    def test_timeseries_retention_imbalance_fails(self):
        doc = timeseries_doc()
        doc["samples_dropped"] = 0
        path = self.write("t.json", doc)
        result = self.run_validator(path)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("samples_taken", result.stderr)

    def test_timeseries_ring_overflow_fails(self):
        doc = timeseries_doc()
        doc["max_samples"] = 1
        path = self.write("t.json", doc)
        result = self.run_validator(path)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("ring", result.stderr)


if __name__ == "__main__":
    unittest.main()
