#!/usr/bin/env python3
"""Regression tests for scripts/check_telemetry_json.py.

Runs the validator as a subprocess against synthetic documents and
asserts pass/fail behavior, with emphasis on the --expect-family
contract: a declared metric family must be present in at least one
validated ges.metrics.v1 document (top-level or embedded in a bench
document), and a declared-but-absent family must fail the run even when
every individual file is schema-valid — that is the regression this
suite pins down.

Registered as a ctest (`telemetry_validator_selftest`); stdlib-only.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "..", "scripts",
    "check_telemetry_json.py")


def metrics_doc(names):
    return {
        "schema": "ges.metrics.v1",
        "metrics": [
            {"name": n, "kind": "counter", "value": 3} for n in sorted(names)
        ],
    }


def bench_doc(metric_names=None):
    doc = {
        "schema": "ges.bench.v1",
        "bench": "selftest",
        "entries": [{"name": "entry", "ops_per_sec": 10.0, "ns_per_op": 1e8}],
    }
    if metric_names is not None:
        doc["metrics"] = metrics_doc(metric_names)
    return doc


class ValidatorTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write(self, name, doc):
        path = os.path.join(self._dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def run_validator(self, *args):
        return subprocess.run(
            [sys.executable, SCRIPT, *args],
            capture_output=True, text=True, check=False)

    def test_valid_metrics_doc_passes(self):
        path = self.write("m.json", metrics_doc(["ges.cache.hits"]))
        result = self.run_validator(path)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("OK", result.stdout)

    def test_unsorted_metrics_fail(self):
        doc = metrics_doc(["a", "b"])
        doc["metrics"].reverse()
        path = self.write("m.json", doc)
        result = self.run_validator(path)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("sorted", result.stderr)

    def test_negative_counter_fails(self):
        doc = metrics_doc(["ges.cache.hits"])
        doc["metrics"][0]["value"] = -1
        path = self.write("m.json", doc)
        result = self.run_validator(path)
        self.assertNotEqual(result.returncode, 0)

    def test_expected_family_present_passes(self):
        path = self.write(
            "m.json", metrics_doc(["ges.cache.hits", "ges.cache.misses"]))
        result = self.run_validator(path, "--expect-family", "ges.cache.")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("2 metric(s)", result.stdout)

    def test_declared_but_absent_family_fails(self):
        # The file itself is schema-valid; only the family check may fail.
        path = self.write("m.json", metrics_doc(["ges.search.probes"]))
        result = self.run_validator(path, "--expect-family", "ges.cache.")
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("ges.cache.", result.stderr)
        self.assertIn("absent", result.stderr)

    def test_family_satisfied_across_files(self):
        a = self.write("a.json", metrics_doc(["ges.search.probes"]))
        b = self.write("b.json", metrics_doc(["ges.cache.evictions"]))
        result = self.run_validator(
            a, b, "--expect-family", "ges.cache.", "--expect-family",
            "ges.search.")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_family_found_in_embedded_bench_metrics(self):
        path = self.write("b.json", bench_doc(["ges.cache.stores"]))
        result = self.run_validator(path, "--expect-family", "ges.cache.")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_bench_without_embedded_metrics_cannot_satisfy_family(self):
        path = self.write("b.json", bench_doc())
        result = self.run_validator(path, "--expect-family", "ges.cache.")
        self.assertNotEqual(result.returncode, 0)

    def test_missing_prefix_argument_fails(self):
        path = self.write("m.json", metrics_doc(["x"]))
        result = self.run_validator(path, "--expect-family")
        self.assertNotEqual(result.returncode, 0)

    def test_invalid_json_fails(self):
        path = os.path.join(self._dir.name, "broken.json")
        with open(path, "w", encoding="utf-8") as f:
            f.write("{not json")
        result = self.run_validator(path)
        self.assertNotEqual(result.returncode, 0)


if __name__ == "__main__":
    unittest.main()
