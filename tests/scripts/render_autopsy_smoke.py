#!/usr/bin/env python3
"""Smoke tests for scripts/render_autopsy.py against a committed fixture.

The fixture (fixtures/autopsy_sample.json) is real flight-recorder output
from examples/scenario_telemetry trimmed to three retained queries: a
fault-terminated walk, a cache hit and a TTL-exhausted flood — so the
renderer exercises every event family it knows how to describe. Asserts
both output formats render every retained event, that --ordinal
selection works, and that a dropped ordinal is a hard error.

Registered as a ctest (`autopsy_renderer_smoke`); stdlib-only.
"""

import json
import os
import subprocess
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
SCRIPT = os.path.join(HERE, "..", "..", "scripts", "render_autopsy.py")
FIXTURE = os.path.join(HERE, "fixtures", "autopsy_sample.json")


def run_renderer(*args):
    return subprocess.run(
        [sys.executable, SCRIPT, FIXTURE, *args],
        capture_output=True, text=True, check=False)


class RendererSmokeTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        with open(FIXTURE, encoding="utf-8") as f:
            cls.doc = json.load(f)

    def test_markdown_renders_every_event(self):
        result = run_renderer("--format", "md")
        self.assertEqual(result.returncode, 0, result.stderr)
        for a in self.doc["autopsies"]:
            q = a["query"]
            self.assertIn(f"## Query {q['ordinal']}", result.stdout)
            # One table row per event: "| <id> |" at line start.
            rows = [line for line in result.stdout.splitlines()
                    if line.startswith("|")]
            for ev in a["events"]:
                self.assertTrue(
                    any(row.startswith(f"| {ev['id']} |") for row in rows),
                    f"event {ev['id']} of query {q['ordinal']} not rendered")
        self.assertIn("dropped by retention policy", result.stdout)

    def test_dot_is_structurally_sound(self):
        result = run_renderer("--format", "dot")
        self.assertEqual(result.returncode, 0, result.stderr)
        dot = result.stdout
        self.assertTrue(dot.startswith("digraph"))
        self.assertEqual(dot.count("{"), dot.count("}"))
        for a in self.doc["autopsies"]:
            ordinal = a["query"]["ordinal"]
            self.assertIn(f"subgraph cluster_q{ordinal}", dot)
            for ev in a["events"]:
                self.assertIn(f"q{ordinal}_e{ev['id']} ", dot)
                if ev["parent"] >= 0:
                    self.assertIn(
                        f"q{ordinal}_e{ev['parent']} -> q{ordinal}_e{ev['id']};",
                        dot)

    def test_ordinal_selects_one_query(self):
        ordinal = self.doc["autopsies"][0]["query"]["ordinal"]
        result = run_renderer("--ordinal", str(ordinal))
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertEqual(result.stdout.count("## Query "), 1)

    def test_dropped_ordinal_is_an_error(self):
        retained = {a["query"]["ordinal"] for a in self.doc["autopsies"]}
        missing = max(retained) + 1000
        result = run_renderer("--ordinal", str(missing))
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("not retained", result.stderr)

    def test_fault_and_cache_details_render(self):
        # The fixture deliberately contains fault and cache-probe events;
        # the human-facing detail line must name them.
        result = run_renderer("--format", "md")
        self.assertIn("cache hit", result.stdout)
        self.assertIn("drop on walk", result.stdout)


if __name__ == "__main__":
    unittest.main()
