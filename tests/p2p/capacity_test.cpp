#include "p2p/capacity.hpp"

#include <gtest/gtest.h>

#include <map>

namespace ges::p2p {
namespace {

TEST(CapacityProfile, UniformAlwaysSameValue) {
  const auto p = CapacityProfile::uniform(2.0);
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(p.sample(rng), 2.0);
  EXPECT_FALSE(p.is_heterogeneous());
}

TEST(CapacityProfile, UniformHasNoSupernodes) {
  const auto p = CapacityProfile::uniform(1.0);
  EXPECT_GT(p.supernode_threshold(), 1.0);
}

TEST(CapacityProfile, GnutellaLevelsAndProportions) {
  const auto p = CapacityProfile::gnutella();
  EXPECT_TRUE(p.is_heterogeneous());
  EXPECT_DOUBLE_EQ(p.supernode_threshold(), 1000.0);

  util::Rng rng(2);
  std::map<double, size_t> counts;
  const size_t n = 100000;
  for (const auto c : p.sample_many(n, rng)) ++counts[c];

  // Paper §5.4: 20% / 45% / 30% / 4.9% / 0.1%.
  EXPECT_NEAR(static_cast<double>(counts[1.0]) / n, 0.20, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[10.0]) / n, 0.45, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[100.0]) / n, 0.30, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1000.0]) / n, 0.049, 0.005);
  EXPECT_NEAR(static_cast<double>(counts[10000.0]) / n, 0.001, 0.0008);
}

TEST(CapacityProfile, SampleManySize) {
  const auto p = CapacityProfile::gnutella();
  util::Rng rng(3);
  EXPECT_EQ(p.sample_many(17, rng).size(), 17u);
  EXPECT_TRUE(p.sample_many(0, rng).empty());
}

TEST(CapacityProfile, SamplingIsDeterministic) {
  const auto p = CapacityProfile::gnutella();
  util::Rng a(4);
  util::Rng b(4);
  EXPECT_EQ(p.sample_many(50, a), p.sample_many(50, b));
}

}  // namespace
}  // namespace ges::p2p
