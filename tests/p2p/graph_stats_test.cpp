#include "p2p/graph_stats.hpp"

#include <gtest/gtest.h>

#include "support/test_corpus.hpp"

namespace ges::p2p {
namespace {

class GraphStatsTest : public ::testing::Test {
 protected:
  GraphStatsTest()
      : corpus_(test::clustered_corpus(8, 2)),
        net_(corpus_, test::uniform_capacities(corpus_), NetworkConfig{}) {}

  corpus::Corpus corpus_;
  Network net_;
};

TEST_F(GraphStatsTest, EmptyGraph) {
  const auto s = compute_graph_stats(net_);
  EXPECT_EQ(s.nodes, 8u);
  EXPECT_EQ(s.links, 0u);
  EXPECT_EQ(s.components, 8u);
  EXPECT_EQ(s.largest_component, 1u);
  EXPECT_DOUBLE_EQ(s.mean_degree, 0.0);
}

TEST_F(GraphStatsTest, TriangleStats) {
  net_.connect(0, 1, LinkType::kRandom);
  net_.connect(1, 2, LinkType::kRandom);
  net_.connect(2, 0, LinkType::kRandom);
  const auto s = compute_graph_stats(net_);
  EXPECT_EQ(s.links, 3u);
  EXPECT_EQ(s.largest_component, 3u);
  EXPECT_EQ(s.components, 6u);  // triangle + 5 isolated nodes
  EXPECT_DOUBLE_EQ(s.clustering_coefficient, 1.0);
  EXPECT_DOUBLE_EQ(s.mean_path_length, 1.0);
  EXPECT_EQ(s.max_degree, 2u);
}

TEST_F(GraphStatsTest, LineHasZeroClustering) {
  net_.connect(0, 1, LinkType::kRandom);
  net_.connect(1, 2, LinkType::kRandom);
  net_.connect(2, 3, LinkType::kRandom);
  const auto s = compute_graph_stats(net_, std::nullopt, 16, 1);
  EXPECT_DOUBLE_EQ(s.clustering_coefficient, 0.0);
  EXPECT_EQ(s.largest_component, 4u);
  // Mean path of a 4-line from all sources: (1+2+3 + 1+1+2 +...)/12 = 5/3.
  EXPECT_NEAR(s.mean_path_length, 5.0 / 3.0, 1e-9);
}

TEST_F(GraphStatsTest, LinkFilterSeparatesTypes) {
  net_.connect(0, 1, LinkType::kRandom);
  net_.connect(2, 4, LinkType::kSemantic);
  const auto all = compute_graph_stats(net_);
  const auto rnd = compute_graph_stats(net_, LinkType::kRandom);
  const auto sem = compute_graph_stats(net_, LinkType::kSemantic);
  EXPECT_EQ(all.links, 2u);
  EXPECT_EQ(rnd.links, 1u);
  EXPECT_EQ(sem.links, 1u);
}

TEST_F(GraphStatsTest, DeadNodesExcluded) {
  net_.connect(0, 1, LinkType::kRandom);
  net_.deactivate(2);
  const auto s = compute_graph_stats(net_);
  EXPECT_EQ(s.nodes, 7u);
}

TEST(GraphStatsRandom, BootstrapGraphIsWellConnected) {
  const auto corpus = test::clustered_corpus(60, 3);
  Network net(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  util::Rng rng(5);
  bootstrap_random_graph(net, 8.0, rng);
  const auto s = compute_graph_stats(net);
  EXPECT_NEAR(s.mean_degree, 8.0, 1.0);
  EXPECT_EQ(s.largest_component, 60u);  // avg degree 8 >> ln(60)
  EXPECT_GT(s.mean_path_length, 1.0);
  EXPECT_LT(s.mean_path_length, 4.0);
  EXPECT_LT(s.clustering_coefficient, 0.5);  // random graph, not clustered
}

}  // namespace
}  // namespace ges::p2p
