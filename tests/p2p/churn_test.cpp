#include "p2p/churn.hpp"

#include <gtest/gtest.h>

#include "p2p/invariants.hpp"
#include "p2p/replication.hpp"
#include "support/test_corpus.hpp"

namespace ges::p2p {
namespace {

class ChurnTest : public ::testing::Test {
 protected:
  ChurnTest()
      : corpus_(test::clustered_corpus(30, 3)),
        net_(corpus_, test::uniform_capacities(corpus_), NetworkConfig{}) {
    util::Rng rng(1);
    bootstrap_random_graph(net_, 4.0, rng);
  }

  corpus::Corpus corpus_;
  Network net_;
  EventQueue queue_;
};

TEST_F(ChurnTest, ProducesDeparturesAndArrivals) {
  ChurnParams params;
  params.mean_session = 10.0;
  params.mean_downtime = 5.0;
  ChurnProcess churn(net_, queue_, params);
  churn.start();
  queue_.run_until(100.0);
  EXPECT_GT(churn.departures(), 0u);
  EXPECT_GT(churn.arrivals(), 0u);
  net_.check_invariants();
}

TEST_F(ChurnTest, AliveCountStaysConsistent) {
  ChurnParams params;
  params.mean_session = 5.0;
  params.mean_downtime = 5.0;
  ChurnProcess churn(net_, queue_, params);
  churn.start();
  queue_.run_until(50.0);
  size_t alive = 0;
  for (NodeId n = 0; n < net_.size(); ++n) alive += net_.alive(n) ? 1 : 0;
  EXPECT_EQ(alive, net_.alive_count());
}

TEST_F(ChurnTest, RejoinedNodesAreBootstrapped) {
  ChurnParams params;
  params.mean_session = 5.0;
  params.mean_downtime = 2.0;
  params.bootstrap_links = 2;
  ChurnProcess churn(net_, queue_, params);
  churn.start();
  queue_.run_until(200.0);
  ASSERT_GT(churn.arrivals(), 0u);
  // Network keeps functioning: a majority of alive nodes stay connected.
  size_t connected = 0;
  for (const NodeId n : net_.alive_nodes()) {
    connected += net_.degree(n) > 0 ? 1 : 0;
  }
  EXPECT_GT(connected, net_.alive_count() / 2);
  net_.check_invariants();
}

TEST_F(ChurnTest, LongRunKeepsOverlayInvariantsAndBookkeeping) {
  ChurnParams params;
  params.mean_session = 6.0;
  params.mean_downtime = 3.0;
  params.seed = 11;
  ChurnProcess churn(net_, queue_, params);
  churn.start();

  // Long run with periodic checkpoints: after every slice the overlay
  // must be structurally sound and the arrival/departure ledger must
  // reconcile with the alive set. Every node starts alive, so
  // alive == size - departures + arrivals at all times.
  for (int slice = 1; slice <= 40; ++slice) {
    queue_.run_until(25.0 * slice);
    expect_overlay_invariants(net_);
    ASSERT_EQ(net_.alive_count(),
              net_.size() - churn.departures() + churn.arrivals())
        << "slice " << slice;
    ASSERT_GE(churn.departures(), churn.arrivals());  // leave precedes rejoin
  }
  EXPECT_GT(churn.departures(), 50u);  // the run actually exercised churn

  // Dead nodes never retain or receive links along the way (spot check
  // at the end; expect_overlay_invariants covered intermediate states).
  for (NodeId n = 0; n < net_.size(); ++n) {
    if (!net_.alive(n)) {
      EXPECT_EQ(net_.degree(n), 0u);
    }
  }
}

TEST_F(ChurnTest, RejoinRestartsHeartbeatLoopAndFiresRejoinHook) {
  ChurnParams params;
  params.mean_session = 5.0;
  params.mean_downtime = 2.0;
  params.seed = 3;
  ReplicaHeartbeatProcess heartbeats(net_, queue_, 4.0);
  heartbeats.start();

  ChurnProcess churn(net_, queue_, params);
  std::vector<NodeId> rejoined;
  churn.set_heartbeats(&heartbeats);
  churn.set_rejoin_hook([&](NodeId node) {
    rejoined.push_back(node);
    EXPECT_TRUE(net_.alive(node));      // hook runs after reactivation
    EXPECT_GT(net_.degree(node), 0u);   // ... and after bootstrap_join
  });
  churn.start();
  queue_.run_until(300.0);
  ASSERT_GT(churn.arrivals(), 0u);
  EXPECT_EQ(rejoined.size(), churn.arrivals());

  // Every alive node has a live heartbeat loop again — including the
  // rejoined ones whose original loop died with them — so replicas of all
  // random neighbors go fresh within one more interval.
  for (const NodeId n : net_.alive_nodes()) {
    EXPECT_TRUE(heartbeats.registered(n)) << "node " << n;
  }
  queue_.run_until(queue_.now() + 4.0);
  for (const NodeId n : net_.alive_nodes()) {
    EXPECT_EQ(net_.stale_replica_count(n), 0u) << "node " << n;
  }
}

TEST_F(ChurnTest, WithoutHeartbeatWiringRejoinedNodesStayUnregistered) {
  // Regression guard for the bug the wiring fixes: a rejoining node's
  // heartbeat loop is NOT revived unless the churn process knows about
  // the heartbeat process.
  ChurnParams params;
  params.mean_session = 4.0;
  params.mean_downtime = 2.0;
  params.seed = 5;
  ReplicaHeartbeatProcess heartbeats(net_, queue_, 4.0);
  heartbeats.start();
  ChurnProcess churn(net_, queue_, params);  // no set_heartbeats
  churn.start();
  queue_.run_until(200.0);
  ASSERT_GT(churn.arrivals(), 0u);
  size_t unregistered = 0;
  for (const NodeId n : net_.alive_nodes()) {
    unregistered += heartbeats.registered(n) ? 0 : 1;
  }
  EXPECT_GT(unregistered, 0u);
}

TEST_F(ChurnTest, DeterministicInSeed) {
  ChurnParams params;
  params.mean_session = 8.0;
  params.mean_downtime = 4.0;
  params.seed = 42;

  auto run = [&](Network& net) {
    EventQueue queue;
    ChurnProcess churn(net, queue, params);
    churn.start();
    queue.run_until(60.0);
    return std::make_pair(churn.departures(), churn.arrivals());
  };
  Network net_a(corpus_, test::uniform_capacities(corpus_), NetworkConfig{});
  Network net_b(corpus_, test::uniform_capacities(corpus_), NetworkConfig{});
  util::Rng ra(1);
  util::Rng rb(1);
  bootstrap_random_graph(net_a, 4.0, ra);
  bootstrap_random_graph(net_b, 4.0, rb);
  EXPECT_EQ(run(net_a), run(net_b));
}

}  // namespace
}  // namespace ges::p2p
