#include "p2p/churn.hpp"

#include <gtest/gtest.h>

#include "support/test_corpus.hpp"

namespace ges::p2p {
namespace {

class ChurnTest : public ::testing::Test {
 protected:
  ChurnTest()
      : corpus_(test::clustered_corpus(30, 3)),
        net_(corpus_, test::uniform_capacities(corpus_), NetworkConfig{}) {
    util::Rng rng(1);
    bootstrap_random_graph(net_, 4.0, rng);
  }

  corpus::Corpus corpus_;
  Network net_;
  EventQueue queue_;
};

TEST_F(ChurnTest, ProducesDeparturesAndArrivals) {
  ChurnParams params;
  params.mean_session = 10.0;
  params.mean_downtime = 5.0;
  ChurnProcess churn(net_, queue_, params);
  churn.start();
  queue_.run_until(100.0);
  EXPECT_GT(churn.departures(), 0u);
  EXPECT_GT(churn.arrivals(), 0u);
  net_.check_invariants();
}

TEST_F(ChurnTest, AliveCountStaysConsistent) {
  ChurnParams params;
  params.mean_session = 5.0;
  params.mean_downtime = 5.0;
  ChurnProcess churn(net_, queue_, params);
  churn.start();
  queue_.run_until(50.0);
  size_t alive = 0;
  for (NodeId n = 0; n < net_.size(); ++n) alive += net_.alive(n) ? 1 : 0;
  EXPECT_EQ(alive, net_.alive_count());
}

TEST_F(ChurnTest, RejoinedNodesAreBootstrapped) {
  ChurnParams params;
  params.mean_session = 5.0;
  params.mean_downtime = 2.0;
  params.bootstrap_links = 2;
  ChurnProcess churn(net_, queue_, params);
  churn.start();
  queue_.run_until(200.0);
  ASSERT_GT(churn.arrivals(), 0u);
  // Network keeps functioning: a majority of alive nodes stay connected.
  size_t connected = 0;
  for (const NodeId n : net_.alive_nodes()) {
    connected += net_.degree(n) > 0 ? 1 : 0;
  }
  EXPECT_GT(connected, net_.alive_count() / 2);
  net_.check_invariants();
}

TEST_F(ChurnTest, DeterministicInSeed) {
  ChurnParams params;
  params.mean_session = 8.0;
  params.mean_downtime = 4.0;
  params.seed = 42;

  auto run = [&](Network& net) {
    EventQueue queue;
    ChurnProcess churn(net, queue, params);
    churn.start();
    queue.run_until(60.0);
    return std::make_pair(churn.departures(), churn.arrivals());
  };
  Network net_a(corpus_, test::uniform_capacities(corpus_), NetworkConfig{});
  Network net_b(corpus_, test::uniform_capacities(corpus_), NetworkConfig{});
  util::Rng ra(1);
  util::Rng rb(1);
  bootstrap_random_graph(net_a, 4.0, ra);
  bootstrap_random_graph(net_b, 4.0, rb);
  EXPECT_EQ(run(net_a), run(net_b));
}

}  // namespace
}  // namespace ges::p2p
