// Regenerates the committed Wire-format-v1 golden fixtures
// (tests/p2p/fixtures/wire_v1/<snake_name>.bin): one encoded frame per
// message type, built from the canonical messages in
// wire_fixture_messages.hpp. Run it after any deliberate format change
// and commit the result; wire_codec_test fails byte-exactly until the
// fixtures, the codec, and the canonical messages agree again.
//
//   wire_fixture_emitter [output_dir]   (default tests/p2p/fixtures/wire_v1)

#include <cstdio>
#include <fstream>
#include <string>

#include "p2p/wire.hpp"
#include "p2p/wire_fixture_messages.hpp"

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "tests/p2p/fixtures/wire_v1";
  for (const auto& [name, message] : ges::test::wire_fixture_messages()) {
    const std::vector<uint8_t> bytes = ges::p2p::wire::encode(message);
    const std::string path = dir + "/" + name + ".bin";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::fprintf(stderr, "write failed: %s\n", path.c_str());
      return 1;
    }
    std::printf("%-20s %4zu bytes  tag %u\n", name, bytes.size(),
                static_cast<unsigned>(ges::p2p::wire::message_type(message)));
  }
  return 0;
}
