#include "p2p/replication.hpp"

#include <gtest/gtest.h>

#include "support/test_corpus.hpp"

namespace ges::p2p {
namespace {

TEST(Replication, HeartbeatsRefreshStaleReplicas) {
  const auto corpus = test::clustered_corpus(6, 2);
  Network net(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  net.connect(0, 1, LinkType::kRandom);
  net.connect(0, 2, LinkType::kRandom);

  EventQueue queue;
  schedule_replica_heartbeats(queue, net, 10.0);

  // Drift both neighbors' vectors.
  net.add_document(1, ir::SparseVector::from_pairs({{50, 2.0f}}));
  net.add_document(2, ir::SparseVector::from_pairs({{51, 2.0f}}));
  EXPECT_EQ(net.stale_replica_count(0), 2u);

  queue.run_until(10.0);  // first heartbeat
  EXPECT_EQ(net.stale_replica_count(0), 0u);
}

TEST(Replication, ConvergesWithinOneInterval) {
  const auto corpus = test::clustered_corpus(4, 1);
  Network net(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  net.connect(0, 1, LinkType::kRandom);

  EventQueue queue;
  schedule_replica_heartbeats(queue, net, 5.0);
  queue.run_until(12.0);  // two heartbeats elapsed

  net.add_document(1, ir::SparseVector::from_pairs({{60, 1.0f}}));
  EXPECT_EQ(net.stale_replica_count(0), 1u);
  queue.run_until(queue.now() + 5.0);
  EXPECT_EQ(net.stale_replica_count(0), 0u);
}

TEST(Replication, SkipsDeadNodes) {
  const auto corpus = test::clustered_corpus(4, 1);
  Network net(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  net.connect(0, 1, LinkType::kRandom);
  net.deactivate(2);

  EventQueue queue;
  schedule_replica_heartbeats(queue, net, 1.0);
  queue.run_until(3.0);  // must not throw on the dead node
  EXPECT_EQ(net.stale_replica_count(0), 0u);
}

}  // namespace
}  // namespace ges::p2p
