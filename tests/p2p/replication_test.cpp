#include "p2p/replication.hpp"

#include <gtest/gtest.h>

#include "p2p/fault_injection.hpp"
#include "support/test_corpus.hpp"

namespace ges::p2p {
namespace {

TEST(Replication, HeartbeatsRefreshStaleReplicas) {
  const auto corpus = test::clustered_corpus(6, 2);
  Network net(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  net.connect(0, 1, LinkType::kRandom);
  net.connect(0, 2, LinkType::kRandom);

  EventQueue queue;
  schedule_replica_heartbeats(queue, net, 10.0);

  // Drift both neighbors' vectors.
  net.add_document(1, ir::SparseVector::from_pairs({{50, 2.0f}}));
  net.add_document(2, ir::SparseVector::from_pairs({{51, 2.0f}}));
  EXPECT_EQ(net.stale_replica_count(0), 2u);

  queue.run_until(10.0);  // first heartbeat
  EXPECT_EQ(net.stale_replica_count(0), 0u);
}

TEST(Replication, ConvergesWithinOneInterval) {
  const auto corpus = test::clustered_corpus(4, 1);
  Network net(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  net.connect(0, 1, LinkType::kRandom);

  EventQueue queue;
  schedule_replica_heartbeats(queue, net, 5.0);
  queue.run_until(12.0);  // two heartbeats elapsed

  net.add_document(1, ir::SparseVector::from_pairs({{60, 1.0f}}));
  EXPECT_EQ(net.stale_replica_count(0), 1u);
  queue.run_until(queue.now() + 5.0);
  EXPECT_EQ(net.stale_replica_count(0), 0u);
}

TEST(Replication, SkipsDeadNodes) {
  const auto corpus = test::clustered_corpus(4, 1);
  Network net(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  net.connect(0, 1, LinkType::kRandom);
  net.deactivate(2);

  EventQueue queue;
  schedule_replica_heartbeats(queue, net, 1.0);
  queue.run_until(3.0);  // must not throw on the dead node
  EXPECT_EQ(net.stale_replica_count(0), 0u);
}

TEST(HeartbeatProcess, ConvergesWithinOneIntervalAfterDocumentChange) {
  const auto corpus = test::clustered_corpus(6, 2);
  Network net(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  net.connect(0, 1, LinkType::kRandom);
  net.connect(0, 2, LinkType::kRandom);
  net.connect(1, 2, LinkType::kRandom);

  EventQueue queue;
  ReplicaHeartbeatProcess heartbeats(net, queue, 5.0);
  heartbeats.start();
  queue.run_until(11.0);  // settle two beats

  net.add_document(1, ir::SparseVector::from_pairs({{70, 2.0f}}));
  EXPECT_EQ(net.stale_replica_count(0), 1u);
  EXPECT_EQ(net.stale_replica_count(2), 1u);

  queue.run_until(queue.now() + 5.0);  // one full interval later
  EXPECT_EQ(net.stale_replica_count(0), 0u);
  EXPECT_EQ(net.stale_replica_count(2), 0u);
  EXPECT_GT(heartbeats.heartbeats_sent(), 0u);
  EXPECT_EQ(heartbeats.heartbeats_lost(), 0u);
}

TEST(HeartbeatProcess, LoopDiesWithTheNodeAndRevivesOnReregistration) {
  const auto corpus = test::clustered_corpus(4, 1);
  Network net(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  net.connect(0, 1, LinkType::kRandom);

  EventQueue queue;
  ReplicaHeartbeatProcess heartbeats(net, queue, 2.0);
  heartbeats.start();
  EXPECT_TRUE(heartbeats.registered(0));

  net.deactivate(0);
  queue.run_until(10.0);  // the pending beat notices and stops
  EXPECT_FALSE(heartbeats.registered(0));

  net.activate(0);
  net.connect(0, 1, LinkType::kRandom);
  net.add_document(1, ir::SparseVector::from_pairs({{80, 1.0f}}));
  EXPECT_EQ(net.stale_replica_count(0), 1u);
  queue.run_until(30.0);  // without re-registration the replica stays stale
  EXPECT_EQ(net.stale_replica_count(0), 1u);

  heartbeats.register_node(0);
  EXPECT_TRUE(heartbeats.registered(0));
  queue.run_until(queue.now() + 2.0);
  EXPECT_EQ(net.stale_replica_count(0), 0u);
}

TEST(HeartbeatProcess, TotalLossKeepsReplicasStale) {
  const auto corpus = test::clustered_corpus(4, 1);
  Network net(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  net.connect(0, 1, LinkType::kRandom);

  FaultPlan plan;
  plan.heartbeat_loss_rate = 1.0;
  FaultInjector faults(plan);

  EventQueue queue;
  ReplicaHeartbeatProcess heartbeats(net, queue, 2.0, &faults);
  heartbeats.start();
  net.add_document(1, ir::SparseVector::from_pairs({{81, 1.0f}}));
  queue.run_until(20.0);
  EXPECT_EQ(net.stale_replica_count(0), 1u);  // nothing ever got through
  EXPECT_GT(heartbeats.heartbeats_lost(), 0u);
  EXPECT_EQ(heartbeats.heartbeats_lost(), heartbeats.heartbeats_sent());
}

TEST(HeartbeatProcess, DelayedHeartbeatSurvivesLinkRemoval) {
  const auto corpus = test::clustered_corpus(4, 1);
  Network net(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  net.connect(0, 1, LinkType::kRandom);

  FaultPlan plan;
  plan.delay_rate = 1.0;  // every heartbeat arrives late
  plan.max_delay = 3.0;
  FaultInjector faults(plan);

  EventQueue queue;
  ReplicaHeartbeatProcess heartbeats(net, queue, 2.0, &faults);
  heartbeats.start();
  queue.run_until(1.9);
  net.disconnect(0, 1);  // delayed refresh events now dangle
  net.deactivate(1);
  queue.run_until(20.0);  // must be clean no-ops, no throw
  EXPECT_EQ(net.replica_count(0), 0u);
}

TEST(HeartbeatProcess, PartitionCutsHeartbeats) {
  const auto corpus = test::clustered_corpus(6, 1);
  Network net(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  net.connect(0, 1, LinkType::kRandom);

  FaultPlan plan;
  plan.partition_rate = 1.0;
  plan.partition_fraction = 0.5;
  plan.seed = 2;
  FaultInjector faults(plan);
  std::vector<NodeId> alive = net.alive_nodes();
  faults.begin_round(alive, 0);
  ASSERT_TRUE(faults.partition_active());

  EventQueue queue;
  ReplicaHeartbeatProcess heartbeats(net, queue, 2.0, &faults);
  heartbeats.start();
  net.add_document(1, ir::SparseVector::from_pairs({{82, 1.0f}}));
  queue.run_until(10.0);
  if (faults.partitioned(0) != faults.partitioned(1)) {
    EXPECT_EQ(net.stale_replica_count(0), 1u);
    EXPECT_GT(heartbeats.heartbeats_lost(), 0u);
  } else {
    EXPECT_EQ(net.stale_replica_count(0), 0u);
  }
}

}  // namespace
}  // namespace ges::p2p
