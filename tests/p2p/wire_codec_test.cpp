// Wire format v1 codec tests (docs/PROTOCOL.md "Wire format v1"):
// round-trip identity over the canonical message set, byte-exact
// agreement with the committed golden fixtures, size-helper consistency,
// and a malformed-frame grid (every truncation point, corrupt header
// bytes, varint overflow, field-level violations) asserting typed errors
// — decode is total, so none of these may crash even under ASan/UBSan.

#include "p2p/wire.hpp"

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "p2p/wire_fixture_messages.hpp"

namespace ges::p2p::wire {
namespace {

std::vector<uint8_t> read_fixture(const std::string& name) {
  const std::string path =
      std::string(GES_WIRE_FIXTURE_DIR) + "/" + name + ".bin";
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden fixture " << path
                         << " (regenerate with wire_fixture_emitter)";
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

// --- Stable protocol constants ------------------------------------------

TEST(WireCodec, TagsAndNamesAreStable) {
  const auto messages = test::wire_fixture_messages();
  ASSERT_EQ(messages.size(), 13u);
  const char* expected_names[] = {
      "walk_query",         "walk_response",      "flood_forward",
      "discovery_probe",    "handshake_request",  "handshake_response",
      "handshake_confirm",  "node_vector_update", "replica_heartbeat",
      "host_cache_exchange", "cache_store",       "cache_probe",
      "cache_result"};
  for (size_t i = 0; i < messages.size(); ++i) {
    const MessageType tag = message_type(messages[i].message);
    // Tags are normative: 1..13 in declaration order, never renumbered.
    EXPECT_EQ(static_cast<uint8_t>(tag), i + 1) << messages[i].name;
    EXPECT_STREQ(message_type_name(tag), expected_names[i]);
    EXPECT_STREQ(messages[i].name, expected_names[i]);
  }
  EXPECT_STREQ(message_type_name(static_cast<MessageType>(0)), "unknown");
  EXPECT_STREQ(message_type_name(static_cast<MessageType>(99)), "unknown");
}

TEST(WireCodec, ErrorNamesAreDistinct) {
  const WireError all[] = {
      WireError::kNone,          WireError::kTruncated,
      WireError::kBadMagic,      WireError::kUnsupportedVersion,
      WireError::kUnknownType,   WireError::kVarintOverflow,
      WireError::kLengthMismatch, WireError::kMalformed};
  for (const WireError a : all) {
    ASSERT_NE(wire_error_name(a), nullptr);
    for (const WireError b : all) {
      if (a != b) EXPECT_STRNE(wire_error_name(a), wire_error_name(b));
    }
  }
}

TEST(WireCodec, VarintSizes) {
  EXPECT_EQ(varint_size(0), 1u);
  EXPECT_EQ(varint_size(127), 1u);
  EXPECT_EQ(varint_size(128), 2u);
  EXPECT_EQ(varint_size(16383), 2u);
  EXPECT_EQ(varint_size(16384), 3u);
  EXPECT_EQ(varint_size(UINT64_MAX), 10u);
}

// --- Round trip ----------------------------------------------------------

TEST(WireCodec, RoundTripEveryMessageType) {
  for (const auto& [name, message] : test::wire_fixture_messages()) {
    SCOPED_TRACE(name);
    const std::vector<uint8_t> bytes = encode(message);
    EXPECT_EQ(bytes.size(), encoded_size(message));
    const DecodeResult result = decode(bytes);
    ASSERT_TRUE(result.ok()) << wire_error_name(result.error);
    EXPECT_EQ(result.consumed, bytes.size());
    EXPECT_EQ(result.message, message);
  }
}

TEST(WireCodec, EncodeAppendsToExistingBuffer) {
  // Frames concatenate into a stream; encode(msg, out) must append, and
  // decode must consume exactly one frame, leaving the rest alone.
  const auto messages = test::wire_fixture_messages();
  std::vector<uint8_t> stream;
  for (const auto& named : messages) encode(named.message, stream);
  std::span<const uint8_t> rest(stream);
  for (const auto& named : messages) {
    SCOPED_TRACE(named.name);
    const DecodeResult result = decode(rest);
    ASSERT_TRUE(result.ok()) << wire_error_name(result.error);
    EXPECT_EQ(result.message, named.message);
    rest = rest.subspan(result.consumed);
  }
  EXPECT_TRUE(rest.empty());
}

TEST(WireCodec, SizeHelpersMatchEncodedSize) {
  // The engines charge bytes through the count-parameterized helpers
  // (never building Message objects on hot paths); each helper must agree
  // with the struct-level encoded_size, which must agree with encode().
  const auto messages = test::wire_fixture_messages();
  const auto& walk_query = std::get<WalkQuery>(messages[0].message);
  EXPECT_EQ(walk_query_frame_size(walk_query.query.size()),
            encode(messages[0].message).size());
  const auto& walk_response = std::get<WalkResponse>(messages[1].message);
  EXPECT_EQ(walk_response_frame_size(walk_response.docs.size()),
            encode(messages[1].message).size());
  const auto& flood = std::get<FloodForward>(messages[2].message);
  EXPECT_EQ(flood_forward_frame_size(flood.query.size()),
            encode(messages[2].message).size());
  EXPECT_EQ(discovery_probe_frame_size(), encode(messages[3].message).size());
  EXPECT_EQ(handshake_request_frame_size(), encode(messages[4].message).size());
  EXPECT_EQ(handshake_response_frame_size(), encode(messages[5].message).size());
  EXPECT_EQ(handshake_confirm_frame_size(), encode(messages[6].message).size());
  EXPECT_EQ(handshake_legs_frame_size(),
            handshake_request_frame_size() + handshake_response_frame_size() +
                handshake_confirm_frame_size());
  const auto& nvu = std::get<NodeVectorUpdate>(messages[7].message);
  EXPECT_EQ(node_vector_update_frame_size(nvu.vector.size()),
            encode(messages[7].message).size());
  EXPECT_EQ(replica_heartbeat_frame_size(), encode(messages[8].message).size());
  const auto& hce = std::get<HostCacheExchange>(messages[9].message);
  size_t records = 0;
  for (const HostCacheRecord& r : hce.entries) {
    records += host_cache_record_size(r.vector.size());
  }
  EXPECT_EQ(host_cache_exchange_frame_size(hce.entries.size(), records),
            encode(messages[9].message).size());
  const auto& store = std::get<CacheStore>(messages[10].message);
  EXPECT_EQ(cache_store_frame_size(store.docs.size()),
            encode(messages[10].message).size());
  EXPECT_EQ(cache_probe_frame_size(), encode(messages[11].message).size());
  const auto& cache_result = std::get<CacheResult>(messages[12].message);
  EXPECT_EQ(cache_result_frame_size(cache_result.docs.size()),
            encode(messages[12].message).size());
}

// --- Golden fixtures -----------------------------------------------------

TEST(WireCodec, GoldenFixturesAreByteExact) {
  // The committed .bin files pin the format: any codec change that moves
  // a byte fails here before it silently invalidates PROTOCOL.md.
  for (const auto& [name, message] : test::wire_fixture_messages()) {
    SCOPED_TRACE(name);
    const std::vector<uint8_t> golden = read_fixture(name);
    ASSERT_FALSE(golden.empty());
    EXPECT_EQ(encode(message), golden);
    const DecodeResult result = decode(golden);
    ASSERT_TRUE(result.ok()) << wire_error_name(result.error);
    EXPECT_EQ(result.message, message);
  }
}

TEST(WireCodec, GoldenFixtureHeadersAreWellFormed) {
  for (const auto& named : test::wire_fixture_messages()) {
    SCOPED_TRACE(named.name);
    const std::vector<uint8_t> golden = read_fixture(named.name);
    ASSERT_GE(golden.size(), kHeaderSize);
    EXPECT_EQ(golden[0], 'G');
    EXPECT_EQ(golden[1], 'E');
    EXPECT_EQ(golden[2], 'S');
    EXPECT_EQ(golden[3], 'W');
    EXPECT_EQ(golden[4], kFormatVersion);
    EXPECT_EQ(golden[5], static_cast<uint8_t>(message_type(named.message)));
  }
}

// --- Malformed frames ----------------------------------------------------

TEST(WireCodec, EveryTruncationPointIsTyped) {
  // A valid frame cut at any byte boundary is kTruncated — never a crash,
  // never a partial message.
  for (const auto& [name, message] : test::wire_fixture_messages()) {
    SCOPED_TRACE(name);
    const std::vector<uint8_t> bytes = encode(message);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      const DecodeResult result =
          decode(std::span<const uint8_t>(bytes.data(), cut));
      EXPECT_FALSE(result.ok()) << "cut at " << cut;
      EXPECT_EQ(result.error, WireError::kTruncated) << "cut at " << cut;
    }
  }
}

TEST(WireCodec, TrailingBytesBelongToTheCaller) {
  for (const auto& [name, message] : test::wire_fixture_messages()) {
    SCOPED_TRACE(name);
    std::vector<uint8_t> bytes = encode(message);
    const size_t frame = bytes.size();
    bytes.insert(bytes.end(), {0xDE, 0xAD, 0xBE, 0xEF});
    const DecodeResult result = decode(bytes);
    ASSERT_TRUE(result.ok()) << wire_error_name(result.error);
    EXPECT_EQ(result.consumed, frame);
    EXPECT_EQ(result.message, message);
  }
}

TEST(WireCodec, CorruptHeaderBytesAreTyped) {
  for (const auto& [name, message] : test::wire_fixture_messages()) {
    SCOPED_TRACE(name);
    const std::vector<uint8_t> bytes = encode(message);
    for (size_t i = 0; i < 4; ++i) {
      std::vector<uint8_t> bad = bytes;
      bad[i] ^= 0xFF;
      EXPECT_EQ(decode(bad).error, WireError::kBadMagic) << "magic byte " << i;
    }
    std::vector<uint8_t> bad_version = bytes;
    bad_version[4] = kFormatVersion + 1;
    EXPECT_EQ(decode(bad_version).error, WireError::kUnsupportedVersion);
    bad_version[4] = 0;
    EXPECT_EQ(decode(bad_version).error, WireError::kUnsupportedVersion);
    std::vector<uint8_t> bad_tag = bytes;
    bad_tag[5] = 0;
    EXPECT_EQ(decode(bad_tag).error, WireError::kUnknownType);
    bad_tag[5] = 0xFF;
    EXPECT_EQ(decode(bad_tag).error, WireError::kUnknownType);
    bad_tag[5] = 14;  // one past the last assigned tag
    EXPECT_EQ(decode(bad_tag).error, WireError::kUnknownType);
  }
}

TEST(WireCodec, VarintOverflowIsTyped) {
  // Header + a length varint with all ten continuation bytes maxed out:
  // needs more than 64 bits, must not wrap into a bogus small length.
  std::vector<uint8_t> bytes = {'G', 'E', 'S', 'W', kFormatVersion, 1};
  bytes.insert(bytes.end(), 10, 0xFF);
  EXPECT_EQ(decode(bytes).error, WireError::kVarintOverflow);
}

TEST(WireCodec, HugePayloadLengthIsTruncatedNotAllocated) {
  // length = 2^32: a well-formed varint no real frame backs. The decoder
  // must report truncation, not trust the length and allocate.
  std::vector<uint8_t> bytes = {'G', 'E', 'S', 'W', kFormatVersion, 1,
                                0x80, 0x80, 0x80, 0x80, 0x10};
  EXPECT_EQ(decode(bytes).error, WireError::kTruncated);
}

TEST(WireCodec, PayloadLengthMismatchIsTyped) {
  // HandshakeConfirm's payload is fixed-size with a single-byte length
  // varint: claim one extra byte and provide it; the payload reader
  // finishes early and the frame is rejected.
  const Message message = HandshakeConfirm{5, 9, 1};
  std::vector<uint8_t> bytes = encode(message);
  ASSERT_LT(bytes[kHeaderSize], 0x7F);
  bytes[kHeaderSize] += 1;
  bytes.push_back(0x00);
  EXPECT_EQ(decode(bytes).error, WireError::kLengthMismatch);
  // Claim one byte less than the payload needs: the bounded reader runs
  // out mid-field.
  std::vector<uint8_t> short_frame = encode(message);
  short_frame[kHeaderSize] -= 1;
  short_frame.pop_back();
  EXPECT_EQ(decode(short_frame).error, WireError::kTruncated);
}

TEST(WireCodec, NonAscendingTermsAreMalformed) {
  const Message message = NodeVectorUpdate{
      3, 17, test::wire_fixture_vector({{1, 0.5f}, {2, 1.5f}})};
  std::vector<uint8_t> bytes = encode(message);
  // Payload tail: varint(2) + terms u32[2] + weights f32[2]; swap the two
  // term words so the run decreases.
  const size_t terms_at = bytes.size() - 16;
  for (size_t i = 0; i < 4; ++i) {
    std::swap(bytes[terms_at + i], bytes[terms_at + 4 + i]);
  }
  EXPECT_EQ(decode(bytes).error, WireError::kMalformed);
}

TEST(WireCodec, DuplicateTermsAreMalformed) {
  const Message message = NodeVectorUpdate{
      3, 17, test::wire_fixture_vector({{1, 0.5f}, {2, 1.5f}})};
  std::vector<uint8_t> bytes = encode(message);
  const size_t terms_at = bytes.size() - 16;
  for (size_t i = 0; i < 4; ++i) bytes[terms_at + 4 + i] = bytes[terms_at + i];
  EXPECT_EQ(decode(bytes).error, WireError::kMalformed);
}

TEST(WireCodec, ZeroWeightIsMalformed) {
  const Message message = NodeVectorUpdate{
      3, 17, test::wire_fixture_vector({{1, 0.5f}, {2, 1.5f}})};
  std::vector<uint8_t> bytes = encode(message);
  // The last four bytes are the final weight; zero is not a legal
  // SparseVector component.
  for (size_t i = bytes.size() - 4; i < bytes.size(); ++i) bytes[i] = 0;
  EXPECT_EQ(decode(bytes).error, WireError::kMalformed);
}

TEST(WireCodec, RecordCountBeyondPayloadIsRejectedBeforeAllocation) {
  // A WalkResponse claiming 2^24 docs in a tiny payload must fail fast on
  // the count-vs-remaining-bytes guard (no multi-hundred-MB allocation).
  std::vector<uint8_t> bytes = {'G', 'E', 'S', 'W', kFormatVersion, 2, 16};
  // payload: guid u64 + responder u32 + varint doc count (2^24)
  bytes.insert(bytes.end(), 12, 0x00);
  bytes.insert(bytes.end(), {0x80, 0x80, 0x80, 0x08});
  ASSERT_EQ(bytes.size(), kHeaderSize + 1 + 16);
  const DecodeResult result = decode(bytes);
  EXPECT_FALSE(result.ok());
}

TEST(WireCodec, DecodeIsTotalOnArbitraryBytes) {
  // Deterministic xorshift noise: decode never crashes, and on the rare
  // accidental success the message must re-encode to exactly the bytes
  // consumed (decode and encode are inverse bijections on valid frames).
  uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 2000; ++round) {
    std::vector<uint8_t> bytes(next() % 96);
    for (uint8_t& b : bytes) b = static_cast<uint8_t>(next());
    if (round % 2 == 0 && bytes.size() >= kHeaderSize) {
      // Half the rounds get a valid header so the payload readers see
      // plenty of traffic too.
      bytes[0] = 'G'; bytes[1] = 'E'; bytes[2] = 'S'; bytes[3] = 'W';
      bytes[4] = kFormatVersion;
      bytes[5] = static_cast<uint8_t>(1 + next() % 13);
    }
    const DecodeResult result = decode(bytes);
    if (result.ok()) {
      EXPECT_EQ(encode(result.message),
                std::vector<uint8_t>(bytes.begin(),
                                     bytes.begin() + static_cast<ptrdiff_t>(
                                                         result.consumed)));
    }
  }
}

TEST(WireCodec, MutatedValidFramesNeverCrash) {
  uint64_t state = 0xC0FFEE123456789ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (const auto& named : test::wire_fixture_messages()) {
    SCOPED_TRACE(named.name);
    const std::vector<uint8_t> original = encode(named.message);
    for (int round = 0; round < 300; ++round) {
      std::vector<uint8_t> bytes = original;
      const size_t flips = 1 + next() % 3;
      for (size_t f = 0; f < flips; ++f) {
        bytes[next() % bytes.size()] ^= static_cast<uint8_t>(1 + next() % 255);
      }
      const DecodeResult result = decode(bytes);
      if (result.ok()) {
        EXPECT_EQ(encode(result.message),
                  std::vector<uint8_t>(bytes.begin(),
                                       bytes.begin() + static_cast<ptrdiff_t>(
                                                           result.consumed)));
      }
    }
  }
}

}  // namespace
}  // namespace ges::p2p::wire
