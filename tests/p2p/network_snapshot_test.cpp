#include "p2p/network_snapshot.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ges/topology_adaptation.hpp"
#include "support/test_corpus.hpp"
#include "util/check.hpp"

namespace ges::p2p {
namespace {

TEST(NetworkSnapshot, RoundTripPreservesTopology) {
  const auto corpus = test::clustered_corpus(20, 2);
  Network original(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  util::Rng rng(1);
  bootstrap_random_graph(original, 5.0, rng);
  core::TopologyAdaptation adapt(original, core::GesParams{}, 3);
  adapt.run_rounds(5);
  original.deactivate(7);

  std::stringstream buffer;
  save_network_snapshot(original, buffer);
  const auto restored = load_network_snapshot(corpus, buffer, NetworkConfig{});

  restored.check_invariants();
  ASSERT_EQ(restored.size(), original.size());
  EXPECT_EQ(restored.alive_count(), original.alive_count());
  for (NodeId n = 0; n < original.size(); ++n) {
    EXPECT_EQ(restored.alive(n), original.alive(n));
    EXPECT_DOUBLE_EQ(restored.capacity(n), original.capacity(n));
    EXPECT_EQ(restored.degree(n, LinkType::kRandom),
              original.degree(n, LinkType::kRandom));
    EXPECT_EQ(restored.degree(n, LinkType::kSemantic),
              original.degree(n, LinkType::kSemantic));
    for (const NodeId peer : original.all_neighbors(n)) {
      EXPECT_EQ(restored.link_type(n, peer), original.link_type(n, peer));
    }
  }
  // Content is rebuilt identically from the corpus.
  EXPECT_EQ(restored.node_vector(0), original.node_vector(0));
}

TEST(NetworkSnapshot, ReplicasReinstalledOnLoad) {
  const auto corpus = test::clustered_corpus(6, 2);
  Network original(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  original.connect(0, 1, LinkType::kRandom);
  std::stringstream buffer;
  save_network_snapshot(original, buffer);
  const auto restored = load_network_snapshot(corpus, buffer, NetworkConfig{});
  ASSERT_NE(restored.replica(0, 1), nullptr);
  EXPECT_EQ(*restored.replica(0, 1), restored.node_vector(1));
}

TEST(NetworkSnapshot, RejectsMismatchedCorpus) {
  const auto corpus = test::clustered_corpus(10, 2);
  Network net(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  std::stringstream buffer;
  save_network_snapshot(net, buffer);
  const auto other = test::clustered_corpus(12, 2);
  EXPECT_THROW(load_network_snapshot(other, buffer, NetworkConfig{}),
               util::CheckFailure);
}

TEST(NetworkSnapshot, RejectsGarbage) {
  const auto corpus = test::clustered_corpus(4, 1);
  std::stringstream garbage("nope");
  EXPECT_THROW(load_network_snapshot(corpus, garbage, NetworkConfig{}),
               util::CheckFailure);
}

TEST(NetworkSnapshot, VectorSizeConfigAppliesOnLoad) {
  const auto corpus = test::clustered_corpus(6, 1, 3, 16);
  Network original(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  std::stringstream buffer;
  save_network_snapshot(original, buffer);
  NetworkConfig truncated;
  truncated.node_vector_size = 4;
  const auto restored = load_network_snapshot(corpus, buffer, truncated);
  EXPECT_LE(restored.node_vector(0).size(), 4u);
}

TEST(NetworkSnapshot, FileRoundTrip) {
  const auto corpus = test::clustered_corpus(8, 2);
  Network net(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  net.connect(0, 1, LinkType::kSemantic);
  const std::string path = ::testing::TempDir() + "/ges_net_snapshot.bin";
  save_network_snapshot_file(net, path);
  const auto restored = load_network_snapshot_file(corpus, path, NetworkConfig{});
  EXPECT_EQ(restored.link_type(0, 1), LinkType::kSemantic);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ges::p2p
