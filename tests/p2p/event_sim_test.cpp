#include "p2p/event_sim.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"

namespace ges::p2p {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueue, EqualTimesRunInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NowAdvancesToEventTime) {
  EventQueue q;
  double seen = -1.0;
  q.schedule(5.5, [&] { seen = q.now(); });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 5.5);
  EXPECT_DOUBLE_EQ(q.now(), 5.5);
}

TEST(EventQueue, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventQueue q;
  int ran = 0;
  q.schedule(1.0, [&] { ++ran; });
  q.schedule(2.0, [&] { ++ran; });
  q.schedule(3.0, [&] { ++ran; });
  q.run_until(2.0);
  EXPECT_EQ(ran, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, HandlersCanScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.schedule_after(1.0, recurse);
  };
  q.schedule(0.0, recurse);
  q.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, ScheduleEveryRepeats) {
  EventQueue q;
  int fired = 0;
  q.schedule_every(1.0, [&] { ++fired; });
  q.run_until(5.5);
  EXPECT_EQ(fired, 5);
}

TEST(EventQueue, RunWithEventLimit) {
  EventQueue q;
  int fired = 0;
  q.schedule_every(1.0, [&] { ++fired; });
  q.run(3);
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, SchedulingInPastThrows) {
  EventQueue q;
  q.schedule(2.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule(1.0, [] {}), util::CheckFailure);
  EXPECT_THROW(q.schedule_after(-0.5, [] {}), util::CheckFailure);
}

TEST(EventQueue, ScheduleEveryRejectsNonPositiveInterval) {
  EventQueue q;
  EXPECT_THROW(q.schedule_every(0.0, [] {}), util::CheckFailure);
}

}  // namespace
}  // namespace ges::p2p
