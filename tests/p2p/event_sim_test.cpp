#include "p2p/event_sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ges::p2p {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueue, EqualTimesRunInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NowAdvancesToEventTime) {
  EventQueue q;
  double seen = -1.0;
  q.schedule(5.5, [&] { seen = q.now(); });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 5.5);
  EXPECT_DOUBLE_EQ(q.now(), 5.5);
}

TEST(EventQueue, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventQueue q;
  int ran = 0;
  q.schedule(1.0, [&] { ++ran; });
  q.schedule(2.0, [&] { ++ran; });
  q.schedule(3.0, [&] { ++ran; });
  q.run_until(2.0);
  EXPECT_EQ(ran, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, HandlersCanScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.schedule_after(1.0, recurse);
  };
  q.schedule(0.0, recurse);
  q.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, ScheduleEveryRepeats) {
  EventQueue q;
  int fired = 0;
  q.schedule_every(1.0, [&] { ++fired; });
  q.run_until(5.5);
  EXPECT_EQ(fired, 5);
}

TEST(EventQueue, RunWithEventLimit) {
  EventQueue q;
  int fired = 0;
  q.schedule_every(1.0, [&] { ++fired; });
  q.run(3);
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, StaleScheduleClampsOrThrows) {
  // Regression: scheduling at a timestamp already in the past used to
  // corrupt dispatch order. Strict (debug-check) builds reject it;
  // release builds clamp to now() and fire in this timestamp's
  // tie-break order, after already-queued equal-time events.
  EventQueue q;
  q.schedule(2.0, [] {});
  q.run();
  if constexpr (EventQueue::kStrictScheduleChecks) {
    EXPECT_THROW(q.schedule(1.0, [] {}), util::CheckFailure);
  } else {
    std::vector<int> order;
    q.schedule(2.0, [&] { order.push_back(0); });  // at == now(): fine
    q.schedule(1.0, [&] { order.push_back(1); });  // stale: clamped to 2.0
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_DOUBLE_EQ(q.now(), 2.0);  // the clamp never rewinds the clock
  }
  EXPECT_THROW(q.schedule_after(-0.5, [] {}), util::CheckFailure);
}

TEST(EventQueue, ScheduleEveryRejectsNonPositiveInterval) {
  EventQueue q;
  EXPECT_THROW(q.schedule_every(0.0, [] {}), util::CheckFailure);
}

// --- Randomized property tests against a reference model ---------------

/// Reference semantics: events sorted by (time, scheduling order).
std::vector<int> model_order(const std::vector<std::pair<SimTime, int>>& events) {
  std::vector<std::pair<SimTime, int>> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<int> ids;
  ids.reserve(sorted.size());
  for (const auto& [at, id] : sorted) ids.push_back(id);
  return ids;
}

TEST(EventQueueProperty, RandomSchedulesMatchStableSortModel) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng rng(seed);
    EventQueue q;
    std::vector<std::pair<SimTime, int>> events;
    std::vector<int> ran;
    const size_t n = 50 + rng.below(100);
    for (size_t i = 0; i < n; ++i) {
      // Coarse grid forces many equal-timestamp collisions.
      const SimTime at = static_cast<SimTime>(rng.below(10));
      const int id = static_cast<int>(i);
      events.emplace_back(at, id);
      q.schedule(at, [&ran, id] { ran.push_back(id); });
    }
    q.run();
    EXPECT_EQ(ran, model_order(events)) << "seed " << seed;
    EXPECT_EQ(q.processed(), n);
  }
}

TEST(EventQueueProperty, RunUntilPartitionsTheScheduleAtTheBoundary) {
  for (uint64_t seed = 100; seed < 115; ++seed) {
    util::Rng rng(seed);
    EventQueue q;
    std::vector<std::pair<SimTime, int>> events;
    std::vector<int> ran;
    for (size_t i = 0; i < 80; ++i) {
      const SimTime at = static_cast<SimTime>(rng.below(20));
      events.emplace_back(at, static_cast<int>(i));
      q.schedule(at, [&ran, i] { ran.push_back(static_cast<int>(i)); });
    }
    const SimTime boundary = static_cast<SimTime>(rng.below(20));
    q.run_until(boundary);

    // Exactly the events with timestamp <= boundary ran, in model order;
    // the clock sits at the boundary even if nothing fired there.
    std::vector<std::pair<SimTime, int>> within;
    for (const auto& e : events) {
      if (e.first <= boundary) within.push_back(e);
    }
    EXPECT_EQ(ran, model_order(within)) << "seed " << seed;
    EXPECT_EQ(q.pending(), events.size() - within.size());
    EXPECT_DOUBLE_EQ(q.now(), boundary);

    q.run();  // the remainder still runs, after the boundary
    EXPECT_EQ(ran, model_order(events)) << "seed " << seed;
  }
}

TEST(EventQueueProperty, ScheduleEveryInterleavesWithOneShotEvents) {
  for (uint64_t seed = 200; seed < 210; ++seed) {
    util::Rng rng(seed);
    EventQueue q;
    const SimTime interval = 1.0 + rng.uniform(0.0, 2.0);
    std::vector<SimTime> tick_times;
    q.schedule_every(interval, [&] { tick_times.push_back(q.now()); });

    size_t oneshot_ran = 0;
    const size_t oneshots = 5 + rng.below(10);
    for (size_t i = 0; i < oneshots; ++i) {
      q.schedule(rng.uniform(0.0, 10.0), [&] { ++oneshot_ran; });
    }

    const size_t max_events = 10 + rng.below(20);
    q.run(max_events);
    EXPECT_EQ(tick_times.size() + oneshot_ran, max_events) << "seed " << seed;

    // Ticks land exactly on multiples of the interval, phase-aligned to 0.
    for (size_t i = 0; i < tick_times.size(); ++i) {
      EXPECT_DOUBLE_EQ(tick_times[i], static_cast<SimTime>(i + 1) * interval);
    }
    // run(max) never reorders: everything that ran is <= everything pending.
    EXPECT_EQ(q.processed(), max_events);
  }
}

// --- Cancellable handles ------------------------------------------------

TEST(TimerHandle, CancelPreventsOneShotFromFiring) {
  EventQueue q;
  int fired = 0;
  TimerHandle h = q.schedule(1.0, [&] { ++fired; });
  EXPECT_TRUE(h.live());
  EXPECT_DOUBLE_EQ(h.fire_time(), 1.0);
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.live());
  EXPECT_FALSE(h.cancel());  // already cancelled: no state change
  EXPECT_EQ(q.pending(), 0u);
  q.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(q.processed(), 0u);
  EXPECT_EQ(q.cancelled(), 1u);
  EXPECT_FALSE(h.valid());  // reaped in passing once its time came
}

TEST(TimerHandle, CancelStopsPeriodicTask) {
  EventQueue q;
  int fired = 0;
  TimerHandle h = q.schedule_every(1.0, [&] { ++fired; });
  q.run_until(3.5);
  EXPECT_EQ(fired, 3);
  EXPECT_TRUE(h.cancel());
  q.run_until(10.0);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(TimerHandle, HandleGoesInertAfterOneShotFires) {
  EventQueue q;
  TimerHandle h = q.schedule(1.0, [] {});
  q.run();
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(h.live());
  EXPECT_FALSE(h.cancel());
  EXPECT_FALSE(h.resume());
  EXPECT_DOUBLE_EQ(h.fire_time(), -1.0);
}

TEST(TimerHandle, StaleHandleCannotTouchARecycledSlot) {
  // After a slot is reaped its generation advances; a handle from the
  // previous occupant must not cancel whoever reuses the slot.
  EventQueue q;
  TimerHandle old = q.schedule(1.0, [] {});
  q.run();
  int fired = 0;
  TimerHandle fresh = q.schedule(2.0, [&] { ++fired; });  // reuses the slot
  EXPECT_FALSE(old.cancel());
  EXPECT_TRUE(fresh.live());
  q.run();
  EXPECT_EQ(fired, 1);
}

TEST(TimerHandle, CancellationDuringDispatchSkipsLaterEqualTimeEvent) {
  // A handler cancelling an event queued at the very same timestamp
  // (but later in tie-break order) must prevent it from running in the
  // same dispatch pass.
  EventQueue q;
  std::vector<int> order;
  TimerHandle victim;
  q.schedule(1.0, [&] {
    order.push_back(0);
    EXPECT_TRUE(victim.cancel());
  });
  victim = q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
  EXPECT_EQ(q.processed(), 2u);
}

TEST(TimerHandle, PeriodicTaskCanCancelItselfMidHandler) {
  EventQueue q;
  int fired = 0;
  TimerHandle h;
  h = q.schedule_every(1.0, [&] {
    if (++fired == 3) {
      EXPECT_TRUE(h.cancel());
    }
  });
  q.run_until(10.0);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_FALSE(h.valid());  // reaped immediately, no phantom firing
}

TEST(TimerHandle, ResumeRevivesWithOriginalTimeAndOrder) {
  // cancel() parks the slot; resume() before its fire time revives it in
  // its original (at, seq) position — the phase-preservation contract
  // churn rejoin relies on for byte-identical heartbeat traces.
  EventQueue q;
  std::vector<int> order;
  q.schedule(2.0, [&] { order.push_back(0); });
  TimerHandle h = q.schedule(2.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_TRUE(h.cancel());
  EXPECT_TRUE(h.valid());  // parked, not reaped
  EXPECT_TRUE(h.resume());
  EXPECT_FALSE(h.resume());  // already live
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(TimerHandle, ResumeFailsOnceFireTimePassed) {
  EventQueue q;
  int fired = 0;
  TimerHandle h = q.schedule(1.0, [&] { ++fired; });
  EXPECT_TRUE(h.cancel());
  q.run_until(5.0);  // reaps the parked slot in passing
  EXPECT_FALSE(h.resume());
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CountersTrackLiveCancelledProcessed) {
  EventQueue q;
  TimerHandle a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  TimerHandle c = q.schedule_every(1.5, [] {});
  EXPECT_EQ(q.live(), 3u);
  EXPECT_EQ(q.pending(), 3u);
  EXPECT_TRUE(a.cancel());
  EXPECT_EQ(q.live(), 2u);
  EXPECT_EQ(q.cancelled(), 1u);
  q.run_until(2.0);  // fires the 2.0 one-shot and one periodic tick
  EXPECT_EQ(q.processed(), 2u);
  EXPECT_EQ(q.live(), 1u);  // the periodic task stays live
  EXPECT_TRUE(c.cancel());
  EXPECT_EQ(q.live(), 0u);
  EXPECT_EQ(q.cancelled(), 2u);
}

TEST(EventQueueProperty, HandlersSchedulingAtNowRunInSamePass) {
  // An event scheduling a follow-up at the current timestamp must run it
  // after every already-queued event at that timestamp (FIFO among equals).
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] {
    order.push_back(0);
    q.schedule(1.0, [&] { order.push_back(2); });
  });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueProperty, RandomCancelResumeMatchesReferenceModel) {
  // Drive the tiered wheel through randomized interleavings of
  // schedule / cancel / resume / run_until and replay the same ops on a
  // transparent reference model (flat vector, stable (at, seq) order,
  // cancelled flags). Fired sequences must match exactly: this is the
  // determinism contract the wheel's tiering must never violate.
  struct ModelEvent {
    SimTime at;
    int id;
    bool cancelled = false;
    bool fired = false;
  };
  for (uint64_t seed = 300; seed < 330; ++seed) {
    util::Rng rng(seed);
    EventQueue q;
    std::vector<ModelEvent> model;  // index order == seq order
    std::vector<TimerHandle> handles;
    std::vector<int> ran;

    auto model_run_until = [&](SimTime until) {
      std::vector<int> fired;
      for (;;) {
        int best = -1;
        for (int i = 0; i < static_cast<int>(model.size()); ++i) {
          const ModelEvent& e = model[i];
          if (e.fired || e.at > until) continue;
          if (best < 0 || e.at < model[best].at ||
              (e.at == model[best].at && i < best)) {
            best = i;
          }
        }
        if (best < 0) return fired;
        model[best].fired = true;
        if (!model[best].cancelled) fired.push_back(model[best].id);
      }
    };

    SimTime model_now = 0.0;
    for (int round = 0; round < 60; ++round) {
      const uint32_t op = rng.below(10);
      if (op < 6 || model.empty()) {
        // Coarse grid forces equal-timestamp collisions across buckets;
        // occasional long delays exercise the overflow tier.
        const SimTime delay = static_cast<SimTime>(rng.below(8)) +
                              (rng.below(10) == 0 ? 100.0 : 0.0);
        const int id = static_cast<int>(model.size());
        model.push_back({model_now + delay, id});
        handles.push_back(
            q.schedule(model_now + delay, [&ran, id] { ran.push_back(id); }));
      } else if (op < 8) {
        const size_t pick = rng.below(static_cast<uint32_t>(handles.size()));
        if (handles[pick].cancel()) model[pick].cancelled = true;
      } else if (op == 8) {
        const size_t pick = rng.below(static_cast<uint32_t>(handles.size()));
        if (handles[pick].resume()) model[pick].cancelled = false;
      } else {
        model_now += static_cast<SimTime>(rng.below(12));
        const std::vector<int> expect = model_run_until(model_now);
        const size_t before = ran.size();
        q.run_until(model_now);
        EXPECT_EQ(std::vector<int>(ran.begin() + before, ran.end()), expect)
            << "seed " << seed << " round " << round;
      }
    }
    const std::vector<int> expect =
        model_run_until(std::numeric_limits<SimTime>::infinity());
    const size_t before = ran.size();
    q.run();
    EXPECT_EQ(std::vector<int>(ran.begin() + before, ran.end()), expect)
        << "seed " << seed;
    EXPECT_EQ(q.pending(), 0u);
  }
}

}  // namespace
}  // namespace ges::p2p
