#include "p2p/event_sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ges::p2p {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueue, EqualTimesRunInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NowAdvancesToEventTime) {
  EventQueue q;
  double seen = -1.0;
  q.schedule(5.5, [&] { seen = q.now(); });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 5.5);
  EXPECT_DOUBLE_EQ(q.now(), 5.5);
}

TEST(EventQueue, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventQueue q;
  int ran = 0;
  q.schedule(1.0, [&] { ++ran; });
  q.schedule(2.0, [&] { ++ran; });
  q.schedule(3.0, [&] { ++ran; });
  q.run_until(2.0);
  EXPECT_EQ(ran, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, HandlersCanScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.schedule_after(1.0, recurse);
  };
  q.schedule(0.0, recurse);
  q.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, ScheduleEveryRepeats) {
  EventQueue q;
  int fired = 0;
  q.schedule_every(1.0, [&] { ++fired; });
  q.run_until(5.5);
  EXPECT_EQ(fired, 5);
}

TEST(EventQueue, RunWithEventLimit) {
  EventQueue q;
  int fired = 0;
  q.schedule_every(1.0, [&] { ++fired; });
  q.run(3);
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, SchedulingInPastThrows) {
  EventQueue q;
  q.schedule(2.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule(1.0, [] {}), util::CheckFailure);
  EXPECT_THROW(q.schedule_after(-0.5, [] {}), util::CheckFailure);
}

TEST(EventQueue, ScheduleEveryRejectsNonPositiveInterval) {
  EventQueue q;
  EXPECT_THROW(q.schedule_every(0.0, [] {}), util::CheckFailure);
}

// --- Randomized property tests against a reference model ---------------

/// Reference semantics: events sorted by (time, scheduling order).
std::vector<int> model_order(const std::vector<std::pair<SimTime, int>>& events) {
  std::vector<std::pair<SimTime, int>> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<int> ids;
  ids.reserve(sorted.size());
  for (const auto& [at, id] : sorted) ids.push_back(id);
  return ids;
}

TEST(EventQueueProperty, RandomSchedulesMatchStableSortModel) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng rng(seed);
    EventQueue q;
    std::vector<std::pair<SimTime, int>> events;
    std::vector<int> ran;
    const size_t n = 50 + rng.below(100);
    for (size_t i = 0; i < n; ++i) {
      // Coarse grid forces many equal-timestamp collisions.
      const SimTime at = static_cast<SimTime>(rng.below(10));
      const int id = static_cast<int>(i);
      events.emplace_back(at, id);
      q.schedule(at, [&ran, id] { ran.push_back(id); });
    }
    q.run();
    EXPECT_EQ(ran, model_order(events)) << "seed " << seed;
    EXPECT_EQ(q.processed(), n);
  }
}

TEST(EventQueueProperty, RunUntilPartitionsTheScheduleAtTheBoundary) {
  for (uint64_t seed = 100; seed < 115; ++seed) {
    util::Rng rng(seed);
    EventQueue q;
    std::vector<std::pair<SimTime, int>> events;
    std::vector<int> ran;
    for (size_t i = 0; i < 80; ++i) {
      const SimTime at = static_cast<SimTime>(rng.below(20));
      events.emplace_back(at, static_cast<int>(i));
      q.schedule(at, [&ran, i] { ran.push_back(static_cast<int>(i)); });
    }
    const SimTime boundary = static_cast<SimTime>(rng.below(20));
    q.run_until(boundary);

    // Exactly the events with timestamp <= boundary ran, in model order;
    // the clock sits at the boundary even if nothing fired there.
    std::vector<std::pair<SimTime, int>> within;
    for (const auto& e : events) {
      if (e.first <= boundary) within.push_back(e);
    }
    EXPECT_EQ(ran, model_order(within)) << "seed " << seed;
    EXPECT_EQ(q.pending(), events.size() - within.size());
    EXPECT_DOUBLE_EQ(q.now(), boundary);

    q.run();  // the remainder still runs, after the boundary
    EXPECT_EQ(ran, model_order(events)) << "seed " << seed;
  }
}

TEST(EventQueueProperty, ScheduleEveryInterleavesWithOneShotEvents) {
  for (uint64_t seed = 200; seed < 210; ++seed) {
    util::Rng rng(seed);
    EventQueue q;
    const SimTime interval = 1.0 + rng.uniform(0.0, 2.0);
    std::vector<SimTime> tick_times;
    q.schedule_every(interval, [&] { tick_times.push_back(q.now()); });

    size_t oneshot_ran = 0;
    const size_t oneshots = 5 + rng.below(10);
    for (size_t i = 0; i < oneshots; ++i) {
      q.schedule(rng.uniform(0.0, 10.0), [&] { ++oneshot_ran; });
    }

    const size_t max_events = 10 + rng.below(20);
    q.run(max_events);
    EXPECT_EQ(tick_times.size() + oneshot_ran, max_events) << "seed " << seed;

    // Ticks land exactly on multiples of the interval, phase-aligned to 0.
    for (size_t i = 0; i < tick_times.size(); ++i) {
      EXPECT_DOUBLE_EQ(tick_times[i], static_cast<SimTime>(i + 1) * interval);
    }
    // run(max) never reorders: everything that ran is <= everything pending.
    EXPECT_EQ(q.processed(), max_events);
  }
}

TEST(EventQueueProperty, HandlersSchedulingAtNowRunInSamePass) {
  // An event scheduling a follow-up at the current timestamp must run it
  // after every already-queued event at that timestamp (FIFO among equals).
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] {
    order.push_back(0);
    q.schedule(1.0, [&] { order.push_back(2); });
  });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace ges::p2p
