#include "p2p/random_walk.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "support/test_corpus.hpp"
#include "util/check.hpp"

namespace ges::p2p {
namespace {

class RandomWalkTest : public ::testing::Test {
 protected:
  RandomWalkTest()
      : corpus_(test::clustered_corpus(20, 2)),
        net_(corpus_, test::uniform_capacities(corpus_), NetworkConfig{}) {
    util::Rng rng(1);
    bootstrap_random_graph(net_, 4.0, rng);
  }

  corpus::Corpus corpus_;
  Network net_;
};

TEST_F(RandomWalkTest, RespectsTtl) {
  util::Rng rng(2);
  const auto result = random_walk(net_, 0, 5, 100, rng);
  EXPECT_LE(result.hops, 5u);
  EXPECT_LE(result.visited.size(), 5u);
}

TEST_F(RandomWalkTest, RespectsMaxResponses) {
  util::Rng rng(3);
  const auto result = random_walk(net_, 0, 1000, 3, rng);
  EXPECT_EQ(result.visited.size(), 3u);
}

TEST_F(RandomWalkTest, VisitedAreDistinctAndExcludeStart) {
  util::Rng rng(4);
  const auto result = random_walk(net_, 0, 50, 100, rng);
  std::unordered_set<NodeId> unique(result.visited.begin(), result.visited.end());
  EXPECT_EQ(unique.size(), result.visited.size());
  EXPECT_EQ(unique.count(0), 0u);
}

TEST_F(RandomWalkTest, VisitedAreNeighborsReachable) {
  util::Rng rng(5);
  const auto result = random_walk(net_, 0, 30, 100, rng);
  for (const NodeId n : result.visited) {
    EXPECT_LT(n, net_.size());
    EXPECT_TRUE(net_.alive(n));
  }
}

TEST_F(RandomWalkTest, Deterministic) {
  util::Rng a(6);
  util::Rng b(6);
  const auto ra = random_walk(net_, 0, 30, 100, a);
  const auto rb = random_walk(net_, 0, 30, 100, b);
  EXPECT_EQ(ra.visited, rb.visited);
  EXPECT_EQ(ra.hops, rb.hops);
}

TEST(RandomWalk, IsolatedNodeYieldsEmptyWalk) {
  const auto corpus = test::clustered_corpus(4, 1);
  Network net(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  util::Rng rng(7);
  const auto result = random_walk(net, 0, 10, 10, rng);
  EXPECT_TRUE(result.visited.empty());
  EXPECT_EQ(result.hops, 0u);
}

TEST(RandomWalk, DeadStartThrows) {
  const auto corpus = test::clustered_corpus(4, 1);
  Network net(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  net.deactivate(0);
  util::Rng rng(8);
  EXPECT_THROW(random_walk(net, 0, 10, 10, rng), util::CheckFailure);
}

TEST(RandomWalk, TwoNodeLineBouncesWhenForced) {
  const auto corpus = test::clustered_corpus(2, 1);
  Network net(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  net.connect(0, 1, LinkType::kRandom);
  util::Rng rng(9);
  const auto result = random_walk(net, 0, 4, 10, rng);
  // With a single neighbor the walk must still make progress (bounce).
  EXPECT_EQ(result.visited, (std::vector<NodeId>{1}));
  EXPECT_EQ(result.hops, 4u);
}

}  // namespace
}  // namespace ges::p2p
