#include "p2p/host_cache.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace ges::p2p {
namespace {

HostCacheEntry entry(NodeId node, double rel = 0.0, double capacity = 1.0,
                     uint32_t degree = 0) {
  HostCacheEntry e;
  e.node = node;
  e.rel_score = rel;
  e.capacity = capacity;
  e.degree = degree;
  return e;
}

TEST(HostCache, InsertAndFind) {
  HostCache cache(4);
  cache.insert(entry(1, 0.5));
  ASSERT_TRUE(cache.contains(1));
  EXPECT_DOUBLE_EQ(cache.find(1)->rel_score, 0.5);
  EXPECT_EQ(cache.find(2), nullptr);
}

TEST(HostCache, FifoEvictionWhenFull) {
  HostCache cache(3);
  cache.insert(entry(1));
  cache.insert(entry(2));
  cache.insert(entry(3));
  cache.insert(entry(4));  // evicts 1
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(4));
  EXPECT_EQ(cache.size(), 3u);
}

TEST(HostCache, ReinsertUpdatesWithoutRefreshingFifoPosition) {
  HostCache cache(2);
  cache.insert(entry(1, 0.1));
  cache.insert(entry(2, 0.2));
  cache.insert(entry(1, 0.9));  // update in place; 1 stays oldest
  EXPECT_DOUBLE_EQ(cache.find(1)->rel_score, 0.9);
  cache.insert(entry(3, 0.3));  // evicts 1, the oldest
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(HostCache, EraseFreesSlot) {
  HostCache cache(2);
  cache.insert(entry(1));
  EXPECT_TRUE(cache.erase(1));
  EXPECT_FALSE(cache.erase(1));
  EXPECT_EQ(cache.size(), 0u);
  cache.insert(entry(2));
  cache.insert(entry(3));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(HostCache, EntriesInFifoOrder) {
  HostCache cache(3);
  cache.insert(entry(5));
  cache.insert(entry(7));
  cache.insert(entry(6));
  const auto entries = cache.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0]->node, 5u);
  EXPECT_EQ(entries[1]->node, 7u);
  EXPECT_EQ(entries[2]->node, 6u);
}

TEST(HostCache, BestByRelevanceHonorsFilter) {
  HostCache cache(4);
  cache.insert(entry(1, 0.9));
  cache.insert(entry(2, 0.5));
  cache.insert(entry(3, 0.7));
  const auto* best = cache.best_by_relevance(
      [](const HostCacheEntry& e) { return e.node != 1; });
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->node, 3u);
}

TEST(HostCache, BestByRelevanceNoneAcceptable) {
  HostCache cache(2);
  cache.insert(entry(1, 0.9));
  EXPECT_EQ(cache.best_by_relevance([](const HostCacheEntry&) { return false; }),
            nullptr);
}

TEST(HostCache, BestByCapacity) {
  HostCache cache(4);
  cache.insert(entry(1, 0.0, 10.0));
  cache.insert(entry(2, 0.0, 1000.0));
  cache.insert(entry(3, 0.0, 100.0));
  const auto* best = cache.best_by_capacity([](const HostCacheEntry&) { return true; });
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->node, 2u);
}

TEST(HostCache, ZeroCapacityRejected) {
  EXPECT_THROW(HostCache(0), util::CheckFailure);
}

TEST(HostCache, InvalidNodeRejected) {
  HostCache cache(2);
  EXPECT_THROW(cache.insert(entry(kInvalidNode)), util::CheckFailure);
}

TEST(HostCache, EvictionAfterErasureKeepsOrder) {
  HostCache cache(3);
  cache.insert(entry(1));
  cache.insert(entry(2));
  cache.insert(entry(3));
  cache.erase(2);
  cache.insert(entry(4));
  cache.insert(entry(5));  // now full again: {1,3,4} + 5 evicts 1
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
  EXPECT_TRUE(cache.contains(5));
}

}  // namespace
}  // namespace ges::p2p
