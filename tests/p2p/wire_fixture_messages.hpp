#pragma once

#include <cstdint>
#include <vector>

#include "ir/sparse_vector.hpp"
#include "p2p/wire.hpp"

namespace ges::test {

/// One canonical message per wire tag, named by its fixture stem
/// (message_type_name of the payload).
struct NamedWireMessage {
  const char* name;
  p2p::wire::Message message;
};

inline ir::SparseVector wire_fixture_vector(
    std::vector<ir::TermWeight> pairs) {
  return ir::SparseVector::from_pairs(std::move(pairs));
}

/// The 13 canonical messages behind tests/p2p/fixtures/wire_v1/*.bin, in
/// tag order. Shared by the golden-fixture emitter and the codec tests so
/// the committed fixtures and the test expectations can never drift. The
/// values are arbitrary but chosen to exercise the format's edges: a
/// query large enough for a two-byte payload-length varint, high-bit
/// u64s, empty and non-empty vectors in one exchange, fractional scores
/// that are exact in binary.
inline std::vector<NamedWireMessage> wire_fixture_messages() {
  namespace wire = p2p::wire;
  std::vector<NamedWireMessage> out;

  // 14 terms -> sparse_vector_size = 1 + 14*8 = 113, WalkQuery payload =
  // 130 > 127: the frame's length varint takes two bytes.
  std::vector<ir::TermWeight> big;
  for (uint32_t i = 0; i < 14; ++i) {
    big.push_back({ir::TermId{3} << i, 0.5f + 0.25f * static_cast<float>(i)});
  }
  wire::WalkQuery walk_query{
      /*guid=*/0x0123456789ABCDEFull, /*initiator=*/42, /*ttl=*/60,
      /*flags=*/1, wire_fixture_vector(std::move(big))};
  out.push_back({"walk_query", walk_query});

  wire::WalkResponse walk_response{
      /*guid=*/0x0123456789ABCDEFull, /*responder=*/7,
      {{12, 3.25}, {999, 0.001953125}, {4294967294u, 7.0}}};
  out.push_back({"walk_response", walk_response});

  wire::FloodForward flood_forward{
      /*guid=*/0xFFFFFFFFFFFFFFFFull, /*from=*/13, /*depth=*/2, /*radius=*/4,
      wire_fixture_vector({{5, 1.5f}, {1000, 0.125f}, {70000, 2.0f}})};
  out.push_back({"flood_forward", flood_forward});

  out.push_back({"discovery_probe",
                 wire::DiscoveryProbe{/*origin=*/21, /*round=*/300,
                                      /*want_relevant=*/1, /*ttl=*/60,
                                      /*max_responses=*/16}});

  out.push_back({"handshake_request",
                 wire::HandshakeRequest{/*from=*/5, /*to=*/9, /*link_type=*/1,
                                        /*rel=*/0.453125,
                                        /*capacity=*/100000.0, /*degree=*/6}});

  out.push_back({"handshake_response",
                 wire::HandshakeResponse{/*from=*/9, /*to=*/5, /*accept=*/1,
                                         /*victim=*/p2p::kInvalidNode}});

  out.push_back({"handshake_confirm",
                 wire::HandshakeConfirm{/*from=*/5, /*to=*/9, /*committed=*/1}});

  out.push_back({"node_vector_update",
                 wire::NodeVectorUpdate{
                     /*owner=*/3, /*version=*/17,
                     wire_fixture_vector({{1, 0.25f}, {2, 0.5f}, {3, 0.75f},
                                          {4, 1.0f}, {5, 1.25f}})}});

  out.push_back({"replica_heartbeat",
                 wire::ReplicaHeartbeat{/*from=*/2, /*to=*/3, /*tick=*/41}});

  // One record with a vector (random-cache style), one with the empty
  // vector semantic-cache entries gossip.
  wire::HostCacheExchange host_cache_exchange{
      /*from=*/1, /*to=*/2, /*cache_kind=*/1,
      {{/*node=*/8, /*capacity=*/1000.0, /*degree=*/4, /*rel_score=*/0.625,
        wire_fixture_vector({{10, 0.5f}, {20, 1.5f}})},
       {/*node=*/9, /*capacity=*/10.0, /*degree=*/3, /*rel_score=*/0.0,
        ir::SparseVector{}}}};
  out.push_back({"host_cache_exchange", host_cache_exchange});

  wire::CacheStore cache_store{
      /*holder=*/4, /*signature=*/0xFEEDFACECAFEBEEFull,
      {{/*doc=*/100, /*score=*/2.5, /*owner=*/6, /*owner_version=*/3},
       {/*doc=*/200, /*score=*/0.0078125, /*owner=*/7, /*owner_version=*/12}}};
  out.push_back({"cache_store", cache_store});

  out.push_back({"cache_probe",
                 wire::CacheProbe{/*holder=*/4,
                                  /*signature=*/0xFEEDFACECAFEBEEFull}});

  wire::CacheResult cache_result{
      /*holder=*/4, /*signature=*/0xFEEDFACECAFEBEEFull,
      {{/*doc=*/100, /*score=*/2.5, /*owner=*/6, /*owner_version=*/3}}};
  out.push_back({"cache_result", cache_result});

  return out;
}

}  // namespace ges::test
