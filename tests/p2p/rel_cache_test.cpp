#include "p2p/rel_cache.hpp"

#include <gtest/gtest.h>

#include "ges/topology_adaptation.hpp"
#include "p2p/network.hpp"
#include "support/test_corpus.hpp"
#include "util/thread_pool.hpp"

namespace ges::p2p {
namespace {

TEST(RelCache, HitsAfterFirstLookupAndInvalidatesOnVersionChange) {
  RelCache cache;
  size_t computes = 0;
  const auto compute = [&computes] {
    ++computes;
    return 0.5;
  };
  EXPECT_DOUBLE_EQ(cache.get(1, 2, 0, 0, compute), 0.5);
  EXPECT_EQ(computes, 1u);
  // Same pair, either orientation: served from cache.
  EXPECT_DOUBLE_EQ(cache.get(2, 1, 0, 0, compute), 0.5);
  EXPECT_DOUBLE_EQ(cache.get(1, 2, 0, 0, compute), 0.5);
  EXPECT_EQ(computes, 1u);
  EXPECT_EQ(cache.hits(), 2u);
  // A bumped version on either endpoint forces recomputation.
  EXPECT_DOUBLE_EQ(cache.get(1, 2, 1, 0, compute), 0.5);
  EXPECT_EQ(computes, 2u);
  // The swapped orientation carries the swapped versions: still cached.
  EXPECT_DOUBLE_EQ(cache.get(2, 1, 0, 1, compute), 0.5);
  EXPECT_EQ(computes, 2u);
  EXPECT_DOUBLE_EQ(cache.get(1, 2, 1, 1, compute), 0.5);
  EXPECT_EQ(computes, 3u);
}

TEST(RelCache, ConcurrentLookupsAgree) {
  RelCache cache;
  constexpr size_t kPairs = 2000;
  std::vector<double> out(kPairs, 0.0);
  util::global_pool().parallel_for(kPairs, [&](size_t i) {
    const auto a = static_cast<NodeId>(i % 50);
    const auto b = static_cast<NodeId>((i * 7) % 50);
    out[i] = cache.get(a, b, 3, 3, [a, b] {
      return static_cast<double>(std::min(a, b)) + static_cast<double>(a + b) / 1000.0;
    });
  });
  for (size_t i = 0; i < kPairs; ++i) {
    const auto a = static_cast<NodeId>(i % 50);
    const auto b = static_cast<NodeId>((i * 7) % 50);
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(std::min(a, b)) +
                                 static_cast<double>(a + b) / 1000.0);
  }
}

/// Fresh, cache-free REL: what rel_nodes must always agree with.
double fresh_rel(const Network& net, NodeId a, NodeId b) {
  return net.node_vector(a).dot(net.node_vector(b));
}

void expect_all_pairs_fresh(const Network& net) {
  for (NodeId a = 0; a < net.size(); ++a) {
    for (NodeId b = a; b < static_cast<NodeId>(net.size()); ++b) {
      ASSERT_DOUBLE_EQ(net.rel_nodes(a, b), fresh_rel(net, a, b))
          << "stale rel for pair (" << a << ", " << b << ")";
    }
  }
}

// Property test of the tentpole contract: after any interleaving of
// add_document / remove_document / deactivate / activate / adaptation
// rounds, rel_nodes(a, b) equals a fresh dot product of the current
// (truncated) node vectors.
TEST(NetworkRelCache, StaysFreshUnderInterleavedMutations) {
  const auto corpus = test::clustered_corpus(18, 3);
  Network net(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  util::Rng rng(99);
  bootstrap_random_graph(net, 4.0, rng);
  core::TopologyAdaptation adapt(net, core::GesParams{}, 5);

  // Warm the cache over every pair.
  expect_all_pairs_fresh(net);

  std::vector<ir::DocId> added;
  for (int step = 0; step < 60; ++step) {
    const auto node = static_cast<NodeId>(rng.index(net.size()));
    switch (rng.index(5)) {
      case 0: {  // add a document with terms drawn from another topic
        std::vector<ir::TermWeight> counts;
        const auto base = static_cast<ir::TermId>(rng.index(3) * 8);
        for (size_t j = 0; j < 4; ++j) {
          counts.push_back({static_cast<ir::TermId>(base + j),
                            static_cast<float>(1 + rng.index(3))});
        }
        added.push_back(
            net.add_document(node, ir::SparseVector::from_pairs(std::move(counts))));
        break;
      }
      case 1: {  // remove a dynamically added document (if any remain)
        if (added.empty()) break;
        const size_t pick = rng.index(added.size());
        const ir::DocId doc = added[pick];
        const NodeId owner = net.document_owner(doc);
        if (owner != kInvalidNode) net.remove_document(owner, doc);
        added.erase(added.begin() + static_cast<ptrdiff_t>(pick));
        break;
      }
      case 2:  // churn out
        if (net.alive_count() > 4) net.deactivate(node);
        break;
      case 3:  // churn back in
        if (!net.alive(node)) {
          net.activate(node);
          bootstrap_join(net, node, 2, rng);
        }
        break;
      default:
        adapt.run_round();
        break;
    }
    // Spot-check a handful of random pairs every step...
    for (int k = 0; k < 8; ++k) {
      const auto a = static_cast<NodeId>(rng.index(net.size()));
      const auto b = static_cast<NodeId>(rng.index(net.size()));
      ASSERT_DOUBLE_EQ(net.rel_nodes(a, b), fresh_rel(net, a, b));
    }
  }
  // ...and every pair at the end.
  expect_all_pairs_fresh(net);
  net.check_invariants();
}

// Same property with node-vector truncation active: rebuilds must bump
// the version even when truncation keeps the vector size constant.
TEST(NetworkRelCache, StaysFreshUnderTruncation) {
  const auto corpus = test::clustered_corpus(9, 3);
  NetworkConfig config;
  config.node_vector_size = 5;
  Network net(corpus, test::uniform_capacities(corpus), config);
  expect_all_pairs_fresh(net);

  util::Rng rng(7);
  for (int step = 0; step < 20; ++step) {
    const auto node = static_cast<NodeId>(rng.index(net.size()));
    std::vector<ir::TermWeight> counts;
    for (size_t j = 0; j < 6; ++j) {
      counts.push_back({static_cast<ir::TermId>(rng.index(24)),
                        static_cast<float>(1 + rng.index(4))});
    }
    net.add_document(node, ir::SparseVector::from_pairs(std::move(counts)));
    expect_all_pairs_fresh(net);
  }
}

TEST(NetworkRelCache, VersionBumpsOnDocumentChanges) {
  const auto corpus = test::clustered_corpus(6, 2);
  Network net(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  const uint64_t v0 = net.node_vector_version(0);
  const auto doc = net.add_document(0, ir::SparseVector::from_pairs({{100, 2.0f}}));
  EXPECT_GT(net.node_vector_version(0), v0);
  const uint64_t v1 = net.node_vector_version(0);
  EXPECT_TRUE(net.remove_document(0, doc));
  EXPECT_GT(net.node_vector_version(0), v1);
  // Other nodes' versions are untouched.
  EXPECT_EQ(net.node_vector_version(1), 1u);
}

TEST(NetworkRelCache, CachesAcrossRepeatedQueries) {
  const auto corpus = test::clustered_corpus(6, 2);
  Network net(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  const uint64_t misses_before = net.rel_cache().misses();
  for (int i = 0; i < 10; ++i) net.rel_nodes(0, 2);
  EXPECT_EQ(net.rel_cache().misses(), misses_before + 1);
  EXPECT_GE(net.rel_cache().hits(), 9u);
}

}  // namespace
}  // namespace ges::p2p
