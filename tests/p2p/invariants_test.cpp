#include "p2p/invariants.hpp"

#include <gtest/gtest.h>

#include "support/test_corpus.hpp"
#include "util/check.hpp"

namespace ges::p2p {
namespace {

class InvariantsTest : public ::testing::Test {
 protected:
  InvariantsTest()
      : corpus_(test::clustered_corpus(12, 2)),
        net_(corpus_, test::uniform_capacities(corpus_), NetworkConfig{}) {
    util::Rng rng(3);
    bootstrap_random_graph(net_, 4.0, rng);
  }

  corpus::Corpus corpus_;
  Network net_;
};

TEST_F(InvariantsTest, CleanOverlayPassesAndSweepCoversEverything) {
  const InvariantReport report = check_overlay_invariants(net_);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.nodes_checked, net_.size());
  EXPECT_GT(report.links_checked, 0u);
  EXPECT_EQ(report.replicas_checked, report.links_checked);  // all random
  EXPECT_EQ(report.to_string(), "");
  expect_overlay_invariants(net_);  // throwing form agrees
}

TEST_F(InvariantsTest, DeadNodesAreCheckedForLeftoverState) {
  net_.deactivate(3);
  const InvariantReport report = check_overlay_invariants(net_);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.nodes_checked, net_.size());
}

TEST_F(InvariantsTest, SelfCacheEntryIsReported) {
  HostCacheEntry entry;
  entry.node = 5;
  net_.random_cache(5).insert(entry);
  const InvariantReport report = check_overlay_invariants(net_);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].node, 5u);
  EXPECT_NE(report.violations[0].message.find("caches itself"), std::string::npos);
  EXPECT_THROW(expect_overlay_invariants(net_), util::CheckFailure);
}

TEST_F(InvariantsTest, SemanticCacheVectorIsReported) {
  HostCacheEntry entry;
  entry.node = 7;
  entry.vector = ir::SparseVector::from_pairs({{1, 1.0f}});
  net_.semantic_cache(2).insert(entry);
  const InvariantReport report = check_overlay_invariants(net_);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("vector-free"), std::string::npos);
}

TEST_F(InvariantsTest, DegreeCapsAreEnforcedWithSlack) {
  InvariantOptions options;
  options.max_total_links = [](NodeId) { return size_t{0}; };
  const InvariantReport strict = check_overlay_invariants(net_, options);
  EXPECT_FALSE(strict.ok());  // every linked node exceeds cap 0

  options.degree_slack = net_.size();  // slack absorbs any degree here
  const InvariantReport slack = check_overlay_invariants(net_, options);
  EXPECT_TRUE(slack.ok()) << slack.to_string();
}

TEST_F(InvariantsTest, SemanticCapIsStrict) {
  net_.disconnect(0, net_.neighbors(0, LinkType::kRandom).front());
  net_.connect(0, 11, LinkType::kSemantic);
  InvariantOptions options;
  options.max_semantic_links = [](NodeId) { return size_t{0}; };
  options.degree_slack = 100;  // slack applies to total degree only
  const InvariantReport report = check_overlay_invariants(net_, options);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("semantic links"), std::string::npos);
}

TEST_F(InvariantsTest, FreshReplicaExpectationDetectsStaleness) {
  InvariantOptions fresh;
  fresh.expect_fresh_replicas = true;
  EXPECT_TRUE(check_overlay_invariants(net_, fresh).ok());

  const NodeId neighbor = net_.neighbors(0, LinkType::kRandom).front();
  net_.add_document(neighbor, ir::SparseVector::from_pairs({{90, 2.0f}}));
  const InvariantReport stale = check_overlay_invariants(net_, fresh);
  EXPECT_FALSE(stale.ok());
  EXPECT_NE(stale.to_string().find("stale replica"), std::string::npos);

  // Default options tolerate staleness (convergence is the guarantee).
  EXPECT_TRUE(check_overlay_invariants(net_).ok());

  net_.refresh_replicas(0);
  for (const NodeId n : net_.alive_nodes()) net_.refresh_replicas(n);
  EXPECT_TRUE(check_overlay_invariants(net_, fresh).ok());
}

}  // namespace
}  // namespace ges::p2p
