#include "p2p/fault_injection.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace ges::p2p {
namespace {

TEST(FaultPlan, ZeroRatesAreDisabled) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  FaultInjector faults(plan);
  for (uint64_t nonce = 0; nonce < 100; ++nonce) {
    EXPECT_FALSE(faults.drop_message(FaultChannel::kWalk, 7, nonce));
    EXPECT_FALSE(faults.duplicate_message(FaultChannel::kFlood, 7, nonce));
    EXPECT_FALSE(faults.lose_heartbeat(7, nonce));
    EXPECT_FALSE(faults.kill_mid_handshake(7, nonce));
    EXPECT_DOUBLE_EQ(faults.delivery_delay(FaultChannel::kWalk, 7, nonce), 0.0);
  }
  EXPECT_EQ(faults.counters().messages_dropped.load(), 0u);
}

TEST(FaultPlan, UniformPresetEnablesMessageFaults) {
  const FaultPlan plan = FaultPlan::uniform(0.2, 9);
  EXPECT_TRUE(plan.enabled());
  EXPECT_DOUBLE_EQ(plan.drop_rate, 0.2);
  EXPECT_DOUBLE_EQ(plan.heartbeat_loss_rate, 0.2);
  EXPECT_DOUBLE_EQ(plan.handshake_death_rate, 0.05);
  EXPECT_EQ(plan.seed, 9u);
}

TEST(FaultInjector, DecisionsAreDeterministicAndOrderIndependent) {
  FaultPlan plan;
  plan.drop_rate = 0.5;
  plan.seed = 123;
  FaultInjector a(plan);
  FaultInjector b(plan);

  std::vector<bool> forward;
  std::vector<bool> backward;
  for (uint64_t nonce = 0; nonce < 256; ++nonce) {
    forward.push_back(a.drop_message(FaultChannel::kWalk, 42, nonce));
  }
  for (uint64_t nonce = 256; nonce-- > 0;) {
    backward.push_back(b.drop_message(FaultChannel::kWalk, 42, nonce));
  }
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);
}

TEST(FaultInjector, ChannelsKeysAndNoncesSeedIndependentStreams) {
  FaultPlan plan;
  plan.drop_rate = 0.5;
  plan.seed = 7;
  FaultInjector faults(plan);

  auto stream = [&](FaultChannel channel, uint64_t key) {
    std::vector<bool> out;
    for (uint64_t nonce = 0; nonce < 512; ++nonce) {
      out.push_back(faults.drop_message(channel, key, nonce));
    }
    return out;
  };
  const auto walk = stream(FaultChannel::kWalk, 1);
  EXPECT_NE(walk, stream(FaultChannel::kFlood, 1));  // channel matters
  EXPECT_NE(walk, stream(FaultChannel::kWalk, 2));   // key matters
  EXPECT_NE(stream(FaultChannel::kWalk, 1),
            [&] {  // seed matters
              FaultPlan other = plan;
              other.seed = 8;
              FaultInjector f2(other);
              std::vector<bool> out;
              for (uint64_t nonce = 0; nonce < 512; ++nonce) {
                out.push_back(f2.drop_message(FaultChannel::kWalk, 1, nonce));
              }
              return out;
            }());
}

TEST(FaultInjector, RatesAreApproximatelyHonored) {
  FaultPlan plan;
  plan.drop_rate = 0.3;
  plan.delay_rate = 0.25;
  plan.max_delay = 1.5;
  plan.seed = 5;
  FaultInjector faults(plan);

  const size_t trials = 20000;
  size_t drops = 0;
  size_t delays = 0;
  for (uint64_t nonce = 0; nonce < trials; ++nonce) {
    drops += faults.drop_message(FaultChannel::kWalk, 99, nonce) ? 1 : 0;
    const SimTime d = faults.delivery_delay(FaultChannel::kWalk, 99, nonce);
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, plan.max_delay);
    delays += d > 0.0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(drops) / trials, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(delays) / trials, 0.25, 0.02);
  EXPECT_EQ(faults.counters().messages_dropped.load(), drops);
}

TEST(FaultInjector, DeliverDropsDelaysAndDuplicates) {
  FaultPlan plan;
  plan.drop_rate = 0.4;
  plan.duplicate_rate = 0.2;
  plan.delay_rate = 0.3;
  plan.seed = 31;
  FaultInjector faults(plan);

  EventQueue queue;
  size_t delivered = 0;
  size_t scheduled = 0;
  const size_t trials = 2000;
  for (uint64_t nonce = 0; nonce < trials; ++nonce) {
    if (faults.deliver(queue, FaultChannel::kGossip, 5, nonce, 1.0,
                       [&] { ++delivered; })) {
      ++scheduled;
    }
  }
  queue.run();
  EXPECT_LT(scheduled, trials);                 // some dropped
  EXPECT_GT(delivered, scheduled);              // some duplicated
  EXPECT_EQ(scheduled, trials - faults.counters().messages_dropped.load());
  EXPECT_EQ(delivered,
            scheduled + faults.counters().messages_duplicated.load());
  EXPECT_GT(faults.counters().messages_delayed.load(), 0u);
}

TEST(FaultInjector, PartitionsCutOnlyCrossEdgesAndExpire) {
  FaultPlan plan;
  plan.partition_rate = 1.0;  // every round starts one (when none active)
  plan.partition_fraction = 0.25;
  plan.partition_rounds = 2;
  plan.seed = 17;
  FaultInjector faults(plan);

  std::vector<NodeId> alive(20);
  for (NodeId n = 0; n < 20; ++n) alive[n] = n;

  faults.begin_round(alive, 0);
  ASSERT_TRUE(faults.partition_active());
  EXPECT_EQ(faults.counters().partitions_started.load(), 1u);

  size_t isolated = 0;
  for (const NodeId n : alive) isolated += faults.partitioned(n) ? 1 : 0;
  EXPECT_EQ(isolated, 5u);  // 25 % of 20

  NodeId in = kInvalidNode;
  NodeId out = kInvalidNode;
  for (const NodeId n : alive) (faults.partitioned(n) ? in : out) = n;
  EXPECT_TRUE(faults.blocked(in, out));
  EXPECT_TRUE(faults.blocked(out, in));
  EXPECT_FALSE(faults.blocked(out, out));
  EXPECT_FALSE(faults.blocked(in, in));

  faults.begin_round(alive, 1);  // still within partition_rounds
  EXPECT_TRUE(faults.partition_active());
  faults.begin_round(alive, 2);  // expired; rate 1.0 starts a fresh one
  EXPECT_TRUE(faults.partition_active());
  EXPECT_EQ(faults.counters().partitions_started.load(), 2u);
}

TEST(FaultInjector, NoPartitionAtZeroRate) {
  FaultPlan plan;
  plan.drop_rate = 0.5;  // enabled, but no partitions
  FaultInjector faults(plan);
  std::vector<NodeId> alive{0, 1, 2, 3};
  for (uint64_t round = 0; round < 10; ++round) {
    faults.begin_round(alive, round);
    EXPECT_FALSE(faults.partition_active());
    EXPECT_FALSE(faults.blocked(0, 1));
  }
}

}  // namespace
}  // namespace ges::p2p
