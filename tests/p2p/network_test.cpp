#include "p2p/network.hpp"

#include <gtest/gtest.h>

#include "support/test_corpus.hpp"
#include "util/check.hpp"

namespace ges::p2p {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : corpus_(test::clustered_corpus(8, 2)),
        net_(corpus_, test::uniform_capacities(corpus_), NetworkConfig{}) {}

  corpus::Corpus corpus_;
  Network net_;
};

TEST_F(NetworkTest, InitialStateIsAliveAndLinkless) {
  EXPECT_EQ(net_.size(), 8u);
  EXPECT_EQ(net_.alive_count(), 8u);
  for (NodeId n = 0; n < 8; ++n) {
    EXPECT_TRUE(net_.alive(n));
    EXPECT_EQ(net_.degree(n), 0u);
  }
  net_.check_invariants();
}

TEST_F(NetworkTest, NodeVectorsBuiltFromDocuments) {
  for (NodeId n = 0; n < 8; ++n) {
    EXPECT_FALSE(net_.node_vector(n).empty());
    EXPECT_NEAR(net_.node_vector(n).norm(), 1.0, 1e-5);
  }
  // Same-topic nodes are highly relevant; cross-topic orthogonal.
  EXPECT_GT(net_.rel_nodes(0, 2), 0.9);
  EXPECT_DOUBLE_EQ(net_.rel_nodes(0, 1), 0.0);
}

TEST_F(NetworkTest, ConnectIsSymmetricAndTyped) {
  ASSERT_TRUE(net_.connect(0, 1, LinkType::kRandom));
  EXPECT_TRUE(net_.has_link(0, 1));
  EXPECT_TRUE(net_.has_link(1, 0));
  EXPECT_EQ(net_.link_type(0, 1), LinkType::kRandom);
  EXPECT_EQ(net_.link_type(1, 0), LinkType::kRandom);
  EXPECT_EQ(net_.degree(0, LinkType::kRandom), 1u);
  EXPECT_EQ(net_.degree(0, LinkType::kSemantic), 0u);
  net_.check_invariants();
}

TEST_F(NetworkTest, ConnectRejectsSelfDuplicateAndDead) {
  EXPECT_FALSE(net_.connect(0, 0, LinkType::kRandom));
  ASSERT_TRUE(net_.connect(0, 1, LinkType::kRandom));
  EXPECT_FALSE(net_.connect(0, 1, LinkType::kSemantic));
  EXPECT_FALSE(net_.connect(1, 0, LinkType::kRandom));
  net_.deactivate(2);
  EXPECT_FALSE(net_.connect(0, 2, LinkType::kRandom));
}

TEST_F(NetworkTest, RandomLinkInstallsReplicasBothSides) {
  ASSERT_TRUE(net_.connect(0, 1, LinkType::kRandom));
  ASSERT_NE(net_.replica(0, 1), nullptr);
  ASSERT_NE(net_.replica(1, 0), nullptr);
  EXPECT_EQ(*net_.replica(0, 1), net_.node_vector(1));
}

TEST_F(NetworkTest, SemanticLinkHasNoReplica) {
  ASSERT_TRUE(net_.connect(0, 2, LinkType::kSemantic));
  EXPECT_EQ(net_.replica(0, 2), nullptr);
}

TEST_F(NetworkTest, DisconnectFlushesReplicas) {
  ASSERT_TRUE(net_.connect(0, 1, LinkType::kRandom));
  ASSERT_TRUE(net_.disconnect(0, 1));
  EXPECT_FALSE(net_.has_link(0, 1));
  EXPECT_EQ(net_.replica(0, 1), nullptr);
  EXPECT_EQ(net_.replica(1, 0), nullptr);
  EXPECT_FALSE(net_.disconnect(0, 1));
  net_.check_invariants();
}

TEST_F(NetworkTest, ReclassifyChangesTypeAndReplicas) {
  ASSERT_TRUE(net_.connect(0, 2, LinkType::kRandom));
  ASSERT_TRUE(net_.reclassify(0, 2, LinkType::kSemantic));
  EXPECT_EQ(net_.link_type(2, 0), LinkType::kSemantic);
  EXPECT_EQ(net_.replica(0, 2), nullptr);
  ASSERT_TRUE(net_.reclassify(2, 0, LinkType::kRandom));
  EXPECT_NE(net_.replica(0, 2), nullptr);
  // No-op cases.
  EXPECT_FALSE(net_.reclassify(0, 2, LinkType::kRandom));
  EXPECT_FALSE(net_.reclassify(0, 5, LinkType::kRandom));
  net_.check_invariants();
}

TEST_F(NetworkTest, DeactivateDropsAllLinks) {
  net_.connect(0, 1, LinkType::kRandom);
  net_.connect(0, 2, LinkType::kSemantic);
  net_.connect(0, 3, LinkType::kRandom);
  net_.deactivate(0);
  EXPECT_FALSE(net_.alive(0));
  EXPECT_EQ(net_.alive_count(), 7u);
  EXPECT_EQ(net_.degree(0), 0u);
  EXPECT_EQ(net_.degree(1), 0u);
  EXPECT_EQ(net_.replica(1, 0), nullptr);
  net_.check_invariants();
}

TEST_F(NetworkTest, ActivateRestoresMembershipWithFreshCaches) {
  net_.random_cache(0).insert({1, 1.0, 0, 0.0, {}});
  net_.deactivate(0);
  net_.activate(0);
  EXPECT_TRUE(net_.alive(0));
  EXPECT_EQ(net_.alive_count(), 8u);
  EXPECT_EQ(net_.random_cache(0).size(), 0u);  // caches reset on rejoin
  EXPECT_EQ(net_.degree(0), 0u);
}

TEST_F(NetworkTest, RefreshReplicasPicksUpVectorDrift) {
  ASSERT_TRUE(net_.connect(0, 1, LinkType::kRandom));
  // Change node 1's documents: replica at 0 becomes stale.
  net_.add_document(1, ir::SparseVector::from_pairs({{99, 5.0f}}));
  EXPECT_EQ(net_.stale_replica_count(0), 1u);
  net_.refresh_replicas(0);
  EXPECT_EQ(net_.stale_replica_count(0), 0u);
  EXPECT_EQ(*net_.replica(0, 1), net_.node_vector(1));
}

TEST_F(NetworkTest, AddDocumentUpdatesIndexAndVector) {
  const auto before = net_.node_vector(0);
  const auto doc = net_.add_document(0, ir::SparseVector::from_pairs({{77, 3.0f}}));
  EXPECT_EQ(net_.document_owner(doc), 0u);
  EXPECT_FALSE(net_.node_vector(0) == before);
  const auto q = ir::SparseVector::from_pairs({{77, 1.0f}});
  EXPECT_FALSE(net_.index(0).evaluate(q, 0.0).empty());
}

TEST_F(NetworkTest, RemoveDocumentUpdatesState) {
  const auto doc = net_.add_document(0, ir::SparseVector::from_pairs({{77, 3.0f}}));
  ASSERT_TRUE(net_.remove_document(0, doc));
  EXPECT_FALSE(net_.remove_document(0, doc));
  EXPECT_EQ(net_.document_owner(doc), kInvalidNode);
  const auto q = ir::SparseVector::from_pairs({{77, 1.0f}});
  EXPECT_TRUE(net_.index(0).evaluate(q, 0.0).empty());
}

TEST_F(NetworkTest, RemoveCorpusDocument) {
  const auto doc = corpus_.node_docs[3][0];
  ASSERT_TRUE(net_.remove_document(3, doc));
  EXPECT_EQ(net_.document_owner(doc), kInvalidNode);
  EXPECT_EQ(net_.documents(3).size(), corpus_.node_docs[3].size() - 1);
}

TEST_F(NetworkTest, DocumentVectorAccess) {
  const auto& v = net_.document_vector(0);
  EXPECT_EQ(v, corpus_.docs[0].vector);
  const auto dyn = net_.add_document(0, ir::SparseVector::from_pairs({{5, 2.0f}}));
  EXPECT_NEAR(net_.document_vector(dyn).norm(), 1.0, 1e-6);
}

TEST_F(NetworkTest, CapacityMismatchRejected) {
  EXPECT_THROW(Network(corpus_, std::vector<Capacity>(3, 1.0), NetworkConfig{}),
               util::CheckFailure);
}

TEST(NetworkVectorSize, TruncationAppliesToProtocolVectors) {
  const auto corpus = test::clustered_corpus(4, 1, 2, 16);
  NetworkConfig cfg;
  cfg.node_vector_size = 4;
  const Network net(corpus, test::uniform_capacities(corpus), cfg);
  EXPECT_LE(net.node_vector(0).size(), 4u);
  EXPECT_GT(net.full_node_vector(0).size(), 4u);
  EXPECT_NEAR(net.node_vector(0).norm(), 1.0, 1e-5);
}

TEST(NetworkBootstrap, RandomGraphHitsTargetDegree) {
  const auto corpus = test::clustered_corpus(40, 4);
  Network net(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  util::Rng rng(3);
  bootstrap_random_graph(net, 6.0, rng);
  size_t total_degree = 0;
  for (NodeId n = 0; n < 40; ++n) total_degree += net.degree(n);
  EXPECT_NEAR(static_cast<double>(total_degree) / 40.0, 6.0, 0.5);
  net.check_invariants();
}

TEST(NetworkBootstrap, JoinConnectsNode) {
  const auto corpus = test::clustered_corpus(10, 2);
  Network net(corpus, test::uniform_capacities(corpus), NetworkConfig{});
  util::Rng rng(4);
  bootstrap_join(net, 0, 3, rng);
  EXPECT_EQ(net.degree(0), 3u);
  net.check_invariants();
}

}  // namespace
}  // namespace ges::p2p
