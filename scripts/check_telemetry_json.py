#!/usr/bin/env python3
"""Validate telemetry artifacts against their stable schemas.

Stdlib-only. Checks three document kinds by shape:

  ges.metrics.v1   <prefix>.metrics.json from ScenarioRunner / obs exporters
  ges.bench.v1     BENCH_<name>.json from the unified bench emitter
  chrome trace     <prefix>.trace.json (trace_event JSON: ph "X"/"i",
                   non-negative ts/dur, numeric args)

A repeatable --expect-family PREFIX flag declares a metric family that
must appear (by name prefix) in at least one validated ges.metrics.v1
document — including metrics embedded in bench documents. A declared
family with no exported metric fails the run: a subsystem whose counters
silently vanish from the export (renamed, never registered, compiled
out) is a telemetry regression, not a clean pass.

Usage: check_telemetry_json.py FILE [FILE...] [--expect-family PREFIX]
Exits non-zero on the first invalid file or missing family; prints one
OK line per valid file.
"""

import json
import sys

METRIC_KINDS = {"counter", "gauge", "histogram"}


def fail(path, message):
    print(f"FAIL {path}: {message}", file=sys.stderr)
    sys.exit(1)


def is_number(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def check_metrics(path, doc, seen_names):
    if doc.get("schema") != "ges.metrics.v1":
        fail(path, "schema is not ges.metrics.v1")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        fail(path, "metrics is not a list")
    names = []
    for i, m in enumerate(metrics):
        where = f"metrics[{i}]"
        if not isinstance(m, dict):
            fail(path, f"{where} is not an object")
        name = m.get("name")
        if not isinstance(name, str) or not name:
            fail(path, f"{where} has no name")
        names.append(name)
        kind = m.get("kind")
        if kind not in METRIC_KINDS:
            fail(path, f"{where} ({name}) has unknown kind {kind!r}")
        if kind == "counter":
            if not isinstance(m.get("value"), int) or m["value"] < 0:
                fail(path, f"{where} ({name}) counter value is not a non-negative int")
        elif kind == "gauge":
            if m.get("value") is not None and not is_number(m["value"]):
                fail(path, f"{where} ({name}) gauge value is not numeric/null")
        else:  # histogram
            buckets = m.get("buckets")
            if not isinstance(buckets, list) or not all(
                isinstance(b, int) and b >= 0 for b in buckets
            ):
                fail(path, f"{where} ({name}) buckets are not non-negative ints")
            if not isinstance(m.get("count"), int) or m["count"] != sum(buckets):
                fail(path, f"{where} ({name}) count != sum(buckets)")
            if not (is_number(m.get("lo")) and is_number(m.get("hi")) and m["lo"] < m["hi"]):
                fail(path, f"{where} ({name}) needs numeric lo < hi")
    if names != sorted(names):
        fail(path, "metrics are not sorted by name")
    seen_names.extend(names)
    return f"{len(metrics)} metrics"


def check_trace(path, doc):
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(path, "traceEvents is not a list")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(path, f"{where} is not an object")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            fail(path, f"{where} has no name")
        if not isinstance(ev.get("cat"), str):
            fail(path, f"{where} has no cat")
        ph = ev.get("ph")
        if ph not in {"X", "i"}:
            fail(path, f"{where} has unexpected ph {ph!r}")
        if not is_number(ev.get("ts")) or ev["ts"] < 0:
            fail(path, f"{where} ts is not a non-negative number")
        if ph == "X" and (not is_number(ev.get("dur")) or ev["dur"] < 0):
            fail(path, f"{where} complete event dur is not a non-negative number")
        if not isinstance(ev.get("tid"), int):
            fail(path, f"{where} tid is not an int")
        args = ev.get("args", {})
        if not isinstance(args, dict) or not all(
            is_number(v) or v is None for v in args.values()
        ):
            fail(path, f"{where} args are not numeric/null")
    return f"{len(events)} trace events"


def check_bench(path, doc, seen_names):
    if doc.get("schema") != "ges.bench.v1":
        fail(path, "schema is not ges.bench.v1")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        fail(path, "bench name missing")
    entries = doc.get("entries")
    if not isinstance(entries, list) or not entries:
        fail(path, "entries missing or empty")
    for i, e in enumerate(entries):
        where = f"entries[{i}]"
        if not isinstance(e, dict) or not isinstance(e.get("name"), str):
            fail(path, f"{where} has no name")
        for key in ("ops_per_sec", "ns_per_op"):
            if not (is_number(e.get(key)) or e.get(key) is None):
                fail(path, f"{where} {key} is not numeric/null")
    extra = ""
    if "metrics" in doc:
        extra = ", embedded " + check_metrics(path, doc["metrics"], seen_names)
    return f"{len(entries)} entries{extra}"


def classify(path, doc, seen_names):
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    if "traceEvents" in doc:
        return check_trace(path, doc)
    schema = doc.get("schema")
    if schema == "ges.metrics.v1":
        return check_metrics(path, doc, seen_names)
    if schema == "ges.bench.v1":
        return check_bench(path, doc, seen_names)
    fail(path, f"unrecognized document (schema={schema!r})")


def parse_args(argv):
    paths, families = [], []
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--expect-family":
            i += 1
            if i >= len(argv) or not argv[i]:
                fail("<args>", "--expect-family needs a non-empty PREFIX")
            families.append(argv[i])
        else:
            paths.append(arg)
        i += 1
    return paths, families


def main(argv):
    paths, families = parse_args(argv)
    if not paths:
        print(__doc__, file=sys.stderr)
        return 2
    seen_names = []
    for path in paths:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(path, str(e))
        print(f"OK {path}: {classify(path, doc, seen_names)}")
    for family in families:
        matches = sum(1 for name in seen_names if name.startswith(family))
        if matches == 0:
            fail("<families>", f"expected metric family {family!r} is absent "
                               f"from every validated metrics document")
        print(f"OK family {family!r}: {matches} metric(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
