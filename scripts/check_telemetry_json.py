#!/usr/bin/env python3
"""Validate telemetry artifacts against their stable schemas.

Stdlib-only. Checks five document kinds by shape:

  ges.metrics.v1     <prefix>.metrics.json from ScenarioRunner / obs exporters
  ges.bench.v1       BENCH_<name>.json from the unified bench emitter
  ges.autopsy.v1     <prefix>.autopsy.json from the query flight recorder:
                     retention accounting must balance, every causal event
                     graph must be a well-formed tree (parent precedes
                     child, time monotone along edges), and for autopsies
                     with no capped events the cost summary must equal the
                     event counts exactly
  ges.timeseries.v1  <prefix>.timeseries.json from the sim-time sampler:
                     strictly increasing sample times, nondecreasing
                     counters, ring-retention accounting
  chrome trace       <prefix>.trace.json (trace_event JSON: ph "X"/"i",
                     non-negative ts/dur, numeric args)

A repeatable --expect-family PREFIX flag declares a metric family that
must appear (by name prefix) in at least one validated ges.metrics.v1
document — including metrics embedded in bench documents. A declared
family with no exported metric fails the run: a subsystem whose counters
silently vanish from the export (renamed, never registered, compiled
out) is a telemetry regression, not a clean pass.

Usage: check_telemetry_json.py FILE [FILE...] [--expect-family PREFIX]
Exits non-zero on the first invalid file or missing family; prints one
OK line per valid file.
"""

import json
import sys

METRIC_KINDS = {"counter", "gauge", "histogram"}


def fail(path, message):
    print(f"FAIL {path}: {message}", file=sys.stderr)
    sys.exit(1)


def is_number(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def check_metrics(path, doc, seen_names):
    if doc.get("schema") != "ges.metrics.v1":
        fail(path, "schema is not ges.metrics.v1")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        fail(path, "metrics is not a list")
    names = []
    for i, m in enumerate(metrics):
        where = f"metrics[{i}]"
        if not isinstance(m, dict):
            fail(path, f"{where} is not an object")
        name = m.get("name")
        if not isinstance(name, str) or not name:
            fail(path, f"{where} has no name")
        names.append(name)
        kind = m.get("kind")
        if kind not in METRIC_KINDS:
            fail(path, f"{where} ({name}) has unknown kind {kind!r}")
        if kind == "counter":
            if not isinstance(m.get("value"), int) or m["value"] < 0:
                fail(path, f"{where} ({name}) counter value is not a non-negative int")
        elif kind == "gauge":
            if m.get("value") is not None and not is_number(m["value"]):
                fail(path, f"{where} ({name}) gauge value is not numeric/null")
        else:  # histogram
            buckets = m.get("buckets")
            if not isinstance(buckets, list) or not all(
                isinstance(b, int) and b >= 0 for b in buckets
            ):
                fail(path, f"{where} ({name}) buckets are not non-negative ints")
            if not isinstance(m.get("count"), int) or m["count"] != sum(buckets):
                fail(path, f"{where} ({name}) count != sum(buckets)")
            if not (is_number(m.get("lo")) and is_number(m.get("hi")) and m["lo"] < m["hi"]):
                fail(path, f"{where} ({name}) needs numeric lo < hi")
    if names != sorted(names):
        fail(path, "metrics are not sorted by name")
    seen_names.extend(names)
    return f"{len(metrics)} metrics"


def check_trace(path, doc):
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(path, "traceEvents is not a list")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(path, f"{where} is not an object")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            fail(path, f"{where} has no name")
        if not isinstance(ev.get("cat"), str):
            fail(path, f"{where} has no cat")
        ph = ev.get("ph")
        if ph not in {"X", "i"}:
            fail(path, f"{where} has unexpected ph {ph!r}")
        if not is_number(ev.get("ts")) or ev["ts"] < 0:
            fail(path, f"{where} ts is not a non-negative number")
        if ph == "X" and (not is_number(ev.get("dur")) or ev["dur"] < 0):
            fail(path, f"{where} complete event dur is not a non-negative number")
        if not isinstance(ev.get("tid"), int):
            fail(path, f"{where} tid is not an int")
        args = ev.get("args", {})
        if not isinstance(args, dict) or not all(
            is_number(v) or v is None for v in args.values()
        ):
            fail(path, f"{where} args are not numeric/null")
    return f"{len(events)} trace events"


def check_bench(path, doc, seen_names):
    if doc.get("schema") != "ges.bench.v1":
        fail(path, "schema is not ges.bench.v1")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        fail(path, "bench name missing")
    entries = doc.get("entries")
    if not isinstance(entries, list) or not entries:
        fail(path, "entries missing or empty")
    for i, e in enumerate(entries):
        where = f"entries[{i}]"
        if not isinstance(e, dict) or not isinstance(e.get("name"), str):
            fail(path, f"{where} has no name")
        for key in ("ops_per_sec", "ns_per_op"):
            if not (is_number(e.get(key)) or e.get(key) is None):
                fail(path, f"{where} {key} is not numeric/null")
    extra = ""
    if "metrics" in doc:
        extra = ", embedded " + check_metrics(path, doc["metrics"], seen_names)
    return f"{len(entries)} entries{extra}"


AUTOPSY_EVENT_KINDS = {
    "issued", "probe", "walk_hop", "flood_send", "cache_probe",
    "fault_drop", "fault_block", "fault_delay", "fault_dup",
}
RETAINED_LABELS = {"worst", "sampled", "worst+sampled"}


def is_count(x):
    return isinstance(x, int) and not isinstance(x, bool) and x >= 0


def check_autopsy_events(path, where, query, events):
    """One autopsy's causal graph: a tree rooted at the issued event."""
    for i, ev in enumerate(events):
        ew = f"{where}.events[{i}]"
        if not isinstance(ev, dict):
            fail(path, f"{ew} is not an object")
        if ev.get("id") != i:
            fail(path, f"{ew} id {ev.get('id')!r} != position {i}")
        kind = ev.get("kind")
        if kind not in AUTOPSY_EVENT_KINDS:
            fail(path, f"{ew} has unknown kind {kind!r}")
        parent = ev.get("parent")
        if i == 0:
            if kind != "issued" or parent != -1:
                fail(path, f"{ew} root must be kind 'issued' with parent -1")
        elif not (isinstance(parent, int) and 0 <= parent < i):
            fail(path, f"{ew} parent {parent!r} does not precede id {i}")
        if not is_number(ev.get("t")):
            fail(path, f"{ew} t is not a number")
        if i > 0 and ev["t"] < events[parent]["t"]:
            fail(path, f"{ew} t {ev['t']} precedes its parent's t")
        # Message-bearing events carry their exact wire-frame size
        # (Wire format v1, docs/PROTOCOL.md); zero is legal only when the
        # producer ran with byte accounting disabled.
        if kind in {"walk_hop", "flood_send"} and not is_count(ev.get("bytes")):
            fail(path, f"{ew} ({kind}) bytes is not a non-negative int")
    # With no events capped, the cost summary and the event graph are two
    # views of the same query and must agree exactly (an event hook that
    # drifts from the engine's counters is a recorder bug, not noise).
    if query.get("events_dropped") == 0:
        kinds = [ev["kind"] for ev in events]
        cache_hits = sum(1 for ev in events
                         if ev["kind"] == "cache_probe" and ev.get("outcome") == "hit")
        cost = query["cost"]
        checks = [
            ("probes", kinds.count("probe") + cache_hits),
            ("walk_steps", kinds.count("walk_hop")),
            ("flood_messages", kinds.count("flood_send")),
            ("cache_hits", cache_hits),
            # Per-event frame sizes and the engine's running byte total are
            # two views of the same traffic; with nothing capped they must
            # reconcile exactly (the acceptance check for byte accounting).
            ("bytes_sent", sum(ev.get("bytes", 0) for ev in events
                               if ev["kind"] in {"walk_hop", "flood_send"})),
        ]
        for name, expected in checks:
            if cost.get(name) != expected:
                fail(path, f"{where} cost.{name} {cost.get(name)!r} != "
                           f"{expected} reconstructed from events")


def check_autopsy(path, doc):
    if doc.get("schema") != "ges.autopsy.v1":
        fail(path, "schema is not ges.autopsy.v1")
    for key in ("queries_seen", "queries_retained", "queries_dropped",
                "events_dropped"):
        if not is_count(doc.get(key)):
            fail(path, f"{key} is not a non-negative int")
    if doc["queries_seen"] != doc["queries_retained"] + doc["queries_dropped"]:
        fail(path, "queries_seen != queries_retained + queries_dropped")
    config = doc.get("config")
    if not isinstance(config, dict) or not all(
        is_count(config.get(k))
        for k in ("worst_k", "sample_capacity", "sample_every",
                  "max_events_per_query")
    ):
        fail(path, "config is missing retention knobs")
    autopsies = doc.get("autopsies")
    if not isinstance(autopsies, list):
        fail(path, "autopsies is not a list")
    if len(autopsies) != doc["queries_retained"]:
        fail(path, "queries_retained != len(autopsies)")
    last_ordinal = -1
    for i, a in enumerate(autopsies):
        where = f"autopsies[{i}]"
        if not isinstance(a, dict):
            fail(path, f"{where} is not an object")
        query, events = a.get("query"), a.get("events")
        if not isinstance(query, dict):
            fail(path, f"{where}.query is not an object")
        if not isinstance(events, list) or not events:
            fail(path, f"{where}.events missing or empty")
        if not is_count(query.get("ordinal")) or query["ordinal"] <= last_ordinal:
            fail(path, f"{where} ordinals are not strictly increasing")
        last_ordinal = query["ordinal"]
        if query.get("engine") not in {"sync", "async"}:
            fail(path, f"{where} engine is not sync/async")
        if not isinstance(query.get("reason"), str) or not query["reason"]:
            fail(path, f"{where} has no completion reason")
        if query.get("retained") not in RETAINED_LABELS:
            fail(path, f"{where} retained label {query.get('retained')!r} unknown")
        if not (is_number(query.get("issued_at")) and
                is_number(query.get("completed_at")) and
                query["completed_at"] >= query["issued_at"]):
            fail(path, f"{where} needs issued_at <= completed_at")
        cost = query.get("cost")
        if not isinstance(cost, dict) or not all(
            is_count(cost.get(k))
            for k in ("probes", "walk_steps", "flood_messages", "cache_hits",
                      "targets", "retrieved_docs", "rel_evals", "rel_memo_hits",
                      "bytes_sent")
        ):
            fail(path, f"{where} cost summary incomplete")
        if not (is_count(query.get("events_recorded")) and
                is_count(query.get("events_dropped"))):
            fail(path, f"{where} event accounting is not non-negative ints")
        if query["events_recorded"] != len(events) + query["events_dropped"]:
            fail(path, f"{where} events_recorded != len(events) + events_dropped")
        check_autopsy_events(path, where, query, events)
    return (f"{len(autopsies)} autopsies "
            f"({doc['queries_seen']} queries seen, "
            f"{doc['queries_dropped']} dropped by retention)")


def check_timeseries(path, doc):
    if doc.get("schema") != "ges.timeseries.v1":
        fail(path, "schema is not ges.timeseries.v1")
    if not (is_number(doc.get("interval")) and doc["interval"] >= 0):
        fail(path, "interval is not a non-negative number")
    for key in ("samples_taken", "samples_retained", "samples_dropped",
                "max_samples"):
        if not is_count(doc.get(key)):
            fail(path, f"{key} is not a non-negative int")
    samples = doc.get("samples")
    if not isinstance(samples, list):
        fail(path, "samples is not a list")
    if len(samples) != doc["samples_retained"]:
        fail(path, "samples_retained != len(samples)")
    if doc["samples_taken"] != doc["samples_retained"] + doc["samples_dropped"]:
        fail(path, "samples_taken != samples_retained + samples_dropped")
    if doc["samples_retained"] > doc["max_samples"]:
        fail(path, "more samples retained than the ring allows")
    prev_t, prev_counters = None, {}
    for i, s in enumerate(samples):
        where = f"samples[{i}]"
        if not isinstance(s, dict):
            fail(path, f"{where} is not an object")
        if not is_number(s.get("t")):
            fail(path, f"{where} t is not a number")
        if prev_t is not None and s["t"] <= prev_t:
            fail(path, f"{where} sample times are not strictly increasing")
        prev_t = s["t"]
        counters, gauges = s.get("counters"), s.get("gauges")
        if not isinstance(counters, dict) or not all(
            is_count(v) for v in counters.values()
        ):
            fail(path, f"{where} counters are not non-negative ints")
        if not isinstance(gauges, dict) or not all(
            is_number(v) or v is None for v in gauges.values()
        ):
            fail(path, f"{where} gauges are not numeric/null")
        # Counters are monotone by construction; a decrease means a reset
        # leaked into the stream or two registries got mixed up.
        for name, value in counters.items():
            if name in prev_counters and value < prev_counters[name]:
                fail(path, f"{where} counter {name!r} decreased "
                           f"({prev_counters[name]} -> {value})")
        prev_counters = counters
    return (f"{len(samples)} samples "
            f"({doc['samples_taken']} taken, {doc['samples_dropped']} dropped)")


def classify(path, doc, seen_names):
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    if "traceEvents" in doc:
        return check_trace(path, doc)
    schema = doc.get("schema")
    if schema == "ges.metrics.v1":
        return check_metrics(path, doc, seen_names)
    if schema == "ges.bench.v1":
        return check_bench(path, doc, seen_names)
    if schema == "ges.autopsy.v1":
        return check_autopsy(path, doc)
    if schema == "ges.timeseries.v1":
        return check_timeseries(path, doc)
    fail(path, f"unrecognized document (schema={schema!r})")


def parse_args(argv):
    paths, families = [], []
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--expect-family":
            i += 1
            if i >= len(argv) or not argv[i]:
                fail("<args>", "--expect-family needs a non-empty PREFIX")
            families.append(argv[i])
        else:
            paths.append(arg)
        i += 1
    return paths, families


def main(argv):
    paths, families = parse_args(argv)
    if not paths:
        print(__doc__, file=sys.stderr)
        return 2
    seen_names = []
    for path in paths:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(path, str(e))
        print(f"OK {path}: {classify(path, doc, seen_names)}")
    for family in families:
        matches = sum(1 for name in seen_names if name.startswith(family))
        if matches == 0:
            fail("<families>", f"expected metric family {family!r} is absent "
                               f"from every validated metrics document")
        print(f"OK family {family!r}: {matches} metric(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
