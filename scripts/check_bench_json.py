#!/usr/bin/env python3
"""Validate BENCH_<name>.json artifacts from the unified bench emitter.

Stdlib-only, stricter than the generic schema pass in
check_telemetry_json.py: every entry must carry consistent positive
rates (ops_per_sec * ns_per_op ~= 1e9), extras must be numeric, and an
optional floor can be enforced on a named extra — CI uses that to keep
the event-core speedup from regressing:

  check_bench_json.py BENCH_micro_event_sim.json \\
      --require-extra timer_wheel:speedup:2.0

Usage: check_bench_json.py FILE [FILE...] [--require-extra ENTRY:KEY:MIN]
Exits non-zero on the first invalid file; prints one OK line per valid one.
"""

import json
import sys

RATE_TOLERANCE = 1e-6  # ops_per_sec vs ns_per_op round-trip slack


def fail(path, message):
    print(f"FAIL {path}: {message}", file=sys.stderr)
    sys.exit(1)


def is_number(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def check_entry(path, where, entry):
    if not isinstance(entry, dict):
        fail(path, f"{where} is not an object")
    name = entry.get("name")
    if not isinstance(name, str) or not name:
        fail(path, f"{where} has no name")
    ops = entry.get("ops_per_sec")
    ns = entry.get("ns_per_op")
    # 0.0 is the emitter's "no rate measured" convention; null is an
    # inf/nan that was sanitized away.
    for key, value in (("ops_per_sec", ops), ("ns_per_op", ns)):
        if value is not None and not (is_number(value) and value >= 0):
            fail(path, f"{where} ({name}) {key} is not non-negative/null")
    if is_number(ops) and is_number(ns) and ops > 0 and ns > 0:
        relative = abs(ops * ns - 1e9) / 1e9
        if relative > RATE_TOLERANCE:
            fail(path, f"{where} ({name}) ops_per_sec and ns_per_op disagree "
                       f"(relative error {relative:.2e})")
    # Free-form counters are flattened into the entry object.
    extra = {k: v for k, v in entry.items()
             if k not in ("name", "ops_per_sec", "ns_per_op")}
    for key, value in extra.items():
        if not (is_number(value) or value is None):
            fail(path, f"{where} ({name}) extra {key!r} is not numeric/null")
    return name, extra


def check_bench(path, doc, requirements):
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    if doc.get("schema") != "ges.bench.v1":
        fail(path, f"schema is not ges.bench.v1 (got {doc.get('schema')!r})")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        fail(path, "bench name missing")
    entries = doc.get("entries")
    if not isinstance(entries, list) or not entries:
        fail(path, "entries missing or empty")
    extras = {}
    for i, entry in enumerate(entries):
        name, extra = check_entry(path, f"entries[{i}]", entry)
        extras[name] = extra
    for entry_name, key, floor in requirements:
        if entry_name not in extras:
            continue  # the requirement targets a different bench file
        value = extras[entry_name].get(key)
        if not is_number(value):
            fail(path, f"entry {entry_name!r} has no numeric extra {key!r}")
        if value < floor:
            fail(path, f"entry {entry_name!r} {key}={value:.4g} is below "
                       f"the required floor {floor:g}")
    return f"{len(entries)} entries"


def parse_args(argv):
    paths, requirements = [], []
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--require-extra":
            i += 1
            if i >= len(argv):
                fail("<args>", "--require-extra needs ENTRY:KEY:MIN")
            spec = argv[i]
            try:
                entry, key, floor = spec.rsplit(":", 2)
                requirements.append((entry, key, float(floor)))
            except ValueError:
                fail("<args>", f"bad --require-extra spec {spec!r}")
        else:
            paths.append(arg)
        i += 1
    return paths, requirements


def main(argv):
    paths, requirements = parse_args(argv)
    if not paths:
        print(__doc__, file=sys.stderr)
        return 2
    for path in paths:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(path, str(e))
        print(f"OK {path}: {check_bench(path, doc, requirements)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
