#!/usr/bin/env python3
"""Keep the prose documentation honest against the tree it describes.

Stdlib-only; run from anywhere (paths resolve relative to the repo
root, which is this script's parent directory). Three passes:

1. **Repo paths.** Every backtick-quoted token in README.md, DESIGN.md
   and docs/*.md that looks like a repo-relative path must exist.
   `{hpp,cpp}`-style brace groups are expanded; extensionless module
   paths (e.g. `src/ir/kmeans`) pass when any `kmeans.*` sibling
   exists; tokens with globs, placeholders or build-output prefixes
   are skipped.

2. **Section references.** Every `§N[.M]` reference must resolve:
   the paper has sections 1..8 (IPDPS 2005 layout), DESIGN.md's own
   numbered `## N.` headings cover the repo-local ones. A reference
   whose major number matches neither is a typo.

3. **Wire-spec parity.** The MessageType enum in
   src/p2p/wire_messages.hpp is the source of truth for the protocol
   surface. Every enumerator must have (a) a message struct in
   wire_messages.hpp, (b) a normative `### <StructName>` field table in
   docs/PROTOCOL.md, and (c) a committed golden fixture
   tests/p2p/fixtures/wire_v1/<snake_name>.bin. Extra `###` message
   headings in the spec's wire section with no matching enumerator
   also fail — the spec cannot describe messages that do not exist.

Exits non-zero listing every problem; prints one OK line per pass.
"""

import glob
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC_FILES = ["README.md", "DESIGN.md"] + sorted(
    os.path.relpath(p, REPO) for p in glob.glob(os.path.join(REPO, "docs", "*.md"))
)

# Top-level directories a backtick token must start with to be treated
# as a repo path claim (plus bare repo-root files like ROADMAP.md).
PATH_ROOTS = ("src/", "tests/", "bench/", "examples/", "docs/", "scripts/",
              ".github/")

# The paper's top-level sections (IPDPS 2005: 1 Introduction .. 8
# Conclusions); `§N` references to these are always legitimate.
PAPER_SECTIONS = set(range(1, 9))

errors = []


def error(where, message):
    errors.append(f"{where}: {message}")


def read(relpath):
    with open(os.path.join(REPO, relpath), encoding="utf-8") as f:
        return f.read()


def expand_braces(token):
    """`a.{hpp,cpp}` -> [`a.hpp`, `a.cpp`] (single group is enough here)."""
    m = re.search(r"\{([^{}]*)\}", token)
    if not m:
        return [token]
    head, tail = token[: m.start()], token[m.end():]
    return [head + alt + tail for alt in m.group(1).split(",")]


def path_exists(rel):
    full = os.path.join(REPO, rel)
    if os.path.exists(full):
        return True
    # Extensionless module reference: `src/ir/kmeans` is satisfied by
    # src/ir/kmeans.hpp / .cpp.
    if "." not in os.path.basename(rel):
        return bool(glob.glob(full + ".*"))
    return False


def check_paths():
    checked = 0
    for doc in DOC_FILES:
        for token in re.findall(r"`([^`\n]+)`", read(doc)):
            token = token.strip().rstrip("/")
            if not (token.startswith(PATH_ROOTS) or
                    re.fullmatch(r"[A-Z]+\.md", token)):
                continue
            # Globs, placeholders, command lines and prose-ish tokens
            # are claims about shape, not about a specific file.
            if any(c in token for c in "*<>() ") or "..." in token:
                continue
            for candidate in expand_braces(token):
                checked += 1
                if not path_exists(candidate):
                    error(doc, f"path `{candidate}` (from `{token}`) "
                               "does not exist")
    print(f"OK paths: {checked} repo-path claims checked "
          f"across {len(DOC_FILES)} docs")


def check_section_refs():
    design_sections = {
        int(m.group(1))
        for m in re.finditer(r"^## (\d+)\.", read("DESIGN.md"), re.M)
    }
    known = PAPER_SECTIONS | design_sections
    checked = 0
    for doc in DOC_FILES:
        for m in re.finditer(r"§(\d+)(?:\.\d+)*", read(doc)):
            checked += 1
            major = int(m.group(1))
            if major not in known:
                error(doc, f"§{m.group(1)} resolves to neither a paper "
                           f"section (1-8) nor a DESIGN.md heading "
                           f"({sorted(design_sections)})")
    print(f"OK sections: {checked} §-references checked")


def snake_name(enumerator):
    """kWalkQuery -> walk_query (mirrors wire::message_type_name)."""
    body = enumerator[1:] if enumerator.startswith("k") else enumerator
    return re.sub(r"(?<!^)(?=[A-Z])", "_", body).lower()


def check_wire_spec():
    header = read("src/p2p/wire_messages.hpp")
    enum_match = re.search(r"enum class MessageType[^{]*\{(.*?)\};", header,
                           re.S)
    if not enum_match:
        error("src/p2p/wire_messages.hpp", "MessageType enum not found")
        return
    enumerators = re.findall(r"^\s*(k[A-Za-z0-9]+)\s*=\s*\d+",
                             enum_match.group(1), re.M)
    if not enumerators:
        error("src/p2p/wire_messages.hpp", "MessageType enum has no "
                                           "enumerators")
        return

    protocol = read("docs/PROTOCOL.md")
    spec_headings = set(re.findall(r"^### ([A-Za-z0-9]+)$", protocol, re.M))
    struct_names = set()

    for enumerator in enumerators:
        struct = enumerator[1:]  # kWalkQuery -> WalkQuery
        struct_names.add(struct)
        if not re.search(rf"^struct {struct}\b", header, re.M):
            error("src/p2p/wire_messages.hpp",
                  f"{enumerator} has no `struct {struct}`")
        if struct not in spec_headings:
            error("docs/PROTOCOL.md",
                  f"no `### {struct}` field table for {enumerator}")
        else:
            # The heading must be followed by a markdown table (the
            # normative field list), not just prose.
            section = protocol.split(f"### {struct}\n", 1)[1]
            section = section.split("\n### ", 1)[0].split("\n## ", 1)[0]
            if not re.search(r"^\| *field *\|", section, re.M):
                error("docs/PROTOCOL.md",
                      f"`### {struct}` has no `| field |` table")
        fixture = f"tests/p2p/fixtures/wire_v1/{snake_name(enumerator)}.bin"
        if not os.path.exists(os.path.join(REPO, fixture)):
            error("docs/PROTOCOL.md",
                  f"{enumerator} has no golden fixture {fixture}")

    # A spec heading that names a non-existent message is as wrong as a
    # missing one. Only headings that look like message structs count;
    # prose headings in the tour half use `##`/distinct wording.
    for heading in spec_headings - struct_names:
        if re.fullmatch(r"(?:[A-Z][a-z0-9]+){2,}", heading):
            error("docs/PROTOCOL.md",
                  f"`### {heading}` does not match any MessageType "
                  "enumerator")
    if not errors:
        print(f"OK wire spec: {len(enumerators)} message types have "
              "struct, field table and fixture")


def main():
    check_paths()
    check_section_refs()
    check_wire_spec()
    if errors:
        print(f"\n{len(errors)} problem(s):", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
