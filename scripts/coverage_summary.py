#!/usr/bin/env python3
"""Per-directory line-coverage summary from an lcov tracefile.

Stdlib-only. Parses the SF:/DA:/end_of_record records of an lcov .info
file and prints a GitHub-flavored markdown table of line coverage
aggregated by source directory (relative to --root, default the current
working directory), with a TOTAL row. CI appends the output to
$GITHUB_STEP_SUMMARY so the per-directory numbers are readable on the
job page without downloading the HTML artifact.

Usage: coverage_summary.py coverage.info [--root DIR]
"""

import os
import sys


def parse_tracefile(path):
    """{source file -> (lines instrumented, lines hit)}."""
    per_file = {}
    current = None
    found = hit = 0
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if line.startswith("SF:"):
                current = line[3:]
                found = hit = 0
            elif line.startswith("DA:") and current is not None:
                parts = line[3:].split(",")
                found += 1
                if len(parts) >= 2 and int(parts[1]) > 0:
                    hit += 1
            elif line == "end_of_record" and current is not None:
                prev = per_file.get(current, (0, 0))
                per_file[current] = (prev[0] + found, prev[1] + hit)
                current = None
    return per_file


def main(argv):
    args = argv[1:]
    root = os.getcwd()
    if "--root" in args:
        i = args.index("--root")
        try:
            root = args[i + 1]
        except IndexError:
            print("--root needs a directory", file=sys.stderr)
            return 2
        del args[i:i + 2]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2

    per_file = parse_tracefile(args[0])
    if not per_file:
        print(f"no coverage records in {args[0]}", file=sys.stderr)
        return 1

    by_dir = {}
    total_found = total_hit = 0
    for path, (found, hit) in per_file.items():
        rel = os.path.relpath(path, root)
        directory = os.path.dirname(rel) or "."
        prev = by_dir.get(directory, (0, 0))
        by_dir[directory] = (prev[0] + found, prev[1] + hit)
        total_found += found
        total_hit += hit

    print("### Line coverage by directory\n")
    print("| directory | lines | hit | coverage |")
    print("|---|---:|---:|---:|")
    for directory in sorted(by_dir):
        found, hit = by_dir[directory]
        pct = 100.0 * hit / found if found else 0.0
        print(f"| `{directory}` | {found} | {hit} | {pct:.1f}% |")
    total_pct = 100.0 * total_hit / total_found if total_found else 0.0
    print(f"| **TOTAL** | {total_found} | {total_hit} | **{total_pct:.1f}%** |")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
