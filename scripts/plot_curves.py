#!/usr/bin/env python3
"""Plot recall-vs-cost curves from the bench output or workbench CSV.

Usage:
    ./build/examples/ges_workbench curve corpus.gesc > curve.csv
    scripts/plot_curves.py curve.csv [more.csv ...] -o fig1.png

Each input is a CSV whose first column is "cost(%nodes)" and whose
remaining columns are recall series (the format `curves_table.render_csv`
and the workbench emit). Requires matplotlib.
"""

import argparse
import csv
import sys


def read_series(path):
    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    header, data = rows[0], rows[1:]
    cost = [float(r[0]) for r in data]
    series = {}
    for col in range(1, len(header)):
        series[header[col]] = [float(r[col]) for r in data]
    return cost, series


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csvs", nargs="+", help="CSV files to plot")
    parser.add_argument("-o", "--output", default="curves.png")
    parser.add_argument("--title", default="Recall vs query processing cost")
    args = parser.parse_args()

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    fig, ax = plt.subplots(figsize=(7, 5))
    for path in args.csvs:
        cost, series = read_series(path)
        for name, values in series.items():
            label = name if len(args.csvs) == 1 else f"{path}: {name}"
            ax.plot(cost, values, marker="o", markersize=3, label=label)

    ax.set_xlabel("processing cost (% nodes probed)")
    ax.set_ylabel("recall (%)")
    ax.set_title(args.title)
    ax.set_xlim(0, 100)
    ax.set_ylim(0, 100)
    ax.grid(True, alpha=0.3)
    ax.legend()
    fig.tight_layout()
    fig.savefig(args.output, dpi=150)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
