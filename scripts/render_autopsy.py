#!/usr/bin/env python3
"""Render query autopsies (ges.autopsy.v1) for human consumption.

Stdlib-only companion to scripts/check_telemetry_json.py: turns the
flight recorder's causal event graphs into either

  --format dot   Graphviz DOT, one cluster per retained query with the
                 parent -> child causal edges (pipe into `dot -Tsvg`)
  --format md    a markdown report: one summary table of the retained
                 queries plus a per-query hop table in causal order

Usage: render_autopsy.py FILE [--format dot|md] [--ordinal N] [-o OUT]

--ordinal restricts the output to one retained query (fails if that
ordinal was dropped by the retention policy). Exits non-zero on malformed
input; this script renders, it does not validate — run
check_telemetry_json.py first for the schema contract.
"""

import json
import os
import sys

# kind -> (fill color for dot, short glyph for md)
KIND_STYLE = {
    "issued": ("lightblue", "Q"),
    "probe": ("palegreen", "P"),
    "walk_hop": ("khaki", "W"),
    "flood_send": ("lightsalmon", "F"),
    "cache_probe": ("plum", "C"),
    "fault_drop": ("tomato", "x"),
    "fault_block": ("tomato", "x"),
    "fault_delay": ("lightgray", "~"),
    "fault_dup": ("lightgray", "+"),
}


def fail(message):
    print(f"render_autopsy: {message}", file=sys.stderr)
    sys.exit(1)


def event_detail(ev):
    """One-line human description of an event's payload."""
    kind = ev.get("kind", "?")
    if kind == "issued":
        return f"issued at node {ev.get('node')}"
    if kind == "probe":
        hit = " TARGET" if ev.get("target") else ""
        return f"probe node {ev.get('node')}: {ev.get('docs')} docs{hit}"
    if kind == "walk_hop":
        rel = ev.get("rel")
        via = " via supernode" if ev.get("supernode") else ""
        rel_s = f", rel {rel:.4f}" if isinstance(rel, (int, float)) and rel >= 0 else ""
        return f"walk {ev.get('from')} -> {ev.get('to')}{rel_s}{via}"
    if kind == "flood_send":
        return f"flood {ev.get('from')} -> {ev.get('to')}"
    if kind == "cache_probe":
        return (f"cache {ev.get('outcome')} at node {ev.get('node')}"
                + (f" ({ev.get('docs')} docs)" if ev.get("outcome") == "hit" else ""))
    if kind.startswith("fault_"):
        what = kind[len("fault_"):]
        extra = ""
        if kind == "fault_delay":
            extra = f" (+{ev.get('delay')}s)"
        return (f"{what} on {ev.get('channel')} "
                f"{ev.get('from')} -> {ev.get('to')}{extra}")
    return kind


def select_autopsies(doc, ordinal):
    autopsies = doc.get("autopsies")
    if not isinstance(autopsies, list):
        fail("input has no autopsies list (is this a ges.autopsy.v1 file?)")
    if ordinal is None:
        return autopsies
    picked = [a for a in autopsies
              if a.get("query", {}).get("ordinal") == ordinal]
    if not picked:
        kept = [a.get("query", {}).get("ordinal") for a in autopsies]
        fail(f"ordinal {ordinal} is not retained (retained: {kept})")
    return picked


def dot_escape(s):
    return str(s).replace("\\", "\\\\").replace('"', '\\"')


def render_dot(doc, autopsies, out):
    out.write("digraph autopsies {\n"
              "  rankdir=TB;\n"
              "  node [shape=box, style=filled, fontsize=10];\n")
    for a in autopsies:
        q = a["query"]
        ordinal = q["ordinal"]
        out.write(f'  subgraph cluster_q{ordinal} {{\n')
        out.write(f'    label="query {ordinal} ({q.get("engine")}, '
                  f'{dot_escape(q.get("reason"))}, '
                  f'{q.get("cost", {}).get("probes")} probes)";\n')
        for ev in a.get("events", []):
            color, _ = KIND_STYLE.get(ev.get("kind"), ("white", "?"))
            label = f'{ev.get("id")}: {dot_escape(event_detail(ev))}'
            out.write(f'    q{ordinal}_e{ev.get("id")} '
                      f'[label="{label}", fillcolor={color}];\n')
        for ev in a.get("events", []):
            if isinstance(ev.get("parent"), int) and ev["parent"] >= 0:
                out.write(f'    q{ordinal}_e{ev["parent"]} -> '
                          f'q{ordinal}_e{ev["id"]};\n')
        out.write("  }\n")
    out.write("}\n")


def render_md(doc, autopsies, out):
    seen = doc.get("queries_seen")
    dropped = doc.get("queries_dropped")
    out.write(f"# Query autopsies\n\n{len(autopsies)} retained of "
              f"{seen} queries seen ({dropped} dropped by retention policy, "
              f"{doc.get('events_dropped')} events over the per-query cap)\n\n")
    out.write("| ordinal | engine | retained | reason | probes | walk | "
              "flood | cache hits | docs |\n")
    out.write("|---|---|---|---|---|---|---|---|---|\n")
    for a in autopsies:
        q = a["query"]
        c = q.get("cost", {})
        out.write(f"| {q.get('ordinal')} | {q.get('engine')} "
                  f"| {q.get('retained')} | {q.get('reason')} "
                  f"| {c.get('probes')} | {c.get('walk_steps')} "
                  f"| {c.get('flood_messages')} | {c.get('cache_hits')} "
                  f"| {c.get('retrieved_docs')} |\n")
    for a in autopsies:
        q = a["query"]
        out.write(f"\n## Query {q.get('ordinal')} — {q.get('engine')}, "
                  f"initiator {q.get('initiator')}, "
                  f"t={q.get('issued_at')}..{q.get('completed_at')}, "
                  f"reason `{q.get('reason')}`\n\n")
        if q.get("events_dropped"):
            out.write(f"_{q['events_dropped']} events over the per-query cap "
                      "were not recorded; the tree below is truncated._\n\n")
        out.write("| id | parent | t | | event |\n|---|---|---|---|---|\n")
        for ev in a.get("events", []):
            _, glyph = KIND_STYLE.get(ev.get("kind"), ("white", "?"))
            parent = ev.get("parent")
            out.write(f"| {ev.get('id')} | {'' if parent == -1 else parent} "
                      f"| {ev.get('t')} | {glyph} | {event_detail(ev)} |\n")


def parse_args(argv):
    path, fmt, ordinal, out_path = None, "md", None, None
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--format":
            i += 1
            if i >= len(argv) or argv[i] not in {"dot", "md"}:
                fail("--format needs dot or md")
            fmt = argv[i]
        elif arg == "--ordinal":
            i += 1
            try:
                ordinal = int(argv[i])
            except (IndexError, ValueError):
                fail("--ordinal needs an integer")
        elif arg == "-o":
            i += 1
            if i >= len(argv):
                fail("-o needs a path")
            out_path = argv[i]
        elif path is None:
            path = arg
        else:
            fail(f"unexpected argument {arg!r}")
        i += 1
    if path is None:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    return path, fmt, ordinal, out_path


def main(argv):
    path, fmt, ordinal, out_path = parse_args(argv)
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict) or doc.get("schema") != "ges.autopsy.v1":
        fail(f"{path}: not a ges.autopsy.v1 document")
    autopsies = select_autopsies(doc, ordinal)
    out = open(out_path, "w", encoding="utf-8") if out_path else sys.stdout
    try:
        (render_dot if fmt == "dot" else render_md)(doc, autopsies, out)
    finally:
        if out_path:
            out.close()
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:  # e.g. `render_autopsy.py ... | head`
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
