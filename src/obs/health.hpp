#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace ges::obs {

/// One node's health signals, as sampled by the scenario layer. The obs
/// layer sits below p2p/ges, so it never reads protocol state itself —
/// a Provider callback (wired by ScenarioRunner) fills these in from the
/// Network / heartbeat / adaptation / result-cache subsystems.
struct NodeHealth {
  uint32_t node = 0;
  bool alive = false;
  double capacity = 0.0;
  uint32_t degree = 0;          // total links
  uint32_t degree_target = 0;   // policy budget (sem + random)
  uint32_t sem_degree = 0;
  uint32_t sem_target = 0;
  /// Sim seconds since the node's heartbeat loop last fired; negative
  /// when it has never fired (e.g. freshly joined).
  double heartbeat_staleness = -1.0;
  /// Result-cache fill fraction (entries / capacity); 0 for cacheless.
  double cache_occupancy = 0.0;
  bool in_backoff = false;        // handshake retry backoff armed
  uint32_t backoff_strikes = 0;   // consecutive fault aborts
};

/// Watchdog thresholds. A crossing emits one structured anomaly event
/// per (node, kind) per sweep.
struct HealthThresholds {
  /// Alive nodes whose heartbeat loop has been silent this long are
  /// flagged stale (default: three 5s heartbeat intervals).
  double max_heartbeat_staleness = 15.0;
  /// degree > degree_target * this factor flags an overfull node.
  double degree_overshoot = 1.5;
  /// degree < degree_target * this fraction flags an underfilled node
  /// (0 disables — freshly bootstrapped overlays are legitimately thin).
  double degree_underfill = 0.0;
  /// cache occupancy above this flags an overfull cache (the bank's
  /// eviction policy should make this impossible; > 1 is a bug signal).
  double max_cache_occupancy = 1.0;
  /// Backoff strikes at or above this flag a node stuck retrying.
  uint32_t max_backoff_strikes = 4;
};

enum class HealthAnomaly : uint8_t {
  kStaleHeartbeat = 0,
  kDegreeOverflow,
  kDegreeUnderflow,
  kCacheOverflow,
  kBackoffStuck,
};

const char* health_anomaly_name(HealthAnomaly kind);

/// One threshold crossing, timestamped in sim seconds.
struct HealthEvent {
  double t = 0.0;
  uint32_t node = 0;
  HealthAnomaly kind = HealthAnomaly::kStaleHeartbeat;
  double value = 0.0;      // the observed signal
  double threshold = 0.0;  // the limit it crossed
};

/// Aggregates of the most recent sweep (surfaced by scenario_telemetry
/// and the fuzzer's [fuzz-summary] lines).
struct HealthSummary {
  double t = 0.0;
  size_t nodes = 0;
  size_t alive = 0;
  size_t anomalies = 0;        // this sweep
  double max_staleness = 0.0;  // over alive nodes with a heartbeat
  double max_cache_occupancy = 0.0;
  size_t nodes_in_backoff = 0;
  size_t degree_overflows = 0;
};

/// Per-node health gauges + threshold watchdog. sweep() pulls the
/// current per-node signals through the Provider, updates aggregate
/// gauges (p2p.health.*), and emits one structured anomaly event per
/// crossing — an "i" instant in the trace (category "health", track =
/// node) plus a per-kind p2p.health.* counter — into the global
/// telemetry context. Anomalies are additionally retained in a bounded
/// list for programmatic access; overflow is counted, never silent.
///
/// Observation-only and serial: ScenarioRunner sweeps at round
/// boundaries. The provider must not mutate simulation state.
class HealthMonitor {
 public:
  using Provider = std::function<void(std::vector<NodeHealth>&)>;

  void set_provider(Provider provider);
  void set_thresholds(HealthThresholds thresholds);
  const HealthThresholds& thresholds() const { return thresholds_; }

  /// Bound on the retained anomaly list (minimum 1; default 1024).
  void set_max_anomalies(size_t max_anomalies);

  /// Run one watchdog pass at sim time `t`. No-op without a provider.
  void sweep(double t);

  uint64_t sweeps() const { return sweeps_; }
  const HealthSummary& last() const { return last_; }
  const std::vector<HealthEvent>& anomalies() const { return anomalies_; }
  uint64_t anomalies_seen() const { return anomalies_seen_; }
  uint64_t anomalies_dropped() const {
    return anomalies_seen_ - anomalies_.size();
  }

  void reset();

 private:
  void emit(double t, const NodeHealth& h, HealthAnomaly kind, double value,
            double threshold);

  Provider provider_;
  HealthThresholds thresholds_;
  size_t max_anomalies_ = 1024;
  uint64_t sweeps_ = 0;
  uint64_t anomalies_seen_ = 0;
  HealthSummary last_;
  std::vector<NodeHealth> scratch_;
  std::vector<HealthEvent> anomalies_;
};

}  // namespace ges::obs
