#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ges::obs {

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

const char* metric_kind_name(MetricKind kind);

/// Point-in-time value of one metric (see MetricsRegistry::snapshot()).
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  uint64_t value = 0;   // counter total, or histogram total count
  double gauge = 0.0;   // gauge value
  double lo = 0.0;      // histogram range [lo, hi)
  double hi = 0.0;
  std::vector<uint64_t> buckets;  // histogram bucket counts
};

/// All metrics at one barrier, sorted by name (stable export order).
struct MetricsSnapshot {
  std::vector<MetricSnapshot> metrics;

  const MetricSnapshot* find(std::string_view name) const;
  /// Counter total by name; 0 when absent (or not a counter).
  uint64_t counter(std::string_view name) const;
  /// Gauge value by name; 0.0 when absent.
  double gauge(std::string_view name) const;
};

namespace detail {

/// Number of per-thread cells each counter/histogram is sharded over.
/// Threads map onto cells by a sticky thread-local slot; increments are
/// relaxed atomics, so concurrent writers never contend on one line.
/// Merging sums unsigned integers — commutative and associative — so a
/// snapshot taken at a barrier is bit-identical however the work was
/// scheduled across threads.
constexpr size_t kShards = 16;

size_t shard_slot();

struct alignas(64) ShardCell {
  std::atomic<uint64_t> v{0};
};

struct CounterFamily {
  std::string name;
  std::array<ShardCell, kShards> cells;

  void add(uint64_t n) {
    cells[shard_slot()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t total() const;
  void reset();
};

struct GaugeFamily {
  std::string name;
  std::atomic<double> value{0.0};
};

struct HistogramFamily {
  HistogramFamily(std::string name, double lo, double hi, size_t buckets);

  std::string name;
  double lo;
  double hi;
  size_t bucket_count;
  // kShards * bucket_count cells, shard-major.
  std::unique_ptr<std::atomic<uint64_t>[]> cells;

  void add(double x);
  std::vector<uint64_t> merged() const;
  void reset();
};

}  // namespace detail

/// Monotonic counter handle. Cheap to copy; add() is one relaxed
/// fetch_add on a per-thread cell. A default-constructed handle is inert.
class Counter {
 public:
  Counter() = default;
  void add(uint64_t n = 1) {
    if (family_ != nullptr) family_->add(n);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterFamily* family) : family_(family) {}
  detail::CounterFamily* family_ = nullptr;
};

/// Last-value gauge handle. set() is a relaxed atomic store; call it from
/// serial contexts only — concurrent last-write-wins is not deterministic.
class Gauge {
 public:
  Gauge() = default;
  void set(double v) {
    if (family_ != nullptr) family_->value.store(v, std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeFamily* family) : family_(family) {}
  detail::GaugeFamily* family_ = nullptr;
};

/// Fixed-bucket histogram handle. Records only integer bucket counts (no
/// floating-point sums) so parallel recording merges deterministically.
/// Out-of-range samples clamp into the boundary buckets; NaN is ignored.
class Histogram {
 public:
  Histogram() = default;
  void add(double x) {
    if (family_ != nullptr) family_->add(x);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramFamily* family) : family_(family) {}
  detail::HistogramFamily* family_ = nullptr;
};

/// Named metrics with per-thread sharded cells (see detail::kShards).
/// Registration is mutex-guarded and idempotent per name; handles stay
/// valid for the registry's lifetime (reset() zeroes values, it never
/// invalidates handles). snapshot() merges the cells; take it at a
/// barrier (no concurrent writers) for an exact, deterministic view.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name, double lo, double hi, size_t buckets);

  /// Merge all cells into a by-name-sorted snapshot.
  MetricsSnapshot snapshot() const;

  /// Zero every value; registrations (and outstanding handles) survive.
  void reset();

 private:
  mutable std::mutex mutex_;
  // Deques keep family addresses stable across registrations.
  std::deque<detail::CounterFamily> counters_;
  std::deque<detail::GaugeFamily> gauges_;
  std::deque<detail::HistogramFamily> histograms_;
  std::map<std::string, MetricKind, std::less<>> kinds_;
  std::map<std::string, detail::CounterFamily*, std::less<>> counter_index_;
  std::map<std::string, detail::GaugeFamily*, std::less<>> gauge_index_;
  std::map<std::string, detail::HistogramFamily*, std::less<>> histogram_index_;
};

}  // namespace ges::obs
