#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ges::obs {

/// One trace event, timestamped in *simulated* seconds (the EventQueue
/// clock, not wall time — traces are therefore deterministic artifacts).
struct TraceEvent {
  enum class Type : uint8_t { kComplete, kInstant };

  Type type = Type::kInstant;
  std::string name;      // span / event name ("round", "heartbeat", ...)
  std::string category;  // span taxonomy bucket ("scenario", "search", ...)
  double ts = 0.0;       // start time, sim seconds
  double dur = 0.0;      // duration, sim seconds (complete events only)
  uint64_t track = 0;    // rendered as the tid lane (node id, guid, round)
  std::vector<std::pair<std::string, double>> args;
};

/// Bounded ring buffer of trace events. When full, the oldest events are
/// overwritten (and counted in dropped()) so a long scenario keeps its
/// most recent window. Recording is mutex-guarded; for deterministic
/// traces record only from serial execution contexts (event-queue
/// handlers, the adaptation commit phase, round boundaries) — parallel
/// phases must stick to sharded metrics.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = kDefaultCapacity);

  static constexpr size_t kDefaultCapacity = 1 << 16;

  /// Change the buffer size; clears all recorded events.
  void set_capacity(size_t capacity);
  size_t capacity() const;

  void record(TraceEvent event);
  void record_complete(std::string name, std::string category, double ts,
                       double dur, uint64_t track,
                       std::vector<std::pair<std::string, double>> args = {});
  void record_instant(std::string name, std::string category, double ts,
                      uint64_t track,
                      std::vector<std::pair<std::string, double>> args = {});

  size_t size() const;
  size_t dropped() const;
  void clear();

  /// Retained events, oldest first (recording order).
  std::vector<TraceEvent> events() const;

  /// Chrome trace_event JSON ("X"/"i" phases, ts in microseconds) —
  /// loads directly in chrome://tracing and Perfetto.
  void export_chrome_trace(std::ostream& os) const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  size_t capacity_;
  size_t next_ = 0;   // ring write position once full
  uint64_t dropped_ = 0;
};

}  // namespace ges::obs
