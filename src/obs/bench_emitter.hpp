#pragma once

// The unified BENCH_<name>.json emitter (schema "ges.bench.v1"): every
// bench binary writes one machine-readable file next to its
// human-readable output, seeding the perf trajectory across PRs. Lives in
// obs so benches, examples and CI share one schema; bench binaries reach
// it through bench/support/bench_json.hpp, and google-benchmark binaries
// layer bench/support/bench_json_main.hpp on top. Optionally embeds a
// telemetry metrics snapshot ("ges.metrics.v1") so a bench can ship its
// message/hop counters alongside its timings.

#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace ges::obs {

class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name) : name_(std::move(bench_name)) {}

  /// Record one benchmark result; `extra` holds free-form numeric
  /// counters (items/sec, recall, message rates, ...).
  void add(const std::string& entry_name, double ops_per_sec, double ns_per_op,
           const std::vector<std::pair<std::string, double>>& extra = {}) {
    std::ostringstream os;
    os << "    {\"name\": " << quoted(entry_name)
       << ", \"ops_per_sec\": " << number(ops_per_sec)
       << ", \"ns_per_op\": " << number(ns_per_op);
    for (const auto& [key, value] : extra) {
      os << ", " << quoted(key) << ": " << number(value);
    }
    os << "}";
    entries_.push_back(os.str());
  }

  /// Embed a telemetry metrics snapshot under a "metrics" key.
  void set_metrics(const MetricsSnapshot& snapshot) {
    std::ostringstream os;
    write_metrics_json(snapshot, os);
    metrics_json_ = os.str();
    while (!metrics_json_.empty() && metrics_json_.back() == '\n') {
      metrics_json_.pop_back();
    }
  }

  std::string path() const { return "BENCH_" + name_ + ".json"; }

  /// Write BENCH_<name>.json into the working directory.
  void write() const {
    std::ofstream out(path());
    out << "{\n  \"schema\": \"ges.bench.v1\",\n  \"bench\": " << quoted(name_)
        << ",\n  \"entries\": [\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      out << entries_[i] << (i + 1 < entries_.size() ? ",\n" : "\n");
    }
    out << "  ]";
    if (!metrics_json_.empty()) {
      out << ",\n  \"metrics\": ";
      // Indent the embedded document to keep the file readable.
      for (const char c : metrics_json_) {
        out << c;
        if (c == '\n') out << "  ";
      }
    }
    out << "\n}\n";
  }

  bool empty() const { return entries_.empty(); }

 private:
  static std::string quoted(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out + "\"";
  }

  static std::string number(double v) {
    std::ostringstream os;
    os << std::setprecision(12) << v;
    const std::string s = os.str();
    // JSON has no inf/nan literals.
    return (s.find("inf") != std::string::npos || s.find("nan") != std::string::npos)
               ? "null"
               : s;
  }

  std::string name_;
  std::vector<std::string> entries_;
  std::string metrics_json_;
};

}  // namespace ges::obs
