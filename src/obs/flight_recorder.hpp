#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ges::obs {

/// One node of a query's causal event graph. Events form a forest rooted
/// at the kIssued event (id 0): `parent` is always a smaller id (or -1
/// for the root), so the graph is acyclic by construction and renders as
/// a tree of "why did this message exist".
///
/// Field use per kind (unused fields stay at their defaults):
///   kIssued       from = initiator
///   kProbe        from = probed node, count = docs retrieved,
///                 flag = 1 when the node is a semantic-group target
///   kWalkHop      from -> to, value = REL(to, Q) used by the bias
///                 (-1 when the choice was capacity-driven or unbiased),
///                 flag = 1 when a supernode preference chose the target
///   kFloodSend    from -> to (one semantic-group flood edge)
///   kCacheProbe   from = probed node, flag = outcome (0 miss, 1 hit,
///                 2 invalidated-then-miss), count = docs served on a hit
///   kFaultDrop    from -> to, channel = FaultChannel value
///   kFaultBlock   from -> to (partition cut), channel as above
///   kFaultDelay   from -> to, value = extra delay, channel as above
///   kFaultDup     from -> to, channel as above
enum class FlightEventKind : uint8_t {
  kIssued = 0,
  kProbe,
  kWalkHop,
  kFloodSend,
  kCacheProbe,
  kFaultDrop,
  kFaultBlock,
  kFaultDelay,
  kFaultDup,
};

/// Stable lower-snake label ("issued", "walk_hop", ...) used in the
/// ges.autopsy.v1 export.
const char* flight_event_kind_name(FlightEventKind kind);

struct FlightEvent {
  FlightEventKind kind = FlightEventKind::kIssued;
  uint8_t channel = 0;  // p2p::FaultChannel value for fault events
  uint8_t flag = 0;
  int32_t id = 0;
  int32_t parent = -1;  // always < id; -1 = root
  uint32_t from = 0;
  uint32_t to = 0;
  int32_t count = 0;
  /// Exact Wire-format-v1 frame bytes of the message this event records
  /// (walk hops and flood sends; 0 for non-message events or when byte
  /// accounting is off). Summed over a query's events this reconciles
  /// with FlightCost::bytes_sent when no events were dropped.
  uint32_t bytes = 0;
  double t = 0.0;  // sim seconds (recording time)
  double value = 0.0;
};

/// The per-query cost block, mirroring SearchTrace's tallies exactly so
/// the autopsy can be cross-checked against the simulation ground truth.
struct FlightCost {
  uint64_t probes = 0;
  uint64_t walk_steps = 0;
  uint64_t flood_messages = 0;
  uint64_t cache_hits = 0;
  uint64_t targets = 0;
  uint64_t retrieved_docs = 0;
  uint64_t rel_evals = 0;
  uint64_t rel_memo_hits = 0;
  /// Mirror of SearchTrace::bytes_sent: exact wire bytes of the query's
  /// counted messages (0 when byte accounting is off).
  uint64_t bytes_sent = 0;

  /// Retention cost: what the worst-k policy ranks queries by.
  uint64_t total_messages() const {
    return probes + walk_steps + flood_messages;
  }
};

/// One retained query: header + bounded causal event list.
struct QueryAutopsy {
  uint64_t ordinal = 0;  // recorder-global issue order
  uint64_t guid = 0;     // async engine GUID; 0 for sync queries
  uint32_t initiator = 0;
  bool async = false;
  double issued_at = 0.0;
  double completed_at = 0.0;
  /// Why the query stopped expanding: "budget", "responses",
  /// "cache_hit", "walk_lost", "no_neighbor", "ttl", "step_cap",
  /// "drained" (async: all in-flight messages settled), "unknown".
  const char* reason = "unknown";
  FlightCost cost;
  uint64_t events_recorded = 0;  // includes events over the cap
  uint64_t events_dropped = 0;   // events_recorded - events.size()
  std::vector<FlightEvent> events;
};

/// Retention policy of the recorder. Per query, at most
/// `max_events_per_query` events are kept (the rest are counted and
/// disclosed). Across queries, two bounded sets are retained:
///   * the worst `worst_k` by (cost.total_messages() desc, ordinal asc) —
///     the queries whose cost most needs explaining;
///   * a uniform stride sample (every `sample_every`-th ordinal) in a
///     FIFO ring of `sample_capacity` — unbiased coverage of the run.
/// Everything else is dropped and counted, never silently.
struct FlightRecorderConfig {
  size_t worst_k = 16;
  size_t sample_capacity = 32;
  size_t sample_every = 8;
  size_t max_events_per_query = 4096;
};

/// Builds one query's autopsy on the recording side. The engines own one
/// builder per in-flight query (stack-local for the synchronous engine,
/// per-Run for the asynchronous one) and install it as the thread-local
/// flight sink so hooks in shared lower layers (walk policy, fault
/// injector, result-cache bank) attach events without plumbing a pointer
/// through every signature.
///
/// Like spans, flight recording is a serial-context facility: ordinals
/// are handed out under the recorder mutex and event ids are assigned in
/// call order, so only serially-executed queries (ScenarioRunner,
/// AsyncSearchEngine, tests) produce deterministic autopsies. The
/// parallel eval harness must leave the recorder disabled.
class FlightBuilder {
 public:
  /// Arms the builder. `ordinal` comes from FlightRecorder::next_ordinal().
  void begin(uint64_t ordinal, uint64_t guid, uint32_t initiator, bool async,
             double t, size_t max_events);

  bool active() const { return active_; }

  /// Append an event under `parent` (-1 = root). Returns the event id,
  /// or -1 when the per-query cap dropped it (the drop is counted).
  int32_t add(FlightEventKind kind, int32_t parent, double t);
  /// Append under the current context (see set_context).
  int32_t add(FlightEventKind kind, double t) { return add(kind, context_, t); }

  /// Mutable access to event `id` (to fill kind fields); null when the
  /// id is -1 (the add was dropped by the per-query cap).
  FlightEvent* event(int32_t id);

  /// The causal context subsequent events attach under — the engines set
  /// it to the walk-hop / flood-send / probe event being processed.
  void set_context(int32_t id) { context_ = id; }
  int32_t context() const { return context_; }

  /// Probe bookkeeping: remembers `node`'s probe (or cache-hit) event so
  /// later walk hops and flood sends out of that node can attach to it.
  void note_probe_event(uint32_t node, int32_t id);
  /// The event id that explains why `node` holds the query (-1 when
  /// unknown, e.g. the event was dropped by the cap).
  int32_t probe_event_of(uint32_t node) const;

  /// Walk-policy hook: stashes the selection detail of the next picked
  /// target so the engine's walk-hop event can carry it. `rel` is -1 when
  /// the pick did not evaluate relevance (supernode preference).
  void note_walk_choice(double rel, bool via_supernode) {
    pending_rel_ = rel;
    pending_supernode_ = via_supernode;
    pending_choice_ = true;
  }
  /// Consumes the stashed choice detail (returns false when none).
  bool take_walk_choice(double* rel, bool* via_supernode);

  /// Seals the autopsy and returns it, deactivating the builder.
  QueryAutopsy finish(const char* reason, const FlightCost& cost, double t);

 private:
  bool active_ = false;
  QueryAutopsy autopsy_;
  int32_t context_ = -1;
  size_t max_events_ = 0;
  bool pending_choice_ = false;
  double pending_rel_ = -1.0;
  bool pending_supernode_ = false;
  std::unordered_map<uint32_t, int32_t> probe_event_;
};

/// The process-wide retention store behind obs::flight(). Thread-safe;
/// determinism requires serial query execution (see FlightBuilder).
class FlightRecorder {
 public:
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  void set_config(FlightRecorderConfig config);
  FlightRecorderConfig config() const;

  /// Issue order of the next query (also counts queries issued).
  uint64_t next_ordinal();

  /// Retention decision for a finished query (see FlightRecorderConfig).
  void submit(QueryAutopsy&& autopsy);

  uint64_t queries_seen() const;
  /// Submitted queries not currently retained. Never silent: exported in
  /// the ges.autopsy.v1 header and logged at export time.
  uint64_t queries_dropped() const;
  /// Events dropped by the per-query cap, across all submitted queries.
  uint64_t events_dropped() const;
  size_t retained_count() const;

  /// Retained autopsies in ordinal order, each tagged with why it was
  /// kept ("worst", "sampled", or "worst+sampled").
  struct Retained {
    QueryAutopsy autopsy;
    std::string label;
  };
  std::vector<Retained> retained() const;

  /// Drop all state (config survives). Call between deterministic runs.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{false};
  FlightRecorderConfig config_;
  uint64_t next_ordinal_ = 0;
  uint64_t queries_seen_ = 0;
  uint64_t events_dropped_ = 0;
  std::vector<QueryAutopsy> worst_;   // unsorted; worst_k by policy
  std::deque<QueryAutopsy> sampled_;  // FIFO ring of stride samples
};

/// The process-wide flight recorder (mirrors obs::global()).
FlightRecorder& flight();

/// Thread-local sink the lower-layer hooks record into; null when no
/// query is being recorded on this thread.
FlightBuilder* flight_sink();

/// RAII installer for the thread-local sink (restores the previous one,
/// so nested queries — should they ever exist — unwind correctly).
class FlightScope {
 public:
  explicit FlightScope(FlightBuilder* builder);
  ~FlightScope();
  FlightScope(const FlightScope&) = delete;
  FlightScope& operator=(const FlightScope&) = delete;

 private:
  FlightBuilder* previous_;
};

/// ges.autopsy.v1: the retained autopsies plus the full retention
/// disclosure (queries seen / retained / dropped, events dropped). Two
/// identical runs serialize byte-identically. Any non-zero drop count is
/// additionally logged through util/logging (never silent).
void write_autopsy_json(const FlightRecorder& recorder, std::ostream& os);

/// Chrome trace_event JSON of the retained autopsies: one "X" span per
/// query (tid = ordinal) nesting one "i" instant per causal event —
/// loadable in Perfetto next to the main trace.
void write_autopsy_chrome_trace(const FlightRecorder& recorder, std::ostream& os);

}  // namespace ges::obs
