#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace ges::obs {

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

const MetricSnapshot* MetricsSnapshot::find(std::string_view name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

uint64_t MetricsSnapshot::counter(std::string_view name) const {
  const MetricSnapshot* m = find(name);
  return (m != nullptr && m->kind == MetricKind::kCounter) ? m->value : 0;
}

double MetricsSnapshot::gauge(std::string_view name) const {
  const MetricSnapshot* m = find(name);
  return (m != nullptr && m->kind == MetricKind::kGauge) ? m->gauge : 0.0;
}

namespace detail {

size_t shard_slot() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot = next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

uint64_t CounterFamily::total() const {
  uint64_t sum = 0;
  for (const auto& cell : cells) sum += cell.v.load(std::memory_order_relaxed);
  return sum;
}

void CounterFamily::reset() {
  for (auto& cell : cells) cell.v.store(0, std::memory_order_relaxed);
}

HistogramFamily::HistogramFamily(std::string name_in, double lo_in, double hi_in,
                                 size_t buckets)
    : name(std::move(name_in)),
      lo(lo_in),
      hi(hi_in),
      bucket_count(buckets),
      cells(new std::atomic<uint64_t>[kShards * buckets]) {
  GES_CHECK(hi > lo);
  GES_CHECK(buckets > 0);
  reset();
}

void HistogramFamily::add(double x) {
  if (std::isnan(x)) return;
  double t = (x - lo) / (hi - lo);
  t = std::clamp(t, 0.0, 1.0);
  const size_t bucket = std::min(
      bucket_count - 1, static_cast<size_t>(t * static_cast<double>(bucket_count)));
  cells[shard_slot() * bucket_count + bucket].fetch_add(1, std::memory_order_relaxed);
}

std::vector<uint64_t> HistogramFamily::merged() const {
  std::vector<uint64_t> out(bucket_count, 0);
  for (size_t shard = 0; shard < kShards; ++shard) {
    for (size_t b = 0; b < bucket_count; ++b) {
      out[b] += cells[shard * bucket_count + b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void HistogramFamily::reset() {
  for (size_t i = 0; i < kShards * bucket_count; ++i) {
    cells[i].store(0, std::memory_order_relaxed);
  }
}

}  // namespace detail

Counter MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  if (const auto it = counter_index_.find(name); it != counter_index_.end()) {
    return Counter(it->second);
  }
  GES_CHECK_MSG(kinds_.find(name) == kinds_.end(),
                "metric '" << std::string(name) << "' already registered as a "
                           << metric_kind_name(kinds_.find(name)->second));
  auto& family = counters_.emplace_back();
  family.name = std::string(name);
  kinds_.emplace(family.name, MetricKind::kCounter);
  counter_index_.emplace(family.name, &family);
  return Counter(&family);
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  if (const auto it = gauge_index_.find(name); it != gauge_index_.end()) {
    return Gauge(it->second);
  }
  GES_CHECK_MSG(kinds_.find(name) == kinds_.end(),
                "metric '" << std::string(name) << "' already registered as a "
                           << metric_kind_name(kinds_.find(name)->second));
  auto& family = gauges_.emplace_back();
  family.name = std::string(name);
  kinds_.emplace(family.name, MetricKind::kGauge);
  gauge_index_.emplace(family.name, &family);
  return Gauge(&family);
}

Histogram MetricsRegistry::histogram(std::string_view name, double lo, double hi,
                                     size_t buckets) {
  std::lock_guard lock(mutex_);
  if (const auto it = histogram_index_.find(name); it != histogram_index_.end()) {
    GES_CHECK_MSG(it->second->lo == lo && it->second->hi == hi &&
                      it->second->bucket_count == buckets,
                  "histogram '" << std::string(name)
                                << "' re-registered with different buckets");
    return Histogram(it->second);
  }
  GES_CHECK_MSG(kinds_.find(name) == kinds_.end(),
                "metric '" << std::string(name) << "' already registered as a "
                           << metric_kind_name(kinds_.find(name)->second));
  auto& family = histograms_.emplace_back(std::string(name), lo, hi, buckets);
  kinds_.emplace(family.name, MetricKind::kHistogram);
  histogram_index_.emplace(family.name, &family);
  return Histogram(&family);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot out;
  out.metrics.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& c : counters_) {
    MetricSnapshot m;
    m.name = c.name;
    m.kind = MetricKind::kCounter;
    m.value = c.total();
    out.metrics.push_back(std::move(m));
  }
  for (const auto& g : gauges_) {
    MetricSnapshot m;
    m.name = g.name;
    m.kind = MetricKind::kGauge;
    m.gauge = g.value.load(std::memory_order_relaxed);
    out.metrics.push_back(std::move(m));
  }
  for (const auto& h : histograms_) {
    MetricSnapshot m;
    m.name = h.name;
    m.kind = MetricKind::kHistogram;
    m.lo = h.lo;
    m.hi = h.hi;
    m.buckets = h.merged();
    for (const uint64_t b : m.buckets) m.value += b;
    out.metrics.push_back(std::move(m));
  }
  std::sort(out.metrics.begin(), out.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& c : counters_) c.reset();
  for (auto& g : gauges_) g.value.store(0.0, std::memory_order_relaxed);
  for (auto& h : histograms_) h.reset();
}

}  // namespace ges::obs
