#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"
#include "util/logging.hpp"

namespace ges::obs {

namespace {

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}

}  // namespace

void TimeseriesSampler::configure(double interval, size_t max_samples) {
  GES_CHECK(interval >= 0.0);
  interval_ = interval;
  max_samples_ = std::max<size_t>(1, max_samples);
}

void TimeseriesSampler::sample(const MetricsRegistry& registry, double t) {
  ++taken_;
  TimeseriesSample s;
  s.t = t;
  const MetricsSnapshot snapshot = registry.snapshot();
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (m.kind == MetricKind::kCounter) {
      s.counters.emplace_back(m.name, m.value);
    } else if (m.kind == MetricKind::kGauge) {
      s.gauges.emplace_back(m.name, m.gauge);
    }
  }
  if (!samples_.empty() && t <= samples_.back().t) {
    // Same-instant resample (e.g. a manual end-of-run sample landing on
    // the periodic tick): the later snapshot supersedes the earlier one,
    // keeping exported times strictly increasing.
    samples_.back() = std::move(s);
    return;
  }
  samples_.push_back(std::move(s));
  while (samples_.size() > max_samples_) samples_.pop_front();
}

void TimeseriesSampler::reset() {
  taken_ = 0;
  samples_.clear();
}

void TimeseriesSampler::write_json(std::ostream& os) const {
  const uint64_t dropped = samples_dropped();
  if (dropped > 0) {
    GES_INFO << "timeseries export is lossy by ring retention: " << dropped
             << " of " << taken_ << " samples dropped";
  }
  os << "{\n  \"schema\": \"ges.timeseries.v1\",\n"
     << "  \"interval\": " << json_number(interval_) << ",\n"
     << "  \"samples_taken\": " << taken_ << ",\n"
     << "  \"samples_retained\": " << samples_.size() << ",\n"
     << "  \"samples_dropped\": " << dropped << ",\n"
     << "  \"max_samples\": " << max_samples_ << ",\n"
     << "  \"samples\": [\n";
  for (size_t i = 0; i < samples_.size(); ++i) {
    const TimeseriesSample& s = samples_[i];
    os << "    {\"t\": " << json_number(s.t) << ", \"counters\": {";
    for (size_t c = 0; c < s.counters.size(); ++c) {
      if (c > 0) os << ", ";
      os << json_quote(s.counters[c].first) << ": " << s.counters[c].second;
    }
    os << "}, \"gauges\": {";
    for (size_t g = 0; g < s.gauges.size(); ++g) {
      if (g > 0) os << ", ";
      os << json_quote(s.gauges[g].first) << ": " << json_number(s.gauges[g].second);
    }
    os << "}}" << (i + 1 < samples_.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

}  // namespace ges::obs
