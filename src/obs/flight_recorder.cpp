#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

#include "util/logging.hpp"

namespace ges::obs {

namespace {

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}

/// Stable label of a p2p::FaultChannel value. The obs layer sits below
/// p2p, so the mapping is mirrored here (the values are wire-stable
/// protocol constants, asserted against fault_channel_name in tests).
const char* channel_label(uint8_t channel) {
  switch (channel) {
    case 1: return "walk";
    case 2: return "flood";
    case 3: return "handshake";
    case 4: return "heartbeat";
    case 5: return "gossip";
  }
  return "unknown";
}

const char* cache_outcome_label(uint8_t flag) {
  switch (flag) {
    case 1: return "hit";
    case 2: return "invalidated";
  }
  return "miss";
}

}  // namespace

const char* flight_event_kind_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kIssued: return "issued";
    case FlightEventKind::kProbe: return "probe";
    case FlightEventKind::kWalkHop: return "walk_hop";
    case FlightEventKind::kFloodSend: return "flood_send";
    case FlightEventKind::kCacheProbe: return "cache_probe";
    case FlightEventKind::kFaultDrop: return "fault_drop";
    case FlightEventKind::kFaultBlock: return "fault_block";
    case FlightEventKind::kFaultDelay: return "fault_delay";
    case FlightEventKind::kFaultDup: return "fault_dup";
  }
  return "?";
}

// --- FlightBuilder ----------------------------------------------------

void FlightBuilder::begin(uint64_t ordinal, uint64_t guid, uint32_t initiator,
                          bool async, double t, size_t max_events) {
  active_ = true;
  autopsy_ = QueryAutopsy{};
  autopsy_.ordinal = ordinal;
  autopsy_.guid = guid;
  autopsy_.initiator = initiator;
  autopsy_.async = async;
  autopsy_.issued_at = t;
  max_events_ = max_events;
  context_ = -1;
  pending_choice_ = false;
  probe_event_.clear();
  const int32_t root = add(FlightEventKind::kIssued, -1, t);
  if (FlightEvent* ev = event(root)) ev->from = initiator;
  context_ = root;
  // Until the initiator's probe lands, the issued event explains why the
  // initiator holds the query.
  note_probe_event(initiator, root);
}

int32_t FlightBuilder::add(FlightEventKind kind, int32_t parent, double t) {
  if (!active_) return -1;
  ++autopsy_.events_recorded;
  if (autopsy_.events.size() >= max_events_) {
    ++autopsy_.events_dropped;
    return -1;
  }
  FlightEvent ev;
  ev.kind = kind;
  ev.id = static_cast<int32_t>(autopsy_.events.size());
  // The causal invariant the export promises: parent strictly precedes
  // its child. A dangling parent (dropped by the cap, or -1 on a
  // non-root event) reattaches to the root.
  ev.parent = (parent >= 0 && parent < ev.id) ? parent : (ev.id == 0 ? -1 : 0);
  ev.t = t;
  autopsy_.events.push_back(ev);
  return ev.id;
}

FlightEvent* FlightBuilder::event(int32_t id) {
  if (id < 0 || static_cast<size_t>(id) >= autopsy_.events.size()) return nullptr;
  return &autopsy_.events[static_cast<size_t>(id)];
}

void FlightBuilder::note_probe_event(uint32_t node, int32_t id) {
  if (id >= 0) probe_event_[node] = id;
}

int32_t FlightBuilder::probe_event_of(uint32_t node) const {
  const auto it = probe_event_.find(node);
  if (it != probe_event_.end()) return it->second;
  return autopsy_.events.empty() ? -1 : 0;
}

bool FlightBuilder::take_walk_choice(double* rel, bool* via_supernode) {
  if (!pending_choice_) return false;
  pending_choice_ = false;
  if (rel != nullptr) *rel = pending_rel_;
  if (via_supernode != nullptr) *via_supernode = pending_supernode_;
  return true;
}

QueryAutopsy FlightBuilder::finish(const char* reason, const FlightCost& cost,
                                   double t) {
  autopsy_.reason = reason;
  autopsy_.cost = cost;
  autopsy_.completed_at = t;
  active_ = false;
  probe_event_.clear();
  return std::move(autopsy_);
}

// --- FlightRecorder ---------------------------------------------------

void FlightRecorder::set_config(FlightRecorderConfig config) {
  std::lock_guard lock(mutex_);
  config_ = config;
}

FlightRecorderConfig FlightRecorder::config() const {
  std::lock_guard lock(mutex_);
  return config_;
}

uint64_t FlightRecorder::next_ordinal() {
  std::lock_guard lock(mutex_);
  return next_ordinal_++;
}

void FlightRecorder::submit(QueryAutopsy&& autopsy) {
  std::lock_guard lock(mutex_);
  ++queries_seen_;
  events_dropped_ += autopsy.events_dropped;

  const bool sampled = config_.sample_capacity > 0 && config_.sample_every > 0 &&
                       autopsy.ordinal % config_.sample_every == 0;
  const bool want_worst = config_.worst_k > 0;

  if (want_worst) {
    if (worst_.size() < config_.worst_k) {
      worst_.push_back(autopsy);  // copy: the sample ring may also want it
    } else {
      // The retained query easiest to give up: cheapest, latest-issued.
      auto least = std::min_element(
          worst_.begin(), worst_.end(),
          [](const QueryAutopsy& a, const QueryAutopsy& b) {
            const uint64_t ca = a.cost.total_messages();
            const uint64_t cb = b.cost.total_messages();
            return ca != cb ? ca < cb : a.ordinal > b.ordinal;
          });
      // Strictly worse replaces; ties keep the earlier-issued query so
      // the set is a deterministic function of the submission sequence.
      if (autopsy.cost.total_messages() > least->cost.total_messages()) {
        *least = autopsy;
      }
    }
  }
  if (sampled) {
    sampled_.push_back(std::move(autopsy));
    while (sampled_.size() > config_.sample_capacity) sampled_.pop_front();
  }
}

uint64_t FlightRecorder::queries_seen() const {
  std::lock_guard lock(mutex_);
  return queries_seen_;
}

uint64_t FlightRecorder::events_dropped() const {
  std::lock_guard lock(mutex_);
  return events_dropped_;
}

std::vector<FlightRecorder::Retained> FlightRecorder::retained() const {
  std::lock_guard lock(mutex_);
  std::map<uint64_t, Retained> merged;
  for (const QueryAutopsy& a : worst_) {
    merged.emplace(a.ordinal, Retained{a, "worst"});
  }
  for (const QueryAutopsy& a : sampled_) {
    auto [it, inserted] = merged.emplace(a.ordinal, Retained{a, "sampled"});
    if (!inserted) it->second.label = "worst+sampled";
  }
  std::vector<Retained> out;
  out.reserve(merged.size());
  for (auto& [ordinal, r] : merged) out.push_back(std::move(r));
  return out;
}

size_t FlightRecorder::retained_count() const { return retained().size(); }

uint64_t FlightRecorder::queries_dropped() const {
  const size_t kept = retained().size();
  std::lock_guard lock(mutex_);
  return queries_seen_ - std::min<uint64_t>(queries_seen_, kept);
}

void FlightRecorder::reset() {
  std::lock_guard lock(mutex_);
  next_ordinal_ = 0;
  queries_seen_ = 0;
  events_dropped_ = 0;
  worst_.clear();
  sampled_.clear();
}

FlightRecorder& flight() {
  static FlightRecorder recorder;
  return recorder;
}

namespace {
thread_local FlightBuilder* g_flight_sink = nullptr;
}  // namespace

FlightBuilder* flight_sink() { return g_flight_sink; }

FlightScope::FlightScope(FlightBuilder* builder) : previous_(g_flight_sink) {
  g_flight_sink = builder;
}

FlightScope::~FlightScope() { g_flight_sink = previous_; }

// --- Exporters --------------------------------------------------------

namespace {

void write_event_json(const FlightEvent& ev, std::ostream& os) {
  os << "      {\"id\": " << ev.id << ", \"parent\": " << ev.parent
     << ", \"kind\": \"" << flight_event_kind_name(ev.kind)
     << "\", \"t\": " << json_number(ev.t);
  switch (ev.kind) {
    case FlightEventKind::kIssued:
      os << ", \"node\": " << ev.from;
      break;
    case FlightEventKind::kProbe:
      os << ", \"node\": " << ev.from << ", \"docs\": " << ev.count
         << ", \"target\": " << (ev.flag != 0 ? "true" : "false");
      break;
    case FlightEventKind::kWalkHop:
      os << ", \"from\": " << ev.from << ", \"to\": " << ev.to
         << ", \"rel\": " << json_number(ev.value)
         << ", \"supernode\": " << (ev.flag != 0 ? "true" : "false")
         << ", \"bytes\": " << ev.bytes;
      break;
    case FlightEventKind::kFloodSend:
      os << ", \"from\": " << ev.from << ", \"to\": " << ev.to
         << ", \"bytes\": " << ev.bytes;
      break;
    case FlightEventKind::kCacheProbe:
      os << ", \"node\": " << ev.from << ", \"outcome\": \""
         << cache_outcome_label(ev.flag) << "\", \"docs\": " << ev.count;
      break;
    case FlightEventKind::kFaultDrop:
    case FlightEventKind::kFaultBlock:
    case FlightEventKind::kFaultDup:
      os << ", \"from\": " << ev.from << ", \"to\": " << ev.to
         << ", \"channel\": \"" << channel_label(ev.channel) << "\"";
      break;
    case FlightEventKind::kFaultDelay:
      os << ", \"from\": " << ev.from << ", \"to\": " << ev.to
         << ", \"channel\": \"" << channel_label(ev.channel)
         << "\", \"delay\": " << json_number(ev.value);
      break;
  }
  os << "}";
}

void write_autopsy_entry(const FlightRecorder::Retained& r, std::ostream& os) {
  const QueryAutopsy& a = r.autopsy;
  os << "    {\"query\": {\"ordinal\": " << a.ordinal << ", \"guid\": " << a.guid
     << ", \"initiator\": " << a.initiator << ", \"engine\": \""
     << (a.async ? "async" : "sync") << "\", \"issued_at\": "
     << json_number(a.issued_at) << ", \"completed_at\": "
     << json_number(a.completed_at) << ",\n"
     << "      \"reason\": " << json_quote(a.reason) << ", \"retained\": "
     << json_quote(r.label) << ",\n"
     << "      \"cost\": {\"probes\": " << a.cost.probes << ", \"walk_steps\": "
     << a.cost.walk_steps << ", \"flood_messages\": " << a.cost.flood_messages
     << ", \"cache_hits\": " << a.cost.cache_hits << ", \"targets\": "
     << a.cost.targets << ", \"retrieved_docs\": " << a.cost.retrieved_docs
     << ", \"rel_evals\": " << a.cost.rel_evals << ", \"rel_memo_hits\": "
     << a.cost.rel_memo_hits << ", \"bytes_sent\": " << a.cost.bytes_sent
     << "},\n"
     << "      \"events_recorded\": " << a.events_recorded
     << ", \"events_dropped\": " << a.events_dropped << "},\n"
     << "     \"events\": [\n";
  for (size_t i = 0; i < a.events.size(); ++i) {
    write_event_json(a.events[i], os);
    os << (i + 1 < a.events.size() ? ",\n" : "\n");
  }
  os << "    ]}";
}

}  // namespace

void write_autopsy_json(const FlightRecorder& recorder, std::ostream& os) {
  const auto kept = recorder.retained();
  const uint64_t seen = recorder.queries_seen();
  const uint64_t dropped = seen - std::min<uint64_t>(seen, kept.size());
  const uint64_t events_dropped = recorder.events_dropped();
  const auto config = recorder.config();
  // Retention is policy, but it is never silent: the header discloses
  // every drop, and a lossy export announces itself on the log too.
  if (dropped > 0 || events_dropped > 0) {
    GES_INFO << "autopsy export is lossy by retention policy: " << dropped
             << " of " << seen << " queries dropped, " << events_dropped
             << " events over the per-query cap";
  }
  os << "{\n  \"schema\": \"ges.autopsy.v1\",\n"
     << "  \"queries_seen\": " << seen << ",\n"
     << "  \"queries_retained\": " << kept.size() << ",\n"
     << "  \"queries_dropped\": " << dropped << ",\n"
     << "  \"events_dropped\": " << events_dropped << ",\n"
     << "  \"config\": {\"worst_k\": " << config.worst_k
     << ", \"sample_capacity\": " << config.sample_capacity
     << ", \"sample_every\": " << config.sample_every
     << ", \"max_events_per_query\": " << config.max_events_per_query << "},\n"
     << "  \"autopsies\": [\n";
  for (size_t i = 0; i < kept.size(); ++i) {
    write_autopsy_entry(kept[i], os);
    os << (i + 1 < kept.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

void write_autopsy_chrome_trace(const FlightRecorder& recorder, std::ostream& os) {
  const auto kept = recorder.retained();
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  for (const auto& r : kept) {
    const QueryAutopsy& a = r.autopsy;
    if (!first) os << ",\n";
    first = false;
    // The query itself is a complete span on its own ordinal lane; every
    // causal event nests inside it as an instant, so Perfetto renders
    // the expansion under the query it belongs to.
    os << "  {\"name\": \"query\", \"cat\": \"autopsy\", \"ph\": \"X\", \"pid\": 1"
       << ", \"tid\": " << a.ordinal << ", \"ts\": " << json_number(a.issued_at * 1e6)
       << ", \"dur\": " << json_number((a.completed_at - a.issued_at) * 1e6)
       << ", \"args\": {\"ordinal\": " << a.ordinal << ", \"initiator\": "
       << a.initiator << ", \"probes\": " << a.cost.probes << ", \"walk_steps\": "
       << a.cost.walk_steps << ", \"flood_messages\": " << a.cost.flood_messages
       << "}}";
    for (const FlightEvent& ev : a.events) {
      os << ",\n  {\"name\": \"" << flight_event_kind_name(ev.kind)
         << "\", \"cat\": \"autopsy\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 1"
         << ", \"tid\": " << a.ordinal << ", \"ts\": " << json_number(ev.t * 1e6)
         << ", \"args\": {\"id\": " << ev.id << ", \"parent\": " << ev.parent
         << ", \"from\": " << ev.from << ", \"to\": " << ev.to << "}}";
    }
  }
  os << (first ? "" : "\n") << "]}\n";
}

}  // namespace ges::obs
