#include "obs/export.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ges::obs {

namespace {

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}

}  // namespace

void write_metrics_json(const MetricsSnapshot& snapshot, std::ostream& os) {
  os << "{\n  \"schema\": \"ges.metrics.v1\",\n  \"metrics\": [\n";
  for (size_t i = 0; i < snapshot.metrics.size(); ++i) {
    const MetricSnapshot& m = snapshot.metrics[i];
    os << "    {\"name\": " << quoted(m.name) << ", \"kind\": \""
       << metric_kind_name(m.kind) << "\"";
    switch (m.kind) {
      case MetricKind::kCounter:
        os << ", \"value\": " << m.value;
        break;
      case MetricKind::kGauge:
        os << ", \"value\": " << number(m.gauge);
        break;
      case MetricKind::kHistogram: {
        os << ", \"lo\": " << number(m.lo) << ", \"hi\": " << number(m.hi)
           << ", \"count\": " << m.value << ", \"buckets\": [";
        for (size_t b = 0; b < m.buckets.size(); ++b) {
          if (b > 0) os << ", ";
          os << m.buckets[b];
        }
        os << "]";
        break;
      }
    }
    os << "}" << (i + 1 < snapshot.metrics.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

std::string prometheus_name(std::string_view name) {
  std::string out = "ges_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

namespace {

/// Prometheus sample value. Unlike JSON, the text exposition has
/// literals for every IEEE special: "null" would make the whole scrape
/// unparsable, so non-finite gauges must spell NaN / +Inf / -Inf.
std::string prom_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return number(v);
}

/// Escaping inside label values: backslash, double-quote and newline
/// (exposition format rules; everything else passes through verbatim).
std::string prom_label_value(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

/// Escaping inside HELP text: backslash and newline only (quotes are
/// legal there).
std::string prom_help_text(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

}  // namespace

void write_prometheus(const MetricsSnapshot& snapshot, std::ostream& os) {
  for (const MetricSnapshot& m : snapshot.metrics) {
    const std::string name = prometheus_name(m.name);
    // The HELP line carries the registry name, which the sanitized
    // Prometheus name loses ("p2p.walk.hops" -> "ges_p2p_walk_hops").
    os << "# HELP " << name << " GES registry metric "
       << prom_help_text(m.name) << "\n";
    switch (m.kind) {
      case MetricKind::kCounter:
        os << "# TYPE " << name << " counter\n" << name << " " << m.value << "\n";
        break;
      case MetricKind::kGauge:
        os << "# TYPE " << name << " gauge\n" << name << " "
           << prom_number(m.gauge) << "\n";
        break;
      case MetricKind::kHistogram: {
        os << "# TYPE " << name << " histogram\n";
        uint64_t cumulative = 0;
        const double width =
            (m.hi - m.lo) / static_cast<double>(m.buckets.empty() ? 1 : m.buckets.size());
        for (size_t b = 0; b < m.buckets.size(); ++b) {
          cumulative += m.buckets[b];
          // The last finite edge is the histogram's upper bound exactly;
          // accumulating lo + width*(b+1) drifts off m.hi by an ulp or
          // two, splitting series between scrapes of equal histograms.
          const double le = b + 1 == m.buckets.size()
                                ? m.hi
                                : m.lo + width * static_cast<double>(b + 1);
          os << name << "_bucket{le=\"" << prom_label_value(prom_number(le))
             << "\"} " << cumulative << "\n";
        }
        os << name << "_bucket{le=\"+Inf\"} " << m.value << "\n"
           << name << "_count " << m.value << "\n";
        break;
      }
    }
  }
}

}  // namespace ges::obs
