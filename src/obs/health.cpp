#include "obs/health.hpp"

#include <algorithm>

#include "obs/telemetry.hpp"
#include "util/logging.hpp"

namespace ges::obs {

const char* health_anomaly_name(HealthAnomaly kind) {
  switch (kind) {
    case HealthAnomaly::kStaleHeartbeat: return "stale_heartbeat";
    case HealthAnomaly::kDegreeOverflow: return "degree_overflow";
    case HealthAnomaly::kDegreeUnderflow: return "degree_underflow";
    case HealthAnomaly::kCacheOverflow: return "cache_overflow";
    case HealthAnomaly::kBackoffStuck: return "backoff_stuck";
  }
  return "?";
}

void HealthMonitor::set_provider(Provider provider) {
  provider_ = std::move(provider);
}

void HealthMonitor::set_thresholds(HealthThresholds thresholds) {
  thresholds_ = thresholds;
}

void HealthMonitor::set_max_anomalies(size_t max_anomalies) {
  max_anomalies_ = std::max<size_t>(1, max_anomalies);
}

void HealthMonitor::emit(double t, const NodeHealth& h, HealthAnomaly kind,
                         double value, double threshold) {
  ++anomalies_seen_;
  ++last_.anomalies;
  if (anomalies_.size() < max_anomalies_) {
    anomalies_.push_back({t, h.node, kind, value, threshold});
  } else if (anomalies_seen_ - 1 == max_anomalies_) {
    // First overflow: disclose once, keep counting.
    GES_INFO << "health anomaly list full (" << max_anomalies_
             << "); further anomalies are counted but not retained";
  }
#if GES_OBS
  if (enabled()) {
    // Sweeps run from serial contexts (round boundaries), so structured
    // trace instants here are deterministic.
    global().trace().record_instant(
        health_anomaly_name(kind), "health", t, h.node,
        {{"value", value}, {"threshold", threshold}});
    global().metrics().counter(std::string("p2p.health.") +
                               health_anomaly_name(kind)).add(1);
    GES_COUNT("p2p.health.anomalies", 1);
  }
#endif
}

void HealthMonitor::sweep(double t) {
  if (!provider_) return;
  ++sweeps_;
  scratch_.clear();
  provider_(scratch_);

  last_ = HealthSummary{};
  last_.t = t;
  last_.nodes = scratch_.size();
  for (const NodeHealth& h : scratch_) {
    if (!h.alive) continue;
    ++last_.alive;
    if (h.heartbeat_staleness >= 0.0) {
      last_.max_staleness = std::max(last_.max_staleness, h.heartbeat_staleness);
      if (thresholds_.max_heartbeat_staleness > 0.0 &&
          h.heartbeat_staleness > thresholds_.max_heartbeat_staleness) {
        emit(t, h, HealthAnomaly::kStaleHeartbeat, h.heartbeat_staleness,
             thresholds_.max_heartbeat_staleness);
      }
    }
    if (h.degree_target > 0) {
      const double target = static_cast<double>(h.degree_target);
      if (thresholds_.degree_overshoot > 0.0 &&
          static_cast<double>(h.degree) > target * thresholds_.degree_overshoot) {
        ++last_.degree_overflows;
        emit(t, h, HealthAnomaly::kDegreeOverflow, h.degree,
             target * thresholds_.degree_overshoot);
      }
      if (thresholds_.degree_underfill > 0.0 &&
          static_cast<double>(h.degree) < target * thresholds_.degree_underfill) {
        emit(t, h, HealthAnomaly::kDegreeUnderflow, h.degree,
             target * thresholds_.degree_underfill);
      }
    }
    last_.max_cache_occupancy =
        std::max(last_.max_cache_occupancy, h.cache_occupancy);
    if (thresholds_.max_cache_occupancy > 0.0 &&
        h.cache_occupancy > thresholds_.max_cache_occupancy) {
      emit(t, h, HealthAnomaly::kCacheOverflow, h.cache_occupancy,
           thresholds_.max_cache_occupancy);
    }
    if (h.in_backoff) {
      ++last_.nodes_in_backoff;
      if (thresholds_.max_backoff_strikes > 0 &&
          h.backoff_strikes >= thresholds_.max_backoff_strikes) {
        emit(t, h, HealthAnomaly::kBackoffStuck, h.backoff_strikes,
             thresholds_.max_backoff_strikes);
      }
    }
  }
  // Aggregate gauges only: per-node gauge families would grow the
  // registry with the network, and the per-node detail already lives in
  // the anomaly events.
  GES_GAUGE_SET("p2p.health.alive_nodes", last_.alive);
  GES_GAUGE_SET("p2p.health.max_heartbeat_staleness", last_.max_staleness);
  GES_GAUGE_SET("p2p.health.max_cache_occupancy", last_.max_cache_occupancy);
  GES_GAUGE_SET("p2p.health.nodes_in_backoff", last_.nodes_in_backoff);
  GES_GAUGE_SET("p2p.health.anomalies_last_sweep", last_.anomalies);
}

void HealthMonitor::reset() {
  sweeps_ = 0;
  anomalies_seen_ = 0;
  last_ = HealthSummary{};
  anomalies_.clear();
}

}  // namespace ges::obs
