#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace ges::obs {

namespace {

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}

}  // namespace

TraceRecorder::TraceRecorder(size_t capacity) : capacity_(capacity) {
  GES_CHECK(capacity > 0);
  ring_.reserve(std::min<size_t>(capacity, 1024));
}

void TraceRecorder::set_capacity(size_t capacity) {
  GES_CHECK(capacity > 0);
  std::lock_guard lock(mutex_);
  capacity_ = capacity;
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
}

size_t TraceRecorder::capacity() const {
  std::lock_guard lock(mutex_);
  return capacity_;
}

void TraceRecorder::record(TraceEvent event) {
  std::lock_guard lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  // Full: overwrite the oldest retained event.
  ring_[next_] = std::move(event);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

void TraceRecorder::record_complete(std::string name, std::string category,
                                    double ts, double dur, uint64_t track,
                                    std::vector<std::pair<std::string, double>> args) {
  TraceEvent ev;
  ev.type = TraceEvent::Type::kComplete;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.ts = ts;
  ev.dur = dur;
  ev.track = track;
  ev.args = std::move(args);
  record(std::move(ev));
}

void TraceRecorder::record_instant(std::string name, std::string category,
                                   double ts, uint64_t track,
                                   std::vector<std::pair<std::string, double>> args) {
  TraceEvent ev;
  ev.type = TraceEvent::Type::kInstant;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.ts = ts;
  ev.track = track;
  ev.args = std::move(args);
  record(std::move(ev));
}

size_t TraceRecorder::size() const {
  std::lock_guard lock(mutex_);
  return ring_.size();
}

size_t TraceRecorder::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void TraceRecorder::clear() {
  std::lock_guard lock(mutex_);
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Oldest retained event first: once the ring wrapped, that is next_.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void TraceRecorder::export_chrome_trace(std::ostream& os) const {
  const auto evs = events();
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  for (size_t i = 0; i < evs.size(); ++i) {
    const TraceEvent& ev = evs[i];
    os << "  {\"name\": " << json_quote(ev.name) << ", \"cat\": "
       << json_quote(ev.category) << ", \"pid\": 1, \"tid\": " << ev.track
       << ", \"ts\": " << json_number(ev.ts * 1e6);
    if (ev.type == TraceEvent::Type::kComplete) {
      os << ", \"ph\": \"X\", \"dur\": " << json_number(ev.dur * 1e6);
    } else {
      os << ", \"ph\": \"i\", \"s\": \"t\"";
    }
    if (!ev.args.empty()) {
      os << ", \"args\": {";
      for (size_t a = 0; a < ev.args.size(); ++a) {
        if (a > 0) os << ", ";
        os << json_quote(ev.args[a].first) << ": " << json_number(ev.args[a].second);
      }
      os << "}";
    }
    os << "}" << (i + 1 < evs.size() ? ",\n" : "\n");
  }
  os << "]}\n";
}

}  // namespace ges::obs
