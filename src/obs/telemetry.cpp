#include "obs/telemetry.hpp"

#include <cstdlib>
#include <cstring>

namespace ges::obs {

namespace detail {

namespace {
bool env_telemetry_on() {
  const char* env = std::getenv("GES_TELEMETRY");
  return env != nullptr && std::strcmp(env, "0") != 0 && env[0] != '\0';
}
}  // namespace

std::atomic<bool> g_enabled{env_telemetry_on()};

}  // namespace detail

void Telemetry::set_sim_clock(std::function<double()> clock) {
  std::lock_guard lock(clock_mutex_);
  clock_ = std::move(clock);
}

double Telemetry::now() const {
  std::lock_guard lock(clock_mutex_);
  return clock_ ? clock_() : 0.0;
}

void Telemetry::reset() {
  metrics_.reset();
  trace_.clear();
}

Telemetry& global() {
  static Telemetry instance;
  return instance;
}

Span::Span(const char* name, const char* category, uint64_t track)
    : active_(enabled()) {
  if (!active_) return;
  event_.type = TraceEvent::Type::kComplete;
  event_.name = name;
  event_.category = category;
  event_.track = track;
  event_.ts = global().now();
}

Span::~Span() {
  if (!active_) return;
  // Enable state may have flipped mid-span; record iff we started one.
  event_.dur = global().now() - event_.ts;
  if (event_.dur < 0.0) event_.dur = 0.0;
  global().trace().record(std::move(event_));
}

}  // namespace ges::obs
