#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace ges::obs {

/// One sim-time snapshot of the registry's counters and gauges.
/// Histograms are deliberately left out of the stream: their fixed
/// buckets make per-sample deltas bulky, and the convergence curves the
/// stream exists for (recall proxy, cache hit-rate, degree drift, live
/// timers) are all counters or gauges. The end-of-run metrics.json still
/// carries the full histogram state.
struct TimeseriesSample {
  double t = 0.0;
  std::vector<std::pair<std::string, uint64_t>> counters;  // sorted by name
  std::vector<std::pair<std::string, double>> gauges;      // sorted by name
};

/// Sim-time metrics sampler: the scenario layer schedules a periodic
/// event on its EventQueue that calls sample() every `interval` sim
/// seconds, turning the registry's end-of-run totals into a convergence
/// curve. Bounded by a FIFO ring of `max_samples`; evicted samples are
/// counted and disclosed in the export, never silently lost.
///
/// Observation-only and deterministic: sample() reads a snapshot (a
/// barrier over the sharded cells) and never touches simulation state,
/// and sim-timestamps make two same-seed runs export byte-identical
/// streams. Call from serial contexts only (an event-queue handler is).
class TimeseriesSampler {
 public:
  /// `interval` is recorded for the export header; `max_samples` bounds
  /// the ring (minimum 1).
  void configure(double interval, size_t max_samples);

  double interval() const { return interval_; }
  size_t max_samples() const { return max_samples_; }

  /// Snapshot `registry` at sim time `t`. Sample times must be
  /// nondecreasing (they come from one event queue's clock).
  void sample(const MetricsRegistry& registry, double t);

  uint64_t samples_taken() const { return taken_; }
  uint64_t samples_dropped() const { return taken_ - samples_.size(); }
  const std::deque<TimeseriesSample>& samples() const { return samples_; }

  void reset();

  /// ges.timeseries.v1: the retained samples plus the retention
  /// disclosure. Counters appear from the sample after their first
  /// increment onward (registration is lazy) and are nondecreasing
  /// across samples; sample times are strictly increasing.
  void write_json(std::ostream& os) const;

 private:
  double interval_ = 0.0;
  size_t max_samples_ = 512;
  uint64_t taken_ = 0;
  std::deque<TimeseriesSample> samples_;
};

}  // namespace ges::obs
