#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace ges::obs {

/// Stable machine-readable metrics dump, schema "ges.metrics.v1":
///   {"schema": "ges.metrics.v1", "metrics": [
///     {"name": "...", "kind": "counter", "value": N},
///     {"name": "...", "kind": "gauge", "value": X},
///     {"name": "...", "kind": "histogram", "lo": A, "hi": B,
///      "count": N, "buckets": [...]} ]}
/// Metrics appear sorted by name; two identical snapshots serialize to
/// byte-identical documents (validated by scripts/check_telemetry_json.py).
void write_metrics_json(const MetricsSnapshot& snapshot, std::ostream& os);

/// Prometheus text exposition format. Metric names are sanitized
/// ("p2p.walk.hops" -> "ges_p2p_walk_hops"); every metric carries a
/// HELP line naming the original registry metric; histograms emit
/// cumulative _bucket{le="..."} series (last finite edge exactly the
/// histogram's upper bound) plus _count. Non-finite gauges are spelled
/// NaN / +Inf / -Inf per the exposition grammar, never "null".
void write_prometheus(const MetricsSnapshot& snapshot, std::ostream& os);

/// The sanitized Prometheus name for a registry metric name.
std::string prometheus_name(std::string_view name);

}  // namespace ges::obs
