#pragma once

#include <atomic>
#include <functional>
#include <mutex>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

/// Compile-time switch for the instrumentation macros below. On by
/// default; configure with -DGES_OBS=0 (CMake option GES_OBS_INSTRUMENT)
/// to compile every GES_COUNT / GES_SPAN / ... call site away entirely.
#ifndef GES_OBS
#define GES_OBS 1
#endif

namespace ges::obs {

namespace detail {
/// Process-wide runtime switch, initialized from GES_TELEMETRY=1.
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Fast runtime gate: one relaxed atomic load. Every instrumentation
/// macro checks this before touching the registry or recorder, so a
/// disabled run pays (at most) this load per call site.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// The process-wide telemetry context: a metrics registry, a trace
/// recorder, and a sim-time clock for spans. Observation only — nothing
/// here feeds back into the simulation (no RNG draws, no protocol state),
/// so enabling telemetry never changes a trace or an overlay.
class Telemetry {
 public:
  MetricsRegistry& metrics() { return metrics_; }
  TraceRecorder& trace() { return trace_; }

  void set_enabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

  /// Clock used to timestamp spans/instants, normally an EventQueue's
  /// now() (ScenarioRunner wires this). Null clock reads as 0.0.
  void set_sim_clock(std::function<double()> clock);
  void clear_sim_clock() { set_sim_clock({}); }
  double now() const;

  /// Zero all metric values and drop all trace events (registrations and
  /// outstanding handles survive). Call between deterministic runs.
  void reset();

 private:
  MetricsRegistry metrics_;
  TraceRecorder trace_;
  mutable std::mutex clock_mutex_;
  std::function<double()> clock_;
};

/// The process-wide instance the instrumentation macros record into.
Telemetry& global();

/// RAII span: reads the sim clock on construction, records a complete
/// trace event on destruction. Inert when telemetry is disabled (or under
/// GES_OBS=0, where GES_SPAN declares a NullSpan instead).
class Span {
 public:
  Span(const char* name, const char* category, uint64_t track);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void arg(const char* key, double value) {
    if (active_) event_.args.emplace_back(key, value);
  }
  void set_track(uint64_t track) { event_.track = track; }

 private:
  bool active_;
  TraceEvent event_;
};

/// GES_SPAN's stand-in when GES_OBS=0: same surface, no code.
class NullSpan {
 public:
  void arg(const char*, double) {}
  void set_track(uint64_t) {}
};

}  // namespace ges::obs

#if GES_OBS

/// Bump a named counter by n. The handle is registered once per call
/// site (function-local static) on first enabled hit; afterwards the
/// cost is one relaxed load + one relaxed fetch_add. Safe from parallel
/// phases (per-thread sharded cells).
#define GES_COUNT(name, n)                                            \
  do {                                                                \
    if (::ges::obs::enabled()) {                                      \
      static ::ges::obs::Counter ges_obs_counter_ =                   \
          ::ges::obs::global().metrics().counter(name);               \
      ges_obs_counter_.add(static_cast<uint64_t>(n));                 \
    }                                                                 \
  } while (0)

/// Record x into a named fixed-bucket histogram. Parallel-safe.
#define GES_HIST(name, lo, hi, buckets, x)                            \
  do {                                                                \
    if (::ges::obs::enabled()) {                                      \
      static ::ges::obs::Histogram ges_obs_hist_ =                    \
          ::ges::obs::global().metrics().histogram(name, lo, hi, buckets); \
      ges_obs_hist_.add(static_cast<double>(x));                      \
    }                                                                 \
  } while (0)

/// Set a named gauge. Serial contexts only (last write wins).
#define GES_GAUGE_SET(name, v)                                        \
  do {                                                                \
    if (::ges::obs::enabled()) {                                      \
      static ::ges::obs::Gauge ges_obs_gauge_ =                       \
          ::ges::obs::global().metrics().gauge(name);                 \
      ges_obs_gauge_.set(static_cast<double>(v));                     \
    }                                                                 \
  } while (0)

/// Declare a sim-time span covering the rest of the scope. Serial
/// contexts only (the trace must be order-deterministic).
#define GES_SPAN(var, name, category, track) \
  ::ges::obs::Span var((name), (category), static_cast<uint64_t>(track))

/// Record a zero-duration instant event at the current sim time. Serial
/// contexts only.
#define GES_INSTANT(name, category, track)                            \
  do {                                                                \
    if (::ges::obs::enabled()) {                                      \
      ::ges::obs::global().trace().record_instant(                    \
          (name), (category), ::ges::obs::global().now(),             \
          static_cast<uint64_t>(track));                              \
    }                                                                 \
  } while (0)

/// Compile code only when instrumentation is built in (for blocks that
/// need more than the one-line macros, e.g. spans with computed args).
#define GES_OBS_ONLY(...) __VA_ARGS__

#else  // !GES_OBS

#define GES_COUNT(name, n) \
  do {                     \
  } while (0)
#define GES_HIST(name, lo, hi, buckets, x) \
  do {                                     \
  } while (0)
#define GES_GAUGE_SET(name, v) \
  do {                         \
  } while (0)
#define GES_SPAN(var, name, category, track) \
  [[maybe_unused]] ::ges::obs::NullSpan var {}
#define GES_INSTANT(name, category, track) \
  do {                                     \
  } while (0)
#define GES_OBS_ONLY(...)

#endif  // GES_OBS
