#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace ges::util {

/// Value of an environment variable, if set and non-empty.
std::optional<std::string> env_string(const char* name);

/// Environment variable parsed as an integer; fallback when unset/invalid.
int64_t env_int(const char* name, int64_t fallback);

/// Environment variable parsed as a double; fallback when unset/invalid.
double env_double(const char* name, double fallback);

/// Experiment scale selected via GES_SCALE: "tiny", "small" (default for
/// tests), "medium" (default for benches), or "full" (the paper's 1,880
/// nodes / ~80k documents).
enum class Scale { kTiny, kSmall, kMedium, kFull };

/// Parse GES_SCALE, defaulting to the given scale.
Scale env_scale(Scale fallback);

const char* scale_name(Scale s);

}  // namespace ges::util
