#include "util/env.hpp"

#include <cstdlib>

namespace ges::util {

std::optional<std::string> env_string(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

int64_t env_int(const char* name, int64_t fallback) {
  const auto s = env_string(name);
  if (!s) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(s->c_str(), &end, 10);
  if (end == s->c_str() || *end != '\0') return fallback;
  return v;
}

double env_double(const char* name, double fallback) {
  const auto s = env_string(name);
  if (!s) return fallback;
  char* end = nullptr;
  const double v = std::strtod(s->c_str(), &end);
  if (end == s->c_str() || *end != '\0') return fallback;
  return v;
}

Scale env_scale(Scale fallback) {
  const auto s = env_string("GES_SCALE");
  if (!s) return fallback;
  if (*s == "tiny") return Scale::kTiny;
  if (*s == "small") return Scale::kSmall;
  if (*s == "medium") return Scale::kMedium;
  if (*s == "full") return Scale::kFull;
  return fallback;
}

const char* scale_name(Scale s) {
  switch (s) {
    case Scale::kTiny: return "tiny";
    case Scale::kSmall: return "small";
    case Scale::kMedium: return "medium";
    case Scale::kFull: return "full";
  }
  return "?";
}

}  // namespace ges::util
