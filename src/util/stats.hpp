#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace ges::util {

/// Streaming accumulator for mean / variance / extrema (Welford's method).
class Accumulator {
 public:
  void add(double x);

  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// p-th percentile of the samples using linear interpolation between
/// closest ranks. The input is copied and sorted; NaN samples are
/// discarded first (they have no rank), p is clamped into [0, 100]
/// (p <= 0 -> min, p >= 100 -> max, NaN p -> min), and an input with no
/// valid samples returns 0.
double percentile(std::vector<double> samples, double p);

/// Empirical CDF: given samples, returns (value, cumulative fraction) pairs
/// sorted by value, one pair per distinct sample value. NaN samples are
/// discarded; fractions are over the valid samples only.
std::vector<std::pair<double, double>> empirical_cdf(std::vector<double> samples);

/// Fixed-width histogram over [lo, hi) with the given number of bins.
/// Samples outside the range (including ±inf) are clamped into the
/// boundary bins; NaN samples are ignored (counted in nan_count()).
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void add(double x);
  size_t bin_count(size_t bin) const;
  size_t bins() const { return counts_.size(); }
  size_t total() const { return total_; }
  size_t nan_count() const { return nan_count_; }
  double bin_lo(size_t bin) const;
  double bin_hi(size_t bin) const;

  /// Add `other`'s counts into this histogram (the reduction step for
  /// per-thread histogram cells). Both histograms must have identical
  /// [lo, hi) ranges and bin counts.
  void merge(const Histogram& other);

 private:
  double lo_, hi_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
  size_t nan_count_ = 0;
};

}  // namespace ges::util
