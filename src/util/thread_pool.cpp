#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ges::util {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t chunks = std::min(n, size() * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t lo = c * chunk_size;
    const size_t hi = std::min(n, lo + chunk_size);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

void for_each_index(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn) {
  if (pool == nullptr) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->parallel_for(n, fn);
}

}  // namespace ges::util
