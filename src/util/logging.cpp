#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ges::util {

namespace {

LogLevel initial_level() {
  const char* env = std::getenv("GES_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { level_storage().store(level); }

LogLevel log_level() { return level_storage().load(); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::string line = "[ges ";
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace ges::util
