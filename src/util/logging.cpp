#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

namespace ges::util {

namespace {

LogLevel initial_level() {
  // GES_LOG_LEVEL is the documented variable; GES_LOG predates it and
  // stays honoured so existing wrappers keep working.
  for (const char* var : {"GES_LOG_LEVEL", "GES_LOG"}) {
    const char* env = std::getenv(var);
    if (env == nullptr) continue;
    if (const auto parsed = parse_log_level(env)) return *parsed;
  }
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

void default_sink(LogLevel level, const std::string& message) {
  std::string line = "[ges ";
  line += log_level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

LogSink& sink_storage() {
  static LogSink sink;  // empty = default stderr sink
  return sink;
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off") return LogLevel::kOff;
  return std::nullopt;
}

void set_log_level(LogLevel level) { level_storage().store(level); }

LogLevel log_level() { return level_storage().load(); }

void set_log_sink(LogSink sink) {
  std::lock_guard lock(sink_mutex());
  sink_storage() = std::move(sink);
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  if (level == LogLevel::kOff) return;  // kOff is a threshold, not a level
  std::lock_guard lock(sink_mutex());
  const LogSink& sink = sink_storage();
  if (sink) {
    sink(level, message);
  } else {
    default_sink(level, message);
  }
}

}  // namespace ges::util
