#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

namespace ges::util {

/// Move-only `void()` callable with inline storage: captures up to
/// kInlineCapacity bytes live inside the object itself — no heap
/// allocation on construction, move, or invocation. Larger callables
/// (or over-aligned ones, or those without a noexcept move) fall back to
/// a single heap allocation, moved around as one pointer.
///
/// This is the event-arena companion type: the discrete-event scheduler
/// stores one UniqueFunction per slab slot, so the common small-lambda
/// handler ([this, node]-style captures) schedules with zero mallocs,
/// where std::function heap-allocated every closure.
class UniqueFunction {
 public:
  static constexpr std::size_t kInlineCapacity = 48;

  UniqueFunction() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, UniqueFunction> &&
                                        std::is_invocable_r_v<void, D&>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      vtable_ = inline_vtable<D>();
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      vtable_ = heap_vtable<D>();
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { move_from(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  void operator()() { vtable_->invoke(storage_); }

  explicit operator bool() const noexcept { return vtable_ != nullptr; }

  /// Destroy the held callable (no-op when empty).
  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  /// Whether the held callable lives in the inline buffer (diagnostics).
  bool is_inline() const noexcept {
    return vtable_ != nullptr && vtable_->inline_storage;
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
    bool inline_storage;
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineCapacity && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static void inline_invoke(void* p) {
    (*static_cast<D*>(p))();
  }
  template <typename D>
  static void inline_relocate(void* from, void* to) noexcept {
    ::new (to) D(std::move(*static_cast<D*>(from)));
    static_cast<D*>(from)->~D();
  }
  template <typename D>
  static void inline_destroy(void* p) noexcept {
    static_cast<D*>(p)->~D();
  }

  template <typename D>
  static void heap_invoke(void* p) {
    (**static_cast<D**>(p))();
  }
  template <typename D>
  static void heap_relocate(void* from, void* to) noexcept {
    ::new (to) D*(*static_cast<D**>(from));
  }
  template <typename D>
  static void heap_destroy(void* p) noexcept {
    delete *static_cast<D**>(p);
  }

  template <typename D>
  static const VTable* inline_vtable() {
    static constexpr VTable vt{&inline_invoke<D>, &inline_relocate<D>,
                               &inline_destroy<D>, true};
    return &vt;
  }
  template <typename D>
  static const VTable* heap_vtable() {
    static constexpr VTable vt{&heap_invoke<D>, &heap_relocate<D>,
                               &heap_destroy<D>, false};
    return &vt;
  }

  void move_from(UniqueFunction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(other.storage_, storage_);
      other.vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const VTable* vtable_ = nullptr;
};

}  // namespace ges::util
