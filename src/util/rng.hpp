#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace ges::util {

/// SplitMix64 — used to expand a single 64-bit seed into independent
/// sub-seeds (one per node / query / run) so experiments are deterministic
/// and embarrassingly parallel.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Derive an independent sub-seed from a root seed and a stream index.
/// Equal inputs always yield equal outputs; distinct streams are
/// statistically independent (SplitMix64 is a bijective mixer).
uint64_t derive_seed(uint64_t root, uint64_t stream);

/// xoshiro256** — fast, high-quality, deterministic PRNG used throughout
/// the simulator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x6a09e667f3bcc908ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }
  result_type operator()() { return next(); }

  uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// unbiased multiply-shift rejection method.
  uint64_t below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Standard normal via Box–Muller (no cached spare: stateless per call).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Exponential with rate lambda (> 0).
  double exponential(double lambda);

  /// Poisson-distributed count with the given mean (> 0). Uses inversion
  /// for small means and normal approximation for large ones.
  uint64_t poisson(double mean);

  /// Index drawn from the (unnormalized, non-negative) weights. At least
  /// one weight must be positive.
  size_t weighted_index(const std::vector<double>& weights);

  /// Uniformly random element index for a container of the given size (> 0).
  size_t index(size_t size) { return static_cast<size_t>(below(size)); }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[static_cast<size_t>(below(i))]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> sample_without_replacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
};

/// Zipf(α) sampler over ranks {1..n} using precomputed inverse CDF.
/// Rank r is drawn with probability proportional to 1 / r^α.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double alpha);

  /// Draw a rank in [1, n].
  size_t sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }
  double alpha() const { return alpha_; }

  /// Probability of rank r (1-based).
  double pmf(size_t rank) const;

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i+1)
  double alpha_;
};

}  // namespace ges::util
