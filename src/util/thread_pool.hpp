#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ges::util {

/// Fixed-size thread pool. Tasks are arbitrary callables; parallel_for
/// partitions an index range into per-worker chunks. Exceptions thrown by
/// tasks propagate to the caller of parallel_for / through the future
/// returned by submit.
class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueue a task; the returned future yields its result (or exception).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    auto fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for each i in [0, n), distributed across the pool in
  /// contiguous chunks. Blocks until all iterations finish. The first
  /// exception thrown by any iteration is rethrown here.
  void parallel_for(size_t n, const std::function<void(size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide pool for experiment sweeps (lazily constructed).
ThreadPool& global_pool();

/// Run fn(i) for each i in [0, n): on `pool` when non-null, inline (serial,
/// ascending i) when null. The serial path defines the reference semantics;
/// pool execution must be observationally identical, which callers obtain by
/// keeping iterations independent (disjoint output slots, per-index RNG
/// streams). This is the standard dispatch point for ingest and bring-up
/// code that offers a serial baseline next to its parallel path.
void for_each_index(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn);

}  // namespace ges::util
