#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace ges::util {

uint64_t derive_seed(uint64_t root, uint64_t stream) {
  SplitMix64 mix(root ^ (stream * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
  mix.next();
  return mix.next();
}

namespace {
inline uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 mix(seed);
  for (auto& s : s_) s = mix.next();
  // Avoid the all-zero state (cannot occur from SplitMix64 in practice,
  // but cheap to guarantee).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

uint64_t Rng::next() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

uint64_t Rng::below(uint64_t bound) {
  GES_CHECK(bound > 0);
  // Lemire's method with rejection for exact uniformity.
  __uint128_t m = static_cast<__uint128_t>(next()) * bound;
  auto lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    const uint64_t threshold = (~bound + 1) % bound;  // = 2^64 mod bound
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next()) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::uniform_int(int64_t lo, int64_t hi) {
  GES_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? next() : below(span));
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  GES_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller; u1 in (0,1] so log is finite.
  const double u1 = 1.0 - uniform01();
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) {
  GES_CHECK(lambda > 0.0);
  return -std::log(1.0 - uniform01()) / lambda;
}

uint64_t Rng::poisson(double mean) {
  GES_CHECK(mean > 0.0);
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform01();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction, clamped at zero.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<uint64_t>(draw + 0.5);
}

size_t Rng::weighted_index(const std::vector<double>& weights) {
  GES_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    GES_CHECK(w >= 0.0);
    total += w;
  }
  GES_CHECK(total > 0.0);
  double x = uniform01() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  // Floating point slack: return the last positive-weight index.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;  // unreachable given the checks above
}

std::vector<size_t> Rng::sample_without_replacement(size_t n, size_t k) {
  GES_CHECK(k <= n);
  // Partial Fisher–Yates over an index vector; O(n) setup but simple and
  // exact. Callers sampling from huge n with tiny k should use a set-based
  // approach; our n is at most the network size.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + static_cast<size_t>(below(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

ZipfSampler::ZipfSampler(size_t n, double alpha) : alpha_(alpha) {
  GES_CHECK(n > 0);
  GES_CHECK(alpha >= 0.0);
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t r = 1; r <= n; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r), alpha);
    cdf_[r - 1] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;
}

size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin()) + 1;
}

double ZipfSampler::pmf(size_t rank) const {
  GES_CHECK(rank >= 1 && rank <= cdf_.size());
  const double hi = cdf_[rank - 1];
  const double lo = rank >= 2 ? cdf_[rank - 2] : 0.0;
  return hi - lo;
}

}  // namespace ges::util
