#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/check.hpp"

namespace ges::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  GES_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  GES_CHECK_MSG(cells.size() == header_.size(),
                "row has " << cells.size() << " cells, header has " << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render(const std::string& indent) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = indent;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += row[c];
      line.append(width[c] - row[c].size(), ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };
  std::string out = render_row(header_);
  std::string rule = indent;
  for (size_t c = 0; c < width.size(); ++c) {
    if (c > 0) rule += "  ";
    rule.append(width[c], '-');
  }
  out += rule + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::render_csv() const {
  auto join = [](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += ',';
      line += row[c];
    }
    line += '\n';
    return line;
  };
  std::string out = join(header_);
  for (const auto& row : rows_) out += join(row);
  return out;
}

void Table::print(std::ostream& os) const { os << render(); }

std::string cell(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string cell(size_t value) { return std::to_string(value); }
std::string cell(int value) { return std::to_string(value); }

std::string pct_cell(double fraction, int decimals) {
  return cell(fraction * 100.0, decimals) + "%";
}

}  // namespace ges::util
