#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace ges::util {

void Accumulator::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Accumulator::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

namespace {

/// Drop NaNs (they have no rank and poison std::sort's ordering).
void erase_nans(std::vector<double>& samples) {
  samples.erase(std::remove_if(samples.begin(), samples.end(),
                               [](double x) { return std::isnan(x); }),
                samples.end());
}

}  // namespace

double percentile(std::vector<double> samples, double p) {
  erase_nans(samples);
  if (samples.empty()) return 0.0;
  if (!(p > 0.0)) p = 0.0;  // also maps NaN p to the minimum
  if (p > 100.0) p = 100.0;
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  // Exact ranks (p = 0/100 included) skip interpolation so no FP
  // round-off can leak in from the frac arithmetic.
  if (frac <= 0.0) return samples[lo];
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

std::vector<std::pair<double, double>> empirical_cdf(std::vector<double> samples) {
  std::vector<std::pair<double, double>> cdf;
  erase_nans(samples);
  if (samples.empty()) return cdf;
  std::sort(samples.begin(), samples.end());
  const auto n = static_cast<double>(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    const bool last_of_value = (i + 1 == samples.size()) || (samples[i + 1] != samples[i]);
    if (last_of_value) cdf.emplace_back(samples[i], static_cast<double>(i + 1) / n);
  }
  return cdf;
}

Histogram::Histogram(double lo, double hi, size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  GES_CHECK(hi > lo);
  GES_CHECK(bins > 0);
}

void Histogram::add(double x) {
  if (std::isnan(x)) {
    ++nan_count_;  // NaN belongs to no bin; don't skew total()
    return;
  }
  // Clamp in double space before the integer cast: casting an
  // out-of-range double (huge x, or ±inf) to an integer is UB.
  double t = (x - lo_) / (hi_ - lo_);
  t = std::clamp(t, 0.0, 1.0);
  const size_t bin = std::min(
      counts_.size() - 1, static_cast<size_t>(t * static_cast<double>(counts_.size())));
  ++counts_[bin];
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  GES_CHECK_MSG(lo_ == other.lo_ && hi_ == other.hi_ &&
                    counts_.size() == other.counts_.size(),
                "Histogram::merge needs identical ranges and bin counts");
  for (size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
  total_ += other.total_;
  nan_count_ += other.nan_count_;
}

size_t Histogram::bin_count(size_t bin) const {
  GES_CHECK(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(size_t bin) const {
  GES_CHECK(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(size_t bin) const {
  GES_CHECK(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) / static_cast<double>(counts_.size());
}

}  // namespace ges::util
