#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ges::util {

/// Column-aligned plain-text table for paper-style figure/table output.
/// Rows are added as string cells (use cell() helpers for numbers); render()
/// pads columns to their widest entry.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; its size must match the header.
  void add_row(std::vector<std::string> cells);

  size_t rows() const { return rows_.size(); }
  size_t columns() const { return header_.size(); }

  /// Render with aligned columns; every line prefixed by `indent`.
  std::string render(const std::string& indent = "  ") const;

  /// Render as CSV (comma-separated, no quoting; cells must be comma-free).
  std::string render_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed decimals (e.g. cell(71.63, 1) -> "71.6").
std::string cell(double value, int decimals = 2);
std::string cell(size_t value);
std::string cell(int value);

/// Format a fraction as a percentage string, e.g. pct_cell(0.716) -> "71.6%".
std::string pct_cell(double fraction, int decimals = 1);

}  // namespace ges::util
