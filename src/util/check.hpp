#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ges::util {

/// Thrown by GES_CHECK on a violated runtime precondition or invariant.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "GES_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace ges::util

/// Always-on invariant check (active in release builds too). Throws
/// ges::util::CheckFailure so tests can assert on violations instead of
/// aborting the process.
#define GES_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr)) ::ges::util::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

/// GES_CHECK with an explanatory message (streamed into a string).
#define GES_CHECK_MSG(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream ges_check_os_;                                     \
      ges_check_os_ << msg;                                                 \
      ::ges::util::detail::check_failed(#expr, __FILE__, __LINE__, ges_check_os_.str()); \
    }                                                                       \
  } while (false)

/// Debug-mode-only check: active in builds without NDEBUG (or when
/// forced with -DGES_DEBUG_CHECKS=1), compiled to nothing in release.
/// Use for conditions the code tolerates (clamps, lazy repair) but that
/// indicate a caller bug worth failing loudly on in development — e.g.
/// EventQueue::schedule clamps stale timestamps in release but throws
/// here so the stale caller gets fixed.
#ifndef GES_DEBUG_CHECKS
#ifdef NDEBUG
#define GES_DEBUG_CHECKS 0
#else
#define GES_DEBUG_CHECKS 1
#endif
#endif

#if GES_DEBUG_CHECKS
#define GES_DCHECK(expr) GES_CHECK(expr)
#define GES_DCHECK_MSG(expr, msg) GES_CHECK_MSG(expr, msg)
#else
#define GES_DCHECK(expr) \
  do {                   \
  } while (false)
#define GES_DCHECK_MSG(expr, msg) \
  do {                            \
  } while (false)
#endif
