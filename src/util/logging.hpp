#pragma once

#include <sstream>
#include <string>

namespace ges::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set / query the global log threshold (messages below it are dropped).
/// The initial threshold honours the GES_LOG env var
/// (debug|info|warn|error|off), defaulting to warn so library output stays
/// quiet under tests and benchmarks.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line to stderr (thread-safe, single write call).
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace ges::util

#define GES_LOG(level)                                             \
  if (static_cast<int>(level) < static_cast<int>(::ges::util::log_level())) { \
  } else                                                           \
    ::ges::util::detail::LogLine(level)

#define GES_DEBUG GES_LOG(::ges::util::LogLevel::kDebug)
#define GES_INFO GES_LOG(::ges::util::LogLevel::kInfo)
#define GES_WARN GES_LOG(::ges::util::LogLevel::kWarn)
#define GES_ERROR GES_LOG(::ges::util::LogLevel::kError)
