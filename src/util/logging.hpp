#pragma once

#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace ges::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* log_level_name(LogLevel level);

/// Parse "debug" / "info" / "warn" / "error" / "off"; nullopt otherwise.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Set / query the global log threshold (messages below it are dropped).
/// The initial threshold honours the GES_LOG_LEVEL env var (GES_LOG is
/// accepted as a legacy alias; values debug|info|warn|error|off),
/// defaulting to warn so library output stays quiet under tests and
/// benchmarks.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Where emitted log lines go. The sink receives the level and the
/// unterminated message body (no "[ges LEVEL]" prefix, no newline);
/// filtering already happened. Pass {} to restore the default stderr
/// sink. Sink swaps and calls are serialized, so tests can capture lines
/// without racing concurrent loggers.
using LogSink = std::function<void(LogLevel, const std::string& message)>;
void set_log_sink(LogSink sink);

/// Emit one log line through the current sink (thread-safe). The default
/// sink writes "[ges LEVEL] message\n" to stderr in a single write call.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace ges::util

#define GES_LOG(level)                                             \
  if (static_cast<int>(level) < static_cast<int>(::ges::util::log_level())) { \
  } else                                                           \
    ::ges::util::detail::LogLine(level)

#define GES_DEBUG GES_LOG(::ges::util::LogLevel::kDebug)
#define GES_INFO GES_LOG(::ges::util::LogLevel::kInfo)
#define GES_WARN GES_LOG(::ges::util::LogLevel::kWarn)
#define GES_ERROR GES_LOG(::ges::util::LogLevel::kError)
