#pragma once

#include <cstddef>
#include <cstdint>

#include "p2p/types.hpp"

namespace ges::core {

/// GES configuration (paper §5.4 defaults).
struct GesParams {
  // --- Topology adaptation -------------------------------------------

  /// Minimum neighbors per node; nodes at or below it are "poorly
  /// connected" and protected from semantic-neighbor drops.
  size_t min_links = 3;

  /// Maximum neighbors per node: 8 in the uniform-capacity experiments,
  /// 128 in the heterogeneous ones.
  size_t max_links = 8;

  /// Finest capacity granularity: with capacity constraints enabled,
  /// effective max_links = min(max_links, capacity / min_unit).
  size_t min_unit = 4;

  /// Whether the capacity constraint applies (heterogeneous runs).
  bool capacity_constrained = false;

  /// Maximum fraction of max_links devoted to semantic links.
  double alpha = 0.5;

  /// Node relevance threshold for semantic-vs-random classification
  /// (REL_THRESHOLD / SEM_THRESHOLD in the paper).
  double node_rel_threshold = 0.45;

  /// TTL and MAX_RESPONSES of the periodic discovery random walks.
  size_t walk_ttl = 60;
  size_t walk_max_responses = 16;

  /// §4.3 optimization (off in the paper's GES): a relevant node visited
  /// by a discovery walk also answers with relevant candidates from its
  /// own semantic host cache.
  bool cache_assisted_discovery = false;

  /// §4.3 optimization (off in the paper's GES): semantic neighbors
  /// periodically exchange the contents of their semantic host caches.
  bool gossip_host_caches = false;

  /// §7 future work: nodes track a satisfaction degree (how full and how
  /// relevant their link budget is) and throttle their discovery walks
  /// accordingly, cutting maintenance traffic once the topology is good.
  bool satisfaction_adaptive = false;

  /// Retry-with-backoff for handshakes aborted by network faults (lost
  /// leg, partition cut, peer death mid-handshake): after a fault-aborted
  /// handshake a node skips its link attempts for handshake_backoff_base
  /// rounds, doubling per consecutive failure up to handshake_backoff_max
  /// rounds; any fully-delivered handshake resets the backoff. Only
  /// fault-caused aborts arm it — a clean rejection is not congestion.
  size_t handshake_backoff_base = 1;
  size_t handshake_backoff_max = 8;

  /// Engine option (not in the paper): run the read-only plan phase of
  /// each adaptation round on the global thread pool. Per-node RNG
  /// streams make the result bit-identical to the sequential plan phase,
  /// so this only changes wall-clock time, never the topology.
  bool parallel_rounds = true;

  /// Engine option: charge every maintenance message its exact
  /// Wire-format-v1 frame size (p2p/wire.hpp) into the byte fields of
  /// AdaptationRoundStats and the ges.net.bytes.* counters. Strictly
  /// additive — message-unit stats and the resulting topology are
  /// bit-identical either way; off leaves the byte fields at 0.
  bool account_bytes = true;

  // --- Search ----------------------------------------------------------

  /// Documents with REL(D,Q) >= doc_rel_threshold count as retrieved;
  /// <= 0 means any positive score (short queries, paper §6.1(4)).
  double doc_rel_threshold = 0.0;

  /// Capacity-aware biased walks (paper §4.5, last part). Only
  /// meaningful with heterogeneous capacities.
  bool capacity_aware_search = false;

  /// Controlled-flooding radius from the target node; 0 = probe the whole
  /// semantic group.
  size_t flood_radius = 0;

  // --- Derived ---------------------------------------------------------

  /// Effective max_links for a node of the given capacity:
  /// min(max_links, capacity / min_unit), clamped below by min_links.
  size_t effective_max_links(p2p::Capacity capacity) const {
    if (!capacity_constrained) return max_links;
    const auto by_capacity = static_cast<size_t>(capacity / static_cast<double>(min_unit));
    const size_t limit = by_capacity < max_links ? by_capacity : max_links;
    return limit < min_links ? min_links : limit;
  }

  /// MAX_SEM_LINKS for a node of the given capacity.
  size_t max_sem_links(p2p::Capacity capacity) const {
    return static_cast<size_t>(alpha * static_cast<double>(effective_max_links(capacity)));
  }

  /// MAX_RND_LINKS for a node of the given capacity.
  size_t max_rnd_links(p2p::Capacity capacity) const {
    return effective_max_links(capacity) - max_sem_links(capacity);
  }
};

}  // namespace ges::core
