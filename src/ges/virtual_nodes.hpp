#pragma once

#include <cstdint>
#include <vector>

#include "corpus/corpus.hpp"
#include "p2p/search_trace.hpp"
#include "p2p/types.hpp"

namespace ges::core {

/// The virtual-node extension the paper sketches as future work (§7):
/// "A node with diverse topic documents could locally cluster its
/// documents using data clustering techniques and each cluster
/// corresponds to a virtual node. A node could host multiple virtual
/// nodes, each of which independently participates in GES's topology
/// adaptation and search protocol."
///
/// We implement it by *rewriting the corpus*: every physical node's
/// documents are clustered locally (spherical k-means on the document
/// vectors); each cluster becomes one virtual node holding those
/// documents. GES then runs unchanged over the virtual corpus, and
/// traces are projected back to physical nodes for cost accounting.
struct VirtualNodeParams {
  /// Upper bound on virtual nodes per physical node.
  size_t max_virtual_per_node = 4;

  /// Do not create clusters smaller than this; nodes with fewer than
  /// 2 * min_docs_per_virtual documents are never split.
  size_t min_docs_per_virtual = 4;

  /// Local k-means iterations (cheap: a node clusters only its own docs).
  size_t kmeans_iterations = 8;

  uint64_t seed = 5;
};

/// The virtual corpus plus the mapping between the two node spaces.
/// DocIds are preserved, so the original relevance judgments remain
/// valid against the virtual corpus.
struct VirtualMapping {
  corpus::Corpus virtual_corpus;

  /// physical_of[v] = physical node hosting virtual node v.
  std::vector<p2p::NodeId> physical_of;

  /// virtuals_of[p] = virtual nodes hosted by physical node p.
  std::vector<std::vector<p2p::NodeId>> virtuals_of;

  size_t virtual_count() const { return physical_of.size(); }
  size_t physical_count() const { return virtuals_of.size(); }
};

/// Build the virtual corpus by locally clustering each node's documents.
VirtualMapping build_virtual_corpus(const corpus::Corpus& corpus,
                                    const VirtualNodeParams& params);

/// Project a trace taken on the virtual overlay back to physical nodes:
/// probes of co-hosted virtual nodes collapse into one physical probe
/// (the physical node evaluates the query once), and retrieved documents
/// are re-indexed accordingly. Recall-vs-cost over the projected trace is
/// directly comparable to a plain GES trace on the physical corpus.
p2p::SearchTrace project_to_physical(const p2p::SearchTrace& trace,
                                     const VirtualMapping& mapping);

}  // namespace ges::core
