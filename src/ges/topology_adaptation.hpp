#pragma once

#include <cstdint>

#include "ges/params.hpp"
#include "p2p/network.hpp"
#include "util/rng.hpp"

namespace ges::core {

/// Statistics of one adaptation round (diagnostics and ablations).
struct AdaptationRoundStats {
  size_t semantic_links_added = 0;
  size_t semantic_links_dropped = 0;
  size_t random_links_added = 0;
  size_t random_links_dropped = 0;
  size_t links_reclassified = 0;  // threshold-crossing drops (paper §4.3 end)
  size_t walk_messages = 0;
  size_t handshake_messages = 0;  // 3 per attempted link handshake (§4.3)
  size_t cache_assists = 0;       // candidates served from peers' caches
  size_t gossip_messages = 0;     // host-cache exchange messages
  size_t discovery_skipped = 0;   // node steps throttled by satisfaction
};

/// The distributed, content-based, capacity-aware topology-adaptation
/// algorithm (paper §4.3). Each node periodically:
///   1. issues two TTL-bounded random walks — one collecting nodes with
///      REL >= node_rel_threshold into the semantic host cache, one
///      collecting nodes below the threshold into the random host cache;
///   2. attempts to add/replace one semantic neighbor (three-way
///      handshake; both endpoints decide independently; peers at or below
///      min_links are protected from drops);
///   3. attempts to add/replace one random neighbor (capacity- and
///      degree-aware rules, Gia-style);
///   4. drops links whose relevance crossed the threshold, remembering
///      the peer in the now-appropriate host cache.
///
/// The class never runs by itself — call run_round() (all alive nodes, in
/// random order) or node_step(); wire it to an EventQueue for time-driven
/// simulation.
class TopologyAdaptation {
 public:
  TopologyAdaptation(p2p::Network& network, GesParams params, uint64_t seed);

  const GesParams& params() const { return params_; }

  /// One adaptation step for every alive node, in random order.
  AdaptationRoundStats run_round();

  /// Run `rounds` rounds; returns aggregate stats.
  AdaptationRoundStats run_rounds(size_t rounds);

  /// One adaptation step for a single node.
  void node_step(p2p::NodeId node, AdaptationRoundStats& stats);

  /// Satisfaction degree in [0, 1] (paper §7 future work): how full the
  /// node's link budgets are, with semantic links weighted by how far
  /// their relevance exceeds the threshold. 1 = fully satisfied (with
  /// satisfaction_adaptive set, such nodes usually skip discovery).
  double node_satisfaction(p2p::NodeId node) const;

 private:
  // Phase 1: discovery walks filling the two host caches.
  void discover(p2p::NodeId node, AdaptationRoundStats& stats);

  // Phase 2/3: neighbor addition with replacement.
  void try_add_semantic(p2p::NodeId node, AdaptationRoundStats& stats);
  void try_add_random(p2p::NodeId node, AdaptationRoundStats& stats);

  // Phase 4: threshold-crossing link maintenance.
  void reclassify_links(p2p::NodeId node, AdaptationRoundStats& stats);

  // Optional §4.3 optimization: merge a semantic neighbor's semantic
  // host cache into ours (relevance recomputed for this node).
  void gossip_caches(p2p::NodeId node, AdaptationRoundStats& stats);

  /// One endpoint's accept decision for a semantic candidate with
  /// relevance `rel` (to this endpoint). On acceptance-with-replacement,
  /// *victim holds the neighbor to drop (kInvalidNode when there is room).
  bool accept_semantic(p2p::NodeId self, p2p::NodeId candidate, double rel,
                       p2p::NodeId* victim) const;

  /// One endpoint's accept decision for a random candidate.
  bool accept_random(p2p::NodeId self, p2p::NodeId candidate,
                     p2p::NodeId* victim) const;

  p2p::HostCacheEntry make_entry(p2p::NodeId about, double rel, bool with_vector) const;

  p2p::Network* network_;
  GesParams params_;
  util::Rng rng_;
};

/// Number of semantic connected components ("semantic groups") with at
/// least `min_size` members; helper for diagnostics, tests and examples.
size_t count_semantic_groups(const p2p::Network& network, size_t min_size = 2);

/// Mean REL over all semantic links (0 when there are none) — a quality
/// measure of the adaptation.
double mean_semantic_link_relevance(const p2p::Network& network);

}  // namespace ges::core
