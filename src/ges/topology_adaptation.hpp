#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "ges/params.hpp"
#include "p2p/event_sim.hpp"
#include "p2p/fault_injection.hpp"
#include "p2p/host_cache.hpp"
#include "p2p/network.hpp"
#include "util/rng.hpp"

namespace ges::core {

/// Statistics of one adaptation round (diagnostics and ablations).
struct AdaptationRoundStats {
  size_t semantic_links_added = 0;
  size_t semantic_links_dropped = 0;
  size_t random_links_added = 0;
  size_t random_links_dropped = 0;
  size_t links_reclassified = 0;  // threshold-crossing drops (paper §4.3 end)
  size_t walk_messages = 0;
  size_t handshake_messages = 0;  // 3 per attempted link handshake (§4.3)
  size_t cache_assists = 0;       // candidates served from peers' caches
  size_t gossip_messages = 0;     // host-cache exchange messages
  size_t discovery_skipped = 0;   // node steps throttled by satisfaction
  size_t handshake_aborts = 0;    // handshakes losing a leg to a fault
  size_t handshake_deaths = 0;    // peers that died mid-handshake
  size_t handshake_retries = 0;   // attempts made after a prior fault abort
  size_t backoff_skips = 0;       // node steps skipped while backing off

  /// Exact Wire-format-v1 bytes behind the message-unit tallies above
  /// (p2p/wire.hpp): discovery-walk hops as DiscoveryProbe frames,
  /// handshake legs as their three frame types, gossip exchanges as
  /// HostCacheExchange frames sized by the entries actually shipped.
  /// Strictly additive — all 0 when GesParams::account_bytes is off.
  uint64_t walk_bytes = 0;
  uint64_t handshake_bytes = 0;
  uint64_t gossip_bytes = 0;

  /// Field-wise accumulation (round stats into run totals).
  AdaptationRoundStats& operator+=(const AdaptationRoundStats& other);
};

/// The distributed, content-based, capacity-aware topology-adaptation
/// algorithm (paper §4.3). Each node periodically:
///   1. issues two TTL-bounded random walks — one collecting nodes with
///      REL >= node_rel_threshold into the semantic host cache, one
///      collecting nodes below the threshold into the random host cache;
///   2. attempts to add/replace one semantic neighbor (three-way
///      handshake; both endpoints decide independently; peers at or below
///      min_links are protected from drops);
///   3. attempts to add/replace one random neighbor (capacity- and
///      degree-aware rules, Gia-style);
///   4. drops links whose relevance crossed the threshold, remembering
///      the peer in the now-appropriate host cache.
///
/// A round is executed in two phases:
///   * Plan (read-only, parallelizable): every node runs its discovery
///     walks, satisfaction throttle and gossip merge against the frozen
///     start-of-round topology and host caches, producing a candidate
///     list. Each node draws from its own RNG stream derived from
///     (round seed, node id), so the phase's outcome is independent of
///     execution order — running it on the thread pool or sequentially
///     yields bit-identical plans.
///   * Commit (serial, deterministic): in the round's shuffled node
///     order, each node's candidates are inserted into its host caches
///     and the link handshakes / reclassification are applied. All
///     topology mutations happen here, one node at a time.
/// Determinism contract: for a fixed seed the resulting topology is a
/// pure function of the network state, whether or not the plan phase ran
/// in parallel (GesParams::parallel_rounds).
///
/// The class never runs by itself — call run_round() (all alive nodes, in
/// random order) or node_step(); wire it to an EventQueue for time-driven
/// simulation.
class TopologyAdaptation {
 public:
  TopologyAdaptation(p2p::Network& network, GesParams params, uint64_t seed);

  const GesParams& params() const { return params_; }

  /// Inject message faults (paper-motivated churn/loss hardening): walk
  /// hops, gossip exchanges and handshake legs become lossy; partitions
  /// advance once per round; a peer can die mid-handshake. Fault-aborted
  /// handshakes retry with per-node exponential backoff and NEVER leave
  /// half-committed state — victims are only dropped once the new link is
  /// fully confirmed. Null (default) restores the failure-free engine
  /// with bit-identical behaviour. The injector must outlive this object.
  void set_fault_injector(p2p::FaultInjector* faults) { faults_ = faults; }

  /// Called right after a peer is killed mid-handshake by the fault
  /// injector (the only path where this class deactivates a node). Lets
  /// the scenario layer tear down the victim's periodic processes —
  /// e.g. suspend its replica-heartbeat timer — so dead nodes own zero
  /// live timers. Must not mutate topology or consume protocol RNG.
  void set_death_hook(std::function<void(p2p::NodeId)> hook) {
    on_death_ = std::move(hook);
  }

  /// Rounds run so far (salts fault decisions and backoff bookkeeping).
  uint64_t rounds_run() const { return round_; }

  /// Read-only backoff introspection (health monitor): whether `node` is
  /// currently skipping handshake attempts after fault aborts, and its
  /// consecutive-abort strike count. Observation only.
  bool node_in_backoff(p2p::NodeId node) const { return in_backoff(node); }
  uint32_t backoff_strikes(p2p::NodeId node) const {
    const auto it = backoff_.find(node);
    return it == backoff_.end() ? 0 : it->second.strikes;
  }

  /// One adaptation step for every alive node: parallel read-only plan
  /// phase, then serial commit in random order (see class comment).
  AdaptationRoundStats run_round();

  /// Run `rounds` rounds; returns aggregate stats.
  AdaptationRoundStats run_rounds(size_t rounds);

  /// Drive run_round() as a cancellable periodic task on `queue`: one
  /// round every `interval` simulated seconds, starting one interval from
  /// now. When `total` is non-null each round's stats are accumulated
  /// into it. Cancel the returned handle to stop adapting (e.g. when the
  /// deployment is torn down mid-run); this object, the queue and `total`
  /// must outlive the timer.
  p2p::TimerHandle schedule_rounds(p2p::EventQueue& queue, p2p::SimTime interval,
                                   AdaptationRoundStats* total = nullptr);

  /// One adaptation step for a single node (plan + commit back-to-back).
  void node_step(p2p::NodeId node, AdaptationRoundStats& stats);

  /// Threshold-reclassify a single node's links (paper §4.3 end) outside
  /// a full round — e.g. right after a churn rejoin, whose bootstrap
  /// links may already qualify as semantic. Returns links reclassified.
  size_t reclassify_node(p2p::NodeId node);

  /// Satisfaction degree in [0, 1] (paper §7 future work): how full the
  /// node's link budgets are, with semantic links weighted by how far
  /// their relevance exceeds the threshold. 1 = fully satisfied (with
  /// satisfaction_adaptive set, such nodes usually skip discovery).
  double node_satisfaction(p2p::NodeId node) const;

 private:
  /// Read-only output of one node's plan phase: candidate host-cache
  /// entries and the message accounting of how they were discovered.
  struct NodePlan {
    bool discovery_skipped = false;
    size_t walk_messages = 0;
    size_t gossip_messages = 0;
    size_t cache_assists = 0;
    uint64_t walk_bytes = 0;
    uint64_t gossip_bytes = 0;
    std::vector<p2p::HostCacheEntry> semantic_inserts;
    std::vector<p2p::HostCacheEntry> random_inserts;
  };

  /// Phase 1: discovery walks + gossip against the frozen network.
  /// Must not mutate the network (runs concurrently across nodes).
  NodePlan plan_node(p2p::NodeId node, util::Rng& rng) const;
  void plan_discovery(p2p::NodeId node, util::Rng& rng, NodePlan& plan) const;
  void plan_gossip(p2p::NodeId node, util::Rng& rng, NodePlan& plan) const;

  /// Phase 2: apply a node's plan — cache inserts, link handshakes,
  /// threshold reclassification. Serial only.
  void commit_node(p2p::NodeId node, const NodePlan& plan, util::Rng& rng,
                   AdaptationRoundStats& stats);

  // Neighbor addition with replacement (commit phase).
  void try_add_semantic(p2p::NodeId node, AdaptationRoundStats& stats);
  void try_add_random(p2p::NodeId node, util::Rng& rng, AdaptationRoundStats& stats);

  // Threshold-crossing link maintenance (commit phase).
  void reclassify_links(p2p::NodeId node, AdaptationRoundStats& stats);

  /// One endpoint's accept decision for a semantic candidate with
  /// relevance `rel` (to this endpoint). On acceptance-with-replacement,
  /// *victim holds the neighbor to drop (kInvalidNode when there is room).
  bool accept_semantic(p2p::NodeId self, p2p::NodeId candidate, double rel,
                       p2p::NodeId* victim) const;

  /// One endpoint's accept decision for a random candidate.
  bool accept_random(p2p::NodeId self, p2p::NodeId candidate,
                     p2p::NodeId* victim) const;

  p2p::HostCacheEntry make_entry(p2p::NodeId about, double rel, bool with_vector) const;

  /// Run the three legs of a handshake with `peer` under the fault
  /// injector. Returns true when every leg was delivered (link decisions
  /// may still reject); false aborts cleanly — nothing was committed —
  /// and arms the initiator's backoff. `salt` separates the semantic and
  /// random handshakes of one round. May deactivate `peer`
  /// (mid-handshake death).
  bool handshake_delivered(p2p::NodeId node, p2p::NodeId peer, uint64_t salt,
                           AdaptationRoundStats& stats);

  /// Fault-retry bookkeeping (see GesParams::handshake_backoff_*).
  bool in_backoff(p2p::NodeId node) const;
  void arm_backoff(p2p::NodeId node);
  void clear_backoff(p2p::NodeId node);

  struct Backoff {
    uint64_t next_round = 0;  // earliest round allowed to attempt again
    uint32_t strikes = 0;     // consecutive fault aborts
  };

  p2p::Network* network_;
  GesParams params_;
  util::Rng rng_;
  p2p::FaultInjector* faults_ = nullptr;
  std::function<void(p2p::NodeId)> on_death_;
  uint64_t round_ = 0;
  std::unordered_map<p2p::NodeId, Backoff> backoff_;
};

/// Number of semantic connected components ("semantic groups") with at
/// least `min_size` members; helper for diagnostics, tests and examples.
size_t count_semantic_groups(const p2p::Network& network, size_t min_size = 2);

/// Mean REL over all semantic links (0 when there are none) — a quality
/// measure of the adaptation.
double mean_semantic_link_relevance(const p2p::Network& network);

}  // namespace ges::core
