#include "ges/result_cache.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "p2p/wire.hpp"
#include "util/check.hpp"

namespace ges::core {

using p2p::CachedResultDoc;
using p2p::CacheEntryMeta;
using p2p::CacheValidity;
using p2p::NodeId;
using p2p::QuerySignature;

// --- ResultCache ----------------------------------------------------

ResultCache::Entry* ResultCache::find(QuerySignature sig) {
  for (Entry& e : entries_) {
    if (e.signature == sig) return &e;
  }
  return nullptr;
}

size_t ResultCache::store(QuerySignature sig, std::vector<CachedResultDoc> docs,
                          CacheEntryMeta meta, uint64_t tick) {
  if (capacity_ == 0) return 0;
  if (Entry* existing = find(sig)) {
    existing->docs = std::move(docs);
    existing->meta = meta;
    existing->last_used = tick;
    return 0;
  }
  size_t evictions = 0;
  if (entries_.size() >= capacity_) {
    // Coldest-first: least popularity, ties by least recent use. The
    // linear scan over <= max_entries slots is deterministic by slot
    // order (a vector, not a hash map), which keeps traces reproducible.
    size_t victim = 0;
    for (size_t i = 1; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      const Entry& v = entries_[victim];
      if (e.popularity < v.popularity ||
          (e.popularity == v.popularity && e.last_used < v.last_used)) {
        victim = i;
      }
    }
    entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(victim));
    evictions = 1;
  }
  entries_.push_back({sig, std::move(docs), meta, 0, tick});
  return evictions;
}

bool ResultCache::erase(QuerySignature sig) {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].signature == sig) {
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

size_t ResultCache::clear() {
  const size_t n = entries_.size();
  entries_.clear();
  return n;
}

size_t ResultCache::invalidate_owner(NodeId owner) {
  size_t dropped = 0;
  for (size_t i = entries_.size(); i-- > 0;) {
    const auto& docs = entries_[i].docs;
    const bool references = std::any_of(
        docs.begin(), docs.end(),
        [owner](const CachedResultDoc& d) { return d.owner == owner; });
    if (references) {
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
      ++dropped;
    }
  }
  return dropped;
}

// --- ResultCacheBank ------------------------------------------------

#if GES_OBS
namespace {

/// Flight-recorder hook: a cache probe at `node` becomes a causal event
/// under the current context. Outcome: 0 miss, 1 hit, 2 invalidated.
/// On a hit the probe event also becomes `node`'s anchor, so the flood /
/// walk expansion it short-circuits is attributed to it.
void flight_cache_probe(NodeId node, uint8_t outcome, int32_t docs) {
  obs::FlightBuilder* fb = obs::flight_sink();
  if (fb == nullptr) return;
  const int32_t id =
      fb->add(obs::FlightEventKind::kCacheProbe, obs::global().now());
  if (obs::FlightEvent* ev = fb->event(id)) {
    ev->from = node;
    ev->flag = outcome;
    ev->count = docs;
  }
  if (outcome == 1) fb->note_probe_event(node, id);
}

}  // namespace
#define GES_FLIGHT_CACHE_PROBE(...) flight_cache_probe(__VA_ARGS__)
#else
#define GES_FLIGHT_CACHE_PROBE(...) \
  do {                              \
  } while (0)
#endif

size_t result_cache_entries_for(const ResultCacheConfig& config,
                                p2p::Capacity capacity) {
  size_t decades = 0;
  if (capacity >= 10.0) {
    decades = static_cast<size_t>(std::floor(std::log10(capacity)));
  }
  return std::min(config.max_entries,
                  config.base_entries + config.entries_per_decade * decades);
}

ResultCacheBank::ResultCacheBank(const p2p::Network& network,
                                 ResultCacheConfig config)
    : network_(&network), config_(config) {
  caches_.reserve(network.size());
  for (size_t n = 0; n < network.size(); ++n) {
    caches_.emplace_back(
        result_cache_entries_for(config_, network.capacity(static_cast<NodeId>(n))));
  }
}

void ResultCacheBank::set_clock(std::function<p2p::SimTime()> clock) {
  clock_ = std::move(clock);
}

p2p::SimTime ResultCacheBank::now() const { return clock_ ? clock_() : 0.0; }

const std::vector<CachedResultDoc>* ResultCacheBank::probe(NodeId node,
                                                           QuerySignature sig) {
  GES_CHECK(node < caches_.size());
  // Every probe costs one CacheProbe frame, hit or not; a hit additionally
  // costs the CacheResult response frame carrying the cached documents.
  if (config_.account_bytes) {
    stats_.probe_bytes += p2p::wire::cache_probe_frame_size();
    GES_COUNT("ges.net.bytes.cache_probe", p2p::wire::cache_probe_frame_size());
  }
  ResultCache& cache = caches_[node];
  ResultCache::Entry* entry = cache.find(sig);
  if (entry == nullptr) {
    ++stats_.misses;
    GES_COUNT("ges.cache.misses", 1);
    GES_FLIGHT_CACHE_PROBE(node, 0, 0);
    return nullptr;
  }
  const CacheValidity validity =
      p2p::validate_cache_entry(*network_, entry->docs, entry->meta, now());
  if (validity != CacheValidity::kValid) {
    cache.erase(sig);
    ++stats_.invalidations;
    ++stats_.misses;
    GES_COUNT("ges.cache.invalidations", 1);
    GES_COUNT("ges.cache.misses", 1);
    GES_FLIGHT_CACHE_PROBE(node, 2, 0);
    return nullptr;
  }
  ++entry->popularity;
  entry->last_used = ++tick_;
  ++stats_.hits;
  if (config_.account_bytes) {
    const size_t frame = p2p::wire::cache_result_frame_size(entry->docs.size());
    stats_.result_bytes += frame;
    GES_COUNT("ges.net.bytes.cache_result", frame);
  }
  GES_COUNT("ges.cache.hits", 1);
  GES_FLIGHT_CACHE_PROBE(node, 1, static_cast<int32_t>(entry->docs.size()));
  return &entry->docs;
}

void ResultCacheBank::store(NodeId node, QuerySignature sig,
                            const std::vector<CachedResultDoc>& docs) {
  GES_CHECK(node < caches_.size());
  if (docs.empty() || !network_->alive(node)) return;
  // Results probed from a node that has since churned out (async runs can
  // outlive their probes) are never stored: the overlay invariant is that
  // no cache holds dead-owner results at any instant.
  for (const CachedResultDoc& d : docs) {
    if (!network_->alive(d.owner)) return;
  }
  std::vector<CachedResultDoc> kept;
  if (config_.top_k > 0 && docs.size() > config_.top_k) {
    // Select the top-k by (score desc, doc asc) but keep the survivors in
    // their original (probe) order so per-owner runs stay contiguous for
    // the strict-mode verifier.
    std::vector<size_t> order(docs.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&docs](size_t a, size_t b) {
      if (docs[a].score != docs[b].score) return docs[a].score > docs[b].score;
      return docs[a].doc < docs[b].doc;
    });
    order.resize(config_.top_k);
    std::sort(order.begin(), order.end());
    kept.reserve(order.size());
    for (const size_t i : order) kept.push_back(docs[i]);
  } else {
    kept = docs;
  }
  CacheEntryMeta meta;
  meta.content_stamp = network_->content_stamp();
  meta.stored_at = now();
  meta.expires_at = config_.ttl > 0.0 ? meta.stored_at + config_.ttl : 0.0;
  const size_t kept_count = kept.size();
  const size_t evicted = caches_[node].store(sig, std::move(kept), meta, ++tick_);
  ++stats_.stores;
  if (config_.account_bytes) {
    const size_t frame = p2p::wire::cache_store_frame_size(kept_count);
    stats_.store_bytes += frame;
    GES_COUNT("ges.net.bytes.cache_store", frame);
  }
  GES_COUNT("ges.cache.stores", 1);
  if (evicted > 0) {
    stats_.evictions += evicted;
    GES_COUNT("ges.cache.evictions", evicted);
  }
}

void ResultCacheBank::on_node_departed(NodeId node) {
  GES_CHECK(node < caches_.size());
  size_t dropped = caches_[node].clear();
  for (ResultCache& cache : caches_) {
    dropped += cache.invalidate_owner(node);
  }
  if (dropped > 0) {
    stats_.invalidations += dropped;
    GES_COUNT("ges.cache.invalidations", dropped);
  }
}

void ResultCacheBank::verify_strict(const ir::SparseVector& query,
                                    double doc_rel_threshold,
                                    const std::vector<CachedResultDoc>& docs) const {
  // Cached docs are in probe order, so each owner's documents form one
  // contiguous run; verify run by run against a fresh evaluation.
  size_t i = 0;
  while (i < docs.size()) {
    const NodeId owner = docs[i].owner;
    GES_CHECK_MSG(network_->alive(owner),
                  "strict cache hit references dead owner " << owner);
    const auto fresh = network_->index(owner).evaluate(query, doc_rel_threshold);
    size_t run = 0;
    for (; i + run < docs.size() && docs[i + run].owner == owner; ++run) {
      const CachedResultDoc& d = docs[i + run];
      const bool present = std::any_of(
          fresh.begin(), fresh.end(), [&d](const ir::ScoredDoc& s) {
            return s.doc == d.doc && s.score == d.score;
          });
      GES_CHECK_MSG(present, "strict cache hit: doc " << d.doc << " score "
                                                      << d.score << " at owner "
                                                      << owner
                                                      << " != fresh evaluation");
    }
    if (config_.top_k == 0) {
      GES_CHECK_MSG(run == fresh.size(),
                    "strict cache hit: owner " << owner << " cached " << run
                                               << " docs, fresh evaluation has "
                                               << fresh.size());
    }
    i += run;
  }
}

size_t ResultCacheBank::dead_owner_docs(NodeId node) const {
  GES_CHECK(node < caches_.size());
  size_t dead = 0;
  for (const ResultCache::Entry& e : caches_[node].entries()) {
    for (const CachedResultDoc& d : e.docs) {
      if (!network_->alive(d.owner)) ++dead;
    }
  }
  return dead;
}

}  // namespace ges::core
