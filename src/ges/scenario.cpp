#include "ges/scenario.hpp"

#include <algorithm>
#include <fstream>

#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "util/check.hpp"

namespace ges::core {

ScenarioRunner::ScenarioRunner(const corpus::Corpus& corpus, ScenarioParams params)
    : params_(std::move(params)) {
  util::Rng capacity_rng(util::derive_seed(params_.seed, 10));
  auto capacities =
      params_.capacities.sample_many(corpus.num_nodes(), capacity_rng);
  network_ =
      std::make_unique<p2p::Network>(corpus, std::move(capacities), params_.net);
  faults_ = std::make_unique<p2p::FaultInjector>(params_.faults);
  adaptation_ = std::make_unique<TopologyAdaptation>(
      *network_, params_.params, util::derive_seed(params_.seed, 11));
  adaptation_->set_fault_injector(faults_.get());
  heartbeats_ = std::make_unique<p2p::ReplicaHeartbeatProcess>(
      *network_, queue_, params_.heartbeat_interval, faults_.get());
  result_cache_ = std::make_unique<ResultCacheBank>(*network_, params_.result_cache);
  result_cache_->set_clock([q = &queue_] { return q->now(); });
  // Fault-injected mid-handshake deaths bypass churn's departure path;
  // suspend the victim's heartbeat so dead nodes own zero live timers and
  // flush its cached query results (both asserted by
  // expect_overlay_invariants).
  adaptation_->set_death_hook([this](p2p::NodeId node) {
    heartbeats_->suspend_node(node);
    result_cache_->on_node_departed(node);
  });
  if (params_.churn_enabled) {
    churn_ = std::make_unique<p2p::ChurnProcess>(*network_, queue_, params_.churn);
    churn_->set_heartbeats(heartbeats_.get());
    churn_->set_result_cache(result_cache_.get());
    churn_->set_rejoin_hook(
        [this](p2p::NodeId node) { adaptation_->reclassify_node(node); });
  }
  // Timestamp spans/instants with this scenario's simulated clock. The
  // clock (and the opt-in enable below) are observation-only: nothing in
  // the run reads telemetry state, so the simulation is byte-identical
  // with telemetry on or off.
  obs::global().set_sim_clock([q = &queue_] { return q->now(); });
  owns_sim_clock_ = true;
  if (!params_.telemetry_out.empty()) obs::global().set_enabled(true);
  if (params_.flight_recorder) {
    obs::flight().set_config(params_.flight);
    obs::flight().set_enabled(true);
    // The recorder timestamps events through the telemetry clock.
    obs::global().set_enabled(true);
  }
  if (params_.timeseries_interval > 0.0) {
    timeseries_ = std::make_unique<obs::TimeseriesSampler>();
    timeseries_->configure(params_.timeseries_interval,
                           params_.timeseries_max_samples);
    // A series of all-zero snapshots is useless: sampling implies the
    // counters/gauges are live.
    obs::global().set_enabled(true);
  }
  if (params_.health_monitor) {
    health_ = std::make_unique<obs::HealthMonitor>();
    health_->set_thresholds(params_.health);
    health_->set_provider(
        [this](std::vector<obs::NodeHealth>& out) { fill_node_health(out); });
  }
}

ScenarioRunner::~ScenarioRunner() {
  if (owns_sim_clock_) obs::global().clear_sim_clock();
}

void ScenarioRunner::start() {
  GES_CHECK_MSG(!started_, "ScenarioRunner::start() already ran");
  started_ = true;
  util::Rng boot_rng(util::derive_seed(params_.seed, 12));
  p2p::bootstrap_random_graph(*network_, params_.bootstrap_avg_degree, boot_rng);
  bootstrap_degree_.resize(network_->size());
  for (p2p::NodeId n = 0; n < network_->size(); ++n) {
    bootstrap_degree_[n] = network_->alive(n) ? network_->degree(n) : 0;
  }
  heartbeats_->start();
  if (churn_ != nullptr) churn_->start();
  if (timeseries_ != nullptr) {
    // The sampler is one more periodic event on the queue. It only reads
    // the metrics registry, so while it consumes sequence numbers, the
    // relative order — and therefore the outcome — of every protocol
    // event is unchanged (regression-locked by the golden-trace suite).
    obs::TimeseriesSampler* ts = timeseries_.get();
    queue_.schedule_every(params_.timeseries_interval, [ts, q = &queue_] {
      ts->sample(obs::global().metrics(), q->now());
    });
  }
}

void ScenarioRunner::run(const std::function<void(size_t)>& after_round) {
  if (!started_) start();
  for (size_t r = 0; r < params_.rounds; ++r) {
    queue_.run_until(queue_.now() + params_.round_interval);
    // Round span: opened after the queue drain (serial context), closed
    // after the adaptation round commits. Sim time does not advance
    // inside run_round, so the span renders as a round marker at the
    // round boundary carrying the per-round stats.
    GES_SPAN(span, "round", "scenario", r);
    const auto stats = adaptation_->run_round();
    span.arg("handshake_messages", static_cast<double>(stats.handshake_messages));
    span.arg("links_added", static_cast<double>(stats.semantic_links_added +
                                                stats.random_links_added));
    span.arg("links_dropped", static_cast<double>(stats.semantic_links_dropped +
                                                  stats.random_links_dropped));
    total_stats_ += stats;
    // Watchdog pass at the round boundary (serial context), before the
    // caller's hook so it can read health()->last().
    if (health_ != nullptr) health_->sweep(queue_.now());
    if (after_round) after_round(r);
  }
  if (!params_.telemetry_out.empty()) write_telemetry(params_.telemetry_out);
}

p2p::InvariantOptions ScenarioRunner::invariant_options(size_t degree_slack) const {
  p2p::InvariantOptions options;
  const GesParams& p = params_.params;
  const p2p::Network* net = network_.get();
  options.max_semantic_links = [p, net](p2p::NodeId node) {
    return p.max_sem_links(net->capacity(node));
  };
  const std::vector<uint32_t>* boot = &bootstrap_degree_;
  options.max_total_links = [p, net, boot](p2p::NodeId node) {
    // The adaptation budgets the two link types independently: semantic
    // degree never exceeds max_sem_links, while the random side starts at
    // the node's bootstrap degree (installed without consulting the
    // policy) and only shrinks toward max_rnd_links via replacement.
    const p2p::Capacity cap = net->capacity(node);
    const size_t bootstrap =
        node < boot->size() ? static_cast<size_t>((*boot)[node]) : 0;
    return p.max_sem_links(cap) + std::max(p.max_rnd_links(cap), bootstrap);
  };
  options.degree_slack = degree_slack;
  // A churned-out node must not keep its heartbeat loop ticking: the
  // churn layer suspends the timer at departure, so a dead node owning a
  // live timer is a leak the sweep should flag.
  const p2p::ReplicaHeartbeatProcess* hb = heartbeats_.get();
  options.live_timers = [hb](p2p::NodeId node) {
    return hb->live_timer_count(node);
  };
  // Cache-liveness: a dead node caches nothing, and no alive node's cache
  // references a dead owner — churn/fault departures invalidate eagerly.
  const ResultCacheBank* bank = result_cache_.get();
  options.result_cache_entries = [bank](p2p::NodeId node) {
    return bank->entry_count(node);
  };
  options.result_cache_dead_owner_docs = [bank](p2p::NodeId node) {
    return bank->dead_owner_docs(node);
  };
  return options;
}

p2p::SearchTrace ScenarioRunner::search(const ir::SparseVector& query,
                                        p2p::NodeId initiator,
                                        const SearchOptions& options,
                                        util::Rng& rng) const {
  // Scenario queries run serially, so unlike GesSearch itself (which the
  // eval harness parallelizes) this wrapper can record the query span.
  GES_SPAN(span, "query", "search", initiator);
  const auto trace = GesSearch(*network_, options, faults_.get(), result_cache_.get())
                         .search(query, initiator, rng);
  span.arg("probes", static_cast<double>(trace.probes()));
  span.arg("walk_steps", static_cast<double>(trace.walk_steps));
  span.arg("flood_messages", static_cast<double>(trace.flood_messages));
  span.arg("hits", static_cast<double>(trace.retrieved.size()));
  return trace;
}

void ScenarioRunner::fill_node_health(std::vector<obs::NodeHealth>& out) const {
  const GesParams& p = params_.params;
  out.reserve(network_->size());
  for (p2p::NodeId n = 0; n < network_->size(); ++n) {
    obs::NodeHealth h;
    h.node = n;
    h.alive = network_->alive(n);
    if (!h.alive) {
      out.push_back(h);
      continue;
    }
    const p2p::Capacity cap = network_->capacity(n);
    h.capacity = cap;
    h.degree = network_->degree(n);
    h.sem_degree = network_->degree(n, p2p::LinkType::kSemantic);
    h.sem_target = static_cast<uint32_t>(p.max_sem_links(cap));
    // Same budget the invariant sweep allows: the random side starts at
    // the node's bootstrap degree and only shrinks toward the policy.
    const size_t bootstrap =
        n < bootstrap_degree_.size() ? bootstrap_degree_[n] : 0;
    h.degree_target = static_cast<uint32_t>(
        p.max_sem_links(cap) + std::max(p.max_rnd_links(cap), bootstrap));
    const p2p::SimTime beat = heartbeats_->last_beat(n);
    h.heartbeat_staleness = beat < 0.0 ? -1.0 : queue_.now() - beat;
    const size_t cache_cap = result_cache_->entry_capacity(n);
    h.cache_occupancy =
        cache_cap == 0 ? 0.0
                       : static_cast<double>(result_cache_->entry_count(n)) /
                             static_cast<double>(cache_cap);
    h.in_backoff = adaptation_->node_in_backoff(n);
    h.backoff_strikes = adaptation_->backoff_strikes(n);
    out.push_back(h);
  }
}

void ScenarioRunner::write_telemetry(const std::string& prefix) const {
  const auto snapshot = obs::global().metrics().snapshot();
  {
    std::ofstream os(prefix + ".metrics.json");
    GES_CHECK_MSG(os.good(), "cannot open " << prefix << ".metrics.json");
    obs::write_metrics_json(snapshot, os);
  }
  {
    std::ofstream os(prefix + ".metrics.prom");
    GES_CHECK_MSG(os.good(), "cannot open " << prefix << ".metrics.prom");
    obs::write_prometheus(snapshot, os);
  }
  {
    std::ofstream os(prefix + ".trace.json");
    GES_CHECK_MSG(os.good(), "cannot open " << prefix << ".trace.json");
    obs::global().trace().export_chrome_trace(os);
  }
  if (params_.flight_recorder) {
    std::ofstream os(prefix + ".autopsy.json");
    GES_CHECK_MSG(os.good(), "cannot open " << prefix << ".autopsy.json");
    obs::write_autopsy_json(obs::flight(), os);
  }
  if (timeseries_ != nullptr) {
    std::ofstream os(prefix + ".timeseries.json");
    GES_CHECK_MSG(os.good(), "cannot open " << prefix << ".timeseries.json");
    timeseries_->write_json(os);
  }
}

}  // namespace ges::core
