#include "ges/async_search.hpp"

#include "ges/query_workspace.hpp"
#include "ges/result_cache.hpp"
#include "ges/walk_policy.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "p2p/wire.hpp"
#include "util/check.hpp"

namespace ges::core {

using p2p::Guid;
using p2p::LinkType;
using p2p::NodeId;

/// Mutable state of one in-flight query. Conceptually the per-node GUID
/// bookkeeping lives on the nodes; the simulator centralizes it per run.
/// `ws` (checked out of the engine's pool) selects the data plane, as in
/// the synchronous QueryRun: null falls back to the legacy containers.
struct AsyncSearchEngine::Run {
  Guid guid = 0;
  ir::SparseVector query;
  NodeId initiator = p2p::kInvalidNode;
  util::Rng rng{0};
  std::function<void(const AsyncQueryResult&)> done;

  AsyncQueryResult result;
  std::unique_ptr<QueryWorkspace> ws;
  std::unordered_set<NodeId> legacy_seen;
  detail::WalkBookkeeping legacy_forwarded;
  std::vector<p2p::TimerHandle> timers;  // one per in-flight message event
  size_t budget = 0;
  size_t responses = 0;
  size_t ttl_left = 0;
  size_t walk_cap = 0;
  size_t in_flight = 0;
  uint64_t message_seq = 0;  // per-run fault nonce
  bool finished = false;
  p2p::QuerySignature cache_sig;  // computed at submit when caching
  bool cache_hit = false;         // hit ends the query's expansion

  /// Wire-format-v1 frame sizes of this query's counted messages,
  /// computed once at submit (the query rides along unchanged). 0 when
  /// byte accounting is off.
  size_t walk_frame_bytes = 0;
  size_t flood_frame_bytes = 0;

  /// Flight recorder of this query; null when recording is off (never
  /// created under GES_OBS=0). Installed as the thread-local sink for
  /// exactly the duration of each of this run's handlers, so interleaved
  /// queries each record into their own builder.
  std::unique_ptr<obs::FlightBuilder> flight;

  bool seen(NodeId node) const {
    return ws != nullptr ? ws->seen(node) : legacy_seen.count(node) > 0;
  }
  void mark_seen(NodeId node) {
    if (ws != nullptr) {
      ws->mark_seen(node);
    } else {
      legacy_seen.insert(node);
    }
  }

  bool satisfied(const SearchOptions& options) const {
    return cache_hit || result.trace.probes() >= budget ||
           (options.max_responses != 0 && responses >= options.max_responses);
  }

  bool already_retrieved(ir::DocId doc) const {
    for (const auto& r : result.trace.retrieved) {
      if (r.doc == doc) return true;
    }
    return false;
  }
};

AsyncSearchEngine::AsyncSearchEngine(const p2p::Network& network,
                                     p2p::EventQueue& queue, SearchOptions options,
                                     LatencyModel latency,
                                     const p2p::FaultInjector* faults,
                                     ResultCacheBank* cache)
    : network_(&network),
      queue_(&queue),
      options_(options),
      latency_(latency),
      faults_(faults),
      cache_(options.use_result_cache ? cache : nullptr) {
  GES_CHECK(latency_.hop_mean >= 0.0);
  GES_CHECK(latency_.hop_jitter >= 0.0);
}

AsyncSearchEngine::~AsyncSearchEngine() = default;

std::unique_ptr<QueryWorkspace> AsyncSearchEngine::acquire_workspace() {
  if (workspace_pool_.empty()) return std::make_unique<QueryWorkspace>();
  auto ws = std::move(workspace_pool_.back());
  workspace_pool_.pop_back();
  return ws;
}

double AsyncSearchEngine::next_latency(Run& run) {
  const double jitter =
      latency_.hop_jitter > 0.0
          ? run.rng.uniform(-latency_.hop_jitter, latency_.hop_jitter)
          : 0.0;
  return std::max(1e-6, latency_.hop_mean + jitter);
}

void AsyncSearchEngine::schedule_message(const std::shared_ptr<Run>& run,
                                         p2p::FaultChannel channel, p2p::NodeId from,
                                         p2p::NodeId to,
                                         std::function<void()> handler) {
  GES_COUNT("ges.async.messages", 1);
  ++run->in_flight;
  double delay = next_latency(*run);
  auto wrapped = [this, run, handler = std::move(handler)] {
#if GES_OBS
    // Re-install this run's builder for the handler: queries interleave
    // on the queue, so the sink must follow the run, not the thread.
    obs::FlightScope flight_scope(run->flight.get());
#endif
    handler();
    message_done(run);
  };
  if (faults_ != nullptr && faults_->enabled()) {
    const uint64_t key = p2p::FaultInjector::pair_key(from, to);
    const uint64_t nonce = run->guid * 0x10000ULL + run->message_seq++;
    if (faults_->blocked(from, to) ||
        faults_->drop_message(channel, key, nonce)) {
      // Lost in transit: the in-flight slot is held until the arrival
      // time so completion reflects the initiator's wait, but the
      // handler never runs.
      run->timers.push_back(
          queue_->schedule_after(delay, [this, run] { message_done(run); }));
      return;
    }
    delay += faults_->delivery_delay(channel, key, nonce);
    if (faults_->duplicate_message(channel, key, nonce)) {
      // Second copy; idempotent handlers / GUID bookkeeping absorb it.
      ++run->in_flight;
      run->timers.push_back(queue_->schedule_after(delay, wrapped));
    }
  }
  run->timers.push_back(queue_->schedule_after(delay, std::move(wrapped)));
}

void AsyncSearchEngine::message_done(const std::shared_ptr<Run>& run) {
  GES_CHECK(run->in_flight > 0);
  --run->in_flight;
  maybe_finish(run);
}

/// Serve the query from `node`'s result cache. On a hit the node enters
/// probe_order (it answered without an index evaluation), cached
/// documents not already retrieved are appended, and the run is marked
/// satisfied — in-flight messages drain, but nothing expands further.
bool AsyncSearchEngine::try_cache(const std::shared_ptr<Run>& run, NodeId node) {
  if (cache_ == nullptr) return false;
  const auto* docs = cache_->probe(node, run->cache_sig);
  if (docs == nullptr) return false;
  if (options_.strict_result_cache) {
    cache_->verify_strict(run->query, options_.doc_rel_threshold, *docs);
  }
  run->mark_seen(node);
  auto& trace = run->result.trace;
  const auto probe_index = static_cast<uint32_t>(trace.probe_order.size());
  trace.probe_order.push_back(node);
  for (const auto& d : *docs) {
    if (run->already_retrieved(d.doc)) continue;
    trace.retrieved.push_back({d.doc, d.score, probe_index});
    ++run->responses;
  }
  ++trace.cache_hits;
  run->cache_hit = true;
  if (node == run->initiator) {
    // The answer is local to the initiator: first hit at zero latency.
    if (run->result.first_hit_at < 0.0) {
      run->result.first_hit_at = queue_->now();
      GES_INSTANT("first_hit", "search", run->guid);
    }
  } else {
#if GES_OBS
    // The response message is caused by the cache hit: attach its fault
    // decisions under the cache-probe event (noted as node's anchor by
    // the bank's hook).
    if (run->flight) run->flight->set_context(run->flight->probe_event_of(node));
#endif
    // A remote cache answered; the response still travels back.
    schedule_message(run, p2p::FaultChannel::kWalk, node, run->initiator,
                     [this, run] { deliver_hit(run, 0); });
  }
  return true;
}

/// After an uncached completion, absorb the result set at the initiator
/// plus the first store_fanout probed nodes (the response retraces the
/// query path). Cache-served queries never re-store, so staleness cannot
/// compound.
void AsyncSearchEngine::store_results(Run& run) {
  const auto& trace = run.result.trace;
  if (cache_ == nullptr || run.cache_hit || trace.retrieved.empty()) return;
  std::vector<p2p::CachedResultDoc> docs;
  docs.reserve(trace.retrieved.size());
  for (const auto& r : trace.retrieved) {
    const NodeId owner = trace.probe_order[r.probe_index];
    docs.push_back({r.doc, r.score, owner, network_->node_vector_version(owner)});
  }
  const size_t limit =
      std::min(trace.probe_order.size(), cache_->config().store_fanout + 1);
  for (size_t i = 0; i < limit; ++i) {
    cache_->store(trace.probe_order[i], run.cache_sig, docs);
  }
}

void AsyncSearchEngine::maybe_finish(const std::shared_ptr<Run>& run) {
  if (run->in_flight == 0 && !run->finished) {
    run->finished = true;
    run->result.completed_at = queue_->now();
    store_results(*run);
    if (run->ws != nullptr) {
      run->result.trace.rel_evals = run->ws->rel_evals();
      run->result.trace.rel_memo_hits = run->ws->rel_memo_hits();
      GES_COUNT("ges.search.rel_evals", run->result.trace.rel_evals);
      GES_COUNT("ges.search.rel_memo_hits", run->result.trace.rel_memo_hits);
      workspace_pool_.push_back(std::move(run->ws));
    }
    if (options_.account_bytes) {
      GES_COUNT("ges.net.bytes.walk",
                run->result.trace.walk_steps * run->walk_frame_bytes);
      GES_COUNT("ges.net.bytes.flood",
                run->result.trace.flood_messages * run->flood_frame_bytes);
    }
    GES_COUNT("ges.async.completed", 1);
#if GES_OBS
    if (run->flight) {
      const char* reason =
          run->cache_hit ? "cache_hit"
          : run->result.trace.probes() >= run->budget
              ? "budget"
              : (options_.max_responses != 0 &&
                 run->responses >= options_.max_responses)
                    ? "responses"
                    : "drained";
      obs::flight().submit(run->flight->finish(
          reason, detail::flight_cost_of(run->result.trace), queue_->now()));
      run->flight.reset();
    }
#endif
#if GES_OBS
    // The engine is event-driven and strictly serial, so the query span
    // (submit → last message drained) is safe to record here with sim
    // timestamps taken straight from the result.
    if (obs::enabled()) {
      obs::global().trace().record_complete(
          "query", "search", run->result.submitted_at,
          run->result.completed_at - run->result.submitted_at, run->guid,
          {{"probes", static_cast<double>(run->result.trace.probes())},
           {"hits", static_cast<double>(run->result.trace.retrieved.size())},
           {"first_hit_at", run->result.first_hit_at}});
    }
#endif
    runs_.erase(run->guid);
    if (run->done) run->done(run->result);
  }
}

bool AsyncSearchEngine::cancel(Guid guid) {
  auto it = runs_.find(guid);
  if (it == runs_.end()) return false;
  auto run = it->second;
  size_t released = 0;
  for (auto& timer : run->timers) released += timer.cancel() ? 1 : 0;
  run->timers.clear();
  ++cancelled_;
  GES_COUNT("ges.async.cancelled", 1);
  GES_CHECK_MSG(run->in_flight >= released, "in-flight underflow on cancel");
  run->in_flight -= released;
  // Outside dispatch every in-flight message owns a live timer, so the
  // run finishes right here; from inside one of the run's own handlers
  // the current message still holds its in-flight slot and that
  // handler's message_done completes the run at the same sim time.
  maybe_finish(run);
  return true;
}

bool AsyncSearchEngine::probe(const std::shared_ptr<Run>& run, NodeId node) {
  run->mark_seen(node);
  auto& trace = run->result.trace;
  const auto probe_index = static_cast<uint32_t>(trace.probe_order.size());
  trace.probe_order.push_back(node);
  const auto& index = network_->index(node);
  const auto docs =
      run->ws != nullptr
          ? index.evaluate(run->query, options_.doc_rel_threshold, run->ws->arena())
          : index.evaluate(run->query, options_.doc_rel_threshold);
  bool is_target = false;
  for (const auto& d : docs) {
    trace.retrieved.push_back({d.doc, d.score, probe_index});
    ++run->responses;
    if (d.score >= options_.target_rel_threshold) is_target = true;
  }
#if GES_OBS
  // The probe attaches under the message that delivered the query here
  // (context set by the scheduling site) and becomes node's anchor; the
  // hit response below is caused by the probe, so re-anchor the context.
  if (run->flight) {
    const int32_t id =
        run->flight->add(obs::FlightEventKind::kProbe, queue_->now());
    if (obs::FlightEvent* ev = run->flight->event(id)) {
      ev->from = node;
      ev->count = static_cast<int32_t>(docs.size());
      ev->flag = is_target ? 1 : 0;
    }
    run->flight->note_probe_event(node, id);
    run->flight->set_context(id);
  }
#endif
  if (!docs.empty()) {
    // Query hit travels back to the initiator as its own message.
    schedule_message(run, p2p::FaultChannel::kWalk, node, run->initiator,
                     [this, run] { deliver_hit(run, 0); });
  }
  return is_target;
}

void AsyncSearchEngine::deliver_hit(const std::shared_ptr<Run>& run,
                                    size_t /*new_docs*/) {
  if (run->result.first_hit_at < 0.0) {
    run->result.first_hit_at = queue_->now();
    GES_INSTANT("first_hit", "search", run->guid);
  }
}

void AsyncSearchEngine::start_flood(const std::shared_ptr<Run>& run,
                                    NodeId target) {
  ++run->result.trace.target_count;
  for (const NodeId next : network_->neighbors(target, LinkType::kSemantic)) {
    ++run->result.trace.flood_messages;
    run->result.trace.bytes_sent += run->flood_frame_bytes;
    int32_t send_event = -1;
#if GES_OBS
    // One flood edge = one kFloodSend under the sender's probe event;
    // the context carries it through the fault decisions at schedule
    // time, the capture re-anchors it at delivery time.
    if (run->flight) {
      send_event =
          run->flight->add(obs::FlightEventKind::kFloodSend,
                           run->flight->probe_event_of(target), queue_->now());
      if (obs::FlightEvent* ev = run->flight->event(send_event)) {
        ev->from = target;
        ev->to = next;
        ev->bytes = static_cast<uint32_t>(run->flood_frame_bytes);
      }
      run->flight->set_context(send_event);
    }
#endif
    schedule_message(run, p2p::FaultChannel::kFlood, target, next,
                     [this, run, next, target, send_event] {
#if GES_OBS
                       if (run->flight) run->flight->set_context(send_event);
#endif
                       deliver_flood(run, next, target, 1);
                     });
  }
}

void AsyncSearchEngine::deliver_flood(const std::shared_ptr<Run>& run, NodeId at,
                                      NodeId from, size_t depth) {
  if (run->seen(at)) return;  // duplicate GUID: discarded
  if (run->satisfied(options_)) return;
  probe(run, at);
  if (options_.flood_radius != 0 && depth >= options_.flood_radius) return;
  for (const NodeId next : network_->neighbors(at, LinkType::kSemantic)) {
    if (next == from) continue;
    ++run->result.trace.flood_messages;
    run->result.trace.bytes_sent += run->flood_frame_bytes;
    int32_t send_event = -1;
#if GES_OBS
    if (run->flight) {
      send_event =
          run->flight->add(obs::FlightEventKind::kFloodSend,
                           run->flight->probe_event_of(at), queue_->now());
      if (obs::FlightEvent* ev = run->flight->event(send_event)) {
        ev->from = at;
        ev->to = next;
        ev->bytes = static_cast<uint32_t>(run->flood_frame_bytes);
      }
      run->flight->set_context(send_event);
    }
#endif
    schedule_message(run, p2p::FaultChannel::kFlood, at, next,
                     [this, run, next, at, depth, send_event] {
#if GES_OBS
                       if (run->flight) run->flight->set_context(send_event);
#endif
                       deliver_flood(run, next, at, depth + 1);
                     });
  }
}

void AsyncSearchEngine::continue_walk(const std::shared_ptr<Run>& run,
                                      NodeId from) {
  if (run->satisfied(options_) || run->ttl_left == 0 ||
      run->result.trace.walk_steps >= run->walk_cap) {
    return;
  }
  const NodeId next =
      run->ws != nullptr
          ? detail::pick_walk_target(*network_, options_, from, *run->ws, run->rng)
          : detail::pick_walk_target(*network_, options_, run->query, from,
                                     run->legacy_forwarded, run->rng);
  if (next == p2p::kInvalidNode) return;
  --run->ttl_left;
  ++run->result.trace.walk_steps;
  run->result.trace.bytes_sent += run->walk_frame_bytes;
  int32_t hop_event = -1;
#if GES_OBS
  if (run->flight) {
    // Consume the walk-policy's selection detail even when the event
    // itself is dropped by the per-query cap.
    double rel = -1.0;
    bool via_supernode = false;
    run->flight->take_walk_choice(&rel, &via_supernode);
    hop_event = run->flight->add(obs::FlightEventKind::kWalkHop,
                                 run->flight->probe_event_of(from),
                                 queue_->now());
    if (obs::FlightEvent* ev = run->flight->event(hop_event)) {
      ev->from = from;
      ev->to = next;
      ev->value = rel;
      ev->flag = via_supernode ? 1 : 0;
      ev->bytes = static_cast<uint32_t>(run->walk_frame_bytes);
    }
    run->flight->set_context(hop_event);
  }
#endif
  schedule_message(run, p2p::FaultChannel::kWalk, from, next,
                   [this, run, next, hop_event] {
#if GES_OBS
                     if (run->flight) run->flight->set_context(hop_event);
#endif
                     deliver_walk(run, next);
                   });
}

void AsyncSearchEngine::deliver_walk(const std::shared_ptr<Run>& run, NodeId at) {
  if (run->satisfied(options_)) return;
  if (!run->seen(at)) {
    if (try_cache(run, at)) return;  // walk hop served the answer
    const bool is_target = probe(run, at);
    if (is_target && !run->satisfied(options_)) start_flood(run, at);
  }
  continue_walk(run, at);
}

Guid AsyncSearchEngine::submit(const ir::SparseVector& query, NodeId initiator,
                               uint64_t seed,
                               std::function<void(const AsyncQueryResult&)> done) {
  GES_CHECK_MSG(network_->alive(initiator), "initiator " << initiator << " is dead");
  GES_COUNT("ges.async.queries", 1);
  auto run = std::make_shared<Run>();
  run->guid = next_guid_++;
  run->query = query;
  run->initiator = initiator;
  run->rng = util::Rng(seed);
  run->done = std::move(done);
  run->result.guid = run->guid;
  run->result.submitted_at = queue_->now();
  run->budget =
      options_.probe_budget == 0 ? network_->alive_count() : options_.probe_budget;
  run->ttl_left = options_.ttl == 0 ? ~size_t{0} : options_.ttl;
  run->walk_cap = 20 * network_->alive_count() + 1000;
  run->result.trace.probe_order.reserve(
      std::min(run->budget, network_->alive_count()));
  run->result.trace.retrieved.reserve(64);
  if (options_.use_workspace) {
    run->ws = acquire_workspace();
    run->ws->begin_query(*network_, run->query);
  }
  if (cache_ != nullptr) run->cache_sig = p2p::query_signature(run->query);
  if (options_.account_bytes) {
    run->walk_frame_bytes = p2p::wire::walk_query_frame_size(run->query.size());
    run->flood_frame_bytes =
        p2p::wire::flood_forward_frame_size(run->query.size());
  }
  runs_.emplace(run->guid, run);

#if GES_OBS
  if (obs::flight().enabled()) {
    run->flight = std::make_unique<obs::FlightBuilder>();
    run->flight->begin(obs::flight().next_ordinal(), run->guid, initiator,
                       /*async=*/true, queue_->now(),
                       obs::flight().config().max_events_per_query);
  }
  obs::FlightScope flight_scope(run->flight.get());
#endif

  // Bootstrap token keeps the run alive through the synchronous part.
  ++run->in_flight;
  if (!try_cache(run, initiator)) {
    const bool is_target = probe(run, initiator);
    if (is_target && !run->satisfied(options_)) start_flood(run, initiator);
    continue_walk(run, initiator);
  }
  message_done(run);
  return run->guid;
}

}  // namespace ges::core
