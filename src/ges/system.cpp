#include "ges/system.hpp"

#include "util/check.hpp"

namespace ges::core {

GesSystem::GesSystem(const corpus::Corpus& corpus, GesBuildConfig config)
    : config_(std::move(config)) {
  util::Rng capacity_rng(util::derive_seed(config_.seed, 10));
  auto capacities = config_.capacities.sample_many(corpus.num_nodes(), capacity_rng);
  network_ = std::make_unique<p2p::Network>(corpus, std::move(capacities), config_.net);
  adaptation_ = std::make_unique<TopologyAdaptation>(
      *network_, config_.params, util::derive_seed(config_.seed, 11));
}

void GesSystem::build() {
  GES_CHECK_MSG(!built_, "GesSystem::build() already ran");
  built_ = true;
  util::Rng boot_rng(util::derive_seed(config_.seed, 12));
  p2p::bootstrap_random_graph(*network_, config_.bootstrap_avg_degree, boot_rng);
  adaptation_->run_rounds(config_.adaptation_rounds);
}

SearchOptions GesSystem::default_search_options() const {
  SearchOptions opt;
  opt.doc_rel_threshold = config_.params.doc_rel_threshold;
  opt.flood_radius = config_.params.flood_radius;
  opt.capacity_aware = config_.params.capacity_aware_search;
  opt.supernode_threshold = config_.capacities.supernode_threshold();
  return opt;
}

p2p::SearchTrace GesSystem::search(const ir::SparseVector& query,
                                   p2p::NodeId initiator, util::Rng& rng) const {
  return search(query, initiator, default_search_options(), rng);
}

p2p::SearchTrace GesSystem::search(const ir::SparseVector& query,
                                   p2p::NodeId initiator, const SearchOptions& options,
                                   util::Rng& rng) const {
  return GesSearch(*network_, options).search(query, initiator, rng);
}

}  // namespace ges::core
