#include "ges/virtual_nodes.hpp"

#include <algorithm>
#include <unordered_map>

#include "ir/kmeans.hpp"
#include "util/check.hpp"

namespace ges::core {

VirtualMapping build_virtual_corpus(const corpus::Corpus& corpus,
                                    const VirtualNodeParams& params) {
  GES_CHECK(params.max_virtual_per_node >= 1);
  GES_CHECK(params.min_docs_per_virtual >= 1);

  VirtualMapping mapping;
  mapping.virtuals_of.resize(corpus.num_nodes());

  // Copy the term dictionary by re-interning (TermIds are preserved
  // because interning order is preserved).
  for (size_t t = 0; t < corpus.dict.size(); ++t) {
    mapping.virtual_corpus.dict.intern(corpus.dict.term(static_cast<ir::TermId>(t)));
  }

  // Documents keep their DocIds; only the owning node changes.
  mapping.virtual_corpus.docs = corpus.docs;
  mapping.virtual_corpus.queries = corpus.queries;

  for (size_t p = 0; p < corpus.num_nodes(); ++p) {
    const auto& docs = corpus.node_docs[p];
    size_t clusters = 1;
    if (docs.size() >= 2 * params.min_docs_per_virtual) {
      clusters = std::min(params.max_virtual_per_node,
                          docs.size() / params.min_docs_per_virtual);
    }

    std::vector<uint32_t> doc_cluster(docs.size(), 0);
    if (clusters > 1) {
      std::vector<const ir::SparseVector*> vectors;
      vectors.reserve(docs.size());
      for (const auto d : docs) vectors.push_back(&corpus.docs[d].vector);
      ir::KMeansParams kmeans;
      kmeans.clusters = clusters;
      kmeans.max_iterations = params.kmeans_iterations;
      kmeans.centroid_terms = 0;  // local collections are small
      kmeans.seed = util::derive_seed(params.seed, p);
      doc_cluster = ir::spherical_kmeans(vectors, kmeans).assignment;
    }

    // Materialize one virtual node per non-empty cluster.
    std::unordered_map<uint32_t, p2p::NodeId> cluster_virtual;
    for (size_t i = 0; i < docs.size(); ++i) {
      const auto [it, inserted] = cluster_virtual.emplace(
          doc_cluster[i],
          static_cast<p2p::NodeId>(mapping.virtual_corpus.node_docs.size()));
      if (inserted) {
        mapping.virtual_corpus.node_docs.emplace_back();
        mapping.physical_of.push_back(static_cast<p2p::NodeId>(p));
        mapping.virtuals_of[p].push_back(it->second);
      }
      const p2p::NodeId v = it->second;
      mapping.virtual_corpus.node_docs[v].push_back(docs[i]);
      mapping.virtual_corpus.docs[docs[i]].node =
          static_cast<corpus::NodeIndex>(v);
    }
  }
  return mapping;
}

p2p::SearchTrace project_to_physical(const p2p::SearchTrace& trace,
                                     const VirtualMapping& mapping) {
  p2p::SearchTrace out;
  out.walk_steps = trace.walk_steps;
  out.flood_messages = trace.flood_messages;
  out.target_count = trace.target_count;

  // Collapse the probe order: the first probe of any virtual node hosted
  // by a physical node probes that physical node.
  std::unordered_map<p2p::NodeId, uint32_t> physical_probe_index;
  std::vector<uint32_t> remap(trace.probe_order.size(), 0);
  for (size_t i = 0; i < trace.probe_order.size(); ++i) {
    const p2p::NodeId v = trace.probe_order[i];
    GES_CHECK(v < mapping.virtual_count());
    const p2p::NodeId p = mapping.physical_of[v];
    const auto [it, inserted] =
        physical_probe_index.emplace(p, static_cast<uint32_t>(out.probe_order.size()));
    if (inserted) out.probe_order.push_back(p);
    remap[i] = it->second;
  }

  out.retrieved.reserve(trace.retrieved.size());
  for (const auto& r : trace.retrieved) {
    GES_CHECK(r.probe_index < remap.size());
    out.retrieved.push_back({r.doc, r.score, remap[r.probe_index]});
  }
  return out;
}

}  // namespace ges::core
