#pragma once

#include <memory>

#include "corpus/corpus.hpp"
#include "ges/params.hpp"
#include "ges/search.hpp"
#include "ges/topology_adaptation.hpp"
#include "p2p/capacity.hpp"
#include "p2p/network.hpp"

namespace ges::core {

/// Everything needed to stand up a GES deployment over a corpus.
struct GesBuildConfig {
  GesParams params;

  /// Node-vector truncation size s (0 = full) and host-cache capacity.
  p2p::NetworkConfig net;

  /// Capacity assignment (uniform by default; gnutella() for the
  /// heterogeneous experiments).
  p2p::CapacityProfile capacities = p2p::CapacityProfile::uniform();

  /// Average degree of the initial randomly-connected topology
  /// (paper §5.4: the simulation starts from a random graph which the
  /// adaptation then restructures).
  double bootstrap_avg_degree = 6.0;

  /// Adaptation rounds run by build().
  size_t adaptation_rounds = 40;

  uint64_t seed = 1;
};

/// Facade tying the corpus, overlay, topology adaptation and search
/// protocol together — the high-level public API of the library.
///
///   GesSystem system(corpus, config);
///   system.build();                       // bootstrap + adapt
///   auto trace = system.search(query_vec, initiator, rng);
class GesSystem {
 public:
  GesSystem(const corpus::Corpus& corpus, GesBuildConfig config);

  /// Bootstrap the random topology and run the configured number of
  /// adaptation rounds. Idempotent per instance (call once).
  void build();

  p2p::Network& network() { return *network_; }
  const p2p::Network& network() const { return *network_; }
  TopologyAdaptation& adaptation() { return *adaptation_; }
  const GesBuildConfig& config() const { return config_; }

  /// Search options derived from the build config; callers may tweak the
  /// returned value and pass it to search().
  SearchOptions default_search_options() const;

  /// Run one query with the default options.
  p2p::SearchTrace search(const ir::SparseVector& query, p2p::NodeId initiator,
                          util::Rng& rng) const;

  /// Run one query with explicit options.
  p2p::SearchTrace search(const ir::SparseVector& query, p2p::NodeId initiator,
                          const SearchOptions& options, util::Rng& rng) const;

 private:
  GesBuildConfig config_;
  std::unique_ptr<p2p::Network> network_;
  std::unique_ptr<TopologyAdaptation> adaptation_;
  bool built_ = false;
};

}  // namespace ges::core
