#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "ir/local_index.hpp"
#include "ir/relevance.hpp"
#include "ir/sparse_vector.hpp"
#include "p2p/network.hpp"
#include "p2p/types.hpp"

namespace ges::core {

/// Reusable per-query scratch state for the GES query execution data
/// plane. One workspace serves any number of *sequential* queries with
/// zero steady-state allocation: every per-query structure is either
/// epoch-stamped (begin_query bumps the epoch instead of clearing) or a
/// pooled buffer whose capacity survives across queries.
///
/// Contents:
///  * an epoch-stamped dense visited set (replaces the per-query
///    `unordered_set<NodeId>` GUID bookkeeping),
///  * flat per-node walk bookkeeping — a tried-neighbor list per visited
///    node, slots handed out lazily from a pool (replaces the
///    `unordered_map<NodeId, unordered_set<NodeId>>`),
///  * a densified query view (TermId -> weight scatter array) so scoring
///    a node vector against the query is one linear pass with O(1)
///    lookups,
///  * an epoch-stamped per-neighbor relevance memo: revisited nodes never
///    recompute REL(replica, Q) for the same query. Entries are keyed by
///    (owner, network-wide replica stamp) so a mid-query heartbeat
///    refresh or install — which bumps the stamp — transparently
///    invalidates the memo, keeping traces byte-identical to the
///    memo-free path,
///  * pooled candidate / frontier buffers for pick_walk_target and flood,
///    and a ScoreArena for LocalIndex evaluation.
///
/// Engines own workspaces thread-locally (GesSearch) or per in-flight
/// run from a pool (AsyncSearchEngine); a workspace must never be shared
/// by interleaved queries.
class QueryWorkspace {
 public:
  /// One flood-frontier element (BFS along semantic links).
  struct FloodItem {
    p2p::NodeId node = p2p::kInvalidNode;
    p2p::NodeId from = p2p::kInvalidNode;
    uint32_t depth = 0;
  };

  /// Start a new query: bump the epoch (logically clearing the visited
  /// set, walk bookkeeping and relevance memo in O(1)), size the
  /// node-indexed arrays to the network, bind the densified query view,
  /// and zero the per-query counters.
  void begin_query(const p2p::Network& net, const ir::SparseVector& query) {
    if (++epoch_ == 0) {
      // u32 wraparound after ~4B queries: stale stamps could alias the
      // fresh epoch, so pay one full clear and restart at 1.
      std::fill(seen_epoch_.begin(), seen_epoch_.end(), 0u);
      std::fill(walk_epoch_.begin(), walk_epoch_.end(), 0u);
      for (auto& e : rel_memo_) e.epoch = 0;
      epoch_ = 1;
    }
    const size_t nodes = net.size();
    if (seen_epoch_.size() < nodes) {
      seen_epoch_.resize(nodes, 0u);
      walk_epoch_.resize(nodes, 0u);
      walk_slot_.resize(nodes, 0u);
      rel_memo_.resize(nodes);
    }
    query_view_.bind(query);
    tried_in_use_ = 0;
    rel_evals_ = 0;
    rel_memo_hits_ = 0;
  }

  // --- Visited set (GUID bookkeeping) --------------------------------

  bool seen(p2p::NodeId node) const { return seen_epoch_[node] == epoch_; }
  void mark_seen(p2p::NodeId node) { seen_epoch_[node] = epoch_; }

  // --- Walk bookkeeping ----------------------------------------------

  /// The list of neighbors `node` has already forwarded this query to.
  /// First touch per (query, node) assigns a pooled slot and returns it
  /// empty; the list's capacity is reused across queries.
  std::vector<p2p::NodeId>& tried(p2p::NodeId node) {
    if (walk_epoch_[node] != epoch_) {
      walk_epoch_[node] = epoch_;
      if (tried_in_use_ == tried_pool_.size()) tried_pool_.emplace_back();
      walk_slot_[node] = static_cast<uint32_t>(tried_in_use_++);
      tried_pool_[walk_slot_[node]].clear();
    }
    return tried_pool_[walk_slot_[node]];
  }

  // --- Relevance memo ------------------------------------------------

  /// REL(replica held by `owner` of `neighbor`, bound query), memoized
  /// per neighbor for the current query. A hit requires the same owner
  /// and an unchanged network-wide replica stamp — every write to any
  /// replica slot bumps that counter, so an unchanged value proves the
  /// memoized slot's bytes are unchanged without touching the slot's
  /// hash map. Staleness divergence between owners forces a recompute
  /// (owner mismatch), as does any mid-query install or heartbeat
  /// refresh anywhere in the network (stamp mismatch — conservative for
  /// unrelated slots, but the recompute reads the same bytes and returns
  /// the bit-identical value). The synchronous engine never mutates the
  /// network mid-query, so there every same-owner revisit is a hit.
  double rel(const p2p::Network& net, p2p::NodeId owner, p2p::NodeId neighbor) {
    const uint64_t net_stamp = net.replica_stamp();
    RelEntry& entry = rel_memo_[neighbor];
    if (entry.epoch == epoch_ && entry.owner == owner && entry.stamp == net_stamp) {
      ++rel_memo_hits_;
      return entry.value;
    }
    ++rel_evals_;
    const auto view = net.replica_view(owner, neighbor);
    const double value =
        view.vector != nullptr ? query_view_.dot(*view.vector) : 0.0;
    entry.epoch = epoch_;
    entry.owner = owner;
    entry.stamp = net_stamp;
    entry.value = value;
    return value;
  }

  uint64_t rel_evals() const { return rel_evals_; }
  uint64_t rel_memo_hits() const { return rel_memo_hits_; }

  // --- Pooled buffers -------------------------------------------------

  const ir::DensifiedQuery& query_view() const { return query_view_; }
  std::vector<p2p::NodeId>& alive_buffer() { return alive_buf_; }
  std::vector<p2p::NodeId>& available_buffer() { return available_buf_; }
  std::vector<FloodItem>& flood_frontier() { return flood_frontier_; }
  ir::ScoreArena& arena() { return arena_; }

 private:
  struct RelEntry {
    uint32_t epoch = 0;
    p2p::NodeId owner = p2p::kInvalidNode;
    uint64_t stamp = 0;
    double value = 0.0;
  };

  std::vector<uint32_t> seen_epoch_;   // node -> epoch it was last visited
  std::vector<uint32_t> walk_epoch_;   // node -> epoch of its tried slot
  std::vector<uint32_t> walk_slot_;    // node -> index into tried_pool_
  std::vector<std::vector<p2p::NodeId>> tried_pool_;
  size_t tried_in_use_ = 0;
  std::vector<RelEntry> rel_memo_;     // neighbor -> memoized REL(X, Q)
  ir::DensifiedQuery query_view_;
  std::vector<p2p::NodeId> alive_buf_;
  std::vector<p2p::NodeId> available_buf_;
  std::vector<FloodItem> flood_frontier_;
  ir::ScoreArena arena_;
  uint32_t epoch_ = 0;
  uint64_t rel_evals_ = 0;
  uint64_t rel_memo_hits_ = 0;
};

}  // namespace ges::core
