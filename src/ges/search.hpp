#pragma once

#include "ir/sparse_vector.hpp"
#include "obs/flight_recorder.hpp"
#include "p2p/fault_injection.hpp"
#include "p2p/network.hpp"
#include "p2p/search_trace.hpp"
#include "util/rng.hpp"

namespace ges::core {

/// Options of one GES query execution (paper §4.5).
struct SearchOptions {
  /// Biased-walk TTL (decremented on walk steps only, as in the paper);
  /// 0 = unbounded (used when deriving full recall-vs-cost curves).
  size_t ttl = 0;

  /// Discard the query once this many documents have been retrieved;
  /// 0 = unbounded.
  size_t max_responses = 0;

  /// Stop after this many distinct nodes evaluated the query;
  /// 0 = the number of alive nodes (exhaustive).
  size_t probe_budget = 0;

  /// Controlled-flooding radius (semantic-link hops from the target
  /// node); 0 = the whole semantic group.
  size_t flood_radius = 0;

  /// A document counts as retrieved when REL(D,Q) >= this; <= 0 means any
  /// positive score.
  double doc_rel_threshold = 0.0;

  /// A probed node becomes a semantic-group *target* (walk stops, flood
  /// starts) when one of its documents scores >= this. The paper uses a
  /// single unnamed "relevance threshold"; we keep the target decision
  /// separate from the retrieval rule so short queries can still return
  /// every positive-scoring document (§6.1(4)'s 98.5 % ceiling). With
  /// 3-4-term queries against ~180-term documents, scores of strongly
  /// relevant documents land around 0.1-0.3.
  double target_rel_threshold = 0.10;

  /// Capacity-aware biased walks (paper §4.5): non-supernodes forward to
  /// a supernode neighbor when they have one.
  bool capacity_aware = false;

  /// Capacity at or above which a node is a supernode.
  p2p::Capacity supernode_threshold = 1e18;

  /// Execute on the reusable QueryWorkspace data plane (epoch-stamped
  /// visited set, flat walk bookkeeping, memoized REL(X, Q), pooled
  /// buffers). Off = the allocation-per-step legacy containers. Both
  /// paths produce byte-identical traces — the toggle exists for the
  /// equivalence suites and A/B benchmarks, and defaults to on.
  bool use_workspace = true;

  /// Query-result cache (ges/result_cache.hpp): probe the per-peer
  /// caches — at the initiator and at every walk hop — before falling
  /// back to local-index evaluation, and store completed result sets
  /// along the walk path. A hit serves the full cached answer and ends
  /// the query. Default off so all pre-cache golden traces stay
  /// byte-identical; has no effect unless a ResultCacheBank is wired
  /// into the searcher.
  bool use_result_cache = false;

  /// Assert (GES_CHECK) that every cache hit is byte-identical to fresh
  /// evaluation at each result's owner — the correctness backstop the
  /// test suites run with. Costs one full re-evaluation per hit; leave
  /// off outside tests.
  bool strict_result_cache = false;

  /// Charge each counted message its exact Wire-format-v1 frame size
  /// (p2p/wire.hpp): walk steps as WalkQuery frames, flood edges as
  /// FloodForward frames, into SearchTrace::bytes_sent, the per-event
  /// flight costs, and the ges.net.bytes.* counters. Strictly additive —
  /// message-unit counts and golden traces are identical either way (the
  /// equivalence suite proves it); off leaves bytes_sent at 0.
  bool account_bytes = true;
};

class ResultCacheBank;

namespace detail {

/// The query-autopsy cost block mirrors SearchTrace's tallies exactly
/// (shared by the sync and async engines), so the flight recorder's
/// output can be cross-checked against the simulation ground truth.
inline obs::FlightCost flight_cost_of(const p2p::SearchTrace& trace) {
  obs::FlightCost cost;
  cost.probes = trace.probes();
  cost.walk_steps = trace.walk_steps;
  cost.flood_messages = trace.flood_messages;
  cost.cache_hits = trace.cache_hits;
  cost.targets = trace.target_count;
  cost.retrieved_docs = trace.retrieved.size();
  cost.rel_evals = trace.rel_evals;
  cost.rel_memo_hits = trace.rel_memo_hits;
  cost.bytes_sent = trace.bytes_sent;
  return cost;
}

}  // namespace detail

/// The GES search protocol: biased walks over random links guided by the
/// replicated one-hop node vectors, switching to flooding along semantic
/// links whenever a target node is found, with GUID bookkeeping (walk:
/// forward to an untried neighbor, flushing when exhausted; flood:
/// duplicates discarded) — paper §4.5.
class GesSearch {
 public:
  /// The network must outlive the searcher. With a fault injector, walk
  /// and flood messages become lossy (drops and partition cuts): a lost
  /// walk message kills the query's walk, a lost flood message prunes
  /// that flood branch — both still cost their message. Fault decisions
  /// hash the injector seed with the message's edge and per-trace
  /// sequence number, so they never perturb `rng`'s stream: a zero-rate
  /// or absent injector reproduces the fault-free trace byte for byte.
  /// `cache` (optional) is the deployment's shared per-peer result-cache
  /// bank; it is only consulted when options.use_result_cache is set.
  /// Cache probes/stores mutate the bank (LRU stamps, stats), so
  /// bank-wired searches must run serially — the parallel eval harness
  /// constructs its searchers without a bank.
  GesSearch(const p2p::Network& network, SearchOptions options,
            const p2p::FaultInjector* faults = nullptr,
            ResultCacheBank* cache = nullptr);

  const SearchOptions& options() const { return options_; }

  /// Execute one query from `initiator` (must be alive). `rng` breaks
  /// ties among equally attractive neighbors; equal seeds give equal
  /// traces.
  p2p::SearchTrace search(const ir::SparseVector& query, p2p::NodeId initiator,
                          util::Rng& rng) const;

 private:
  const p2p::Network* network_;
  SearchOptions options_;
  const p2p::FaultInjector* faults_;
  ResultCacheBank* cache_;
};

}  // namespace ges::core
