#include "ges/topology_adaptation.hpp"

#include <algorithm>
#include <unordered_set>

#include "obs/telemetry.hpp"
#include "p2p/random_walk.hpp"
#include "p2p/wire.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace ges::core {

using p2p::HostCacheEntry;
using p2p::LinkType;
using p2p::Network;
using p2p::NodeId;

TopologyAdaptation::TopologyAdaptation(Network& network, GesParams params, uint64_t seed)
    : network_(&network), params_(params), rng_(seed) {
  GES_CHECK(params.min_links >= 1);
  GES_CHECK(params.max_links >= params.min_links);
  GES_CHECK(params.alpha >= 0.0 && params.alpha <= 1.0);
}

AdaptationRoundStats TopologyAdaptation::run_round() {
  AdaptationRoundStats stats;
  auto nodes = network_->alive_nodes();
  // Partition state advances once per round, before any plan-phase read.
  if (faults_ != nullptr) faults_->begin_round(nodes, round_);
  rng_.shuffle(nodes);
  const uint64_t round_seed = rng_.next();

  // Phase 1 — plan: read-only against the frozen start-of-round state.
  // Per-node RNG streams make the result independent of execution order,
  // so the pool and the sequential fallback produce identical plans.
  std::vector<NodePlan> plans(nodes.size());
  const auto plan_one = [&](size_t i) {
    util::Rng rng(util::derive_seed(round_seed, uint64_t{2} * nodes[i]));
    plans[i] = plan_node(nodes[i], rng);
  };
  if (params_.parallel_rounds) {
    util::global_pool().parallel_for(nodes.size(), plan_one);
  } else {
    for (size_t i = 0; i < nodes.size(); ++i) plan_one(i);
  }

  // Phase 2 — commit: serial, in the round's shuffled node order.
  for (size_t i = 0; i < nodes.size(); ++i) {
    util::Rng rng(util::derive_seed(round_seed, uint64_t{2} * nodes[i] + 1));
    commit_node(nodes[i], plans[i], rng, stats);
  }
  ++round_;
  // Round totals are recorded here, after the serial commit barrier, so
  // the exported counters are identical whether the plan phase ran on
  // the pool or sequentially.
  GES_COUNT("ges.adapt.rounds", 1);
  GES_COUNT("ges.adapt.walk_messages", stats.walk_messages);
  GES_COUNT("ges.adapt.handshake_messages", stats.handshake_messages);
  GES_COUNT("ges.adapt.handshake_aborts", stats.handshake_aborts);
  GES_COUNT("ges.adapt.handshake_deaths", stats.handshake_deaths);
  GES_COUNT("ges.adapt.handshake_retries", stats.handshake_retries);
  GES_COUNT("ges.adapt.backoff_skips", stats.backoff_skips);
  GES_COUNT("ges.adapt.gossip_messages", stats.gossip_messages);
  GES_COUNT("ges.adapt.cache_assists", stats.cache_assists);
  GES_COUNT("ges.adapt.discovery_skipped", stats.discovery_skipped);
  GES_COUNT("ges.adapt.semantic_links_added", stats.semantic_links_added);
  GES_COUNT("ges.adapt.semantic_links_dropped", stats.semantic_links_dropped);
  GES_COUNT("ges.adapt.random_links_added", stats.random_links_added);
  GES_COUNT("ges.adapt.random_links_dropped", stats.random_links_dropped);
  GES_COUNT("ges.adapt.links_reclassified", stats.links_reclassified);
  if (params_.account_bytes) {
    GES_COUNT("ges.net.bytes.adapt_walk", stats.walk_bytes);
    GES_COUNT("ges.net.bytes.handshake", stats.handshake_bytes);
    GES_COUNT("ges.net.bytes.gossip", stats.gossip_bytes);
  }
  return stats;
}

AdaptationRoundStats& AdaptationRoundStats::operator+=(
    const AdaptationRoundStats& other) {
  semantic_links_added += other.semantic_links_added;
  semantic_links_dropped += other.semantic_links_dropped;
  random_links_added += other.random_links_added;
  random_links_dropped += other.random_links_dropped;
  links_reclassified += other.links_reclassified;
  walk_messages += other.walk_messages;
  handshake_messages += other.handshake_messages;
  cache_assists += other.cache_assists;
  gossip_messages += other.gossip_messages;
  discovery_skipped += other.discovery_skipped;
  handshake_aborts += other.handshake_aborts;
  handshake_deaths += other.handshake_deaths;
  handshake_retries += other.handshake_retries;
  backoff_skips += other.backoff_skips;
  walk_bytes += other.walk_bytes;
  handshake_bytes += other.handshake_bytes;
  gossip_bytes += other.gossip_bytes;
  return *this;
}

AdaptationRoundStats TopologyAdaptation::run_rounds(size_t rounds) {
  AdaptationRoundStats total;
  for (size_t r = 0; r < rounds; ++r) total += run_round();
  return total;
}

p2p::TimerHandle TopologyAdaptation::schedule_rounds(p2p::EventQueue& queue,
                                                     p2p::SimTime interval,
                                                     AdaptationRoundStats* total) {
  return queue.schedule_every(interval, [this, total] {
    const AdaptationRoundStats stats = run_round();
    if (total != nullptr) *total += stats;
  });
}

void TopologyAdaptation::node_step(NodeId node, AdaptationRoundStats& stats) {
  const NodePlan plan = plan_node(node, rng_);
  commit_node(node, plan, rng_, stats);
}

size_t TopologyAdaptation::reclassify_node(NodeId node) {
  AdaptationRoundStats stats;
  if (network_->alive(node)) reclassify_links(node, stats);
  return stats.links_reclassified;
}

bool TopologyAdaptation::in_backoff(NodeId node) const {
  const auto it = backoff_.find(node);
  return it != backoff_.end() && round_ < it->second.next_round;
}

void TopologyAdaptation::arm_backoff(NodeId node) {
  Backoff& b = backoff_[node];
  b.strikes = b.strikes < 31 ? b.strikes + 1 : b.strikes;
  const size_t base = std::max<size_t>(1, params_.handshake_backoff_base);
  uint64_t wait = base;
  for (uint32_t s = 1; s < b.strikes && wait < params_.handshake_backoff_max; ++s) {
    wait *= 2;  // exponential per consecutive fault abort
  }
  wait = std::min<uint64_t>(wait, std::max<size_t>(base, params_.handshake_backoff_max));
  b.next_round = round_ + 1 + wait;
}

void TopologyAdaptation::clear_backoff(NodeId node) { backoff_.erase(node); }

bool TopologyAdaptation::handshake_delivered(NodeId node, NodeId peer, uint64_t salt,
                                             AdaptationRoundStats& stats) {
  if (faults_ == nullptr || !faults_->enabled()) {
    stats.handshake_messages += 3;
    if (params_.account_bytes) {
      stats.handshake_bytes += p2p::wire::handshake_legs_frame_size();
    }
    return true;
  }
  // handshake_delivered only runs in the serial commit phase, so the
  // three-leg attempt gets a span (track = initiating node's lane).
  GES_SPAN(span, "handshake", "adapt", node);
  span.arg("peer", static_cast<double>(peer));
  const bool ok = [&] {
    const auto it = backoff_.find(node);
    if (it != backoff_.end() && it->second.strikes > 0) ++stats.handshake_retries;

    const uint64_t key = p2p::FaultInjector::pair_key(node, peer);
    const uint64_t nonce = (round_ << 3) + salt * 4;
    using p2p::FaultChannel;
    // Leg 1 — request (node -> peer).
    ++stats.handshake_messages;
    if (params_.account_bytes) {
      stats.handshake_bytes += p2p::wire::handshake_request_frame_size();
    }
    if (faults_->blocked(node, peer) ||
        faults_->drop_message(FaultChannel::kHandshake, key, nonce)) {
      ++stats.handshake_aborts;
      arm_backoff(node);
      return false;
    }
    // The peer can die right after taking the request (§4.2's churn case);
    // the initiator times out and aborts with nothing committed anywhere.
    if (faults_->kill_mid_handshake(key, nonce)) {
      network_->deactivate(peer);
      if (on_death_) on_death_(peer);
      ++stats.handshake_deaths;
      arm_backoff(node);
      return false;
    }
    // Leg 2 — response (peer -> node), leg 3 — confirm (node -> peer).
    for (uint64_t leg = 1; leg <= 2; ++leg) {
      ++stats.handshake_messages;
      if (params_.account_bytes) {
        stats.handshake_bytes += leg == 1
                                     ? p2p::wire::handshake_response_frame_size()
                                     : p2p::wire::handshake_confirm_frame_size();
      }
      if (faults_->drop_message(FaultChannel::kHandshake, key, nonce + leg)) {
        ++stats.handshake_aborts;
        arm_backoff(node);
        return false;
      }
    }
    clear_backoff(node);
    return true;
  }();
  span.arg("ok", ok ? 1.0 : 0.0);
  return ok;
}

TopologyAdaptation::NodePlan TopologyAdaptation::plan_node(NodeId node,
                                                           util::Rng& rng) const {
  NodePlan plan;
  if (!network_->alive(node)) return plan;
  if (params_.satisfaction_adaptive && rng.chance(node_satisfaction(node))) {
    // Satisfied nodes throttle the expensive discovery traffic; cheap
    // local maintenance (reclassification) still runs every round.
    plan.discovery_skipped = true;
  } else {
    plan_discovery(node, rng, plan);
  }
  if (params_.gossip_host_caches) plan_gossip(node, rng, plan);
  return plan;
}

double TopologyAdaptation::node_satisfaction(NodeId node) const {
  const p2p::Capacity capacity = network_->capacity(node);
  const size_t max_sem = params_.max_sem_links(capacity);
  const size_t max_rnd = params_.max_rnd_links(capacity);

  // Semantic side: each link contributes its relevance margin over the
  // threshold (a barely-qualifying neighbor satisfies less than a
  // strongly relevant one).
  double sem = 1.0;
  if (max_sem > 0) {
    double filled = 0.0;
    for (const NodeId peer : network_->neighbors(node, p2p::LinkType::kSemantic)) {
      const double rel = network_->rel_nodes(node, peer);
      const double margin =
          params_.node_rel_threshold >= 1.0
              ? 1.0
              : (rel - params_.node_rel_threshold) / (1.0 - params_.node_rel_threshold);
      filled += std::clamp(0.5 + 0.5 * margin, 0.0, 1.0);
    }
    sem = std::min(1.0, filled / static_cast<double>(max_sem));
  }
  double rnd = 1.0;
  if (max_rnd > 0) {
    rnd = std::min(1.0, static_cast<double>(network_->degree(
                            node, p2p::LinkType::kRandom)) /
                            static_cast<double>(max_rnd));
  }
  return std::min(sem, rnd);
}

void TopologyAdaptation::plan_gossip(NodeId node, util::Rng& rng,
                                     NodePlan& plan) const {
  const auto& semantic = network_->neighbors(node, p2p::LinkType::kSemantic);
  if (semantic.empty()) return;
  const NodeId peer = semantic[rng.index(semantic.size())];
  ++plan.gossip_messages;
  if (params_.account_bytes) {
    // The exchange ships the peer's whole semantic host cache (entries
    // carry no vectors — paper §4.3); the receiver re-scores and filters
    // locally. Sized at send time, charged even when the frame is lost.
    const size_t entries = network_->semantic_cache(peer).entries().size();
    plan.gossip_bytes += p2p::wire::host_cache_exchange_frame_size(
        entries, entries * p2p::wire::host_cache_record_size(0));
  }
  if (faults_ != nullptr &&
      (faults_->blocked(node, peer) ||
       faults_->drop_message(p2p::FaultChannel::kGossip,
                             p2p::FaultInjector::pair_key(node, peer), round_))) {
    return;  // the exchange was sent but never arrived
  }
  // Merge the peer's semantic host cache, re-scoring for this node and
  // keeping only entries that qualify from our perspective.
  for (const auto* entry : network_->semantic_cache(peer).entries()) {
    if (entry->node == node || !network_->alive(entry->node)) continue;
    const double rel = network_->rel_nodes(node, entry->node);
    if (rel < params_.node_rel_threshold) continue;
    plan.semantic_inserts.push_back(make_entry(entry->node, rel, false));
  }
}

HostCacheEntry TopologyAdaptation::make_entry(NodeId about, double rel,
                                              bool with_vector) const {
  HostCacheEntry entry;
  entry.node = about;
  entry.capacity = network_->capacity(about);
  entry.degree = network_->degree(about);
  entry.rel_score = rel;
  if (with_vector) entry.vector = network_->node_vector(about);
  return entry;
}

void TopologyAdaptation::plan_discovery(NodeId node, util::Rng& rng,
                                        NodePlan& plan) const {
  // Two periodic random-walk queries (paper §4.3): one requesting nodes
  // with REL >= threshold (-> semantic host cache), one requesting nodes
  // below the threshold (-> random host cache).
  for (const bool want_relevant : {true, false}) {
    // Fault nonces separate the two walks of each round; hop indices are
    // added inside random_walk. Decisions stay independent of plan-phase
    // execution order (stateless injector), so serial and parallel
    // rounds see identical fault patterns.
    const uint64_t walk_nonce = (round_ * 2 + (want_relevant ? 0 : 1)) << 12;
    const size_t frame_bytes =
        params_.account_bytes ? p2p::wire::discovery_probe_frame_size() : 0;
    const auto walk = p2p::random_walk(*network_, node, params_.walk_ttl,
                                       params_.walk_max_responses * 4, rng,
                                       faults_, walk_nonce, frame_bytes);
    plan.walk_messages += walk.hops;
    plan.walk_bytes += walk.bytes_sent;
    size_t responses = 0;
    for (const NodeId seen : walk.visited) {
      if (responses >= params_.walk_max_responses) break;
      const double rel = network_->rel_nodes(node, seen);
      const bool relevant = rel >= params_.node_rel_threshold;
      if (relevant != want_relevant) continue;
      ++responses;
      if (relevant) {
        // The semantic host cache stores no node vectors (paper §4.3).
        plan.semantic_inserts.push_back(make_entry(seen, rel, false));
        if (params_.cache_assisted_discovery) {
          // §4.3 optimization: the relevant node also answers with
          // qualifying candidates from its own semantic host cache.
          for (const auto* entry : network_->semantic_cache(seen).entries()) {
            if (responses >= params_.walk_max_responses) break;
            if (entry->node == node || !network_->alive(entry->node)) continue;
            const double assist_rel = network_->rel_nodes(node, entry->node);
            if (assist_rel < params_.node_rel_threshold) continue;
            plan.semantic_inserts.push_back(make_entry(entry->node, assist_rel, false));
            ++responses;
            ++plan.cache_assists;
          }
        }
      } else {
        plan.random_inserts.push_back(make_entry(seen, rel, true));
      }
    }
  }
}

void TopologyAdaptation::commit_node(NodeId node, const NodePlan& plan, util::Rng& rng,
                                     AdaptationRoundStats& stats) {
  if (!network_->alive(node)) return;
  stats.walk_messages += plan.walk_messages;
  stats.gossip_messages += plan.gossip_messages;
  stats.cache_assists += plan.cache_assists;
  stats.walk_bytes += plan.walk_bytes;
  stats.gossip_bytes += plan.gossip_bytes;
  if (plan.discovery_skipped) ++stats.discovery_skipped;
  for (const auto& entry : plan.semantic_inserts) {
    network_->semantic_cache(node).insert(entry);
  }
  for (const auto& entry : plan.random_inserts) {
    network_->random_cache(node).insert(entry);
  }
  if (faults_ != nullptr && in_backoff(node)) {
    // Retry-with-backoff: after a fault-aborted handshake the node sits
    // out its link attempts for a few rounds; cheap local maintenance
    // (reclassification) still runs.
    ++stats.backoff_skips;
  } else {
    try_add_semantic(node, stats);
    try_add_random(node, rng, stats);
  }
  reclassify_links(node, stats);
}

bool TopologyAdaptation::accept_semantic(NodeId self, NodeId /*candidate*/, double rel,
                                         NodeId* victim) const {
  *victim = p2p::kInvalidNode;
  const auto& sem = network_->neighbors(self, LinkType::kSemantic);
  const size_t max_sem = params_.max_sem_links(network_->capacity(self));
  if (sem.size() < max_sem) return true;
  if (max_sem == 0) return false;

  // Highest-relevance current neighbor; if the candidate beats all of
  // them, the lowest-relevance neighbor is dropped unconditionally.
  NodeId lowest = p2p::kInvalidNode;
  double lowest_rel = 0.0;
  double highest_rel = 0.0;
  for (const NodeId n : sem) {
    const double r = network_->rel_nodes(self, n);
    if (lowest == p2p::kInvalidNode || r < lowest_rel) {
      lowest = n;
      lowest_rel = r;
    }
    highest_rel = std::max(highest_rel, r);
  }
  if (rel > highest_rel) {
    *victim = lowest;
    return true;
  }

  // Otherwise: among neighbors with lower relevance than the candidate
  // that are not poorly connected, drop the lowest-relevance one.
  NodeId best_victim = p2p::kInvalidNode;
  double best_victim_rel = 0.0;
  for (const NodeId n : sem) {
    const double r = network_->rel_nodes(self, n);
    if (r >= rel) continue;
    if (network_->degree(n) <= params_.min_links) continue;  // poorly connected
    if (best_victim == p2p::kInvalidNode || r < best_victim_rel) {
      best_victim = n;
      best_victim_rel = r;
    }
  }
  if (best_victim == p2p::kInvalidNode) return false;
  *victim = best_victim;
  return true;
}

void TopologyAdaptation::try_add_semantic(NodeId node, AdaptationRoundStats& stats) {
  if (params_.max_sem_links(network_->capacity(node)) == 0) return;
  // Candidate: alive, not already a neighbor, highest relevance score.
  const Network& net = *network_;
  const HostCacheEntry* candidate = net.semantic_cache(node).best_by_relevance(
      [&](const HostCacheEntry& e) {
        return net.alive(e.node) && e.node != node && !net.has_link(node, e.node);
      });
  if (candidate == nullptr) return;
  const NodeId peer = candidate->node;
  const double rel = network_->rel_nodes(node, peer);
  if (rel < params_.node_rel_threshold) {
    // The cached score was stale; the peer no longer qualifies.
    network_->semantic_cache(node).erase(peer);
    return;
  }

  // Three-way handshake: both endpoints decide independently. A leg
  // lost to a fault (or the peer dying mid-handshake) aborts with
  // nothing committed on either side.
  if (!handshake_delivered(node, peer, /*salt=*/0, stats)) return;
  NodeId victim_self = p2p::kInvalidNode;
  NodeId victim_peer = p2p::kInvalidNode;
  if (!accept_semantic(node, peer, rel, &victim_self)) return;
  if (!accept_semantic(peer, node, rel, &victim_peer)) return;

  // Commit order matters for fault tolerance: install the confirmed link
  // first, then drop the replaced victims, so no abort path can shed a
  // victim without gaining the new link (half-committed state).
  if (!network_->connect(node, peer, LinkType::kSemantic)) return;
  ++stats.semantic_links_added;
  if (victim_self != p2p::kInvalidNode) {
    network_->disconnect(node, victim_self);
    ++stats.semantic_links_dropped;
  }
  if (victim_peer != p2p::kInvalidNode && victim_peer != node &&
      network_->has_link(peer, victim_peer)) {
    network_->disconnect(peer, victim_peer);
    ++stats.semantic_links_dropped;
  }
}

bool TopologyAdaptation::accept_random(NodeId self, NodeId candidate,
                                       NodeId* victim) const {
  *victim = p2p::kInvalidNode;
  const auto& rnd = network_->neighbors(self, LinkType::kRandom);
  const size_t max_rnd = params_.max_rnd_links(network_->capacity(self));
  if (rnd.size() < max_rnd) return true;
  if (max_rnd == 0) return false;

  const double cand_capacity = network_->capacity(candidate);
  const uint32_t cand_degree = network_->degree(candidate);

  // If the candidate's capacity beats every existing random neighbor's,
  // accept unconditionally, dropping the best-connected neighbor (it can
  // afford the loss).
  double highest_capacity = 0.0;
  for (const NodeId n : rnd) highest_capacity = std::max(highest_capacity, network_->capacity(n));
  if (cand_capacity > highest_capacity) {
    NodeId drop = p2p::kInvalidNode;
    uint32_t drop_degree = 0;
    for (const NodeId n : rnd) {
      const uint32_t d = network_->degree(n);
      if (drop == p2p::kInvalidNode || d > drop_degree) {
        drop = n;
        drop_degree = d;
      }
    }
    *victim = drop;
    return true;
  }

  // Otherwise: among neighbors with capacity <= the candidate's, take Z
  // with the highest degree; replace only if the candidate has a lower
  // degree than Z (protects poorly-connected neighbors, paper §4.3).
  NodeId z = p2p::kInvalidNode;
  uint32_t z_degree = 0;
  for (const NodeId n : rnd) {
    if (network_->capacity(n) > cand_capacity) continue;
    const uint32_t d = network_->degree(n);
    if (z == p2p::kInvalidNode || d > z_degree) {
      z = n;
      z_degree = d;
    }
  }
  if (z == p2p::kInvalidNode || cand_degree >= z_degree) return false;
  *victim = z;
  return true;
}

void TopologyAdaptation::try_add_random(NodeId node, util::Rng& rng,
                                        AdaptationRoundStats& stats) {
  const Network& net = *network_;
  const auto acceptable = [&](const HostCacheEntry& e) {
    return net.alive(e.node) && e.node != node && !net.has_link(node, e.node);
  };
  // Prefer the highest-capacity candidate exceeding our own capacity;
  // fall back to a uniformly random acceptable entry (paper §4.3).
  const double own_capacity = net.capacity(node);
  const HostCacheEntry* candidate = net.random_cache(node).best_by_capacity(
      [&](const HostCacheEntry& e) { return acceptable(e) && e.capacity > own_capacity; });
  if (candidate == nullptr) {
    std::vector<const HostCacheEntry*> pool;
    for (const auto* e : net.random_cache(node).entries()) {
      if (acceptable(*e)) pool.push_back(e);
    }
    if (pool.empty()) return;
    candidate = pool[rng.index(pool.size())];
  }
  const NodeId peer = candidate->node;

  if (!handshake_delivered(node, peer, /*salt=*/1, stats)) return;
  NodeId victim_self = p2p::kInvalidNode;
  NodeId victim_peer = p2p::kInvalidNode;
  if (!accept_random(node, peer, &victim_self)) return;
  if (!accept_random(peer, node, &victim_peer)) return;

  // Link-then-drop, as in try_add_semantic: aborts never half-commit.
  if (!network_->connect(node, peer, LinkType::kRandom)) return;
  ++stats.random_links_added;
  if (victim_self != p2p::kInvalidNode) {
    network_->disconnect(node, victim_self);
    ++stats.random_links_dropped;
  }
  if (victim_peer != p2p::kInvalidNode && victim_peer != node &&
      network_->has_link(peer, victim_peer)) {
    network_->disconnect(peer, victim_peer);
    ++stats.random_links_dropped;
  }
}

void TopologyAdaptation::reclassify_links(NodeId node, AdaptationRoundStats& stats) {
  // Paper §4.3 (end): when a semantic link's relevance drops below the
  // threshold, drop the link and remember the peer in the random host
  // cache; symmetrically for random links rising above the threshold.
  const auto semantic = network_->neighbors(node, LinkType::kSemantic);
  for (const NodeId peer : semantic) {
    const double rel = network_->rel_nodes(node, peer);
    if (rel >= params_.node_rel_threshold) continue;
    network_->disconnect(node, peer);
    network_->random_cache(node).insert(make_entry(peer, rel, true));
    ++stats.links_reclassified;
  }
  const auto random = network_->neighbors(node, LinkType::kRandom);
  for (const NodeId peer : random) {
    const double rel = network_->rel_nodes(node, peer);
    if (rel < params_.node_rel_threshold) continue;
    network_->disconnect(node, peer);
    network_->semantic_cache(node).insert(make_entry(peer, rel, false));
    ++stats.links_reclassified;
  }
}

size_t count_semantic_groups(const p2p::Network& network, size_t min_size) {
  std::unordered_set<NodeId> seen;
  size_t groups = 0;
  for (const NodeId start : network.alive_nodes()) {
    if (seen.count(start) > 0) continue;
    if (network.degree(start, LinkType::kSemantic) == 0) continue;
    // BFS over semantic links.
    size_t size = 0;
    std::vector<NodeId> frontier{start};
    seen.insert(start);
    while (!frontier.empty()) {
      const NodeId current = frontier.back();
      frontier.pop_back();
      ++size;
      for (const NodeId next : network.neighbors(current, LinkType::kSemantic)) {
        if (seen.insert(next).second) frontier.push_back(next);
      }
    }
    if (size >= min_size) ++groups;
  }
  return groups;
}

double mean_semantic_link_relevance(const p2p::Network& network) {
  double sum = 0.0;
  size_t count = 0;
  for (const NodeId node : network.alive_nodes()) {
    for (const NodeId peer : network.neighbors(node, LinkType::kSemantic)) {
      if (peer < node) continue;  // each undirected link once
      sum += network.rel_nodes(node, peer);
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace ges::core
