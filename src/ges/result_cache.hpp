#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ir/sparse_vector.hpp"
#include "p2p/cache_protocol.hpp"
#include "p2p/network.hpp"

namespace ges::core {

/// Sizing and policy of the per-peer query-result caches.
struct ResultCacheConfig {
  /// Capacity (entry count) of the lowest capacity class. A node's cache
  /// holds min(max_entries, base_entries + entries_per_decade *
  /// floor(log10(capacity))) entries — supernodes, which see most repeat
  /// traffic, cache the most (paper §4.1's capacity distribution spans
  /// five decades).
  size_t base_entries = 16;
  size_t entries_per_decade = 16;
  size_t max_entries = 256;

  /// Keep only the top-k scored documents of a stored result set;
  /// 0 = keep every retrieved document (strict hits then reproduce the
  /// full fresh evaluation, not just a prefix).
  size_t top_k = 0;

  /// Sim-time TTL of an entry; <= 0 = entries never expire by age.
  double ttl = 0.0;

  /// On search completion the result set is stored at the initiator and
  /// at up to this many nodes on the walk path (the response retraces the
  /// walk, so pass-through peers can absorb it — classic Gnutella
  /// response caching); 0 = initiator only.
  size_t store_fanout = 8;

  /// Charge every cache-protocol message its exact Wire-format-v1 frame
  /// size (p2p/wire.hpp) into the byte fields of ResultCacheStats and the
  /// ges.net.bytes.cache_* counters: one CacheProbe frame per probe, one
  /// CacheResult frame per hit, one CacheStore frame per store. Strictly
  /// additive — hit/miss/store behaviour is identical either way; off
  /// leaves the byte fields at 0.
  bool account_bytes = true;
};

/// One per-peer cache: query signature -> cached result set, bounded by
/// the peer's capacity class, evicted by least (popularity, last-use).
/// All iteration/eviction scans run over a plain vector in slot order, so
/// behavior is fully deterministic — no hash-map iteration order leaks
/// into traces.
class ResultCache {
 public:
  struct Entry {
    p2p::QuerySignature signature;
    std::vector<p2p::CachedResultDoc> docs;
    p2p::CacheEntryMeta meta;
    uint64_t popularity = 0;  // hits served by this entry
    uint64_t last_used = 0;   // bank-global LRU tick of the last hit/store
  };

  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  const std::vector<Entry>& entries() const { return entries_; }

  Entry* find(p2p::QuerySignature sig);

  /// Insert or refresh `sig`'s entry. Returns the number of evictions
  /// performed (0 or 1): when full, the entry with the least
  /// (popularity, last_used) — the coldest, least recently touched one —
  /// is replaced. A refresh keeps the entry's popularity.
  size_t store(p2p::QuerySignature sig, std::vector<p2p::CachedResultDoc> docs,
               p2p::CacheEntryMeta meta, uint64_t tick);

  bool erase(p2p::QuerySignature sig);
  size_t clear();

  /// Drop every entry holding a result owned by `owner`; returns the
  /// number of entries dropped.
  size_t invalidate_owner(p2p::NodeId owner);

 private:
  size_t capacity_;
  std::vector<Entry> entries_;
};

/// Aggregate running counters (also exported as ges.cache.* telemetry).
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t stores = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;  // lazy-probe drops + eager churn drops

  /// Wire bytes of the cache protocol's frames (see
  /// ResultCacheConfig::account_bytes): probes, hit responses, stores.
  uint64_t probe_bytes = 0;
  uint64_t result_bytes = 0;
  uint64_t store_bytes = 0;
};

/// The network's bank of per-peer query-result caches. One instance per
/// deployment (ScenarioRunner owns one), shared by every search the
/// deployment runs; sized per node by capacity class at construction.
///
/// Validity is two-layered:
///  * lazily — probe() revalidates an entry against the full
///    cache-protocol rule (TTL, Network::content_stamp() fast path,
///    per-owner liveness + index-version slow path) and erases it on
///    failure, so a hit is always byte-identical to fresh evaluation;
///  * eagerly — on_node_departed() (wired to churn departures and
///    injected mid-handshake deaths) flushes the departed node's own
///    cache and drops every entry network-wide that references it as an
///    owner, which is what lets the overlay invariant sweep assert that
///    no cache anywhere holds dead-owner results.
class ResultCacheBank final : public p2p::ResultCacheInvalidationSink {
 public:
  ResultCacheBank(const p2p::Network& network, ResultCacheConfig config = {});

  const ResultCacheConfig& config() const { return config_; }
  const ResultCacheStats& stats() const { return stats_; }

  /// Sim-clock source for TTL bookkeeping; defaults to a constant 0
  /// (never expires anything). ScenarioRunner wires the event queue's
  /// now() in.
  void set_clock(std::function<p2p::SimTime()> clock);

  /// Look `sig` up in `node`'s cache. A valid hit returns the cached
  /// result set (pointer valid until the next bank mutation) and bumps
  /// the entry's popularity/LRU stamps; an invalid entry is erased and
  /// counted as both an invalidation and a miss.
  const std::vector<p2p::CachedResultDoc>* probe(p2p::NodeId node,
                                                 p2p::QuerySignature sig);

  /// Store a completed search's results in `node`'s cache (no-op for
  /// empty result sets and dead nodes). Applies the top-k truncation by
  /// (score desc, doc asc) while preserving the surviving documents'
  /// original order, so per-owner runs stay contiguous.
  void store(p2p::NodeId node, p2p::QuerySignature sig,
             const std::vector<p2p::CachedResultDoc>& docs);

  /// Eager churn invalidation (see class comment). O(total cached
  /// entries) per departure — departures are rare next to probes.
  void on_node_departed(p2p::NodeId node) override;

  /// Assert `docs` is byte-identical to freshly evaluating `query` at
  /// each owner's local index (GES_CHECK on mismatch) — the strict-mode
  /// backstop behind SearchOptions::strict_result_cache. With top_k == 0
  /// every per-owner run must equal the owner's full evaluation; with
  /// truncation each cached (doc, score) must appear in it exactly.
  void verify_strict(const ir::SparseVector& query, double doc_rel_threshold,
                     const std::vector<p2p::CachedResultDoc>& docs) const;

  // --- Introspection (invariant sweep, tests) -------------------------

  size_t entry_count(p2p::NodeId node) const { return caches_[node].size(); }
  size_t entry_capacity(p2p::NodeId node) const { return caches_[node].capacity(); }
  const ResultCache& cache(p2p::NodeId node) const { return caches_[node]; }

  /// Number of cached result documents in `node`'s cache whose owner is
  /// currently dead — must be 0 whenever eager invalidation is wired.
  size_t dead_owner_docs(p2p::NodeId node) const;

 private:
  p2p::SimTime now() const;

  const p2p::Network* network_;
  ResultCacheConfig config_;
  std::function<p2p::SimTime()> clock_;
  std::vector<ResultCache> caches_;
  uint64_t tick_ = 0;  // bank-global LRU clock
  ResultCacheStats stats_;
};

/// Cache capacity (entry count) of a node of the given capacity class
/// under `config` — exposed for tests.
size_t result_cache_entries_for(const ResultCacheConfig& config,
                                p2p::Capacity capacity);

}  // namespace ges::core
