#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ges/search.hpp"
#include "p2p/event_sim.hpp"
#include "p2p/fault_injection.hpp"
#include "p2p/network.hpp"
#include "p2p/search_trace.hpp"
#include "util/rng.hpp"

namespace ges::core {

class QueryWorkspace;

/// Per-hop message latency model for the asynchronous engine: each
/// forwarded query message arrives after mean + uniform(-jitter, jitter)
/// simulated seconds (clamped positive).
struct LatencyModel {
  double hop_mean = 0.05;
  double hop_jitter = 0.02;
};

/// Outcome of one asynchronous query execution.
struct AsyncQueryResult {
  p2p::Guid guid = 0;
  p2p::SearchTrace trace;

  /// Simulated time the query was submitted / produced its first
  /// retrieved document at the initiator / went quiescent.
  p2p::SimTime submitted_at = 0.0;
  p2p::SimTime first_hit_at = -1.0;  // -1 = no hits
  p2p::SimTime completed_at = 0.0;

  double time_to_first_hit() const {
    return first_hit_at < 0.0 ? -1.0 : first_hit_at - submitted_at;
  }
  double completion_time() const { return completed_at - submitted_at; }
};

/// Message-level, event-driven execution of the GES search protocol
/// (paper §4.5) on the discrete-event simulator: biased-walk messages
/// hop with latency; a target node floods its semantic group, each flood
/// message a timed event; query hits travel back to the initiator. The
/// synchronous GesSearch is the zero-latency projection of this engine —
/// it reports the same kind of trace, but AsyncSearchEngine additionally
/// yields response-time behaviour (time to first hit, completion time)
/// and supports many queries in flight at once.
///
/// The network and queue must outlive the engine; results are delivered
/// through the callback when a query goes quiescent (no messages left in
/// flight).
class AsyncSearchEngine {
 public:
  /// With a fault injector, every message (walk hop, flood edge, query
  /// hit) can be dropped, blocked by a partition, delayed, or delivered
  /// twice. Lost messages still occupy their in-flight slot until the
  /// scheduled arrival time, so completion_time reflects the timeout a
  /// real initiator would wait; duplicates are discarded by the GUID
  /// bookkeeping. A null/zero-rate injector is byte-identical to the
  /// fault-free engine.
  /// `cache` (optional) is the deployment's shared result-cache bank,
  /// consulted only when options.use_result_cache is set: the initiator
  /// and every walk hop probe their cache before evaluating the local
  /// index, a hit ends the query's expansion, and fresh completions are
  /// stored along the walk path (see ges/result_cache.hpp).
  AsyncSearchEngine(const p2p::Network& network, p2p::EventQueue& queue,
                    SearchOptions options, LatencyModel latency = {},
                    const p2p::FaultInjector* faults = nullptr,
                    ResultCacheBank* cache = nullptr);
  ~AsyncSearchEngine();

  /// Submit a query from `initiator`; the callback fires (during
  /// EventQueue::run*) exactly once. Returns the query's GUID.
  p2p::Guid submit(const ir::SparseVector& query, p2p::NodeId initiator,
                   uint64_t seed, std::function<void(const AsyncQueryResult&)> done);

  /// Abort an in-flight query: every outstanding message timer is
  /// cancelled on the event queue (the dead closures never fire) and the
  /// done callback runs immediately with the partial result
  /// (completed_at = now). Returns false for an unknown/finished GUID.
  /// The initiator going away mid-query — churned out with the rest of
  /// its timers — is the motivating caller.
  bool cancel(p2p::Guid guid);

  /// Queries cancelled via cancel().
  size_t cancelled() const { return cancelled_; }

  /// Queries still in flight.
  size_t pending() const { return runs_.size(); }

 private:
  struct Run;

  void deliver_walk(const std::shared_ptr<Run>& run, p2p::NodeId at);
  void deliver_flood(const std::shared_ptr<Run>& run, p2p::NodeId at,
                     p2p::NodeId from, size_t depth);
  void deliver_hit(const std::shared_ptr<Run>& run, size_t new_docs);
  void schedule_message(const std::shared_ptr<Run>& run, p2p::FaultChannel channel,
                        p2p::NodeId from, p2p::NodeId to,
                        std::function<void()> handler);
  void message_done(const std::shared_ptr<Run>& run);
  void maybe_finish(const std::shared_ptr<Run>& run);
  bool try_cache(const std::shared_ptr<Run>& run, p2p::NodeId node);
  void store_results(Run& run);
  bool probe(const std::shared_ptr<Run>& run, p2p::NodeId node);
  void start_flood(const std::shared_ptr<Run>& run, p2p::NodeId target);
  void continue_walk(const std::shared_ptr<Run>& run, p2p::NodeId from);
  double next_latency(Run& run);
  std::unique_ptr<QueryWorkspace> acquire_workspace();

  const p2p::Network* network_;
  p2p::EventQueue* queue_;
  SearchOptions options_;
  LatencyModel latency_;
  const p2p::FaultInjector* faults_;
  ResultCacheBank* cache_;  // null or options off = caching disabled
  p2p::Guid next_guid_ = 1;
  size_t cancelled_ = 0;
  std::unordered_map<p2p::Guid, std::shared_ptr<Run>> runs_;

  /// Queries interleave, so unlike GesSearch one thread-local workspace
  /// cannot serve them: each in-flight Run checks a workspace out of this
  /// pool at submit and returns it (with its warmed capacities) when the
  /// run finishes. Pool depth == max concurrent queries seen.
  std::vector<std::unique_ptr<QueryWorkspace>> workspace_pool_;
};

}  // namespace ges::core
