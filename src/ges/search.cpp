#include "ges/search.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "ges/query_workspace.hpp"
#include "ges/result_cache.hpp"
#include "ges/walk_policy.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "p2p/wire.hpp"
#include "util/check.hpp"

namespace ges::core {

using p2p::LinkType;
using p2p::Network;
using p2p::NodeId;
using p2p::SearchTrace;

namespace {

/// The per-thread workspace behind GesSearch. search() is const and runs
/// concurrently from the parallel eval harness (per_query_recall_at_cost
/// fans queries across the shared pool), so each thread owns its own
/// workspace; queries on one thread are sequential and share it.
QueryWorkspace& thread_workspace() {
  static thread_local QueryWorkspace ws;
  return ws;
}

/// Mutable state of one query execution. `ws` selects the data plane:
/// non-null uses the epoch-stamped workspace structures, null the legacy
/// per-query containers — both making exactly the same decisions.
struct QueryRun {
  const Network& net;
  const SearchOptions& opt;
  const ir::SparseVector& query;
  util::Rng& rng;
  const p2p::FaultInjector* faults;
  QueryWorkspace* ws;
  ResultCacheBank* cache;  // null = caching off for this query
  p2p::QuerySignature cache_sig;

  SearchTrace trace;
  std::unordered_set<NodeId> legacy_seen;      // nodes that processed the GUID
  detail::WalkBookkeeping legacy_forwarded;    // walk bookkeeping
  std::vector<QueryWorkspace::FloodItem> legacy_frontier;
  size_t budget;
  size_t responses = 0;

  /// Wire-format-v1 frame sizes of this query's messages, computed once:
  /// the query vector rides along unchanged, so every walk hop costs one
  /// WalkQuery frame and every flood edge one FloodForward frame. 0 when
  /// byte accounting is off.
  size_t walk_frame_bytes = 0;
  size_t flood_frame_bytes = 0;

  /// Flight recorder of this query; null when recording is off (always
  /// null under GES_OBS=0). Observation only.
  obs::FlightBuilder* fb = nullptr;
  const char* reason = "unknown";  // why the query stopped expanding

  QueryRun(const Network& n, const SearchOptions& o, const ir::SparseVector& q,
           util::Rng& r, const p2p::FaultInjector* f, QueryWorkspace* w,
           ResultCacheBank* c)
      : net(n), opt(o), query(q), rng(r), faults(f), ws(w), cache(c) {
    if (cache != nullptr) cache_sig = p2p::query_signature(q);
    if (o.account_bytes) {
      walk_frame_bytes = p2p::wire::walk_query_frame_size(q.size());
      flood_frame_bytes = p2p::wire::flood_forward_frame_size(q.size());
    }
    budget = o.probe_budget == 0 ? n.alive_count() : o.probe_budget;
    // Reserve the trace up front: probes are bounded by the budget (and
    // by the alive population), so the probe order never reallocates.
    trace.probe_order.reserve(std::min(budget, n.alive_count()));
    trace.retrieved.reserve(64);
    if (ws != nullptr) ws->begin_query(n, q);
  }

  bool seen(NodeId node) const {
    return ws != nullptr ? ws->seen(node) : legacy_seen.count(node) > 0;
  }

  void mark_seen(NodeId node) {
    if (ws != nullptr) {
      ws->mark_seen(node);
    } else {
      legacy_seen.insert(node);
    }
  }

  /// Message from `a` to `b` lost (drop or partition cut)? Nonces count
  /// the trace's messages so retries of the same edge fault
  /// independently; the hash never touches `rng`.
  bool message_lost(p2p::FaultChannel channel, NodeId a, NodeId b) const {
    if (faults == nullptr) return false;
    return faults->blocked(a, b) ||
           faults->drop_message(channel, p2p::FaultInjector::pair_key(a, b),
                                trace.walk_steps + trace.flood_messages);
  }

  bool out_of_budget() const { return trace.probes() >= budget; }
  bool enough_responses() const {
    return opt.max_responses != 0 && responses >= opt.max_responses;
  }
  bool done() const { return out_of_budget() || enough_responses(); }

  /// Evaluate the query at `node`. Returns true when the node is a
  /// semantic-group target.
  bool probe(NodeId node) {
    mark_seen(node);
    const auto probe_index = static_cast<uint32_t>(trace.probe_order.size());
    trace.probe_order.push_back(node);
    const auto& index = net.index(node);
    const auto docs = ws != nullptr
                          ? index.evaluate(query, opt.doc_rel_threshold, ws->arena())
                          : index.evaluate(query, opt.doc_rel_threshold);
    bool is_target = false;
    for (const auto& d : docs) {
      trace.retrieved.push_back({d.doc, d.score, probe_index});
      ++responses;
      if (d.score >= opt.target_rel_threshold) is_target = true;
    }
#if GES_OBS
    // The probe attaches under the message that delivered the query here
    // (walk hop / flood send / root) and becomes the node's anchor for
    // later expansion out of it.
    if (fb != nullptr) {
      const int32_t id =
          fb->add(obs::FlightEventKind::kProbe, obs::global().now());
      if (obs::FlightEvent* ev = fb->event(id)) {
        ev->from = node;
        ev->count = static_cast<int32_t>(docs.size());
        ev->flag = is_target ? 1 : 0;
      }
      fb->note_probe_event(node, id);
    }
#endif
    return is_target;
  }

  /// Flood the semantic group of `target` (paper §4.5): BFS along
  /// semantic links; nodes that already saw the GUID discard the message.
  /// The frontier is one reusable buffer consumed by index — FIFO order
  /// identical to the deque it replaced, without a fresh allocation per
  /// flood.
  void flood(NodeId target) {
    ++trace.target_count;
    auto& frontier = ws != nullptr ? ws->flood_frontier() : legacy_frontier;
    frontier.clear();
    frontier.push_back({target, p2p::kInvalidNode, 0});
    size_t head = 0;
    while (head < frontier.size() && !done()) {
      const QueryWorkspace::FloodItem item = frontier[head++];
      // Nodes on the radius boundary are probed (by their parent's loop
      // below) but never expand further, so only enqueue items that can.
      const bool children_expand =
          opt.flood_radius == 0 || item.depth + 1 < opt.flood_radius;
      for (const NodeId next : net.neighbors(item.node, LinkType::kSemantic)) {
        if (next == item.from) continue;
#if GES_OBS
        // One flood edge = one kFloodSend, recorded before the fault
        // decision so a drop attaches causally under the send. Parent is
        // the sender's probe event (why item.node holds the query).
        if (fb != nullptr) {
          const int32_t send =
              fb->add(obs::FlightEventKind::kFloodSend,
                      fb->probe_event_of(item.node), obs::global().now());
          if (obs::FlightEvent* ev = fb->event(send)) {
            ev->from = item.node;
            ev->to = next;
            ev->bytes = static_cast<uint32_t>(flood_frame_bytes);
          }
          fb->set_context(send);
        }
#endif
        const bool lost = message_lost(p2p::FaultChannel::kFlood, item.node, next);
        ++trace.flood_messages;
        trace.bytes_sent += flood_frame_bytes;  // sent even when lost
        if (lost) continue;  // branch pruned: the message never arrived
        if (seen(next)) continue;  // duplicate GUID: discarded
        if (done()) break;
        probe(next);
        if (children_expand) frontier.push_back({next, item.node, item.depth + 1});
      }
    }
  }

  /// Serve the query from `node`'s result cache if it holds a valid
  /// entry. On a hit the node is recorded in probe_order (it answered
  /// the query without evaluating its index), cached documents not
  /// already retrieved are appended at its probe index, and the query is
  /// complete — the cached set is a previous full search's answer.
  bool try_cache(NodeId node) {
    if (cache == nullptr) return false;
    const auto* docs = cache->probe(node, cache_sig);
    if (docs == nullptr) return false;
    if (opt.strict_result_cache) {
      cache->verify_strict(query, opt.doc_rel_threshold, *docs);
    }
    mark_seen(node);
    const auto probe_index = static_cast<uint32_t>(trace.probe_order.size());
    trace.probe_order.push_back(node);
    for (const auto& d : *docs) {
      if (already_retrieved(d.doc)) continue;
      trace.retrieved.push_back({d.doc, d.score, probe_index});
      ++responses;
    }
    ++trace.cache_hits;
    return true;
  }

  bool already_retrieved(ir::DocId doc) const {
    for (const auto& r : trace.retrieved) {
      if (r.doc == doc) return true;
    }
    return false;
  }

  /// After an uncached completion, absorb the result set into the caches
  /// along the response path: the initiator plus the first store_fanout
  /// probed nodes the response retraces (Gnutella responses travel back
  /// over the query path). Queries served from the cache never re-store —
  /// only fresh evaluations refresh entries, so staleness cannot
  /// compound.
  void store_results() {
    if (cache == nullptr || trace.cache_hits > 0 || trace.retrieved.empty()) {
      return;
    }
    std::vector<p2p::CachedResultDoc> docs;
    docs.reserve(trace.retrieved.size());
    for (const auto& r : trace.retrieved) {
      const NodeId owner = trace.probe_order[r.probe_index];
      docs.push_back({r.doc, r.score, owner, net.node_vector_version(owner)});
    }
    const size_t limit =
        std::min(trace.probe_order.size(), cache->config().store_fanout + 1);
    for (size_t i = 0; i < limit; ++i) {
      cache->store(trace.probe_order[i], cache_sig, docs);
    }
  }

  /// One biased-walk forwarding decision at `node` (paper §4.5); the
  /// policy is shared with the asynchronous engine.
  NodeId pick_next(NodeId node) {
    if (ws != nullptr) return detail::pick_walk_target(net, opt, node, *ws, rng);
    return detail::pick_walk_target(net, opt, query, node, legacy_forwarded, rng);
  }

  void finish_counters() {
    if (ws != nullptr) {
      trace.rel_evals = ws->rel_evals();
      trace.rel_memo_hits = ws->rel_memo_hits();
    }
  }
};

}  // namespace

GesSearch::GesSearch(const Network& network, SearchOptions options,
                     const p2p::FaultInjector* faults, ResultCacheBank* cache)
    : network_(&network), options_(options), faults_(faults), cache_(cache) {}

SearchTrace GesSearch::search(const ir::SparseVector& query, NodeId initiator,
                              util::Rng& rng) const {
  GES_CHECK_MSG(network_->alive(initiator), "initiator " << initiator << " is dead");
  QueryWorkspace* ws = options_.use_workspace ? &thread_workspace() : nullptr;
  ResultCacheBank* cache = options_.use_result_cache ? cache_ : nullptr;
  QueryRun run(*network_, options_, query, rng, faults_, ws, cache);

#if GES_OBS
  // Stack-local flight builder, installed as this thread's sink so the
  // hooks in walk_policy / fault_injection / result_cache attach events.
  // Serial contexts only (like spans): the parallel eval harness leaves
  // the recorder disabled, so run.fb stays null there.
  obs::FlightBuilder flight_builder;
  if (obs::flight().enabled()) {
    flight_builder.begin(obs::flight().next_ordinal(), /*guid=*/0, initiator,
                         /*async=*/false, obs::global().now(),
                         obs::flight().config().max_events_per_query);
    run.fb = &flight_builder;
  }
  obs::FlightScope flight_scope(run.fb);
#endif

  NodeId current = initiator;
  if (run.try_cache(current)) {
    run.reason = "cache_hit";
  } else {
    if (run.probe(current)) run.flood(current);

    size_t ttl_left = options_.ttl == 0 ? ~size_t{0} : options_.ttl;
    // Safety valve: a disconnected overlay can make the budget unreachable.
    const size_t max_steps = 20 * network_->alive_count() + 1000;

    while (!run.done() && ttl_left > 0 && run.trace.walk_steps < max_steps) {
      const NodeId next = run.pick_next(current);
      if (next == p2p::kInvalidNode) {
        run.reason = "no_neighbor";
        break;
      }
#if GES_OBS
      if (run.fb != nullptr) {
        // Consume the walk-policy's selection detail even when the event
        // itself is dropped by the per-query cap.
        double rel = -1.0;
        bool via_supernode = false;
        run.fb->take_walk_choice(&rel, &via_supernode);
        const int32_t hop =
            run.fb->add(obs::FlightEventKind::kWalkHop,
                        run.fb->probe_event_of(current), obs::global().now());
        if (obs::FlightEvent* ev = run.fb->event(hop)) {
          ev->from = current;
          ev->to = next;
          ev->value = rel;
          ev->flag = via_supernode ? 1 : 0;
          ev->bytes = static_cast<uint32_t>(run.walk_frame_bytes);
        }
        run.fb->set_context(hop);
      }
#endif
      const bool lost = run.message_lost(p2p::FaultChannel::kWalk, current, next);
      ++run.trace.walk_steps;
      run.trace.bytes_sent += run.walk_frame_bytes;
      --ttl_left;
      if (lost) {
        run.reason = "walk_lost";
        break;  // the query message died in transit; walk ends
      }
      current = next;
      if (!run.seen(current)) {
        if (run.try_cache(current)) {
          run.reason = "cache_hit";
          break;  // walk hop served the answer
        }
        const bool is_target = run.probe(current);
        if (run.done()) break;
        if (is_target) {
          run.flood(current);
          // Walks resume from the target node (current already is it).
        }
      }
    }
    if (run.reason[0] == 'u') {  // still "unknown": loop condition ended it
      run.reason = run.done() ? (run.out_of_budget() ? "budget" : "responses")
                 : ttl_left == 0 ? "ttl"
                                 : "step_cap";
    }
    run.store_results();
  }
  run.finish_counters();
#if GES_OBS
  if (run.fb != nullptr) {
    obs::flight().submit(run.fb->finish(
        run.reason, detail::flight_cost_of(run.trace), obs::global().now()));
  }
#endif
  // Counters only — searches run concurrently in the eval harness, so
  // spans (order-sensitive) are left to serial callers (ScenarioRunner,
  // AsyncSearchEngine). Never touches `rng`.
  GES_COUNT("ges.search.queries", 1);
  GES_COUNT("ges.search.walk_steps", run.trace.walk_steps);
  GES_COUNT("ges.search.flood_messages", run.trace.flood_messages);
  GES_COUNT("ges.search.probes", run.trace.probes());
  GES_COUNT("ges.search.targets", run.trace.target_count);
  GES_COUNT("ges.search.retrieved_docs", run.trace.retrieved.size());
  GES_COUNT("ges.search.rel_evals", run.trace.rel_evals);
  GES_COUNT("ges.search.rel_memo_hits", run.trace.rel_memo_hits);
  if (options_.account_bytes) {
    GES_COUNT("ges.net.bytes.walk",
              run.trace.walk_steps * run.walk_frame_bytes);
    GES_COUNT("ges.net.bytes.flood",
              run.trace.flood_messages * run.flood_frame_bytes);
  }
  GES_HIST("ges.search.probes_per_query", 0.0, 256.0, 32, run.trace.probes());
  return run.trace;
}

}  // namespace ges::core
