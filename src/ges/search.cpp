#include "ges/search.hpp"

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "ges/walk_policy.hpp"
#include "obs/telemetry.hpp"
#include "util/check.hpp"

namespace ges::core {

using p2p::LinkType;
using p2p::Network;
using p2p::NodeId;
using p2p::SearchTrace;

namespace {

/// Mutable state of one query execution.
struct QueryRun {
  const Network& net;
  const SearchOptions& opt;
  const ir::SparseVector& query;
  util::Rng& rng;
  const p2p::FaultInjector* faults;

  SearchTrace trace;
  std::unordered_set<NodeId> seen;  // nodes that processed the GUID
  detail::WalkBookkeeping forwarded;  // walk bookkeeping
  size_t budget;
  size_t responses = 0;

  QueryRun(const Network& n, const SearchOptions& o, const ir::SparseVector& q,
           util::Rng& r, const p2p::FaultInjector* f)
      : net(n), opt(o), query(q), rng(r), faults(f) {
    budget = o.probe_budget == 0 ? n.alive_count() : o.probe_budget;
  }

  /// Message from `a` to `b` lost (drop or partition cut)? Nonces count
  /// the trace's messages so retries of the same edge fault
  /// independently; the hash never touches `rng`.
  bool message_lost(p2p::FaultChannel channel, NodeId a, NodeId b) const {
    if (faults == nullptr) return false;
    return faults->blocked(a, b) ||
           faults->drop_message(channel, p2p::FaultInjector::pair_key(a, b),
                                trace.walk_steps + trace.flood_messages);
  }

  bool out_of_budget() const { return trace.probes() >= budget; }
  bool enough_responses() const {
    return opt.max_responses != 0 && responses >= opt.max_responses;
  }
  bool done() const { return out_of_budget() || enough_responses(); }

  /// Evaluate the query at `node`. Returns true when the node is a
  /// semantic-group target.
  bool probe(NodeId node) {
    seen.insert(node);
    const auto probe_index = static_cast<uint32_t>(trace.probe_order.size());
    trace.probe_order.push_back(node);
    const auto docs = net.index(node).evaluate(query, opt.doc_rel_threshold);
    bool is_target = false;
    for (const auto& d : docs) {
      trace.retrieved.push_back({d.doc, d.score, probe_index});
      ++responses;
      if (d.score >= opt.target_rel_threshold) is_target = true;
    }
    return is_target;
  }

  /// Flood the semantic group of `target` (paper §4.5): BFS along
  /// semantic links; nodes that already saw the GUID discard the message.
  void flood(NodeId target) {
    ++trace.target_count;
    struct Item {
      NodeId node;
      NodeId from;
      size_t depth;
    };
    std::deque<Item> frontier{{target, p2p::kInvalidNode, 0}};
    while (!frontier.empty() && !done()) {
      const Item item = frontier.front();
      frontier.pop_front();
      // Nodes on the radius boundary are probed (by their parent's loop
      // below) but never expand further, so only enqueue items that can.
      const bool children_expand =
          opt.flood_radius == 0 || item.depth + 1 < opt.flood_radius;
      for (const NodeId next : net.neighbors(item.node, LinkType::kSemantic)) {
        if (next == item.from) continue;
        const bool lost = message_lost(p2p::FaultChannel::kFlood, item.node, next);
        ++trace.flood_messages;
        if (lost) continue;  // branch pruned: the message never arrived
        if (seen.count(next) > 0) continue;  // duplicate GUID: discarded
        if (done()) break;
        probe(next);
        if (children_expand) frontier.push_back({next, item.node, item.depth + 1});
      }
    }
  }

  /// One biased-walk forwarding decision at `node` (paper §4.5); the
  /// policy is shared with the asynchronous engine.
  NodeId pick_next(NodeId node) {
    return detail::pick_walk_target(net, opt, query, node, forwarded, rng);
  }
};

}  // namespace

GesSearch::GesSearch(const Network& network, SearchOptions options,
                     const p2p::FaultInjector* faults)
    : network_(&network), options_(options), faults_(faults) {}

SearchTrace GesSearch::search(const ir::SparseVector& query, NodeId initiator,
                              util::Rng& rng) const {
  GES_CHECK_MSG(network_->alive(initiator), "initiator " << initiator << " is dead");
  QueryRun run(*network_, options_, query, rng, faults_);

  NodeId current = initiator;
  if (run.probe(current)) run.flood(current);

  size_t ttl_left = options_.ttl == 0 ? ~size_t{0} : options_.ttl;
  // Safety valve: a disconnected overlay can make the budget unreachable.
  const size_t max_steps = 20 * network_->alive_count() + 1000;

  while (!run.done() && ttl_left > 0 && run.trace.walk_steps < max_steps) {
    const NodeId next = run.pick_next(current);
    if (next == p2p::kInvalidNode) break;
    const bool lost = run.message_lost(p2p::FaultChannel::kWalk, current, next);
    ++run.trace.walk_steps;
    --ttl_left;
    if (lost) break;  // the query message died in transit; walk ends
    current = next;
    if (run.seen.count(current) == 0) {
      const bool is_target = run.probe(current);
      if (run.done()) break;
      if (is_target) {
        run.flood(current);
        // Walks resume from the target node (current already is it).
      }
    }
  }
  // Counters only — searches run concurrently in the eval harness, so
  // spans (order-sensitive) are left to serial callers (ScenarioRunner,
  // AsyncSearchEngine). Never touches `rng`.
  GES_COUNT("ges.search.queries", 1);
  GES_COUNT("ges.search.walk_steps", run.trace.walk_steps);
  GES_COUNT("ges.search.flood_messages", run.trace.flood_messages);
  GES_COUNT("ges.search.probes", run.trace.probes());
  GES_COUNT("ges.search.targets", run.trace.target_count);
  GES_COUNT("ges.search.retrieved_docs", run.trace.retrieved.size());
  GES_HIST("ges.search.probes_per_query", 0.0, 256.0, 32, run.trace.probes());
  return run.trace;
}

}  // namespace ges::core
