#pragma once

#include <unordered_map>
#include <unordered_set>

#include "ges/search.hpp"
#include "ir/relevance.hpp"
#include "p2p/network.hpp"
#include "util/rng.hpp"

namespace ges::core::detail {

/// Per-node GUID bookkeeping of a biased walk: which random neighbors a
/// node has already forwarded this query to (paper §4.5).
using WalkBookkeeping =
    std::unordered_map<p2p::NodeId, std::unordered_set<p2p::NodeId>>;

/// One biased-walk forwarding decision at `node` (paper §4.5), shared by
/// the synchronous (GesSearch) and asynchronous (AsyncSearchEngine)
/// engines:
///  * candidates are the alive random neighbors not yet forwarded to
///    (flushing the bookkeeping when all have been tried);
///  * capacity-aware mode forwards a non-supernode's query to a
///    supernode neighbor when one exists;
///  * otherwise the neighbor whose replicated node vector is most
///    relevant to the query wins (ties broken by `rng`).
/// Returns kInvalidNode when the node has no alive random neighbors.
inline p2p::NodeId pick_walk_target(const p2p::Network& net,
                                    const SearchOptions& options,
                                    const ir::SparseVector& query,
                                    p2p::NodeId node, WalkBookkeeping& forwarded,
                                    util::Rng& rng) {
  const auto& neighbors = net.neighbors(node, p2p::LinkType::kRandom);
  std::vector<p2p::NodeId> alive;
  alive.reserve(neighbors.size());
  for (const p2p::NodeId n : neighbors) {
    if (net.alive(n)) alive.push_back(n);
  }
  if (alive.empty()) return p2p::kInvalidNode;

  auto& tried = forwarded[node];
  std::vector<p2p::NodeId> available;
  available.reserve(alive.size());
  for (const p2p::NodeId n : alive) {
    if (tried.count(n) == 0) available.push_back(n);
  }
  if (available.empty()) {
    // Forward progress rule: flush the bookkeeping state and reuse.
    tried.clear();
    available = alive;
  }
  rng.shuffle(available);  // random tie-breaking among equal scores

  p2p::NodeId choice = p2p::kInvalidNode;
  const bool self_is_super =
      options.capacity_aware && net.capacity(node) >= options.supernode_threshold;
  if (options.capacity_aware && !self_is_super) {
    // Prefer a supernode neighbor when one exists.
    p2p::NodeId best_cap = available.front();
    for (const p2p::NodeId n : available) {
      if (net.capacity(n) > net.capacity(best_cap)) best_cap = n;
    }
    if (net.capacity(best_cap) >= options.supernode_threshold) choice = best_cap;
  }
  if (choice == p2p::kInvalidNode) {
    // Most query-relevant neighbor according to the replicated one-hop
    // node vectors (paper §4.4/§4.5).
    double best_rel = -1.0;
    for (const p2p::NodeId n : available) {
      const ir::SparseVector* vec = net.replica(node, n);
      const double rel = vec != nullptr ? ir::rel_node_query(*vec, query) : 0.0;
      if (rel > best_rel) {
        best_rel = rel;
        choice = n;
      }
    }
  }
  tried.insert(choice);
  return choice;
}

}  // namespace ges::core::detail
