#pragma once

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ges/query_workspace.hpp"
#include "ges/search.hpp"
#include "ir/relevance.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "p2p/network.hpp"
#include "util/rng.hpp"

namespace ges::core::detail {

/// Per-node GUID bookkeeping of a biased walk: which random neighbors a
/// node has already forwarded this query to (paper §4.5). Legacy
/// hash-map representation, kept as the workspace-off reference path for
/// the byte-identity suites (SearchOptions::use_workspace == false).
using WalkBookkeeping =
    std::unordered_map<p2p::NodeId, std::unordered_set<p2p::NodeId>>;

/// Candidate selection shared by the legacy and workspace paths:
///  * random tie-breaking shuffle — skipped when only one candidate
///    exists, which consumes exactly the same rng draws (a one-element
///    Fisher–Yates draws nothing; regression-tested);
///  * capacity-aware mode forwards a non-supernode's query to a
///    supernode neighbor when one exists, with one capacity() lookup per
///    candidate (the running max is tracked by value, not re-fetched);
///  * otherwise the neighbor whose replicated node vector is most
///    relevant to the query wins, with relevance supplied by `rel_of`.
template <typename RelFn>
inline p2p::NodeId select_walk_candidate(const p2p::Network& net,
                                         const SearchOptions& options,
                                         p2p::NodeId node,
                                         std::vector<p2p::NodeId>& available,
                                         util::Rng& rng, RelFn&& rel_of) {
  if (available.size() > 1) rng.shuffle(available);

  p2p::NodeId choice = p2p::kInvalidNode;
  bool via_supernode = false;
  double chosen_rel = -1.0;
  if (options.capacity_aware &&
      net.capacity(node) < options.supernode_threshold) {
    // Prefer a supernode neighbor when one exists.
    p2p::NodeId best_cap = available.front();
    p2p::Capacity best_cap_value = net.capacity(best_cap);
    for (size_t i = 1; i < available.size(); ++i) {
      const p2p::Capacity c = net.capacity(available[i]);
      if (c > best_cap_value) {
        best_cap = available[i];
        best_cap_value = c;
      }
    }
    if (best_cap_value >= options.supernode_threshold) {
      choice = best_cap;
      via_supernode = true;
    }
  }
  if (choice == p2p::kInvalidNode) {
    // Most query-relevant neighbor according to the replicated one-hop
    // node vectors (paper §4.4/§4.5).
    double best_rel = -1.0;
    for (const p2p::NodeId n : available) {
      const double rel = rel_of(n);
      if (rel > best_rel) {
        best_rel = rel;
        choice = n;
      }
    }
    chosen_rel = best_rel;
  }
#if GES_OBS
  // Flight-recorder hook: stash why this target won, for the engine's
  // walk-hop event. Observation only — no rng draws, no state.
  if (obs::FlightBuilder* fb = obs::flight_sink()) {
    fb->note_walk_choice(chosen_rel, via_supernode);
  }
#endif
  return choice;
}

/// One biased-walk forwarding decision at `node` (paper §4.5), shared by
/// the synchronous (GesSearch) and asynchronous (AsyncSearchEngine)
/// engines — legacy path over hash-map bookkeeping:
///  * candidates are the alive random neighbors not yet forwarded to
///    (flushing the bookkeeping when all have been tried);
///  * selection as in select_walk_candidate.
/// Returns kInvalidNode when the node has no alive random neighbors.
inline p2p::NodeId pick_walk_target(const p2p::Network& net,
                                    const SearchOptions& options,
                                    const ir::SparseVector& query,
                                    p2p::NodeId node, WalkBookkeeping& forwarded,
                                    util::Rng& rng) {
  const auto& neighbors = net.neighbors(node, p2p::LinkType::kRandom);
  std::vector<p2p::NodeId> alive;
  alive.reserve(neighbors.size());
  for (const p2p::NodeId n : neighbors) {
    if (net.alive(n)) alive.push_back(n);
  }
  if (alive.empty()) return p2p::kInvalidNode;

  auto& tried = forwarded[node];
  std::vector<p2p::NodeId> available;
  available.reserve(alive.size());
  for (const p2p::NodeId n : alive) {
    if (tried.count(n) == 0) available.push_back(n);
  }
  if (available.empty()) {
    // Forward progress rule: flush the bookkeeping state and reuse.
    tried.clear();
    available = alive;
  }
  const p2p::NodeId choice =
      select_walk_candidate(net, options, node, available, rng, [&](p2p::NodeId n) {
        const ir::SparseVector* vec = net.replica(node, n);
        return vec != nullptr ? ir::rel_node_query(*vec, query) : 0.0;
      });
  tried.insert(choice);
  return choice;
}

/// Workspace path: identical decisions (byte-identical rng consumption
/// and choices), but the candidate buffers, tried lists and relevance
/// evaluations all come from the reusable QueryWorkspace — zero
/// steady-state allocation and memoized REL(X, Q) on revisits. The query
/// is the one bound by ws.begin_query().
inline p2p::NodeId pick_walk_target(const p2p::Network& net,
                                    const SearchOptions& options,
                                    p2p::NodeId node, QueryWorkspace& ws,
                                    util::Rng& rng) {
  const auto& neighbors = net.neighbors(node, p2p::LinkType::kRandom);
  auto& alive = ws.alive_buffer();
  alive.clear();
  for (const p2p::NodeId n : neighbors) {
    if (net.alive(n)) alive.push_back(n);
  }
  if (alive.empty()) return p2p::kInvalidNode;

  auto& tried = ws.tried(node);
  auto& available = ws.available_buffer();
  available.clear();
  for (const p2p::NodeId n : alive) {
    if (std::find(tried.begin(), tried.end(), n) == tried.end()) {
      available.push_back(n);
    }
  }
  if (available.empty()) {
    // Forward progress rule: flush the bookkeeping state and reuse.
    tried.clear();
    available = alive;
  }
  const p2p::NodeId choice =
      select_walk_candidate(net, options, node, available, rng,
                            [&](p2p::NodeId n) { return ws.rel(net, node, n); });
  // `choice` is never already in `tried`: it came from `available`
  // (filtered against `tried`) or follows a flush.
  tried.push_back(choice);
  return choice;
}

}  // namespace ges::core::detail
