#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "ges/params.hpp"
#include "ges/result_cache.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/health.hpp"
#include "obs/timeseries.hpp"
#include "ges/search.hpp"
#include "ges/topology_adaptation.hpp"
#include "p2p/capacity.hpp"
#include "p2p/churn.hpp"
#include "p2p/event_sim.hpp"
#include "p2p/fault_injection.hpp"
#include "p2p/invariants.hpp"
#include "p2p/network.hpp"
#include "p2p/replication.hpp"

namespace ges::core {

/// One fault/churn scenario: a GES deployment driven round by round on
/// the event queue with a fault plan applied to every protocol message.
struct ScenarioParams {
  GesParams params;
  p2p::NetworkConfig net;
  p2p::CapacityProfile capacities = p2p::CapacityProfile::uniform();
  double bootstrap_avg_degree = 6.0;

  /// Message/partition fault plan; all-zero rates reproduce the
  /// fault-free deployment byte for byte.
  p2p::FaultPlan faults;

  bool churn_enabled = false;
  p2p::ChurnParams churn;

  /// Sizing/TTL policy of the per-peer query-result caches. The runner
  /// always owns a ResultCacheBank (inert unless a search runs with
  /// SearchOptions::use_result_cache), wired to the sim clock and to
  /// churn/fault departures for eager invalidation.
  ResultCacheConfig result_cache;

  /// Simulated seconds between replica heartbeats / adaptation rounds.
  p2p::SimTime heartbeat_interval = 5.0;
  p2p::SimTime round_interval = 10.0;

  size_t rounds = 20;
  uint64_t seed = 1;

  /// When non-empty, telemetry is enabled for this run and at the end of
  /// run() the runner writes `<telemetry_out>.metrics.json` (ges.metrics.v1),
  /// `<telemetry_out>.metrics.prom` (Prometheus text) and
  /// `<telemetry_out>.trace.json` (Chrome trace_event, loadable in
  /// Perfetto). Telemetry is observation-only: the simulation output is
  /// byte-identical with or without it.
  std::string telemetry_out;

  /// Query flight recorder (obs/flight_recorder.hpp): when true the
  /// runner configures and enables obs::flight() (and base telemetry,
  /// which the recorder's clock rides on), so every search() / async
  /// query records a causal autopsy under the `flight` retention policy.
  /// With telemetry_out set, run() additionally writes
  /// `<telemetry_out>.autopsy.json` (ges.autopsy.v1). Observation only:
  /// the simulation output is byte-identical with the recorder on or off.
  bool flight_recorder = false;
  obs::FlightRecorderConfig flight;

  /// Sim-time series sampling: > 0 schedules a periodic event-queue
  /// sampler snapshotting the metrics registry every this many sim
  /// seconds into a bounded ring (obs/timeseries.hpp). With
  /// telemetry_out set, run() writes `<telemetry_out>.timeseries.json`
  /// (ges.timeseries.v1). The sampler only reads metrics, so protocol
  /// event order — and the simulation output — is unchanged.
  double timeseries_interval = 0.0;
  size_t timeseries_max_samples = 512;

  /// Node health watchdog (obs/health.hpp): when true the runner sweeps
  /// per-node health (degree vs policy target, heartbeat staleness,
  /// cache occupancy, handshake backoff) after every adaptation round,
  /// updating p2p.health.* gauges and emitting structured anomaly
  /// events under the `health` thresholds.
  bool health_monitor = false;
  obs::HealthThresholds health;
};

/// Wires Network + EventQueue + FaultInjector + TopologyAdaptation +
/// ReplicaHeartbeatProcess + ChurnProcess into one deterministic run:
/// interleaves event-queue time (heartbeats, churn, message delays) with
/// adaptation rounds, calling an optional callback after each round. Used
/// by the scenario fuzzer and the golden-trace determinism tests; for a
/// fixed ScenarioParams the entire evolution is a pure function of the
/// seeds, including under GesParams::parallel_rounds.
class ScenarioRunner {
 public:
  ScenarioRunner(const corpus::Corpus& corpus, ScenarioParams params);
  ~ScenarioRunner();

  /// Bootstrap the random graph and start the heartbeat (and churn)
  /// processes. Idempotent per instance (call once, before run()).
  void start();

  /// Run the configured rounds: each round advances the queue by
  /// round_interval, then runs one adaptation round. `after_round`
  /// (optional) fires after every round with the 0-based round index.
  void run(const std::function<void(size_t round)>& after_round = {});

  p2p::Network& network() { return *network_; }
  const p2p::Network& network() const { return *network_; }
  p2p::EventQueue& queue() { return queue_; }
  p2p::FaultInjector& faults() { return *faults_; }
  TopologyAdaptation& adaptation() { return *adaptation_; }
  p2p::ReplicaHeartbeatProcess& heartbeats() { return *heartbeats_; }
  p2p::ChurnProcess* churn() { return churn_.get(); }
  ResultCacheBank& result_cache() { return *result_cache_; }
  const ResultCacheBank& result_cache() const { return *result_cache_; }
  const ScenarioParams& params() const { return params_; }
  const AdaptationRoundStats& total_stats() const { return total_stats_; }

  /// Sim-time sampler / health watchdog; null unless configured via
  /// ScenarioParams (timeseries_interval > 0 / health_monitor).
  const obs::TimeseriesSampler* timeseries() const { return timeseries_.get(); }
  obs::HealthMonitor* health() { return health_.get(); }
  const obs::HealthMonitor* health() const { return health_.get(); }

  /// Invariant options matching this scenario's degree policy: semantic
  /// links are strictly capped by GesParams::max_sem_links; the random
  /// side is capped by the larger of max_rnd_links and the node's
  /// bootstrap degree (the random bootstrap graph predates the policy and
  /// only shrinks toward the budget via replacement), plus `degree_slack`
  /// for churn rejoin links installed past the policy.
  p2p::InvariantOptions invariant_options(size_t degree_slack = 0) const;

  /// Run one query under this scenario's fault injector.
  p2p::SearchTrace search(const ir::SparseVector& query, p2p::NodeId initiator,
                          const SearchOptions& options, util::Rng& rng) const;

  /// Write the telemetry artifacts for this run to
  /// `<prefix>.metrics.json` / `<prefix>.metrics.prom` / `<prefix>.trace.json`.
  /// run() calls this automatically when params.telemetry_out is set.
  void write_telemetry(const std::string& prefix) const;

 private:
  /// Health provider: per-node signals for the watchdog (read-only).
  void fill_node_health(std::vector<obs::NodeHealth>& out) const;

  ScenarioParams params_;
  p2p::EventQueue queue_;
  std::unique_ptr<p2p::Network> network_;
  std::unique_ptr<p2p::FaultInjector> faults_;
  std::unique_ptr<TopologyAdaptation> adaptation_;
  std::unique_ptr<p2p::ReplicaHeartbeatProcess> heartbeats_;
  std::unique_ptr<p2p::ChurnProcess> churn_;
  std::unique_ptr<ResultCacheBank> result_cache_;
  std::unique_ptr<obs::TimeseriesSampler> timeseries_;
  std::unique_ptr<obs::HealthMonitor> health_;
  std::vector<uint32_t> bootstrap_degree_;  // node -> degree after bootstrap
  AdaptationRoundStats total_stats_;
  bool started_ = false;
  bool owns_sim_clock_ = false;  // this runner wired obs::global()'s clock
};

}  // namespace ges::core
