#include "p2p/invariants.hpp"

#include <sstream>
#include <unordered_set>

#include "util/check.hpp"

namespace ges::p2p {

namespace {

class Sweep {
 public:
  Sweep(const Network& network, const InvariantOptions& options)
      : net_(network), opt_(options) {}

  InvariantReport run() {
    size_t alive_seen = 0;
    for (NodeId n = 0; n < net_.size(); ++n) {
      ++report_.nodes_checked;
      if (net_.alive(n)) {
        ++alive_seen;
        check_links(n);
        check_replicas(n);
        check_degrees(n);
        check_caches(n);
        check_result_cache(n);
      } else {
        check_dead(n);
      }
    }
    if (alive_seen != net_.alive_count()) {
      std::ostringstream os;
      os << "alive_count() is " << net_.alive_count() << " but " << alive_seen
         << " nodes have the alive flag";
      fail(kInvalidNode, os.str());
    }
    return std::move(report_);
  }

 private:
  void fail(NodeId node, const std::string& message) {
    report_.violations.push_back({node, message});
  }

  void check_dead(NodeId n) {
    if (net_.degree(n) != 0) {
      fail(n, "dead node " + std::to_string(n) + " still has links");
    }
    if (net_.replica_count(n) != 0) {
      fail(n, "dead node " + std::to_string(n) + " still holds replicas");
    }
    if (opt_.live_timers) {
      const size_t live = opt_.live_timers(n);
      if (live != 0) {
        fail(n, "dead node " + std::to_string(n) + " still owns " +
                    std::to_string(live) + " live timer(s)");
      }
    }
    if (opt_.result_cache_entries) {
      const size_t entries = opt_.result_cache_entries(n);
      if (entries != 0) {
        fail(n, "dead node " + std::to_string(n) + " still caches " +
                    std::to_string(entries) + " query result set(s)");
      }
    }
  }

  void check_result_cache(NodeId n) {
    if (!opt_.result_cache_dead_owner_docs) return;
    ++report_.result_cache_nodes_checked;
    const size_t dead = opt_.result_cache_dead_owner_docs(n);
    if (dead != 0) {
      std::ostringstream os;
      os << "result cache of node " << n << " holds " << dead
         << " document(s) owned by dead nodes";
      fail(n, os.str());
    }
  }

  void check_links(NodeId n) {
    std::unordered_set<NodeId> distinct;
    for (const LinkType type : {LinkType::kRandom, LinkType::kSemantic}) {
      for (const NodeId m : net_.neighbors(n, type)) {
        ++report_.links_checked;
        std::ostringstream os;
        if (m == n) {
          os << "self link at node " << n;
          fail(n, os.str());
          continue;
        }
        if (!distinct.insert(m).second) {
          os << "parallel link " << n << " <-> " << m;
          fail(n, os.str());
          continue;
        }
        if (!net_.alive(m)) {
          os << "link from " << n << " to dead node " << m;
          fail(n, os.str());
        }
        const auto forward = net_.link_type(n, m);
        if (!forward || *forward != type) {
          os << "neighbor list of " << n << " disagrees with its link record for "
             << m;
          fail(n, os.str());
          continue;
        }
        const auto back = net_.link_type(m, n);
        if (!back) {
          os << "asymmetric link " << n << " -> " << m;
          fail(n, os.str());
        } else if (*back != type) {
          os << "type mismatch on link " << n << " <-> " << m;
          fail(n, os.str());
        }
      }
    }
    if (net_.link_record_count(n) != distinct.size()) {
      std::ostringstream os;
      os << "node " << n << " has " << net_.link_record_count(n)
         << " link records but " << distinct.size() << " listed neighbors";
      fail(n, os.str());
    }
  }

  void check_replicas(NodeId n) {
    const auto& random = net_.neighbors(n, LinkType::kRandom);
    for (const NodeId m : random) {
      ++report_.replicas_checked;
      const ir::SparseVector* rep = net_.replica(n, m);
      std::ostringstream os;
      if (rep == nullptr) {
        os << "node " << n << " misses the replica of random neighbor " << m;
        fail(n, os.str());
        continue;
      }
      if (opt_.expect_fresh_replicas && !(*rep == net_.node_vector(m))) {
        os << "stale replica of " << m << " at node " << n
           << " (fresh replicas expected)";
        fail(n, os.str());
      }
    }
    if (net_.replica_count(n) != random.size()) {
      std::ostringstream os;
      os << "node " << n << " holds " << net_.replica_count(n) << " replicas for "
         << random.size() << " random neighbors";
      fail(n, os.str());
    }
  }

  void check_degrees(NodeId n) {
    if (opt_.max_semantic_links) {
      const size_t sem = net_.degree(n, LinkType::kSemantic);
      const size_t cap = opt_.max_semantic_links(n);
      if (sem > cap) {
        std::ostringstream os;
        os << "node " << n << " has " << sem << " semantic links, cap " << cap;
        fail(n, os.str());
      }
    }
    if (opt_.max_total_links) {
      const size_t total = net_.degree(n);
      const size_t cap = opt_.max_total_links(n) + opt_.degree_slack;
      if (total > cap) {
        std::ostringstream os;
        os << "node " << n << " has degree " << total << ", cap " << cap
           << " (incl. slack " << opt_.degree_slack << ")";
        fail(n, os.str());
      }
    }
  }

  void check_cache(NodeId n, const HostCache& cache, bool semantic) {
    if (cache.size() > cache.max_size()) {
      std::ostringstream os;
      os << (semantic ? "semantic" : "random") << " host cache of " << n
         << " exceeds its bound: " << cache.size() << " > " << cache.max_size();
      fail(n, os.str());
    }
    std::unordered_set<NodeId> distinct;
    for (const HostCacheEntry* entry : cache.entries()) {
      ++report_.cache_entries_checked;
      std::ostringstream os;
      if (entry->node == kInvalidNode) {
        os << "invalid entry in a host cache of " << n;
        fail(n, os.str());
        continue;
      }
      if (entry->node == n) {
        os << "node " << n << " caches itself";
        fail(n, os.str());
      }
      if (!distinct.insert(entry->node).second) {
        os << "duplicate host-cache entry for " << entry->node << " at " << n;
        fail(n, os.str());
      }
      if (semantic && !entry->vector.empty()) {
        os << "semantic host cache of " << n << " stores a node vector for "
           << entry->node << " (paper §4.3 keeps it vector-free)";
        fail(n, os.str());
      }
    }
  }

  void check_caches(NodeId n) {
    check_cache(n, net_.random_cache(n), /*semantic=*/false);
    check_cache(n, net_.semantic_cache(n), /*semantic=*/true);
  }

  const Network& net_;
  const InvariantOptions& opt_;
  InvariantReport report_;
};

}  // namespace

std::string InvariantReport::to_string() const {
  std::ostringstream os;
  for (size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) os << '\n';
    os << violations[i].message;
  }
  return os.str();
}

InvariantReport check_overlay_invariants(const Network& network,
                                         const InvariantOptions& options) {
  return Sweep(network, options).run();
}

void expect_overlay_invariants(const Network& network,
                               const InvariantOptions& options) {
  const InvariantReport report = check_overlay_invariants(network, options);
  GES_CHECK_MSG(report.ok(), report.violations.size()
                                 << " overlay invariant violation(s):\n"
                                 << report.to_string());
}

}  // namespace ges::p2p
