#pragma once

#include <cstdint>

namespace ges::p2p {

/// Overlay node identifier (dense index into the network's node table).
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = ~NodeId{0};

/// Node capacity — an abstract notion of how many messages per unit time a
/// node can handle (paper §5.4, Gnutella-like profile: 1 .. 10^4).
using Capacity = double;

/// The two link classes of GES (paper §4.1): random links connect
/// irrelevant nodes (and carry biased walks); semantic links organize
/// relevant nodes into semantic groups (and carry floods).
enum class LinkType : uint8_t { kRandom = 0, kSemantic = 1 };

/// Globally unique query identifier (paper §4.5 bookkeeping).
using Guid = uint64_t;

inline const char* link_type_name(LinkType t) {
  return t == LinkType::kRandom ? "random" : "semantic";
}

}  // namespace ges::p2p
