#pragma once

#include <vector>

#include "p2p/network.hpp"
#include "p2p/types.hpp"
#include "util/rng.hpp"

namespace ges::p2p {

/// Result of a TTL-bounded random walk: the distinct nodes visited after
/// the start node, in visit order, plus the number of hops actually taken
/// (message count).
struct WalkResult {
  std::vector<NodeId> visited;
  size_t hops = 0;
};

/// Random walk over all links (random + semantic) starting at `start`
/// (paper §4.3: nodes discover candidates for their host caches by
/// periodically issuing random-walk queries). At each step a uniformly
/// random neighbor is chosen, avoiding the immediately preceding node
/// when another choice exists. The walk takes at most `ttl` hops and
/// records up to `max_responses` distinct nodes (excluding `start`).
WalkResult random_walk(const Network& network, NodeId start, size_t ttl,
                       size_t max_responses, util::Rng& rng);

}  // namespace ges::p2p
