#pragma once

#include <vector>

#include "p2p/fault_injection.hpp"
#include "p2p/network.hpp"
#include "p2p/types.hpp"
#include "util/rng.hpp"

namespace ges::p2p {

/// Result of a TTL-bounded random walk: the distinct nodes visited after
/// the start node, in visit order, plus the number of hops actually taken
/// (message count). `truncated_by_fault` marks a walk whose query message
/// was lost in transit (dropped or blocked by a partition).
struct WalkResult {
  std::vector<NodeId> visited;
  size_t hops = 0;
  bool truncated_by_fault = false;
  /// Wire bytes of the walk's query messages: hops * the caller-supplied
  /// per-hop frame size (0 when the caller does not account bytes).
  uint64_t bytes_sent = 0;
};

/// Random walk over all links (random + semantic) starting at `start`
/// (paper §4.3: nodes discover candidates for their host caches by
/// periodically issuing random-walk queries). At each step a uniformly
/// random neighbor is chosen, avoiding the immediately preceding node
/// when another choice exists. The walk takes at most `ttl` hops and
/// records up to `max_responses` distinct nodes (excluding `start`).
///
/// When `faults` is non-null, every hop is a message on FaultChannel::
/// kWalk keyed by its directed edge: a dropped or partition-blocked hop
/// still costs a message but ends the walk (the query is lost; decisions
/// are salted with `fault_nonce` so repeated walks fault independently).
/// A null injector draws no fault decisions at all.
///
/// `frame_bytes` is the wire size of the walk's per-hop query frame
/// (e.g. wire::discovery_probe_frame_size()); every hop charges it to
/// WalkResult::bytes_sent and the per-hop flight event. 0 (the default)
/// disables byte accounting. Purely observational: never changes the
/// walk, the rng draws, or the hop counts.
WalkResult random_walk(const Network& network, NodeId start, size_t ttl,
                       size_t max_responses, util::Rng& rng,
                       const FaultInjector* faults = nullptr,
                       uint64_t fault_nonce = 0, size_t frame_bytes = 0);

}  // namespace ges::p2p
