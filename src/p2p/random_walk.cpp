#include "p2p/random_walk.hpp"

#include <unordered_set>

#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "util/check.hpp"

namespace ges::p2p {

WalkResult random_walk(const Network& network, NodeId start, size_t ttl,
                       size_t max_responses, util::Rng& rng,
                       const FaultInjector* faults, uint64_t fault_nonce,
                       size_t frame_bytes) {
  GES_CHECK(network.alive(start));
  WalkResult result;
  std::unordered_set<NodeId> seen{start};
  NodeId current = start;
  NodeId previous = kInvalidNode;
  for (size_t hop = 0; hop < ttl; ++hop) {
    const auto neighbors = network.all_neighbors(current);
    if (neighbors.empty()) break;
    NodeId next = neighbors[rng.index(neighbors.size())];
    if (next == previous && neighbors.size() > 1) {
      // Avoid immediately bouncing back when another neighbor exists.
      while (next == previous) next = neighbors[rng.index(neighbors.size())];
    }
#if GES_OBS
    // Flight-recorder hook: record the hop before the fault check so a
    // drop / partition cut attaches causally under it. value = -1 marks
    // the choice unbiased (this walker never evaluates relevance). Null
    // sink in the parallel adaptation plan phase — observation only.
    if (obs::FlightBuilder* fb = obs::flight_sink()) {
      const int32_t hop_event =
          fb->add(obs::FlightEventKind::kWalkHop, obs::global().now());
      if (obs::FlightEvent* ev = fb->event(hop_event)) {
        ev->from = current;
        ev->to = next;
        ev->value = -1.0;
        ev->bytes = static_cast<uint32_t>(frame_bytes);
      }
      fb->set_context(hop_event);
    }
#endif
    if (faults != nullptr &&
        (faults->blocked(current, next) ||
         faults->drop_message(FaultChannel::kWalk, FaultInjector::pair_key(current, next),
                              fault_nonce + hop))) {
      // The query message was sent (costs a hop) but never arrived.
      ++result.hops;
      result.truncated_by_fault = true;
      break;
    }
    previous = current;
    current = next;
    ++result.hops;
    if (seen.insert(current).second) {
      result.visited.push_back(current);
      if (result.visited.size() >= max_responses) break;
    }
  }
  result.bytes_sent = static_cast<uint64_t>(result.hops) * frame_bytes;
  // Observation only (counters never touch `rng`); sharded cells make
  // this safe from the parallel adaptation plan phase.
  GES_COUNT("p2p.walk.walks", 1);
  GES_COUNT("p2p.walk.hops", result.hops);
  GES_COUNT("p2p.walk.responses", result.visited.size());
  if (result.truncated_by_fault) GES_COUNT("p2p.walk.truncated_by_fault", 1);
  return result;
}

}  // namespace ges::p2p
