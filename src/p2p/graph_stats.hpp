#pragma once

#include <vector>

#include "p2p/network.hpp"
#include "util/rng.hpp"

namespace ges::p2p {

/// Structural statistics of the overlay (alive nodes only), for
/// diagnostics, examples and tests. `link_filter` selects which links
/// count: kRandom, kSemantic, or both (nullopt).
struct GraphStats {
  size_t nodes = 0;
  size_t links = 0;
  double mean_degree = 0.0;
  uint32_t min_degree = 0;
  uint32_t max_degree = 0;

  /// Size of the largest connected component and total component count.
  size_t largest_component = 0;
  size_t components = 0;

  /// Global clustering coefficient (closed triplets / all triplets).
  double clustering_coefficient = 0.0;

  /// Mean shortest-path length, estimated by BFS from sampled sources
  /// within the largest component.
  double mean_path_length = 0.0;
};

GraphStats compute_graph_stats(const Network& network,
                               std::optional<LinkType> link_filter = std::nullopt,
                               size_t path_samples = 16, uint64_t seed = 1);

}  // namespace ges::p2p
