#include "p2p/network.hpp"

#include <algorithm>

#include "ir/node_vector.hpp"
#include "p2p/invariants.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace ges::p2p {

Network::Network(const corpus::Corpus& corpus, std::vector<Capacity> capacities,
                 NetworkConfig config)
    : corpus_(&corpus), config_(config), rel_cache_(std::make_unique<RelCache>()) {
  GES_CHECK_MSG(capacities.size() == corpus.num_nodes(),
                "capacities (" << capacities.size() << ") must match corpus nodes ("
                               << corpus.num_nodes() << ")");
  peers_.resize(corpus.num_nodes());
  alive_count_ = peers_.size();
  // Bring-up is embarrassingly parallel: each node's index and vector
  // depend only on that node's documents (the corpus is read-only here
  // and dynamic_docs_ is empty), so the peers build concurrently with no
  // observable difference from the serial loop.
  util::for_each_index(
      config_.parallel_build ? &util::global_pool() : nullptr, peers_.size(),
      [&](size_t n) {
        Peer& p = peers_[n];
        p.capacity = capacities[n];
        p.random_cache = HostCache(config_.host_cache_size);
        p.semantic_cache = HostCache(config_.host_cache_size);
        p.docs = corpus.node_docs[n];
        for (const ir::DocId d : p.docs) {
          p.index.add_document(d, corpus.docs[d].vector);
        }
        rebuild_node_vector(static_cast<NodeId>(n));
      });
}

const Network::Peer& Network::peer(NodeId node) const {
  GES_CHECK_MSG(node < peers_.size(), "node " << node << " out of range");
  return peers_[node];
}

Network::Peer& Network::peer_mut(NodeId node) {
  GES_CHECK_MSG(node < peers_.size(), "node " << node << " out of range");
  return peers_[node];
}

std::vector<NodeId> Network::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(alive_count_);
  for (size_t n = 0; n < peers_.size(); ++n) {
    if (peers_[n].alive) out.push_back(static_cast<NodeId>(n));
  }
  return out;
}

uint32_t Network::degree(NodeId node) const {
  const Peer& p = peer(node);
  return static_cast<uint32_t>(p.random_neighbors.size() + p.semantic_neighbors.size());
}

uint32_t Network::degree(NodeId node, LinkType type) const {
  const Peer& p = peer(node);
  return static_cast<uint32_t>(type == LinkType::kRandom ? p.random_neighbors.size()
                                                         : p.semantic_neighbors.size());
}

const std::vector<NodeId>& Network::neighbors(NodeId node, LinkType type) const {
  const Peer& p = peer(node);
  return type == LinkType::kRandom ? p.random_neighbors : p.semantic_neighbors;
}

std::vector<NodeId> Network::all_neighbors(NodeId node) const {
  const Peer& p = peer(node);
  std::vector<NodeId> out;
  out.reserve(p.random_neighbors.size() + p.semantic_neighbors.size());
  out.insert(out.end(), p.random_neighbors.begin(), p.random_neighbors.end());
  out.insert(out.end(), p.semantic_neighbors.begin(), p.semantic_neighbors.end());
  return out;
}

bool Network::has_link(NodeId a, NodeId b) const {
  return peer(a).link_types.count(b) > 0;
}

std::optional<LinkType> Network::link_type(NodeId a, NodeId b) const {
  const auto& types = peer(a).link_types;
  const auto it = types.find(b);
  if (it == types.end()) return std::nullopt;
  return it->second;
}

bool Network::connect(NodeId a, NodeId b, LinkType type) {
  if (a == b) return false;
  Peer& pa = peer_mut(a);
  Peer& pb = peer_mut(b);
  if (!pa.alive || !pb.alive) return false;
  if (pa.link_types.count(b) > 0) return false;
  auto& la = type == LinkType::kRandom ? pa.random_neighbors : pa.semantic_neighbors;
  auto& lb = type == LinkType::kRandom ? pb.random_neighbors : pb.semantic_neighbors;
  la.push_back(b);
  lb.push_back(a);
  pa.link_types.emplace(b, type);
  pb.link_types.emplace(a, type);
  if (type == LinkType::kRandom) install_replicas(a, b);
  return true;
}

bool Network::disconnect(NodeId a, NodeId b) {
  Peer& pa = peer_mut(a);
  const auto it = pa.link_types.find(b);
  if (it == pa.link_types.end()) return false;
  const LinkType type = it->second;
  Peer& pb = peer_mut(b);
  auto erase_from = [](std::vector<NodeId>& v, NodeId x) {
    v.erase(std::find(v.begin(), v.end(), x));
  };
  erase_from(type == LinkType::kRandom ? pa.random_neighbors : pa.semantic_neighbors, b);
  erase_from(type == LinkType::kRandom ? pb.random_neighbors : pb.semantic_neighbors, a);
  pa.link_types.erase(b);
  pb.link_types.erase(a);
  if (type == LinkType::kRandom) flush_replicas(a, b);
  return true;
}

bool Network::reclassify(NodeId a, NodeId b, LinkType type) {
  const auto current = link_type(a, b);
  if (!current || *current == type) return false;
  Peer& pa = peer_mut(a);
  Peer& pb = peer_mut(b);
  auto move_between = [&](Peer& p, NodeId x) {
    auto& from = *current == LinkType::kRandom ? p.random_neighbors : p.semantic_neighbors;
    auto& to = type == LinkType::kRandom ? p.random_neighbors : p.semantic_neighbors;
    from.erase(std::find(from.begin(), from.end(), x));
    to.push_back(x);
    p.link_types[x] = type;
  };
  move_between(pa, b);
  move_between(pb, a);
  if (type == LinkType::kRandom) {
    install_replicas(a, b);
  } else {
    flush_replicas(a, b);
  }
  return true;
}

double Network::rel_nodes(NodeId a, NodeId b) const {
  const Peer& pa = peer(a);
  const Peer& pb = peer(b);
  return rel_cache_->get(a, b, pa.vector_version, pb.vector_version,
                         [&pa, &pb] { return pa.vector.dot(pb.vector); });
}

NodeId Network::document_owner(ir::DocId doc) const {
  if (doc < corpus_->docs.size()) {
    // Corpus documents can be removed dynamically; verify membership.
    const NodeId node = corpus_->docs[doc].node;
    const auto& docs = peer(node).docs;
    if (std::find(docs.begin(), docs.end(), doc) != docs.end()) return node;
    return kInvalidNode;
  }
  const auto it = doc_owner_.find(doc);
  return it == doc_owner_.end() ? kInvalidNode : it->second;
}

const ir::SparseVector& Network::document_vector(ir::DocId doc) const {
  if (doc < corpus_->docs.size()) return corpus_->docs[doc].vector;
  const size_t slot = doc - corpus_->docs.size();
  GES_CHECK(slot < dynamic_docs_.size());
  return dynamic_docs_[slot].vector;
}

const ir::SparseVector& Network::counts_of(ir::DocId doc) const {
  if (doc < corpus_->docs.size()) return corpus_->docs[doc].counts;
  const size_t slot = doc - corpus_->docs.size();
  GES_CHECK(slot < dynamic_docs_.size());
  return dynamic_docs_[slot].counts;
}

ir::DocId Network::add_document(NodeId node, const ir::SparseVector& counts) {
  GES_CHECK(!counts.empty());
  DynamicDoc dyn;
  dyn.counts = counts;
  dyn.vector = counts;
  dyn.vector.dampen();
  dyn.vector.normalize();
  const auto doc =
      static_cast<ir::DocId>(corpus_->docs.size() + dynamic_docs_.size());
  dynamic_docs_.push_back(std::move(dyn));
  doc_owner_.emplace(doc, node);
  Peer& p = peer_mut(node);
  p.docs.push_back(doc);
  p.index.add_document(doc, dynamic_docs_.back().vector);
  rebuild_node_vector(node);
  ++content_stamp_;
  return doc;
}

bool Network::remove_document(NodeId node, ir::DocId doc) {
  Peer& p = peer_mut(node);
  const auto it = std::find(p.docs.begin(), p.docs.end(), doc);
  if (it == p.docs.end()) return false;
  p.docs.erase(it);
  p.index.remove_document(doc);
  doc_owner_.erase(doc);
  rebuild_node_vector(node);
  ++content_stamp_;
  return true;
}

void Network::rebuild_node_vector(NodeId node) {
  Peer& p = peer_mut(node);
  std::vector<ir::SparseVector> counts;
  counts.reserve(p.docs.size());
  for (const ir::DocId d : p.docs) counts.push_back(counts_of(d));
  p.full_vector = ir::build_node_vector(counts, 0);
  p.vector = ir::truncate_node_vector(p.full_vector, config_.node_vector_size);
  ++p.vector_version;  // lazily invalidates this node's rel_nodes entries
}

const ir::SparseVector* Network::replica(NodeId owner, NodeId neighbor) const {
  const auto& replicas = peer(owner).replicas;
  const auto it = replicas.find(neighbor);
  return it == replicas.end() ? nullptr : &it->second.vector;
}

Network::ReplicaView Network::replica_view(NodeId owner, NodeId neighbor) const {
  const auto& replicas = peer(owner).replicas;
  const auto it = replicas.find(neighbor);
  if (it == replicas.end()) return {};
  return {&it->second.vector, it->second.stamp};
}

void Network::refresh_replicas(NodeId owner) {
  Peer& p = peer_mut(owner);
  for (const NodeId neighbor : p.random_neighbors) {
    p.replicas[neighbor] = {peer(neighbor).vector, ++replica_stamp_};
  }
}

bool Network::refresh_replica(NodeId owner, NodeId neighbor) {
  Peer& p = peer_mut(owner);
  if (!p.alive) return false;
  const auto it = p.link_types.find(neighbor);
  if (it == p.link_types.end() || it->second != LinkType::kRandom) return false;
  p.replicas[neighbor] = {peer(neighbor).vector, ++replica_stamp_};
  return true;
}

size_t Network::stale_replica_count(NodeId owner) const {
  size_t stale = 0;
  const Peer& p = peer(owner);
  for (const auto& [neighbor, slot] : p.replicas) {
    if (!(slot.vector == peer(neighbor).vector)) ++stale;
  }
  return stale;
}

void Network::install_replicas(NodeId a, NodeId b) {
  peer_mut(a).replicas[b] = {peer(b).vector, ++replica_stamp_};
  peer_mut(b).replicas[a] = {peer(a).vector, ++replica_stamp_};
}

void Network::flush_replicas(NodeId a, NodeId b) {
  peer_mut(a).replicas.erase(b);
  peer_mut(b).replicas.erase(a);
}

void Network::deactivate(NodeId node) {
  Peer& p = peer_mut(node);
  if (!p.alive) return;
  while (!p.link_types.empty()) {
    disconnect(node, p.link_types.begin()->first);
  }
  p.replicas.clear();
  p.alive = false;
  --alive_count_;
  ++content_stamp_;
}

void Network::activate(NodeId node) {
  Peer& p = peer_mut(node);
  if (p.alive) return;
  p.alive = true;
  ++alive_count_;
  p.random_cache = HostCache(config_.host_cache_size);
  p.semantic_cache = HostCache(config_.host_cache_size);
}

void Network::check_invariants() const {
  // The structural core of the overlay-invariant catalogue; degree bounds
  // and freshness checks are opt-in via check_overlay_invariants.
  expect_overlay_invariants(*this);
}

void bootstrap_random_graph(Network& network, double avg_degree, util::Rng& rng,
                            LinkType type) {
  const auto nodes = network.alive_nodes();
  if (nodes.size() < 2) return;
  const auto target_edges =
      static_cast<size_t>(avg_degree * static_cast<double>(nodes.size()) / 2.0);
  size_t edges = 0;
  size_t attempts = 0;
  const size_t max_attempts = target_edges * 50 + 1000;
  while (edges < target_edges && attempts < max_attempts) {
    ++attempts;
    const NodeId a = nodes[rng.index(nodes.size())];
    const NodeId b = nodes[rng.index(nodes.size())];
    if (network.connect(a, b, type)) ++edges;
  }
}

void bootstrap_join(Network& network, NodeId node, size_t links, util::Rng& rng,
                    LinkType type) {
  GES_CHECK(network.alive(node));
  auto candidates = network.alive_nodes();
  rng.shuffle(candidates);
  size_t made = 0;
  for (const NodeId peer : candidates) {
    if (made >= links) break;
    if (network.connect(node, peer, type)) ++made;
  }
}

}  // namespace ges::p2p
