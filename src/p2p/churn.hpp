#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "p2p/cache_protocol.hpp"
#include "p2p/event_sim.hpp"
#include "p2p/network.hpp"
#include "p2p/replication.hpp"
#include "util/rng.hpp"

namespace ges::p2p {

/// Churn model parameters. Node sessions alternate between online
/// (exponential with mean `mean_session`) and offline (exponential with
/// mean `mean_downtime`); on rejoin a node bootstraps with
/// `bootstrap_links` random links. This mirrors the join/leave dynamics
/// the paper cites as the motivation for unstructured overlays (§1:
/// ~1,600 arrivals+departures per minute in a 100,000-node network).
struct ChurnParams {
  double mean_session = 600.0;
  double mean_downtime = 300.0;
  size_t bootstrap_links = 3;
  uint64_t seed = 7;
};

/// Drives churn on a network through an event queue. Construct, then call
/// start() once; the process keeps itself scheduled for as long as the
/// queue is run (each node owns one cancellable session timer — its next
/// departure or arrival — so stop() can halt churn cleanly mid-run). The
/// network and queue must outlive the process.
///
/// A rejoining node does more than add random links: when wired to a
/// ReplicaHeartbeatProcess its heartbeat loop is suspended at the
/// departure (a churned-out node owns zero live timers) and re-registered
/// on rejoin, and the rejoin hook lets the protocol layer reclassify the
/// fresh bootstrap links whose relevance already crosses the semantic
/// threshold — otherwise a rejoined node carries stale semantic state
/// until an adaptation round happens to visit it.
class ChurnProcess {
 public:
  ChurnProcess(Network& network, EventQueue& queue, ChurnParams params);

  /// Suspend/re-register nodes with this heartbeat process as they
  /// leave/rejoin.
  void set_heartbeats(ReplicaHeartbeatProcess* heartbeats) { heartbeats_ = heartbeats; }

  /// Called after a node rejoined and bootstrapped (e.g. wire
  /// TopologyAdaptation::reclassify_node to repair its link types).
  void set_rejoin_hook(std::function<void(NodeId)> hook) { rejoin_hook_ = std::move(hook); }

  /// Notify this sink on every departure so query-result caches drop the
  /// departed node's entries eagerly (its own cache and every cached
  /// result it owns network-wide) — the cache-liveness overlay invariant.
  void set_result_cache(ResultCacheInvalidationSink* sink) { result_cache_ = sink; }

  /// Schedule the initial departure for every alive node.
  void start();

  /// Cancel every pending session timer: no further departures or
  /// arrivals fire. Nodes currently offline stay offline. Returns the
  /// number of timers cancelled.
  size_t stop();

  size_t departures() const { return departures_; }
  size_t arrivals() const { return arrivals_; }

 private:
  void schedule_departure(NodeId node);
  void schedule_arrival(NodeId node);

  Network* network_;
  EventQueue* queue_;
  ChurnParams params_;
  util::Rng rng_;
  ReplicaHeartbeatProcess* heartbeats_ = nullptr;
  ResultCacheInvalidationSink* result_cache_ = nullptr;
  std::function<void(NodeId)> rejoin_hook_;
  std::vector<TimerHandle> sessions_;  // node -> next departure/arrival
  size_t departures_ = 0;
  size_t arrivals_ = 0;
};

}  // namespace ges::p2p
