#pragma once

#include <cstdint>

#include "p2p/event_sim.hpp"
#include "p2p/network.hpp"
#include "util/rng.hpp"

namespace ges::p2p {

/// Churn model parameters. Node sessions alternate between online
/// (exponential with mean `mean_session`) and offline (exponential with
/// mean `mean_downtime`); on rejoin a node bootstraps with
/// `bootstrap_links` random links. This mirrors the join/leave dynamics
/// the paper cites as the motivation for unstructured overlays (§1:
/// ~1,600 arrivals+departures per minute in a 100,000-node network).
struct ChurnParams {
  double mean_session = 600.0;
  double mean_downtime = 300.0;
  size_t bootstrap_links = 3;
  uint64_t seed = 7;
};

/// Drives churn on a network through an event queue. Construct, then call
/// start() once; the process keeps itself scheduled for as long as the
/// queue is run. The network and queue must outlive the process.
class ChurnProcess {
 public:
  ChurnProcess(Network& network, EventQueue& queue, ChurnParams params);

  /// Schedule the initial departure for every alive node.
  void start();

  size_t departures() const { return departures_; }
  size_t arrivals() const { return arrivals_; }

 private:
  void schedule_departure(NodeId node);
  void schedule_arrival(NodeId node);

  Network* network_;
  EventQueue* queue_;
  ChurnParams params_;
  util::Rng rng_;
  size_t departures_ = 0;
  size_t arrivals_ = 0;
};

}  // namespace ges::p2p
