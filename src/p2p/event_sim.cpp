#include "p2p/event_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/telemetry.hpp"
#include "util/check.hpp"

namespace ges::p2p {

// --- TimerHandle --------------------------------------------------------

bool TimerHandle::valid() const noexcept {
  return queue_ != nullptr && queue_->handle_valid(slot_, generation_);
}

bool TimerHandle::live() const noexcept {
  return queue_ != nullptr && queue_->handle_live(slot_, generation_);
}

bool TimerHandle::cancel() noexcept {
  return queue_ != nullptr && queue_->cancel_slot(slot_, generation_);
}

bool TimerHandle::resume() noexcept {
  return queue_ != nullptr && queue_->resume_slot(slot_, generation_);
}

SimTime TimerHandle::fire_time() const noexcept {
  return queue_ == nullptr ? -1.0 : queue_->slot_fire_time(slot_, generation_);
}

// --- Slab ---------------------------------------------------------------

EventQueue::EventQueue() : buckets_(kBuckets) {}

EventQueue::~EventQueue() = default;

uint32_t EventQueue::alloc_slot() {
  if (free_head_ != kNoSlot) {
    const uint32_t slot = free_head_;
    free_head_ = slot_ref(slot).next_free;
    return slot;
  }
  GES_CHECK_MSG(slot_count_ < (uint32_t{1} << kSlotBits), "event slab exhausted");
  if ((slot_count_ & (kSlotChunkSize - 1)) == 0) {
    chunks_.push_back(std::make_unique<Slot[]>(kSlotChunkSize));
  }
  return slot_count_++;
}

void EventQueue::free_slot(uint32_t slot) {
  Slot& s = slot_ref(slot);
  s.handler.reset();
  s.state = SlotState::kFree;
  ++s.generation;  // every outstanding handle to this slot goes inert
  s.next_free = free_head_;
  free_head_ = slot;
}

// --- Handle backends ----------------------------------------------------

bool EventQueue::handle_valid(uint32_t slot, uint32_t generation) const noexcept {
  return slot < slot_count_ && slot_ref(slot).generation == generation &&
         slot_ref(slot).state != SlotState::kFree;
}

bool EventQueue::handle_live(uint32_t slot, uint32_t generation) const noexcept {
  return slot < slot_count_ && slot_ref(slot).generation == generation &&
         slot_ref(slot).state == SlotState::kLive;
}

bool EventQueue::cancel_slot(uint32_t slot, uint32_t generation) noexcept {
  if (!handle_live(slot, generation)) return false;
  slot_ref(slot).state = SlotState::kCancelled;
  --live_;
  ++cancelled_total_;
  GES_COUNT("p2p.events.cancelled", 1);
  return true;
}

bool EventQueue::resume_slot(uint32_t slot, uint32_t generation) noexcept {
  if (slot >= slot_count_ || slot_ref(slot).generation != generation ||
      slot_ref(slot).state != SlotState::kCancelled) {
    return false;
  }
  slot_ref(slot).state = SlotState::kLive;
  ++live_;
  GES_COUNT("p2p.events.resumed", 1);
  return true;
}

SimTime EventQueue::slot_fire_time(uint32_t slot, uint32_t generation) const noexcept {
  return handle_valid(slot, generation) ? slot_ref(slot).at : -1.0;
}

// --- Two-tier calendar queue --------------------------------------------

void EventQueue::rebase_wheel(SimTime start) {
  // Only legal with an empty wheel: every bucket has been drained.
  wheel_start_ = start;
  cursor_ = 0;
  bucket_width_ =
      std::max(kMinBucketWidth, have_ema_ ? delay_ema_ * (kSpanFactor / kBuckets)
                                          : bucket_width_);
  inv_bucket_width_ = 1.0 / bucket_width_;
  wheel_end_ = wheel_start_ + bucket_width_ * kBuckets;
  const SimTime end = wheel_end_;
  // One linear pass over the unsorted overflow pool: entries inside the
  // new horizon drop into their buckets (out-of-order appends just mark
  // the bucket for its one deferred sort), the rest compact in place.
  size_t keep = 0;
  for (const Entry e : overflow_) {
    const SimTime at = e.at();
    if (at < end) {
      const double rel = (at - wheel_start_) * inv_bucket_width_;
      size_t idx = rel <= 0.0 ? 0 : static_cast<size_t>(rel);
      if (idx >= kBuckets) idx = kBuckets - 1;
      buckets_[idx].append(e);
      ++wheel_count_;
    } else {
      overflow_[keep++] = e;
    }
  }
  overflow_.resize(keep);
}

void EventQueue::insert_entry(SimTime at, uint64_t seq, uint32_t slot) {
  GES_DCHECK_MSG(seq < kMaxSeq, "sequence numbers exhausted");
  GES_DCHECK_MSG(at >= 0.0, "negative sim time breaks entry-key ordering");
  const Entry entry = Entry::make(at, seq, slot);
  // Rebase an idle queue at now(), NOT at the event's own time: anchoring
  // at `at` would fold everything scheduled between now and `at` into
  // bucket 0 as one big unsorted run (first-insert pathology).
  if (wheel_count_ == 0 && overflow_.empty()) rebase_wheel(now_);
  if (at < wheel_end_) {
    const double rel = (at - wheel_start_) * inv_bucket_width_;
    // rel < 0 happens when the wheel was rebased to a later overflow
    // event and a nearer one arrives: bucket 0 still dispatches first,
    // and the in-bucket merge keeps exact (at, seq) order.
    size_t idx = rel <= 0.0 ? 0 : static_cast<size_t>(rel);
    if (idx >= kBuckets) idx = kBuckets - 1;  // fp edge of the horizon
    if (idx < cursor_) cursor_ = idx;
    buckets_[idx].append(entry);
    ++wheel_count_;
  } else {
    overflow_.push_back(entry);
  }
}

bool EventQueue::peek_next(Entry* out) {
  if (wheel_count_ == 0) {
    if (overflow_.empty()) return false;
    // Anchor the new wheel at the pool's earliest entry so the rebase is
    // guaranteed to bucket at least one event. (Min key == min (at, seq),
    // whose at is the minimum time.)
    Entry min_entry = overflow_.front();
    for (const Entry& e : overflow_) {
      if (e.key < min_entry.key) min_entry = e;
    }
    rebase_wheel(min_entry.at());
  }
  while (buckets_[cursor_].empty()) ++cursor_;
  *out = buckets_[cursor_].front();
  return true;
}

bool EventQueue::dispatch_one(SimTime limit, bool* invoked) {
  Entry top;
  if (!peek_next(&top)) return false;
  const SimTime top_at = top.at();
  if (top_at > limit) return false;
  buckets_[cursor_].pop();
  --wheel_count_;
  now_ = std::max(now_, top_at);
  // One-entry lookahead: the next slot to dispatch was written hundreds
  // of thousands of events ago and is almost certainly cold. Prefetching
  // it here overlaps its miss with the current handler's work.
  if (!buckets_[cursor_].empty()) {
    __builtin_prefetch(&slot_ref(buckets_[cursor_].front().slot()));
  }

  const uint32_t slot_id = top.slot();
  // Chunk addresses never move, so `s` stays valid even when the handler
  // schedules new events and grows the slab — handlers run in place.
  Slot& s = slot_ref(slot_id);
  if (s.state == SlotState::kCancelled) {
    free_slot(slot_id);  // reap: no user code runs
    *invoked = false;
    return true;
  }
  ++processed_;
  GES_COUNT("p2p.events.fired", 1);
  *invoked = true;

  if (s.interval <= 0.0) {
    // One-shot: detach the slot before invoking, so a handle held by the
    // handler itself already reads as fired — but keep it off the
    // freelist until the handler is done executing from its storage.
    s.state = SlotState::kFree;
    ++s.generation;
    --live_;
    s.handler();
    s.handler.reset();
    s.next_free = free_head_;
    free_head_ = slot_id;
  } else {
    s.handler();
    if (s.state == SlotState::kCancelled) {
      // The task cancelled itself (or its owner did, mid-handler): reap
      // now, without scheduling a phantom next firing.
      free_slot(slot_id);
    } else {
      s.at = top_at + s.interval;
      s.seq = next_seq_++;
      insert_entry(s.at, s.seq, slot_id);
    }
  }
  return true;
}

// --- Public API ---------------------------------------------------------

TimerHandle EventQueue::schedule_slot(SimTime at, SimTime interval,
                                      util::UniqueFunction handler) {
  GES_CHECK_MSG(!std::isnan(at), "cannot schedule at NaN");
  GES_DCHECK_MSG(at >= now_,
                 "stale schedule clamped (at=" << at << ", now=" << now_ << ")");
  if (at < now_) at = now_;  // stale timestamps fire now, in seq order
  const SimTime delay = at - now_;
  delay_ema_ = have_ema_ ? delay_ema_ + (delay - delay_ema_) * kEmaAlpha : delay;
  have_ema_ = true;
  GES_COUNT("p2p.events.scheduled", 1);

  const uint32_t slot_id = alloc_slot();
  Slot& slot = slot_ref(slot_id);
  slot.at = at;
  slot.interval = interval;
  slot.seq = next_seq_++;
  slot.state = SlotState::kLive;
  slot.handler = std::move(handler);
  ++live_;
  insert_entry(at, slot.seq, slot_id);
  return TimerHandle(this, slot_id, slot.generation);
}

TimerHandle EventQueue::schedule(SimTime at, util::UniqueFunction handler) {
  return schedule_slot(at, 0.0, std::move(handler));
}

TimerHandle EventQueue::schedule_after(SimTime delay, util::UniqueFunction handler) {
  GES_CHECK(delay >= 0.0);
  return schedule_slot(now_ + delay, 0.0, std::move(handler));
}

TimerHandle EventQueue::schedule_every(SimTime interval, util::UniqueFunction handler) {
  GES_CHECK(interval > 0.0);
  return schedule_slot(now_ + interval, interval, std::move(handler));
}

void EventQueue::run_until(SimTime until) {
  bool invoked;
  while (dispatch_one(until, &invoked)) {
  }
  now_ = std::max(now_, until);
}

void EventQueue::run(size_t max_events) {
  size_t ran = 0;
  bool invoked;
  while (ran < max_events && dispatch_one(std::numeric_limits<SimTime>::infinity(),
                                          &invoked)) {
    if (invoked) ++ran;
  }
}

}  // namespace ges::p2p
