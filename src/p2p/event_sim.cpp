#include "p2p/event_sim.hpp"

#include <algorithm>
#include <memory>

#include "util/check.hpp"

namespace ges::p2p {

void EventQueue::schedule(SimTime at, std::function<void()> handler) {
  GES_CHECK_MSG(at >= now_, "cannot schedule in the past (at=" << at << ", now=" << now_ << ")");
  queue_.push(Event{at, next_seq_++, std::move(handler)});
}

void EventQueue::schedule_after(SimTime delay, std::function<void()> handler) {
  GES_CHECK(delay >= 0.0);
  schedule(now_ + delay, std::move(handler));
}

void EventQueue::schedule_every(SimTime interval, std::function<void()> handler) {
  GES_CHECK(interval > 0.0);
  repeating_.push_back(std::make_unique<RepeatingTask>(
      RepeatingTask{interval, std::move(handler)}));
  RepeatingTask* task = repeating_.back().get();
  schedule_after(interval, [this, task] { run_repeating(*task); });
}

void EventQueue::run_repeating(RepeatingTask& task) {
  task.handler();
  schedule_after(task.interval, [this, &task] { run_repeating(task); });
}

void EventQueue::pop_and_run() {
  // Move the handler out before running: the handler may schedule new
  // events, which would invalidate references into the queue.
  Event event = queue_.top();
  queue_.pop();
  now_ = event.at;
  ++processed_;
  event.handler();
}

void EventQueue::run_until(SimTime until) {
  while (!queue_.empty() && queue_.top().at <= until) pop_and_run();
  now_ = std::max(now_, until);
}

void EventQueue::run(size_t max_events) {
  size_t ran = 0;
  while (!queue_.empty() && ran < max_events) {
    pop_and_run();
    ++ran;
  }
}

}  // namespace ges::p2p
