#pragma once

#include <cstdint>
#include <vector>

#include "ir/sparse_vector.hpp"
#include "ir/types.hpp"
#include "p2p/event_sim.hpp"
#include "p2p/types.hpp"

namespace ges::p2p {

class Network;

/// Canonicalized query signature: an FNV-1a fold over the query's sorted
/// (term, weight-bits) components. Queries are hashed *post-expansion*
/// (whatever vector reaches the search engine is what gets signed), and
/// SparseVector already guarantees ascending unique terms, so two
/// semantically identical query vectors — regardless of how they were
/// assembled — produce the same signature. The cache key of the
/// query-result cache (ges/result_cache.hpp).
struct QuerySignature {
  uint64_t value = 0;

  friend bool operator==(const QuerySignature&, const QuerySignature&) = default;
};

QuerySignature query_signature(const ir::SparseVector& query);

/// One cached result document: the retrieved document with the exact
/// score its owner's local index produced, plus the validity fields —
/// which node owned it and that owner's node-vector version at store
/// time (the version bumps on every document add/remove, i.e. on every
/// local-index change, so an unchanged version proves re-evaluating the
/// query at the owner returns this byte-identical score).
struct CachedResultDoc {
  ir::DocId doc = ir::kInvalidDoc;
  double score = 0.0;
  NodeId owner = kInvalidNode;
  uint64_t owner_version = 0;

  friend bool operator==(const CachedResultDoc&, const CachedResultDoc&) = default;
};

/// Validity metadata of one cached result set.
struct CacheEntryMeta {
  /// Network::content_stamp() at store time — the O(1) fast path: an
  /// unchanged stamp proves no local index changed and no node departed
  /// anywhere since the store, so the whole entry is still byte-exact.
  uint64_t content_stamp = 0;

  SimTime stored_at = 0.0;

  /// Absolute sim-time expiry; 0 = never expires.
  SimTime expires_at = 0.0;
};

/// Why a lookup did or did not serve a cached entry.
enum class CacheValidity : uint8_t {
  kValid = 0,
  kExpired,       // sim-time TTL passed
  kOwnerDead,     // some result's owner churned out / died
  kOwnerChanged,  // some owner's local index changed since the store
};

const char* cache_validity_name(CacheValidity validity);

/// The full validity rule of a cached result set at sim-time `now`:
///  1. not expired (meta.expires_at, 0 = no expiry);
///  2. fast path — Network::content_stamp() unchanged since the store
///     means nothing that could invalidate any entry happened anywhere;
///  3. slow path — per result document, the owner must be alive and its
///     node-vector version unchanged (its local index is then unchanged,
///     so the cached score is still byte-identical to fresh evaluation).
/// A kValid verdict therefore guarantees strict-mode byte-identity: for
/// every cached (doc, score), evaluating the query at the owner's local
/// index reproduces the exact same score.
CacheValidity validate_cache_entry(const Network& network,
                                   const std::vector<CachedResultDoc>& docs,
                                   const CacheEntryMeta& meta, SimTime now);

/// Eager-invalidation sink the churn / fault layers notify when a node
/// leaves the overlay (departure or injected mid-handshake death).
/// Implemented by ges::core::ResultCacheBank: the departed node's own
/// cache is flushed and every entry network-wide that references it as
/// an owner is dropped, so the overlay invariant sweep can assert that
/// no cache anywhere holds results owned by a dead node.
class ResultCacheInvalidationSink {
 public:
  virtual ~ResultCacheInvalidationSink() = default;
  virtual void on_node_departed(NodeId node) = 0;
};

}  // namespace ges::p2p
