#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "p2p/types.hpp"

namespace ges::p2p {

/// Version-stamped memoization of pairwise node relevance (REL(X, Y),
/// Eq. 2). Node vectors change only when a node's document set changes,
/// yet topology adaptation re-scores the same node pairs thousands of
/// times per round (walk responses, host-cache merges, handshakes, link
/// reclassification). The cache stores one entry per unordered node pair
/// stamped with both endpoints' vector versions; a lookup whose stamps
/// match the peers' current versions is a hit, anything else is lazily
/// recomputed and overwritten. Correctness therefore never depends on
/// eager invalidation: add_document / remove_document only have to bump
/// the owner's version.
///
/// The cache is sharded (mutex per shard) so the read-only scoring phase
/// of a parallel adaptation round can probe it concurrently. Values are
/// deterministic (a dot product of the two current vectors), so
/// concurrent recomputation of the same pair is benign.
class RelCache {
 public:
  /// Cached value for the unordered pair {a, b} if the entry carries
  /// exactly the versions (va, vb); otherwise invokes `compute`, stores
  /// the result under the fresh stamps, and returns it.
  template <typename Compute>
  double get(NodeId a, NodeId b, uint64_t va, uint64_t vb, Compute&& compute) {
    if (b < a) {
      const NodeId tn = a;
      a = b;
      b = tn;
      const uint64_t tv = va;
      va = vb;
      vb = tv;
    }
    const uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
    Shard& shard = shards_[shard_of(key)];
    {
      std::lock_guard lock(shard.mu);
      const auto it = shard.map.find(key);
      if (it != shard.map.end() && it->second.va == va && it->second.vb == vb) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second.value;
      }
    }
    // Compute outside the lock: dot products are the expensive part.
    const double value = compute();
    misses_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard lock(shard.mu);
      if (shard.map.size() >= kMaxEntriesPerShard && shard.map.count(key) == 0) {
        shard.map.clear();  // epoch reset: bounded memory, lazily refilled
      }
      shard.map[key] = Entry{va, vb, value};
    }
    return value;
  }

  /// Drop every entry (diagnostics; never needed for correctness).
  void clear() {
    for (Shard& s : shards_) {
      std::lock_guard lock(s.mu);
      s.map.clear();
    }
  }

  /// Number of resident entries (approximate under concurrent use).
  size_t size() const {
    size_t total = 0;
    for (const Shard& s : shards_) {
      std::lock_guard lock(s.mu);
      total += s.map.size();
    }
    return total;
  }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    uint64_t va = 0;
    uint64_t vb = 0;
    double value = 0.0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Entry> map;
  };

  static constexpr size_t kShardCount = 64;  // power of two
  static constexpr size_t kMaxEntriesPerShard = 1 << 15;

  static size_t shard_of(uint64_t key) {
    // Mix both halves so shards stay balanced when low NodeIds dominate.
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdULL;
    return static_cast<size_t>(key >> 33) & (kShardCount - 1);
  }

  std::array<Shard, kShardCount> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace ges::p2p
