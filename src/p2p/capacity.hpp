#pragma once

#include <vector>

#include "p2p/types.hpp"
#include "util/rng.hpp"

namespace ges::p2p {

/// Capacity assignment profile (paper §5.4). The heterogeneous profile is
/// the Gnutella measurement of Saroiu et al.: capacities 1, 10, 10^2,
/// 10^3, 10^4 with probabilities 20 %, 45 %, 30 %, 4.9 %, 0.1 %; nodes
/// with capacity >= 10^3 are supernodes.
class CapacityProfile {
 public:
  /// Every node has the same capacity (the paper's default setting).
  static CapacityProfile uniform(Capacity capacity = 1.0);

  /// The Gnutella-like heterogeneous profile.
  static CapacityProfile gnutella();

  /// Draw one capacity.
  Capacity sample(util::Rng& rng) const;

  /// Draw capacities for `n` nodes.
  std::vector<Capacity> sample_many(size_t n, util::Rng& rng) const;

  /// Capacity at or above which a node counts as a supernode (paper §4.5).
  Capacity supernode_threshold() const { return supernode_threshold_; }

  bool is_heterogeneous() const { return levels_.size() > 1; }

 private:
  CapacityProfile(std::vector<Capacity> levels, std::vector<double> probabilities,
                  Capacity supernode_threshold);

  std::vector<Capacity> levels_;
  std::vector<double> probabilities_;
  Capacity supernode_threshold_;
};

}  // namespace ges::p2p
