#pragma once

#include <cstdint>
#include <vector>

#include "ir/sparse_vector.hpp"
#include "ir/types.hpp"
#include "p2p/cache_protocol.hpp"
#include "p2p/types.hpp"

namespace ges::p2p::wire {

/// Wire message-type tags ("Wire format v1" in docs/PROTOCOL.md). The
/// values are normative protocol constants: they appear as the frame
/// header's type byte and must never be renumbered — new messages append
/// new values. scripts/check_docs.py cross-checks this enum against the
/// PROTOCOL.md field tables and the committed golden fixtures, so every
/// enumerator needs a `struct <Name>` below (enumerator minus the `k`),
/// a `### <Name>` table in the spec, and a
/// tests/p2p/fixtures/wire_v1/<snake_name>.bin fixture.
enum class MessageType : uint8_t {
  kWalkQuery = 1,         // biased-walk search query, forwarded hop by hop
  kWalkResponse = 2,      // query hit travelling back to the initiator
  kFloodForward = 3,      // semantic-group flood edge
  kDiscoveryProbe = 4,    // topology-adaptation discovery-walk probe
  kHandshakeRequest = 5,  // link handshake leg 1 (initiator -> peer)
  kHandshakeResponse = 6, // link handshake leg 2 (peer -> initiator)
  kHandshakeConfirm = 7,  // link handshake leg 3 (initiator -> peer)
  kNodeVectorUpdate = 8,  // node-vector gossip/refresh payload
  kReplicaHeartbeat = 9,  // replica heartbeat ping (paper §4.4)
  kHostCacheExchange = 10,// host-cache gossip exchange (paper §4.3)
  kCacheStore = 11,       // result-cache store frame
  kCacheProbe = 12,       // result-cache probe frame
  kCacheResult = 13,      // result-cache hit response frame
};

/// Stable lower-snake name of a tag ("walk_query", ...); fixture file
/// stems and spec anchors use it. Unknown tags return "unknown".
const char* message_type_name(MessageType type);

/// One (doc, score) response record. Scores are f64 on the wire because
/// the engines compare cached scores bit-exactly against fresh
/// evaluation — rounding through f32 would break strict cache hits.
struct DocScore {
  ir::DocId doc = ir::kInvalidDoc;
  double score = 0.0;

  friend bool operator==(const DocScore&, const DocScore&) = default;
};

/// One gossiped host-cache record (paper §4.3): the entry's address,
/// capacity, degree, precomputed relevance, and — random-cache entries
/// only — the node vector (semantic-cache entries gossip an empty one).
struct HostCacheRecord {
  NodeId node = kInvalidNode;
  double capacity = 0.0;
  uint32_t degree = 0;
  double rel_score = 0.0;
  ir::SparseVector vector;

  friend bool operator==(const HostCacheRecord&, const HostCacheRecord&) = default;
};

// --- Search data plane --------------------------------------------------

/// Biased-walk search query (paper §4.5), forwarded one hop per frame.
/// The query vector rides along unchanged, so every hop of one query
/// costs the same number of bytes.
struct WalkQuery {
  Guid guid = 0;
  NodeId initiator = kInvalidNode;
  uint32_t ttl = 0;   // remaining walk TTL; 0 = unbounded
  uint8_t flags = 0;  // bit 0: capacity-aware walk
  ir::SparseVector query;

  friend bool operator==(const WalkQuery&, const WalkQuery&) = default;
};

/// Query hit travelling back to the initiator: the responder's scored
/// documents for the query GUID.
struct WalkResponse {
  Guid guid = 0;
  NodeId responder = kInvalidNode;
  std::vector<DocScore> docs;

  friend bool operator==(const WalkResponse&, const WalkResponse&) = default;
};

/// One semantic-group flood edge (paper §4.5): the query plus the flood
/// bookkeeping (hop depth from the target, configured radius; 0 = whole
/// group).
struct FloodForward {
  Guid guid = 0;
  NodeId from = kInvalidNode;
  uint32_t depth = 0;
  uint32_t radius = 0;
  ir::SparseVector query;

  friend bool operator==(const FloodForward&, const FloodForward&) = default;
};

// --- Topology adaptation ------------------------------------------------

/// Discovery random-walk probe (paper §4.3): one of the two periodic
/// walks a node issues per adaptation round, asking visited nodes whether
/// they are relevant (REL >= threshold) or not.
struct DiscoveryProbe {
  NodeId origin = kInvalidNode;
  uint64_t round = 0;
  uint8_t want_relevant = 0;  // 1: collecting semantic candidates
  uint32_t ttl = 0;
  uint32_t max_responses = 0;

  friend bool operator==(const DiscoveryProbe&, const DiscoveryProbe&) = default;
};

/// Link handshake leg 1 (initiator -> peer): propose a link of
/// `link_type` (p2p::LinkType value), carrying the initiator's view of
/// the pair relevance plus its capacity and degree so the peer can apply
/// its acceptance rule.
struct HandshakeRequest {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  uint8_t link_type = 0;
  double rel = 0.0;
  double capacity = 0.0;
  uint32_t degree = 0;

  friend bool operator==(const HandshakeRequest&, const HandshakeRequest&) = default;
};

/// Link handshake leg 2 (peer -> initiator): the peer's independent
/// accept decision, naming the neighbor it would drop to make room
/// (kInvalidNode when it has a free slot or rejects).
struct HandshakeResponse {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  uint8_t accept = 0;
  NodeId victim = kInvalidNode;

  friend bool operator==(const HandshakeResponse&, const HandshakeResponse&) = default;
};

/// Link handshake leg 3 (initiator -> peer): commit or abandon the link.
struct HandshakeConfirm {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  uint8_t committed = 0;

  friend bool operator==(const HandshakeConfirm&, const HandshakeConfirm&) = default;
};

// --- Replication & gossip -----------------------------------------------

/// A node-vector copy in flight: replica install, heartbeat refresh
/// response, or gossip of a vector (paper §4.4). `version` is the
/// owner's monotonically-bumped vector version at copy time.
struct NodeVectorUpdate {
  NodeId owner = kInvalidNode;
  uint64_t version = 0;
  ir::SparseVector vector;

  friend bool operator==(const NodeVectorUpdate&, const NodeVectorUpdate&) = default;
};

/// Replica heartbeat ping (paper §4.4): `from` asks random neighbor `to`
/// for its current node vector; `tick` is the sender's per-loop beat
/// counter (also the fault nonce in simulation).
struct ReplicaHeartbeat {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  uint64_t tick = 0;

  friend bool operator==(const ReplicaHeartbeat&, const ReplicaHeartbeat&) = default;
};

/// Host-cache gossip exchange (paper §4.3's optimization): one node
/// ships qualifying entries of one of its host caches to a semantic
/// neighbor.
struct HostCacheExchange {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  uint8_t cache_kind = 0;  // 0 random cache, 1 semantic cache
  std::vector<HostCacheRecord> entries;

  friend bool operator==(const HostCacheExchange&, const HostCacheExchange&) = default;
};

// --- Result-cache protocol ----------------------------------------------

/// Store a completed search's result set in `holder`'s result cache
/// (ges/result_cache.hpp). Each doc carries its owner and the owner's
/// node-vector version at store time — the validity fields the cache
/// protocol revalidates hits against.
struct CacheStore {
  NodeId holder = kInvalidNode;
  uint64_t signature = 0;  // QuerySignature::value
  std::vector<CachedResultDoc> docs;

  friend bool operator==(const CacheStore&, const CacheStore&) = default;
};

/// Probe `holder`'s result cache for a query signature.
struct CacheProbe {
  NodeId holder = kInvalidNode;
  uint64_t signature = 0;

  friend bool operator==(const CacheProbe&, const CacheProbe&) = default;
};

/// A cache hit's response: the cached result set for the signature.
struct CacheResult {
  NodeId holder = kInvalidNode;
  uint64_t signature = 0;
  std::vector<CachedResultDoc> docs;

  friend bool operator==(const CacheResult&, const CacheResult&) = default;
};

}  // namespace ges::p2p::wire
