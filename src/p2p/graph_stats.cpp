#include "p2p/graph_stats.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace ges::p2p {

namespace {

std::vector<NodeId> filtered_neighbors(const Network& network, NodeId node,
                                       std::optional<LinkType> filter) {
  std::vector<NodeId> out;
  auto add = [&](LinkType type) {
    for (const NodeId n : network.neighbors(node, type)) {
      if (network.alive(n)) out.push_back(n);
    }
  };
  if (!filter || *filter == LinkType::kRandom) add(LinkType::kRandom);
  if (!filter || *filter == LinkType::kSemantic) add(LinkType::kSemantic);
  return out;
}

}  // namespace

GraphStats compute_graph_stats(const Network& network,
                               std::optional<LinkType> link_filter,
                               size_t path_samples, uint64_t seed) {
  GraphStats stats;
  const auto alive = network.alive_nodes();
  stats.nodes = alive.size();
  if (alive.empty()) return stats;

  // Degrees and link count.
  size_t degree_sum = 0;
  stats.min_degree = ~uint32_t{0};
  for (const NodeId n : alive) {
    const auto degree =
        static_cast<uint32_t>(filtered_neighbors(network, n, link_filter).size());
    degree_sum += degree;
    stats.min_degree = std::min(stats.min_degree, degree);
    stats.max_degree = std::max(stats.max_degree, degree);
  }
  stats.links = degree_sum / 2;
  stats.mean_degree = static_cast<double>(degree_sum) / static_cast<double>(alive.size());

  // Connected components.
  std::unordered_map<NodeId, size_t> component_of;
  std::vector<size_t> component_sizes;
  for (const NodeId start : alive) {
    if (component_of.count(start) > 0) continue;
    const size_t id = component_sizes.size();
    size_t size = 0;
    std::deque<NodeId> frontier{start};
    component_of[start] = id;
    while (!frontier.empty()) {
      const NodeId current = frontier.front();
      frontier.pop_front();
      ++size;
      for (const NodeId next : filtered_neighbors(network, current, link_filter)) {
        if (component_of.emplace(next, id).second) frontier.push_back(next);
      }
    }
    component_sizes.push_back(size);
  }
  stats.components = component_sizes.size();
  stats.largest_component =
      *std::max_element(component_sizes.begin(), component_sizes.end());

  // Clustering coefficient: closed/total connected triplets.
  size_t triplets = 0;
  size_t closed = 0;
  for (const NodeId n : alive) {
    const auto neighbors = filtered_neighbors(network, n, link_filter);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      for (size_t j = i + 1; j < neighbors.size(); ++j) {
        ++triplets;
        if (network.has_link(neighbors[i], neighbors[j])) ++closed;
      }
    }
  }
  stats.clustering_coefficient =
      triplets == 0 ? 0.0 : static_cast<double>(closed) / static_cast<double>(triplets);

  // Mean shortest path: BFS from sampled sources in the largest component.
  size_t largest_id = 0;
  for (size_t c = 0; c < component_sizes.size(); ++c) {
    if (component_sizes[c] == stats.largest_component) {
      largest_id = c;
      break;
    }
  }
  std::vector<NodeId> members;
  for (const NodeId n : alive) {
    if (component_of[n] == largest_id) members.push_back(n);
  }
  if (members.size() >= 2 && path_samples > 0) {
    util::Rng rng(seed);
    double distance_sum = 0.0;
    size_t distance_count = 0;
    const size_t samples = std::min(path_samples, members.size());
    for (const size_t pick : rng.sample_without_replacement(members.size(), samples)) {
      const NodeId source = members[pick];
      std::unordered_map<NodeId, size_t> dist{{source, 0}};
      std::deque<NodeId> frontier{source};
      while (!frontier.empty()) {
        const NodeId current = frontier.front();
        frontier.pop_front();
        for (const NodeId next : filtered_neighbors(network, current, link_filter)) {
          if (dist.emplace(next, dist[current] + 1).second) frontier.push_back(next);
        }
      }
      for (const auto& [node, d] : dist) {
        if (node != source) {
          distance_sum += static_cast<double>(d);
          ++distance_count;
        }
      }
    }
    if (distance_count > 0) stats.mean_path_length = distance_sum / distance_count;
  }
  return stats;
}

}  // namespace ges::p2p
