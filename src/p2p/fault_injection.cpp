#include "p2p/fault_injection.hpp"

#include <algorithm>
#include <array>
#include <mutex>
#include <string>

#include "obs/telemetry.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ges::p2p {

const char* fault_channel_name(FaultChannel channel) {
  switch (channel) {
    case FaultChannel::kWalk: return "walk";
    case FaultChannel::kFlood: return "flood";
    case FaultChannel::kHandshake: return "handshake";
    case FaultChannel::kHeartbeat: return "heartbeat";
    case FaultChannel::kGossip: return "gossip";
  }
  return "?";
}

#if GES_OBS
namespace {

/// Telemetry counter for (verb, channel), e.g. p2p.fault.dropped.walk.
/// The per-call-site cache keeps the hot path at one relaxed add; fault
/// decisions run in the parallel plan phase, which the sharded counter
/// cells absorb without perturbing determinism.
obs::Counter& per_channel_counter(std::array<obs::Counter, 5>& cache,
                                  std::once_flag& once, const char* verb,
                                  FaultChannel channel) {
  std::call_once(once, [&cache, verb] {
    for (size_t i = 0; i < cache.size(); ++i) {
      const auto ch = static_cast<FaultChannel>(i + 1);
      cache[i] = obs::global().metrics().counter(
          std::string("p2p.fault.") + verb + "." + fault_channel_name(ch));
    }
  });
  return cache[static_cast<size_t>(channel) - 1];
}

}  // namespace

#define GES_FAULT_COUNT(verb, channel)                               \
  do {                                                               \
    if (::ges::obs::enabled()) {                                     \
      static std::array<obs::Counter, 5> ges_fault_cache_;           \
      static std::once_flag ges_fault_once_;                         \
      per_channel_counter(ges_fault_cache_, ges_fault_once_, (verb), \
                          (channel))                                 \
          .add(1);                                                   \
    }                                                                \
  } while (0)
#else
#define GES_FAULT_COUNT(verb, channel) \
  do {                                 \
  } while (0)
#endif

#if GES_OBS
namespace {

/// Flight-recorder hook shared by the per-message decisions: when a
/// query is being recorded on this thread, the fired fault becomes a
/// causal event under the current context (the walk hop / flood send
/// being decided). `value` carries the extra delay for kFaultDelay.
void flight_fault_event(obs::FlightEventKind kind, FaultChannel channel,
                        uint64_t key, double value = 0.0) {
  obs::FlightBuilder* fb = obs::flight_sink();
  if (fb == nullptr) return;
  const int32_t id = fb->add(kind, obs::global().now());
  if (obs::FlightEvent* ev = fb->event(id)) {
    ev->from = static_cast<NodeId>(key >> 32);
    ev->to = static_cast<NodeId>(key & 0xFFFFFFFFULL);
    ev->channel = static_cast<uint8_t>(channel);
    ev->value = value;
  }
}

}  // namespace
#define GES_FLIGHT_FAULT(...) flight_fault_event(__VA_ARGS__)
#else
#define GES_FLIGHT_FAULT(...) \
  do {                        \
  } while (0)
#endif

FaultPlan FaultPlan::uniform(double rate, uint64_t seed) {
  GES_CHECK(rate >= 0.0 && rate <= 1.0);
  FaultPlan plan;
  plan.drop_rate = rate;
  plan.heartbeat_loss_rate = rate;
  plan.handshake_death_rate = rate / 4.0;
  plan.seed = seed;
  return plan;
}

double FaultInjector::unit(FaultChannel channel, uint64_t key, uint64_t nonce,
                           uint64_t salt) const {
  // Two rounds of seed derivation mix (seed, channel, salt) and
  // (key, nonce) into one SplitMix64 stream; the first output, mapped to
  // [0, 1), is the decision variate. Pure function of its inputs.
  const uint64_t stream =
      util::derive_seed(plan_.seed, (static_cast<uint64_t>(channel) << 56) ^ salt);
  util::SplitMix64 mix(util::derive_seed(stream, util::derive_seed(key, nonce)));
  return static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
}

bool FaultInjector::drop_message(FaultChannel channel, uint64_t key,
                                 uint64_t nonce) const {
  if (plan_.drop_rate <= 0.0) return false;
  const bool dropped = unit(channel, key, nonce, 0x01) < plan_.drop_rate;
  if (dropped) {
    ++counters_.messages_dropped;
    GES_FAULT_COUNT("dropped", channel);
    GES_FLIGHT_FAULT(obs::FlightEventKind::kFaultDrop, channel, key);
  }
  return dropped;
}

SimTime FaultInjector::delivery_delay(FaultChannel channel, uint64_t key,
                                      uint64_t nonce) const {
  if (plan_.delay_rate <= 0.0 || plan_.max_delay <= 0.0) return 0.0;
  if (unit(channel, key, nonce, 0x02) >= plan_.delay_rate) return 0.0;
  ++counters_.messages_delayed;
  GES_FAULT_COUNT("delayed", channel);
  const SimTime delay = unit(channel, key, nonce, 0x03) * plan_.max_delay;
  GES_FLIGHT_FAULT(obs::FlightEventKind::kFaultDelay, channel, key, delay);
  return delay;
}

bool FaultInjector::duplicate_message(FaultChannel channel, uint64_t key,
                                      uint64_t nonce) const {
  if (plan_.duplicate_rate <= 0.0) return false;
  const bool dup = unit(channel, key, nonce, 0x04) < plan_.duplicate_rate;
  if (dup) {
    ++counters_.messages_duplicated;
    GES_FAULT_COUNT("duplicated", channel);
    GES_FLIGHT_FAULT(obs::FlightEventKind::kFaultDup, channel, key);
  }
  return dup;
}

bool FaultInjector::lose_heartbeat(uint64_t key, uint64_t nonce) const {
  if (plan_.heartbeat_loss_rate <= 0.0) return false;
  const bool lost =
      unit(FaultChannel::kHeartbeat, key, nonce, 0x05) < plan_.heartbeat_loss_rate;
  if (lost) {
    ++counters_.heartbeats_lost;
    GES_COUNT("p2p.fault.heartbeats_lost", 1);
  }
  return lost;
}

bool FaultInjector::kill_mid_handshake(uint64_t key, uint64_t nonce) const {
  if (plan_.handshake_death_rate <= 0.0) return false;
  const bool death =
      unit(FaultChannel::kHandshake, key, nonce, 0x06) < plan_.handshake_death_rate;
  if (death) {
    ++counters_.handshake_deaths;
    GES_COUNT("p2p.fault.handshake_deaths", 1);
  }
  return death;
}

bool FaultInjector::deliver(EventQueue& queue, FaultChannel channel, uint64_t key,
                            uint64_t nonce, SimTime base_delay,
                            std::function<void()> handler) const {
  if (drop_message(channel, key, nonce)) return false;
  const SimTime delay = base_delay + delivery_delay(channel, key, nonce);
  if (duplicate_message(channel, key, nonce)) {
    queue.schedule_after(delay, handler);
  }
  queue.schedule_after(delay, std::move(handler));
  return true;
}

void FaultInjector::begin_round(const std::vector<NodeId>& alive, uint64_t round) {
  if (!partitioned_.empty() && round >= partition_expires_round_) {
    partitioned_.clear();  // partition heals
  }
  if (plan_.partition_rate <= 0.0 || !partitioned_.empty() || alive.size() < 2) {
    return;
  }
  if (unit(FaultChannel::kHandshake, 0, round, 0x07) >= plan_.partition_rate) return;
  const auto cut =
      std::max<size_t>(1, static_cast<size_t>(plan_.partition_fraction *
                                              static_cast<double>(alive.size())));
  // Membership of the isolated side is drawn from a round-derived RNG so
  // the same (plan seed, round, alive set) always cuts the same nodes.
  util::Rng rng(util::derive_seed(plan_.seed, 0x9A47B00ULL ^ round));
  for (const size_t i : rng.sample_without_replacement(alive.size(), std::min(cut, alive.size()))) {
    partitioned_.insert(alive[i]);
  }
  partition_expires_round_ = round + std::max<size_t>(1, plan_.partition_rounds);
  ++counters_.partitions_started;
  // begin_round runs serially (before any plan-phase read), so a trace
  // event here is deterministic.
  GES_COUNT("p2p.fault.partitions_started", 1);
#if GES_OBS
  if (obs::enabled()) {
    obs::global().trace().record_instant(
        "partition_start", "fault", obs::global().now(), round,
        {{"isolated_nodes", static_cast<double>(partitioned_.size())},
         {"heals_at_round", static_cast<double>(partition_expires_round_)}});
  }
#endif
}

}  // namespace ges::p2p
