#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <variant>
#include <vector>

#include "p2p/wire_messages.hpp"

// Wire format v1 (normative spec: docs/PROTOCOL.md, "Wire format v1").
//
// Frame layout:
//
//   offset 0   magic   "GESW" (4 bytes)
//   offset 4   version u8     (kFormatVersion)
//   offset 5   tag     u8     (MessageType)
//   offset 6   length  varint (payload byte count, minimal LEB128)
//   ...        payload
//
// All fixed-width scalars are little-endian; floats are IEEE-754 bit
// patterns (f32 for vector weights, f64 for scores/capacities);
// SparseVectors serialize as a varint entry count followed by the SoA
// runs — all term ids (u32, strictly ascending), then all weights (f32,
// nonzero). Encoding is deterministic: one message has exactly one
// byte string. Decoding is total: any input yields either a message
// that re-encodes to the same bytes or a typed WireError — never UB.

namespace ges::p2p::wire {

inline constexpr uint8_t kFormatVersion = 1;
inline constexpr uint8_t kMagic[4] = {'G', 'E', 'S', 'W'};
/// Bytes before the varint length: magic + version + tag.
inline constexpr std::size_t kHeaderSize = 6;

/// Typed decode failures (PROTOCOL.md "Error taxonomy").
enum class WireError : uint8_t {
  kNone = 0,
  kTruncated,           // input ends before the frame does
  kBadMagic,            // first bytes are not "GESW"
  kUnsupportedVersion,  // version byte != kFormatVersion
  kUnknownType,         // tag byte is not a MessageType value
  kVarintOverflow,      // varint needs > 64 bits or > 10 bytes
  kLengthMismatch,      // payload length disagrees with its contents
  kMalformed,           // field-level violation (term order, zero weight)
};

const char* wire_error_name(WireError err);

/// Every protocol message, in tag order (variant index + 1 == tag).
using Message = std::variant<WalkQuery, WalkResponse, FloodForward,
                             DiscoveryProbe, HandshakeRequest,
                             HandshakeResponse, HandshakeConfirm,
                             NodeVectorUpdate, ReplicaHeartbeat,
                             HostCacheExchange, CacheStore, CacheProbe,
                             CacheResult>;

MessageType message_type(const Message& message);

// --- Size primitives ----------------------------------------------------
// The engines charge bytes on hot paths (per walk hop, per flood edge)
// where building a Message would copy the query vector; these helpers
// compute exact frame sizes from component counts instead. Each
// encoded_size() overload below is implemented in terms of them, and
// tests assert helper == encoded_size(actual struct) == encode().size().

/// Bytes of the minimal LEB128 encoding of `value`.
std::size_t varint_size(uint64_t value);

/// Serialized size of a SparseVector with `entries` entries:
/// varint(entries) + 4*entries term ids + 4*entries weights.
std::size_t sparse_vector_size(std::size_t entries);

/// Full frame size for a payload of `payload_size` bytes.
std::size_t frame_size(std::size_t payload_size);

std::size_t walk_query_frame_size(std::size_t query_terms);
std::size_t walk_response_frame_size(std::size_t docs);
std::size_t flood_forward_frame_size(std::size_t query_terms);
std::size_t discovery_probe_frame_size();
std::size_t handshake_request_frame_size();
std::size_t handshake_response_frame_size();
std::size_t handshake_confirm_frame_size();
/// All three handshake legs of one completed handshake.
std::size_t handshake_legs_frame_size();
std::size_t node_vector_update_frame_size(std::size_t vector_terms);
std::size_t replica_heartbeat_frame_size();
/// One HostCacheRecord inside a HostCacheExchange payload.
std::size_t host_cache_record_size(std::size_t vector_terms);
/// `records_total_size` = sum of host_cache_record_size() over entries.
std::size_t host_cache_exchange_frame_size(std::size_t entry_count,
                                           std::size_t records_total_size);
std::size_t cache_store_frame_size(std::size_t docs);
std::size_t cache_probe_frame_size();
std::size_t cache_result_frame_size(std::size_t docs);

// --- Encode -------------------------------------------------------------

std::size_t encoded_size(const WalkQuery& m);
std::size_t encoded_size(const WalkResponse& m);
std::size_t encoded_size(const FloodForward& m);
std::size_t encoded_size(const DiscoveryProbe& m);
std::size_t encoded_size(const HandshakeRequest& m);
std::size_t encoded_size(const HandshakeResponse& m);
std::size_t encoded_size(const HandshakeConfirm& m);
std::size_t encoded_size(const NodeVectorUpdate& m);
std::size_t encoded_size(const ReplicaHeartbeat& m);
std::size_t encoded_size(const HostCacheExchange& m);
std::size_t encoded_size(const CacheStore& m);
std::size_t encoded_size(const CacheProbe& m);
std::size_t encoded_size(const CacheResult& m);
std::size_t encoded_size(const Message& message);

/// Appends one full frame (header + payload) to `out`.
void encode(const Message& message, std::vector<uint8_t>& out);

/// Convenience: one frame in a fresh buffer.
std::vector<uint8_t> encode(const Message& message);

// --- Decode -------------------------------------------------------------

struct DecodeResult {
  WireError error = WireError::kTruncated;
  /// Bytes consumed by the frame on success (trailing bytes are the
  /// caller's: frames concatenate into a stream).
  std::size_t consumed = 0;
  Message message{};

  bool ok() const { return error == WireError::kNone; }
};

/// Decodes one frame from the front of `bytes`. Total: never throws,
/// never reads out of bounds, never allocates more than `bytes.size()`
/// worth of entries.
DecodeResult decode(std::span<const uint8_t> bytes);

}  // namespace ges::p2p::wire
