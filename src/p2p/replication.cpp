#include "p2p/replication.hpp"

#include "obs/telemetry.hpp"
#include "p2p/wire.hpp"
#include "util/check.hpp"

namespace ges::p2p {

ReplicaHeartbeatProcess::ReplicaHeartbeatProcess(Network& network, EventQueue& queue,
                                                 SimTime interval,
                                                 const FaultInjector* faults)
    : network_(&network),
      queue_(&queue),
      interval_(interval),
      faults_(faults),
      active_(network.size(), 0),
      timers_(network.size()),
      ticks_(network.size(), 0),
      last_beat_(network.size(), -1.0) {
  GES_CHECK(interval > 0.0);
}

void ReplicaHeartbeatProcess::start() {
  for (const NodeId node : network_->alive_nodes()) register_node(node);
}

void ReplicaHeartbeatProcess::register_node(NodeId node) {
  GES_CHECK_MSG(node < active_.size(), "node " << node << " out of range");
  if (active_[node] != 0 || !network_->alive(node)) return;
  active_[node] = 1;
  // A suspended timer whose fire time has not passed resumes in place
  // (original phase and tie-break position); otherwise start fresh.
  if (!timers_[node].resume()) {
    timers_[node] = queue_->schedule_every(interval_, [this, node] { beat(node); });
  }
}

void ReplicaHeartbeatProcess::suspend_node(NodeId node) {
  GES_CHECK_MSG(node < active_.size(), "node " << node << " out of range");
  if (active_[node] == 0) return;
  active_[node] = 0;
  timers_[node].cancel();
}

void ReplicaHeartbeatProcess::beat(NodeId node) {
  if (!network_->alive(node)) {
    // The node died outside churn's bookkeeping (direct deactivate); the
    // loop cancels itself here. register_node starts a fresh one on
    // rejoin.
    active_[node] = 0;
    timers_[node].cancel();
    return;
  }
  ++beats_;
  last_beat_[node] = queue_->now();
  // beat() runs inside an event-queue handler, i.e. strictly serially, so
  // a span here is deterministic. Track = the beating node's lane.
  GES_SPAN(span, "heartbeat", "replica", node);
  GES_COUNT("p2p.heartbeat.beats", 1);
  const uint64_t sent_before = sent_;
  const uint64_t lost_before = lost_;
  const uint64_t bytes_before = bytes_;
  const uint64_t tick = ticks_[node]++;
  for (const NodeId neighbor : network_->neighbors(node, LinkType::kRandom)) {
    ++sent_;
    // One ReplicaHeartbeat request frame per heartbeat, charged whether
    // or not it arrives; the NodeVectorUpdate response (the neighbor's
    // truncated vector, sized at send time) is only charged for requests
    // that got through — a lost request never elicits one.
    if (account_bytes_) bytes_ += wire::replica_heartbeat_frame_size();
    if (faults_ != nullptr) {
      const uint64_t key = FaultInjector::pair_key(node, neighbor);
      if (faults_->blocked(node, neighbor) || faults_->lose_heartbeat(key, tick)) {
        ++lost_;  // replica stays stale; next interval retries
        continue;
      }
      const SimTime delay = faults_->delivery_delay(FaultChannel::kHeartbeat, key, tick);
      if (delay > 0.0) {
        if (account_bytes_) {
          bytes_ += wire::node_vector_update_frame_size(
              network_->node_vector(neighbor).size());
        }
        // Late response: refresh_replica no-ops if the link (or node) is
        // gone by delivery time.
        Network* net = network_;
        queue_->schedule_after(delay, [net, node, neighbor] {
          net->refresh_replica(node, neighbor);
        });
        continue;
      }
    }
    if (account_bytes_) {
      bytes_ += wire::node_vector_update_frame_size(
          network_->node_vector(neighbor).size());
    }
    network_->refresh_replica(node, neighbor);
  }
  GES_COUNT("p2p.heartbeat.sent", sent_ - sent_before);
  GES_COUNT("p2p.heartbeat.lost", lost_ - lost_before);
  if (account_bytes_) {
    GES_COUNT("ges.net.bytes.heartbeat", bytes_ - bytes_before);
  }
  span.arg("sent", static_cast<double>(sent_ - sent_before));
  span.arg("lost", static_cast<double>(lost_ - lost_before));
  // The periodic timer reschedules itself; no manual re-arm.
}

void schedule_replica_heartbeats(EventQueue& queue, Network& network,
                                 SimTime interval) {
  queue.schedule_every(interval, [&network] {
    for (const NodeId node : network.alive_nodes()) {
      network.refresh_replicas(node);
    }
  });
}

}  // namespace ges::p2p
